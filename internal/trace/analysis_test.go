package trace

import (
	"math"
	"strings"
	"testing"

	"github.com/eadvfs/eadvfs/internal/core"
	"github.com/eadvfs/eadvfs/internal/cpu"
	"github.com/eadvfs/eadvfs/internal/energy"
	"github.com/eadvfs/eadvfs/internal/sim"
	"github.com/eadvfs/eadvfs/internal/storage"
	"github.com/eadvfs/eadvfs/internal/task"
)

func TestActivityBasics(t *testing.T) {
	rec, res := runTraced(t, core.NewEADVFS())
	acts := rec.Activity()
	if len(acts) != 2 {
		t.Fatalf("activity rows = %d", len(acts))
	}
	totalBusy := 0.0
	for _, a := range acts {
		totalBusy += a.BusyTime
		if a.Completions == 0 {
			t.Fatalf("task %d has no completions (EA-DVFS meets both in Fig 1)", a.TaskID)
		}
		if a.ResponseMin > a.ResponseMax {
			t.Fatalf("task %d response ordering broken", a.TaskID)
		}
		if a.Jitter != a.ResponseMax-a.ResponseMin {
			t.Fatalf("task %d jitter arithmetic", a.TaskID)
		}
		if a.Fragments < 1 {
			t.Fatalf("task %d fragments %v < 1", a.TaskID, a.Fragments)
		}
	}
	if math.Abs(totalBusy-res.BusyTime) > 1e-6 {
		t.Fatalf("activity busy %v != result %v", totalBusy, res.BusyTime)
	}
}

// In the Fig-1 EA-DVFS schedule τ1 runs [4,12) at the low level: its
// response is 12, uninterrupted (1 fragment).
func TestActivityFig1Numbers(t *testing.T) {
	rec, _ := runTraced(t, core.NewEADVFS())
	acts := rec.Activity()
	var tau1 TaskActivity
	for _, a := range acts {
		if a.TaskID == 1 {
			tau1 = a
		}
	}
	if math.Abs(tau1.ResponseMean-12) > 1e-6 {
		t.Fatalf("τ1 response = %v, want 12", tau1.ResponseMean)
	}
	if math.Abs(tau1.BusyTime-8) > 1e-6 {
		t.Fatalf("τ1 busy = %v, want 8 (half speed)", tau1.BusyTime)
	}
	if tau1.Fragments != 1 {
		t.Fatalf("τ1 fragments = %v, want 1", tau1.Fragments)
	}
	if lt := tau1.LevelTime[0]; math.Abs(lt-8) > 1e-6 {
		t.Fatalf("τ1 low-level residency = %v, want 8", lt)
	}
}

// A preempted job shows up with more than one fragment.
func TestActivityFragmentsUnderPreemption(t *testing.T) {
	rec := NewRecorder()
	src := energy.NewConstant(0)
	cfg := &sim.Config{
		Horizon: 30,
		Tasks: []task.Task{
			{ID: 1, Period: 1e9, Deadline: 20, WCET: 6, Offset: 0},
			{ID: 2, Period: 1e9, Deadline: 5, WCET: 1, Offset: 2},
		},
		Source:    src,
		Predictor: energy.NewOracle(src),
		Store:     storage.New(1e6, 1e5),
		CPU:       cpu.XScale(),
		Policy:    nil,
		Tracer:    rec,
	}
	cfg.Policy = edfPolicy()
	if _, err := sim.Run(cfg); err != nil {
		t.Fatal(err)
	}
	for _, a := range rec.Activity() {
		if a.TaskID == 1 && a.Fragments < 2 {
			t.Fatalf("preempted τ1 fragments = %v, want >= 2", a.Fragments)
		}
	}
}

func TestActivityTableRenders(t *testing.T) {
	rec, _ := runTraced(t, core.NewEADVFS())
	out := rec.ActivityTable()
	if !strings.Contains(out, "resp-mean") || !strings.Contains(out, "jitter") {
		t.Fatalf("table header missing:\n%s", out)
	}
	if strings.Count(out, "\n") != 3 {
		t.Fatalf("table rows wrong:\n%s", out)
	}
	if NewRecorder().ActivityTable() == "" {
		t.Fatal("empty recorder table empty")
	}
}
