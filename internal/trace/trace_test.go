package trace

import (
	"math"
	"strings"
	"testing"

	"github.com/eadvfs/eadvfs/internal/cpu"
	"github.com/eadvfs/eadvfs/internal/energy"
	"github.com/eadvfs/eadvfs/internal/sched"
	"github.com/eadvfs/eadvfs/internal/sim"
	"github.com/eadvfs/eadvfs/internal/storage"
	"github.com/eadvfs/eadvfs/internal/task"
)

func runTraced(t *testing.T, policy sched.Policy) (*Recorder, *sim.Result) {
	t.Helper()
	rec := NewRecorder()
	src := energy.NewConstant(0.5)
	cfg := &sim.Config{
		Horizon: 25,
		Tasks: []task.Task{
			{ID: 1, Period: 1e9, Deadline: 16, WCET: 4, Offset: 0},
			{ID: 2, Period: 1e9, Deadline: 16, WCET: 1.5, Offset: 5},
		},
		Source:    src,
		Predictor: energy.NewOracle(src),
		Store:     storage.New(1e6, 24),
		CPU:       cpu.TwoSpeed(8),
		Policy:    policy,
		Tracer:    rec,
	}
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rec, res
}

func TestRecorderCoalesces(t *testing.T) {
	rec, res := runTraced(t, sched.LSA{})
	// LSA: idle then one full-speed run per task — the run segments for a
	// task must be contiguous single segments, not per-unit fragments.
	runs := 0
	for _, s := range rec.Segments {
		if s.Mode == sim.ModeRun {
			runs++
			if s.End <= s.Start {
				t.Fatalf("degenerate segment %+v", s)
			}
		}
	}
	if runs > 4 {
		t.Fatalf("run segments not coalesced: %d", runs)
	}
	if math.Abs(rec.BusyTime()-res.BusyTime) > 1e-6 {
		t.Fatalf("trace busy %v != result busy %v", rec.BusyTime(), res.BusyTime)
	}
}

func TestRecorderEvents(t *testing.T) {
	rec, res := runTraced(t, sched.LSA{})
	arrivals, completions := 0, 0
	for _, e := range rec.Events {
		switch e.Kind {
		case "arrival":
			arrivals++
		case "completion":
			completions++
		}
	}
	if arrivals != 2 {
		t.Fatalf("arrivals = %d", arrivals)
	}
	if completions != res.Miss.Finished {
		t.Fatalf("completions %d != finished %d", completions, res.Miss.Finished)
	}
	if rec.MissCount() != res.Miss.Missed {
		t.Fatalf("trace misses %d != result %d", rec.MissCount(), res.Miss.Missed)
	}
}

func TestGanttRendering(t *testing.T) {
	rec, _ := runTraced(t, sched.LSA{})
	g := rec.Gantt(25, 50)
	if !strings.Contains(g, "task 1") || !strings.Contains(g, "task 2") {
		t.Fatalf("gantt missing task rows:\n%s", g)
	}
	// τ2 misses under LSA: an X must appear in its row.
	var tau2row string
	for _, line := range strings.Split(g, "\n") {
		if strings.HasPrefix(line, "task 2") {
			tau2row = line
		}
	}
	if !strings.Contains(tau2row, "X") {
		t.Fatalf("missed job not marked:\n%s", g)
	}
	// τ1 runs at the max level (digit '1' for the two-speed CPU).
	if !strings.Contains(g, "1") {
		t.Fatalf("run level digits missing:\n%s", g)
	}
}

func TestGanttValidation(t *testing.T) {
	rec := NewRecorder()
	for i, f := range []func(){
		func() { rec.Gantt(0, 50) },
		func() { rec.Gantt(10, 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestCSVOutput(t *testing.T) {
	rec, _ := runTraced(t, sched.LSA{})
	csv := rec.CSV()
	if !strings.HasPrefix(csv, "start,end,mode,task,job,level\n") {
		t.Fatalf("csv header wrong: %q", csv[:40])
	}
	if strings.Count(csv, "\n") < 3 {
		t.Fatalf("csv has too few rows:\n%s", csv)
	}
	if !strings.Contains(csv, "run") {
		t.Fatal("csv missing run segments")
	}
}

func TestSegmentsCoverHorizonContiguously(t *testing.T) {
	rec, _ := runTraced(t, sched.LSA{})
	// Segments must tile [0, horizon] without gaps or overlaps.
	prevEnd := 0.0
	for i, s := range rec.Segments {
		if math.Abs(s.Start-prevEnd) > 1e-9 {
			t.Fatalf("segment %d starts at %v, previous ended %v", i, s.Start, prevEnd)
		}
		prevEnd = s.End
	}
	if math.Abs(prevEnd-25) > 1e-9 {
		t.Fatalf("segments end at %v, horizon 25", prevEnd)
	}
}

// edfPolicy avoids an import cycle-free dependency on sched in multiple
// test files.
func edfPolicy() sched.Policy { return sched.EDF{} }
