// Package trace records a simulation schedule — the run/idle/stall
// segments and the point events — and renders it as an ASCII Gantt chart
// or CSV. It implements sim.Tracer and exists to make small scenarios (the
// paper's Figures 1 and 3) inspectable end to end.
package trace

import (
	"fmt"
	"math"
	"strings"

	"github.com/eadvfs/eadvfs/internal/sim"
	"github.com/eadvfs/eadvfs/internal/task"
)

// Segment is a maximal interval of constant processor activity.
type Segment struct {
	Start, End float64
	Mode       sim.Mode
	TaskID     int // -1 when no job is attached
	JobSeq     int
	Level      int
}

// Event is a point occurrence: arrival, completion, miss, stall.
type Event struct {
	Time   float64
	Kind   string
	TaskID int
	JobSeq int
}

// Recorder accumulates segments and events during a run.
type Recorder struct {
	Segments []Segment
	Events   []Event
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// OnSegment implements sim.Tracer.
func (r *Recorder) OnSegment(start, end float64, mode sim.Mode, j *task.Job, level int) {
	id, seq := -1, -1
	if j != nil {
		id, seq = j.TaskID, j.Seq
	}
	// Coalesce with the previous segment when activity is unchanged.
	if n := len(r.Segments); n > 0 {
		last := &r.Segments[n-1]
		if last.Mode == mode && last.TaskID == id && last.JobSeq == seq &&
			(mode != sim.ModeRun || last.Level == level) &&
			math.Abs(last.End-start) < 1e-9 {
			last.End = end
			return
		}
	}
	r.Segments = append(r.Segments, Segment{Start: start, End: end, Mode: mode, TaskID: id, JobSeq: seq, Level: level})
}

// OnEvent implements sim.Tracer.
func (r *Recorder) OnEvent(t float64, kind string, j *task.Job) {
	id, seq := -1, -1
	if j != nil {
		id, seq = j.TaskID, j.Seq
	}
	r.Events = append(r.Events, Event{Time: t, Kind: kind, TaskID: id, JobSeq: seq})
}

// Gantt renders the schedule as one row per task plus an activity row,
// width columns spanning [0, horizon]. Run segments print the operating
// point digit; stalls print '!'; idle is blank.
func (r *Recorder) Gantt(horizon float64, width int) string {
	if horizon <= 0 || width < 10 {
		panic(fmt.Sprintf("trace: bad gantt spec horizon=%v width=%d", horizon, width))
	}
	ids := map[int]bool{}
	for _, s := range r.Segments {
		if s.TaskID >= 0 {
			ids[s.TaskID] = true
		}
	}
	var ordered []int
	for id := range ids {
		ordered = append(ordered, id)
	}
	// insertion sort — tiny n, keeps imports lean
	for i := 1; i < len(ordered); i++ {
		for j := i; j > 0 && ordered[j] < ordered[j-1]; j-- {
			ordered[j], ordered[j-1] = ordered[j-1], ordered[j]
		}
	}

	col := func(t float64) int {
		c := int(float64(width) * t / horizon)
		if c >= width {
			c = width - 1
		}
		if c < 0 {
			c = 0
		}
		return c
	}

	var b strings.Builder
	for _, id := range ordered {
		row := []byte(strings.Repeat(".", width))
		for _, s := range r.Segments {
			if s.TaskID != id {
				continue
			}
			mark := byte('!')
			if s.Mode == sim.ModeRun {
				mark = byte('0' + s.Level%10)
			}
			for c := col(s.Start); c <= col(s.End-1e-12) && c < width; c++ {
				row[c] = mark
			}
		}
		// Overlay arrivals (^), completions (v) and misses (X).
		for _, e := range r.Events {
			if e.TaskID != id {
				continue
			}
			c := col(e.Time)
			switch e.Kind {
			case "arrival":
				if row[c] == '.' {
					row[c] = '^'
				}
			case "completion":
				row[c] = 'v'
			case "miss":
				row[c] = 'X'
			}
		}
		fmt.Fprintf(&b, "task %-3d |%s|\n", id, string(row))
	}
	fmt.Fprintf(&b, "         +%s+\n", strings.Repeat("-", width))
	fmt.Fprintf(&b, "          0%*s\n", width-1, fmt.Sprintf("%g", horizon))
	return b.String()
}

// CSV renders the segments as start,end,mode,task,job,level rows.
func (r *Recorder) CSV() string {
	var b strings.Builder
	b.WriteString("start,end,mode,task,job,level\n")
	for _, s := range r.Segments {
		fmt.Fprintf(&b, "%g,%g,%s,%d,%d,%d\n", s.Start, s.End, s.Mode, s.TaskID, s.JobSeq, s.Level)
	}
	return b.String()
}

// BusyTime returns the total run time recorded, a cross-check against
// sim.Result.BusyTime.
func (r *Recorder) BusyTime() float64 {
	total := 0.0
	for _, s := range r.Segments {
		if s.Mode == sim.ModeRun {
			total += s.End - s.Start
		}
	}
	return total
}

// MissCount returns the number of miss events recorded.
func (r *Recorder) MissCount() int {
	n := 0
	for _, e := range r.Events {
		if e.Kind == "miss" {
			n++
		}
	}
	return n
}
