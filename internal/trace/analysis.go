package trace

import (
	"fmt"
	"math"
	"sort"

	"github.com/eadvfs/eadvfs/internal/sim"
)

// TaskActivity summarizes a task's schedule as recorded: execution share,
// level residency, response-time statistics and jitter. It complements
// sim.Result.PerTask with quantities only derivable from the full trace.
type TaskActivity struct {
	TaskID    int
	BusyTime  float64
	LevelTime map[int]float64 // run time per operating point

	// Response-time statistics over completed jobs.
	Completions  int
	ResponseMin  float64
	ResponseMax  float64
	ResponseMean float64
	// Jitter is the max-min spread of response times — the metric
	// control-loop designers care about.
	Jitter float64

	// Fragments counts the run segments per completed job on average:
	// 1 means jobs run uninterrupted; higher means preemption/stretch
	// phases chop them up.
	Fragments float64
}

// Activity computes per-task activity from the recorded trace.
func (r *Recorder) Activity() []TaskActivity {
	type acc struct {
		busy      float64
		levels    map[int]float64
		segments  int
		responses []float64
	}
	byID := map[int]*acc{}
	get := func(id int) *acc {
		a, ok := byID[id]
		if !ok {
			a = &acc{levels: map[int]float64{}}
			byID[id] = a
		}
		return a
	}
	for _, s := range r.Segments {
		if s.Mode != sim.ModeRun || s.TaskID < 0 {
			continue
		}
		a := get(s.TaskID)
		a.busy += s.End - s.Start
		a.levels[s.Level] += s.End - s.Start
		a.segments++
	}
	// Pair completions with arrivals per (task, seq).
	arrivals := map[[2]int]float64{}
	for _, e := range r.Events {
		if e.Kind == "arrival" {
			arrivals[[2]int{e.TaskID, e.JobSeq}] = e.Time
		}
	}
	for _, e := range r.Events {
		if e.Kind != "completion" {
			continue
		}
		if at, ok := arrivals[[2]int{e.TaskID, e.JobSeq}]; ok {
			a := get(e.TaskID)
			a.responses = append(a.responses, e.Time-at)
		}
	}

	var out []TaskActivity
	for id, a := range byID {
		ta := TaskActivity{
			TaskID:      id,
			BusyTime:    a.busy,
			LevelTime:   a.levels,
			Completions: len(a.responses),
			ResponseMin: math.Inf(1),
		}
		sum := 0.0
		for _, resp := range a.responses {
			sum += resp
			ta.ResponseMin = math.Min(ta.ResponseMin, resp)
			ta.ResponseMax = math.Max(ta.ResponseMax, resp)
		}
		if n := len(a.responses); n > 0 {
			ta.ResponseMean = sum / float64(n)
			ta.Jitter = ta.ResponseMax - ta.ResponseMin
			ta.Fragments = float64(a.segments) / float64(n)
		} else {
			ta.ResponseMin = 0
		}
		out = append(out, ta)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TaskID < out[j].TaskID })
	return out
}

// ActivityTable renders the activity summary as aligned text.
func (r *Recorder) ActivityTable() string {
	acts := r.Activity()
	if len(acts) == 0 {
		return "(no task activity recorded)\n"
	}
	out := fmt.Sprintf("%-6s %10s %6s %10s %10s %10s %10s\n",
		"task", "busy", "done", "resp-mean", "resp-max", "jitter", "fragments")
	for _, a := range acts {
		out += fmt.Sprintf("%-6d %10.2f %6d %10.2f %10.2f %10.2f %10.2f\n",
			a.TaskID, a.BusyTime, a.Completions, a.ResponseMean, a.ResponseMax, a.Jitter, a.Fragments)
	}
	return out
}
