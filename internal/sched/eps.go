package sched

// TimeEps is the single shared tolerance for comparing scheduling instants
// (the s1/s2 start times of eqs. 7–8 against the current time). An instant
// within TimeEps of a computed start time counts as having reached it,
// preventing zero-length re-decision loops at event boundaries. The value
// is far below any meaningful simulation timescale (periods are 10–100
// units), so the tolerance never changes which operating point a job runs
// at except exactly on a boundary.
//
// Every float comparison of a "have we reached instant t yet" kind — in
// this package, in internal/core's EA-DVFS and in the reference
// implementations under internal/refimpl — must go through Reached so the
// tie-breaking rule stays identical everywhere; the differential harness
// (internal/verify) asserts bit-identical decisions between the optimized
// and reference policies, which only holds if they share one epsilon.
const TimeEps = 1e-9

// Reached reports whether the current instant now has reached the computed
// start time t, up to TimeEps: now >= t-TimeEps. Equivalently t <= now+TimeEps,
// the form the paper's s1 = s2 "sufficient energy" test (§4.3 step 4a) is
// usually written in.
func Reached(now, t float64) bool { return now >= t-TimeEps }
