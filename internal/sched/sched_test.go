package sched

import (
	"math"
	"testing"

	"github.com/eadvfs/eadvfs/internal/cpu"
	"github.com/eadvfs/eadvfs/internal/energy"
	"github.com/eadvfs/eadvfs/internal/task"
)

// ctxWith builds a decision context with a constant-power oracle predictor.
func ctxWith(now, stored, harvestPower float64, proc *cpu.Processor, jobs ...*task.Job) *Context {
	q := task.NewReadyQueue()
	for _, j := range jobs {
		q.Push(j)
	}
	src := energy.NewConstant(harvestPower)
	return &Context{
		Now:       now,
		Queue:     q,
		Stored:    stored,
		Capacity:  math.Inf(1),
		CPU:       proc,
		Predictor: energy.NewOracle(src),
	}
}

func TestAvailableEnergy(t *testing.T) {
	ctx := ctxWith(10, 24, 0.5, cpu.TwoSpeed(8))
	if got := ctx.AvailableEnergy(26); math.Abs(got-(24+8)) > 1e-12 {
		t.Fatalf("available = %v, want 32", got)
	}
	// Window ending in the past clamps to stored only.
	if got := ctx.AvailableEnergy(5); got != 24 {
		t.Fatalf("past-window available = %v, want 24", got)
	}
}

func TestEDFRunsHeadAtMax(t *testing.T) {
	j1 := task.NewJob(0, 0, 0, 30, 2)
	j2 := task.NewJob(1, 0, 0, 10, 2)
	ctx := ctxWith(0, 0, 0, cpu.XScale(), j1, j2) // no energy: EDF does not care
	d := EDF{}.Decide(ctx)
	if d.Job != j2 {
		t.Fatal("EDF did not pick the earliest deadline")
	}
	if d.Level != ctx.CPU.MaxLevel() {
		t.Fatalf("EDF level = %d, want max", d.Level)
	}
}

func TestEDFIdleOnEmptyQueue(t *testing.T) {
	ctx := ctxWith(0, 100, 1, cpu.XScale())
	d := EDF{}.Decide(ctx)
	if d.Job != nil || !math.IsInf(d.Until, 1) {
		t.Fatalf("EDF on empty queue = %+v", d)
	}
}

// The motivational example (§2): EC(0)=24, Pmax=8, Ps=0.5, τ1=(0,16,4).
// LSA must start τ1 at s2 = 12.
func TestLSAMotivationalExampleStartsAt12(t *testing.T) {
	j := task.NewJob(1, 0, 0, 16, 4)
	proc := cpu.TwoSpeed(8)

	ctx := ctxWith(0, 24, 0.5, proc, j)
	d := LSA{}.Decide(ctx)
	if d.Job != nil {
		t.Fatal("LSA started before s2")
	}
	if math.Abs(d.Until-12) > 1e-9 {
		t.Fatalf("LSA idle-until = %v, want s2 = 12", d.Until)
	}

	// At t=12 with the stored energy unchanged (idle, harvesting 0.5/unit:
	// stored becomes 24+6=30; available = 30 + 0.5*4 = 32; s2 = 16-4 = 12).
	ctx = ctxWith(12, 30, 0.5, proc, j)
	d = LSA{}.Decide(ctx)
	if d.Job != j {
		t.Fatal("LSA did not start at s2")
	}
	if d.Level != proc.MaxLevel() {
		t.Fatal("LSA must always run at full speed")
	}
}

func TestLSARunsImmediatelyWithAmpleEnergy(t *testing.T) {
	j := task.NewJob(0, 0, 0, 16, 4)
	ctx := ctxWith(0, 1e6, 0, cpu.TwoSpeed(8), j)
	d := LSA{}.Decide(ctx)
	if d.Job != j {
		t.Fatal("LSA idled despite ample energy")
	}
}

func TestLSAIdleOnEmptyQueue(t *testing.T) {
	ctx := ctxWith(0, 10, 1, cpu.XScale())
	if d := (LSA{}).Decide(ctx); d.Job != nil {
		t.Fatal("LSA ran with no ready job")
	}
}

func TestLSANoEnergyIdlesUntilDeadlinePasses(t *testing.T) {
	// Zero stored, zero harvest: s2 = deadline, i.e. never start usefully.
	j := task.NewJob(0, 0, 0, 10, 4)
	ctx := ctxWith(0, 0, 0, cpu.TwoSpeed(8), j)
	d := LSA{}.Decide(ctx)
	if d.Job != nil {
		t.Fatal("LSA ran with zero available energy")
	}
	if math.Abs(d.Until-10) > 1e-9 {
		t.Fatalf("LSA idle-until = %v, want deadline 10", d.Until)
	}
}

func TestGreedyStretchPicksMinFeasibleLevel(t *testing.T) {
	// Figure 3 shape: ample energy, wide window → lowest level, run to
	// completion (Until = +Inf), never the s2 switch.
	j := task.NewJob(0, 0, 0, 16, 4)
	ctx := ctxWith(0, 32, 0, cpu.Fig3(), j)
	d := GreedyStretch{}.Decide(ctx)
	if d.Job != j || d.Level != 0 {
		t.Fatalf("greedy decision = %+v, want level 0", d)
	}
	if !math.IsInf(d.Until, 1) {
		t.Fatalf("greedy Until = %v, want +Inf (no s2 clamp)", d.Until)
	}
}

func TestGreedyStretchInfeasibleFallsBackToMax(t *testing.T) {
	j := task.NewJob(0, 0, 0, 3, 4) // cannot finish even flat-out
	ctx := ctxWith(0, 100, 0, cpu.XScale(), j)
	d := GreedyStretch{}.Decide(ctx)
	if d.Job != j || d.Level != ctx.CPU.MaxLevel() {
		t.Fatalf("infeasible greedy decision = %+v", d)
	}
}

func TestGreedyStretchWaitsForS1(t *testing.T) {
	// Low energy: even the slow level cannot run until the deadline yet.
	j := task.NewJob(0, 0, 0, 16, 4)
	// Fig3 proc: level 0 power 1. Available = 8 → srn = 8 → s1 = 8.
	ctx := ctxWith(0, 8, 0, cpu.Fig3(), j)
	d := GreedyStretch{}.Decide(ctx)
	if d.Job != nil {
		t.Fatal("greedy ran before s1")
	}
	if math.Abs(d.Until-8) > 1e-9 {
		t.Fatalf("greedy idle-until = %v, want s1 = 8", d.Until)
	}
}

func TestDecisionHelpers(t *testing.T) {
	j := task.NewJob(0, 0, 0, 10, 1)
	r := Run(j, 3, 7)
	if r.Job != j || r.Level != 3 || r.Until != 7 {
		t.Fatalf("Run helper = %+v", r)
	}
	i := Idle(5)
	if i.Job != nil || i.Until != 5 {
		t.Fatalf("Idle helper = %+v", i)
	}
}

func TestPolicyNames(t *testing.T) {
	if (EDF{}).Name() != "edf" || (LSA{}).Name() != "lsa" || (GreedyStretch{}).Name() != "greedy-stretch" {
		t.Fatal("policy names changed — reports and EXPERIMENTS.md reference them")
	}
}

func TestStaticDVFSPicksUtilizationLevel(t *testing.T) {
	j := task.NewJob(0, 0, 0, 100, 1)
	ctx := ctxWith(0, 0, 0, cpu.XScale(), j) // energy-oblivious: stored 0 is fine
	d := StaticDVFS{Utilization: 0.5}.Decide(ctx)
	if d.Job != j {
		t.Fatal("static DVFS did not run the head job")
	}
	// Lowest XScale speed >= 0.5 is 0.6 (level 2).
	if d.Level != 2 {
		t.Fatalf("level = %d, want 2", d.Level)
	}
}

func TestStaticDVFSRespectsJobFeasibility(t *testing.T) {
	// U = 0.2 would pick level 1 (speed 0.4), but this job needs speed
	// >= 0.8 to meet its deadline.
	j := task.NewJob(0, 0, 0, 5, 4)
	ctx := ctxWith(0, 0, 0, cpu.XScale(), j)
	d := StaticDVFS{Utilization: 0.2}.Decide(ctx)
	if d.Level != 3 {
		t.Fatalf("level = %d, want 3 (speed 0.8)", d.Level)
	}
}

func TestStaticDVFSIdleOnEmptyQueue(t *testing.T) {
	ctx := ctxWith(0, 10, 1, cpu.XScale())
	if d := (StaticDVFS{Utilization: 0.4}).Decide(ctx); d.Job != nil {
		t.Fatal("static DVFS ran with no job")
	}
}

func TestStaticDVFSName(t *testing.T) {
	if (StaticDVFS{}).Name() != "static-dvfs" {
		t.Fatal("name changed")
	}
}
