package sched

import (
	"math"
	"testing"

	"github.com/eadvfs/eadvfs/internal/cpu"
	"github.com/eadvfs/eadvfs/internal/energy"
	"github.com/eadvfs/eadvfs/internal/task"
)

// TestReachedBoundary pins the shared epsilon's tie-breaking exactly at
// the boundary. Every policy in the repository (and the reference
// implementations in internal/refimpl) routes "have we reached instant t"
// through Reached, so this behavior is part of the differential
// bit-identity contract — do not loosen it without updating DESIGN.md §11.
func TestReachedBoundary(t *testing.T) {
	const tt = 10.0
	cases := []struct {
		name string
		now  float64
		want bool
	}{
		{"exactly at t", tt, true},
		{"after t", tt + 1, true},
		{"exactly TimeEps early", tt - TimeEps, true},
		{"just inside the tolerance", tt - TimeEps/2, true},
		{"beyond the tolerance", tt - 2*TimeEps, false},
		{"well before", tt - 1, false},
	}
	for _, tc := range cases {
		if got := Reached(tc.now, tt); got != tc.want {
			t.Errorf("%s: Reached(%.17g, %g) = %v, want %v", tc.name, tc.now, tt, got, tc.want)
		}
	}
	// Degenerate instants must not panic and must order sensibly.
	if !Reached(math.Inf(1), 5) {
		t.Error("+Inf has reached every finite instant")
	}
	if Reached(5, math.Inf(1)) {
		t.Error("no finite instant reaches +Inf")
	}
}

// TestMinLevelForExactBoundary pins level selection when the stretched
// execution time lands exactly on the window: work/S_n == window must pick
// level n (ineq. 6 is non-strict), and one ULP more work must escalate to
// the next level. TwoSpeed's 0.5/1.0 speeds make the arithmetic exact in
// binary, so this is a true boundary, not a near-boundary.
func TestMinLevelForExactBoundary(t *testing.T) {
	proc := cpu.TwoSpeed(4) // speeds {0.5, 1.0}
	level, ok := proc.MinLevelFor(4, 8)
	if !ok || level != 0 {
		t.Fatalf("work 4 in window 8 at speed 0.5 is exactly feasible: got level %d ok %v", level, ok)
	}
	// One ULP more work and the slow level no longer fits.
	over := math.Nextafter(4, 5)
	level, ok = proc.MinLevelFor(over, 8)
	if !ok || level != 1 {
		t.Fatalf("work 4+ulp must escalate to level 1: got level %d ok %v", level, ok)
	}
	// Exactly at the full-speed bound the set is still feasible...
	level, ok = proc.MinLevelFor(8, 8)
	if !ok || level != 1 {
		t.Fatalf("work 8 in window 8 at speed 1.0: got level %d ok %v", level, ok)
	}
	// ...and one ULP beyond it is not.
	if _, ok := proc.MinLevelFor(math.Nextafter(8, 9), 8); ok {
		t.Fatal("work 8+ulp in window 8 must be infeasible")
	}
}

// TestLSAStartBoundary pins the LSA start decision exactly at s2: with a
// zero predictor, stored energy E gives s2 = D − E/Pmax. At s2 == now and
// within TimeEps past it the job must start at full speed; beyond the
// tolerance the processor must idle until s2.
func TestLSAStartBoundary(t *testing.T) {
	proc := cpu.TwoSpeed(4) // MaxPower 4
	mk := func(stored float64) *Context {
		q := task.NewReadyQueue()
		q.Push(task.NewJob(0, 0, 0, 10, 2)) // Abs = 10
		return &Context{
			Now: 5, Queue: q, Stored: stored, Capacity: 100,
			CPU: proc, Predictor: energy.Zero{},
		}
	}
	pol := LSA{}

	// stored = 20 → srMax = 5 → s2 = 10 − 5 = 5 = now: start.
	if d := pol.Decide(mk(20)); d.Job == nil || d.Level != proc.MaxLevel() {
		t.Fatalf("exactly at s2 LSA must start at full speed, got %+v", d)
	}
	// s2 = now + TimeEps/2: inside the tolerance, still starts.
	if d := pol.Decide(mk(4 * (5 - TimeEps/2))); d.Job == nil {
		t.Fatalf("within TimeEps of s2 LSA must start, got idle until %v", d.Until)
	}
	// s2 = now + 4·TimeEps: beyond the tolerance, idles until s2.
	d := pol.Decide(mk(4 * (5 - 4*TimeEps)))
	if d.Job != nil {
		t.Fatalf("before s2 LSA must idle, got run at level %d", d.Level)
	}
	if math.Abs(d.Until-(5+4*TimeEps)) > TimeEps {
		t.Fatalf("idle must end at s2 ≈ %v, got %v", 5+4*TimeEps, d.Until)
	}
}
