// Package sched defines the scheduling-policy interface the simulation
// engine drives, and the baseline policies the paper compares against:
// plain EDF (energy-oblivious full speed), the lazy scheduling algorithm
// (LSA) of Moser et al. [7,10], and the greedy-stretch straw man the paper
// dismantles in §4.3. The paper's own EA-DVFS policy lives in
// internal/core.
package sched

import (
	"math"

	"github.com/eadvfs/eadvfs/internal/cpu"
	"github.com/eadvfs/eadvfs/internal/energy"
	"github.com/eadvfs/eadvfs/internal/obs"
	"github.com/eadvfs/eadvfs/internal/task"
)

// Context is the system state a policy observes at a decision point.
//
// Reuse contract: the engine owns ONE Context per run and overwrites its
// fields in place before every Decide call (the hot path allocates
// nothing per decision). A policy must therefore treat the pointer as
// valid only for the duration of Decide — read it, decide, return; never
// retain the *Context (or its Queue) past the call. Policies can (and
// should) be stateless: the paper's algorithms are pure functions of this
// state. Per-job state that must survive across decisions (e.g. the
// EA-DVFS s2 lock) lives on the Job itself.
type Context struct {
	Now       float64
	Queue     ReadyView
	Stored    float64 // EC(now)
	Capacity  float64 // C, possibly +Inf
	CPU       *cpu.Processor
	Predictor energy.Predictor

	// Reclaimed is the cumulative WCET budget (work units at f_max) that
	// completed jobs have left unspent so far in this run — the engine's
	// authoritative early-completion tally, and the raw material of
	// online slack reclamation (internal/workload). Zero when every job
	// runs to its declared worst case.
	Reclaimed float64

	// Probe, when non-nil, receives decision-audit records
	// (internal/obs). Policies emit through Audit, which nil-checks, so
	// the disabled path stays allocation-free.
	Probe obs.Probe
}

// ReadyView is the read-only view of the EDF-ordered ready queue a policy
// decides over. The optimized engine passes *task.ReadyQueue (a heap); the
// differential reference engine (internal/refimpl) substitutes a
// linear-scan list. Policies only ever inspect the head — mutating the
// queue is the engine's job.
type ReadyView interface {
	// Peek returns the earliest-deadline ready job, or nil when none.
	Peek() *task.Job
	// Len returns the number of ready jobs.
	Len() int
}

// Audit sends a decision-audit record to the attached probe, if any.
// Policies should guard the record construction itself with Auditing when
// filling it requires extra computation.
func (c *Context) Audit(rec obs.DecisionRecord) {
	if c.Probe != nil {
		c.Probe.OnDecision(rec)
	}
}

// Auditing reports whether a probe is attached — i.e. whether building an
// audit record is worth the work.
func (c *Context) Auditing() bool { return c.Probe != nil }

// AuditJob emits the standard job-decision audit record: the job's window,
// the energy estimate the policy used, its s1/s2 instants and what it
// chose. No-op without a probe; a plain method (not a closure) so the
// disabled path allocates nothing. Pass level -1 for idle decisions;
// j may be nil (empty queue).
func (c *Context) AuditJob(policy string, j *task.Job, available, s1, s2 float64, level int, until float64, reason obs.Reason) {
	if c.Probe == nil {
		return
	}
	rec := obs.DecisionRecord{
		Time: c.Now, Policy: policy, TaskID: -1, Seq: -1,
		Stored: c.Stored, S1: s1, S2: s2,
		Level: level, Until: until, Reason: reason,
	}
	if j != nil {
		rec.TaskID, rec.Seq = j.TaskID, j.Seq
		rec.Deadline = j.Abs
		rec.Slack = j.Abs - c.Now
		rec.Predicted = available - c.Stored
		rec.Available = available
	}
	if level >= 0 {
		rec.Speed = c.CPU.Speed(level)
	}
	c.Probe.OnDecision(rec)
}

// AvailableEnergy returns the paper's EC(am) + ÊS(am, am+dm) estimate for a
// window ending at `until`: stored energy plus the predicted harvest.
func (c *Context) AvailableEnergy(until float64) float64 {
	if until < c.Now {
		until = c.Now
	}
	return c.Stored + c.Predictor.PredictEnergy(c.Now, until)
}

// Decision is what a policy asks the engine to do until the next event.
type Decision struct {
	// Job to execute; nil means idle (harvest only).
	Job *task.Job
	// Level is the processor operating point when Job != nil.
	Level int
	// Until is the latest time at which the engine must come back for a
	// fresh decision (e.g. the s1 or s2 instants). The engine re-decides
	// earlier whenever any event fires. +Inf means "until the next
	// event".
	Until float64
}

// Idle returns an idle decision with the given re-evaluation deadline.
func Idle(until float64) Decision {
	return Decision{Job: nil, Until: until}
}

// Run returns an execute decision.
func Run(j *task.Job, level int, until float64) Decision {
	return Decision{Job: j, Level: level, Until: until}
}

// Policy decides what the processor does. Decide is called at every
// scheduling event (arrival, completion, deadline, unit boundary, storage
// crossing, Until expiry).
type Policy interface {
	Name() string
	Decide(ctx *Context) Decision
}

// EDF is the energy-oblivious baseline: run the earliest-deadline ready
// job flat-out whenever one exists. With infinite storage EA-DVFS reduces
// to exactly this policy (§4.3), which the integration tests assert.
type EDF struct{}

// Name implements Policy.
func (EDF) Name() string { return "edf" }

// Decide implements Policy.
func (EDF) Decide(ctx *Context) Decision {
	j := ctx.Queue.Peek()
	if j == nil {
		return Idle(math.Inf(1))
	}
	return Run(j, ctx.CPU.MaxLevel(), math.Inf(1))
}

// LSA is the lazy scheduling algorithm of Moser et al. as the paper
// describes it (§1): full power only; start the earliest-deadline task at
// the last instant from which the system "is able to keep on running at
// the maximum power until the deadline of the task", i.e. at
//
//	s2 = max(now, D − (EC + ÊS(now, D)) / Pmax).
//
// Before s2 the processor idles and the storage recharges. s2 is
// re-evaluated at every event, so the start time tracks the true energy
// state exactly as the original online algorithm does.
type LSA struct{}

// Name implements Policy.
func (LSA) Name() string { return "lsa" }

// Decide implements Policy.
func (LSA) Decide(ctx *Context) Decision {
	j := ctx.Queue.Peek()
	if j == nil {
		ctx.AuditJob("lsa", nil, 0, 0, 0, -1, math.Inf(1), obs.ReasonIdleNoJob)
		return Idle(math.Inf(1))
	}
	available := ctx.AvailableEnergy(j.Abs)
	srMax := available / ctx.CPU.MaxPower()
	s2 := math.Max(ctx.Now, j.Abs-srMax)

	if !Reached(ctx.Now, s2) {
		ctx.AuditJob("lsa", j, available, s2, s2, -1, s2, obs.ReasonIdleRecharge)
		return Idle(s2)
	}
	if ctx.Auditing() {
		// Distinguish the paper's two ways of reaching a full-speed
		// start: energy-rich (flat-out from now to the deadline is
		// affordable, the s2 = now degenerate case) versus the lazy
		// start at a genuine s2.
		reason := obs.ReasonFullSpeedEnergyPoor
		if srMax >= j.Abs-ctx.Now-TimeEps {
			reason = obs.ReasonFullSpeedEnergyRich
		}
		ctx.AuditJob("lsa", j, available, s2, s2, ctx.CPU.MaxLevel(), math.Inf(1), reason)
	}
	return Run(j, ctx.CPU.MaxLevel(), math.Inf(1))
}

// StaticDVFS is the classic energy-oblivious DVFS baseline (Pillai & Shin
// style static voltage scaling): every job runs at the lowest operating
// point whose normalized speed is at least the task set's utilization U —
// timing-safe under EDF for implicit deadlines, and cheaper than full
// speed, but blind to the energy state. It isolates how much of EA-DVFS's
// win comes from plain DVFS versus from *energy awareness*.
type StaticDVFS struct {
	// Utilization is the task-set utilization the level is derived from.
	Utilization float64
}

// Name implements Policy.
func (StaticDVFS) Name() string { return "static-dvfs" }

// Decide implements Policy.
func (p StaticDVFS) Decide(ctx *Context) Decision {
	j := ctx.Queue.Peek()
	if j == nil {
		return Idle(math.Inf(1))
	}
	level := ctx.CPU.MaxLevel()
	for n := 0; n < ctx.CPU.Levels(); n++ {
		if ctx.CPU.Speed(n) >= p.Utilization {
			level = n
			break
		}
	}
	// Per-job feasibility still binds: never pick a level that cannot
	// meet this job's deadline.
	if minL, ok := ctx.CPU.MinLevelFor(j.Remaining(), j.Abs-ctx.Now); ok && minL > level {
		level = minL
	}
	return Run(j, level, math.Inf(1))
}

// GreedyStretch is EA-DVFS without the §4.3 guard: it picks the minimum
// feasible frequency and runs the job there to completion, never switching
// back to full speed at s2. The paper's Figure 3 shows this steals so much
// time from future tasks that deadlines are missed even with ample energy;
// the ablation bench quantifies that.
type GreedyStretch struct{}

// Name implements Policy.
func (GreedyStretch) Name() string { return "greedy-stretch" }

// Decide implements Policy.
func (GreedyStretch) Decide(ctx *Context) Decision {
	j := ctx.Queue.Peek()
	if j == nil {
		return Idle(math.Inf(1))
	}
	level, feasible := ctx.CPU.MinLevelFor(j.Remaining(), j.Abs-ctx.Now)
	if !feasible {
		return Run(j, ctx.CPU.MaxLevel(), math.Inf(1))
	}
	available := ctx.AvailableEnergy(j.Abs)
	srN := available / ctx.CPU.Power(level)
	s1 := math.Max(ctx.Now, j.Abs-srN)
	if !Reached(ctx.Now, s1) {
		return Idle(s1)
	}
	return Run(j, level, math.Inf(1))
}
