package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"

	"github.com/eadvfs/eadvfs"
	"github.com/eadvfs/eadvfs/internal/service"
)

// serviceConfig is the fixed request the service cases post: a short
// paper-style run, small enough that the HTTP/cache overhead being
// measured is not drowned by engine time.
func serviceConfig() eadvfs.Config {
	return eadvfs.Config{Horizon: 2000, Policy: "ea-dvfs", Capacity: 300, Seed: 1}
}

// postSim drives one request through the full handler path (routing,
// strict decode, digest, cache, admission) without a network socket.
func postSim(h http.Handler, body []byte) (*httptest.ResponseRecorder, error) {
	req := httptest.NewRequest(http.MethodPost, "/v1/sim", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		return nil, fmt.Errorf("bench: service returned %d: %s", rec.Code, rec.Body.Bytes())
	}
	return rec, nil
}

// missRateOf extracts the run's miss rate from a service response — the
// shape metric: a perf change that moves it broke the request path's
// correctness, not just its speed.
func missRateOf(rec *httptest.ResponseRecorder) (float64, error) {
	var env struct {
		Result struct {
			MissRate float64
		} `json:"result"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
		return 0, fmt.Errorf("bench: service response: %w", err)
	}
	return env.Result.MissRate, nil
}

// runServiceMiss measures the cache-miss request path: every iteration
// hits a fresh server, so the request decodes, digests, runs the engine
// and populates the cache.
func runServiceMiss(n int) (map[string]float64, error) {
	body, err := json.Marshal(serviceConfig())
	if err != nil {
		return nil, err
	}
	var rate float64
	for i := 0; i < n; i++ {
		h := service.New(service.Options{Workers: 1}).Handler()
		rec, err := postSim(h, body)
		if err != nil {
			return nil, err
		}
		if got := rec.Header().Get("X-Cache"); got != "miss" {
			return nil, fmt.Errorf("bench: fresh server answered X-Cache=%q, want miss", got)
		}
		if rate, err = missRateOf(rec); err != nil {
			return nil, err
		}
	}
	return map[string]float64{"missrate/run": rate}, nil
}

// runServiceHit measures the cache-hit request path: one server, cache
// primed once outside the measured loop, every iteration served from the
// stored bytes.
func runServiceHit(n int) (map[string]float64, error) {
	body, err := json.Marshal(serviceConfig())
	if err != nil {
		return nil, err
	}
	h := service.New(service.Options{Workers: 1}).Handler()
	if _, err := postSim(h, body); err != nil {
		return nil, err
	}
	var rate float64
	for i := 0; i < n; i++ {
		rec, err := postSim(h, body)
		if err != nil {
			return nil, err
		}
		if got := rec.Header().Get("X-Cache"); got != "hit" {
			return nil, fmt.Errorf("bench: primed server answered X-Cache=%q, want hit", got)
		}
		if rate, err = missRateOf(rec); err != nil {
			return nil, err
		}
	}
	return map[string]float64{"missrate/run": rate}, nil
}
