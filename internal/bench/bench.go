// Package bench defines the repository's canonical experiment-level
// benchmark workloads in one place, so that `go test -bench` (bench_test.go
// delegates here) and the standalone cmd/eabench harness measure exactly
// the same code paths and report exactly the same shape metrics.
//
// Each Case runs a figure/table regeneration (or a raw engine run) n times
// and returns the shape metrics of the last execution — miss rates,
// normalized remaining energy, capacity ratios. A perf change that also
// moves a shape metric is a correctness regression, not an optimization;
// BENCH_baseline.json (repo root) records the reference values and
// DESIGN.md §9 documents how to regenerate it.
package bench

import (
	"fmt"

	"github.com/eadvfs/eadvfs/internal/core"
	"github.com/eadvfs/eadvfs/internal/energy"
	"github.com/eadvfs/eadvfs/internal/experiment"
	"github.com/eadvfs/eadvfs/internal/sim"
	"github.com/eadvfs/eadvfs/internal/storage"
)

// Case is one benchmark workload.
type Case struct {
	Name string
	// Run executes the workload n times and returns the shape metrics of
	// the last execution.
	Run func(n int) (map[string]float64, error)
}

// spec returns the experiment spec sized for benchmarking (the historical
// bench_test.go sizing — changing it invalidates BENCH_baseline.json).
func spec() experiment.Spec {
	s := experiment.DefaultSpec()
	s.Replications = 2
	return s
}

// Cases returns every benchmark workload, in reporting order.
func Cases() []Case {
	return []Case{
		{Name: "Fig5EnergySource", Run: runFig5},
		{Name: "Fig6RemainingEnergyLowU", Run: remaining(0.4)},
		{Name: "Fig7RemainingEnergyHighU", Run: remaining(0.8)},
		{Name: "Fig8MissRateLowU", Run: missRate(0.4)},
		{Name: "Fig9MissRateHighU", Run: missRate(0.8)},
		{Name: "Table1MinCapacityRatio", Run: runTable1},
		{Name: "Table1WarmBisection", Run: runTable1Warm},
		{Name: "RunManyBatch", Run: runRunManyBatch},
		{Name: "Engine", Run: runEngine},
		{Name: "EngineStochastic", Run: runEngineStochastic},
		{Name: "EngineDPM", Run: runEngineDPM},
		{Name: "ServiceRequestMiss", Run: runServiceMiss},
		{Name: "ServiceRequestHit", Run: runServiceHit},
	}
}

// Find returns the named case.
func Find(name string) (Case, error) {
	for _, c := range Cases() {
		if c.Name == name {
			return c, nil
		}
	}
	return Case{}, fmt.Errorf("bench: unknown case %q", name)
}

func runFig5(n int) (map[string]float64, error) {
	var mean float64
	for i := 0; i < n; i++ {
		s := experiment.SourceTrace(uint64(i+1), 10000)
		mean = s.Mean()
	}
	return map[string]float64{"power/mean": mean}, nil
}

func remaining(u float64) func(int) (map[string]float64, error) {
	return func(n int) (map[string]float64, error) {
		s := spec()
		s.Utilization = u
		var ea, lsa float64
		for i := 0; i < n; i++ {
			res, err := experiment.RemainingEnergy(s, []string{"lsa", "ea-dvfs"})
			if err != nil {
				return nil, err
			}
			ea = res.Curves["ea-dvfs"].Mean()
			lsa = res.Curves["lsa"].Mean()
		}
		return map[string]float64{"energy/ea-dvfs": ea, "energy/lsa": lsa}, nil
	}
}

func missRate(u float64) func(int) (map[string]float64, error) {
	return func(n int) (map[string]float64, error) {
		s := spec()
		s.Replications = 3
		s.Utilization = u
		s.Capacities = []float64{50, 200, 1000, 5000}
		var res *experiment.MissRateResult
		for i := 0; i < n; i++ {
			var err error
			res, err = experiment.MissRateSweep(s, []string{"lsa", "ea-dvfs"})
			if err != nil {
				return nil, err
			}
		}
		last := len(res.Capacities) - 1
		return map[string]float64{
			"missrate/lsa-small": res.Rates["lsa"][0],
			"missrate/ea-small":  res.Rates["ea-dvfs"][0],
			"missrate/lsa-large": res.Rates["lsa"][last],
			"missrate/ea-large":  res.Rates["ea-dvfs"][last],
		}, nil
	}
}

func runTable1(n int) (map[string]float64, error) {
	s := spec()
	s.Horizon = 5000 // bisection is ~20 runs per (rep, policy, U)
	utils := []float64{0.2, 0.4, 0.6, 0.8}
	var res *experiment.MinCapacityResult
	for i := 0; i < n; i++ {
		var err error
		res, err = experiment.MinCapacity(s, utils, []string{"lsa", "ea-dvfs"})
		if err != nil {
			return nil, err
		}
	}
	out := make(map[string]float64, len(utils))
	for i, u := range utils {
		out[fmt.Sprintf("ratio/u%g", u)] = res.Ratio[i]
	}
	return out, nil
}

// runTable1Warm isolates one warm-start capacity search (one replication,
// U=0.6, both Table 1 policies on a shared MinCapacitySearcher) from the
// full Table 1 sweep, so eabench can watch the amortized bisection path —
// runner reuse, probe memo, first-miss early exit — without the sweep's
// parallel-runner noise. The cmin metrics pin the searched capacities; the
// warm-vs-cold equality itself is pinned by the experiment tests.
func runTable1Warm(n int) (map[string]float64, error) {
	s := spec()
	s.Horizon = 5000
	s.Utilization = 0.6
	factories, err := s.Policies([]string{"lsa", "ea-dvfs"})
	if err != nil {
		return nil, err
	}
	rep, err := experiment.Replicate(s, 0)
	if err != nil {
		return nil, err
	}
	rep.PrepareSource(s.Horizon)
	var cLSA, cEA float64
	for i := 0; i < n; i++ {
		search, err := experiment.NewMinCapacitySearcher(s, rep, factories)
		if err != nil {
			return nil, err
		}
		var ok bool
		if cLSA, ok, err = search.Search(0, experiment.MinCapLo, experiment.MinCapMaxHi, experiment.MinCapTol); err != nil {
			return nil, err
		} else if !ok {
			return nil, fmt.Errorf("bench: lsa search found no zero-miss capacity")
		}
		if cEA, ok, err = search.Search(1, experiment.MinCapLo, experiment.MinCapMaxHi, experiment.MinCapTol); err != nil {
			return nil, err
		} else if !ok {
			return nil, fmt.Errorf("bench: ea-dvfs search found no zero-miss capacity")
		}
	}
	return map[string]float64{
		"cmin/lsa":     cLSA,
		"cmin/ea-dvfs": cEA,
		"cmin/ratio":   cLSA / cEA,
	}, nil
}

// runRunManyBatch measures the batched grid entry point: one replication's
// full (capacity × policy) grid through experiment.RunBatch, i.e. the
// amortized Runner executing every cell on one arena and one solar fork.
func runRunManyBatch(n int) (map[string]float64, error) {
	s := spec()
	factories, err := s.Policies([]string{"lsa", "ea-dvfs"})
	if err != nil {
		return nil, err
	}
	rep, err := experiment.Replicate(s, 0)
	if err != nil {
		return nil, err
	}
	rep.PrepareSource(s.Horizon)
	out := make(map[string]float64, 3)
	for i := 0; i < n; i++ {
		grid, err := experiment.RunBatch(nil, s, rep, s.Capacities, factories, false)
		if err != nil {
			return nil, err
		}
		last := len(s.Capacities) - 1
		out["missrate/lsa-small"] = grid[0][0].Miss.Rate()
		out["missrate/ea-small"] = grid[0][1].Miss.Rate()
		out["missrate/lsa-large"] = grid[last][0].Miss.Rate()
		out["missrate/ea-large"] = grid[last][1].Miss.Rate()
	}
	return out, nil
}

// runEngineStochastic measures the stochastic hot path — the per-job
// actual-work draw at arrival plus the reclaiming decorator's EWMA
// observation and speculative min-level scan at every decision — on the
// raw engine: the §5.1 workload under the stochastic-periodic task model
// scheduled by ea-dvfs-reclaim. The slack/* shape metrics pin the draw
// stream and the reclamation outcomes bit-for-bit; Engine (above) is the
// WCET-exact control whose allocs/op must not move when this subsystem
// is disabled.
func runEngineStochastic(n int) (map[string]float64, error) {
	s := spec()
	s.TaskModel = "stochastic-periodic"
	s.TaskParams = map[string]any{"bc_ratio": 0.25}
	pf, err := s.PolicyFor("ea-dvfs-reclaim")
	if err != nil {
		return nil, err
	}
	rep, err := experiment.Replicate(s, 0)
	if err != nil {
		return nil, err
	}
	rep.PrepareSource(s.Horizon)
	var res *sim.Result
	for i := 0; i < n; i++ {
		cfg := &sim.Config{
			Horizon:   s.Horizon,
			Tasks:     rep.Tasks,
			Source:    rep.Source(),
			Predictor: energy.NewEWMA(0.2),
			Store:     storage.NewIdeal(500),
			CPU:       s.Processor(),
			Policy:    pf(),
			ExecSeed:  42,
		}
		if res, err = sim.Run(cfg); err != nil {
			return nil, err
		}
	}
	return map[string]float64{
		"events/run":      float64(res.Events),
		"slack/drawn":     float64(res.Slack.DrawnJobs),
		"slack/early":     float64(res.Slack.EarlyCompletions),
		"slack/reclaimed": res.Slack.ReclaimedWork,
		"missrate":        res.Miss.Rate(),
	}, nil
}

// runEngineDPM measures the sleep-state path — break-even gating,
// enter/exit transition accounting and latency-aware wake scheduling —
// on the raw engine: the WCET-exact §5.1 workload on the "default" DPM
// preset under EA-DVFS. The dpm/* shape metrics pin the sleep schedule.
func runEngineDPM(n int) (map[string]float64, error) {
	s := spec()
	s.Sleep = "default"
	rep, err := experiment.Replicate(s, 0)
	if err != nil {
		return nil, err
	}
	rep.PrepareSource(s.Horizon)
	var res *sim.Result
	for i := 0; i < n; i++ {
		cfg := &sim.Config{
			Horizon:   s.Horizon,
			Tasks:     rep.Tasks,
			Source:    rep.Source(),
			Predictor: energy.NewEWMA(0.2),
			Store:     storage.NewIdeal(500),
			CPU:       s.Processor(),
			Policy:    core.NewEADVFS(),
		}
		if res, err = sim.Run(cfg); err != nil {
			return nil, err
		}
	}
	return map[string]float64{
		"events/run":   float64(res.Events),
		"dpm/sleep":    res.SleepTime,
		"dpm/wakeups":  float64(res.Wakeups),
		"dpm/overhead": res.DPMOverhead,
		"missrate":     res.Miss.Rate(),
	}, nil
}

func runEngine(n int) (map[string]float64, error) {
	s := spec()
	rep, err := experiment.Replicate(s, 0)
	if err != nil {
		return nil, err
	}
	rep.PrepareSource(s.Horizon)
	var events uint64
	for i := 0; i < n; i++ {
		cfg := &sim.Config{
			Horizon:   s.Horizon,
			Tasks:     rep.Tasks,
			Source:    rep.Source(),
			Predictor: energy.NewEWMA(0.2),
			Store:     storage.NewIdeal(500),
			CPU:       s.Processor(),
			Policy:    core.NewEADVFS(),
		}
		res, err := sim.Run(cfg)
		if err != nil {
			return nil, err
		}
		events = res.Events
	}
	return map[string]float64{"events/run": float64(events)}, nil
}
