// Package task models the paper's real-time workload (§3.3, §5.1):
// independent preemptive periodic tasks, their released job instances, an
// EDF-ordered ready queue, and the random task-set generator used in the
// evaluation.
//
// Worst-case execution times (WCET) are expressed in "work units": the
// execution time at the processor's maximum frequency. Running at a slower
// operating point with normalized speed S stretches a job's remaining work
// w to w/S wall-clock time.
package task

import (
	"fmt"
	"math"
)

// Task is a periodic task descriptor. Each period it releases one job with
// relative deadline Deadline and worst-case execution time WCET (at f_max).
// The paper sets Deadline = Period ("the relative deadline of the periodic
// task is set to its period", §5.1) but the model does not require it.
type Task struct {
	ID       int
	Period   float64
	Deadline float64 // relative deadline
	WCET     float64 // execution time at f_max
	Offset   float64 // release time of the first job

	// Exec, when non-nil, makes each released job draw its actual
	// execution time from the distribution (bounded by WCET); nil keeps
	// the paper's WCET-exact model. Omitted from JSON when nil, so
	// pre-existing wire documents keep their digests.
	Exec *ExecSpec `json:",omitempty"`
}

// Validate reports whether the descriptor is self-consistent.
func (t Task) Validate() error {
	switch {
	case t.Period <= 0 || math.IsNaN(t.Period) || math.IsInf(t.Period, 0):
		return fmt.Errorf("task %d: invalid period %v", t.ID, t.Period)
	case t.Deadline <= 0 || math.IsNaN(t.Deadline) || math.IsInf(t.Deadline, 0):
		return fmt.Errorf("task %d: invalid deadline %v", t.ID, t.Deadline)
	case t.WCET < 0 || math.IsNaN(t.WCET) || math.IsInf(t.WCET, 0):
		return fmt.Errorf("task %d: invalid wcet %v", t.ID, t.WCET)
	case t.WCET > t.Deadline:
		return fmt.Errorf("task %d: wcet %v exceeds deadline %v (never schedulable)", t.ID, t.WCET, t.Deadline)
	case t.Offset < 0 || math.IsNaN(t.Offset):
		return fmt.Errorf("task %d: invalid offset %v", t.ID, t.Offset)
	}
	if t.Exec != nil {
		if err := t.Exec.Validate(); err != nil {
			return fmt.Errorf("task %d: %w", t.ID, err)
		}
	}
	return nil
}

// Utilization returns WCET/Period, the task's processor share at f_max.
func (t Task) Utilization() float64 { return t.WCET / t.Period }

// Job is one released instance of a task — the paper's τm = (am, dm, wm)
// triple plus bookkeeping for preemptive execution.
//
// A job carries two work counters. The *budget* is the declared WCET the
// scheduler plans with (the paper's wm — eqs. 5–8 all budget worst case).
// The *actual* work is what execution really takes; the paper's model has
// actual = WCET, but the slack-reclamation extension (sim.Config.BCWCRatio)
// draws actual < WCET, and the job then completes early — the scheduler
// only learns of the windfall at the completion event, as a real system
// would.
type Job struct {
	TaskID  int
	Seq     int     // instance number within the task, from 0
	Arrival float64 // am (absolute)
	Abs     float64 // absolute deadline am + dm
	WCET    float64 // wm, work at f_max

	// Exec is the owning task's execution-time distribution (nil for
	// WCET-exact jobs). The engine consults it once, at the release
	// event, to draw the job's actual work.
	Exec *ExecSpec `json:",omitempty"`

	remaining float64 // budget (WCET-based) work left, at f_max
	actual    float64 // true work left, at f_max; exceeds remaining only under an injected overrun
	finished  bool
	missed    bool

	heapIndex int // position in the ReadyQueue heap; -1 when not queued

	// Policy scratch: the locked s2 instant of EA-DVFS (internal/core).
	// Storing it on the job instead of in a per-policy map keeps the
	// decision path allocation-free and lets the state die with the job.
	// A job participates in at most one run (Progress mutates it), so one
	// slot cannot be contended by two policies.
	s2lock   float64
	s2locked bool
}

// LockS2 records the policy's locked s2 instant for this job.
func (j *Job) LockS2(s2 float64) { j.s2lock, j.s2locked = s2, true }

// S2Lock returns the locked s2 instant, if any.
func (j *Job) S2Lock() (float64, bool) { return j.s2lock, j.s2locked }

// ClearS2Lock forgets a locked s2 instant.
func (j *Job) ClearS2Lock() { j.s2lock, j.s2locked = 0, false }

// NewJob constructs a job whose actual work equals its WCET (the paper's
// model).
func NewJob(taskID, seq int, arrival, relDeadline, wcet float64) *Job {
	if wcet < 0 || relDeadline <= 0 || arrival < 0 {
		panic(fmt.Sprintf("task: invalid job parameters (a=%v d=%v w=%v)", arrival, relDeadline, wcet))
	}
	return &Job{
		TaskID:    taskID,
		Seq:       seq,
		Arrival:   arrival,
		Abs:       arrival + relDeadline,
		WCET:      wcet,
		remaining: wcet,
		actual:    wcet,
		heapIndex: -1,
	}
}

// SetActualWork declares that the job will really take work <= WCET. It
// must be called before any Progress; schedulers keep budgeting with the
// WCET-based Remaining.
func (j *Job) SetActualWork(work float64) {
	if work < 0 || work > j.WCET+1e-12 {
		panic(fmt.Sprintf("task: actual work %v outside [0, wcet %v]", work, j.WCET))
	}
	if j.remaining != j.WCET {
		panic("task: SetActualWork after execution started")
	}
	j.actual = work
	if work == 0 {
		j.finished = true
	}
}

// SetOverrunWork declares that the job will really take work units, which
// MAY exceed the declared WCET — the fault-injection scenario in which
// the WCET was wrong (internal/fault). Schedulers keep budgeting the
// declared WCET; the engine executes the true work, so an overrunning job
// occupies the processor past its budget and deadlines suffer
// accordingly. Must be called before execution starts.
func (j *Job) SetOverrunWork(work float64) {
	if work < 0 || math.IsNaN(work) || math.IsInf(work, 0) {
		panic(fmt.Sprintf("task: invalid overrun work %v", work))
	}
	if j.remaining != j.WCET {
		panic("task: SetOverrunWork after execution started")
	}
	j.actual = work
	if work == 0 {
		j.finished = true
	}
}

// Overrun returns how much outstanding actual work exceeds the
// outstanding budgeted work (0 for a well-declared job). Before execution
// starts this is the amount by which the job will overrun its WCET.
func (j *Job) Overrun() float64 { return math.Max(0, j.actual-j.remaining) }

// Remaining returns the outstanding *budgeted* work at f_max — what the
// scheduler plans with.
func (j *Job) Remaining() float64 { return j.remaining }

// ActualRemaining returns the outstanding true work at f_max — what the
// engine executes.
func (j *Job) ActualRemaining() float64 { return j.actual }

// Progress consumes work units of execution. Over-consuming beyond a tiny
// float tolerance panics — it means the engine's completion computation is
// wrong.
func (j *Job) Progress(work float64) {
	if work < 0 {
		panic("task: negative progress")
	}
	j.remaining -= work
	j.actual -= work
	if j.actual < -1e-6*math.Max(1, j.WCET) {
		panic(fmt.Sprintf("task: job %d/%d overran its work by %v", j.TaskID, j.Seq, -j.actual))
	}
	if j.actual < 0 {
		j.actual = 0
	}
	if j.remaining < 0 {
		j.remaining = 0
	}
	if j.actual == 0 {
		j.finished = true
	}
}

// Done reports whether the job completed all its work.
func (j *Job) Done() bool { return j.finished }

// MarkMissed records a deadline miss.
func (j *Job) MarkMissed() { j.missed = true }

// Missed reports whether the job missed its deadline.
func (j *Job) Missed() bool { return j.missed }

// Slack returns the laxity at time now assuming execution at f_max:
// (deadline − now) − remaining. Negative slack means the deadline is
// unreachable even flat-out.
func (j *Job) Slack(now float64) float64 {
	return (j.Abs - now) - j.remaining
}

// EarlierDeadline reports whether a has strictly higher EDF priority than
// b: earlier absolute deadline, ties broken by earlier arrival, then lower
// task ID, then lower sequence — a total order, so scheduling is
// deterministic.
func EarlierDeadline(a, b *Job) bool {
	if a.Abs != b.Abs {
		return a.Abs < b.Abs
	}
	if a.Arrival != b.Arrival {
		return a.Arrival < b.Arrival
	}
	if a.TaskID != b.TaskID {
		return a.TaskID < b.TaskID
	}
	return a.Seq < b.Seq
}
