package task

import "container/heap"

// ReadyQueue is the EDF-ordered set of released, unfinished jobs — the
// paper's queue Q ("maintain a task queue Q containing all ready but not
// finished tasks", Fig. 4 line 1). The earliest-deadline job is always at
// the head; ordering is the total order of EarlierDeadline.
//
// Jobs track their own heap position, so Remove is O(log n) instead of a
// linear scan; a job can therefore sit in at most one ReadyQueue at a time
// (the engine's model — each run owns its jobs).
type ReadyQueue struct {
	h jobHeap
}

type jobHeap []*Job

func (h jobHeap) Len() int           { return len(h) }
func (h jobHeap) Less(i, j int) bool { return EarlierDeadline(h[i], h[j]) }
func (h jobHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapIndex = i
	h[j].heapIndex = j
}
func (h *jobHeap) Push(x any) {
	j := x.(*Job)
	j.heapIndex = len(*h)
	*h = append(*h, j)
}
func (h *jobHeap) Pop() any {
	old := *h
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	j.heapIndex = -1
	*h = old[:n-1]
	return j
}

// NewReadyQueue returns an empty queue.
func NewReadyQueue() *ReadyQueue { return &ReadyQueue{} }

// Len returns the number of queued jobs.
func (q *ReadyQueue) Len() int { return len(q.h) }

// Reset empties the queue in O(n) without heap sifting, restoring every
// queued job's not-queued marker and dropping the job references so a
// pooled queue (internal/sim's run arenas) does not pin a finished run's
// jobs. The backing array is retained, so steady-state reuse never
// reallocates.
func (q *ReadyQueue) Reset() {
	for i, j := range q.h {
		j.heapIndex = -1
		q.h[i] = nil
	}
	q.h = q.h[:0]
}

// Push adds a released job.
func (q *ReadyQueue) Push(j *Job) {
	if j == nil {
		panic("task: pushing nil job")
	}
	heap.Push(&q.h, j)
}

// Peek returns the earliest-deadline job without removing it, or nil.
func (q *ReadyQueue) Peek() *Job {
	if len(q.h) == 0 {
		return nil
	}
	return q.h[0]
}

// Pop removes and returns the earliest-deadline job, or nil.
func (q *ReadyQueue) Pop() *Job {
	if len(q.h) == 0 {
		return nil
	}
	return heap.Pop(&q.h).(*Job)
}

// Remove deletes a specific job (e.g. dropped at its deadline) in O(log n)
// using the job's recorded heap position. It reports whether the job was
// present.
func (q *ReadyQueue) Remove(j *Job) bool {
	i := j.heapIndex
	if i < 0 || i >= len(q.h) || q.h[i] != j {
		return false
	}
	heap.Remove(&q.h, i)
	return true
}

// Jobs returns the queued jobs in no particular order (a copy).
func (q *ReadyQueue) Jobs() []*Job {
	return q.AppendJobs(nil)
}

// AppendJobs appends the queued jobs (no particular order) to dst and
// returns the extended slice — the allocation-free variant of Jobs for
// callers that keep a scratch slice.
func (q *ReadyQueue) AppendJobs(dst []*Job) []*Job {
	return append(dst, q.h...)
}

// ForEach calls fn for every queued job (no particular order) until fn
// returns false. fn must not mutate the queue.
func (q *ReadyQueue) ForEach(fn func(*Job) bool) {
	for _, j := range q.h {
		if !fn(j) {
			return
		}
	}
}

// ExpiredBefore returns (without removing) all jobs whose absolute deadline
// is <= t and that are not finished — candidates for miss accounting.
func (q *ReadyQueue) ExpiredBefore(t float64) []*Job {
	return q.AppendExpiredBefore(nil, t)
}

// AppendExpiredBefore appends to dst all queued, unfinished jobs with
// absolute deadline <= t and returns the extended slice — the
// allocation-free variant of ExpiredBefore.
func (q *ReadyQueue) AppendExpiredBefore(dst []*Job, t float64) []*Job {
	for _, j := range q.h {
		if j.Abs <= t && !j.Done() {
			dst = append(dst, j)
		}
	}
	return dst
}
