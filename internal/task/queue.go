package task

import "container/heap"

// ReadyQueue is the EDF-ordered set of released, unfinished jobs — the
// paper's queue Q ("maintain a task queue Q containing all ready but not
// finished tasks", Fig. 4 line 1). The earliest-deadline job is always at
// the head; ordering is the total order of EarlierDeadline.
type ReadyQueue struct {
	h jobHeap
}

type jobHeap []*Job

func (h jobHeap) Len() int           { return len(h) }
func (h jobHeap) Less(i, j int) bool { return EarlierDeadline(h[i], h[j]) }
func (h jobHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *jobHeap) Push(x any)        { *h = append(*h, x.(*Job)) }
func (h *jobHeap) Pop() any {
	old := *h
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return j
}

// NewReadyQueue returns an empty queue.
func NewReadyQueue() *ReadyQueue { return &ReadyQueue{} }

// Len returns the number of queued jobs.
func (q *ReadyQueue) Len() int { return len(q.h) }

// Push adds a released job.
func (q *ReadyQueue) Push(j *Job) {
	if j == nil {
		panic("task: pushing nil job")
	}
	heap.Push(&q.h, j)
}

// Peek returns the earliest-deadline job without removing it, or nil.
func (q *ReadyQueue) Peek() *Job {
	if len(q.h) == 0 {
		return nil
	}
	return q.h[0]
}

// Pop removes and returns the earliest-deadline job, or nil.
func (q *ReadyQueue) Pop() *Job {
	if len(q.h) == 0 {
		return nil
	}
	return heap.Pop(&q.h).(*Job)
}

// Remove deletes a specific job (e.g. dropped at its deadline). It reports
// whether the job was present.
func (q *ReadyQueue) Remove(j *Job) bool {
	for i, cand := range q.h {
		if cand == j {
			heap.Remove(&q.h, i)
			return true
		}
	}
	return false
}

// Jobs returns the queued jobs in no particular order (a copy).
func (q *ReadyQueue) Jobs() []*Job {
	return append([]*Job(nil), q.h...)
}

// ExpiredBefore returns (without removing) all jobs whose absolute deadline
// is <= t and that are not finished — candidates for miss accounting.
func (q *ReadyQueue) ExpiredBefore(t float64) []*Job {
	var out []*Job
	for _, j := range q.h {
		if j.Abs <= t && !j.Done() {
			out = append(out, j)
		}
	}
	return out
}
