package task

// ReleasePlan is a precomputed, reusable release schedule: the full job
// expansion of a periodic task set over a horizon (exactly ReleaseJobs),
// plus a pristine prototype of every job's released state. Expanding and
// sorting the schedule dominates the per-run allocation profile of a
// repeated simulation — a 10⁴-unit, 5-task run releases ~800 jobs — so
// amortizing it across runs is the single biggest win of the run arenas
// (internal/sim); resetting a plan is one bulk copy.
//
// A plan owns its jobs. Jobs() hands out the same instances every call,
// restored to their just-released state, so a caller must be completely
// done with the previous run (including tracers and probes, which must
// copy rather than retain *Job) before asking for the next one. A plan is
// not safe for concurrent use.
type ReleasePlan struct {
	tasks   []Task
	horizon float64

	proto []Job  // pristine released-state job values, in arrival order
	live  []Job  // the reusable instances handed to runs
	ptrs  []*Job // stable pointers into live, same order
}

// NewReleasePlan expands the task set over the horizon (ReleaseJobs order:
// arrival, then task ID, then sequence) and snapshots each job's released
// state as the reset prototype.
func NewReleasePlan(tasks []Task, horizon float64) *ReleasePlan {
	jobs := ReleaseJobs(tasks, horizon)
	p := &ReleasePlan{
		tasks:   append([]Task(nil), tasks...),
		horizon: horizon,
		proto:   make([]Job, len(jobs)),
		live:    make([]Job, len(jobs)),
		ptrs:    make([]*Job, len(jobs)),
	}
	for i, j := range jobs {
		p.proto[i] = *j
		p.ptrs[i] = &p.live[i]
	}
	return p
}

// Matches reports whether the plan was derived from an identical task set
// and horizon (values compared, not slice identity) — the cache key an
// arena uses to decide whether its plan is still valid.
func (p *ReleasePlan) Matches(tasks []Task, horizon float64) bool {
	if p.horizon != horizon || len(p.tasks) != len(tasks) {
		return false
	}
	for i := range tasks {
		if p.tasks[i] != tasks[i] {
			return false
		}
	}
	return true
}

// Len returns the number of jobs in the schedule.
func (p *ReleasePlan) Len() int { return len(p.proto) }

// Jobs resets every job to its released state (one bulk copy of the
// prototypes — work counters, finished/missed flags, queue position and
// policy scratch included) and returns the release schedule in arrival
// order. The returned slice and the jobs it points to are owned by the
// plan and overwritten by the next call.
func (p *ReleasePlan) Jobs() []*Job {
	copy(p.live, p.proto)
	return p.ptrs
}
