package task

import (
	"math"
	"testing"

	"github.com/eadvfs/eadvfs/internal/rng"
)

func sporadicSpec() SporadicSpec {
	return SporadicSpec{
		TaskID: 7, Rate: 0.1, MinSeparation: 5,
		Deadline: 20, WCETMin: 1, WCETMax: 4,
	}
}

func TestSporadicValidate(t *testing.T) {
	if err := sporadicSpec().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*SporadicSpec){
		func(s *SporadicSpec) { s.Rate = 0 },
		func(s *SporadicSpec) { s.Rate = math.Inf(1) },
		func(s *SporadicSpec) { s.MinSeparation = -1 },
		func(s *SporadicSpec) { s.Deadline = 0 },
		func(s *SporadicSpec) { s.WCETMin = -1 },
		func(s *SporadicSpec) { s.WCETMax = 0.5 }, // < min
		func(s *SporadicSpec) { s.WCETMax = 25 },  // > deadline
	}
	for i, mutate := range bad {
		s := sporadicSpec()
		mutate(&s)
		if s.Validate() == nil {
			t.Fatalf("bad spec %d accepted", i)
		}
	}
}

func TestGenerateSporadicStream(t *testing.T) {
	spec := sporadicSpec()
	jobs, err := GenerateSporadic(spec, 10000, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) < 100 {
		t.Fatalf("only %d jobs over 10000 units at mean gap 15", len(jobs))
	}
	prev := -math.Inf(1)
	for i, j := range jobs {
		if j.TaskID != 7 || j.Seq != i {
			t.Fatalf("job %d identity wrong: %d/%d", i, j.TaskID, j.Seq)
		}
		if j.Arrival-prev < spec.MinSeparation-1e-9 && prev >= 0 {
			t.Fatalf("separation violated at job %d: gap %v", i, j.Arrival-prev)
		}
		if j.WCET < 1 || j.WCET > 4 {
			t.Fatalf("wcet %v outside draw range", j.WCET)
		}
		if j.Abs != j.Arrival+20 {
			t.Fatalf("deadline wrong at job %d", i)
		}
		if j.Arrival >= 10000 {
			t.Fatalf("job released after horizon: %v", j.Arrival)
		}
		prev = j.Arrival
	}
	// Mean inter-arrival ≈ 1/λ + sep = 15.
	meanGap := jobs[len(jobs)-1].Arrival / float64(len(jobs)-1)
	if math.Abs(meanGap-15) > 2 {
		t.Fatalf("mean gap %v, want ~15", meanGap)
	}
}

func TestGenerateSporadicDeterministic(t *testing.T) {
	a, _ := GenerateSporadic(sporadicSpec(), 1000, rng.New(9))
	b, _ := GenerateSporadic(sporadicSpec(), 1000, rng.New(9))
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i].Arrival != b[i].Arrival || a[i].WCET != b[i].WCET {
			t.Fatalf("streams differ at %d", i)
		}
	}
}

func TestSporadicMeanUtilization(t *testing.T) {
	spec := sporadicSpec()
	// E[w] = 2.5, E[gap] = 15 → U ≈ 0.1667.
	if got := spec.MeanUtilization(); math.Abs(got-2.5/15) > 1e-12 {
		t.Fatalf("mean utilization = %v", got)
	}
}

func TestGenerateSporadicBadHorizon(t *testing.T) {
	if _, err := GenerateSporadic(sporadicSpec(), 0, rng.New(1)); err == nil {
		t.Fatal("zero horizon accepted")
	}
}

func TestMergeJobStreams(t *testing.T) {
	a, _ := GenerateSporadic(sporadicSpec(), 500, rng.New(1))
	spec2 := sporadicSpec()
	spec2.TaskID = 8
	b, _ := GenerateSporadic(spec2, 500, rng.New(2))
	merged := MergeJobStreams(a, b)
	if len(merged) != len(a)+len(b) {
		t.Fatalf("merged %d, want %d", len(merged), len(a)+len(b))
	}
	for i := 1; i < len(merged); i++ {
		if merged[i].Arrival < merged[i-1].Arrival {
			t.Fatalf("merge not ordered at %d", i)
		}
	}
}
