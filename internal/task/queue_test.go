package task

import (
	"testing"
	"testing/quick"
)

func TestQueueEDFOrder(t *testing.T) {
	q := NewReadyQueue()
	j1 := NewJob(0, 0, 0, 30, 1)
	j2 := NewJob(1, 0, 0, 10, 1)
	j3 := NewJob(2, 0, 0, 20, 1)
	q.Push(j1)
	q.Push(j2)
	q.Push(j3)
	if q.Len() != 3 {
		t.Fatalf("len = %d", q.Len())
	}
	if got := q.Pop(); got != j2 {
		t.Fatalf("first pop = task %d, want 1", got.TaskID)
	}
	if got := q.Pop(); got != j3 {
		t.Fatalf("second pop = task %d, want 2", got.TaskID)
	}
	if got := q.Pop(); got != j1 {
		t.Fatalf("third pop = task %d, want 0", got.TaskID)
	}
	if q.Pop() != nil {
		t.Fatal("pop from empty queue returned a job")
	}
}

func TestQueuePeekDoesNotRemove(t *testing.T) {
	q := NewReadyQueue()
	j := NewJob(0, 0, 0, 10, 1)
	q.Push(j)
	if q.Peek() != j || q.Len() != 1 {
		t.Fatal("peek removed or missed the job")
	}
}

func TestQueuePeekEmpty(t *testing.T) {
	if NewReadyQueue().Peek() != nil {
		t.Fatal("peek on empty queue returned a job")
	}
}

func TestQueueRemove(t *testing.T) {
	q := NewReadyQueue()
	j1 := NewJob(0, 0, 0, 10, 1)
	j2 := NewJob(1, 0, 0, 20, 1)
	j3 := NewJob(2, 0, 0, 30, 1)
	q.Push(j1)
	q.Push(j2)
	q.Push(j3)
	if !q.Remove(j2) {
		t.Fatal("Remove failed on present job")
	}
	if q.Remove(j2) {
		t.Fatal("Remove succeeded on absent job")
	}
	if q.Len() != 2 || q.Peek() != j1 {
		t.Fatal("queue corrupted after remove")
	}
	if q.Pop() != j1 || q.Pop() != j3 {
		t.Fatal("EDF order broken after remove")
	}
}

func TestQueuePushNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Push(nil) did not panic")
		}
	}()
	NewReadyQueue().Push(nil)
}

func TestExpiredBefore(t *testing.T) {
	q := NewReadyQueue()
	j1 := NewJob(0, 0, 0, 5, 1)  // abs 5
	j2 := NewJob(1, 0, 0, 15, 1) // abs 15
	q.Push(j1)
	q.Push(j2)
	exp := q.ExpiredBefore(10)
	if len(exp) != 1 || exp[0] != j1 {
		t.Fatalf("ExpiredBefore(10) = %d jobs", len(exp))
	}
	// Finished jobs are never expired.
	j1.Progress(1)
	if got := q.ExpiredBefore(10); len(got) != 0 {
		t.Fatalf("finished job reported expired")
	}
}

func TestJobsReturnsCopy(t *testing.T) {
	q := NewReadyQueue()
	q.Push(NewJob(0, 0, 0, 10, 1))
	js := q.Jobs()
	js[0] = nil
	if q.Peek() == nil {
		t.Fatal("mutating Jobs() result corrupted the queue")
	}
}

// Property: popping the whole queue always yields jobs in EDF total order.
func TestQueueOrderProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) > 100 {
			raw = raw[:100]
		}
		q := NewReadyQueue()
		for i, v := range raw {
			a := float64(v % 50)
			d := 1 + float64(v/50%40)
			q.Push(NewJob(i, 0, a, d, 0.5))
		}
		prev := q.Pop()
		for q.Len() > 0 {
			next := q.Pop()
			if EarlierDeadline(next, prev) {
				return false
			}
			prev = next
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
