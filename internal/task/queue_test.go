package task

import (
	"testing"
	"testing/quick"
)

func TestQueueEDFOrder(t *testing.T) {
	q := NewReadyQueue()
	j1 := NewJob(0, 0, 0, 30, 1)
	j2 := NewJob(1, 0, 0, 10, 1)
	j3 := NewJob(2, 0, 0, 20, 1)
	q.Push(j1)
	q.Push(j2)
	q.Push(j3)
	if q.Len() != 3 {
		t.Fatalf("len = %d", q.Len())
	}
	if got := q.Pop(); got != j2 {
		t.Fatalf("first pop = task %d, want 1", got.TaskID)
	}
	if got := q.Pop(); got != j3 {
		t.Fatalf("second pop = task %d, want 2", got.TaskID)
	}
	if got := q.Pop(); got != j1 {
		t.Fatalf("third pop = task %d, want 0", got.TaskID)
	}
	if q.Pop() != nil {
		t.Fatal("pop from empty queue returned a job")
	}
}

func TestQueuePeekDoesNotRemove(t *testing.T) {
	q := NewReadyQueue()
	j := NewJob(0, 0, 0, 10, 1)
	q.Push(j)
	if q.Peek() != j || q.Len() != 1 {
		t.Fatal("peek removed or missed the job")
	}
}

func TestQueuePeekEmpty(t *testing.T) {
	if NewReadyQueue().Peek() != nil {
		t.Fatal("peek on empty queue returned a job")
	}
}

func TestQueueRemove(t *testing.T) {
	q := NewReadyQueue()
	j1 := NewJob(0, 0, 0, 10, 1)
	j2 := NewJob(1, 0, 0, 20, 1)
	j3 := NewJob(2, 0, 0, 30, 1)
	q.Push(j1)
	q.Push(j2)
	q.Push(j3)
	if !q.Remove(j2) {
		t.Fatal("Remove failed on present job")
	}
	if q.Remove(j2) {
		t.Fatal("Remove succeeded on absent job")
	}
	if q.Len() != 2 || q.Peek() != j1 {
		t.Fatal("queue corrupted after remove")
	}
	if q.Pop() != j1 || q.Pop() != j3 {
		t.Fatal("EDF order broken after remove")
	}
}

func TestQueuePushNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Push(nil) did not panic")
		}
	}()
	NewReadyQueue().Push(nil)
}

func TestExpiredBefore(t *testing.T) {
	q := NewReadyQueue()
	j1 := NewJob(0, 0, 0, 5, 1)  // abs 5
	j2 := NewJob(1, 0, 0, 15, 1) // abs 15
	q.Push(j1)
	q.Push(j2)
	exp := q.ExpiredBefore(10)
	if len(exp) != 1 || exp[0] != j1 {
		t.Fatalf("ExpiredBefore(10) = %d jobs", len(exp))
	}
	// Finished jobs are never expired.
	j1.Progress(1)
	if got := q.ExpiredBefore(10); len(got) != 0 {
		t.Fatalf("finished job reported expired")
	}
}

func TestJobsReturnsCopy(t *testing.T) {
	q := NewReadyQueue()
	q.Push(NewJob(0, 0, 0, 10, 1))
	js := q.Jobs()
	js[0] = nil
	if q.Peek() == nil {
		t.Fatal("mutating Jobs() result corrupted the queue")
	}
}

// TestQueueRemoveHeadTailMiddle removes from every heap position class
// and checks the head invariant each time; a removed job can be pushed
// back (its recorded position is reset on removal).
func TestQueueRemoveHeadTailMiddle(t *testing.T) {
	mk := func() (*ReadyQueue, []*Job) {
		q := NewReadyQueue()
		var js []*Job
		for i, d := range []float64{10, 20, 30, 40, 50} {
			j := NewJob(i, 0, 0, d, 1)
			q.Push(j)
			js = append(js, j)
		}
		return q, js
	}
	for name, pick := range map[string]int{"head": 0, "middle": 2, "tail": 4} {
		q, js := mk()
		if !q.Remove(js[pick]) {
			t.Fatalf("%s: Remove failed", name)
		}
		prev := q.Pop()
		for q.Len() > 0 {
			next := q.Pop()
			if EarlierDeadline(next, prev) {
				t.Fatalf("%s: EDF order broken after Remove", name)
			}
			prev = next
		}
	}
	q, js := mk()
	q.Remove(js[1])
	q.Push(js[1]) // re-admission after removal must work
	if q.Len() != 5 || q.Peek() != js[0] {
		t.Fatal("queue corrupted by remove + re-push")
	}
}

// Property: under arbitrary interleavings of Push, Remove and Pop, the
// queue drains in EDF total order and Remove agrees with membership.
// This is the regression guard for the O(log n) positional Remove: the
// seed implementation re-heapified around a linear scan, and a stale
// heapIndex would surface here as a misordered pop or a false Remove.
func TestQueueRemoveProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) > 150 {
			raw = raw[:150]
		}
		q := NewReadyQueue()
		in := map[*Job]bool{}
		var all []*Job
		for i, v := range raw {
			switch v % 4 {
			case 0, 1: // push a fresh job
				j := NewJob(i, 0, float64(v%50), 1+float64(v/50%40), 0.5)
				q.Push(j)
				in[j] = true
				all = append(all, j)
			case 2: // remove an arbitrary job (possibly already gone)
				if len(all) == 0 {
					continue
				}
				j := all[int(v)%len(all)]
				if got := q.Remove(j); got != in[j] {
					return false
				}
				delete(in, j)
			case 3: // pop the head
				j := q.Pop()
				if (j == nil) != (len(in) == 0) {
					return false
				}
				delete(in, j)
			}
			if q.Len() != len(in) {
				return false
			}
		}
		prev := q.Pop()
		for q.Len() > 0 {
			next := q.Pop()
			if EarlierDeadline(next, prev) {
				return false
			}
			prev = next
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: popping the whole queue always yields jobs in EDF total order.
func TestQueueOrderProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) > 100 {
			raw = raw[:100]
		}
		q := NewReadyQueue()
		for i, v := range raw {
			a := float64(v % 50)
			d := 1 + float64(v/50%40)
			q.Push(NewJob(i, 0, a, d, 0.5))
		}
		prev := q.Pop()
		for q.Len() > 0 {
			next := q.Pop()
			if EarlierDeadline(next, prev) {
				return false
			}
			prev = next
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
