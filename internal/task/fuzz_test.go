package task

import (
	"testing"
)

// FuzzReadyQueue drives the EDF queue through fuzzer-chosen
// push/pop/remove interleavings and checks the heap never yields jobs out
// of EDF order and never loses or duplicates a job.
func FuzzReadyQueue(f *testing.F) {
	f.Add([]byte{0, 1, 2, 0, 3, 1})
	f.Add([]byte{0, 0, 0, 2, 2, 2, 1, 1, 1})
	f.Fuzz(func(t *testing.T, ops []byte) {
		q := NewReadyQueue()
		live := map[*Job]bool{}
		var handles []*Job
		seq := 0
		if len(ops) > 400 {
			ops = ops[:400]
		}
		for _, op := range ops {
			switch op % 3 {
			case 0: // push
				j := NewJob(int(op), seq, float64(op%50), 1+float64(op%40), 0.5)
				seq++
				q.Push(j)
				live[j] = true
				handles = append(handles, j)
			case 1: // pop
				j := q.Pop()
				if j == nil {
					if len(live) != 0 {
						t.Fatalf("pop returned nil with %d live jobs", len(live))
					}
					continue
				}
				if !live[j] {
					t.Fatal("popped a job not in the live set")
				}
				delete(live, j)
				// EDF property: nothing remaining is strictly earlier.
				if h := q.Peek(); h != nil && EarlierDeadline(h, j) {
					t.Fatal("pop violated EDF order")
				}
			case 2: // remove a specific job
				if len(handles) == 0 {
					continue
				}
				victim := handles[int(op)%len(handles)]
				removed := q.Remove(victim)
				if removed != live[victim] {
					t.Fatalf("Remove reported %v for live=%v", removed, live[victim])
				}
				delete(live, victim)
			}
			if q.Len() != len(live) {
				t.Fatalf("queue length %d != live set %d", q.Len(), len(live))
			}
		}
		// Drain: strictly non-decreasing EDF order and full accounting.
		var prev *Job
		for q.Len() > 0 {
			j := q.Pop()
			if prev != nil && EarlierDeadline(j, prev) {
				t.Fatal("drain violated EDF order")
			}
			if !live[j] {
				t.Fatal("drained a dead job")
			}
			delete(live, j)
			prev = j
		}
		if len(live) != 0 {
			t.Fatalf("%d jobs lost", len(live))
		}
	})
}
