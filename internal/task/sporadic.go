package task

import (
	"fmt"
	"math"

	"github.com/eadvfs/eadvfs/internal/rng"
)

// SporadicSpec describes a sporadic job stream: arrivals follow a Poisson
// process thinned by a minimum inter-arrival separation (the classic
// sporadic task model), each job carrying a relative deadline and a WCET
// drawn uniformly from a range. The paper's system model (§3.3) only
// requires that parameters become known at release — periodicity is an
// evaluation choice, and this generator exercises the policies without it.
type SporadicSpec struct {
	TaskID int
	// Rate is the mean arrival rate λ of the underlying Poisson process.
	Rate float64
	// MinSeparation is the enforced minimum gap between releases.
	MinSeparation float64
	// Deadline is the relative deadline of every job.
	Deadline float64
	// WCETMin and WCETMax bound the per-job uniform WCET draw.
	WCETMin, WCETMax float64
}

// Validate checks the spec.
func (s SporadicSpec) Validate() error {
	switch {
	case s.Rate <= 0 || math.IsNaN(s.Rate) || math.IsInf(s.Rate, 0):
		return fmt.Errorf("task: sporadic rate %v invalid", s.Rate)
	case s.MinSeparation < 0:
		return fmt.Errorf("task: negative separation %v", s.MinSeparation)
	case s.Deadline <= 0:
		return fmt.Errorf("task: sporadic deadline %v invalid", s.Deadline)
	case s.WCETMin < 0 || s.WCETMax < s.WCETMin:
		return fmt.Errorf("task: sporadic wcet range [%v, %v] invalid", s.WCETMin, s.WCETMax)
	case s.WCETMax > s.Deadline:
		return fmt.Errorf("task: sporadic wcet %v can exceed deadline %v", s.WCETMax, s.Deadline)
	}
	return nil
}

// MeanUtilization returns the stream's long-run expected processor share
// at f_max: E[wcet] / E[inter-arrival].
func (s SporadicSpec) MeanUtilization() float64 {
	meanW := (s.WCETMin + s.WCETMax) / 2
	meanGap := 1/s.Rate + s.MinSeparation
	return meanW / meanGap
}

// GenerateSporadic draws the job stream released before horizon.
func GenerateSporadic(spec SporadicSpec, horizon float64, r *rng.RNG) ([]*Job, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if horizon <= 0 || math.IsInf(horizon, 0) || math.IsNaN(horizon) {
		return nil, fmt.Errorf("task: invalid horizon %v", horizon)
	}
	var jobs []*Job
	t := r.Exponential(spec.Rate)
	seq := 0
	for t < horizon {
		w := r.Uniform(spec.WCETMin, spec.WCETMax)
		jobs = append(jobs, NewJob(spec.TaskID, seq, t, spec.Deadline, w))
		seq++
		t += spec.MinSeparation + r.Exponential(spec.Rate)
	}
	return jobs, nil
}

// MergeJobStreams combines job lists into one arrival-ordered stream.
func MergeJobStreams(streams ...[]*Job) []*Job {
	var all []*Job
	for _, s := range streams {
		all = append(all, s...)
	}
	sortJobsByArrival(all)
	return all
}
