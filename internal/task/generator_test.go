package task

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/eadvfs/eadvfs/internal/rng"
)

func baseCfg() GeneratorConfig {
	return GeneratorConfig{
		NumTasks:         5,
		Periods:          PaperPeriods(),
		MeanHarvestPower: 3.99,
		PMax:             3.2,
		TargetU:          0.4,
	}
}

func TestPaperPeriods(t *testing.T) {
	p := PaperPeriods()
	if len(p) != 10 || p[0] != 10 || p[9] != 100 {
		t.Fatalf("paper periods = %v", p)
	}
	for i := 1; i < len(p); i++ {
		if p[i]-p[i-1] != 10 {
			t.Fatalf("period step wrong at %d", i)
		}
	}
}

func TestGenerateHitsTargetUtilization(t *testing.T) {
	cfg := baseCfg()
	for seed := uint64(0); seed < 50; seed++ {
		tasks, err := Generate(cfg, rng.New(seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(tasks) != cfg.NumTasks {
			t.Fatalf("seed %d: %d tasks", seed, len(tasks))
		}
		u := SetUtilization(tasks)
		if math.Abs(u-cfg.TargetU) > 1e-9 {
			t.Fatalf("seed %d: utilization %v, want %v", seed, u, cfg.TargetU)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := baseCfg()
	a, _ := Generate(cfg, rng.New(7))
	b, _ := Generate(cfg, rng.New(7))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed task sets differ at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestGenerateDeadlineEqualsPeriod(t *testing.T) {
	tasks, _ := Generate(baseCfg(), rng.New(3))
	for _, tk := range tasks {
		if tk.Deadline != tk.Period {
			t.Fatalf("task %d deadline %v != period %v", tk.ID, tk.Deadline, tk.Period)
		}
	}
}

func TestGeneratePeriodsFromMenu(t *testing.T) {
	cfg := baseCfg()
	menu := map[float64]bool{}
	for _, p := range cfg.Periods {
		menu[p] = true
	}
	for seed := uint64(0); seed < 30; seed++ {
		tasks, _ := Generate(cfg, rng.New(seed))
		for _, tk := range tasks {
			if !menu[tk.Period] {
				t.Fatalf("period %v not in menu", tk.Period)
			}
		}
	}
}

func TestGenerateAllValid(t *testing.T) {
	cfg := baseCfg()
	cfg.TargetU = 0.95
	for seed := uint64(0); seed < 100; seed++ {
		tasks, err := Generate(cfg, rng.New(seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, tk := range tasks {
			if err := tk.Validate(); err != nil {
				t.Fatalf("seed %d: generated invalid task: %v", seed, err)
			}
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	bads := []GeneratorConfig{
		{},
		{NumTasks: 0, Periods: PaperPeriods(), MeanHarvestPower: 1, PMax: 1, TargetU: 0.5},
		{NumTasks: 3, Periods: nil, MeanHarvestPower: 1, PMax: 1, TargetU: 0.5},
		{NumTasks: 3, Periods: PaperPeriods(), MeanHarvestPower: 0, PMax: 1, TargetU: 0.5},
		{NumTasks: 3, Periods: PaperPeriods(), MeanHarvestPower: 1, PMax: 0, TargetU: 0.5},
		{NumTasks: 3, Periods: PaperPeriods(), MeanHarvestPower: 1, PMax: 1, TargetU: 0},
		{NumTasks: 3, Periods: PaperPeriods(), MeanHarvestPower: 1, PMax: 1, TargetU: 1.2},
		{NumTasks: 3, Periods: []float64{10, -1}, MeanHarvestPower: 1, PMax: 1, TargetU: 0.5},
	}
	for i, cfg := range bads {
		if _, err := Generate(cfg, rng.New(1)); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

func TestGenerateUtilizationProperty(t *testing.T) {
	f := func(seed uint64, uRaw, nRaw uint8) bool {
		cfg := baseCfg()
		cfg.TargetU = 0.05 + float64(uRaw)/255*0.9
		cfg.NumTasks = 1 + int(nRaw%20)
		tasks, err := Generate(cfg, rng.New(seed))
		if err != nil {
			return false
		}
		return math.Abs(SetUtilization(tasks)-cfg.TargetU) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestReleaseJobs(t *testing.T) {
	tasks := []Task{
		{ID: 0, Period: 10, Deadline: 10, WCET: 1},
		{ID: 1, Period: 25, Deadline: 25, WCET: 2, Offset: 5},
	}
	jobs := ReleaseJobs(tasks, 50)
	// Task 0: arrivals 0,10,20,30,40 (5 jobs). Task 1: 5,30 (2 jobs).
	if len(jobs) != 7 {
		t.Fatalf("released %d jobs, want 7", len(jobs))
	}
	// Arrival order with tie at 30 broken by task ID.
	wantArrivals := []float64{0, 5, 10, 20, 30, 30, 40}
	for i, j := range jobs {
		if j.Arrival != wantArrivals[i] {
			t.Fatalf("job %d arrival %v, want %v", i, j.Arrival, wantArrivals[i])
		}
	}
	if jobs[4].TaskID != 0 || jobs[5].TaskID != 1 {
		t.Fatal("tie at t=30 not broken by task ID")
	}
	// Sequence numbers per task.
	if jobs[6].Seq != 4 {
		t.Fatalf("task 0 last seq = %d, want 4", jobs[6].Seq)
	}
}

func TestReleaseJobsExclusiveHorizon(t *testing.T) {
	tasks := []Task{{ID: 0, Period: 10, Deadline: 10, WCET: 1}}
	jobs := ReleaseJobs(tasks, 30)
	if len(jobs) != 3 { // 0, 10, 20 — not 30
		t.Fatalf("released %d jobs, want 3 (horizon exclusive)", len(jobs))
	}
}

func TestReleaseJobsDeadlines(t *testing.T) {
	tasks := []Task{{ID: 0, Period: 10, Deadline: 8, WCET: 1}}
	jobs := ReleaseJobs(tasks, 25)
	for _, j := range jobs {
		if j.Abs != j.Arrival+8 {
			t.Fatalf("job abs deadline %v, want arrival+8", j.Abs)
		}
	}
}
