package task

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTaskValidate(t *testing.T) {
	good := Task{ID: 0, Period: 10, Deadline: 10, WCET: 3}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid task rejected: %v", err)
	}
	bad := []Task{
		{Period: 0, Deadline: 10, WCET: 1},
		{Period: 10, Deadline: 0, WCET: 1},
		{Period: 10, Deadline: 10, WCET: -1},
		{Period: 10, Deadline: 5, WCET: 6}, // wcet > deadline
		{Period: 10, Deadline: 10, WCET: 1, Offset: -1},
		{Period: math.NaN(), Deadline: 10, WCET: 1},
		{Period: math.Inf(1), Deadline: 10, WCET: 1},
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Fatalf("bad task %d accepted", i)
		}
	}
}

func TestTaskUtilization(t *testing.T) {
	tk := Task{Period: 20, Deadline: 20, WCET: 5}
	if got := tk.Utilization(); got != 0.25 {
		t.Fatalf("utilization = %v, want 0.25", got)
	}
}

func TestJobLifecycle(t *testing.T) {
	j := NewJob(1, 0, 5, 16, 4)
	if j.Abs != 21 {
		t.Fatalf("absolute deadline = %v, want 21", j.Abs)
	}
	if j.Remaining() != 4 || j.Done() {
		t.Fatal("fresh job has wrong remaining/done state")
	}
	j.Progress(1.5)
	if math.Abs(j.Remaining()-2.5) > 1e-12 || j.Done() {
		t.Fatalf("after progress: remaining = %v", j.Remaining())
	}
	j.Progress(2.5)
	if !j.Done() || j.Remaining() != 0 {
		t.Fatal("job not done after consuming full work")
	}
}

func TestJobOverrunPanics(t *testing.T) {
	j := NewJob(0, 0, 0, 10, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("over-progress did not panic")
		}
	}()
	j.Progress(3)
}

func TestJobFloatToleranceCompletion(t *testing.T) {
	j := NewJob(0, 0, 0, 10, 1)
	j.Progress(0.3)
	j.Progress(0.3)
	j.Progress(0.3)
	j.Progress(0.1 + 1e-10) // tiny float overshoot must complete, not panic
	if !j.Done() {
		t.Fatal("job with tiny overshoot not marked done")
	}
}

func TestJobSlack(t *testing.T) {
	j := NewJob(0, 0, 0, 16, 4)
	if got := j.Slack(0); got != 12 {
		t.Fatalf("slack at 0 = %v, want 12", got)
	}
	j.Progress(2)
	if got := j.Slack(10); got != 4 {
		t.Fatalf("slack at 10 = %v, want 4", got)
	}
	if got := j.Slack(15); got != -1 {
		t.Fatalf("slack past feasibility = %v, want -1", got)
	}
}

func TestJobMiss(t *testing.T) {
	j := NewJob(0, 0, 0, 5, 1)
	if j.Missed() {
		t.Fatal("fresh job marked missed")
	}
	j.MarkMissed()
	if !j.Missed() {
		t.Fatal("MarkMissed did not stick")
	}
}

func TestEarlierDeadlineTotalOrder(t *testing.T) {
	a := NewJob(0, 0, 0, 10, 1) // abs 10
	b := NewJob(1, 0, 0, 12, 1) // abs 12
	if !EarlierDeadline(a, b) || EarlierDeadline(b, a) {
		t.Fatal("deadline ordering wrong")
	}
	// Equal deadlines → earlier arrival wins.
	c := NewJob(2, 0, 2, 8, 1) // abs 10, arrival 2
	if !EarlierDeadline(a, c) {
		t.Fatal("arrival tie-break wrong")
	}
	// Full tie → task ID.
	d := NewJob(3, 0, 0, 10, 1)
	if !EarlierDeadline(a, d) {
		t.Fatal("task-ID tie-break wrong")
	}
	// Same task → seq.
	e1 := NewJob(5, 0, 0, 10, 1)
	e2 := NewJob(5, 1, 0, 10, 1)
	if !EarlierDeadline(e1, e2) {
		t.Fatal("seq tie-break wrong")
	}
}

func TestEarlierDeadlineIrreflexive(t *testing.T) {
	j := NewJob(0, 0, 0, 10, 1)
	if EarlierDeadline(j, j) {
		t.Fatal("EarlierDeadline(j, j) = true")
	}
}

func TestNewJobValidation(t *testing.T) {
	cases := []func(){
		func() { NewJob(0, 0, -1, 10, 1) },
		func() { NewJob(0, 0, 0, 0, 1) },
		func() { NewJob(0, 0, 0, 10, -1) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

// Property: slack decreases exactly with elapsed time when no work is done,
// and increases exactly with work done at fixed time.
func TestSlackArithmeticProperty(t *testing.T) {
	f := func(dRaw, wRaw, t1Raw, workRaw uint16) bool {
		d := 1 + float64(dRaw%100)
		w := math.Min(float64(wRaw%100)/10, d)
		j := NewJob(0, 0, 0, d, w)
		t1 := float64(t1Raw%50) / 10
		base := j.Slack(0)
		if math.Abs(j.Slack(t1)-(base-t1)) > 1e-9 {
			return false
		}
		work := math.Min(float64(workRaw%100)/20, w)
		j.Progress(work)
		return math.Abs(j.Slack(t1)-(base-t1+work)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
