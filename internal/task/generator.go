package task

import (
	"fmt"
	"math"
	"sort"

	"github.com/eadvfs/eadvfs/internal/rng"
)

// GeneratorConfig parameterizes the paper's random task-set generator
// (§5.1): periods drawn uniformly from Periods; per-task worst-case energy
// drawn from U[0, MeanHarvestPower·period]; WCET = energy / PMax; then all
// WCETs scaled by a common ratio so the set's utilization is exactly
// TargetU.
type GeneratorConfig struct {
	NumTasks         int
	Periods          []float64 // paper: {10, 20, ..., 100}
	MeanHarvestPower float64   // P̄s of the energy source
	PMax             float64   // processor max power
	TargetU          float64   // requested utilization in (0, 1]
}

// PaperPeriods returns the paper's period menu {10, 20, …, 100}.
func PaperPeriods() []float64 {
	p := make([]float64, 10)
	for i := range p {
		p[i] = float64(10 * (i + 1))
	}
	return p
}

// Validate checks the configuration.
func (c GeneratorConfig) Validate() error {
	switch {
	case c.NumTasks <= 0:
		return fmt.Errorf("task: NumTasks %d <= 0", c.NumTasks)
	case len(c.Periods) == 0:
		return fmt.Errorf("task: empty period menu")
	case c.MeanHarvestPower <= 0:
		return fmt.Errorf("task: MeanHarvestPower %v <= 0", c.MeanHarvestPower)
	case c.PMax <= 0:
		return fmt.Errorf("task: PMax %v <= 0", c.PMax)
	case c.TargetU <= 0 || c.TargetU > 1:
		return fmt.Errorf("task: TargetU %v outside (0, 1] — \"The utilization U cannot be larger than 1\" (§5.1)", c.TargetU)
	}
	for _, p := range c.Periods {
		if p <= 0 || math.IsNaN(p) || math.IsInf(p, 0) {
			return fmt.Errorf("task: invalid period %v in menu", p)
		}
	}
	return nil
}

// Generate draws one task set per the paper's recipe. The same
// (config, rng state) always yields the same set.
func Generate(cfg GeneratorConfig, r *rng.RNG) ([]Task, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	tasks := make([]Task, cfg.NumTasks)
	rawU := 0.0
	for i := range tasks {
		period := rng.Choice(r, cfg.Periods)
		// "The energy consumption e for the task under the worst case is
		// generated in terms of the uniform distribution [0, P̄s·p]. Then
		// its worst case execution time is equal to e/Pmax." (§5.1)
		e := r.Uniform(0, cfg.MeanHarvestPower*period)
		wcet := e / cfg.PMax
		tasks[i] = Task{ID: i, Period: period, Deadline: period, WCET: wcet}
		rawU += wcet / period
	}
	// "In order to get the specific utilization, we scale the worst case
	// execution time of each task in a task set in the same ratio." (§5.1)
	if rawU == 0 {
		// All energies drew ~0; retry deterministically from the stream.
		return Generate(cfg, r)
	}
	scale := cfg.TargetU / rawU
	for i := range tasks {
		tasks[i].WCET *= scale
	}
	for _, t := range tasks {
		if err := t.Validate(); err != nil {
			// WCET > period can happen when the scale pushes a single
			// task's utilization above 1; redraw the whole set, as the
			// authors' generator implicitly discards such sets (they are
			// unschedulable regardless of energy).
			return Generate(cfg, r)
		}
	}
	return tasks, nil
}

// SetUtilization returns Σ wcet/period for the set (eq. 14).
func SetUtilization(tasks []Task) float64 {
	u := 0.0
	for _, t := range tasks {
		u += t.Utilization()
	}
	return u
}

// ReleaseJobs expands a task set into all job instances released strictly
// before horizon, in arrival order (stable across runs). The number of jobs
// is Σ ceil((horizon − offset)/period).
func ReleaseJobs(tasks []Task, horizon float64) []*Job {
	var jobs []*Job
	for _, t := range tasks {
		seq := 0
		for a := t.Offset; a < horizon; a += t.Period {
			j := NewJob(t.ID, seq, a, t.Deadline, t.WCET)
			j.Exec = t.Exec
			jobs = append(jobs, j)
			seq++
		}
	}
	sortJobsByArrival(jobs)
	return jobs
}

// sortJobsByArrival orders by (arrival, task ID, seq) — a strict total
// order, so the release schedule is deterministic.
func sortJobsByArrival(jobs []*Job) {
	sort.Slice(jobs, func(i, j int) bool {
		a, b := jobs[i], jobs[j]
		if a.Arrival != b.Arrival {
			return a.Arrival < b.Arrival
		}
		if a.TaskID != b.TaskID {
			return a.TaskID < b.TaskID
		}
		return a.Seq < b.Seq
	})
}
