package task

import (
	"fmt"
	"math"

	"github.com/eadvfs/eadvfs/internal/rng"
)

// Execution-time distribution kinds (ExecSpec.Dist values).
const (
	// DistUniform draws the actual/WCET ratio from U[BCRatio, 1].
	DistUniform = "uniform"
	// DistNormal draws the ratio from a normal(Mean, StdDev) clipped into
	// [BCRatio, 1] — the truncated-normal model of frame-based stochastic
	// task studies (Berten/Chang/Kuo).
	DistNormal = "normal"
	// DistBimodal mixes a fast lobe U[BCRatio, FastRatio] (probability
	// FastProb) with a slow lobe U[FastRatio, 1] — the classic
	// cache-hit/cache-miss execution profile.
	DistBimodal = "bimodal"
	// DistTrace replays a recorded per-slot utilization trace: job seq k
	// uses ratio Slots[k mod len(Slots)], no randomness.
	DistTrace = "trace"
)

// ExecSpec describes how a task's jobs draw their *actual* execution time
// as a fraction of the declared WCET. The paper's model is actual = WCET
// (a nil ExecSpec); a non-nil spec makes jobs finish early, which is the
// raw material of online slack reclamation (Leung/Tsui). The ratio is
// always in [0, 1]: actual work never exceeds the budget (WCET overruns
// are a fault-injection concern, internal/fault).
//
// The spec is pure data — JSON-serializable on the wire (it rides inside
// a task descriptor) and digest-stable: a nil spec marshals to nothing,
// so every pre-existing WCET-exact document keeps its digest.Compact key.
type ExecSpec struct {
	Dist      string
	BCRatio   float64   `json:",omitempty"` // lower ratio bound in [0, 1]
	Mean      float64   `json:",omitempty"` // normal: mean ratio
	StdDev    float64   `json:",omitempty"` // normal: ratio standard deviation
	FastProb  float64   `json:",omitempty"` // bimodal: probability of the fast lobe
	FastRatio float64   `json:",omitempty"` // bimodal: boundary between the lobes
	Slots     []float64 `json:",omitempty"` // trace: per-slot ratios, wrapped by seq
}

// Validate reports whether the spec is self-consistent.
func (s *ExecSpec) Validate() error {
	bad := func(v float64) bool { return math.IsNaN(v) || math.IsInf(v, 0) }
	if bad(s.BCRatio) || s.BCRatio < 0 || s.BCRatio > 1 {
		return fmt.Errorf("task: exec BCRatio %v outside [0, 1]", s.BCRatio)
	}
	switch s.Dist {
	case DistUniform:
	case DistNormal:
		if bad(s.Mean) || s.Mean < 0 || s.Mean > 1 {
			return fmt.Errorf("task: exec Mean %v outside [0, 1]", s.Mean)
		}
		if bad(s.StdDev) || s.StdDev < 0 {
			return fmt.Errorf("task: exec StdDev %v < 0", s.StdDev)
		}
	case DistBimodal:
		if bad(s.FastProb) || s.FastProb < 0 || s.FastProb > 1 {
			return fmt.Errorf("task: exec FastProb %v outside [0, 1]", s.FastProb)
		}
		if bad(s.FastRatio) || s.FastRatio < s.BCRatio || s.FastRatio > 1 {
			return fmt.Errorf("task: exec FastRatio %v outside [BCRatio %v, 1]", s.FastRatio, s.BCRatio)
		}
	case DistTrace:
		if len(s.Slots) == 0 {
			return fmt.Errorf("task: exec trace with no slots")
		}
		for i, v := range s.Slots {
			if bad(v) || v < 0 || v > 1 {
				return fmt.Errorf("task: exec trace slot %d: ratio %v outside [0, 1]", i, v)
			}
		}
	default:
		return fmt.Errorf("task: unknown exec distribution %q", s.Dist)
	}
	return nil
}

// Ratio draws one actual/WCET ratio in [0, 1]. The caller supplies a
// per-job RNG (derived per (task, seq) by the engine) so the draw is
// independent of event ordering; the trace distribution ignores it.
func (s *ExecSpec) Ratio(r *rng.RNG, seq int) float64 {
	switch s.Dist {
	case DistUniform:
		return r.Uniform(s.BCRatio, 1)
	case DistNormal:
		x := s.Mean + s.StdDev*r.Normal()
		if x < s.BCRatio {
			x = s.BCRatio
		}
		if x > 1 {
			x = 1
		}
		return x
	case DistBimodal:
		if r.Uniform(0, 1) < s.FastProb {
			return r.Uniform(s.BCRatio, s.FastRatio)
		}
		return r.Uniform(s.FastRatio, 1)
	case DistTrace:
		return s.Slots[seq%len(s.Slots)]
	default:
		panic(fmt.Sprintf("task: unknown exec distribution %q", s.Dist))
	}
}
