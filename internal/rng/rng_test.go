package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs in 100 draws", same)
	}
}

func TestZeroSeedValid(t *testing.T) {
	r := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 100 {
		t.Fatalf("zero-seeded generator produced repeats within 100 draws: %d unique", len(seen))
	}
}

func TestChildIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Child(1)
	c2 := parent.Child(2)
	c1again := parent.Child(1)
	if c1.Uint64() != c1again.Uint64() {
		t.Fatal("Child(1) is not deterministic")
	}
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("Child(1) and Child(2) look identical")
	}
	// Deriving children must not advance the parent.
	p1 := New(7)
	_ = p1.Child(9)
	p2 := New(7)
	if p1.Uint64() != p2.Uint64() {
		t.Fatal("Child advanced the parent stream")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestUniformBounds(t *testing.T) {
	r := New(5)
	f := func(lo, hi float64) bool {
		if math.IsNaN(lo) || math.IsNaN(hi) || math.IsInf(lo, 0) || math.IsInf(hi, 0) {
			return true
		}
		// Keep hi-lo representable; astronomically wide ranges overflow
		// to +Inf and are not meaningful inputs for the simulator.
		lo = math.Mod(lo, 1e12)
		hi = math.Mod(hi, 1e12)
		if hi < lo {
			lo, hi = hi, lo
		}
		v := r.Uniform(lo, hi)
		return v >= lo && (v < hi || lo == hi)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestUniformPanicsOnInvertedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uniform(1, 0) did not panic")
		}
	}()
	New(1).Uniform(1, 0)
}

func TestIntnRangeAndUniformity(t *testing.T) {
	r := New(9)
	const n, buckets = 100000, 10
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		v := r.Intn(buckets)
		if v < 0 || v >= buckets {
			t.Fatalf("Intn(%d) = %d out of range", buckets, v)
		}
		counts[v]++
	}
	want := float64(n) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 0.05*want {
			t.Fatalf("bucket %d count %d deviates >5%% from %v", b, c, want)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormalMoments(t *testing.T) {
	r := New(13)
	const n = 500000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Normal()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestHalfNormalMoments(t *testing.T) {
	r := New(17)
	const n = 500000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.HalfNormal()
		if v < 0 {
			t.Fatalf("HalfNormal() = %v < 0", v)
		}
		sum += v
	}
	mean := sum / n
	want := math.Sqrt(2 / math.Pi)
	if math.Abs(mean-want) > 0.01 {
		t.Fatalf("half-normal mean = %v, want ~%v", mean, want)
	}
}

func TestExponentialMean(t *testing.T) {
	r := New(19)
	const n = 300000
	const rate = 2.5
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.Exponential(rate)
		if v < 0 {
			t.Fatalf("Exponential() = %v < 0", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-1/rate) > 0.01 {
		t.Fatalf("exponential mean = %v, want ~%v", mean, 1/rate)
	}
}

func TestExponentialPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exponential(0) did not panic")
		}
	}()
	New(1).Exponential(0)
}

func TestChoice(t *testing.T) {
	r := New(23)
	vals := []int{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	counts := map[int]int{}
	const n = 50000
	for i := 0; i < n; i++ {
		counts[Choice(r, vals)]++
	}
	if len(counts) != len(vals) {
		t.Fatalf("Choice never returned %d of the values", len(vals)-len(counts))
	}
	want := float64(n) / float64(len(vals))
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 0.1*want {
			t.Fatalf("value %d chosen %d times, want ~%v", v, c, want)
		}
	}
}

func TestChoicePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Choice(empty) did not panic")
		}
	}()
	Choice[int](New(1), nil)
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := New(29)
	orig := []int{1, 2, 3, 4, 5, 6, 7, 8}
	v := append([]int(nil), orig...)
	Shuffle(r, v)
	seen := map[int]int{}
	for _, x := range v {
		seen[x]++
	}
	for _, x := range orig {
		if seen[x] != 1 {
			t.Fatalf("shuffle lost or duplicated element %d", x)
		}
	}
}

func TestMul64MatchesBigArithmetic(t *testing.T) {
	cases := []struct{ a, b uint64 }{
		{0, 0}, {1, 1}, {math.MaxUint64, math.MaxUint64},
		{1 << 32, 1 << 32}, {0xdeadbeefcafebabe, 0x123456789abcdef0},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		// Verify via decomposition: (aHi*2^32 + aLo)*(bHi*2^32 + bLo).
		wantLo := c.a * c.b
		if lo != wantLo {
			t.Fatalf("mul64(%x,%x) lo = %x, want %x", c.a, c.b, lo, wantLo)
		}
		// hi cross-check with float approximation for large values.
		approx := float64(c.a) * float64(c.b) / math.Pow(2, 64)
		if math.Abs(float64(hi)-approx) > approx*1e-9+2 {
			t.Fatalf("mul64(%x,%x) hi = %x, approx %v", c.a, c.b, hi, approx)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkNormal(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Normal()
	}
}
