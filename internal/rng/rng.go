// Package rng provides a small, deterministic random number generator and
// the distributions the simulator needs.
//
// The generator is a 64-bit SplitMix64-seeded xoshiro256** — implemented
// here rather than using math/rand so that streams are (a) identical across
// Go releases, which keeps every experiment in EXPERIMENTS.md exactly
// reproducible, and (b) cheaply splittable: each replication of an
// experiment derives an independent child stream from (seed, replication
// index) without any shared state.
package rng

import "math"

// RNG is a deterministic pseudo-random number generator (xoshiro256**).
// It is not safe for concurrent use; derive one per goroutine with Child.
type RNG struct {
	s [4]uint64

	// cached spare normal deviate for the polar method
	hasSpare bool
	spare    float64
}

// splitMix64 advances x and returns the next SplitMix64 output. It is used
// only for seeding, as recommended by the xoshiro authors.
func splitMix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from the given 64-bit seed. Distinct seeds
// yield independent-looking streams; the zero seed is valid.
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		r.s[i] = splitMix64(&sm)
	}
	// xoshiro must not start from the all-zero state; SplitMix64 cannot
	// produce four zero outputs in a row, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// Clone returns an exact copy of the generator's state. The clone and the
// original produce identical streams from this point on — used to fork a
// memoized energy source so lazy tail extension draws the same deviates in
// every fork (internal/energy).
func (r *RNG) Clone() *RNG {
	c := *r
	return &c
}

// Child derives an independent generator from this one's seed space using a
// stream index. Calling Child(i) with distinct i values yields streams that
// do not overlap in practice; the parent is not advanced.
func (r *RNG) Child(stream uint64) *RNG {
	// Mix the parent state with the stream index through SplitMix64.
	x := r.s[0] ^ (r.s[1] << 1) ^ stream*0xd1342543de82ef95
	return New(splitMix64(&x))
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform deviate in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Uniform returns a uniform deviate in [lo, hi). It panics if hi < lo.
func (r *RNG) Uniform(lo, hi float64) float64 {
	if hi < lo {
		panic("rng: Uniform bounds inverted")
	}
	return lo + (hi-lo)*r.Float64()
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
// Uses Lemire's multiply-shift rejection method (unbiased).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aHi*bLo + (aLo*bLo)>>32
	lo = a * b
	hi = aHi*bHi + t>>32 + (t&mask+aLo*bHi)>>32
	return hi, lo
}

// Normal returns a standard normal deviate (mean 0, variance 1) using the
// Marsaglia polar method; spare deviates are cached.
func (r *RNG) Normal() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		m := math.Sqrt(-2 * math.Log(s) / s)
		r.spare = v * m
		r.hasSpare = true
		return u * m
	}
}

// HalfNormal returns |Normal()|: the half-normal distribution with
// E[X] = sqrt(2/pi) ≈ 0.7979. The paper's energy source (eq. 13) shows a
// non-negative power trace, which this reproduces (DESIGN.md §5.2).
func (r *RNG) HalfNormal() float64 {
	return math.Abs(r.Normal())
}

// Exponential returns an exponential deviate with the given rate (λ > 0).
func (r *RNG) Exponential(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exponential with non-positive rate")
	}
	// 1-Float64() is in (0,1], so Log never sees zero.
	return -math.Log(1-r.Float64()) / rate
}

// Choice returns a uniformly chosen element of vals. It panics on an empty
// slice.
func Choice[T any](r *RNG, vals []T) T {
	if len(vals) == 0 {
		panic("rng: Choice on empty slice")
	}
	return vals[r.Intn(len(vals))]
}

// Shuffle permutes vals uniformly at random (Fisher–Yates).
func Shuffle[T any](r *RNG, vals []T) {
	for i := len(vals) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		vals[i], vals[j] = vals[j], vals[i]
	}
}
