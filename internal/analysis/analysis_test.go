package analysis

import (
	"math"
	"testing"

	"github.com/eadvfs/eadvfs/internal/cpu"
	"github.com/eadvfs/eadvfs/internal/energy"
	"github.com/eadvfs/eadvfs/internal/rng"
	"github.com/eadvfs/eadvfs/internal/task"
)

func implicitSet(us ...float64) []task.Task {
	var out []task.Task
	for i, u := range us {
		p := 10.0 * float64(i+1)
		out = append(out, task.Task{ID: i, Period: p, Deadline: p, WCET: u * p})
	}
	return out
}

func TestUtilizationAndDensity(t *testing.T) {
	tasks := implicitSet(0.2, 0.3)
	if got := Utilization(tasks); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("U = %v", got)
	}
	if got := Density(tasks); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("density = %v (implicit deadlines: equals U)", got)
	}
	constrained := []task.Task{{ID: 0, Period: 10, Deadline: 5, WCET: 2}}
	if got := Density(constrained); math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("constrained density = %v, want 0.4", got)
	}
}

func TestEDFSchedulable(t *testing.T) {
	if !EDFSchedulable(implicitSet(0.5, 0.5)) {
		t.Fatal("U = 1 implicit set rejected")
	}
	if EDFSchedulable(implicitSet(0.6, 0.5)) {
		t.Fatal("U = 1.1 accepted")
	}
	// Constrained deadlines use density.
	tight := []task.Task{
		{ID: 0, Period: 10, Deadline: 4, WCET: 2},
		{ID: 1, Period: 10, Deadline: 5, WCET: 3},
	}
	// density = 0.5 + 0.6 = 1.1 > 1
	if EDFSchedulable(tight) {
		t.Fatal("over-dense constrained set accepted")
	}
}

func TestDemands(t *testing.T) {
	proc := cpu.XScaleScaled(10)
	tasks := implicitSet(0.4)
	if got := DemandFullSpeed(tasks, proc); math.Abs(got-4) > 1e-9 {
		t.Fatalf("full-speed demand = %v, want 4", got)
	}
	// Min feasible is never above full speed, and strictly below when any
	// task can stretch.
	dMin := DemandMinFeasible(tasks, proc)
	if dMin >= 4 || dMin <= 0 {
		t.Fatalf("min-feasible demand = %v", dMin)
	}
	// One task with zero slack: both demands coincide.
	rigid := []task.Task{{ID: 0, Period: 10, Deadline: 10, WCET: 10}}
	if got := DemandMinFeasible(rigid, proc); math.Abs(got-DemandFullSpeed(rigid, proc)) > 1e-9 {
		t.Fatalf("rigid demand = %v, want full speed", got)
	}
}

func TestSustain(t *testing.T) {
	src := energy.NewConstant(4)
	s := Sustain(2, src)
	if s.Margin != 0.5 || s.MissFloor != 0 {
		t.Fatalf("sustainable case = %+v", s)
	}
	s = Sustain(8, src)
	if math.Abs(s.MissFloor-0.5) > 1e-12 {
		t.Fatalf("miss floor = %v, want 0.5", s.MissFloor)
	}
	if s.Margin >= 0 {
		t.Fatalf("margin = %v, want negative", s.Margin)
	}
	s = Sustain(1, energy.NewConstant(0))
	if !math.IsInf(s.Margin, -1) || s.MissFloor != 1 {
		t.Fatalf("dead-source case = %+v", s)
	}
}

func TestMaxDeficitConstantSource(t *testing.T) {
	// Supply 4 vs demand 3: never in deficit.
	d, err := MaxDeficit(energy.NewConstant(4), 3, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Fatalf("deficit = %v, want 0", d)
	}
	// Supply 1 vs demand 3: deficit grows 2/unit over the whole horizon.
	d, _ = MaxDeficit(energy.NewConstant(1), 3, 100)
	if math.Abs(d-200) > 1e-9 {
		t.Fatalf("deficit = %v, want 200", d)
	}
}

func TestMaxDeficitTwoMode(t *testing.T) {
	// Day 10 units at 6, night 10 units at 0; demand 2. The worst window
	// is the night: 10 units × 2 = 20 deficit.
	src := energy.NewTwoMode(6, 0, 20, 10)
	d, err := MaxDeficit(src, 2, 200)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-20) > 1e-9 {
		t.Fatalf("deficit = %v, want 20 (one night)", d)
	}
}

func TestMaxDeficitErrors(t *testing.T) {
	if _, err := MaxDeficit(energy.NewConstant(1), -1, 100); err == nil {
		t.Fatal("negative demand accepted")
	}
	if _, err := MaxDeficit(energy.NewConstant(1), 1, 0); err == nil {
		t.Fatal("zero horizon accepted")
	}
}

func TestAnalyzeReport(t *testing.T) {
	proc := cpu.XScaleScaled(10)
	src := energy.NewSolarModel(3)
	gcfg := task.GeneratorConfig{
		NumTasks: 5, Periods: task.PaperPeriods(),
		MeanHarvestPower: src.MeanPower(), PMax: proc.MaxPower(), TargetU: 0.4,
	}
	tasks, err := task.Generate(gcfg, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Analyze(tasks, proc, src, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.EDFSchedulable {
		t.Fatal("U=0.4 set must be EDF schedulable")
	}
	if math.Abs(rep.Utilization-0.4) > 1e-9 {
		t.Fatalf("U = %v", rep.Utilization)
	}
	// The paper's regime at PMax=10, U=0.4: full speed is right at the
	// sustainability edge, stretching is comfortably inside it.
	if rep.MinFeasible.Demand >= rep.FullSpeed.Demand {
		t.Fatal("stretching must reduce demand")
	}
	// Ride-through requirements are ordered like the demands.
	if rep.RideThroughMin > rep.RideThroughFull {
		t.Fatalf("deficit ordering violated: %v > %v", rep.RideThroughMin, rep.RideThroughFull)
	}
	if rep.RideThroughFull <= 0 {
		t.Fatal("solar troughs must create a positive ride-through requirement")
	}
}

func TestAnalyzeErrors(t *testing.T) {
	proc := cpu.XScale()
	src := energy.NewConstant(1)
	if _, err := Analyze(nil, proc, src, 100); err == nil {
		t.Fatal("empty set accepted")
	}
	bad := []task.Task{{ID: 0, Period: -1, Deadline: 1, WCET: 1}}
	if _, err := Analyze(bad, proc, src, 100); err == nil {
		t.Fatal("invalid task accepted")
	}
}

// Cross-check against simulation: the analytic ride-through bound at the
// full-speed demand should be within a small factor of the simulated
// minimum zero-miss capacity for LSA (the bound treats demand as a fluid
// constant, the simulation has burstiness and laziness, so exact equality
// is not expected — same order of magnitude is).
func TestRideThroughTracksSimulatedCmin(t *testing.T) {
	proc := cpu.XScaleScaled(10)
	src := energy.NewSolarModel(123)
	gcfg := task.GeneratorConfig{
		NumTasks: 5, Periods: task.PaperPeriods(),
		MeanHarvestPower: src.MeanPower(), PMax: proc.MaxPower(), TargetU: 0.3,
	}
	tasks, err := task.Generate(gcfg, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	bound, err := MaxDeficit(src, DemandFullSpeed(tasks, proc), 3000)
	if err != nil {
		t.Fatal(err)
	}
	if bound <= 0 {
		t.Skip("no deficit on this sample path")
	}
	// Order-of-magnitude agreement.
	if bound < 10 || bound > 1e5 {
		t.Fatalf("bound %v outside plausible range", bound)
	}
}
