// Package analysis provides closed-form feasibility checks for
// energy-harvesting real-time workloads: classic EDF schedulability (the
// time dimension), long-run energy demand against the source's mean power
// (the energy dimension), and a maximum-deficit bound on the storage
// capacity needed to ride through harvest troughs. The experiment
// harness measures these quantities by simulation; this package predicts
// them, and the tests cross-check the two.
package analysis

import (
	"errors"
	"fmt"
	"math"

	"github.com/eadvfs/eadvfs/internal/cpu"
	"github.com/eadvfs/eadvfs/internal/energy"
	"github.com/eadvfs/eadvfs/internal/task"
)

// Utilization returns Σ w_i/p_i (the paper's eq. 14).
func Utilization(tasks []task.Task) float64 {
	return task.SetUtilization(tasks)
}

// Density returns Σ w_i / min(d_i, p_i) — the standard sufficient load
// metric for constrained-deadline task sets.
func Density(tasks []task.Task) float64 {
	sum := 0.0
	for _, t := range tasks {
		sum += t.WCET / math.Min(t.Deadline, t.Period)
	}
	return sum
}

// EDFSchedulable reports whether the set is schedulable by preemptive EDF
// at full speed with unlimited energy. For implicit deadlines
// (d_i = p_i) the utilization bound U <= 1 is exact; otherwise the
// density bound is used, which is sufficient but not necessary.
func EDFSchedulable(tasks []task.Task) bool {
	implicit := true
	for _, t := range tasks {
		if t.Deadline != t.Period {
			implicit = false
			break
		}
	}
	if implicit {
		return Utilization(tasks) <= 1+1e-12
	}
	return Density(tasks) <= 1+1e-12
}

// DemandFullSpeed returns the long-run average power a full-speed-only
// policy (EDF, LSA) needs: U · P_max. If this exceeds the source's mean
// power, misses are inevitable at any storage size.
func DemandFullSpeed(tasks []task.Task, proc *cpu.Processor) float64 {
	return Utilization(tasks) * proc.MaxPower()
}

// DemandMinFeasible returns the long-run average power of the most
// stretched schedule any DVFS policy could sustain: each task runs at its
// own minimum feasible operating point (ineq. 6 with the full window),
// ignoring interference. It lower-bounds the demand of EA-DVFS and any
// other stretching policy.
func DemandMinFeasible(tasks []task.Task, proc *cpu.Processor) float64 {
	demand := 0.0
	for _, t := range tasks {
		level, ok := proc.MinLevelFor(t.WCET, t.Deadline)
		if !ok {
			level = proc.MaxLevel()
		}
		// Energy per period: P_n · w/S_n; divide by the period for power.
		demand += proc.ExecEnergy(t.WCET, level) / t.Period
	}
	return demand
}

// Sustainability classifies a (demand, source) pair.
type Sustainability struct {
	Demand     float64
	MeanSupply float64
	// Margin is (supply − demand) / supply: positive means the workload
	// is sustainable on average, negative the long-run miss floor.
	Margin float64
	// MissFloor estimates the asymptotic miss rate when demand exceeds
	// supply: the fraction of work that can never be powered.
	MissFloor float64
}

// Sustain evaluates a long-run demand against a source.
func Sustain(demand float64, src energy.Source) Sustainability {
	supply := src.MeanPower()
	s := Sustainability{Demand: demand, MeanSupply: supply}
	if supply > 0 {
		s.Margin = (supply - demand) / supply
	} else if demand > 0 {
		s.Margin = math.Inf(-1)
	}
	if demand > supply && demand > 0 {
		s.MissFloor = (demand - supply) / demand
	}
	return s
}

// MaxDeficit computes the ride-through storage bound: the largest energy
// shortfall of the source against a constant demand over any sub-interval
// of [0, horizon), sampled per unit. A store of at least this size,
// initially full, can serve the constant demand throughout the horizon —
// the classic buffer-sizing bound, and an analytic sanity check on the
// simulated C_min of Table 1.
func MaxDeficit(src energy.Source, demand, horizon float64) (float64, error) {
	if demand < 0 || math.IsNaN(demand) {
		return 0, fmt.Errorf("analysis: invalid demand %v", demand)
	}
	if horizon <= 0 || math.IsInf(horizon, 0) {
		return 0, errors.New("analysis: invalid horizon")
	}
	// deficit(t) = demand·t − E(0,t); the answer is
	// max_t (deficit(t) − min_{s<=t} deficit(s)).
	var (
		cum      float64 // harvested energy so far
		deficit  float64
		minSoFar float64
		maxGap   float64
	)
	n := int(horizon)
	for k := 0; k < n; k++ {
		cum += src.PowerAt(float64(k))
		deficit = demand*float64(k+1) - cum
		if gap := deficit - minSoFar; gap > maxGap {
			maxGap = gap
		}
		if deficit < minSoFar {
			minSoFar = deficit
		}
	}
	return maxGap, nil
}

// Report bundles the full analysis of a workload on a platform.
type Report struct {
	Utilization     float64
	Density         float64
	EDFSchedulable  bool
	FullSpeed       Sustainability
	MinFeasible     Sustainability
	RideThroughFull float64 // MaxDeficit at the full-speed demand
	RideThroughMin  float64 // MaxDeficit at the min-feasible demand
}

// Analyze produces a Report for the workload on the processor and source,
// evaluating deficits over the given horizon.
func Analyze(tasks []task.Task, proc *cpu.Processor, src energy.Source, horizon float64) (Report, error) {
	if len(tasks) == 0 {
		return Report{}, errors.New("analysis: no tasks")
	}
	for _, t := range tasks {
		if err := t.Validate(); err != nil {
			return Report{}, err
		}
	}
	r := Report{
		Utilization:    Utilization(tasks),
		Density:        Density(tasks),
		EDFSchedulable: EDFSchedulable(tasks),
	}
	dFull := DemandFullSpeed(tasks, proc)
	dMin := DemandMinFeasible(tasks, proc)
	r.FullSpeed = Sustain(dFull, src)
	r.MinFeasible = Sustain(dMin, src)
	var err error
	if r.RideThroughFull, err = MaxDeficit(src, dFull, horizon); err != nil {
		return Report{}, err
	}
	if r.RideThroughMin, err = MaxDeficit(src, dMin, horizon); err != nil {
		return Report{}, err
	}
	return r, nil
}
