// Package digest computes the repository's canonical configuration
// digest: the lowercase-hex SHA-256 of the compact (whitespace-free) form
// of a JSON document. It is the identity that ties a result artifact to
// the exact configuration that produced it — run manifests (internal/obs)
// have recorded it since the observability layer landed, and the
// simulation service (internal/service) keys its result cache with it, so
// a cached service response and a manifest written by easim for the same
// configuration carry the same digest.
//
// The digest is computed over the compact form so it survives
// re-indentation by pretty printers (a manifest written with MarshalIndent
// hashes identically to the original compact bytes). Input that is not valid JSON
// is hashed verbatim — callers that digest arbitrary bytes get a stable
// answer instead of an error.
package digest

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// Compact returns the lowercase-hex SHA-256 of the compact
// (whitespace-free) form of raw. Invalid JSON is hashed verbatim.
func Compact(raw []byte) string {
	var buf bytes.Buffer
	if err := json.Compact(&buf, raw); err == nil {
		raw = buf.Bytes()
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:])
}

// Of marshals v and returns Compact of the resulting bytes. json.Marshal
// already emits compact JSON with deterministic struct-field order, so two
// equal values of the same type always digest identically.
func Of(v any) (string, error) {
	raw, err := json.Marshal(v)
	if err != nil {
		return "", fmt.Errorf("digest: %w", err)
	}
	return Compact(raw), nil
}
