package digest_test

import (
	"crypto/sha256"
	"encoding/hex"
	"testing"

	"github.com/eadvfs/eadvfs/internal/digest"
)

// TestGoldenFormat pins the digest format to the one run manifests have
// recorded since PR 3: lowercase-hex SHA-256 of the compact JSON form.
// These literals were computed with `sha256sum` over the compact bytes —
// if this test fails, every manifest digest in the wild just changed
// meaning, so treat a failure as a contract break, not a test to update.
func TestGoldenFormat(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string
	}{
		{
			name: "compact object",
			in:   `{"policy":"ea-dvfs","seed":1}`,
			want: "f63a7e1316ccd19311b31e31ff4e4f9a7927292b88ac70b11e80c9091e12b6b3",
		},
		{
			name: "indented form digests identically",
			in:   "{\n  \"policy\": \"ea-dvfs\",\n  \"seed\": 1\n}",
			want: "f63a7e1316ccd19311b31e31ff4e4f9a7927292b88ac70b11e80c9091e12b6b3",
		},
		{
			name: "non-JSON hashes verbatim",
			in:   "not json",
			want: "7ccfa1fbf3940e6f0c0375d87c0f9235a50514e14cb427bdfaf5077987b26ccf",
		},
	}
	for _, c := range cases {
		if got := digest.Compact([]byte(c.in)); got != c.want {
			t.Errorf("%s: Compact(%q) = %s, want %s", c.name, c.in, got, c.want)
		}
	}
}

// TestCompactMatchesRawSHA256 cross-checks Compact against a direct
// SHA-256 of pre-compacted bytes, so the golden literals above are not the
// only anchor.
func TestCompactMatchesRawSHA256(t *testing.T) {
	raw := []byte(`{"a":[1,2,3],"b":{"c":null}}`)
	sum := sha256.Sum256(raw)
	if got, want := digest.Compact(raw), hex.EncodeToString(sum[:]); got != want {
		t.Fatalf("Compact = %s, want %s", got, want)
	}
}

func TestOf(t *testing.T) {
	type cfg struct {
		Policy string
		Seed   int
	}
	d1, err := digest.Of(cfg{Policy: "lsa", Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	d2, err := digest.Of(cfg{Policy: "lsa", Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatalf("equal values digest differently: %s vs %s", d1, d2)
	}
	d3, err := digest.Of(cfg{Policy: "lsa", Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if d1 == d3 {
		t.Fatalf("different values share digest %s", d1)
	}
	if len(d1) != 64 {
		t.Fatalf("digest length %d, want 64 hex chars", len(d1))
	}
	if _, err := digest.Of(make(chan int)); err == nil {
		t.Fatal("Of(chan) succeeded, want marshal error")
	}
}
