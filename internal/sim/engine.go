// Package sim couples the substrates — energy source, predictor, storage,
// DVFS processor, task workload — under a scheduling policy and runs the
// discrete-event simulation the paper's evaluation is built on (§5).
//
// Between events, the storage level evolves linearly (the source is
// piecewise-constant per unit interval and the processor draws constant
// power per operating point), so the engine advances state exactly: no
// fixed-step numerical integration, no drift. Every behavioural change —
// job arrival, completion, deadline expiry, storage depletion, a policy's
// s1/s2 instants, unit boundaries — is an event.
package sim

import (
	"context"
	"errors"
	"fmt"
	"math"

	"github.com/eadvfs/eadvfs/internal/cpu"
	"github.com/eadvfs/eadvfs/internal/des"
	"github.com/eadvfs/eadvfs/internal/energy"
	"github.com/eadvfs/eadvfs/internal/fault"
	"github.com/eadvfs/eadvfs/internal/metrics"
	"github.com/eadvfs/eadvfs/internal/obs"
	"github.com/eadvfs/eadvfs/internal/rng"
	"github.com/eadvfs/eadvfs/internal/sched"
	"github.com/eadvfs/eadvfs/internal/storage"
	"github.com/eadvfs/eadvfs/internal/task"
)

// Event dispatch priorities at equal timestamps. The order encodes the
// semantics: the predictor observes before anyone decides; a job finishing
// exactly at its deadline counts as meeting it (completion before deadline
// check); decisions always run last, over fully updated state.
const (
	prioBoundary = iota // unit boundary: observe predictor, sample energy
	prioSegment         // end of a run/idle segment (completion, empty, until)
	prioArrival         // job release
	prioDeadline        // deadline miss check
	prioDecide          // policy decision
)

// workEps is the remaining-work tolerance below which a job counts as
// complete (absorbs float rounding in completion-time arithmetic).
const workEps = 1e-9

// stallEps is the storage-sustain time below which an execution request is
// treated as unservable (§4.2: with no available energy the system stops).
const stallEps = 1e-9

// Mode is what the processor is doing over a segment.
type Mode int

// Processor activity modes.
const (
	ModeIdle  Mode = iota // no job selected; harvesting only
	ModeRun               // executing a job at some operating point
	ModeStall             // job selected but storage exhausted (§4.2)
	ModeSleep             // parked in a DPM sleep state (cpu.SleepState)
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case ModeIdle:
		return "idle"
	case ModeRun:
		return "run"
	case ModeStall:
		return "stall"
	case ModeSleep:
		return "sleep"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Tracer observes the schedule as it unfolds. All callbacks are optional
// no-ops in implementations that do not care.
type Tracer interface {
	// OnSegment reports a maximal interval of constant activity.
	OnSegment(start, end float64, mode Mode, job *task.Job, level int)
	// OnEvent reports a point event: "arrival", "completion", "miss",
	// "stall".
	OnEvent(t float64, kind string, job *task.Job)
}

// Config describes one simulation run. Store and Predictor are stateful
// and consumed by the run; construct fresh ones per run.
type Config struct {
	Horizon float64
	Tasks   []task.Task
	// Jobs are explicit job instances (e.g. a sporadic stream from
	// task.GenerateSporadic) released in addition to the periodic Tasks'
	// jobs. Jobs arriving at or after Horizon are ignored.
	Jobs      []*task.Job
	Source    energy.Source
	Predictor energy.Predictor
	Store     storage.Reservoir
	CPU       *cpu.Processor
	Policy    sched.Policy

	// ContinueAfterDeadline keeps a job in the ready queue after it
	// misses its deadline instead of dropping it (the default drops, which
	// is what makes the paper's per-job miss rate well-defined).
	ContinueAfterDeadline bool

	// StopAtFirstMiss ends the run immediately after the first deadline
	// miss is tallied, finalizing all accounting at the miss instant
	// instead of the horizon. The Result is then a valid prefix of the
	// full run — in particular Miss.Missed > 0 if and only if the full
	// run would have missed at least one deadline, which is the only
	// question a zero-miss feasibility probe (capacity bisection,
	// experiment.MinCapacitySearch) asks. A run with no misses is
	// unaffected, bit for bit.
	StopAtFirstMiss bool

	// BCWCRatio is the best-case/worst-case execution-time ratio of the
	// slack-reclamation extension: each job's actual work is drawn
	// uniformly from [BCWCRatio·WCET, WCET], while schedulers keep
	// budgeting the full WCET. 0 or 1 reproduces the paper's model
	// (actual = WCET). A per-task distribution (task.ExecSpec on the
	// task) takes precedence over this run-wide uniform draw.
	BCWCRatio float64

	// ExecSeed seeds the per-job actual-work draws (default 1). Draws
	// are per-(task, seq), so they do not depend on event ordering.
	ExecSeed uint64

	// RecordEnergy samples the storage level once per time unit into
	// Result.EnergySeries (the raw material of Figures 6–7).
	RecordEnergy bool

	// Tracer, when non-nil, receives schedule segments and events.
	Tracer Tracer

	// Probe, when non-nil, receives structured observability events
	// (internal/obs): arrivals, dispatches, segments, completions, misses,
	// stalls, fault activations and invariant violations — plus the
	// policy's decision-audit records via sched.Context. Every emission is
	// nil-guarded at the call site, so a run without a probe pays nothing
	// (enforced by the benchmark guard against BENCH_baseline.json).
	Probe obs.Probe

	// Faults, when non-nil and enabled, injects the declared substrate
	// faults into the run: the source, store and predictor are wrapped,
	// DVFS decisions pass through the stuck-frequency fault, and jobs may
	// overrun their WCET. The engine degrades gracefully — stalls, misses
	// and clamped operating points are tallied in Result.Degradation,
	// never fatal. A fresh fault.Set is materialized per run, so the
	// Config stays reusable.
	Faults *fault.Spec

	// CheckInvariants enables the runtime self-checker: store bounds
	// after every flow, energy conservation at unit boundaries and run
	// end, event-clock monotonicity and miss-tally consistency. When a
	// run breaches an invariant, Run returns the Result together with a
	// *InvariantError describing every recorded violation.
	CheckInvariants bool

	// MaxEvents aborts the run with a *EventBudgetError after this many
	// dispatched events (0 = unlimited) — a watchdog that turns a runaway
	// decision loop into a diagnosable error instead of a hung worker.
	MaxEvents uint64

	// Context, when non-nil, cancels the run cooperatively: the engine
	// polls it every 256 dispatched events and aborts with an error
	// wrapping ctx.Err() (and a nil Result). This is how a simulation
	// service propagates an abandoned request or a per-request timeout
	// into a running engine; nil (the default) costs nothing.
	Context context.Context
}

// Validate checks the configuration for structural errors.
func (c *Config) Validate() error {
	switch {
	case c.Horizon <= 0 || math.IsNaN(c.Horizon) || math.IsInf(c.Horizon, 0):
		return fmt.Errorf("sim: invalid horizon %v", c.Horizon)
	case c.Source == nil:
		return errors.New("sim: nil energy source")
	case c.Predictor == nil:
		return errors.New("sim: nil predictor")
	case c.Store == nil:
		return errors.New("sim: nil store")
	case c.CPU == nil:
		return errors.New("sim: nil processor")
	case c.Policy == nil:
		return errors.New("sim: nil policy")
	case c.BCWCRatio < 0 || c.BCWCRatio > 1 || math.IsNaN(c.BCWCRatio):
		return fmt.Errorf("sim: BCWCRatio %v outside [0, 1]", c.BCWCRatio)
	}
	for _, t := range c.Tasks {
		if err := t.Validate(); err != nil {
			return fmt.Errorf("sim: %w", err)
		}
	}
	for i, j := range c.Jobs {
		if j == nil {
			return fmt.Errorf("sim: nil job at index %d", i)
		}
		if j.Done() || j.Remaining() != j.WCET {
			return fmt.Errorf("sim: job %d/%d already executed", j.TaskID, j.Seq)
		}
	}
	if c.Faults != nil {
		if err := c.Faults.Validate(); err != nil {
			return fmt.Errorf("sim: %w", err)
		}
	}
	return nil
}

// Stochastic reports whether any job of this run draws an actual
// execution time below its WCET — the run-wide BCWCRatio extension or a
// per-task distribution. When false, the engines skip the exec RNG
// entirely: the WCET-exact path stays allocation-free and bit-identical
// to the paper's model.
func (c *Config) Stochastic() bool {
	if c.BCWCRatio > 0 && c.BCWCRatio < 1 {
		return true
	}
	for i := range c.Tasks {
		if c.Tasks[i].Exec != nil {
			return true
		}
	}
	for _, j := range c.Jobs {
		if j.Exec != nil {
			return true
		}
	}
	return false
}

// Result is the outcome of one run.
type Result struct {
	Policy string
	Miss   metrics.MissStats

	// EnergySeries holds EC(t) sampled at t = 0, 1, …, floor(Horizon)
	// when Config.RecordEnergy is set; nil otherwise.
	EnergySeries *metrics.Series

	Meters     storage.Meters
	FinalLevel float64

	BusyTime  float64   // time executing
	IdleTime  float64   // time idle by choice (laziness or no work)
	StallTime float64   // time blocked on an empty store (§4.2)
	LevelTime []float64 // execution time per operating point
	CPUEnergy float64   // total energy delivered to the processor
	Switches  int       // operating-point changes between run segments

	// Preemptions counts a running, unfinished job being displaced by a
	// different job; Decisions counts policy invocations. Together they
	// measure a policy's runtime overhead.
	Preemptions int
	Decisions   int

	// PerTask breaks releases, completions, misses and response times
	// down by task, sorted by task ID. The aggregate Miss tallies are
	// the column sums.
	PerTask []*TaskStats

	// Slack is the per-job actual-vs-WCET accounting of stochastic
	// execution (task.ExecSpec / Config.BCWCRatio): how many jobs drew an
	// actual work figure, how many completed with unspent budget, and the
	// total budget they left on the table. All zero for WCET-exact runs.
	Slack SlackStats

	// SleepTime is the time spent in a DPM sleep state, Wakeups the
	// number of initiated sleep exits, and DPMOverhead the energy drawn
	// by enter/exit transitions. All zero when the processor declares no
	// sleep states (cpu.WithSleepStates).
	SleepTime   float64
	Wakeups     int
	DPMOverhead float64

	Events          uint64
	ConservationErr float64

	// Degradation tallies how the run bent under injected faults
	// (Config.Faults); zero for a fault-free run.
	Degradation metrics.Degradation
}

// SlackStats tallies the gap between drawn actual execution times and the
// WCET budgets schedulers plan with.
type SlackStats struct {
	DrawnJobs        int     // jobs whose actual work was drawn from a distribution
	EarlyCompletions int     // completions that left unspent WCET budget
	ReclaimedWork    float64 // total unspent budget, in work units at f_max
}

// engine is the per-run mutable state.
//
// Event plumbing: only deadline checks live in the DES kernel heap. The
// other event classes each have a natural structure that makes a heap (and
// its per-event bookkeeping) unnecessary, so they are kept as *virtual
// streams* and merged with the kernel by (time, priority) in dispatch():
//
//   - unit boundaries are a monotone +1 chain (nextBoundary),
//   - at most one segment end is pending at a time (segTime — superseding
//     it is a field write, which also removes the stale-handle hazard of
//     cancelling a pooled kernel event after it fired),
//   - arrivals are a cursor over the pre-sorted release slice,
//   - at most one decision is pending at a time (decideAt).
//
// The priorities are disjoint per stream, so the merged order is exactly
// the order the old all-in-kernel design produced, and dispatched counts
// every fired event the same way kernel.Steps() used to.
type engine struct {
	cfg    *Config
	kernel *des.Kernel // deadline checks only; see above
	queue  *task.ReadyQueue

	lastT float64 // state integrated up to here

	mode    Mode
	running *task.Job
	level   int

	segStart  float64 // start of the current constant-activity segment
	lastRunLv int     // level of the previous run segment, -1 before any

	release       []*task.Job // job releases sorted by arrival (stable)
	nextArrival   int         // cursor into release
	nextBoundary  float64     // next unit boundary; +Inf when exhausted
	segTime       float64     // pending segment end; +Inf when none
	decideAt      float64     // pending decision instant
	decidePending bool

	simNow     float64 // time of the last dispatched event
	dispatched uint64  // events fired across all streams (Result.Events)
	stopped    bool    // StopAtFirstMiss tripped; drain and finalize at simNow

	// DPM idle-manager state. The machine is: idle → (break-even gate)
	// sleeping until sleepWake → waking for the state's latency → idle.
	// A run decision while asleep forces the wake early; the policy is
	// not consulted again until the latency has elapsed.
	sleeping  bool
	sleepIdx  int     // index into the processor's sleep states
	sleepWake float64 // planned wake-initiation instant
	waking    bool
	wakeDone  float64 // wake transition completes here

	deadlineFn des.ArgHandler // shared handler for all deadline events
	ctx        sched.Context  // rebuilt in place per decision (sched contract)

	initialLevel float64
	tasks        *taskTable
	execRNG      *rng.RNG // per-job actual-work draws; nil when BCWCRatio is off
	faults       *fault.Set
	inv          *invariantChecker
	res          *Result
}

// Run executes the configured simulation and returns its result.
//
// With Config.CheckInvariants set, a run that breaches an invariant
// returns BOTH the (suspect) Result and a *InvariantError, so callers can
// diagnose the drift; a watchdog abort (Config.MaxEvents) returns a
// *EventBudgetError with a nil Result.
//
// Runs execute on pooled arenas (see Arena): the DES kernel, ready queue,
// per-task table and release-schedule template are reused across runs, so
// steady-state simulation allocates only the Result and the caller's
// stateful components. Callers batching many related runs can hold an
// explicit arena (NewArena, RunMany) for release-plan reuse across the
// whole batch.
func Run(cfg *Config) (*Result, error) {
	a := arenaPool.Get().(*Arena)
	res, err := a.Run(cfg)
	// Deliberately not deferred: if Run panics (an engine bug), the arena
	// is dropped rather than returned to the pool half-mutated.
	arenaPool.Put(a)
	return res, err
}

// dispatch merges the virtual event streams with the kernel heap and runs
// the earliest (time, priority) pair until the horizon, enforcing the
// optional event budget (Config.MaxEvents).
func (e *engine) dispatch() error {
	for !e.stopped {
		t, prio, ok := e.peekNext()
		if !ok || t > e.cfg.Horizon {
			return nil
		}
		if e.cfg.MaxEvents > 0 && e.dispatched >= e.cfg.MaxEvents {
			return &EventBudgetError{
				Events:  e.dispatched,
				Time:    e.simNow,
				Horizon: e.cfg.Horizon,
				Pending: e.pendingEvents(),
			}
		}
		// Cooperative cancellation: poll the context every 256 events —
		// frequent enough to abort within microseconds of real time, rare
		// enough that the nil-context hot path stays unmeasurable.
		if e.cfg.Context != nil && e.dispatched&0xFF == 0 {
			if err := e.cfg.Context.Err(); err != nil {
				return fmt.Errorf("sim: run cancelled at t=%g after %d events: %w",
					e.simNow, e.dispatched, err)
			}
		}
		e.dispatched++
		e.simNow = t
		switch prio {
		case prioBoundary:
			e.nextBoundary = t + 1
			if e.nextBoundary > e.cfg.Horizon {
				e.nextBoundary = math.Inf(1)
			}
			e.onBoundary(t)
		case prioSegment:
			e.segTime = math.Inf(1)
			e.onSegmentEnd(t)
		case prioArrival:
			j := e.release[e.nextArrival]
			e.nextArrival++
			e.onArrival(t, j)
		case prioDeadline:
			e.kernel.Step()
		case prioDecide:
			e.onDecide(t)
		}
	}
	return nil
}

// peekNext returns the earliest pending (time, priority) across the kernel
// heap and the virtual streams. The priorities are disjoint per stream, so
// (time, priority) alone is a total order.
func (e *engine) peekNext() (float64, int, bool) {
	best, bestPrio, ok := e.kernel.Peek()
	if !ok {
		best, bestPrio = math.Inf(1), prioDecide+1
	}
	better := func(t float64, prio int) bool {
		return t < best || (t == best && prio < bestPrio)
	}
	if better(e.nextBoundary, prioBoundary) {
		best, bestPrio = e.nextBoundary, prioBoundary
	}
	if better(e.segTime, prioSegment) {
		best, bestPrio = e.segTime, prioSegment
	}
	if e.nextArrival < len(e.release) {
		if t := e.release[e.nextArrival].Arrival; better(t, prioArrival) {
			best, bestPrio = t, prioArrival
		}
	}
	if e.decidePending && better(e.decideAt, prioDecide) {
		best, bestPrio = e.decideAt, prioDecide
	}
	return best, bestPrio, !math.IsInf(best, 1)
}

// pendingEvents counts queued events across all streams (diagnostics for
// EventBudgetError).
func (e *engine) pendingEvents() int {
	n := e.kernel.Pending() + (len(e.release) - e.nextArrival)
	if !math.IsInf(e.nextBoundary, 1) {
		n++
	}
	if !math.IsInf(e.segTime, 1) {
		n++
	}
	if e.decidePending {
		n++
	}
	return n
}

// cpuPower returns the processor draw for the current mode.
func (e *engine) cpuPower() float64 {
	switch e.mode {
	case ModeRun:
		return e.cfg.CPU.Power(e.level)
	case ModeIdle:
		return e.cfg.CPU.IdlePower()
	case ModeSleep:
		return e.cfg.CPU.SleepState(e.level).Power
	default: // ModeStall: the system is down
		return 0
	}
}

// syncTo advances the energy and execution state from lastT to now,
// splitting at unit boundaries where the source power changes. Activity is
// constant across the whole span — behavioural changes are events, and
// events call syncTo before mutating anything.
func (e *engine) syncTo(now float64) {
	if now < e.lastT-1e-9 {
		if e.inv != nil {
			// Structured violation instead of a crash: record the causal
			// breach and refuse to integrate backwards.
			e.inv.record("clock", now, "syncTo backwards from %g", e.lastT)
			return
		}
		panic(fmt.Sprintf("sim: syncTo backwards from %v to %v", e.lastT, now))
	}
	pc := e.cpuPower()
	for e.lastT < now {
		// Split at the next unit boundary: the source power is constant
		// on [k, k+1). floor(lastT)+1 > lastT always, so progress is
		// guaranteed.
		end := math.Min(math.Floor(e.lastT)+1, now)
		dt := end - e.lastT
		ps := e.cfg.Source.PowerAt(e.lastT)
		delivered, _ := e.cfg.Store.Flow(ps, pc, dt)
		if e.inv != nil {
			e.inv.checkStoreBounds(end, e.cfg.Store.Level(), e.cfg.Store.Capacity())
		}
		switch e.mode {
		case ModeRun:
			e.res.BusyTime += dt
			e.res.LevelTime[e.level] += dt
			e.res.CPUEnergy += delivered
			e.running.Progress(e.cfg.CPU.Speed(e.level) * dt)
		case ModeIdle:
			e.res.IdleTime += dt
			e.res.CPUEnergy += delivered
		case ModeSleep:
			e.res.SleepTime += dt
			e.res.CPUEnergy += delivered
		case ModeStall:
			e.res.StallTime += dt
		}
		e.lastT = end
	}
	e.lastT = now
}

// setActivity transitions the processor's activity, closing the previous
// trace segment and counting DVFS switches.
func (e *engine) setActivity(now float64, mode Mode, j *task.Job, level int) {
	if mode == e.mode && j == e.running &&
		(mode != ModeRun && mode != ModeSleep || level == e.level) {
		return
	}
	e.closeSegment(now)
	if mode == ModeRun && e.cfg.Probe != nil {
		e.cfg.Probe.OnEvent(obs.Event{
			Time: now, Kind: obs.KindDispatch,
			TaskID: j.TaskID, Seq: j.Seq, Level: level,
		})
	}
	if mode == ModeRun {
		if e.lastRunLv >= 0 && e.lastRunLv != level {
			e.res.Switches++
			_, se := e.cfg.CPU.SwitchOverhead()
			if se > 0 {
				e.cfg.Store.Draw(se)
			}
		}
		e.lastRunLv = level
	}
	e.mode = mode
	e.running = j
	e.level = level
	e.segStart = now
}

// closeSegment emits the trace segment ending at now, if any.
func (e *engine) closeSegment(now float64) {
	if now > e.segStart {
		if e.cfg.Tracer != nil {
			e.cfg.Tracer.OnSegment(e.segStart, now, e.mode, e.running, e.level)
		}
		if e.cfg.Probe != nil {
			ev := obs.Event{
				Time: now, Kind: obs.KindSegment,
				TaskID: -1, Seq: -1,
				Start: e.segStart, Mode: e.mode.String(), Level: e.level,
			}
			if e.running != nil {
				ev.TaskID, ev.Seq = e.running.TaskID, e.running.Seq
			}
			e.cfg.Probe.OnEvent(ev)
		}
	}
	e.segStart = now
}

// emit reports a point event to the tracer and the probe. The tracer kind
// strings coincide with the obs.EventKind values, so one call site serves
// both sinks.
func (e *engine) emit(t float64, kind string, j *task.Job) {
	if e.cfg.Tracer != nil {
		e.cfg.Tracer.OnEvent(t, kind, j)
	}
	if e.cfg.Probe != nil {
		ev := obs.Event{Time: t, Kind: obs.EventKind(kind), TaskID: -1, Seq: -1}
		if j != nil {
			ev.TaskID, ev.Seq = j.TaskID, j.Seq
		}
		e.cfg.Probe.OnEvent(ev)
	}
}

func (e *engine) onArrival(now float64, j *task.Job) {
	e.syncTo(now)
	actual := j.WCET
	drawn := false
	if e.execRNG != nil {
		// Deterministic per-(task, seq) draw, independent of event order.
		// A per-task distribution (task.ExecSpec) takes precedence over
		// the run-wide BCWCRatio uniform.
		if j.Exec != nil {
			stream := uint64(j.TaskID)<<32 ^ uint64(j.Seq)
			r := e.execRNG.Child(stream)
			actual = j.WCET * j.Exec.Ratio(r, j.Seq)
			drawn = true
		} else if e.cfg.BCWCRatio > 0 && e.cfg.BCWCRatio < 1 {
			stream := uint64(j.TaskID)<<32 ^ uint64(j.Seq)
			r := e.execRNG.Child(stream)
			actual = j.WCET * r.Uniform(e.cfg.BCWCRatio, 1)
			drawn = true
		}
	}
	if drawn {
		e.res.Slack.DrawnJobs++
	}
	// Injected overrun: the true work exceeds what the task declared; the
	// scheduler keeps budgeting the WCET and only the engine knows.
	if of := e.faults.OverrunFactor(j.TaskID, j.Seq); of > 1 {
		actual *= of
		j.SetOverrunWork(actual)
		e.faults.AddOverrunWork(math.Max(0, actual-j.WCET))
	} else if drawn {
		j.SetActualWork(actual)
	}
	e.res.Miss.Released++
	e.tasks.released(j)
	e.emit(now, "arrival", j)
	if j.ActualRemaining() < workEps {
		// Zero-work job (WCET 0, or a zero actual-work draw): completes
		// at release without touching the processor.
		if rem := j.ActualRemaining(); rem > 0 {
			j.Progress(rem)
		} else {
			j.Progress(0)
		}
		e.res.Miss.Finished++
		e.tasks.finished(j, now)
		e.emit(now, "completion", j)
		e.noteReclaimed(now, j)
		return
	}
	e.queue.Push(j)
	// Deadline check, scheduled only if it falls inside the horizon; jobs
	// whose deadlines lie beyond the horizon are left unadjudicated. The
	// shared ArgHandler keeps this allocation-free (a *Job in an interface
	// does not allocate, and the kernel pools the Event itself).
	if j.Abs <= e.cfg.Horizon {
		e.kernel.AtArg(j.Abs, prioDeadline, "deadline", e.deadlineFn, j)
	}
	e.requestDecide(now)
}

// onDeadlineArg adapts onDeadline to the kernel's shared-handler shape.
func (e *engine) onDeadlineArg(now float64, arg any) {
	e.onDeadline(now, arg.(*task.Job))
}

func (e *engine) onDeadline(now float64, j *task.Job) {
	e.syncTo(now)
	if j.Done() || j.Missed() {
		return
	}
	j.MarkMissed()
	e.res.Miss.Missed++
	e.tasks.missed(j)
	e.emit(now, "miss", j)
	if e.cfg.StopAtFirstMiss {
		// The zero-miss predicate is now decided; dispatch() drains after
		// this handler returns and the run finalizes at simNow.
		e.stopped = true
	}
	if !e.cfg.ContinueAfterDeadline {
		e.queue.Remove(j)
		if e.running == j {
			e.setActivity(now, ModeIdle, nil, 0)
		}
	}
	e.requestDecide(now)
}

func (e *engine) onBoundary(now float64) {
	e.syncTo(now)
	if e.inv != nil {
		e.inv.checkClock(now)
		m := e.cfg.Store.Meters()
		e.inv.checkConservation(now, e.cfg.Store.ConservationError(e.initialLevel), e.initialLevel+m.Stored)
	}
	e.cfg.Predictor.Observe(now-1, e.cfg.Source.PowerAt(now-1))
	if s := e.res.EnergySeries; s != nil {
		k := int(math.Round(now))
		if k < s.Len() {
			s.Values[k] = e.cfg.Store.Level()
		}
	}
	// The boundary chain advances in dispatch(); nothing to re-arm here.
	// Harvest conditions changed: lazy policies must re-evaluate s1/s2.
	e.requestDecide(now)
}

// onSegmentEnd fires when the current activity's natural end is reached:
// job completion, storage depletion, or the policy's requested
// re-evaluation instant. All three reduce to "update state, re-decide".
func (e *engine) onSegmentEnd(now float64) {
	e.syncTo(now)
	e.finishIfDone(now)
	e.requestDecide(now)
}

// finishIfDone retires the running job if its work is (numerically)
// exhausted.
func (e *engine) finishIfDone(now float64) {
	j := e.running
	if e.mode != ModeRun || j == nil {
		return
	}
	if rem := j.ActualRemaining(); rem > 0 && rem < workEps {
		j.Progress(rem)
	}
	if j.Done() {
		e.queue.Remove(j)
		if !j.Missed() {
			// Finished counts on-time completions only; under
			// ContinueAfterDeadline a job can complete after its miss was
			// already tallied.
			e.res.Miss.Finished++
			e.tasks.finished(j, now)
		}
		e.emit(now, "completion", j)
		e.noteReclaimed(now, j)
		e.setActivity(now, ModeIdle, nil, 0)
	}
}

// noteReclaimed tallies a completing job's unspent WCET budget — the
// slack a reclaiming policy can fold into later decisions — and emits the
// early-completion event. A job that ran to its full budget contributes
// nothing, so WCET-exact runs never reach the body.
func (e *engine) noteReclaimed(now float64, j *task.Job) {
	if rem := j.Remaining(); rem > workEps {
		e.res.Slack.EarlyCompletions++
		e.res.Slack.ReclaimedWork += rem
		e.emit(now, "early-completion", j)
	}
}

func (e *engine) requestDecide(now float64) {
	if e.decidePending {
		return
	}
	e.decidePending = true
	e.decideAt = now
}

func (e *engine) onDecide(now float64) {
	e.decidePending = false
	e.syncTo(now)
	e.finishIfDone(now)

	// A fresh decision supersedes any pending segment end.
	e.segTime = math.Inf(1)

	// DPM: a wake transition in progress blocks scheduling — the policy
	// is not consulted until the latency has elapsed.
	if e.waking {
		if now < e.wakeDone {
			e.scheduleSegmentEnd(now, math.Inf(1), e.wakeDone)
			return
		}
		e.waking, e.sleeping = false, false
		e.setActivity(now, ModeIdle, nil, 0)
	}

	// The context struct is reused across decisions — policies must not
	// retain it past Decide (sched.Context's documented contract).
	e.ctx = sched.Context{
		Now:       now,
		Queue:     e.queue,
		Stored:    e.cfg.Store.Level(),
		Capacity:  e.cfg.Store.Capacity(),
		CPU:       e.cfg.CPU,
		Predictor: e.cfg.Predictor,
		Reclaimed: e.res.Slack.ReclaimedWork,
		Probe:     e.cfg.Probe,
	}
	d := e.cfg.Policy.Decide(&e.ctx)
	e.res.Decisions++
	if e.mode == ModeRun && e.running != nil && !e.running.Done() &&
		d.Job != nil && d.Job != e.running {
		e.res.Preemptions++
	}

	if d.Job == nil {
		if e.sleeping {
			if now < e.sleepWake {
				// Still idle and still ahead of the planned wake: stay in
				// the sleep state without re-paying the enter energy.
				e.scheduleSegmentEnd(now, math.Inf(1), e.sleepWake)
				return
			}
			e.initiateWake(now)
			return
		}
		e.setActivity(now, ModeIdle, nil, 0)
		until := d.Until
		if idle := e.cfg.CPU.IdlePower(); idle > 0 {
			// A non-zero idle draw can also empty the store; split there
			// so the exact-flow precondition holds.
			sustain := e.cfg.Store.TimeToEmpty(e.cfg.Source.PowerAt(now), idle)
			if sustain < stallEps {
				e.setActivity(now, ModeStall, nil, 0)
				return
			}
			until = math.Min(until, now+sustain)
		}
		if e.cfg.CPU.SleepLevels() > 0 {
			e.maybeSleep(now, until)
			if e.sleeping {
				return
			}
		}
		e.scheduleSegmentEnd(now, math.Inf(1), until)
		return
	}
	if e.sleeping {
		// The policy wants the processor back before the planned wake:
		// initiate the wake now; the run decision is re-derived once the
		// latency has elapsed.
		e.initiateWake(now)
		return
	}
	if d.Job.Done() {
		panic(fmt.Sprintf("sim: policy %s scheduled a finished job", e.cfg.Policy.Name()))
	}

	// The DVFS fault may refuse the requested transition (stuck
	// frequency): the processor then keeps its latched operating point
	// and the clamp is recorded as degradation, not an error. Fault-free
	// runs keep the strict path, where an out-of-range level panics as an
	// engine/policy bug.
	level := d.Level
	if e.faults != nil {
		requested := e.cfg.CPU.ClampLevel(level)
		level = e.cfg.CPU.ClampLevel(e.faults.DVFSLevel(now, e.lastRunLv, requested))
		if level != requested && e.cfg.Probe != nil {
			e.cfg.Probe.OnEvent(obs.Event{
				Time: now, Kind: obs.KindFault,
				TaskID: d.Job.TaskID, Seq: d.Job.Seq,
				Level: level, Detail: "dvfs-clamp",
			})
		}
	}

	ps := e.cfg.Source.PowerAt(now)
	pc := e.cfg.CPU.Power(level)
	sustain := e.cfg.Store.TimeToEmpty(ps, pc)
	if sustain < stallEps {
		// §4.2: no available energy — the system stops until conditions
		// change (next unit boundary or arrival re-decides).
		wasStalled := e.mode == ModeStall && e.running == d.Job
		e.setActivity(now, ModeStall, d.Job, level)
		if !wasStalled {
			e.emit(now, "stall", d.Job)
		}
		return
	}

	e.setActivity(now, ModeRun, d.Job, level)
	completion := now + d.Job.ActualRemaining()/e.cfg.CPU.Speed(level)
	e.scheduleSegmentEnd(now, completion, math.Min(d.Until, now+sustain))
}

// maybeSleep is the DPM idle manager: with the processor freshly idle,
// it parks it in the deepest sleep state whose break-even time plus wake
// latency fits the guaranteed quiet window — no arrival and no policy
// re-evaluation before its end (deadline events can still fire, forcing
// an early wake with the full latency penalty, which is exactly the risk
// break-even gating prices in). The planned wake initiates one latency
// early, so the processor is available again right when the window ends.
func (e *engine) maybeSleep(now, until float64) {
	winEnd := math.Min(until, e.cfg.Horizon)
	if e.nextArrival < len(e.release) {
		winEnd = math.Min(winEnd, e.release[e.nextArrival].Arrival)
	}
	idx := e.cfg.CPU.DeepestSleepFor(winEnd - now)
	if idx < 0 {
		return
	}
	st := e.cfg.CPU.SleepState(idx)
	if st.EnterEnergy > 0 {
		e.cfg.Store.Draw(st.EnterEnergy)
	}
	e.res.DPMOverhead += st.EnterEnergy
	e.sleeping = true
	e.sleepIdx = idx
	e.sleepWake = winEnd - st.WakeLatency
	e.setActivity(now, ModeSleep, nil, idx)
	e.scheduleSegmentEnd(now, math.Inf(1), e.sleepWake)
}

// initiateWake starts the sleep-exit transition: the exit energy is paid
// now, and the processor stays unavailable (still drawing the sleep
// state's power) until the wake latency elapses, when onDecide completes
// the transition back to idle.
func (e *engine) initiateWake(now float64) {
	st := e.cfg.CPU.SleepState(e.sleepIdx)
	if st.ExitEnergy > 0 {
		e.cfg.Store.Draw(st.ExitEnergy)
	}
	e.res.DPMOverhead += st.ExitEnergy
	e.res.Wakeups++
	e.waking = true
	e.wakeDone = now + st.WakeLatency
	e.scheduleSegmentEnd(now, math.Inf(1), e.wakeDone)
}

// scheduleSegmentEnd installs the next forced re-evaluation at
// min(completion, until), if finite. Unit boundaries and arrivals fire
// their own events, so a segment never actually outlives a source change:
// the depletion time computed above is exact within the current unit.
func (e *engine) scheduleSegmentEnd(now, completion, until float64) {
	end := math.Min(completion, until)
	if math.IsInf(end, 1) {
		return
	}
	if end < now+1e-12 {
		end = now + 1e-12 // forward progress even on degenerate inputs
	}
	if end > e.cfg.Horizon {
		return // the run ends first
	}
	e.segTime = end
}
