package sim

import (
	"math"
	"testing"

	"github.com/eadvfs/eadvfs/internal/core"
	"github.com/eadvfs/eadvfs/internal/cpu"
	"github.com/eadvfs/eadvfs/internal/energy"
	"github.com/eadvfs/eadvfs/internal/rng"
	"github.com/eadvfs/eadvfs/internal/sched"
	"github.com/eadvfs/eadvfs/internal/storage"
	"github.com/eadvfs/eadvfs/internal/task"
)

func sporadicJobs(t *testing.T, seed uint64, horizon float64) []*task.Job {
	t.Helper()
	jobs, err := task.GenerateSporadic(task.SporadicSpec{
		TaskID: 100, Rate: 0.05, MinSeparation: 4,
		Deadline: 30, WCETMin: 1, WCETMax: 5,
	}, horizon, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return jobs
}

func TestEngineSporadicOnly(t *testing.T) {
	jobs := sporadicJobs(t, 4, 2000)
	src := energy.NewSolarModel(4)
	cfg := &Config{
		Horizon:   2000,
		Jobs:      jobs,
		Source:    src,
		Predictor: energy.NewEWMA(0.2),
		Store:     storage.NewIdeal(300),
		CPU:       cpu.XScaleScaled(10),
		Policy:    core.NewEADVFS(),
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Miss.Released != len(jobs) {
		t.Fatalf("released %d of %d sporadic jobs", res.Miss.Released, len(jobs))
	}
	if err := res.Miss.Check(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.ConservationErr) > 1e-5*(1+res.Meters.Harvested) {
		t.Fatalf("conservation error %v", res.ConservationErr)
	}
}

func TestEngineMixedPeriodicAndSporadic(t *testing.T) {
	jobs := sporadicJobs(t, 5, 1000)
	src := energy.NewConstant(8)
	cfg := &Config{
		Horizon:   1000,
		Tasks:     []task.Task{{ID: 0, Period: 25, Deadline: 25, WCET: 2}},
		Jobs:      jobs,
		Source:    src,
		Predictor: energy.NewOracle(src),
		Store:     storage.New(1e5, 1e5),
		CPU:       cpu.XScaleScaled(10),
		Policy:    sched.EDF{},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantReleased := 40 + len(jobs)
	if res.Miss.Released != wantReleased {
		t.Fatalf("released %d, want %d", res.Miss.Released, wantReleased)
	}
	// Per-task rows: periodic task 0 plus sporadic task 100.
	ids := map[int]bool{}
	for _, s := range res.PerTask {
		ids[s.TaskID] = true
	}
	if !ids[0] || !ids[100] {
		t.Fatalf("per-task rows missing: %v", ids)
	}
}

func TestEngineRejectsUsedJobs(t *testing.T) {
	j := task.NewJob(0, 0, 1, 10, 2)
	j.Progress(1)
	src := energy.NewConstant(1)
	cfg := &Config{
		Horizon:   100,
		Jobs:      []*task.Job{j},
		Source:    src,
		Predictor: energy.NewOracle(src),
		Store:     storage.NewIdeal(10),
		CPU:       cpu.XScale(),
		Policy:    sched.EDF{},
	}
	if _, err := Run(cfg); err == nil {
		t.Fatal("partially executed job accepted")
	}
	cfg.Jobs = []*task.Job{nil}
	if _, err := Run(cfg); err == nil {
		t.Fatal("nil job accepted")
	}
}

func TestEngineIgnoresJobsBeyondHorizon(t *testing.T) {
	src := energy.NewConstant(5)
	cfg := &Config{
		Horizon:   50,
		Jobs:      []*task.Job{task.NewJob(0, 0, 60, 10, 1)},
		Source:    src,
		Predictor: energy.NewOracle(src),
		Store:     storage.NewIdeal(100),
		CPU:       cpu.XScale(),
		Policy:    sched.EDF{},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Miss.Released != 0 {
		t.Fatalf("released %d jobs beyond horizon", res.Miss.Released)
	}
}
