package sim

import (
	"testing"

	"github.com/eadvfs/eadvfs/internal/cpu"
	"github.com/eadvfs/eadvfs/internal/energy"
	"github.com/eadvfs/eadvfs/internal/obs"
	"github.com/eadvfs/eadvfs/internal/sched"
	"github.com/eadvfs/eadvfs/internal/storage"
	"github.com/eadvfs/eadvfs/internal/task"
)

// allocConfig builds a fresh fig1-style config; stateful components
// (Store, Predictor, Policy) are consumed per run, so the measured
// closure must rebuild them each iteration and their construction cost
// is measured separately and subtracted.
func allocConfig() *Config {
	src := energy.NewConstant(0.5)
	return &Config{
		Horizon:   25,
		Tasks:     []task.Task{oneShot(1, 0, 16, 4), oneShot(2, 5, 16, 1.5)},
		Source:    src,
		Predictor: energy.NewOracle(src),
		Store:     storage.New(1e6, 24),
		CPU:       cpu.TwoSpeed(8),
		Policy:    sched.LSA{},
	}
}

// With tracing disabled (no probe at all), the arena's steady-state run
// must stay allocation-lean: the span plumbing added to Arena.Run is two
// type assertions and nil *ActiveSpan method calls, none of which may
// allocate. The authoritative regression gate is eabench -check against
// the checked-in baseline (allocs/op within 15%); this test is the
// in-tree tripwire with a deliberately generous fixed bound so it fails
// on a structural regression (tracing allocating when disabled), not on
// noise. Race builds skip the numeric assertion — the detector changes
// allocation behaviour — but still execute the path for race coverage.
func TestArenaRunDisabledTracingAllocs(t *testing.T) {
	a := NewArena()
	for i := 0; i < 3; i++ { // warm the arena pools
		if _, err := a.Run(allocConfig()); err != nil {
			t.Fatal(err)
		}
	}
	overhead := testing.AllocsPerRun(100, func() {
		_ = allocConfig()
	})
	total := testing.AllocsPerRun(100, func() {
		if _, err := a.Run(allocConfig()); err != nil {
			t.Fatal(err)
		}
	})
	engine := total - overhead
	t.Logf("steady-state allocs/run: %.1f engine (%.1f total - %.1f config)", engine, total, overhead)
	if raceEnabled {
		t.Skip("race detector changes allocation behaviour; numeric bound not meaningful")
	}
	// Measured ~12 at introduction (identical to pre-tracing); 2x
	// headroom before this trips.
	const bound = 24
	if engine > bound {
		t.Fatalf("nil-probe steady-state run allocates %.1f times (bound %d): disabled tracing is no longer allocation-free", engine, bound)
	}
}

// A probe that is not a SpanSink must not trigger any tracing work: the
// engine's span extraction is a type assertion that fails, and the run
// must behave exactly as with tracing compiled out. This pins the gate
// condition — tracing engages on capability (SpanSink), not on the mere
// presence of a probe.
func TestArenaRunPlainProbeNoSpans(t *testing.T) {
	var rec countingProbe
	cfg := allocConfig()
	cfg.Probe = &rec
	if _, err := NewArena().Run(cfg); err != nil {
		t.Fatal(err)
	}
	if rec.events == 0 {
		t.Fatal("plain probe saw no events; probe plumbing broken")
	}
}

// countingProbe implements obs.Probe but NOT obs.SpanSink.
type countingProbe struct {
	events    int
	decisions int
}

func (c *countingProbe) OnEvent(obs.Event)             { c.events++ }
func (c *countingProbe) OnDecision(obs.DecisionRecord) { c.decisions++ }
