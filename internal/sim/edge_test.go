package sim

import (
	"math"
	"testing"

	"github.com/eadvfs/eadvfs/internal/core"
	"github.com/eadvfs/eadvfs/internal/cpu"
	"github.com/eadvfs/eadvfs/internal/energy"
	"github.com/eadvfs/eadvfs/internal/sched"
	"github.com/eadvfs/eadvfs/internal/storage"
	"github.com/eadvfs/eadvfs/internal/task"
)

func edgeCfg(tasks []task.Task, policy sched.Policy, horizon float64) *Config {
	src := energy.NewConstant(5)
	return &Config{
		Horizon:   horizon,
		Tasks:     tasks,
		Source:    src,
		Predictor: energy.NewOracle(src),
		Store:     storage.New(1e4, 1e4),
		CPU:       cpu.XScale(),
		Policy:    policy,
	}
}

func TestZeroWCETJobsCompleteInstantly(t *testing.T) {
	res, err := Run(edgeCfg([]task.Task{{ID: 0, Period: 10, Deadline: 10, WCET: 0}}, sched.EDF{}, 50))
	if err != nil {
		t.Fatal(err)
	}
	if res.Miss.Released != 5 || res.Miss.Finished != 5 || res.Miss.Missed != 0 {
		t.Fatalf("zero-wcet outcome: %+v", res.Miss)
	}
	if res.BusyTime != 0 {
		t.Fatalf("busy %v for zero work", res.BusyTime)
	}
}

func TestNonIntegerHorizon(t *testing.T) {
	res, err := Run(edgeCfg([]task.Task{{ID: 0, Period: 10, Deadline: 10, WCET: 1}}, sched.EDF{}, 33.7))
	if err != nil {
		t.Fatal(err)
	}
	total := res.BusyTime + res.IdleTime + res.StallTime
	if math.Abs(total-33.7) > 1e-6 {
		t.Fatalf("time accounting %v != 33.7", total)
	}
	if res.Miss.Released != 4 { // arrivals at 0, 10, 20, 30
		t.Fatalf("released %d", res.Miss.Released)
	}
}

func TestOffsetBeyondHorizonReleasesNothing(t *testing.T) {
	res, err := Run(edgeCfg([]task.Task{{ID: 0, Period: 10, Deadline: 10, WCET: 1, Offset: 99}}, sched.EDF{}, 50))
	if err != nil {
		t.Fatal(err)
	}
	if res.Miss.Released != 0 || res.BusyTime != 0 {
		t.Fatalf("phantom releases: %+v busy %v", res.Miss, res.BusyTime)
	}
}

func TestSimultaneousArrivalStorm(t *testing.T) {
	// 40 tasks all releasing at the same instants; total utilization 0.8.
	var tasks []task.Task
	for i := 0; i < 40; i++ {
		tasks = append(tasks, task.Task{ID: i, Period: 50, Deadline: 50, WCET: 1})
	}
	res, err := Run(edgeCfg(tasks, core.NewEADVFS(), 500))
	if err != nil {
		t.Fatal(err)
	}
	if res.Miss.Released != 400 {
		t.Fatalf("released %d, want 400", res.Miss.Released)
	}
	if res.Miss.Missed != 0 {
		t.Fatalf("EDF-feasible storm missed %d with ample energy", res.Miss.Missed)
	}
	if err := res.Miss.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestDeadlineShorterThanPeriod(t *testing.T) {
	// Constrained deadlines: d = p/2; still feasible at full speed.
	tasks := []task.Task{{ID: 0, Period: 20, Deadline: 10, WCET: 4}}
	res, err := Run(edgeCfg(tasks, core.NewEADVFS(), 200))
	if err != nil {
		t.Fatal(err)
	}
	if res.Miss.Missed != 0 {
		t.Fatalf("constrained-deadline misses: %+v", res.Miss)
	}
}

func TestEventCountBounded(t *testing.T) {
	// Event storms are the classic DES failure mode; pin a generous
	// bound so regressions (zero-length event loops) fail loudly.
	src := energy.NewSolarModel(1)
	cfg := &Config{
		Horizon:   5000,
		Tasks:     paperWorkload(1, 0.8, 10),
		Source:    src,
		Predictor: energy.NewEWMA(0.2),
		Store:     storage.NewIdeal(200),
		CPU:       cpu.XScaleScaled(10),
		Policy:    core.NewEADVFS(),
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	perUnit := float64(res.Events) / cfg.Horizon
	if perUnit > 40 {
		t.Fatalf("%.1f events per time unit — event storm", perUnit)
	}
}

func TestManyTasksHighUtilization(t *testing.T) {
	// Stress: 20 paper tasks at U=0.95 with scarce energy; only the
	// invariants are asserted, not outcomes.
	src := energy.NewSolarModel(99)
	cfg := &Config{
		Horizon:   3000,
		Tasks:     paperWorkload(99, 0.95, 20),
		Source:    src,
		Predictor: energy.NewEWMA(0.2),
		Store:     storage.NewIdeal(100),
		CPU:       cpu.XScaleScaled(10),
		Policy:    core.NewEADVFS(),
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Miss.Check(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.ConservationErr) > 1e-5*(1+res.Meters.Harvested) {
		t.Fatalf("conservation error %v", res.ConservationErr)
	}
	total := res.BusyTime + res.IdleTime + res.StallTime
	if math.Abs(total-cfg.Horizon) > 1e-6 {
		t.Fatalf("time accounting %v", total)
	}
}

func TestEnergySeriesMatchesFinalLevel(t *testing.T) {
	src := energy.NewSolarModel(17)
	cfg := &Config{
		Horizon:      1000,
		Tasks:        paperWorkload(17, 0.5, 5),
		Source:       src,
		Predictor:    energy.NewEWMA(0.2),
		Store:        storage.NewIdeal(400),
		CPU:          cpu.XScaleScaled(10),
		Policy:       sched.LSA{},
		RecordEnergy: true,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	last := res.EnergySeries.Values[res.EnergySeries.Len()-1]
	if math.Abs(last-res.FinalLevel) > 1e-6 {
		t.Fatalf("series end %v != final level %v", last, res.FinalLevel)
	}
}

func TestGreedyVsEADVFSOnStochasticWorkloads(t *testing.T) {
	// The §4.3 guard must help (or at least never hurt much) on the
	// paper's stochastic workloads, pooled over seeds.
	var greedy, ea int
	for seed := uint64(0); seed < 6; seed++ {
		for _, mk := range []func() sched.Policy{
			func() sched.Policy { return sched.GreedyStretch{} },
			func() sched.Policy { return core.NewEADVFS() },
		} {
			src := energy.NewSolarModel(seed)
			cfg := &Config{
				Horizon:   3000,
				Tasks:     paperWorkload(seed, 0.6, 5),
				Source:    src,
				Predictor: energy.NewEWMA(0.2),
				Store:     storage.NewIdeal(200),
				CPU:       cpu.XScaleScaled(10),
				Policy:    mk(),
			}
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Policy == "greedy-stretch" {
				greedy += res.Miss.Missed
			} else {
				ea += res.Miss.Missed
			}
		}
	}
	if ea > greedy {
		t.Fatalf("EA-DVFS (%d misses) worse than greedy stretching (%d)", ea, greedy)
	}
}
