package sim

import (
	"math"
	"testing"

	"github.com/eadvfs/eadvfs/internal/task"
)

// buildStats runs a taskTable through the given response times for task 0
// and returns its table row, exactly as the engine would produce it.
func buildStats(t *testing.T, resps []float64, missed int) *TaskStats {
	t.Helper()
	tt := newTaskTable()
	seq := 0
	for _, r := range resps {
		j := task.NewJob(0, seq, 0, 1000, 1)
		seq++
		tt.released(j)
		tt.finished(j, r) // arrival 0 → response == completion time
	}
	for i := 0; i < missed; i++ {
		j := task.NewJob(0, seq, 0, 1000, 1)
		seq++
		tt.released(j)
		tt.missed(j)
	}
	rows := tt.table()
	if len(rows) != 1 {
		t.Fatalf("expected one row, got %d", len(rows))
	}
	return rows[0]
}

// TestTaskStatsMerge covers the merge paths of the per-task aggregator:
// empty+empty, single+many, and the general check that merging two runs
// equals one run over the concatenated completions.
func TestTaskStatsMerge(t *testing.T) {
	t.Run("empty+empty", func(t *testing.T) {
		// A task that never released anything has no table row; its stats
		// are the zero value.
		a := &TaskStats{TaskID: 0}
		b := &TaskStats{TaskID: 0}
		a.Merge(b)
		if a.Released != 0 || a.Finished != 0 || a.Missed != 0 {
			t.Fatalf("merged empties must stay empty: %+v", a)
		}
		if a.ResponseMean != 0 || a.ResponseMax != 0 {
			t.Fatalf("empty merge produced response stats: %+v", a)
		}
	})
	t.Run("single+many", func(t *testing.T) {
		single := buildStats(t, []float64{9}, 0)
		many := buildStats(t, []float64{1, 2, 3, 4}, 2)
		single.Merge(many)
		if single.Released != 7 || single.Finished != 5 || single.Missed != 2 {
			t.Fatalf("counters wrong after merge: %+v", single)
		}
		want := buildStats(t, []float64{1, 2, 3, 4, 9}, 2)
		if math.Abs(single.ResponseMean-want.ResponseMean) > 1e-12 {
			t.Fatalf("merged mean %v != combined %v", single.ResponseMean, want.ResponseMean)
		}
		if single.ResponseMax != 9 {
			t.Fatalf("merged max %v != 9", single.ResponseMax)
		}
	})
	t.Run("max comes from either side", func(t *testing.T) {
		a := buildStats(t, []float64{3, 8}, 0)
		b := buildStats(t, []float64{2}, 0)
		a.Merge(b)
		if a.ResponseMax != 8 {
			t.Fatalf("max must survive a merge with smaller responses: %v", a.ResponseMax)
		}
		if mr := a.MissRate(); mr != 0 {
			t.Fatalf("no misses → rate 0, got %v", mr)
		}
	})
}
