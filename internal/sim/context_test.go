package sim

import (
	"context"
	"errors"
	"testing"

	"github.com/eadvfs/eadvfs/internal/sched"
)

// A pre-cancelled context aborts the run at the first poll with an error
// wrapping the context's error and no result.
func TestRunContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := fig1Config(sched.LSA{})
	cfg.Context = ctx
	res, err := Run(cfg)
	if err == nil {
		t.Fatal("Run with cancelled context succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not unwrap to context.Canceled", err)
	}
	if res != nil {
		t.Fatalf("cancelled run returned a result: %+v", res)
	}
}

// An attached-but-live context must not change the run: the result is
// bit-identical to a context-free run (the poll only reads Err()).
func TestRunContextLiveIsBitIdentical(t *testing.T) {
	base, err := Run(fig1Config(sched.LSA{}))
	if err != nil {
		t.Fatal(err)
	}
	cfg := fig1Config(sched.LSA{})
	cfg.Context = context.Background()
	got, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.Miss != base.Miss || got.CPUEnergy != base.CPUEnergy ||
		got.FinalLevel != base.FinalLevel || got.Events != base.Events {
		t.Fatalf("context-attached run diverged: %+v vs %+v", got, base)
	}
}
