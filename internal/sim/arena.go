package sim

import (
	"math"
	"sort"
	"sync"

	"github.com/eadvfs/eadvfs/internal/des"
	"github.com/eadvfs/eadvfs/internal/fault"
	"github.com/eadvfs/eadvfs/internal/metrics"
	"github.com/eadvfs/eadvfs/internal/obs"
	"github.com/eadvfs/eadvfs/internal/rng"
	"github.com/eadvfs/eadvfs/internal/task"
)

// Arena is the reusable cross-run state of the engine: the pooled DES
// kernel (event free list), the ready queue, the per-task stats table and
// the release-schedule template (task.ReleasePlan). One engine run churns
// through hundreds of job structs and kernel events; an arena allocates
// them once and resets them per run, which is what turns a repeated
// workload — a capacity bisection, a sweep cell, a service worker slot —
// from ~800 allocations per run into ~20.
//
// Reuse is strictly sequential: an arena serves one run at a time and is
// not safe for concurrent use. Run (the package function) draws arenas
// from an internal sync.Pool, which gives every concurrently executing
// worker — the experiment parallel runner's goroutines, the service's
// bounded pool slots — its own warm arena without coordination; hold an
// explicit Arena only when batching runs that share a task set and
// horizon, so the release plan survives from run to run.
//
// The contract the reset relies on: nothing retains engine-owned state
// past Run. Tracers and probes copy job fields rather than keep *Job
// (they already must, per the des event-pooling contract), and
// Result.PerTask entries are freshly allocated per run precisely because
// callers do retain those.
type Arena struct {
	kernel *des.Kernel
	queue  *task.ReadyQueue
	tasks  *taskTable
	plan   *task.ReleasePlan // cached release schedule; nil until first use
	eng    engine
}

// NewArena returns an empty arena. The first Run populates its pools; an
// arena warms up in one run.
func NewArena() *Arena {
	return &Arena{
		kernel: des.NewKernel(),
		queue:  task.NewReadyQueue(),
		tasks:  newTaskTable(),
	}
}

// arenaPool backs the package-level Run: one warm arena per P in the
// steady state, so every worker goroutine reuses run state without any
// explicit plumbing.
var arenaPool = sync.Pool{New: func() any { return NewArena() }}

// RunOutcome pairs one run of a batch with its error, keeping RunMany
// total: a failed run (invalid config, event-budget abort, cancellation)
// occupies its slot instead of truncating the batch.
type RunOutcome struct {
	Result *Result
	Err    error
}

// RunMany executes the configs sequentially on a single pooled arena and
// returns one outcome per config, in order. Each run is bit-identical to
// an independent Run of the same config (the internal/verify differential
// pins this down); the batch form amortizes the kernel, queue and — when
// consecutive configs share Tasks and Horizon, as replications and
// capacity columns do — the release-schedule expansion across the whole
// batch. Stateful components (Store, Predictor, Policy) are consumed per
// run as always and must be fresh per config.
func RunMany(cfgs []*Config) []RunOutcome {
	a := arenaPool.Get().(*Arena)
	out := make([]RunOutcome, len(cfgs))
	for i, cfg := range cfgs {
		out[i].Result, out[i].Err = a.Run(cfg)
	}
	arenaPool.Put(a)
	return out
}

// Run executes one simulation on this arena's pooled state. Semantics are
// exactly those of the package-level Run.
func (a *Arena) Run(cfg *Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}

	// Tracing rides the existing probe plumbing: a Probe that is also a
	// SpanSink receives wall-clock phase spans ("plan", "simulate") with
	// sim-time boundaries in the attributes, parented under whatever span
	// the probe carries (obs.TraceCarrier — the service's per-request
	// engine span). Tracing engages only when BOTH capabilities are
	// present: a sink to write to and a valid parent context proving a
	// trace is actually in progress. A sink without a trace (a bare
	// JSONLWriter probe recording a deterministic event stream) must not
	// have randomized span lines injected into it. A plain probe, or
	// none, costs two type assertions and no allocation: StartSpan on a
	// nil sink returns a nil *ActiveSpan whose methods are all no-ops.
	var trace obs.SpanSink
	var traceParent obs.SpanContext
	if cfg.Probe != nil {
		if ss, ok := cfg.Probe.(obs.SpanSink); ok {
			if parent := obs.SpanParentOf(cfg.Probe); parent.Valid() {
				trace = ss
				traceParent = parent
			}
		}
	}

	// Materialize the per-run fault set and interpose its wrappers on a
	// shallow copy, leaving the caller's Config untouched. A disabled (or
	// nil) fault spec yields a nil set: every path below degrades to the
	// exact fault-free behaviour, bit for bit.
	var faults *fault.Set
	if cfg.Faults != nil {
		var err error
		if faults, err = fault.New(*cfg.Faults); err != nil {
			return nil, err
		}
		if faults != nil {
			runCfg := *cfg
			runCfg.Source = faults.WrapSource(cfg.Source)
			runCfg.Store = faults.WrapStore(cfg.Store)
			runCfg.Predictor = faults.WrapPredictor(cfg.Predictor)
			cfg = &runCfg
		}
	}

	// Reset the pooled state up front (not on exit): a panicking run can
	// never leave a stale arena behind, because the next run starts from a
	// clean slate regardless.
	a.kernel.Reset()
	a.queue.Reset()
	a.tasks.reset()

	e := &a.eng
	*e = engine{
		cfg:       cfg,
		kernel:    a.kernel,
		queue:     a.queue,
		lastRunLv: -1,
		tasks:     a.tasks,
		faults:    faults,
		res: &Result{
			Policy:    cfg.Policy.Name(),
			LevelTime: make([]float64, cfg.CPU.Levels()),
		},
	}
	if cfg.CheckInvariants {
		e.inv = &invariantChecker{probe: cfg.Probe}
	}
	e.initialLevel = cfg.Store.Level()
	if cfg.Stochastic() {
		seed := cfg.ExecSeed
		if seed == 0 {
			seed = 1
		}
		e.execRNG = rng.New(seed)
	}

	if cfg.RecordEnergy {
		n := int(math.Floor(cfg.Horizon)) + 1
		e.res.EnergySeries = metrics.NewSeries(0, 1, n)
		e.res.EnergySeries.Values[0] = cfg.Store.Level()
	}

	planSpan := obs.StartSpan(trace, "sim", "plan", traceParent)
	e.release = a.releaseJobs(cfg)
	planSpan.SetInt("jobs", int64(len(e.release)))
	planSpan.SetFloat("horizon", cfg.Horizon)
	planSpan.End()

	// Unit-boundary chain: predictor observation + energy sampling.
	e.nextBoundary = math.Inf(1)
	if cfg.Horizon >= 1 {
		e.nextBoundary = 1
	}
	e.segTime = math.Inf(1)
	e.deadlineFn = e.onDeadlineArg

	simSpan := obs.StartSpan(trace, "sim", "simulate", traceParent)
	simSpan.SetFloat("sim_start", 0)
	e.requestDecide(0)
	if err := e.dispatch(); err != nil {
		simSpan.SetAttr("error", err.Error())
		simSpan.End()
		return nil, err
	}

	// A StopAtFirstMiss run ends at the miss instant; everything below —
	// state integration, trace closure, fault windows, conservation — is
	// finalized there instead of the horizon, so the Result is an exact
	// prefix of the full run.
	end := cfg.Horizon
	if e.stopped {
		end = e.simNow
	}
	e.syncTo(end)
	e.closeSegment(end)

	e.faults.FinishAt(end)
	e.res.Degradation = e.faults.Counters()
	e.res.PerTask = e.tasks.table()
	e.res.Meters = cfg.Store.Meters()
	e.res.FinalLevel = cfg.Store.Level()
	e.res.Events = e.dispatched
	e.res.ConservationErr = cfg.Store.ConservationError(e.initialLevel)
	simSpan.SetFloat("sim_end", end)
	simSpan.SetInt("events", int64(e.dispatched))
	simSpan.End()
	if err := e.res.Miss.Check(); err != nil {
		if e.inv == nil {
			return nil, err
		}
		e.inv.record("miss-stats", end, "%v", err)
	}
	if e.inv != nil {
		e.inv.checkConservation(end, e.res.ConservationErr, e.initialLevel+e.res.Meters.Stored)
		if err := e.inv.err(); err != nil {
			return e.res, err
		}
	}
	return e.res, nil
}

// releaseJobs produces the run's release schedule, sorted by arrival.
//
// The pure-periodic case (no explicit Config.Jobs) serves from the
// arena's cached ReleasePlan, rebuilt only when the task set or horizon
// changes: ReleaseJobs already emits (arrival, task ID, seq) order, the
// exact order the former per-run stable sort preserved, so the template
// path is bit-identical to the allocating one. Explicit jobs are caller
// state a template cannot own, so that path keeps the per-run build.
func (a *Arena) releaseJobs(cfg *Config) []*task.Job {
	if len(cfg.Jobs) == 0 {
		if a.plan == nil || !a.plan.Matches(cfg.Tasks, cfg.Horizon) {
			a.plan = task.NewReleasePlan(cfg.Tasks, cfg.Horizon)
		}
		return a.plan.Jobs()
	}
	release := task.ReleaseJobs(cfg.Tasks, cfg.Horizon)
	for _, j := range cfg.Jobs {
		if j.Arrival < cfg.Horizon {
			release = append(release, j)
		}
	}
	// The stable re-sort folds the appended explicit jobs in while keeping
	// the original tie order at equal arrival instants (which is the
	// former kernel-heap insertion order).
	sort.SliceStable(release, func(x, y int) bool { return release[x].Arrival < release[y].Arrival })
	return release
}
