package sim

import (
	"math"
	"testing"

	"github.com/eadvfs/eadvfs/internal/cpu"
	"github.com/eadvfs/eadvfs/internal/energy"
	"github.com/eadvfs/eadvfs/internal/sched"
	"github.com/eadvfs/eadvfs/internal/storage"
	"github.com/eadvfs/eadvfs/internal/task"
)

func TestPerTaskBreakdownSumsToAggregate(t *testing.T) {
	src := energy.NewSolarModel(5)
	cfg := &Config{
		Horizon:   3000,
		Tasks:     paperWorkload(5, 0.6, 5),
		Source:    src,
		Predictor: energy.NewEWMA(0.2),
		Store:     storage.NewIdeal(200),
		CPU:       cpu.XScaleScaled(10),
		Policy:    sched.LSA{},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerTask) != 5 {
		t.Fatalf("per-task rows = %d, want 5", len(res.PerTask))
	}
	var rel, fin, mis int
	prevID := -1
	for _, s := range res.PerTask {
		if s.TaskID <= prevID {
			t.Fatalf("per-task rows not sorted by ID: %d after %d", s.TaskID, prevID)
		}
		prevID = s.TaskID
		rel += s.Released
		fin += s.Finished
		mis += s.Missed
		if s.MissRate() < 0 || s.MissRate() > 1 {
			t.Fatalf("task %d miss rate %v", s.TaskID, s.MissRate())
		}
	}
	if rel != res.Miss.Released || fin != res.Miss.Finished || mis != res.Miss.Missed {
		t.Fatalf("per-task sums (%d,%d,%d) != aggregate %+v", rel, fin, mis, res.Miss)
	}
}

func TestPerTaskResponseTimes(t *testing.T) {
	// One task, ample energy, EDF: every job responds in exactly WCET.
	src := energy.NewConstant(50)
	cfg := &Config{
		Horizon:   100,
		Tasks:     []task.Task{{ID: 3, Period: 10, Deadline: 10, WCET: 2}},
		Source:    src,
		Predictor: energy.NewOracle(src),
		Store:     storage.New(1e6, 1e6),
		CPU:       cpu.XScale(),
		Policy:    sched.EDF{},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := res.PerTask[0]
	if s.TaskID != 3 || s.Released != 10 || s.Finished != 10 {
		t.Fatalf("stats = %+v", s)
	}
	if math.Abs(s.ResponseMean-2) > 1e-9 || math.Abs(s.ResponseMax-2) > 1e-9 {
		t.Fatalf("response mean/max = %v/%v, want 2/2", s.ResponseMean, s.ResponseMax)
	}
}

func TestPerTaskResponseUnderInterference(t *testing.T) {
	// Two tasks at the same release: the long-deadline task's first job
	// waits for the short one (EDF), so its response exceeds its WCET.
	src := energy.NewConstant(50)
	cfg := &Config{
		Horizon: 40,
		Tasks: []task.Task{
			{ID: 0, Period: 40, Deadline: 10, WCET: 2},
			{ID: 1, Period: 40, Deadline: 30, WCET: 3},
		},
		Source:    src,
		Predictor: energy.NewOracle(src),
		Store:     storage.New(1e6, 1e6),
		CPU:       cpu.XScale(),
		Policy:    sched.EDF{},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.PerTask[0].ResponseMean-2) > 1e-9 {
		t.Fatalf("task 0 response %v, want 2", res.PerTask[0].ResponseMean)
	}
	if math.Abs(res.PerTask[1].ResponseMean-5) > 1e-9 {
		t.Fatalf("task 1 response %v, want 5 (2 blocked + 3 run)", res.PerTask[1].ResponseMean)
	}
}

func TestPerTaskLateCompletionNotCountedAsResponse(t *testing.T) {
	src := energy.NewConstant(0)
	cfg := &Config{
		Horizon: 30,
		Tasks: []task.Task{
			{ID: 1, Period: 1e9, Deadline: 4, WCET: 3},
			{ID: 2, Period: 1e9, Deadline: 3.9, WCET: 3},
		},
		Source:                src,
		Predictor:             energy.NewOracle(src),
		Store:                 storage.New(1e6, 1e5),
		CPU:                   cpu.XScale(),
		Policy:                sched.EDF{},
		ContinueAfterDeadline: true,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Task 1 misses, then completes late: no response recorded for it.
	for _, s := range res.PerTask {
		if s.TaskID == 1 {
			if s.Missed != 1 || s.Finished != 0 {
				t.Fatalf("task 1 stats = %+v", s)
			}
			if s.ResponseMean != 0 {
				t.Fatalf("late completion recorded a response: %v", s.ResponseMean)
			}
		}
	}
}
