package sim

import (
	"errors"
	"math"
	"testing"

	"github.com/eadvfs/eadvfs/internal/core"
	"github.com/eadvfs/eadvfs/internal/cpu"
	"github.com/eadvfs/eadvfs/internal/energy"
	"github.com/eadvfs/eadvfs/internal/fault"
	"github.com/eadvfs/eadvfs/internal/metrics"
	"github.com/eadvfs/eadvfs/internal/storage"
	"github.com/eadvfs/eadvfs/internal/task"
)

// faultTestConfig is a periodic workload long enough for dense fault
// windows to strike many times, with the invariant checker armed.
func faultTestConfig() *Config {
	src := energy.NewSolarModel(7)
	return &Config{
		Horizon: 600,
		Tasks: []task.Task{
			{ID: 1, Period: 20, Deadline: 20, WCET: 3},
			{ID: 2, Period: 30, Deadline: 30, WCET: 4},
			{ID: 3, Period: 50, Deadline: 50, WCET: 6},
		},
		Source:          src,
		Predictor:       energy.NewEWMA(0.2),
		Store:           storage.New(300, 300),
		CPU:             cpu.XScaleScaled(10),
		Policy:          core.NewEADVFS(),
		CheckInvariants: true,
		MaxEvents:       1_000_000,
	}
}

// Each fault type, injected alone, must complete without panic, with
// clean invariants (the fault layer degrades the run, it does not break
// the physics) and with its own degradation counters moving.
func TestEachFaultTypeDegradesGracefully(t *testing.T) {
	dense := fault.WindowSpec{MeanGap: 15, MeanLen: 5}
	cases := []struct {
		name  string
		spec  fault.Spec
		check func(t *testing.T, d metrics.Degradation)
	}{
		{
			name: "harvester-dropout",
			spec: fault.Spec{Seed: 3, Dropout: dense, DropFactor: 0.1},
			check: func(t *testing.T, d metrics.Degradation) {
				if d.SourceFaultTime <= 0 {
					t.Fatalf("no dropout time: %+v", d)
				}
			},
		},
		{
			name: "storage-fade",
			spec: fault.Spec{Seed: 3, FadeRate: 2e-3, FadeLimit: 0.5},
			check: func(t *testing.T, d metrics.Degradation) {
				if d.FadeEnergy <= 0 {
					t.Fatalf("no fade loss: %+v", d)
				}
			},
		},
		{
			name: "leakage-spike",
			spec: fault.Spec{Seed: 3, LeakSpike: dense, LeakSpikeRate: 1.5},
			check: func(t *testing.T, d metrics.Degradation) {
				if d.LeakSpikeTime <= 0 || d.LeakSpikeEnergy <= 0 {
					t.Fatalf("no spike loss: %+v", d)
				}
			},
		},
		{
			name: "dvfs-stuck",
			spec: fault.Spec{Seed: 3, DVFSStuck: dense},
			check: func(t *testing.T, d metrics.Degradation) {
				if d.DVFSStuckTime <= 0 {
					t.Fatalf("no stuck time: %+v", d)
				}
			},
		},
		{
			name: "predictor-blackout",
			spec: fault.Spec{Seed: 3, Blackout: dense},
			check: func(t *testing.T, d metrics.Degradation) {
				if d.BlackoutTime <= 0 || d.StaleForecasts <= 0 {
					t.Fatalf("no blackout effect: %+v", d)
				}
			},
		},
		{
			name: "job-overrun",
			spec: fault.Spec{Seed: 3, OverrunProb: 0.6, OverrunMax: 0.5},
			check: func(t *testing.T, d metrics.Degradation) {
				if d.Overruns <= 0 || d.OverrunWork <= 0 {
					t.Fatalf("no overruns: %+v", d)
				}
			},
		},
		{
			name: "all-at-intensity-1",
			spec: fault.AtIntensity(3, 1),
			check: func(t *testing.T, d metrics.Degradation) {
				if !d.Any() {
					t.Fatalf("hostile substrate recorded nothing: %+v", d)
				}
			},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cfg := faultTestConfig()
			cfg.Faults = &tc.spec
			res, err := Run(cfg)
			if err != nil {
				t.Fatalf("faulted run not clean: %v", err)
			}
			if res.Miss.Released == 0 {
				t.Fatal("no jobs released")
			}
			tc.check(t, res.Degradation)
		})
	}
}

// A nil fault spec and a zero fault spec must both be bit-identical to the
// fault-free run — the fault layer is inert until explicitly enabled.
func TestZeroFaultSpecBitIdentical(t *testing.T) {
	base, err := Run(faultTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range []fault.Spec{{}, fault.AtIntensity(99, 0)} {
		spec := spec
		cfg := faultTestConfig()
		cfg.Faults = &spec
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Miss != base.Miss {
			t.Fatalf("zero-spec run diverged: %+v vs %+v", res.Miss, base.Miss)
		}
		if res.ConservationErr != base.ConservationErr || res.Degradation.Any() {
			t.Fatalf("zero-spec run not inert: cons %v vs %v, deg %+v",
				res.ConservationErr, base.ConservationErr, res.Degradation)
		}
	}
}

// Same master seed → identical outcome, run after run: the whole fault
// schedule is a function of the seed, not of event ordering.
func TestFaultedRunReproducible(t *testing.T) {
	run := func() *Result {
		cfg := faultTestConfig()
		spec := fault.AtIntensity(5, 0.8)
		cfg.Faults = &spec
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Miss != b.Miss {
		t.Fatalf("miss stats diverged: %+v vs %+v", a.Miss, b.Miss)
	}
	if a.Degradation != b.Degradation {
		t.Fatalf("degradation diverged: %+v vs %+v", a.Degradation, b.Degradation)
	}
	if a.ConservationErr != b.ConservationErr {
		t.Fatalf("conservation diverged: %v vs %v", a.ConservationErr, b.ConservationErr)
	}
}

// corruptStore is a deliberately buggy reservoir: it siphons energy from
// the level without metering the loss, so its balance cannot close. The
// invariant checker must catch exactly this class of bug.
type corruptStore struct {
	cap, level    float64
	stored, drawn float64
}

func (c *corruptStore) Capacity() float64 { return c.cap }
func (c *corruptStore) Level() float64    { return c.level }

func (c *corruptStore) TimeToEmpty(ps, pc float64) float64 {
	net := pc - ps
	if net <= 0 || c.level <= 0 {
		if c.level <= 0 && net > 0 {
			return 0
		}
		return math.Inf(1)
	}
	return c.level / net
}

func (c *corruptStore) Flow(ps, pc, dt float64) (delivered, overflow float64) {
	c.level += (ps - pc) * dt
	c.stored += ps * dt
	c.drawn += pc * dt
	c.level -= 0.05 * dt // the bug: unmetered self-discharge
	if c.level > c.cap {
		overflow = c.level - c.cap
		c.level = c.cap
		c.stored -= overflow
	}
	if c.level < 0 {
		c.level = 0
	}
	return pc * dt, overflow
}

func (c *corruptStore) Draw(e float64) float64 {
	d := math.Min(e, c.level)
	c.level -= d
	c.drawn += d
	return d
}

func (c *corruptStore) Meters() storage.Meters {
	return storage.Meters{Stored: c.stored, Drawn: c.drawn}
}

func (c *corruptStore) ConservationError(initial float64) float64 {
	return initial + c.stored - c.drawn - c.level
}

// The checker is clean on a correct fault-free run and reports a
// structured conservation violation on the corrupted store, instead of
// panicking mid-run.
func TestInvariantChecker(t *testing.T) {
	if _, err := Run(faultTestConfig()); err != nil {
		t.Fatalf("clean run flagged: %v", err)
	}

	cfg := faultTestConfig()
	cfg.Store = &corruptStore{cap: 1e6, level: 300}
	res, err := Run(cfg)
	var ie *InvariantError
	if !errors.As(err, &ie) {
		t.Fatalf("corrupted store not caught: %v", err)
	}
	if res == nil {
		t.Fatal("result withheld alongside the invariant error")
	}
	found := false
	for _, v := range ie.Violations {
		if v.Kind == "conservation" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no conservation violation among %v", ie.Violations)
	}
	if ie.Error() == "" {
		t.Fatal("empty error text")
	}
}

// The event-budget watchdog converts a too-long run into a structured
// error instead of a hung worker.
func TestEventBudgetWatchdog(t *testing.T) {
	cfg := faultTestConfig()
	cfg.MaxEvents = 10
	res, err := Run(cfg)
	var be *EventBudgetError
	if !errors.As(err, &be) {
		t.Fatalf("got %v, want *EventBudgetError", err)
	}
	if res != nil {
		t.Fatal("aborted run still produced a result")
	}
	if be.Events < 10 || be.Horizon != 600 {
		t.Fatalf("unhelpful watchdog report: %+v", be)
	}
}
