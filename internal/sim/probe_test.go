package sim

import (
	"math"
	"testing"

	"github.com/eadvfs/eadvfs/internal/core"
	"github.com/eadvfs/eadvfs/internal/obs"
	"github.com/eadvfs/eadvfs/internal/sched"
)

// auditPhase is a run of consecutive decision records with the same job,
// reason and level — the shape a lazy policy's re-evaluations collapse to.
type auditPhase struct {
	taskID, seq int
	reason      obs.Reason
	level       int
	first       obs.DecisionRecord
}

func compressAudit(decs []obs.DecisionRecord) []auditPhase {
	var out []auditPhase
	for _, d := range decs {
		if n := len(out); n > 0 {
			p := &out[n-1]
			if p.taskID == d.TaskID && p.seq == d.Seq && p.reason == d.Reason && p.level == d.Level {
				continue
			}
		}
		out = append(out, auditPhase{taskID: d.TaskID, seq: d.Seq,
			reason: d.Reason, level: d.Level, first: d})
	}
	return out
}

// Golden decision audit for the paper's §2/Figure 1 scenario under
// EA-DVFS: the walkthrough's narrative, as reason codes. The scheduler
// computes s1 = 4 (EC(0) = 24 is 8 short of τ1's 32-unit full-speed cost;
// at P_s = 0.5 the deficit takes 8 time units to harvest... but waiting
// also shortens the job's own recharge window — the fixed point lands at
// s1 = 4) and s2 = 16 − 32/8 = 12, idles to s1, then stretches τ1 at the
// slow operating point until s2. τ2 repeats the same pattern inside its
// own window. Both deadlines are met.
func TestFig1EADVFSAuditGolden(t *testing.T) {
	rec := obs.NewRecorder()
	cfg := fig1Config(core.NewEADVFS())
	cfg.Probe = rec
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Miss.Missed != 0 || res.Miss.Finished != 2 {
		t.Fatalf("EA-DVFS outcome = %+v, want both finished", res.Miss)
	}

	phases := compressAudit(rec.Decisions())
	want := []struct {
		taskID int
		reason obs.Reason
		level  int
	}{
		{1, obs.ReasonIdleRecharge, -1},    // wait for s1 = 4
		{1, obs.ReasonStretchSlackRich, 0}, // stretch τ1 at the slow point
		{2, obs.ReasonIdleRecharge, -1},    // τ2 waits for its own s1
		{2, obs.ReasonStretchSlackRich, 0}, // then stretches too
		{-1, obs.ReasonIdleNoJob, -1},      // queue drained
	}
	if len(phases) != len(want) {
		t.Fatalf("audit has %d phases, want %d: %+v", len(phases), len(want), phases)
	}
	for i, w := range want {
		p := phases[i]
		if p.taskID != w.taskID || p.reason != w.reason || p.level != w.level {
			t.Fatalf("phase %d = task %d %s level %d, want task %d %s level %d",
				i, p.taskID, p.reason, p.level, w.taskID, w.reason, w.level)
		}
	}

	// The paper's instants for τ1: s1 = 4, s2 = 12.
	idle := phases[0].first
	if math.Abs(idle.S1-4) > 1e-6 || math.Abs(idle.S2-12) > 1e-6 {
		t.Fatalf("τ1 audit: s1=%v s2=%v, want 4 and 12", idle.S1, idle.S2)
	}
	if math.Abs(idle.Until-4) > 1e-6 {
		t.Fatalf("τ1 idles until %v, want s1 = 4", idle.Until)
	}
	if math.Abs(idle.Stored-24) > 1e-6 || math.Abs(idle.Available-32) > 1e-6 {
		t.Fatalf("τ1 audit at t=0: stored=%v available=%v, want EC(0)=24 and 24+0.5·16=32",
			idle.Stored, idle.Available)
	}
	stretch := phases[1].first
	if math.Abs(stretch.Time-4) > 1e-6 || math.Abs(stretch.Until-12) > 1e-6 {
		t.Fatalf("τ1 stretches from %v until %v, want [4, 12]", stretch.Time, stretch.Until)
	}
	if stretch.Speed <= 0 || stretch.Speed >= 1 {
		t.Fatalf("stretched speed %v must be strictly between 0 and the max", stretch.Speed)
	}

	// The engine events seen by the same probe tell the outcome story.
	counts := map[obs.EventKind]int{}
	for _, ev := range rec.Events() {
		counts[ev.Kind]++
	}
	if counts[obs.KindArrival] != 2 || counts[obs.KindCompletion] != 2 ||
		counts[obs.KindMiss] != 0 || counts[obs.KindStall] != 0 {
		t.Fatalf("event counts = %v, want 2 arrivals, 2 completions, no misses/stalls", counts)
	}
}

// Golden decision audit for Figure 1 under LSA: no stretching, so the
// policy idles all the way to s2 = 16 − 32/8 = 12 and then runs τ1 flat
// out (the degenerate s2 = now case the audit codes as energy-rich). The
// energy spent at full speed leaves τ2 starved: it waits for its own s2,
// starts too late, and misses at 21.
func TestFig1LSAAuditGolden(t *testing.T) {
	rec := obs.NewRecorder()
	cfg := fig1Config(sched.LSA{})
	cfg.Probe = rec
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Miss.Missed != 1 || res.Miss.Finished != 1 {
		t.Fatalf("LSA outcome = %+v, want 1 finish + 1 miss", res.Miss)
	}

	maxLv := cfg.CPU.MaxLevel()
	phases := compressAudit(rec.Decisions())
	want := []struct {
		taskID int
		reason obs.Reason
		level  int
	}{
		{1, obs.ReasonIdleRecharge, -1},           // lazy: wait for s2 = 12
		{1, obs.ReasonFullSpeedEnergyRich, maxLv}, // then flat out
		{2, obs.ReasonIdleRecharge, -1},           // τ2 waits in a drained store
		{2, obs.ReasonFullSpeedEnergyRich, maxLv}, // starts too late
		{-1, obs.ReasonIdleNoJob, -1},
	}
	if len(phases) != len(want) {
		t.Fatalf("audit has %d phases, want %d: %+v", len(phases), len(want), phases)
	}
	for i, w := range want {
		p := phases[i]
		if p.taskID != w.taskID || p.reason != w.reason || p.level != w.level {
			t.Fatalf("phase %d = task %d %s level %d, want task %d %s level %d",
				i, p.taskID, p.reason, p.level, w.taskID, w.reason, w.level)
		}
	}
	if idle := phases[0].first; math.Abs(idle.S2-12) > 1e-6 || math.Abs(idle.Until-12) > 1e-6 {
		t.Fatalf("LSA idles until %v with s2=%v, want both 12", idle.Until, idle.S2)
	}

	missed := 0
	for _, ev := range rec.Events() {
		if ev.Kind == obs.KindMiss {
			missed++
			if ev.TaskID != 2 {
				t.Fatalf("miss event for task %d, want τ2", ev.TaskID)
			}
		}
	}
	if missed != 1 {
		t.Fatalf("saw %d miss events, want exactly 1", missed)
	}
}

// Dispatch and segment events carry enough to rebuild a Gantt chart: the
// segment stream tiles the horizon and every run segment names its job
// and operating point.
func TestFig1ProbeSegmentsTileHorizon(t *testing.T) {
	rec := obs.NewRecorder()
	cfg := fig1Config(core.NewEADVFS())
	cfg.Probe = rec
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	cursor := 0.0
	for _, ev := range rec.Events() {
		if ev.Kind != obs.KindSegment {
			continue
		}
		if math.Abs(ev.Start-cursor) > 1e-6 {
			t.Fatalf("segment starts at %v, expected to abut previous end %v", ev.Start, cursor)
		}
		if ev.Time < ev.Start {
			t.Fatalf("segment ends (%v) before it starts (%v)", ev.Time, ev.Start)
		}
		if ev.Mode == "run" && ev.TaskID < 0 {
			t.Fatalf("run segment without a job: %+v", ev)
		}
		cursor = ev.Time
	}
	if math.Abs(cursor-cfg.Horizon) > 1e-6 {
		t.Fatalf("segments end at %v, want the horizon %v", cursor, cfg.Horizon)
	}
}

// A nil probe must not change results: the observability layer observes,
// it does not perturb.
func TestProbeDoesNotPerturb(t *testing.T) {
	plain := fig1Config(core.NewEADVFS())
	resPlain, err := Run(plain)
	if err != nil {
		t.Fatal(err)
	}
	probed := fig1Config(core.NewEADVFS())
	probed.Probe = obs.NewRecorder()
	resProbed, err := Run(probed)
	if err != nil {
		t.Fatal(err)
	}
	if resPlain.CPUEnergy != resProbed.CPUEnergy ||
		resPlain.Miss != resProbed.Miss ||
		resPlain.BusyTime != resProbed.BusyTime {
		t.Fatalf("probe changed the run: %+v vs %+v", resPlain, resProbed)
	}
}
