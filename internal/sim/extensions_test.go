package sim

import (
	"math"
	"testing"

	"github.com/eadvfs/eadvfs/internal/core"
	"github.com/eadvfs/eadvfs/internal/cpu"
	"github.com/eadvfs/eadvfs/internal/energy"
	"github.com/eadvfs/eadvfs/internal/sched"
	"github.com/eadvfs/eadvfs/internal/storage"
	"github.com/eadvfs/eadvfs/internal/task"
)

// The engine runs against any storage.Reservoir: a hybrid store conserves
// energy end to end and behaves sensibly versus a single store of the
// same total size.
func TestEngineWithHybridStorage(t *testing.T) {
	mk := func(store storage.Reservoir) *Result {
		src := energy.NewSolarModel(11)
		cfg := &Config{
			Horizon:   3000,
			Tasks:     paperWorkload(11, 0.4, 5),
			Source:    src,
			Predictor: energy.NewEWMA(0.2),
			Store:     store,
			CPU:       cpu.XScaleScaled(10),
			Policy:    core.NewEADVFS(),
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	hybrid := mk(storage.NewHybrid(50, 50, 250, 250, 0.8))
	single := mk(storage.New(300, 300))

	if math.Abs(hybrid.ConservationErr) > 1e-5*(1+hybrid.Meters.Harvested) {
		t.Fatalf("hybrid conservation error %v", hybrid.ConservationErr)
	}
	if hybrid.Miss.Released != single.Miss.Released {
		t.Fatal("workloads diverged")
	}
	// The lossy battery tier can only hurt versus an ideal single store
	// of equal size; the difference should be bounded.
	if hybrid.Miss.Missed < single.Miss.Missed {
		t.Logf("note: hybrid beat ideal single store (%d vs %d) — allowed but unusual",
			hybrid.Miss.Missed, single.Miss.Missed)
	}
}

// Idle power drains the store while the processor waits, so a lazy policy
// must end with less energy and (possibly) more misses.
func TestEngineIdlePower(t *testing.T) {
	base := []cpu.OperatingPoint{
		{FreqMHz: 150, Power: 0.25}, {FreqMHz: 1000, Power: 10},
	}
	mk := func(proc *cpu.Processor) *Result {
		src := energy.NewConstant(0.3)
		cfg := &Config{
			Horizon:   500,
			Tasks:     []task.Task{{ID: 0, Period: 50, Deadline: 50, WCET: 2}},
			Source:    src,
			Predictor: energy.NewOracle(src),
			Store:     storage.New(200, 200),
			CPU:       proc,
			Policy:    sched.LSA{},
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	noIdle := mk(cpu.New("p", base))
	withIdle := mk(cpu.New("p", base, cpu.WithIdlePower(0.1)))
	if withIdle.FinalLevel >= noIdle.FinalLevel {
		t.Fatalf("idle draw did not reduce final energy: %v vs %v",
			withIdle.FinalLevel, noIdle.FinalLevel)
	}
	if math.Abs(withIdle.ConservationErr) > 1e-6*(1+withIdle.Meters.Harvested) {
		t.Fatalf("conservation error with idle power: %v", withIdle.ConservationErr)
	}
}

// Idle power can itself empty the store; the engine must stall rather
// than panic, and resume when harvest returns.
func TestEngineIdlePowerDepletion(t *testing.T) {
	proc := cpu.New("p", []cpu.OperatingPoint{{FreqMHz: 1000, Power: 5}},
		cpu.WithIdlePower(1))
	// Harvest 0 for a while: idle drains 10 units in 10 time units.
	src := energy.NewTrace("burst", []float64{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 8, 8, 8, 8, 8})
	cfg := &Config{
		Horizon:   30,
		Tasks:     []task.Task{{ID: 0, Period: 1e9, Deadline: 25, WCET: 1, Offset: 12}},
		Source:    src,
		Predictor: energy.NewOracle(src),
		Store:     storage.New(5, 5),
		CPU:       proc,
		Policy:    sched.EDF{},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.StallTime <= 0 {
		t.Fatal("expected idle-power stall")
	}
	if res.Miss.Finished != 1 {
		t.Fatalf("job should finish once harvest returns: %+v", res.Miss)
	}
}

// DVFS switch overhead: transitions are counted and their energy drawn.
func TestEngineSwitchOverhead(t *testing.T) {
	mk := func(switchEnergy float64) *Result {
		proc := cpu.New("p", []cpu.OperatingPoint{
			{FreqMHz: 250, Power: 1}, {FreqMHz: 1000, Power: 8},
		}, cpu.WithSwitchOverhead(0, switchEnergy))
		src := energy.NewConstant(0)
		cfg := &Config{
			Horizon: 20,
			Tasks: []task.Task{
				{ID: 1, Period: 1e9, Deadline: 16, WCET: 4, Offset: 0},
				{ID: 2, Period: 1e9, Deadline: 12, WCET: 1.5, Offset: 5},
			},
			Source:    src,
			Predictor: energy.NewOracle(src),
			Store:     storage.New(1e6, 40),
			CPU:       proc,
			Policy:    core.NewEADVFS(),
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	free := mk(0)
	costly := mk(0.5)
	if free.Switches == 0 {
		t.Fatal("Fig-3-style scenario must switch levels at least once")
	}
	if costly.Switches != free.Switches {
		t.Fatalf("switch counts differ: %d vs %d", costly.Switches, free.Switches)
	}
	wantDelta := 0.5 * float64(free.Switches)
	if math.Abs((free.FinalLevel-costly.FinalLevel)-wantDelta) > 1e-6 {
		t.Fatalf("switch energy not drawn: final levels %v vs %v, want delta %v",
			free.FinalLevel, costly.FinalLevel, wantDelta)
	}
}

// RecordEnergy series values always match the reservoir bounds.
func TestEnergySeriesWithinBounds(t *testing.T) {
	src := energy.NewSolarModel(3)
	cfg := &Config{
		Horizon:      2000,
		Tasks:        paperWorkload(3, 0.6, 5),
		Source:       src,
		Predictor:    energy.NewEWMA(0.2),
		Store:        storage.NewIdeal(250),
		CPU:          cpu.XScaleScaled(10),
		Policy:       sched.LSA{},
		RecordEnergy: true,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.EnergySeries.Len() != 2001 {
		t.Fatalf("series length %d", res.EnergySeries.Len())
	}
	for i, v := range res.EnergySeries.Values {
		if v < -1e-9 || v > 250+1e-9 {
			t.Fatalf("series[%d] = %v outside [0, 250]", i, v)
		}
	}
}
