package sim

import (
	"sort"

	"github.com/eadvfs/eadvfs/internal/metrics"
	"github.com/eadvfs/eadvfs/internal/task"
)

// TaskStats is the per-task breakdown of a run: which tasks actually
// suffer the deadline misses, and how long their jobs take to come back.
// Response times are measured from release to completion and include only
// on-time completions (a dropped job has no response).
type TaskStats struct {
	TaskID   int
	Released int
	Finished int
	Missed   int

	ResponseMean float64
	ResponseMax  float64

	resp metrics.Welford
}

// Merge folds another run's stats for the same task into t — the
// aggregation step when replicating a configuration across seeds. It
// relies on the internal response accumulator, so it is only meaningful
// for TaskStats produced by this package's engine (a hand-built TaskStats
// with ResponseMean set but no observations contributes nothing to the
// merged mean).
func (t *TaskStats) Merge(o *TaskStats) {
	t.Released += o.Released
	t.Finished += o.Finished
	t.Missed += o.Missed
	if o.ResponseMax > t.ResponseMax {
		t.ResponseMax = o.ResponseMax
	}
	t.resp.Merge(o.resp)
	t.ResponseMean = t.resp.Mean()
}

// MissRate returns the task's own deadline miss rate.
func (t *TaskStats) MissRate() float64 {
	if t.Released == 0 {
		return 0
	}
	return float64(t.Missed) / float64(t.Released)
}

// taskTable accumulates per-task statistics during a run.
type taskTable struct {
	byID map[int]*TaskStats
}

func newTaskTable() *taskTable {
	return &taskTable{byID: make(map[int]*TaskStats)}
}

// reset empties the table for arena reuse. The *TaskStats values are NOT
// recycled: table() hands them to Result.PerTask, where callers retain
// them past the run, so each run must mint fresh ones.
func (tt *taskTable) reset() { clear(tt.byID) }

func (tt *taskTable) get(id int) *TaskStats {
	s, ok := tt.byID[id]
	if !ok {
		s = &TaskStats{TaskID: id}
		tt.byID[id] = s
	}
	return s
}

func (tt *taskTable) released(j *task.Job) { tt.get(j.TaskID).Released++ }

func (tt *taskTable) finished(j *task.Job, now float64) {
	s := tt.get(j.TaskID)
	s.Finished++
	r := now - j.Arrival
	s.resp.Add(r)
	if r > s.ResponseMax {
		s.ResponseMax = r
	}
}

func (tt *taskTable) missed(j *task.Job) { tt.get(j.TaskID).Missed++ }

// table returns the stats sorted by task ID with derived fields filled.
func (tt *taskTable) table() []*TaskStats {
	out := make([]*TaskStats, 0, len(tt.byID))
	for _, s := range tt.byID {
		s.ResponseMean = s.resp.Mean()
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TaskID < out[j].TaskID })
	return out
}
