package sim

import (
	"math"
	"testing"

	"github.com/eadvfs/eadvfs/internal/core"
	"github.com/eadvfs/eadvfs/internal/cpu"
	"github.com/eadvfs/eadvfs/internal/energy"
	"github.com/eadvfs/eadvfs/internal/rng"
	"github.com/eadvfs/eadvfs/internal/sched"
	"github.com/eadvfs/eadvfs/internal/storage"
	"github.com/eadvfs/eadvfs/internal/task"
)

// oneShot builds a task releasing a single job in the horizon.
func oneShot(id int, arrival, relDeadline, wcet float64) task.Task {
	return task.Task{ID: id, Period: 1e9, Deadline: relDeadline, WCET: wcet, Offset: arrival}
}

// fig1Config is the paper's §2 motivational scenario: τ1 = (0, 16, 4),
// τ2 = (5, 16, 1.5), EC(0) = 24, P_s = 0.5, P_max = 8 (two-speed CPU).
func fig1Config(policy sched.Policy) *Config {
	src := energy.NewConstant(0.5)
	return &Config{
		Horizon:   25,
		Tasks:     []task.Task{oneShot(1, 0, 16, 4), oneShot(2, 5, 16, 1.5)},
		Source:    src,
		Predictor: energy.NewOracle(src),
		Store:     storage.New(1e6, 24),
		CPU:       cpu.TwoSpeed(8),
		Policy:    policy,
	}
}

// LSA on Figure 1: starts τ1 at t=12, depletes the store exactly at 16,
// and τ2 misses its deadline at 21 for lack of energy.
func TestFig1LSAMissesTau2(t *testing.T) {
	rec := &recorder{}
	cfg := fig1Config(sched.LSA{})
	cfg.Tracer = rec
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Miss.Released != 2 || res.Miss.Finished != 1 || res.Miss.Missed != 1 {
		t.Fatalf("LSA outcome = %+v, want 1 finish + 1 miss", res.Miss)
	}
	// τ1 must start at exactly t=12 (the paper's short arrow).
	start, ok := rec.firstRun(1)
	if !ok || math.Abs(start-12) > 1e-6 {
		t.Fatalf("τ1 first ran at %v, want 12", start)
	}
	// τ1 finishes exactly at its deadline 16.
	fin, ok := rec.completion(1)
	if !ok || math.Abs(fin-16) > 1e-6 {
		t.Fatalf("τ1 completed at %v, want 16", fin)
	}
	// τ2 is the miss.
	if miss, ok := rec.missOf(2); !ok || math.Abs(miss-21) > 1e-6 {
		t.Fatalf("τ2 miss at %v, want deadline 21", miss)
	}
	if math.Abs(res.ConservationErr) > 1e-6 {
		t.Fatalf("energy conservation violated: %v", res.ConservationErr)
	}
}

// EA-DVFS on Figure 1: slowing τ1 down leaves enough energy for τ2 — both
// deadlines met, as the paper's walkthrough concludes.
func TestFig1EADVFSMeetsBoth(t *testing.T) {
	rec := &recorder{}
	cfg := fig1Config(core.NewEADVFS())
	cfg.Tracer = rec
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Miss.Missed != 0 || res.Miss.Finished != 2 {
		t.Fatalf("EA-DVFS outcome = %+v, want both finished", res.Miss)
	}
	// τ1 starts at s1 = 4 and stretches at the low speed.
	start, ok := rec.firstRun(1)
	if !ok || math.Abs(start-4) > 1e-6 {
		t.Fatalf("τ1 first ran at %v, want s1 = 4", start)
	}
	// 8 time units at half speed finish τ1 exactly at s2 = 12.
	fin, ok := rec.completion(1)
	if !ok || math.Abs(fin-12) > 1e-6 {
		t.Fatalf("τ1 completed at %v, want 12", fin)
	}
	if math.Abs(res.ConservationErr) > 1e-6 {
		t.Fatalf("energy conservation violated: %v", res.ConservationErr)
	}
}

// fig3Config is the §4.3 scenario: τ1 = (0, 16, 4), τ2 = (5, 12, 1.5),
// EC(0) = 32, no harvest, Fig3 CPU (f_n = 0.25 f_max, P_n = 1, P_max = 8).
func fig3Config(policy sched.Policy) *Config {
	src := energy.NewConstant(0)
	return &Config{
		Horizon:   20,
		Tasks:     []task.Task{oneShot(1, 0, 16, 4), oneShot(2, 5, 12, 1.5)},
		Source:    src,
		Predictor: energy.NewOracle(src),
		Store:     storage.New(1e6, 32),
		CPU:       cpu.Fig3(),
		Policy:    policy,
	}
}

// Greedy stretching on Figure 3: τ1 hogs the processor until 16 and τ2
// cannot make its deadline at 17 despite ample energy.
func TestFig3GreedyStretchMissesTau2(t *testing.T) {
	res, err := Run(fig3Config(sched.GreedyStretch{}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Miss.Missed != 1 {
		t.Fatalf("greedy outcome = %+v, want τ2 missed", res.Miss)
	}
}

// EA-DVFS on Figure 3: the locked s2 = 12 forces τ1 to full speed, it
// finishes at 13 having consumed 20 units, and τ2 meets its deadline.
func TestFig3EADVFSMeetsBoth(t *testing.T) {
	rec := &recorder{}
	cfg := fig3Config(core.NewEADVFS())
	cfg.Tracer = rec
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Miss.Missed != 0 || res.Miss.Finished != 2 {
		t.Fatalf("EA-DVFS outcome = %+v, want both finished", res.Miss)
	}
	fin, ok := rec.completion(1)
	if !ok || math.Abs(fin-13) > 1e-6 {
		t.Fatalf("τ1 completed at %v, want the paper's 13", fin)
	}
	// Energy for τ1: 12 slow + 8 fast = 20 (the paper's "12+8" sum).
	// After τ1, 12 units remain; τ2 needs 12 at full speed — exactly met.
	if math.Abs(res.CPUEnergy-(20+12)) > 1e-6 {
		t.Fatalf("CPU energy = %v, want 32", res.CPUEnergy)
	}
}

// The dynamic-s2 ablation on Figure 3: recomputation lets s2 drift later
// at every re-decision until it meets the fixed point s2(t) = t, i.e.
// 16 − (32−t)/8 = t → t = 96/7 ≈ 13.71, where the sufficiency test forces
// full speed; τ1 completes at 96/7 + 4/7 = 100/7 ≈ 14.29 — not the paper's
// 13. (The deadline is still met here; the drift costs τ2 slack and, on
// tighter workloads, deadlines.)
func TestFig3DynamicVariantDriftsPastPaperArithmetic(t *testing.T) {
	rec := &recorder{}
	cfg := fig3Config(core.NewDynamicEADVFS())
	cfg.Tracer = rec
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Miss.Missed != 0 {
		t.Fatalf("dynamic outcome = %+v", res.Miss)
	}
	fin, ok := rec.completion(1)
	if !ok || math.Abs(fin-100.0/7) > 1e-6 {
		t.Fatalf("dynamic τ1 completed at %v, want drifted 100/7 (locked gives 13)", fin)
	}
}

func paperWorkload(seed uint64, u float64, n int) []task.Task {
	cfg := task.GeneratorConfig{
		NumTasks:         n,
		Periods:          task.PaperPeriods(),
		MeanHarvestPower: energy.NewSolarModel(0).MeanPower(),
		PMax:             cpu.XScale().MaxPower(),
		TargetU:          u,
	}
	tasks, err := task.Generate(cfg, rng.New(seed))
	if err != nil {
		panic(err)
	}
	return tasks
}

// §4.3 special case: with infinite storage EA-DVFS must be exactly EDF.
// Run both on the paper's stochastic workload and compare full traces.
func TestInfiniteStorageEADVFSEqualsEDF(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		tasks := paperWorkload(seed, 0.7, 5)
		mk := func(policy sched.Policy) (*Result, *recorder) {
			rec := &recorder{}
			src := energy.NewSolarModel(seed)
			cfg := &Config{
				Horizon:   2000,
				Tasks:     tasks,
				Source:    src,
				Predictor: energy.NewEWMA(0.2),
				Store:     storage.New(math.Inf(1), math.Inf(1)),
				CPU:       cpu.XScale(),
				Policy:    policy,
				Tracer:    rec,
			}
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			return res, rec
		}
		ra, ta := mk(core.NewEADVFS())
		rb, tb := mk(sched.EDF{})
		if ra.Miss != rb.Miss {
			t.Fatalf("seed %d: miss stats differ: %+v vs %+v", seed, ra.Miss, rb.Miss)
		}
		if !ta.sameRunSegments(tb) {
			t.Fatalf("seed %d: schedules differ under infinite storage", seed)
		}
		if ra.Miss.Missed != 0 {
			t.Fatalf("seed %d: EDF with infinite energy and U<1 missed %d deadlines", seed, ra.Miss.Missed)
		}
	}
}

// Energy conservation and bounded storage over the full stochastic stack,
// for every policy.
func TestConservationAndBoundsAllPolicies(t *testing.T) {
	policies := []func() sched.Policy{
		func() sched.Policy { return sched.EDF{} },
		func() sched.Policy { return sched.LSA{} },
		func() sched.Policy { return sched.GreedyStretch{} },
		func() sched.Policy { return core.NewEADVFS() },
		func() sched.Policy { return core.NewDynamicEADVFS() },
	}
	for _, mk := range policies {
		for seed := uint64(0); seed < 3; seed++ {
			p := mk()
			src := energy.NewSolarModel(seed + 100)
			store := storage.NewIdeal(500)
			cfg := &Config{
				Horizon:   3000,
				Tasks:     paperWorkload(seed+100, 0.5, 5),
				Source:    src,
				Predictor: energy.NewEWMA(0.2),
				Store:     store,
				CPU:       cpu.XScale(),
				Policy:    p,
			}
			res, err := Run(cfg)
			if err != nil {
				t.Fatalf("%s seed %d: %v", p.Name(), seed, err)
			}
			if math.Abs(res.ConservationErr) > 1e-5*(1+res.Meters.Harvested) {
				t.Fatalf("%s seed %d: conservation error %v", p.Name(), seed, res.ConservationErr)
			}
			if store.Level() < -1e-9 || store.Level() > store.Capacity()+1e-9 {
				t.Fatalf("%s seed %d: level %v outside [0, %v]", p.Name(), seed, store.Level(), store.Capacity())
			}
			if err := res.Miss.Check(); err != nil {
				t.Fatalf("%s seed %d: %v", p.Name(), seed, err)
			}
			// Time accounting closes: busy + idle + stall = horizon.
			total := res.BusyTime + res.IdleTime + res.StallTime
			if math.Abs(total-cfg.Horizon) > 1e-6 {
				t.Fatalf("%s seed %d: time accounting %v != horizon", p.Name(), seed, total)
			}
			// Level residency sums to busy time.
			lv := 0.0
			for _, v := range res.LevelTime {
				lv += v
			}
			if math.Abs(lv-res.BusyTime) > 1e-6 {
				t.Fatalf("%s seed %d: level residency %v != busy %v", p.Name(), seed, lv, res.BusyTime)
			}
		}
	}
}

// Determinism: identical configs yield bit-identical results.
func TestRunDeterministic(t *testing.T) {
	mk := func() *Result {
		src := energy.NewSolarModel(42)
		cfg := &Config{
			Horizon:      2000,
			Tasks:        paperWorkload(42, 0.4, 5),
			Source:       src,
			Predictor:    energy.NewEWMA(0.2),
			Store:        storage.NewIdeal(300),
			CPU:          cpu.XScale(),
			Policy:       core.NewEADVFS(),
			RecordEnergy: true,
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := mk(), mk()
	if a.Miss != b.Miss || a.CPUEnergy != b.CPUEnergy || a.FinalLevel != b.FinalLevel || a.Events != b.Events {
		t.Fatalf("non-deterministic results: %+v vs %+v", a, b)
	}
	for i := range a.EnergySeries.Values {
		if a.EnergySeries.Values[i] != b.EnergySeries.Values[i] {
			t.Fatalf("energy series diverges at %d", i)
		}
	}
}

// A job finishing exactly at its deadline is met, not missed.
func TestCompletionExactlyAtDeadlineIsMet(t *testing.T) {
	src := energy.NewConstant(0)
	cfg := &Config{
		Horizon:   12,
		Tasks:     []task.Task{oneShot(0, 0, 10, 10)}, // needs full window at fmax
		Source:    src,
		Predictor: energy.NewOracle(src),
		Store:     storage.New(1e6, 1e5),
		CPU:       cpu.XScale(),
		Policy:    sched.EDF{},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Miss.Missed != 0 || res.Miss.Finished != 1 {
		t.Fatalf("outcome = %+v, want met exactly at deadline", res.Miss)
	}
}

// With zero harvest and zero stored energy every job with a deadline in
// the horizon misses.
func TestNoEnergyMissesEverything(t *testing.T) {
	src := energy.NewConstant(0)
	cfg := &Config{
		Horizon:   100,
		Tasks:     []task.Task{{ID: 0, Period: 10, Deadline: 10, WCET: 2}},
		Source:    src,
		Predictor: energy.NewOracle(src),
		Store:     storage.New(100, 0),
		CPU:       cpu.XScale(),
		Policy:    core.NewEADVFS(),
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Miss.Released != 10 || res.Miss.Missed != 10 {
		t.Fatalf("outcome = %+v, want all 10 missed", res.Miss)
	}
	if res.BusyTime != 0 {
		t.Fatalf("busy time %v with zero energy", res.BusyTime)
	}
}

// EDF preemption: a later-arriving earlier-deadline job preempts, both
// finish, and the preempted job resumes with its remaining work.
func TestPreemption(t *testing.T) {
	rec := &recorder{}
	src := energy.NewConstant(0)
	cfg := &Config{
		Horizon:   30,
		Tasks:     []task.Task{oneShot(1, 0, 20, 6), oneShot(2, 2, 5, 1)},
		Source:    src,
		Predictor: energy.NewOracle(src),
		Store:     storage.New(1e6, 1e5),
		CPU:       cpu.XScale(),
		Policy:    sched.EDF{},
		Tracer:    rec,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Miss.Finished != 2 || res.Miss.Missed != 0 {
		t.Fatalf("outcome = %+v", res.Miss)
	}
	// τ2 (deadline 7) runs [2,3); τ1 completes at 7 (6 work + 1 preempted).
	if fin, _ := rec.completion(2); math.Abs(fin-3) > 1e-6 {
		t.Fatalf("τ2 completed at %v, want 3", fin)
	}
	if fin, _ := rec.completion(1); math.Abs(fin-7) > 1e-6 {
		t.Fatalf("τ1 completed at %v, want 7", fin)
	}
}

// ContinueAfterDeadline keeps the job running past the miss.
func TestContinueAfterDeadline(t *testing.T) {
	src := energy.NewConstant(0)
	// Two simultaneous jobs that cannot both fit before their deadlines:
	// τ2 (abs 3.9) runs first under EDF, τ1 misses at 4 with work left.
	cfg := &Config{
		Horizon:               30,
		Tasks:                 []task.Task{oneShot(1, 0, 4, 3), oneShot(2, 0, 3.9, 3)},
		Source:                src,
		Predictor:             energy.NewOracle(src),
		Store:                 storage.New(1e6, 1e5),
		CPU:                   cpu.XScale(),
		Policy:                sched.EDF{},
		ContinueAfterDeadline: true,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Miss.Missed != 1 {
		t.Fatalf("miss not recorded: %+v", res.Miss)
	}
	// Finished counts on-time completions only; the late job still ran to
	// completion, visible as busy time: 3 (τ2) + 3 (τ1, one unit late).
	if res.Miss.Finished != 1 {
		t.Fatalf("on-time completions = %+v", res.Miss)
	}
	if math.Abs(res.BusyTime-6) > 1e-6 {
		t.Fatalf("busy = %v, want 6 (late job ran to completion)", res.BusyTime)
	}
}

// Dropped-at-deadline is the default: the job stops consuming processor
// time after its miss.
func TestDropAtDeadlineDefault(t *testing.T) {
	src := energy.NewConstant(0)
	cfg := &Config{
		Horizon:   30,
		Tasks:     []task.Task{oneShot(1, 0, 4, 3), oneShot(2, 0, 3.9, 3)},
		Source:    src,
		Predictor: energy.NewOracle(src),
		Store:     storage.New(1e6, 1e5),
		CPU:       cpu.XScale(),
		Policy:    sched.EDF{},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Miss.Missed != 1 || res.Miss.Finished != 1 {
		t.Fatalf("outcome = %+v", res.Miss)
	}
	// τ2 runs [0,3), τ1 runs [3,4) and is dropped at its deadline.
	if math.Abs(res.BusyTime-4) > 1e-6 {
		t.Fatalf("busy = %v, want 4 (dropped at deadline)", res.BusyTime)
	}
}

// The storage-empty event stalls execution (§4.2) and the system resumes
// once harvest refills the store.
func TestStallAndRecovery(t *testing.T) {
	src := energy.NewConstant(1) // below any XScale run power except level 0
	cfg := &Config{
		Horizon:   60,
		Tasks:     []task.Task{oneShot(0, 0, 50, 10)},
		Source:    src,
		Predictor: energy.NewOracle(src),
		Store:     storage.New(1000, 16),
		CPU:       cpu.XScale(),
		Policy:    sched.EDF{}, // always full speed: 3.2 draw vs 1 harvest
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 16 stored + 1/unit harvest vs 3.2 drain: ~7.27 units then stall,
	// then stop-and-go each unit boundary. The job needs 10 busy units.
	if res.StallTime <= 0 {
		t.Fatal("expected stalls under energy starvation")
	}
	if res.Miss.Finished != 1 {
		t.Fatalf("job should eventually finish: %+v", res.Miss)
	}
	if math.Abs(res.BusyTime-10) > 1e-6 {
		t.Fatalf("busy = %v, want exactly 10", res.BusyTime)
	}
}

func TestValidationErrors(t *testing.T) {
	src := energy.NewConstant(1)
	good := func() *Config {
		return &Config{
			Horizon:   10,
			Source:    src,
			Predictor: energy.NewOracle(src),
			Store:     storage.NewIdeal(10),
			CPU:       cpu.XScale(),
			Policy:    sched.EDF{},
		}
	}
	cases := []func(c *Config){
		func(c *Config) { c.Horizon = 0 },
		func(c *Config) { c.Horizon = math.Inf(1) },
		func(c *Config) { c.Source = nil },
		func(c *Config) { c.Predictor = nil },
		func(c *Config) { c.Store = nil },
		func(c *Config) { c.CPU = nil },
		func(c *Config) { c.Policy = nil },
		func(c *Config) { c.Tasks = []task.Task{{Period: -1}} },
	}
	for i, mutate := range cases {
		c := good()
		mutate(c)
		if _, err := Run(c); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
	if _, err := Run(good()); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
}

func TestModeString(t *testing.T) {
	if ModeIdle.String() != "idle" || ModeRun.String() != "run" || ModeStall.String() != "stall" {
		t.Fatal("mode names changed")
	}
	if Mode(99).String() == "" {
		t.Fatal("unknown mode must still print")
	}
}

// recorder is a test Tracer capturing segments and events.
type recorder struct {
	segs []seg
	evts []evt
}

type seg struct {
	start, end float64
	mode       Mode
	taskID     int
	level      int
}

type evt struct {
	t      float64
	kind   string
	taskID int
}

func (r *recorder) OnSegment(start, end float64, mode Mode, j *task.Job, level int) {
	id := -1
	if j != nil {
		id = j.TaskID
	}
	r.segs = append(r.segs, seg{start, end, mode, id, level})
}

func (r *recorder) OnEvent(t float64, kind string, j *task.Job) {
	id := -1
	if j != nil {
		id = j.TaskID
	}
	r.evts = append(r.evts, evt{t, kind, id})
}

// firstRun returns when the given task first executed.
func (r *recorder) firstRun(taskID int) (float64, bool) {
	for _, s := range r.segs {
		if s.mode == ModeRun && s.taskID == taskID {
			return s.start, true
		}
	}
	return 0, false
}

// completion returns the completion instant of the given task.
func (r *recorder) completion(taskID int) (float64, bool) {
	for _, e := range r.evts {
		if e.kind == "completion" && e.taskID == taskID {
			return e.t, true
		}
	}
	return 0, false
}

// missOf returns the miss instant of the given task.
func (r *recorder) missOf(taskID int) (float64, bool) {
	for _, e := range r.evts {
		if e.kind == "miss" && e.taskID == taskID {
			return e.t, true
		}
	}
	return 0, false
}

// sameRunSegments compares the run portions of two traces, coalescing
// adjacent segments of the same job+level.
func (r *recorder) sameRunSegments(o *recorder) bool {
	a := coalesce(r.segs)
	b := coalesce(o.segs)
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].taskID != b[i].taskID || a[i].level != b[i].level ||
			math.Abs(a[i].start-b[i].start) > 1e-9 || math.Abs(a[i].end-b[i].end) > 1e-9 {
			return false
		}
	}
	return true
}

func coalesce(segs []seg) []seg {
	var out []seg
	for _, s := range segs {
		if s.mode != ModeRun {
			continue
		}
		if n := len(out); n > 0 && out[n-1].taskID == s.taskID && out[n-1].level == s.level &&
			math.Abs(out[n-1].end-s.start) < 1e-9 {
			out[n-1].end = s.end
			continue
		}
		out = append(out, s)
	}
	return out
}
