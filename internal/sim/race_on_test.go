//go:build race

package sim

// raceEnabled reports whether the race detector is compiled in. The
// detector instruments every memory access and changes allocation
// behaviour, so numeric allocation assertions are meaningless under it.
const raceEnabled = true
