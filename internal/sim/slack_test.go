package sim

import (
	"math"
	"testing"

	"github.com/eadvfs/eadvfs/internal/core"
	"github.com/eadvfs/eadvfs/internal/cpu"
	"github.com/eadvfs/eadvfs/internal/energy"
	"github.com/eadvfs/eadvfs/internal/sched"
	"github.com/eadvfs/eadvfs/internal/storage"
	"github.com/eadvfs/eadvfs/internal/task"
)

func slackCfg(ratio float64, policy sched.Policy) *Config {
	src := energy.NewSolarModel(21)
	return &Config{
		Horizon:   3000,
		Tasks:     paperWorkload(21, 0.5, 5),
		Source:    src,
		Predictor: energy.NewEWMA(0.2),
		Store:     storage.NewIdeal(300),
		CPU:       cpu.XScaleScaled(10),
		Policy:    policy,
		BCWCRatio: ratio,
		ExecSeed:  3,
	}
}

func TestBCWCRatioReducesBusyTime(t *testing.T) {
	full, err := Run(slackCfg(0, sched.EDF{}))
	if err != nil {
		t.Fatal(err)
	}
	half, err := Run(slackCfg(0.5, sched.EDF{}))
	if err != nil {
		t.Fatal(err)
	}
	// Expected actual work is 75% of WCET; dropped jobs blur the exact
	// ratio, but busy time must fall distinctly.
	if half.BusyTime >= full.BusyTime*0.95 {
		t.Fatalf("busy time %v (bcwc=0.5) vs %v (worst case): early completions not happening",
			half.BusyTime, full.BusyTime)
	}
}

func TestBCWCRatioNeverIncreasesMissesMuch(t *testing.T) {
	// Early completions free time and energy; across policies the miss
	// count with slack must not exceed the worst-case run's.
	for _, mk := range []func() sched.Policy{
		func() sched.Policy { return sched.LSA{} },
		func() sched.Policy { return core.NewEADVFS() },
	} {
		full, err := Run(slackCfg(0, mk()))
		if err != nil {
			t.Fatal(err)
		}
		half, err := Run(slackCfg(0.4, mk()))
		if err != nil {
			t.Fatal(err)
		}
		if half.Miss.Missed > full.Miss.Missed {
			t.Fatalf("%s: misses rose from %d to %d with shorter jobs",
				full.Policy, full.Miss.Missed, half.Miss.Missed)
		}
	}
}

func TestBCWCRatioDeterministicAcrossRuns(t *testing.T) {
	a, err := Run(slackCfg(0.6, core.NewEADVFS()))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(slackCfg(0.6, core.NewEADVFS()))
	if err != nil {
		t.Fatal(err)
	}
	if a.Miss != b.Miss || a.BusyTime != b.BusyTime {
		t.Fatal("slack draws not deterministic")
	}
}

func TestBCWCRatioValidation(t *testing.T) {
	cfg := slackCfg(1.5, sched.EDF{})
	if _, err := Run(cfg); err == nil {
		t.Fatal("BCWCRatio > 1 accepted")
	}
	cfg = slackCfg(-0.1, sched.EDF{})
	if _, err := Run(cfg); err == nil {
		t.Fatal("negative BCWCRatio accepted")
	}
}

func TestSchedulerSeesBudgetNotActual(t *testing.T) {
	// A single job with actual < WCET under LSA: the lazy start time is
	// computed from the WCET budget, so execution starts at the same s2
	// as the worst-case run and simply finishes early.
	mk := func(ratio float64) *Config {
		src := energy.NewConstant(0.5)
		return &Config{
			Horizon:   25,
			Tasks:     []task.Task{{ID: 1, Period: 1e9, Deadline: 16, WCET: 4}},
			Source:    src,
			Predictor: energy.NewOracle(src),
			Store:     storage.New(1e6, 24),
			CPU:       cpu.TwoSpeed(8),
			Policy:    sched.LSA{},
			BCWCRatio: ratio,
			ExecSeed:  7,
		}
	}
	recFull := &recorder{}
	cfgFull := mk(0)
	cfgFull.Tracer = recFull
	if _, err := Run(cfgFull); err != nil {
		t.Fatal(err)
	}
	recHalf := &recorder{}
	cfgHalf := mk(0.5)
	cfgHalf.Tracer = recHalf
	if _, err := Run(cfgHalf); err != nil {
		t.Fatal(err)
	}
	sFull, _ := recFull.firstRun(1)
	sHalf, _ := recHalf.firstRun(1)
	if math.Abs(sFull-sHalf) > 1e-9 {
		t.Fatalf("start times differ (%v vs %v): scheduler leaked actual work", sFull, sHalf)
	}
	fFull, _ := recFull.completion(1)
	fHalf, _ := recHalf.completion(1)
	if fHalf >= fFull {
		t.Fatalf("shorter job did not finish earlier: %v vs %v", fHalf, fFull)
	}
}

func TestJobActualWorkAPI(t *testing.T) {
	j := task.NewJob(0, 0, 0, 10, 4)
	if j.ActualRemaining() != 4 {
		t.Fatalf("default actual = %v", j.ActualRemaining())
	}
	j.SetActualWork(2.5)
	if j.ActualRemaining() != 2.5 || j.Remaining() != 4 {
		t.Fatalf("actual/budget = %v/%v", j.ActualRemaining(), j.Remaining())
	}
	j.Progress(2.5)
	if !j.Done() {
		t.Fatal("job not done at actual work exhaustion")
	}
	if math.Abs(j.Remaining()-1.5) > 1e-12 {
		t.Fatalf("budget remaining = %v, want 1.5", j.Remaining())
	}
}

func TestSetActualWorkValidation(t *testing.T) {
	for i, f := range []func(){
		func() { task.NewJob(0, 0, 0, 10, 4).SetActualWork(5) },
		func() { task.NewJob(0, 0, 0, 10, 4).SetActualWork(-1) },
		func() {
			j := task.NewJob(0, 0, 0, 10, 4)
			j.Progress(1)
			j.SetActualWork(2)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
	// Zero actual work completes immediately.
	j := task.NewJob(0, 0, 0, 10, 4)
	j.SetActualWork(0)
	if !j.Done() {
		t.Fatal("zero actual work not done")
	}
}
