package sim

import (
	"fmt"
	"math"
	"strings"

	"github.com/eadvfs/eadvfs/internal/obs"
)

// maxViolations bounds how many violations one run records: the first few
// localize the bug, the rest are noise.
const maxViolations = 32

// InvariantViolation is one detected breach of the engine's physical or
// causal invariants.
type InvariantViolation struct {
	Kind   string  // "store-bounds", "conservation", "clock", "miss-stats"
	Time   float64 // simulation time of detection
	Detail string
}

func (v InvariantViolation) String() string {
	return fmt.Sprintf("%s at t=%g: %s", v.Kind, v.Time, v.Detail)
}

// InvariantError is the structured error sim.Run returns when
// Config.CheckInvariants is set and the run breached an invariant. The
// Result is still returned alongside it for diagnosis.
type InvariantError struct {
	Violations []InvariantViolation
	Truncated  bool // more violations occurred than were recorded
}

// Error implements error.
func (e *InvariantError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sim: %d invariant violation(s)", len(e.Violations))
	if e.Truncated {
		b.WriteString(" (truncated)")
	}
	for i, v := range e.Violations {
		if i == 3 {
			fmt.Fprintf(&b, "; … %d more", len(e.Violations)-i)
			break
		}
		b.WriteString("; ")
		b.WriteString(v.String())
	}
	return b.String()
}

// EventBudgetError reports a run aborted by the event watchdog
// (Config.MaxEvents): the simulation dispatched more events than the
// budget allows, which in a correct setup means a runaway decision loop.
// The fields identify where the run was stuck.
type EventBudgetError struct {
	Events  uint64  // events dispatched when the watchdog fired
	Time    float64 // simulation clock at abort
	Horizon float64
	Pending int // events still queued
}

// Error implements error.
func (e *EventBudgetError) Error() string {
	return fmt.Sprintf("sim: event budget exhausted: %d events by t=%g of horizon %g (%d pending) — runaway run",
		e.Events, e.Time, e.Horizon, e.Pending)
}

// invariantChecker is the opt-in runtime self-check of the engine
// (Config.CheckInvariants): store bounds after every flow, energy
// conservation at unit boundaries and at the end, event-clock
// monotonicity, and miss-tally consistency. Violations are collected as
// structured data instead of panicking, so a corrupted substrate is
// diagnosable rather than fatal.
type invariantChecker struct {
	violations []InvariantViolation
	truncated  bool
	lastEvent  float64
	probe      obs.Probe // forwarded violations; nil when unobserved
}

func (c *invariantChecker) record(kind string, t float64, format string, args ...any) {
	detail := fmt.Sprintf(format, args...)
	if c.probe != nil {
		c.probe.OnEvent(obs.Event{
			Time: t, Kind: obs.KindInvariant,
			TaskID: -1, Seq: -1,
			Detail: kind + ": " + detail,
		})
	}
	if len(c.violations) >= maxViolations {
		c.truncated = true
		return
	}
	c.violations = append(c.violations, InvariantViolation{
		Kind:   kind,
		Time:   t,
		Detail: detail,
	})
}

// checkClock verifies event times reach the checker in non-decreasing
// order.
func (c *invariantChecker) checkClock(now float64) {
	if now < c.lastEvent-1e-9 {
		c.record("clock", now, "event clock moved backwards from %g", c.lastEvent)
		return
	}
	if now > c.lastEvent {
		c.lastEvent = now
	}
}

// checkStoreBounds verifies level ∈ [0, capacity] up to float tolerance.
func (c *invariantChecker) checkStoreBounds(t, level, capacity float64) {
	tol := 1e-6 * math.Max(1, capacity)
	if math.IsInf(capacity, 1) {
		tol = 1e-6 * math.Max(1, level)
	}
	if level < -tol || math.IsNaN(level) {
		c.record("store-bounds", t, "level %g below empty", level)
	} else if !math.IsInf(capacity, 1) && level > capacity+tol {
		c.record("store-bounds", t, "level %g above capacity %g", level, capacity)
	}
}

// checkConservation verifies the store's cumulative energy balance. scale
// anchors the relative tolerance to the magnitude of energy that moved.
func (c *invariantChecker) checkConservation(t, conservationErr, scale float64) {
	tol := 1e-6 * math.Max(1, scale)
	if math.Abs(conservationErr) > tol || math.IsNaN(conservationErr) {
		c.record("conservation", t, "energy balance off by %g (tolerance %g)", conservationErr, tol)
	}
}

// err converts the collected violations into the error Run returns, or
// nil for a clean run.
func (c *invariantChecker) err() error {
	if c == nil || len(c.violations) == 0 {
		return nil
	}
	return &InvariantError{Violations: c.violations, Truncated: c.truncated}
}
