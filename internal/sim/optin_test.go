package sim

import (
	"math"
	"testing"

	"github.com/eadvfs/eadvfs/internal/task"
)

// TestStochasticOptIn pins the gate condition of the stochastic-execution
// subsystem: only a fractional BCWCRatio or an attached task.ExecSpec
// turns it on. ExecSeed alone, a degenerate ratio of exactly 1, or a
// plain WCET-exact workload must all leave Stochastic() false — the
// strictly-opt-in contract every pre-existing spec relies on.
func TestStochasticOptIn(t *testing.T) {
	base := func() *Config {
		return &Config{Tasks: []task.Task{{ID: 0, Period: 20, Deadline: 20, WCET: 4}}}
	}
	cases := []struct {
		name string
		mut  func(*Config)
		want bool
	}{
		{"wcet-exact", func(c *Config) {}, false},
		{"exec seed alone", func(c *Config) { c.ExecSeed = 99 }, false},
		{"ratio exactly 1", func(c *Config) { c.BCWCRatio = 1 }, false},
		{"ratio 0", func(c *Config) { c.BCWCRatio = 0 }, false},
		{"fractional ratio", func(c *Config) { c.BCWCRatio = 0.5 }, true},
		{"task exec spec", func(c *Config) {
			c.Tasks[0].Exec = &task.ExecSpec{Dist: task.DistUniform, BCRatio: 0.5}
		}, true},
		{"explicit job exec spec", func(c *Config) {
			c.Jobs = []*task.Job{{TaskID: 0, Abs: 20, WCET: 4,
				Exec: &task.ExecSpec{Dist: task.DistUniform, BCRatio: 0.5}}}
		}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base()
			tc.mut(cfg)
			if got := cfg.Stochastic(); got != tc.want {
				t.Errorf("Stochastic() = %v, want %v", got, tc.want)
			}
		})
	}
}

// TestExecSeedAloneIsInert: setting ExecSeed on a WCET-exact config (as
// the facade and experiment harness now do unconditionally) must change
// nothing — bit-identical results and not a single extra allocation in
// the steady state. This is the runtime half of the backward-compat
// satellite: the digest corpus proves old cache keys survive, this
// proves old runs do.
func TestExecSeedAloneIsInert(t *testing.T) {
	seeded := func() *Config {
		c := allocConfig()
		c.ExecSeed = 0xfeedface
		return c
	}

	plain, err := Run(allocConfig())
	if err != nil {
		t.Fatal(err)
	}
	withSeed, err := Run(seeded())
	if err != nil {
		t.Fatal(err)
	}
	for name, pair := range map[string][2]float64{
		"CPUEnergy": {plain.CPUEnergy, withSeed.CPUEnergy},
		"BusyTime":  {plain.BusyTime, withSeed.BusyTime},
		"IdleTime":  {plain.IdleTime, withSeed.IdleTime},
	} {
		if math.Float64bits(pair[0]) != math.Float64bits(pair[1]) {
			t.Errorf("%s: %v != %v — ExecSeed perturbed a WCET-exact run", name, pair[0], pair[1])
		}
	}
	if plain.Miss != withSeed.Miss || plain.Slack != withSeed.Slack {
		t.Errorf("tallies differ: %+v vs %+v", plain.Miss, withSeed.Miss)
	}
	if withSeed.Slack.DrawnJobs != 0 {
		t.Errorf("WCET-exact run drew %d jobs", withSeed.Slack.DrawnJobs)
	}

	a := NewArena()
	for i := 0; i < 3; i++ { // warm the arena pools
		if _, err := a.Run(seeded()); err != nil {
			t.Fatal(err)
		}
	}
	overhead := testing.AllocsPerRun(100, func() { _ = seeded() })
	baseline := testing.AllocsPerRun(100, func() { _ = allocConfig() })
	totalSeeded := testing.AllocsPerRun(100, func() {
		if _, err := a.Run(seeded()); err != nil {
			t.Fatal(err)
		}
	})
	totalPlain := testing.AllocsPerRun(100, func() {
		if _, err := a.Run(allocConfig()); err != nil {
			t.Fatal(err)
		}
	})
	if raceEnabled {
		t.Skip("race detector changes allocation behaviour; numeric comparison not meaningful")
	}
	if got, want := totalSeeded-overhead, totalPlain-baseline; got > want {
		t.Errorf("ExecSeed on a WCET-exact config costs %.1f allocs/run vs %.1f without — the disabled stochastic path is no longer free", got, want)
	}
}
