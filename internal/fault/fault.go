// Package fault injects reproducible substrate faults into a simulation
// run: harvester dropouts and brown-outs, storage capacity fade and
// leakage spikes, stuck DVFS transitions, predictor blackouts, and job
// overruns. The paper's evaluation (§5) assumes a well-behaved substrate;
// this package is how the repository asks "what happens when the model
// lies?" — the robustness dimension Berten et al. and Xia et al. show
// scheduler quality hinges on.
//
// Every injector draws its schedule from a dedicated deterministic RNG
// stream derived from Spec.Seed, independent of the workload and solar
// streams, so paired comparisons across policies (§5.2 "same condition")
// see the identical fault schedule and stay seed-stable. Fault windows are
// quantized to whole time units, which preserves the
// piecewise-constant-per-unit-interval contract of energy.Source that the
// engine's exact storage integration relies on.
package fault

import (
	"fmt"
	"math"

	"github.com/eadvfs/eadvfs/internal/metrics"
	"github.com/eadvfs/eadvfs/internal/rng"
)

// WindowSpec describes a recurring fault-window process: windows open
// after an exponentially distributed gap of mean MeanGap time units and
// stay open for an exponentially distributed duration of mean MeanLen.
// Both are quantized up to whole units (minimum 1). The zero value
// disables the process.
type WindowSpec struct {
	MeanGap float64
	MeanLen float64
}

// Enabled reports whether the window process generates any windows.
func (w WindowSpec) Enabled() bool { return w.MeanGap > 0 && w.MeanLen > 0 }

func (w WindowSpec) validate(name string) error {
	bad := func(v float64) bool { return v < 0 || math.IsNaN(v) || math.IsInf(v, 0) }
	if bad(w.MeanGap) || bad(w.MeanLen) {
		return fmt.Errorf("fault: %s window spec (gap %v, len %v) invalid", name, w.MeanGap, w.MeanLen)
	}
	if (w.MeanGap > 0) != (w.MeanLen > 0) {
		return fmt.Errorf("fault: %s window spec (gap %v, len %v) half-enabled", name, w.MeanGap, w.MeanLen)
	}
	return nil
}

// DutyCycle returns the long-run fraction of time a window is open.
func (w WindowSpec) DutyCycle() float64 {
	if !w.Enabled() {
		return 0
	}
	return w.MeanLen / (w.MeanGap + w.MeanLen)
}

// Spec declares which faults to inject and how hard. The zero value
// injects nothing; sim.Run with a zero (or nil) Spec is bit-identical to a
// fault-free run.
type Spec struct {
	// Seed selects the fault RNG stream (default 1). All injectors derive
	// child streams from it, so one seed pins the whole fault schedule.
	Seed uint64

	// Dropout opens harvester fault windows during which the source
	// output is multiplied by DropFactor: 0 is a full dropout, values in
	// (0, 1) are brown-outs. Windows are unit-aligned, so the source stays
	// piecewise-constant per unit interval.
	Dropout    WindowSpec
	DropFactor float64

	// FadeRate shrinks the storage capacity linearly by this fraction of
	// the original capacity per time unit, down to at most FadeLimit
	// (fraction of capacity lost, default 0.5 when fading is on). Stored
	// energy above the faded capacity is lost.
	FadeRate  float64
	FadeLimit float64

	// LeakSpike opens windows during which the store self-discharges at
	// an extra LeakSpikeRate energy per time unit.
	LeakSpike     WindowSpec
	LeakSpikeRate float64

	// DVFSStuck opens windows during which requested operating-point
	// changes are ignored: the processor stays at its current point
	// (stuck frequency / failed transition).
	DVFSStuck WindowSpec

	// Blackout opens windows during which predictor observations are
	// dropped, so forecasts go stale.
	Blackout WindowSpec

	// Each job independently overruns its declared WCET with probability
	// OverrunProb; the actual work is scaled by 1 + U(0, OverrunMax].
	// Draws are per (task, seq), independent of event order.
	OverrunProb float64
	OverrunMax  float64
}

// Enabled reports whether the spec injects any fault at all.
func (s Spec) Enabled() bool {
	return s.Dropout.Enabled() || s.FadeRate > 0 || (s.LeakSpike.Enabled() && s.LeakSpikeRate > 0) ||
		s.DVFSStuck.Enabled() || s.Blackout.Enabled() || s.OverrunProb > 0
}

// Validate checks the spec for structural errors (NaNs, negative rates,
// out-of-range fractions) so CLI-sourced values fail cleanly.
func (s Spec) Validate() error {
	for _, w := range []struct {
		name string
		spec WindowSpec
	}{
		{"dropout", s.Dropout}, {"leak-spike", s.LeakSpike},
		{"dvfs-stuck", s.DVFSStuck}, {"blackout", s.Blackout},
	} {
		if err := w.spec.validate(w.name); err != nil {
			return err
		}
	}
	switch {
	case s.DropFactor < 0 || s.DropFactor >= 1 || math.IsNaN(s.DropFactor):
		return fmt.Errorf("fault: drop factor %v outside [0, 1)", s.DropFactor)
	case s.FadeRate < 0 || math.IsNaN(s.FadeRate) || math.IsInf(s.FadeRate, 0):
		return fmt.Errorf("fault: invalid fade rate %v", s.FadeRate)
	case s.FadeLimit < 0 || s.FadeLimit >= 1 || math.IsNaN(s.FadeLimit):
		return fmt.Errorf("fault: fade limit %v outside [0, 1)", s.FadeLimit)
	case s.LeakSpikeRate < 0 || math.IsNaN(s.LeakSpikeRate) || math.IsInf(s.LeakSpikeRate, 0):
		return fmt.Errorf("fault: invalid leak spike rate %v", s.LeakSpikeRate)
	case s.OverrunProb < 0 || s.OverrunProb > 1 || math.IsNaN(s.OverrunProb):
		return fmt.Errorf("fault: overrun probability %v outside [0, 1]", s.OverrunProb)
	case s.OverrunMax < 0 || math.IsNaN(s.OverrunMax) || math.IsInf(s.OverrunMax, 0):
		return fmt.Errorf("fault: invalid overrun max %v", s.OverrunMax)
	case s.OverrunProb > 0 && s.OverrunMax == 0:
		return fmt.Errorf("fault: overrun probability %v with zero overrun max", s.OverrunProb)
	}
	return nil
}

// AtIntensity returns the canonical mixed-fault spec at intensity x in
// [0, 1]: every injector enabled, with window duty cycles and magnitudes
// scaling together. Intensity 0 is the zero spec (no faults); intensity 1
// is a hostile substrate: frequent multi-unit harvester blackouts, half
// the storage capacity fading away, leakage spikes comparable to the
// processor's mid-range draw, sticky DVFS, a blind predictor and one job
// in three overrunning its WCET by up to 50%.
func AtIntensity(seed uint64, x float64) Spec {
	if x <= 0 {
		return Spec{}
	}
	if x > 1 {
		x = 1
	}
	return Spec{
		Seed:          seed,
		Dropout:       WindowSpec{MeanGap: 200 / x, MeanLen: 2 + 18*x},
		DropFactor:    0.2 * (1 - x),
		FadeRate:      5e-5 * x,
		FadeLimit:     0.5 * x,
		LeakSpike:     WindowSpec{MeanGap: 150 / x, MeanLen: 4 + 12*x},
		LeakSpikeRate: 2 * x,
		DVFSStuck:     WindowSpec{MeanGap: 250 / x, MeanLen: 5 + 20*x},
		Blackout:      WindowSpec{MeanGap: 100 / x, MeanLen: 3 + 12*x},
		OverrunProb:   0.3 * x,
		OverrunMax:    0.5 * x,
	}
}

// RNG stream indices for the injectors, fixed so a spec's fault schedule
// never depends on which injectors are enabled.
const (
	streamDropout = iota + 1
	streamLeakSpike
	streamDVFSStuck
	streamBlackout
	streamOverrun
)

// Set is the per-run materialization of a Spec: the generated fault
// schedules plus the degradation counters they feed. A Set is stateful
// and single-run, like a Store or Predictor: construct a fresh one per
// simulation (sim.Run does this from Config.Faults). All methods are safe
// on a nil *Set and degrade to pass-through.
type Set struct {
	spec     Spec
	counters metrics.Degradation

	dropout   *windows
	leakSpike *windows
	dvfsStuck *windows
	blackout  *windows
	overrun   *rng.RNG
}

// New validates spec and materializes its injectors. A disabled spec
// returns (nil, nil): the nil Set is the documented "no faults" value.
func New(spec Spec) (*Set, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if !spec.Enabled() {
		return nil, nil
	}
	if spec.Seed == 0 {
		spec.Seed = 1
	}
	if spec.FadeRate > 0 && spec.FadeLimit == 0 {
		spec.FadeLimit = 0.5
	}
	r := rng.New(spec.Seed)
	return &Set{
		spec:      spec,
		dropout:   newWindows(spec.Dropout, r.Child(streamDropout)),
		leakSpike: newWindows(spec.LeakSpike, r.Child(streamLeakSpike)),
		dvfsStuck: newWindows(spec.DVFSStuck, r.Child(streamDVFSStuck)),
		blackout:  newWindows(spec.Blackout, r.Child(streamBlackout)),
		overrun:   r.Child(streamOverrun),
	}, nil
}

// Spec returns the (normalized) spec the set was built from.
func (s *Set) Spec() Spec {
	if s == nil {
		return Spec{}
	}
	return s.spec
}

// OverrunFactor returns the deterministic per-(task, seq) work multiplier:
// 1 for no overrun, otherwise in (1, 1+OverrunMax]. Counted as a
// degradation when > 1.
func (s *Set) OverrunFactor(taskID, seq int) float64 {
	if s == nil || s.spec.OverrunProb <= 0 {
		return 1
	}
	r := s.overrun.Child(uint64(taskID)<<32 ^ uint64(seq))
	if r.Float64() >= s.spec.OverrunProb {
		return 1
	}
	s.counters.Overruns++
	// 1 - Float64() is in (0, 1], so the overrun is strictly positive.
	return 1 + s.spec.OverrunMax*(1-r.Float64())
}

// AddOverrunWork accumulates work executed beyond declared WCETs (the
// engine knows the work amounts; the set owns the tally).
func (s *Set) AddOverrunWork(w float64) {
	if s != nil {
		s.counters.OverrunWork += w
	}
}

// DVFSLevel maps a policy's requested operating point through the DVFS
// fault: during a stuck window the processor keeps its current point.
// current < 0 means no point is latched yet (nothing to be stuck at).
func (s *Set) DVFSLevel(now float64, current, requested int) int {
	if s == nil || current < 0 || current == requested || !s.dvfsStuck.active(now) {
		return requested
	}
	s.counters.DVFSClamps++
	return current
}

// FinishAt folds the window schedules over [0, horizon] into the time
// counters. Call once, at the end of the run.
func (s *Set) FinishAt(horizon float64) {
	if s == nil {
		return
	}
	s.counters.SourceFaultTime = s.dropout.overlap(0, horizon)
	s.counters.LeakSpikeTime = s.leakSpike.overlap(0, horizon)
	s.counters.DVFSStuckTime = s.dvfsStuck.overlap(0, horizon)
	s.counters.BlackoutTime = s.blackout.overlap(0, horizon)
}

// Counters returns the degradation recorded so far.
func (s *Set) Counters() metrics.Degradation {
	if s == nil {
		return metrics.Degradation{}
	}
	return s.counters
}

// span is one fault window, [start, end), unit-aligned.
type span struct{ start, end float64 }

// windows is a lazily generated, memoized schedule of disjoint unit-aligned
// fault windows. Generation is a pure function of the seed: queries at any
// time (including out of order — the oracle predictor looks ahead) always
// observe the same schedule.
type windows struct {
	spec  WindowSpec
	r     *rng.RNG
	spans []span
	next  float64 // schedule generated for [0, next)
}

func newWindows(spec WindowSpec, r *rng.RNG) *windows {
	return &windows{spec: spec, r: r}
}

// ensure extends the generated schedule to cover time t.
func (w *windows) ensure(t float64) {
	if !w.spec.Enabled() {
		return
	}
	for w.next <= t {
		gap := math.Max(1, math.Ceil(w.r.Exponential(1/w.spec.MeanGap)))
		length := math.Max(1, math.Ceil(w.r.Exponential(1/w.spec.MeanLen)))
		start := w.next + gap
		w.spans = append(w.spans, span{start: start, end: start + length})
		w.next = start + length
	}
}

// active reports whether a fault window is open at time t.
func (w *windows) active(t float64) bool {
	if w == nil || !w.spec.Enabled() || t < 0 {
		return false
	}
	w.ensure(t)
	// Binary search for the last span starting at or before t.
	lo, hi := 0, len(w.spans)
	for lo < hi {
		mid := (lo + hi) / 2
		if w.spans[mid].start <= t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo > 0 && t < w.spans[lo-1].end
}

// overlap returns the total window time inside [t1, t2].
func (w *windows) overlap(t1, t2 float64) float64 {
	if w == nil || !w.spec.Enabled() || t2 <= t1 {
		return 0
	}
	w.ensure(t2)
	total := 0.0
	for _, sp := range w.spans {
		if sp.start >= t2 {
			break
		}
		lo := math.Max(sp.start, t1)
		hi := math.Min(sp.end, t2)
		if hi > lo {
			total += hi - lo
		}
	}
	return total
}
