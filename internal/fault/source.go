package fault

import (
	"github.com/eadvfs/eadvfs/internal/energy"
)

// flakySource wraps an energy.Source with dropout/brown-out windows:
// during a window the output is multiplied by the spec's DropFactor.
// Windows are unit-aligned, so the wrapped source keeps the
// piecewise-constant-per-unit contract the engine's exact integration
// depends on, and PowerAt remains a pure function of t for a given pair
// of seeds (the oracle predictor may query any interval in any order).
type flakySource struct {
	src energy.Source
	set *Set
}

// WrapSource returns src with the spec's harvester faults applied, or src
// unchanged when the dropout injector is disabled.
func (s *Set) WrapSource(src energy.Source) energy.Source {
	if s == nil || !s.spec.Dropout.Enabled() {
		return src
	}
	return &flakySource{src: src, set: s}
}

// PowerAt implements energy.Source.
func (f *flakySource) PowerAt(t float64) float64 {
	p := f.src.PowerAt(t)
	if f.set.dropout.active(t) {
		return p * f.set.spec.DropFactor
	}
	return p
}

// MeanPower implements energy.Source: the nominal mean scaled by the
// expected fault duty cycle.
func (f *flakySource) MeanPower() float64 {
	duty := f.set.spec.Dropout.DutyCycle()
	return f.src.MeanPower() * (1 - duty*(1-f.set.spec.DropFactor))
}

// Name implements energy.Source.
func (f *flakySource) Name() string { return "flaky(" + f.src.Name() + ")" }
