package fault

import (
	"math"

	"github.com/eadvfs/eadvfs/internal/storage"
)

// degradedStore wraps a storage.Reservoir with capacity fade and leakage
// spikes. Fault losses are routed through the inner reservoir's metered
// Draw, so its energy-conservation accounting stays exact (the invariant
// checker holds on faulted runs); the fault-attributed amounts are
// recorded separately in the degradation counters.
//
// The wrapper tracks run time from the Flow intervals the engine feeds it
// (the engine integrates every instant of the run exactly once), which is
// what lets the time-dependent fade and spike schedules live behind the
// time-free Reservoir interface.
type degradedStore struct {
	inner   storage.Reservoir
	set     *Set
	baseCap float64
	now     float64
}

// WrapStore returns st with the spec's storage faults applied, or st
// unchanged when no storage fault is enabled.
func (s *Set) WrapStore(st storage.Reservoir) storage.Reservoir {
	if s == nil || (s.spec.FadeRate <= 0 && !(s.spec.LeakSpike.Enabled() && s.spec.LeakSpikeRate > 0)) {
		return st
	}
	return &degradedStore{inner: st, set: s, baseCap: st.Capacity()}
}

// fadedCapacity returns the capacity after fade at time t.
func (d *degradedStore) fadedCapacity(t float64) float64 {
	sp := d.set.spec
	if sp.FadeRate <= 0 || math.IsInf(d.baseCap, 1) {
		return d.baseCap
	}
	lost := math.Min(sp.FadeRate*t, sp.FadeLimit)
	return d.baseCap * (1 - lost)
}

// spikeRateAt returns the extra self-discharge rate at time t.
func (d *degradedStore) spikeRateAt(t float64) float64 {
	if d.set.spec.LeakSpikeRate > 0 && d.set.leakSpike.active(t) {
		return d.set.spec.LeakSpikeRate
	}
	return 0
}

// Capacity implements storage.Reservoir with the faded value.
func (d *degradedStore) Capacity() float64 { return d.fadedCapacity(d.now) }

// Level implements storage.Reservoir.
func (d *degradedStore) Level() float64 { return d.inner.Level() }

// TimeToEmpty implements storage.Reservoir, conservatively adding the
// active leakage spike — and, while the fade bound is binding, the fade
// drain — to the load so the engine splits segments no later than the
// store can actually sustain. Spike windows are unit-aligned and the
// engine re-decides at every unit boundary, so "active now" covers the
// whole interval the answer will be used for; the conservatism only ever
// makes the engine stall early (recorded as degradation), never breach
// Flow's no-mid-interval-empty precondition.
func (d *degradedStore) TimeToEmpty(ps, pc float64) float64 {
	extra := d.spikeRateAt(d.now)
	if d.set.spec.FadeRate > 0 && !math.IsInf(d.baseCap, 1) && d.inner.Level() >= d.fadedCapacity(d.now) {
		extra += d.set.spec.FadeRate * d.baseCap
	}
	return d.inner.TimeToEmpty(ps, pc+extra)
}

// Flow implements storage.Reservoir: nominal flow through the inner
// reservoir, then the fault drains. The spike drain uses the window
// overlap with the interval, so partial-unit intervals lose exactly their
// share; the fade drain removes whatever the shrunken capacity can no
// longer hold.
func (d *degradedStore) Flow(ps, pc, dt float64) (delivered, overflow float64) {
	delivered, overflow = d.inner.Flow(ps, pc, dt)
	start := d.now
	d.now += dt
	if ov := d.set.leakSpike.overlap(start, d.now); ov > 0 && d.set.spec.LeakSpikeRate > 0 {
		lost := d.inner.Draw(d.set.spec.LeakSpikeRate * ov)
		d.set.counters.LeakSpikeEnergy += lost
	}
	if cap := d.fadedCapacity(d.now); d.inner.Level() > cap {
		faded := d.inner.Draw(d.inner.Level() - cap)
		d.set.counters.FadeEnergy += faded
	}
	return delivered, overflow
}

// Draw implements storage.Reservoir (instantaneous draws, e.g. DVFS
// switch overhead, pass straight through).
func (d *degradedStore) Draw(e float64) float64 { return d.inner.Draw(e) }

// Meters implements storage.Reservoir. Fault drains are included in the
// inner Drawn meter — they left the store through the load path — and
// broken out in the degradation counters.
func (d *degradedStore) Meters() storage.Meters { return d.inner.Meters() }

// ConservationError implements storage.Reservoir; exact because all fault
// drains are metered inner draws.
func (d *degradedStore) ConservationError(initial float64) float64 {
	return d.inner.ConservationError(initial)
}
