package fault

import (
	"github.com/eadvfs/eadvfs/internal/energy"
)

// blackoutPredictor wraps an energy.Predictor so that observations made
// during blackout windows are dropped: the inner predictor keeps serving
// forecasts, but from stale data — the "telemetry link down" failure mode
// of a deployed harvesting node.
type blackoutPredictor struct {
	inner energy.Predictor
	set   *Set
}

// WrapPredictor returns p with the spec's blackout fault applied, or p
// unchanged when the blackout injector is disabled.
func (s *Set) WrapPredictor(p energy.Predictor) energy.Predictor {
	if s == nil || !s.spec.Blackout.Enabled() {
		return p
	}
	return &blackoutPredictor{inner: p, set: s}
}

// Observe implements energy.Predictor, dropping observations inside
// blackout windows.
func (b *blackoutPredictor) Observe(t, p float64) {
	if b.set.blackout.active(t) {
		b.set.counters.StaleForecasts++
		return
	}
	b.inner.Observe(t, p)
}

// PredictEnergy implements energy.Predictor.
func (b *blackoutPredictor) PredictEnergy(t1, t2 float64) float64 {
	return b.inner.PredictEnergy(t1, t2)
}

// Name implements energy.Predictor.
func (b *blackoutPredictor) Name() string { return "blackout(" + b.inner.Name() + ")" }
