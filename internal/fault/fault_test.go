package fault

import (
	"math"
	"testing"

	"github.com/eadvfs/eadvfs/internal/energy"
	"github.com/eadvfs/eadvfs/internal/rng"
	"github.com/eadvfs/eadvfs/internal/storage"
)

// denseSpec enables every injector with windows frequent enough to hit a
// short test horizon many times.
func denseSpec(seed uint64) Spec {
	return Spec{
		Seed:          seed,
		Dropout:       WindowSpec{MeanGap: 10, MeanLen: 3},
		DropFactor:    0.25,
		FadeRate:      1e-3,
		FadeLimit:     0.4,
		LeakSpike:     WindowSpec{MeanGap: 12, MeanLen: 4},
		LeakSpikeRate: 1.5,
		DVFSStuck:     WindowSpec{MeanGap: 15, MeanLen: 5},
		Blackout:      WindowSpec{MeanGap: 8, MeanLen: 3},
		OverrunProb:   0.5,
		OverrunMax:    0.5,
	}
}

func mustSet(t *testing.T, spec Spec) *Set {
	t.Helper()
	s, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	if s == nil {
		t.Fatal("enabled spec produced nil set")
	}
	return s
}

func TestSpecValidate(t *testing.T) {
	if err := denseSpec(1).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Spec{}).Validate(); err != nil {
		t.Fatalf("zero spec must validate: %v", err)
	}
	bad := []func(*Spec){
		func(s *Spec) { s.Dropout.MeanGap = -1 },
		func(s *Spec) { s.Dropout = WindowSpec{MeanGap: 10} }, // half-enabled
		func(s *Spec) { s.DropFactor = 1 },
		func(s *Spec) { s.DropFactor = math.NaN() },
		func(s *Spec) { s.FadeRate = -0.1 },
		func(s *Spec) { s.FadeLimit = 1 },
		func(s *Spec) { s.LeakSpikeRate = math.Inf(1) },
		func(s *Spec) { s.OverrunProb = 1.1 },
		func(s *Spec) { s.OverrunMax = -1 },
		func(s *Spec) { s.OverrunProb = 0.5; s.OverrunMax = 0 },
	}
	for i, mutate := range bad {
		s := denseSpec(1)
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Fatalf("mutation %d accepted", i)
		}
	}
}

func TestDisabledSpecIsNilSet(t *testing.T) {
	s, err := New(Spec{})
	if err != nil || s != nil {
		t.Fatalf("New(zero) = (%v, %v), want (nil, nil)", s, err)
	}
	// nil-Set methods must all pass through.
	if f := s.OverrunFactor(3, 7); f != 1 {
		t.Fatalf("nil set overrun factor %v", f)
	}
	if lv := s.DVFSLevel(10, 2, 5); lv != 5 {
		t.Fatalf("nil set DVFS level %d, want requested 5", lv)
	}
	src := energy.NewConstant(2)
	if got := s.WrapSource(src); got != energy.Source(src) {
		t.Fatal("nil set wrapped the source")
	}
	st := storage.NewIdeal(100)
	if got := s.WrapStore(st); got != storage.Reservoir(st) {
		t.Fatal("nil set wrapped the store")
	}
	if d := s.Counters(); d.Any() {
		t.Fatalf("nil set counters %+v", d)
	}
	s.FinishAt(100) // must not panic
	s.AddOverrunWork(1)
}

func TestAtIntensity(t *testing.T) {
	if sp := AtIntensity(7, 0); sp.Enabled() {
		t.Fatalf("intensity 0 spec enabled: %+v", sp)
	}
	for _, x := range []float64{0.1, 0.5, 1, 2 /* clamped */} {
		sp := AtIntensity(7, x)
		if err := sp.Validate(); err != nil {
			t.Fatalf("AtIntensity(%g): %v", x, err)
		}
		if !sp.Enabled() {
			t.Fatalf("AtIntensity(%g) disabled", x)
		}
	}
	// Severity scales with intensity: duty cycles and magnitudes grow.
	lo, hi := AtIntensity(7, 0.2), AtIntensity(7, 0.9)
	if lo.Dropout.DutyCycle() >= hi.Dropout.DutyCycle() {
		t.Fatal("dropout duty cycle not increasing in intensity")
	}
	if lo.OverrunProb >= hi.OverrunProb || lo.LeakSpikeRate >= hi.LeakSpikeRate {
		t.Fatal("fault magnitudes not increasing in intensity")
	}
}

// Table-driven determinism check per injector: the same seed must yield
// the identical window schedule, and queries must be order-independent
// (the oracle predictor probes future times before the engine gets there).
func TestWindowScheduleDeterminism(t *testing.T) {
	pick := func(s *Set) map[string]*windows {
		return map[string]*windows{
			"dropout":    s.dropout,
			"leak-spike": s.leakSpike,
			"dvfs-stuck": s.dvfsStuck,
			"blackout":   s.blackout,
		}
	}
	const horizon = 2000.0
	for name := range pick(mustSet(t, denseSpec(1))) {
		name := name
		t.Run(name, func(t *testing.T) {
			a := pick(mustSet(t, denseSpec(42)))[name]
			b := pick(mustSet(t, denseSpec(42)))[name]
			c := pick(mustSet(t, denseSpec(43)))[name]

			// a queried sequentially, b queried out of order first.
			b.active(horizon / 2)
			b.overlap(0, horizon)
			var diverged bool
			for k := 0.0; k < horizon; k++ {
				av, bv := a.active(k), b.active(k)
				if av != bv {
					t.Fatalf("seed-42 schedules disagree at t=%g (%v vs %v)", k, av, bv)
				}
				if av != c.active(k) {
					diverged = true
				}
			}
			if !diverged {
				t.Fatal("different seeds produced the identical schedule")
			}
			if a.overlap(0, horizon) != b.overlap(0, horizon) {
				t.Fatal("overlap disagrees between identically seeded schedules")
			}
			// Windows are unit-aligned with ≥1-unit gaps and lengths, so
			// the piecewise-constant source contract holds.
			for i, sp := range a.spans {
				if sp.start != math.Trunc(sp.start) || sp.end != math.Trunc(sp.end) {
					t.Fatalf("span %d = %+v not unit-aligned", i, sp)
				}
				if sp.end-sp.start < 1 {
					t.Fatalf("span %d shorter than a unit: %+v", i, sp)
				}
				if i > 0 && sp.start-a.spans[i-1].end < 1 {
					t.Fatalf("gap before span %d shorter than a unit", i)
				}
			}
			if a.overlap(0, horizon) <= 0 {
				t.Fatal("dense schedule produced no window time")
			}
		})
	}
}

// Overrun draws are a pure function of (seed, task, seq) — independent of
// the order jobs arrive in, which is what keeps faulted runs seed-stable
// across scheduling differences.
func TestOverrunDeterminism(t *testing.T) {
	a := mustSet(t, denseSpec(42))
	b := mustSet(t, denseSpec(42))

	type key struct{ task, seq int }
	got := map[key]float64{}
	for task := 1; task <= 5; task++ {
		for seq := 0; seq < 50; seq++ {
			got[key{task, seq}] = a.OverrunFactor(task, seq)
		}
	}
	// b draws in reverse order; every factor must match a's.
	overruns := 0
	for task := 5; task >= 1; task-- {
		for seq := 49; seq >= 0; seq-- {
			f := b.OverrunFactor(task, seq)
			if f != got[key{task, seq}] {
				t.Fatalf("task %d seq %d: %v vs %v (order-dependent draw)", task, seq, f, got[key{task, seq}])
			}
			if f < 1 || f > 1+b.spec.OverrunMax {
				t.Fatalf("factor %v outside [1, %v]", f, 1+b.spec.OverrunMax)
			}
			if f > 1 {
				overruns++
			}
		}
	}
	if overruns == 0 || overruns == 250 {
		t.Fatalf("%d/250 overruns — probability not acting", overruns)
	}
	if a.Counters().Overruns != b.Counters().Overruns {
		t.Fatal("overrun counters diverged")
	}
}

func TestFlakySourceDropout(t *testing.T) {
	spec := denseSpec(42)
	set := mustSet(t, spec)
	inner := energy.NewConstant(4)
	src := set.WrapSource(inner)

	in, out := 0, 0
	for k := 0.0; k < 500; k++ {
		p := src.PowerAt(k)
		if set.dropout.active(k) {
			in++
			if want := 4 * spec.DropFactor; p != want {
				t.Fatalf("t=%g: dropout power %v, want %v", k, p, want)
			}
		} else {
			out++
			if p != 4 {
				t.Fatalf("t=%g: nominal power %v, want 4", k, p)
			}
		}
	}
	if in == 0 || out == 0 {
		t.Fatalf("degenerate schedule: %d in, %d out", in, out)
	}
	if src.MeanPower() >= inner.MeanPower() {
		t.Fatal("flaky mean power not reduced")
	}
	// Same seed, same wrapped trace.
	again := mustSet(t, spec).WrapSource(energy.NewConstant(4))
	for k := 0.0; k < 500; k++ {
		if src.PowerAt(k) != again.PowerAt(k) {
			t.Fatalf("t=%g: wrapped trace not reproducible", k)
		}
	}
}

// The degraded store loses energy to spikes and fade, meters every loss
// through the inner draw path, and therefore conserves energy exactly.
func TestDegradedStoreConservesEnergy(t *testing.T) {
	spec := denseSpec(42)
	set := mustSet(t, spec)
	inner := storage.New(200, 200)
	st := set.WrapStore(inner)

	const initial = 200.0
	for i := 0; i < 400; i++ {
		st.Flow(1.0, 0.8, 1.0)
	}
	d := set.Counters()
	if d.LeakSpikeEnergy <= 0 {
		t.Fatalf("no spike loss recorded: %+v", d)
	}
	if err := st.ConservationError(initial); math.Abs(err) > 1e-9*initial {
		t.Fatalf("conservation error %v", err)
	}
	if st.Capacity() >= 200 {
		t.Fatalf("capacity %v did not fade", st.Capacity())
	}
	if floor := 200 * (1 - spec.FadeLimit); st.Capacity() < floor-1e-9 {
		t.Fatalf("capacity %v faded past the limit %v", st.Capacity(), floor)
	}
}

// Fade must shed stored energy that the shrunken capacity can no longer
// hold, and TimeToEmpty must stay conservative (never later than the
// inner store's own estimate under the extra drains).
func TestDegradedStoreFadeShedsExcess(t *testing.T) {
	spec := Spec{Seed: 9, FadeRate: 1e-2, FadeLimit: 0.5}
	set := mustSet(t, spec)
	st := set.WrapStore(storage.New(100, 100))

	// Hold the store full; fade forces the level down with the capacity.
	for i := 0; i < 20; i++ {
		st.Flow(5, 0, 1) // surplus keeps it pinned at capacity
	}
	if lvl, cap := st.Level(), st.Capacity(); lvl > cap+1e-9 {
		t.Fatalf("level %v exceeds faded capacity %v", lvl, cap)
	}
	if set.Counters().FadeEnergy <= 0 {
		t.Fatal("no fade loss recorded")
	}
	if tte := st.TimeToEmpty(0, 1); tte > 100 {
		t.Fatalf("TimeToEmpty %v not conservative under fade", tte)
	}
}

func TestBlackoutPredictorDropsObservations(t *testing.T) {
	spec := denseSpec(42)
	set := mustSet(t, spec)
	inner := energy.NewLastValue()
	pred := set.WrapPredictor(inner)

	dropped := 0
	for k := 0.0; k < 300; k++ {
		pred.Observe(k, k+1) // strictly increasing signal
		if set.blackout.active(k) {
			dropped++
		}
	}
	if dropped == 0 {
		t.Fatal("schedule produced no blackout units")
	}
	if got := set.Counters().StaleForecasts; got != dropped {
		t.Fatalf("StaleForecasts %d, want %d", got, dropped)
	}
	// The inner predictor must have missed the blacked-out observations:
	// its last value is the last non-blackout sample, not 300.
	if p := pred.PredictEnergy(300, 301); p == 300 && set.blackout.active(299) {
		t.Fatal("blackout failed to drop the final observation")
	}
}

func TestDVFSLevelStuck(t *testing.T) {
	set := mustSet(t, denseSpec(42))
	// Find one stuck window.
	var tIn, tOut float64 = -1, -1
	for k := 0.0; k < 2000; k++ {
		if set.dvfsStuck.active(k) && tIn < 0 {
			tIn = k
		}
		if !set.dvfsStuck.active(k) && tOut < 0 {
			tOut = k
		}
	}
	if tIn < 0 || tOut < 0 {
		t.Fatal("no stuck/free instants found")
	}
	if lv := set.DVFSLevel(tIn, 1, 3); lv != 1 {
		t.Fatalf("stuck window let level change: %d", lv)
	}
	if lv := set.DVFSLevel(tIn, -1, 3); lv != 3 {
		t.Fatal("stuck window blocked the first latch (current < 0)")
	}
	if lv := set.DVFSLevel(tOut, 1, 3); lv != 3 {
		t.Fatal("free instant refused the transition")
	}
	if set.Counters().DVFSClamps != 1 {
		t.Fatalf("DVFSClamps %d, want 1", set.Counters().DVFSClamps)
	}
}

// Child streams keep the injector schedules mutually independent: the
// stream constants must stay distinct (a collision would correlate two
// injectors' schedules under every seed).
func TestStreamConstantsDistinct(t *testing.T) {
	streams := []uint64{streamDropout, streamLeakSpike, streamDVFSStuck, streamBlackout, streamOverrun}
	seen := map[uint64]bool{}
	for _, s := range streams {
		if seen[s] {
			t.Fatalf("stream constant %d reused", s)
		}
		seen[s] = true
	}
	r := rng.New(1)
	if r.Child(streamDropout).Uint64() == r.Child(streamLeakSpike).Uint64() {
		t.Fatal("child streams not independent")
	}
}
