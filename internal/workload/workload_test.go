package workload

import (
	"math"
	"testing"

	"github.com/eadvfs/eadvfs/internal/rng"
	"github.com/eadvfs/eadvfs/internal/task"
)

func TestStochasticPeriodicAttachesSpec(t *testing.T) {
	cfg := task.GeneratorConfig{
		NumTasks:         8,
		Periods:          task.PaperPeriods(),
		MeanHarvestPower: 10,
		PMax:             40,
		TargetU:          0.5,
	}
	exec := task.ExecSpec{Dist: task.DistUniform, BCRatio: 0.25}
	tasks, err := StochasticPeriodic(cfg, exec, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != cfg.NumTasks {
		t.Fatalf("got %d tasks, want %d", len(tasks), cfg.NumTasks)
	}
	for i, tk := range tasks {
		if tk.Exec == nil {
			t.Fatalf("task %d: no exec spec attached", i)
		}
		if tk.Exec != tasks[0].Exec {
			t.Fatalf("task %d: exec spec not shared with task 0", i)
		}
		if err := tk.Validate(); err != nil {
			t.Fatalf("task %d: %v", i, err)
		}
	}
	if u := task.SetUtilization(tasks); math.Abs(u-cfg.TargetU) > 1e-9 {
		t.Fatalf("utilization %v, want %v", u, cfg.TargetU)
	}
}

func TestStochasticPeriodicMatchesPlainGenerator(t *testing.T) {
	// Same RNG stream, same recipe: the stochastic generator must produce
	// the exact task set the plain §5.1 generator does, spec aside — the
	// distribution is an annotation, not a different workload.
	cfg := task.GeneratorConfig{
		NumTasks:         6,
		Periods:          task.PaperPeriods(),
		MeanHarvestPower: 10,
		PMax:             40,
		TargetU:          0.4,
	}
	plain, err := task.Generate(cfg, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	stoch, err := StochasticPeriodic(cfg, task.ExecSpec{Dist: task.DistUniform}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		p, s := plain[i], stoch[i]
		if p.Period != s.Period || p.Deadline != s.Deadline || p.WCET != s.WCET {
			t.Fatalf("task %d: (%v,%v,%v) != (%v,%v,%v)",
				i, s.Period, s.Deadline, s.WCET, p.Period, p.Deadline, p.WCET)
		}
	}
}

func TestStochasticPeriodicRejectsBadSpec(t *testing.T) {
	cfg := task.GeneratorConfig{
		NumTasks: 2, Periods: []float64{10}, MeanHarvestPower: 10, PMax: 40, TargetU: 0.3,
	}
	if _, err := StochasticPeriodic(cfg, task.ExecSpec{Dist: "nope"}, rng.New(1)); err == nil {
		t.Fatal("unknown distribution accepted")
	}
	if _, err := StochasticPeriodic(cfg, task.ExecSpec{Dist: task.DistTrace}, rng.New(1)); err == nil {
		t.Fatal("empty trace accepted")
	}
}
