package workload

import (
	"strings"
	"testing"

	"github.com/eadvfs/eadvfs/internal/task"
)

func TestReadSlotCSVFractions(t *testing.T) {
	in := "t,util\n0,0.25\n1,0.5\n2,1\n"
	slots, err := ReadSlotCSV(strings.NewReader(in), "util")
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.25, 0.5, 1}
	if len(slots) != len(want) {
		t.Fatalf("got %d slots, want %d", len(slots), len(want))
	}
	for i := range want {
		if slots[i] != want[i] {
			t.Fatalf("slot %d = %v, want %v", i, slots[i], want[i])
		}
	}
	// The parsed slots must be a valid trace distribution as-is.
	spec := task.ExecSpec{Dist: task.DistTrace, Slots: slots}
	if err := spec.Validate(); err != nil {
		t.Fatalf("parsed slots rejected by ExecSpec: %v", err)
	}
}

func TestReadSlotCSVPercents(t *testing.T) {
	// Any value above 1 flips the whole column to percent scale.
	in := "time,cpu%\n0,25\n1,50\n2,100\n3,0.5\n"
	slots, err := ReadSlotCSV(strings.NewReader(in), "cpu%")
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.25, 0.5, 1, 0.005}
	for i := range want {
		if slots[i] != want[i] {
			t.Fatalf("slot %d = %v, want %v", i, slots[i], want[i])
		}
	}
}

func TestReadSlotCSVIgnoresOtherColumns(t *testing.T) {
	in := "ts,core,util,notes\n100,0,0.75,boot\n101,0,0.25,steady\n"
	slots, err := ReadSlotCSV(strings.NewReader(in), "Util")
	if err != nil {
		t.Fatal(err)
	}
	if len(slots) != 2 || slots[0] != 0.75 || slots[1] != 0.25 {
		t.Fatalf("slots = %v", slots)
	}
}

func TestReadSlotCSVErrors(t *testing.T) {
	cases := map[string]string{
		"missing column": "t,power\n0,1\n",
		"no samples":     "t,util\n",
		"negative":       "t,util\n0,-0.1\n",
		"nan":            "t,util\n0,NaN\n",
		"inf":            "t,util\n0,Inf\n",
		"not a number":   "t,util\n0,fast\n",
		"over 100%":      "t,util\n0,250\n",
		"short row":      "t,util\n0\n",
		"empty input":    "",
		"ragged csv":     "t,util\n0,0.5,extra\n",
	}
	for name, in := range cases {
		if _, err := ReadSlotCSV(strings.NewReader(in), "util"); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
}

func FuzzReadSlotCSV(f *testing.F) {
	f.Add("t,util\n0,0.25\n1,0.5\n")
	f.Add("util\n1\n0.5\n0\n")
	f.Add("time,cpu\n0,99\n1,1\n")
	f.Add("t,util\n0,NaN\n")
	f.Add("t,util\n0,-1\n")
	f.Add("\"a\nb\",util\nx,0.5\n")
	f.Fuzz(func(t *testing.T, in string) {
		slots, err := ReadSlotCSV(strings.NewReader(in), "util")
		if err != nil {
			return
		}
		// Whatever parses must be a valid, bounded trace distribution:
		// the parser's contract is that its output never panics the
		// downstream spec validation or the engine's ratio draw.
		if len(slots) == 0 {
			t.Fatal("nil error with no slots")
		}
		spec := task.ExecSpec{Dist: task.DistTrace, Slots: slots}
		if err := spec.Validate(); err != nil {
			t.Fatalf("parsed slots rejected downstream: %v", err)
		}
	})
}
