package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// ReadSlotCSV parses a measured per-slot CPU-usage trace into the ratio
// slots of a "trace" execution distribution (task.ExecSpec.Slots): one
// row per slot in order, a header row required, and the utilization
// column named column (other columns are ignored — profiler exports
// carry timestamps and core IDs alongside). Values may be fractions in
// [0, 1] or percents in [0, 100]: when any value exceeds 1 the whole
// column is taken as percent and divided by 100. Negative, NaN and
// infinite entries are parse errors with their line number, mirroring
// the harvest-trace reader (energy.ReadTraceCSV) — a spelled-out "NaN"
// must surface here, not as a validation panic downstream.
func ReadSlotCSV(r io.Reader, column string) ([]float64, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("workload: reading slot header: %w", err)
	}
	col := -1
	for i, h := range header {
		if strings.EqualFold(strings.TrimSpace(h), column) {
			col = i
			break
		}
	}
	if col == -1 {
		return nil, fmt.Errorf("workload: column %q not in header %v", column, header)
	}
	var slots []float64
	percent := false
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("workload: reading slot line %d: %w", line, err)
		}
		if col >= len(rec) {
			return nil, fmt.Errorf("workload: line %d has %d columns, need %d", line, len(rec), col+1)
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rec[col]), 64)
		if err != nil {
			return nil, fmt.Errorf("workload: line %d: %w", line, err)
		}
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("workload: line %d: invalid utilization %v", line, v)
		}
		if v > 1 {
			percent = true
		}
		slots = append(slots, v)
	}
	if len(slots) == 0 {
		return nil, fmt.Errorf("workload: slot trace has no samples")
	}
	if percent {
		for i, v := range slots {
			if v > 100 {
				return nil, fmt.Errorf("workload: slot %d: utilization %v%% exceeds 100%%", i, v)
			}
			slots[i] = v / 100
		}
	}
	return slots, nil
}
