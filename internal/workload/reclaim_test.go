package workload

import (
	"math"
	"testing"

	"github.com/eadvfs/eadvfs/internal/cpu"
	"github.com/eadvfs/eadvfs/internal/energy"
	"github.com/eadvfs/eadvfs/internal/obs"
	"github.com/eadvfs/eadvfs/internal/sched"
	"github.com/eadvfs/eadvfs/internal/task"
)

// headQueue is a one-job ReadyView for driving Decide directly.
type headQueue struct{ j *task.Job }

func (q headQueue) Peek() *task.Job { return q.j }
func (q headQueue) Len() int {
	if q.j == nil {
		return 0
	}
	return 1
}

func ctxFor(j *task.Job, now float64, probe obs.Probe) *sched.Context {
	return &sched.Context{
		Now:       now,
		Queue:     headQueue{j},
		Stored:    1e6,
		Capacity:  math.Inf(1),
		CPU:       cpu.XScale(),
		Predictor: energy.Zero{},
		Probe:     probe,
	}
}

func TestReclaimerPassThroughWithoutHistory(t *testing.T) {
	p := NewReclaimer("edf-reclaim", sched.EDF{}, 0.5, 0.1)
	j := task.NewJob(0, 0, 0, 10, 4)
	ctx := ctxFor(j, 0, nil)
	d := p.Decide(ctx)
	want := sched.EDF{}.Decide(ctx)
	if d != want {
		t.Fatalf("no-history decision %+v, want inner's %+v", d, want)
	}
}

func TestReclaimerPassThroughOnWCETExactRuns(t *testing.T) {
	// A job that spends its whole budget observes ratio 1: the estimate
	// never drops and every later decision is the inner one, untouched —
	// the compatibility property that keeps WCET-exact runs bit-identical.
	p := NewReclaimer("edf-reclaim", sched.EDF{}, 0.5, 0.1)
	j1 := task.NewJob(0, 0, 0, 10, 4)
	p.Decide(ctxFor(j1, 0, nil))
	j1.Progress(4) // ran to its full WCET
	if !j1.Done() {
		t.Fatal("job not done")
	}
	j2 := task.NewJob(0, 1, 10, 10, 4)
	ctx := ctxFor(j2, 10, nil)
	d := p.Decide(ctx)
	want := sched.EDF{}.Decide(ctx)
	if d != want {
		t.Fatalf("WCET-exact decision %+v, want inner's %+v", d, want)
	}
}

func TestReclaimerSpeculatesAfterEarlyCompletion(t *testing.T) {
	rec := obs.NewRecorder()
	p := NewReclaimer("edf-reclaim", sched.EDF{}, 0.5, 0.1)

	// Job 0 declares 4 units and really needs 1: completes with 3 units
	// of budget unspent, observed ratio 0.25.
	j1 := task.NewJob(0, 0, 0, 10, 4)
	p.Decide(ctxFor(j1, 0, rec))
	j1.SetActualWork(1)
	j1.Progress(1)
	if !j1.Done() || j1.Remaining() != 3 {
		t.Fatalf("early completion setup: done=%v remaining=%v", j1.Done(), j1.Remaining())
	}

	// est = (1-0.5)·1 + 0.5·0.25 = 0.625 < 1 → the next job of the task
	// runs at the minimum level feasible for the estimated work, until
	// the latest safe full-budget start.
	j2 := task.NewJob(0, 1, 0, 10, 4)
	ctx := ctxFor(j2, 0, rec)
	d := p.Decide(ctx)
	if d.Job != j2 {
		t.Fatalf("decision job %v, want j2", d.Job)
	}
	wantLevel, ok := ctx.CPU.MinLevelFor(4*0.625, 10)
	if !ok {
		t.Fatal("estimated work infeasible in test window")
	}
	if d.Level != wantLevel {
		t.Fatalf("speculative level %d, want %d", d.Level, wantLevel)
	}
	if d.Level >= ctx.CPU.MaxLevel() {
		t.Fatalf("speculation did not lower the level: %d", d.Level)
	}
	wantGuard := 10 - 4/ctx.CPU.Speed(ctx.CPU.MaxLevel())
	if d.Until != wantGuard {
		t.Fatalf("until %v, want guard %v", d.Until, wantGuard)
	}
	ds := rec.Decisions()
	if len(ds) == 0 || ds[len(ds)-1].Reason != obs.ReasonStretchReclaimed {
		t.Fatalf("last audit %+v, want reason %q", ds[len(ds)-1], obs.ReasonStretchReclaimed)
	}

	// At the guard instant the full budget only just fits flat-out:
	// speculation is vetoed and the inner decision passes through.
	j3 := task.NewJob(0, 2, 0, 10, 4)
	ctx3 := ctxFor(j3, wantGuard+1, rec)
	d3 := p.Decide(ctx3)
	if want := (sched.EDF{}).Decide(ctx3); d3 != want {
		t.Fatalf("guarded decision %+v, want inner's %+v", d3, want)
	}
	ds = rec.Decisions()
	if ds[len(ds)-1].Reason != obs.ReasonFullSpeedReclaimGuard {
		t.Fatalf("guard audit reason %q, want %q", ds[len(ds)-1].Reason, obs.ReasonFullSpeedReclaimGuard)
	}
}

func TestReclaimerMinRatioFloor(t *testing.T) {
	p := NewReclaimer("edf-reclaim", sched.EDF{}, 1, 0.5)
	// alpha=1: one observation replaces the estimate. A zero-work
	// completion would estimate ratio 0; the floor holds it at 0.5.
	j1 := task.NewJob(0, 0, 0, 100, 4)
	p.Decide(ctxFor(j1, 0, nil))
	j1.SetActualWork(0)
	if !j1.Done() {
		t.Fatal("zero-work job not done")
	}
	j2 := task.NewJob(0, 1, 0, 100, 4)
	ctx := ctxFor(j2, 0, nil)
	d := p.Decide(ctx)
	wantLevel, _ := ctx.CPU.MinLevelFor(4*0.5, 100)
	if d.Level != wantLevel {
		t.Fatalf("floored level %d, want %d", d.Level, wantLevel)
	}
}

func TestReclaimerParameterClamping(t *testing.T) {
	p := NewReclaimer("x", sched.EDF{}, -1, 2)
	if p.Alpha != 0.5 || p.MinRatio != 0.1 {
		t.Fatalf("clamped to alpha=%v minRatio=%v, want defaults 0.5/0.1", p.Alpha, p.MinRatio)
	}
	if p.Name() != "x" {
		t.Fatalf("name %q", p.Name())
	}
}
