// Package workload is the stochastic-execution scenario subsystem: task
// sets whose jobs finish early (actual execution drawn from a per-task
// distribution bounded by the declared WCET), and the online
// slack-reclamation policy layer that turns those windfalls into lower
// operating points (Leung/Tsui-style reclamation on top of EA-DVFS or
// LSA).
//
// The paper's model is WCET-exact — every job consumes exactly its
// declared worst case — which is the right frame for the feasibility
// analysis of §4 but pessimistic for real firmware, where measured
// executions routinely come in at a fraction of the budget. This package
// supplies the pieces the registry exposes for studying that gap:
//
//   - StochasticPeriodic: the paper's §5.1 generator with a shared
//     execution-time distribution (task.ExecSpec) attached to every task,
//     so each released job draws its actual work seeded and bounded.
//   - Reclaimer: a policy decorator that observes per-task completions,
//     tracks an EWMA of the observed actual/WCET ratio, and speculatively
//     lowers the inner policy's operating point while a latest-safe-start
//     guard keeps the full-budget fallback feasible.
//   - ReadSlotCSV: a measured CPU-utilization trace as an execution-time
//     provider (the "trace" distribution's per-slot ratios).
//
// Everything here is registered through internal/registry (policies
// "ea-dvfs-reclaim" and "lsa-reclaim", task model "stochastic-periodic")
// with naive mirrors in internal/refimpl, so the differential harness
// sweeps the whole subsystem bit for bit. This package must not import
// internal/registry — the registry imports it.
package workload

import (
	"github.com/eadvfs/eadvfs/internal/rng"
	"github.com/eadvfs/eadvfs/internal/task"
)

// StochasticPeriodic draws a task set with the paper's §5.1 recipe and
// attaches the execution-time distribution to every task, so released
// jobs draw actual work from it (bounded by WCET). All tasks share one
// spec — the distribution describes the *scenario*, not a single task —
// and the returned tasks alias a single copy of it.
func StochasticPeriodic(cfg task.GeneratorConfig, exec task.ExecSpec, r *rng.RNG) ([]task.Task, error) {
	if err := exec.Validate(); err != nil {
		return nil, err
	}
	tasks, err := task.Generate(cfg, r)
	if err != nil {
		return nil, err
	}
	shared := exec
	for i := range tasks {
		tasks[i].Exec = &shared
	}
	return tasks, nil
}
