package workload

import (
	"math"

	"github.com/eadvfs/eadvfs/internal/obs"
	"github.com/eadvfs/eadvfs/internal/sched"
	"github.com/eadvfs/eadvfs/internal/task"
)

// Reclaimer decorates a policy with online slack reclamation in the
// spirit of Leung/Tsui dynamic reclaiming: it observes, per task, how
// much of the declared WCET budget completed jobs actually spent, keeps
// an exponentially weighted estimate of that ratio, and — when the
// estimate says the task habitually finishes early — speculatively runs
// the job at the minimum level feasible for the *estimated* work instead
// of the full budget.
//
// The speculation is deadline-safe by construction: the decorator never
// stretches past the latest instant from which the job's FULL remaining
// budget still fits at maximum speed,
//
//	guard = d − w_remaining / S(f_max),
//
// and always schedules a re-decision at that instant. If the optimism
// was misplaced (the job really needs its whole budget), the guard fires
// with the full budget still feasible flat-out, and the inner decision
// passes through untouched from then on. The worst case is therefore
// exactly the inner policy's worst case; the win is the energy saved on
// the (estimated·WCET) prefix run at a lower point.
//
// Compatibility property the tests pin down: the estimate starts at 1
// and only drops after an observed early completion, so on WCET-exact
// runs every Decide passes the inner decision through unchanged — the
// decorated policy is bit-identical to the inner one whenever no job
// ever finishes early.
//
// A Reclaimer is stateful per run (the engine consumes policies per run)
// and not safe for concurrent use.
type Reclaimer struct {
	name  string
	inner sched.Policy

	// Alpha is the EWMA smoothing weight of a fresh observation in (0, 1]:
	// est ← (1−Alpha)·est + Alpha·observed.
	Alpha float64
	// MinRatio floors the speculative ratio, bounding how aggressively a
	// run of lucky completions can stretch the next job.
	MinRatio float64

	est  map[int]float64 // per-task EWMA of observed actual/WCET, absent = 1
	prev *task.Job       // head job of the previous decision, observed on completion
}

// NewReclaimer wraps inner as the named reclaiming policy. Alpha is
// clamped into (0, 1] and minRatio into [0, 1].
func NewReclaimer(name string, inner sched.Policy, alpha, minRatio float64) *Reclaimer {
	if !(alpha > 0) || alpha > 1 {
		alpha = 0.5
	}
	if !(minRatio >= 0) || minRatio > 1 {
		minRatio = 0.1
	}
	return &Reclaimer{
		name:     name,
		inner:    inner,
		Alpha:    alpha,
		MinRatio: minRatio,
		est:      make(map[int]float64),
	}
}

// Name implements sched.Policy.
func (p *Reclaimer) Name() string { return p.name }

// observe folds the previous head job's completion into the per-task
// estimate. Completions are the only way a head job becomes Done before
// the next decision, and every completion triggers a decision, so the
// observation lands exactly once, at the completion instant.
func (p *Reclaimer) observe() {
	j := p.prev
	p.prev = nil
	if j == nil || !j.Done() || j.WCET <= 0 {
		return
	}
	observed := (j.WCET - j.Remaining()) / j.WCET
	e, ok := p.est[j.TaskID]
	if !ok {
		e = 1
	}
	p.est[j.TaskID] = (1-p.Alpha)*e + p.Alpha*observed
}

// ratioFor returns the floored speculative ratio for a task.
func (p *Reclaimer) ratioFor(taskID int) float64 {
	r, ok := p.est[taskID]
	if !ok {
		return 1
	}
	if r < p.MinRatio {
		r = p.MinRatio
	}
	return r
}

// Decide implements sched.Policy.
func (p *Reclaimer) Decide(ctx *sched.Context) sched.Decision {
	p.observe()
	d := p.inner.Decide(ctx)
	p.prev = d.Job
	if d.Job == nil {
		return d
	}
	j := d.Job
	ratio := p.ratioFor(j.TaskID)
	if ratio >= 1 {
		return d
	}

	// Latest instant from which the full remaining budget still fits at
	// maximum speed. At or past it, speculation is off the table: the
	// inner decision (full speed there by feasibility) passes through.
	guard := j.Abs - j.Remaining()/ctx.CPU.Speed(ctx.CPU.MaxLevel())
	if sched.Reached(ctx.Now, guard) {
		if ctx.Auditing() {
			ctx.AuditJob(p.name, j, ctx.AvailableEnergy(j.Abs), guard, guard,
				d.Level, d.Until, obs.ReasonFullSpeedReclaimGuard)
		}
		return d
	}

	// Minimum level feasible for the *estimated* work in the real window.
	level, feasible := ctx.CPU.MinLevelFor(j.Remaining()*ratio, j.Abs-ctx.Now)
	if !feasible || level >= d.Level {
		return d
	}
	until := math.Min(d.Until, guard)
	if ctx.Auditing() {
		ctx.AuditJob(p.name, j, ctx.AvailableEnergy(j.Abs), guard, guard,
			level, until, obs.ReasonStretchReclaimed)
	}
	return sched.Run(j, level, until)
}
