// Package buildinfo exposes the build's identity — go toolchain version,
// VCS revision and dirty bit — read once from debug.ReadBuildInfo. It backs
// both the shared -version flag of the repository's binaries and the
// provenance fields of run manifests (internal/obs), so a result artifact
// and the binary that produced it report the same identity.
package buildinfo

import (
	"fmt"
	"runtime/debug"
	"sync"
)

// Info is the build identity. Zero-valued VCS fields mean the binary was
// built outside a VCS checkout (e.g. `go test`, or a source tarball).
type Info struct {
	GoVersion string // e.g. "go1.22.1"
	Module    string // main module path
	Revision  string // full VCS revision hash, "" when unstamped
	Time      string // commit timestamp (RFC 3339), "" when unstamped
	Dirty     bool   // uncommitted changes at build time
}

var (
	once   sync.Once
	cached Info
)

// Get returns the build identity, memoized after the first call.
func Get() Info {
	once.Do(func() { cached = read() })
	return cached
}

func read() Info {
	info := Info{GoVersion: "unknown"}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return info
	}
	info.GoVersion = bi.GoVersion
	info.Module = bi.Main.Path
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			info.Revision = s.Value
		case "vcs.time":
			info.Time = s.Value
		case "vcs.modified":
			info.Dirty = s.Value == "true"
		}
	}
	return info
}

// ShortRevision returns the first 12 characters of the revision, with a
// "-dirty" suffix when the working tree was modified, or "devel" when the
// build carries no VCS stamp.
func (i Info) ShortRevision() string {
	if i.Revision == "" {
		return "devel"
	}
	rev := i.Revision
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if i.Dirty {
		rev += "-dirty"
	}
	return rev
}

// Line renders the one-line -version output for the named tool, e.g.
//
//	easim 1a2b3c4d5e6f-dirty (go1.22.1)
func Line(tool string) string {
	i := Get()
	return fmt.Sprintf("%s %s (%s)", tool, i.ShortRevision(), i.GoVersion)
}
