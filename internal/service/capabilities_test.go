package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"

	"github.com/eadvfs/eadvfs/internal/registry"
	"github.com/eadvfs/eadvfs/internal/spec"
)

// TestCapabilities: the discovery document enumerates every registered
// policy, source, predictor and task model with its parameter schema, in
// deterministic registration order, and repeat requests are byte-identical
// (the document is rendered exactly once).
func TestCapabilities(t *testing.T) {
	s := New(Options{Workers: 1})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	get := func() (int, http.Header, []byte) {
		t.Helper()
		resp, err := http.Get(srv.URL + "/v1/capabilities")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, resp.Header, buf.Bytes()
	}

	code, hdr, body := get()
	if code != http.StatusOK {
		t.Fatalf("GET /v1/capabilities: %d: %s", code, body)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}

	var doc struct {
		Schema     int                   `json:"schema"`
		Policies   []registry.Capability `json:"policies"`
		Sources    []registry.Capability `json:"sources"`
		Predictors []registry.Capability `json:"predictors"`
		TaskModels []registry.Capability `json:"task_models"`
		Sweeps     []string              `json:"sweeps"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("capabilities document is not JSON: %v\n%s", err, body)
	}
	if doc.Schema != spec.Current {
		t.Errorf("schema = %d, want %d", doc.Schema, spec.Current)
	}
	names := func(caps []registry.Capability) []string {
		out := make([]string, len(caps))
		for i, c := range caps {
			out[i] = c.Name
		}
		return out
	}
	if got, want := names(doc.Policies), registry.PolicyNames(); !equalStrings(got, want) {
		t.Errorf("policies = %v, want registration order %v", got, want)
	}
	if got, want := names(doc.Predictors), registry.PredictorNames(); !equalStrings(got, want) {
		t.Errorf("predictors = %v, want %v", got, want)
	}
	if got, want := names(doc.Sources), registry.SourceNames(); !equalStrings(got, want) {
		t.Errorf("sources = %v, want %v", got, want)
	}
	if got, want := names(doc.TaskModels), registry.TaskModelNames(); !equalStrings(got, want) {
		t.Errorf("task models = %v, want %v", got, want)
	}
	if want := []string{"missrate", "remaining"}; !equalStrings(doc.Sweeps, want) {
		t.Errorf("sweeps = %v, want %v", doc.Sweeps, want)
	}

	// The static-dvfs schema must surface its utilization parameter —
	// the self-description a coordinator plans sweeps from.
	var static *registry.Capability
	for i := range doc.Policies {
		if doc.Policies[i].Name == "static-dvfs" {
			static = &doc.Policies[i]
		}
	}
	if static == nil || len(static.Params) == 0 || static.Params[0].Name != "utilization" {
		t.Errorf("static-dvfs capability lacks its utilization parameter: %+v", static)
	}

	// Byte-identical repeats.
	_, _, body2 := get()
	if !bytes.Equal(body, body2) {
		t.Error("repeat capabilities responses differ")
	}

	// GET-only.
	resp, err := http.Post(srv.URL+"/v1/capabilities", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/capabilities = %d, want 405", resp.StatusCode)
	}

	// Still served while draining — a coordinator may probe a worker that
	// is shutting down.
	s.BeginDrain()
	if code, _, _ := get(); code != http.StatusOK {
		t.Errorf("draining GET /v1/capabilities = %d, want 200", code)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSimRequestErrors: the registry and schema gates surface as typed
// 400s — unknown names list what IS registered, v2 members demand the
// declaration, and future schemas are refused.
func TestSimRequestErrors(t *testing.T) {
	srv := httptest.NewServer(New(Options{Workers: 1}).Handler())
	defer srv.Close()

	post := func(path, body string) (int, string) {
		t.Helper()
		resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, buf.String()
	}

	cases := []struct {
		name, path, body string
		wantParts        []string
	}{
		{
			"unknown policy lists registered names", "/v1/sim",
			`{"Policy":"quantum-annealer","Horizon":500}`,
			append([]string{"unknown policy", "quantum-annealer"}, registry.PolicyNames()...),
		},
		{
			"unknown predictor", "/v1/sim",
			`{"Predictor":"crystal-ball","Horizon":500}`,
			[]string{"unknown predictor", "crystal-ball", "ewma"},
		},
		{
			"invalid policy param", "/v1/sim",
			`{"schema":2,"Policy":"static-dvfs","policy_params":{"utilization":1.5},"Horizon":500}`,
			[]string{"utilization", "static-dvfs"},
		},
		{
			"unknown policy param", "/v1/sim",
			`{"schema":2,"Policy":"static-dvfs","policy_params":{"warp":9},"Horizon":500}`,
			[]string{"warp", "unknown parameter"},
		},
		{
			"v2 member without declaration", "/v1/sim",
			`{"Policy":"edf","task_model":"periodic","Horizon":500}`,
			[]string{"task_model", "requires"},
		},
		{
			"future schema", "/v1/sim",
			`{"schema":3,"Policy":"edf","Horizon":500}`,
			[]string{"newer than this build"},
		},
		{
			"nested v2 member in v1 sweep", "/v1/sweep",
			`{"kind":"missrate","spec":{"Horizon":500,"task_model":"periodic"},"policies":["edf"]}`,
			[]string{"task_model", "requires"},
		},
		{
			"unknown sweep policy", "/v1/sweep",
			`{"kind":"missrate","spec":{"Horizon":500,"Capacities":[300],"Replications":1},"policies":["edf","warp-speed"]}`,
			[]string{"warp-speed"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, body := post(tc.path, tc.body)
			if code != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400; body: %s", code, body)
			}
			for _, part := range tc.wantParts {
				if !strings.Contains(body, part) {
					t.Errorf("error body missing %q:\n%s", part, body)
				}
			}
		})
	}
}

// TestCapabilitiesMatchesSnapshotOrder guards the registry's promise that
// Snapshot is registration-ordered, not sorted — ordering is part of the
// byte-stability contract for the rendered document.
func TestCapabilitiesMatchesSnapshotOrder(t *testing.T) {
	snap := registry.Snapshot()
	var names []string
	for _, c := range snap.Policies {
		names = append(names, c.Name)
	}
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)
	if equalStrings(names, sorted) && len(names) > 1 {
		// Registration order happens to be sorted only if someone
		// alphabetized the registry; the built-ins are not sorted
		// (ea-dvfs-dynamic < ea-dvfs is false lexically), so this is a
		// real drift signal, not noise.
		t.Error("policy snapshot is alphabetized — expected registration order")
	}
}
