// Package service turns the simulator into a shared network service:
// an HTTP/JSON API that accepts the same simulation and sweep
// configurations the easim/eaexp CLIs consume, runs them on a bounded
// worker pool hardened by internal/experiment's parallel runner, and
// caches results under the SHA-256 compact-form config digest that run
// manifests (internal/obs) already record. The paper's evaluation runs
// thousands of simulations per data point (§5); a shared service
// deduplicates and amortizes them across clients.
//
// Contracts (DESIGN.md §12):
//
//   - Cache-key contract: the key of a request is
//     digest.Compact(json.Marshal(config)) — exactly the config_digest an
//     easim run manifest records for the same configuration. A cached
//     response is byte-identical to the first response for the digest, and
//     its result payload is byte-identical to json.Marshal of the result
//     of running the spec directly with the library (which is what easim
//     does), because it IS that: computed once, stored verbatim.
//   - Single flight: concurrent identical requests share one engine run.
//     The first requester leads; the rest wait on its entry. Failed
//     computations are not cached.
//   - Backpressure: at most Workers simulations execute concurrently and
//     at most Queue requests wait for a worker. Beyond that the server
//     sheds load with 429 and a Retry-After hint — it never queues
//     unboundedly and never deadlocks.
//   - Cancellation: the request context (client disconnect) and the
//     per-request Timeout propagate into the engine (sim.Config.Context)
//     and the sweep runners' pickup paths, so abandoned work stops
//     promptly.
//   - Draining: after BeginDrain, /healthz reports 503 (load balancers
//     stop routing) and new compute requests are refused with 503, while
//     in-flight requests run to completion — the graceful half of a
//     SIGTERM shutdown (cmd/easerve owns the other half).
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"github.com/eadvfs/eadvfs"
	"github.com/eadvfs/eadvfs/internal/buildinfo"
	"github.com/eadvfs/eadvfs/internal/digest"
	"github.com/eadvfs/eadvfs/internal/experiment"
	"github.com/eadvfs/eadvfs/internal/obs"
	"github.com/eadvfs/eadvfs/internal/spec"
)

// defaultMaxBodyBytes bounds a request body; a simulation spec is a few
// hundred bytes, so 1 MiB leaves room for large explicit task sets while
// keeping a hostile client from ballooning memory.
const defaultMaxBodyBytes = 1 << 20

// defaultCacheBytes is the default result-cache byte budget (64 MiB): a
// remaining-energy sweep at paper scale is a few MiB of JSON, so the
// default holds plenty of distinct sweeps while bounding worst-case
// resident memory.
const defaultCacheBytes = 64 << 20

// Options configures a Server. Zero values take the documented defaults.
type Options struct {
	// Workers bounds concurrently executing jobs (default GOMAXPROCS).
	// A sweep counts as one job here and fans out internally across
	// experiment.Parallelism.
	Workers int
	// Queue bounds requests waiting for a worker (default 64). Admission
	// beyond Workers+Queue is refused with 429.
	Queue int
	// CacheEntries bounds retained results (default 4096), evicted
	// least-recently-used together with CacheBytes.
	CacheEntries int
	// CacheBytes bounds the total stored bytes of retained results
	// (default 64 MiB). Whichever of the two cache bounds is exceeded
	// first triggers LRU eviction.
	CacheBytes int64
	// MaxBodyBytes bounds a request body (default 1 MiB); larger bodies
	// are refused with 413.
	MaxBodyBytes int64
	// Timeout is the per-request compute budget (default 120s). An
	// expired budget aborts the engine mid-run and returns 504.
	Timeout time.Duration
	// RetryAfter is the hint sent with 429/503 responses (default 1s).
	RetryAfter time.Duration
	// Registry receives the service's metrics (and per-run eadvfs_run_*
	// aggregates). One is created when nil; either way /metrics serves it.
	Registry *obs.Registry
	// FlightSpans / FlightDecisions bound the always-on flight recorder's
	// rings (default obs.DefaultFlight*; negative disables the recorder
	// and /debug/flight).
	FlightSpans     int
	FlightDecisions int
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Queue <= 0 {
		o.Queue = 64
	}
	if o.CacheEntries <= 0 {
		o.CacheEntries = 4096
	}
	if o.CacheBytes <= 0 {
		o.CacheBytes = defaultCacheBytes
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = defaultMaxBodyBytes
	}
	if o.Timeout <= 0 {
		o.Timeout = 120 * time.Second
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = time.Second
	}
	if o.Registry == nil {
		o.Registry = obs.NewRegistry()
	}
	return o
}

// Sentinel errors of the admission path.
var (
	errOverload = errors.New("service: worker pool and queue are full")
	errDraining = errors.New("service: server is draining")
)

// SweepRequest is the body of POST /v1/sweep: which experiment to run,
// its spec, and the policies to compare.
type SweepRequest struct {
	// Schema declares the wire schema version (internal/spec): absent or
	// 1 is the original v1 form, 2 the current one. The nested spec's
	// v2-only members (task_model, task_params) require 2. Excluded from
	// the request digest, so versioned and unversioned spellings of the
	// same sweep share a cache entry.
	Schema int `json:"schema,omitempty"`
	// Kind selects the sweep: "missrate" (Figures 8–9 pooled deadline
	// miss rates) or "remaining" (Figures 6–7 remaining-energy curves).
	Kind string `json:"kind"`
	// Spec carries the §5.1 simulation parameters (experiment.Spec).
	Spec experiment.Spec `json:"spec"`
	// Policies names the policies to compare under identical conditions.
	Policies []string `json:"policies"`
	// Shard, when present, restricts the sweep to one disjoint slice of a
	// coordinator's plan (experiment.PlanShards); the result payload is
	// then an experiment.ShardResult — raw per-cell material for exact
	// merging — rather than the aggregate. The worker validates the shard
	// against the (normalized) spec, so a stale or corrupted plan fails
	// with 400 instead of computing the wrong cells. Absent for ordinary
	// whole-sweep requests, which keep their PR-5 digests.
	Shard *experiment.Shard `json:"shard,omitempty"`
}

// response is the JSON envelope of a computed or cached result. The
// envelope is cached verbatim alongside the payload, so a cache hit is
// byte-identical to the first response for the digest (cache state is
// reported in the X-Cache header, not the body, precisely to keep it so).
type response struct {
	Digest string          `json:"config_digest"`
	Result json.RawMessage `json:"result"`
}

// errorBody is the JSON envelope of a failed request.
type errorBody struct {
	Error string `json:"error"`
}

// Server is the simulation service. Create with New; serve via Handler.
type Server struct {
	opts  Options
	reg   *obs.Registry
	cache *cache
	mux   *http.ServeMux

	// slots bounds concurrent engine runs. Per-run state reuse is
	// slot-affine for free: the engine draws a sim.Arena from a
	// sync.Pool, and with at most Workers concurrent runs the pool
	// stabilizes at ~one warm arena (kernel free list, queues, release
	// plan) per slot (DESIGN.md §14).
	slots    chan struct{} // executing jobs; cap = Workers
	queued   chan struct{} // jobs waiting for a slot; cap = Queue
	draining atomic.Bool

	// runSim is the engine entry point; a test seam (defaults to
	// eadvfs.RunContext).
	runSim func(ctx context.Context, cfg eadvfs.Config) (*eadvfs.Result, error)

	// Metrics.
	cacheHit   *obs.Counter // completed entry served
	cacheJoin  *obs.Counter // waited on an in-flight identical request
	cacheMiss  *obs.Counter // led a new computation
	engineRuns *obs.Counter
	cacheEvict *obs.Counter
	rejected   map[string]*obs.Counter
	queueDepth *obs.Gauge
	inFlight   *obs.Gauge
	cacheSize  *obs.Gauge
	cacheBytes *obs.Gauge
	hitRatio   *obs.Gauge
	latency    map[string]*obs.Summary
	durations  map[string]*obs.HistogramMetric

	// flight is the always-on bounded recorder of recent spans and
	// decision audits, served by /debug/flight (nil when disabled).
	flight *obs.FlightRecorder
}

// New builds a Server.
func New(opts Options) *Server {
	o := opts.withDefaults()
	s := &Server{
		opts:   o,
		reg:    o.Registry,
		cache:  newCache(o.CacheEntries, o.CacheBytes),
		slots:  make(chan struct{}, o.Workers),
		queued: make(chan struct{}, o.Queue),
		runSim: eadvfs.RunContext,
	}
	const cacheHelp = "result cache lookups by outcome"
	s.cacheHit = s.reg.Counter(obs.Labeled("easerve_cache_requests_total", "outcome", "hit"), cacheHelp)
	s.cacheJoin = s.reg.Counter(obs.Labeled("easerve_cache_requests_total", "outcome", "join"), cacheHelp)
	s.cacheMiss = s.reg.Counter(obs.Labeled("easerve_cache_requests_total", "outcome", "miss"), cacheHelp)
	s.engineRuns = s.reg.Counter("easerve_engine_runs_total", "simulation/sweep executions (cache misses that ran)")
	s.cacheEvict = s.reg.Counter("easerve_cache_evictions_total", "completed results evicted by the LRU bounds")
	s.cache.onEvict = func(evicted int) {
		s.cacheEvict.Add(float64(evicted))
		s.cacheSize.Set(float64(s.cache.len()))
		s.cacheBytes.Set(float64(s.cache.bytesUsed()))
	}
	const rejHelp = "requests shed by reason"
	s.rejected = map[string]*obs.Counter{
		"overload": s.reg.Counter(obs.Labeled("easerve_rejected_total", "reason", "overload"), rejHelp),
		"draining": s.reg.Counter(obs.Labeled("easerve_rejected_total", "reason", "draining"), rejHelp),
	}
	s.queueDepth = s.reg.Gauge("easerve_queue_depth", "requests waiting for a worker slot")
	s.inFlight = s.reg.Gauge("easerve_inflight", "requests executing on a worker slot")
	s.cacheSize = s.reg.Gauge("easerve_cache_entries", "live result-cache entries (completed + in-flight)")
	s.cacheBytes = s.reg.Gauge("easerve_cache_bytes", "bytes of completed results resident in the cache")
	const latHelp = "request service time in seconds"
	s.latency = map[string]*obs.Summary{
		"sim":   s.reg.Summary(obs.Labeled("easerve_request_seconds", "endpoint", "sim"), latHelp),
		"sweep": s.reg.Summary(obs.Labeled("easerve_request_seconds", "endpoint", "sweep"), latHelp),
	}
	s.hitRatio = s.reg.Gauge("easerve_cache_hit_ratio",
		"fraction of cache lookups served without a fresh engine run (hit+join over all lookups)")
	// Sweeps run orders of magnitude longer than single sims, so the two
	// endpoints get differently scaled fixed-width buckets.
	const durHelp = "request service time distribution in seconds"
	s.durations = map[string]*obs.HistogramMetric{
		"sim":   s.reg.Histogram(obs.Labeled("easerve_request_duration_seconds", "endpoint", "sim"), durHelp, 0, 2, 20),
		"sweep": s.reg.Histogram(obs.Labeled("easerve_request_duration_seconds", "endpoint", "sweep"), durHelp, 0, 30, 30),
	}
	if o.FlightSpans >= 0 && o.FlightDecisions >= 0 {
		s.flight = obs.NewFlightRecorder(o.FlightSpans, o.FlightDecisions)
	}

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/sim", s.handleSim)
	s.mux.HandleFunc("/v1/sweep", s.handleSweep)
	s.mux.HandleFunc("/v1/capabilities", s.handleCapabilities)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/version", s.handleVersion)
	s.mux.HandleFunc("/debug/flight", s.handleFlight)
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Registry returns the server's metrics registry (the one /metrics serves).
func (s *Server) Registry() *obs.Registry { return s.reg }

// BeginDrain switches the server into draining mode: /healthz turns 503
// and new compute requests are refused, while in-flight work completes.
// cmd/easerve calls it on SIGTERM before http.Server.Shutdown.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain was called.
func (s *Server) Draining() bool { return s.draining.Load() }

// acquire admits a request to the worker pool: immediately when a slot is
// free, through the bounded wait queue when all workers are busy, and with
// errOverload when the queue is full too — the server sheds load rather
// than queue without bound. The returned release MUST be called when the
// job finishes.
func (s *Server) acquire(ctx context.Context) (release func(), err error) {
	release = func() {
		<-s.slots
		s.inFlight.Set(float64(len(s.slots)))
	}
	// Fast path: an idle worker.
	select {
	case s.slots <- struct{}{}:
		s.inFlight.Set(float64(len(s.slots)))
		return release, nil
	default:
	}
	// Workers busy: join the bounded queue or shed.
	select {
	case s.queued <- struct{}{}:
	default:
		return nil, errOverload
	}
	s.queueDepth.Set(float64(len(s.queued)))
	defer func() {
		<-s.queued
		s.queueDepth.Set(float64(len(s.queued)))
	}()
	select {
	case s.slots <- struct{}{}:
		s.inFlight.Set(float64(len(s.slots)))
		return release, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// decodeStrict unmarshals a request body into dst, rejecting unknown
// fields (a typoed or future-schema field fails loudly, mirroring
// obs.Manifest.DecodeConfig) and trailing garbage.
func decodeStrict(r io.Reader, dst any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return err
	}
	if dec.More() {
		return errors.New("trailing data after JSON document")
	}
	return nil
}

// decodeStatus maps a request-body decode failure to an HTTP status:
// 413 when the body blew the MaxBytesReader bound, 400 otherwise.
func decodeStatus(err error) int {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// statusOf maps a compute error to an HTTP status.
func statusOf(err error) int {
	var pe *experiment.PanicError
	var te *experiment.TransientError
	switch {
	case errors.Is(err, errOverload):
		return http.StatusTooManyRequests
	case errors.Is(err, errDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		// The leading request was abandoned; waiters should simply retry.
		return http.StatusServiceUnavailable
	case errors.As(err, &pe):
		return http.StatusInternalServerError
	case errors.As(err, &te):
		return http.StatusServiceUnavailable
	default:
		// The engine is deterministic: everything else is a property of
		// the submitted configuration.
		return http.StatusBadRequest
	}
}

// writeError emits the JSON error envelope, attaching Retry-After to the
// shed-load statuses so well-behaved clients back off.
func (s *Server) writeError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	switch code {
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		w.Header().Set("Retry-After", strconv.Itoa(int((s.opts.RetryAfter+time.Second-1)/time.Second)))
	}
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(errorBody{Error: err.Error()})
}

// serveCached runs the single-flight protocol for key around compute and
// writes the (computed or cached) response. compute returns the result
// payload bytes; its output is stored verbatim, which is what makes a
// cache hit byte-identical to the first response. A non-nil rt wraps the
// cache lookup, the admission wait and the engine execution in spans;
// the collected spans leave in the X-Trace-Spans header, so the body
// bytes — and with them the cache identity — are untouched by tracing.
func (s *Server) serveCached(w http.ResponseWriter, r *http.Request, key string, rt *requestTrace, compute func(ctx context.Context) ([]byte, error)) {
	cacheSpan := rt.child("cache")
	e, leader := s.cache.begin(key)
	switch {
	case leader:
		s.cacheMiss.Inc()
		cacheSpan.SetAttr("outcome", "miss")
	case e.done():
		s.cacheHit.Inc()
		cacheSpan.SetAttr("outcome", "hit")
	default:
		s.cacheJoin.Inc()
		cacheSpan.SetAttr("outcome", "join")
	}
	s.updateHitRatio()

	if leader {
		// A miss's cache interaction ends here; the rest of the request
		// is admission + engine.
		cacheSpan.End()
		var payload []byte
		err := func() error {
			adm := rt.child("admission")
			adm.SetInt("queue_depth", int64(len(s.queued)))
			release, err := s.acquire(r.Context())
			adm.End()
			if err != nil {
				return err
			}
			defer release()
			ctx, cancel := context.WithTimeout(r.Context(), s.opts.Timeout)
			defer cancel()
			eng := rt.child("engine")
			// Phase spans emitted inside the engine/experiment parent
			// under the engine span from here on.
			rt.setParent(eng.Context())
			payload, err = compute(ctx)
			if err != nil {
				eng.SetAttr("error", err.Error())
			}
			eng.End()
			return err
		}()
		envelope, merr := json.Marshal(response{Digest: key, Result: payload})
		if err == nil {
			err = merr
		}
		// The trailing newline is part of the stored bytes: e.result is
		// shared read-only by every waiter, so it must never be appended to
		// at write time.
		s.cache.complete(key, e, append(envelope, '\n'), err)
		s.cacheSize.Set(float64(s.cache.len()))
		s.cacheBytes.Set(float64(s.cache.bytesUsed()))
	} else {
		// Hit: e.ready is already closed and the span ends immediately.
		// Join: the span covers the single-flight wait on the leader.
		select {
		case <-e.ready:
			cacheSpan.End()
		case <-r.Context().Done():
			cacheSpan.SetAttr("error", r.Context().Err().Error())
			cacheSpan.End()
			rt.attach(w.Header())
			s.writeError(w, http.StatusServiceUnavailable, r.Context().Err())
			return
		}
	}

	if e.err != nil {
		code := statusOf(e.err)
		if code == http.StatusTooManyRequests {
			s.rejected["overload"].Inc()
		}
		rt.attach(w.Header())
		s.writeError(w, code, e.err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Config-Digest", key)
	if leader {
		w.Header().Set("X-Cache", "miss")
	} else {
		w.Header().Set("X-Cache", "hit")
	}
	rt.attach(w.Header())
	w.Write(e.result)
}

// updateHitRatio refreshes the easerve_cache_hit_ratio gauge from the
// lookup counters: hits and joins both avoided a fresh engine run.
func (s *Server) updateHitRatio() {
	hit := s.cacheHit.Value() + s.cacheJoin.Value()
	total := hit + s.cacheMiss.Value()
	if total > 0 {
		s.hitRatio.Set(hit / total)
	}
}

// handleSim serves POST /v1/sim: body = an eadvfs.Config (the same JSON a
// run manifest embeds). With ?events=1 the run streams its JSONL
// schema-v1 event log instead of returning a (cached) result.
func (s *Server) handleSim(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	defer func() {
		sec := time.Since(start).Seconds()
		s.latency["sim"].Observe(sec)
		s.durations["sim"].Observe(sec)
	}()
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.writeError(w, http.StatusMethodNotAllowed, errors.New("POST a simulation config"))
		return
	}
	if s.draining.Load() {
		s.rejected["draining"].Inc()
		s.writeError(w, http.StatusServiceUnavailable, errDraining)
		return
	}
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes))
	if err != nil {
		s.writeError(w, decodeStatus(err), fmt.Errorf("sim config: %w", err))
		return
	}
	// Wire-schema gate: an unversioned (v1) document using v2-only
	// members is rejected, never silently reinterpreted, and a version
	// newer than this build fails loudly (internal/spec).
	if _, err := spec.CheckWire(raw); err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("sim config: %w", err))
		return
	}
	var cfg eadvfs.Config
	if err := decodeStrict(bytes.NewReader(raw), &cfg); err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("sim config: %w", err))
		return
	}
	// The schema declaration is wire metadata, not simulation identity:
	// zero it before the canonical marshal so a migrated (v2) spec keys
	// the same cache entry — and the same fleet affinity route — as its
	// v1 spelling (DESIGN.md §16).
	cfg.Schema = 0
	canonical, err := json.Marshal(cfg)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	if streamRequested(r) {
		s.streamSimEvents(w, r, cfg)
		return
	}
	key := digest.Compact(canonical)
	// A traced request hands the collector to the engine as its probe, so
	// the run's plan/simulate phase spans join the request trace. Probe is
	// excluded from the JSON form, so the digest above is unaffected.
	rt := s.beginTrace(r, "sim")
	if rt != nil {
		cfg.Probe = rt
	}
	s.serveCached(w, r, key, rt, func(ctx context.Context) ([]byte, error) {
		var res *eadvfs.Result
		err := experiment.RunHardened(func() error {
			var err error
			res, err = s.runSim(ctx, cfg)
			return err
		})
		if err != nil {
			return nil, err
		}
		s.engineRuns.Inc()
		recordRunMetrics(s.reg, res)
		return json.Marshal(res)
	})
}

// streamRequested reports whether the client asked for the JSONL event
// stream instead of the result payload.
func streamRequested(r *http.Request) bool {
	switch r.URL.Query().Get("events") {
	case "1", "true", "yes":
		return true
	}
	return false
}

// streamSimEvents runs the config with a JSONL probe writing straight to
// the response: the client watches arrivals, dispatches, decisions and
// faults as they happen. Event streams identify a client's observation,
// not a result, so they bypass the cache; they still occupy a worker slot
// and count against the queue bound. An engine error after streaming
// began truncates the stream (the status line is long gone).
func (s *Server) streamSimEvents(w http.ResponseWriter, r *http.Request, cfg eadvfs.Config) {
	release, err := s.acquire(r.Context())
	if err != nil {
		if errors.Is(err, errOverload) {
			s.rejected["overload"].Inc()
		}
		s.writeError(w, statusOf(err), err)
		return
	}
	defer release()
	ctx, cancel := context.WithTimeout(r.Context(), s.opts.Timeout)
	defer cancel()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Accel-Buffering", "no")
	jw := obs.NewJSONLWriter(w)
	cfg.Probe = jw
	runErr := experiment.RunHardened(func() error {
		_, err := s.runSim(ctx, cfg)
		return err
	})
	if runErr == nil {
		s.engineRuns.Inc()
	}
	jw.Flush()
	if f, ok := w.(http.Flusher); ok {
		f.Flush()
	}
}

// handleSweep serves POST /v1/sweep: a whole evaluation sweep (the
// paper's Figures 6–9 shapes) as one cached unit. The sweep fans out
// internally across experiment.Parallelism while occupying a single
// worker slot here, so one heavy sweep cannot monopolize the admission
// queue's accounting.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	defer func() {
		sec := time.Since(start).Seconds()
		s.latency["sweep"].Observe(sec)
		s.durations["sweep"].Observe(sec)
	}()
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.writeError(w, http.StatusMethodNotAllowed, errors.New("POST a sweep request"))
		return
	}
	if s.draining.Load() {
		s.rejected["draining"].Inc()
		s.writeError(w, http.StatusServiceUnavailable, errDraining)
		return
	}
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes))
	if err != nil {
		s.writeError(w, decodeStatus(err), fmt.Errorf("sweep request: %w", err))
		return
	}
	// Wire-schema gate, covering v2-only members nested in the "spec"
	// object (see handleSim for the contract).
	if _, err := spec.CheckWire(raw, "spec"); err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("sweep request: %w", err))
		return
	}
	var req SweepRequest
	if err := decodeStrict(bytes.NewReader(raw), &req); err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("sweep request: %w", err))
		return
	}
	switch req.Kind {
	case "missrate", "remaining":
	default:
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("unknown sweep kind %q (want missrate or remaining)", req.Kind))
		return
	}
	req.Spec = NormalizeSpec(req.Spec)
	if err := req.Spec.Validate(); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Policies) == 0 {
		s.writeError(w, http.StatusBadRequest, errors.New("no policies requested"))
		return
	}
	if req.Shard != nil {
		if err := req.Shard.Validate(req.Spec, req.Kind); err != nil {
			s.writeError(w, http.StatusBadRequest, err)
			return
		}
	}
	// Wire metadata, not sweep identity (see handleSim).
	req.Schema = 0
	canonical, err := json.Marshal(req)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	key := digest.Compact(canonical)
	// The registry and span-sink attachments are observers, excluded from
	// the JSON form, so they cannot perturb the digest computed above. A
	// traced sweep collects the experiment-level phase spans (plan /
	// realize-solar / simulate / aggregate) — deliberately not the
	// per-run engine spans, which would mean thousands of spans for one
	// response header.
	req.Spec.Metrics = s.reg
	rt := s.beginTrace(r, "sweep")
	if rt != nil {
		req.Spec.Spans = rt
	}
	s.serveCached(w, r, key, rt, func(ctx context.Context) ([]byte, error) {
		var out any
		var err error
		switch {
		case req.Shard != nil:
			out, err = experiment.RunShardCtx(ctx, req.Kind, req.Spec, req.Policies, *req.Shard)
		case req.Kind == "missrate":
			out, err = experiment.MissRateSweepCtx(ctx, req.Spec, req.Policies)
		case req.Kind == "remaining":
			out, err = experiment.RemainingEnergyCtx(ctx, req.Spec, req.Policies)
		}
		if err != nil {
			return nil, err
		}
		s.engineRuns.Inc()
		return json.Marshal(out)
	})
}

// NormalizeSpec fills a sweep spec's zero fields from the paper defaults
// (experiment.DefaultSpec), the same leniency the easim facade gives its
// Config. Normalizing BEFORE digesting also canonicalizes: a request that
// spells a default out and one that omits it name the same sweep, so they
// share a cache entry. The fabric coordinator (internal/fabric) applies
// the same normalization before planning shards, so the digests it routes
// on are exactly the cache keys workers store under.
func NormalizeSpec(s experiment.Spec) experiment.Spec {
	d := experiment.DefaultSpec()
	if s.Horizon == 0 {
		s.Horizon = d.Horizon
	}
	if s.NumTasks == 0 {
		s.NumTasks = d.NumTasks
	}
	if s.Utilization == 0 {
		s.Utilization = d.Utilization
	}
	if len(s.Capacities) == 0 {
		s.Capacities = d.Capacities
	}
	if s.Replications == 0 {
		s.Replications = d.Replications
	}
	if s.Seed == 0 {
		s.Seed = d.Seed
	}
	if s.Predictor == "" {
		s.Predictor = d.Predictor
	}
	if s.PMax == 0 {
		s.PMax = d.PMax
	}
	return s
}

// handleMetrics serves the Prometheus text exposition of the registry.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w)
}

// handleHealthz reports liveness, flipping to 503 while draining so load
// balancers stop routing new work during a rolling restart. Load is
// surfaced in headers — the body stays "ok" for existing probes — so a
// placement-aware coordinator can weight workers by queue depth
// (ROADMAP item 1) from the health probe it already sends.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("X-Queue-Depth", strconv.Itoa(len(s.queued)))
	w.Header().Set("X-Inflight", strconv.Itoa(len(s.slots)))
	w.Header().Set("X-Worker-Slots", strconv.Itoa(cap(s.slots)))
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

// handleFlight dumps the flight recorder: the most recent spans and
// decision audits this worker saw, as one JSON document. 404 when the
// recorder is disabled.
func (s *Server) handleFlight(w http.ResponseWriter, r *http.Request) {
	if s.flight == nil {
		http.Error(w, "flight recorder disabled", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.flight.Snapshot())
}

// FlightSnapshot returns the flight recorder's current contents; ok is
// false when the recorder is disabled. cmd/easerve dumps this on SIGQUIT.
func (s *Server) FlightSnapshot() (obs.FlightDump, bool) {
	if s.flight == nil {
		return obs.FlightDump{}, false
	}
	return s.flight.Snapshot(), true
}

// handleVersion reports the build identity (internal/buildinfo), the same
// identity run manifests record.
func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	bi := buildinfo.Get()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Tool      string `json:"tool"`
		GoVersion string `json:"go_version"`
		Revision  string `json:"vcs_revision,omitempty"`
		Dirty     bool   `json:"vcs_dirty"`
	}{"easerve", bi.GoVersion, bi.Revision, bi.Dirty})
}

// recordRunMetrics tallies a facade-level run outcome into the registry
// under the same eadvfs_run_* series the experiment harness exports
// (experiment.RecordRunMetrics), so dashboards work on either source.
func recordRunMetrics(reg *obs.Registry, res *eadvfs.Result) {
	reg.Counter("eadvfs_runs_total", "completed simulation runs").Inc()
	const jobsHelp = "jobs by outcome across runs"
	reg.Counter(obs.Labeled("eadvfs_run_jobs_total", "outcome", "released"), jobsHelp).Add(float64(res.Released))
	reg.Counter(obs.Labeled("eadvfs_run_jobs_total", "outcome", "finished"), jobsHelp).Add(float64(res.Finished))
	reg.Counter(obs.Labeled("eadvfs_run_jobs_total", "outcome", "missed"), jobsHelp).Add(float64(res.Missed))
	const timeHelp = "simulated time by processor mode across runs"
	reg.Counter(obs.Labeled("eadvfs_run_time_total", "mode", "busy"), timeHelp).Add(res.BusyTime)
	reg.Counter(obs.Labeled("eadvfs_run_time_total", "mode", "idle"), timeHelp).Add(res.IdleTime)
	reg.Counter(obs.Labeled("eadvfs_run_time_total", "mode", "stall"), timeHelp).Add(res.StallTime)
	reg.Counter("eadvfs_run_cpu_energy_total", "energy delivered to the processor across runs").Add(res.CPUEnergy)
	reg.Summary("eadvfs_run_miss_rate", "per-run deadline miss rate").Observe(res.MissRate)
	if res.Degradation != (eadvfs.Degradation{}) {
		reg.Counter("eadvfs_run_degraded_total", "runs with any fault-induced degradation").Inc()
	}
}
