package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/eadvfs/eadvfs/internal/obs"
)

// postTraced posts body with a fresh traceparent header; returns the
// response and the context that was propagated.
func postTraced(t *testing.T, ts *httptest.Server, path string, body any) (*http.Response, obs.SpanContext) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	sc := obs.SpanContext{Trace: obs.NewTraceID(), Span: obs.NewSpanID(), Sampled: true}
	req, err := http.NewRequest(http.MethodPost, ts.URL+path, bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", sc.Traceparent())
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp, sc
}

// A traced /v1/sim request must return its worker-side spans in the
// X-Trace-Spans header, all under the caller's trace ID and rooted at the
// caller's span — and the response body must stay byte-identical to an
// untraced request for the same config (tracing must not perturb the
// cache identity).
func TestTracedSimRequest(t *testing.T) {
	s := New(Options{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, sc := postTraced(t, ts, "/v1/sim", smallConfig())
	tracedBody := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, tracedBody)
	}
	spans, err := obs.DecodeSpanHeader(resp.Header.Get(obs.SpanHeader))
	if err != nil {
		t.Fatalf("decoding %s: %v", obs.SpanHeader, err)
	}
	if len(spans) == 0 {
		t.Fatal("traced request returned no spans")
	}
	names := map[string]int{}
	var root *obs.Span
	for i, sp := range spans {
		if sp.Trace != sc.Trace {
			t.Fatalf("span %s has trace %s, want propagated %s", sp.Name, sp.Trace, sc.Trace)
		}
		names[sp.Name]++
		if sp.Parent == sc.Span {
			root = &spans[i]
		}
	}
	if root == nil {
		t.Fatalf("no span parented under the caller's context; got %+v", names)
	}
	if root.Name != "request:sim" {
		t.Fatalf("root span %q, want request:sim", root.Name)
	}
	for _, want := range []string{"admission", "cache", "engine"} {
		if names[want] == 0 {
			t.Fatalf("missing %q span; got %v", want, names)
		}
	}
	// Engine phase spans from the sim layer ride along too.
	if names["plan"] == 0 || names["simulate"] == 0 {
		t.Fatalf("missing sim phase spans; got %v", names)
	}

	// Byte-identity: an untraced request for the same config must produce
	// the same body and no span header.
	plain := postJSON(t, ts, "/v1/sim", smallConfig())
	plainBody := readBody(t, plain)
	if plain.Header.Get(obs.SpanHeader) != "" {
		t.Fatal("untraced request returned a span header")
	}
	if !bytes.Equal(tracedBody, plainBody) {
		t.Fatal("traced and untraced bodies differ")
	}

	// A cache hit on a traced request reports outcome hit/join.
	resp2, _ := postTraced(t, ts, "/v1/sim", smallConfig())
	body2 := readBody(t, resp2)
	if !bytes.Equal(body2, tracedBody) {
		t.Fatal("cache hit body differs")
	}
	spans2, err := obs.DecodeSpanHeader(resp2.Header.Get(obs.SpanHeader))
	if err != nil {
		t.Fatal(err)
	}
	hit := false
	for _, sp := range spans2 {
		if sp.Name == "cache" && (sp.Attrs["outcome"] == "hit" || sp.Attrs["outcome"] == "join") {
			hit = true
		}
	}
	if !hit {
		t.Fatalf("repeat traced request did not record a cache hit: %+v", spans2)
	}
}

// A malformed traceparent must not break the request — it is served
// untraced, with no span header.
func TestMalformedTraceparentIgnored(t *testing.T) {
	s := New(Options{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	raw, _ := json.Marshal(smallConfig())
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/sim", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("traceparent", "00-NOT-A-VALID-HEADER")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get(obs.SpanHeader) != "" {
		t.Fatal("malformed traceparent still produced spans")
	}
}

// The flight recorder retains traced spans and serves them on
// /debug/flight; disabling it turns the endpoint into a 404.
func TestFlightRecorderEndpoint(t *testing.T) {
	s := New(Options{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, sc := postTraced(t, ts, "/v1/sim", smallConfig())
	readBody(t, resp)

	fr, err := http.Get(ts.URL + "/debug/flight")
	if err != nil {
		t.Fatal(err)
	}
	frBody := readBody(t, fr)
	if fr.StatusCode != http.StatusOK {
		t.Fatalf("/debug/flight status %d", fr.StatusCode)
	}
	var dump obs.FlightDump
	if err := json.Unmarshal(frBody, &dump); err != nil {
		t.Fatalf("flight dump not JSON: %v\n%s", err, frBody)
	}
	if dump.SpansTotal == 0 || len(dump.Spans) == 0 {
		t.Fatalf("flight recorder empty after traced request: %+v", dump)
	}
	found := false
	for _, sp := range dump.Spans {
		if sp.Trace == sc.Trace {
			found = true
		}
	}
	if !found {
		t.Fatal("traced request's spans missing from flight recorder")
	}
	if snap, ok := s.FlightSnapshot(); !ok || snap.SpansTotal != dump.SpansTotal {
		t.Fatalf("FlightSnapshot disagrees with /debug/flight: %+v vs %+v", snap, dump)
	}

	off := New(Options{Workers: 1, FlightSpans: -1, FlightDecisions: -1})
	tsOff := httptest.NewServer(off.Handler())
	defer tsOff.Close()
	fr2, err := http.Get(tsOff.URL + "/debug/flight")
	if err != nil {
		t.Fatal(err)
	}
	readBody(t, fr2)
	if fr2.StatusCode != http.StatusNotFound {
		t.Fatalf("disabled flight recorder: status %d, want 404", fr2.StatusCode)
	}
	if _, ok := off.FlightSnapshot(); ok {
		t.Fatal("disabled recorder still snapshots")
	}
}

// The hit-ratio gauge and per-endpoint duration histograms must appear in
// /metrics, and /healthz must expose queue-depth headers.
func TestServiceObservabilitySurfaces(t *testing.T) {
	s := New(Options{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	readBody(t, postJSON(t, ts, "/v1/sim", smallConfig())) // miss
	readBody(t, postJSON(t, ts, "/v1/sim", smallConfig())) // hit

	metrics := metricsText(t, ts)
	for _, want := range []string{
		"easerve_cache_hit_ratio 0.5",
		`easerve_request_duration_seconds_count{endpoint="sim"} 2`,
		`easerve_request_duration_seconds_bucket{endpoint="sim",`,
	} {
		if !contains(metrics, want) {
			t.Fatalf("metrics missing %q:\n%s", want, metrics)
		}
	}

	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body := readBody(t, hz)
	if string(body) != "ok\n" && string(body) != "ok" {
		t.Fatalf("healthz body %q", body)
	}
	for _, h := range []string{"X-Queue-Depth", "X-Inflight", "X-Worker-Slots"} {
		if hz.Header.Get(h) == "" {
			t.Fatalf("healthz missing %s header; got %+v", h, hz.Header)
		}
	}
}

func contains(s, sub string) bool { return bytes.Contains([]byte(s), []byte(sub)) }
