package service

// Per-request tracing (DESIGN.md §15). A request that arrives with a
// valid W3C traceparent header is traced: the server opens a root span
// for the request and child spans for admission (queue wait), the cache
// lookup (hit / miss / single-flight wait) and engine execution, and the
// engine/experiment phase spans ride the same collector through the
// existing Probe plumbing. All collected spans are returned to the
// caller in the X-Trace-Spans response header — never in the body, which
// stays byte-identical to the untraced response — and mirrored into the
// server's flight recorder. Requests without (or with a malformed)
// traceparent are served exactly as before: no collector is allocated
// and every span call site is a nil no-op.

import (
	"net/http"
	"sync"

	"github.com/eadvfs/eadvfs/internal/obs"
)

// requestTrace collects the spans of one traced request. It implements
// obs.SpanSink (collect), obs.Probe (feed decision audits to the flight
// recorder) and obs.TraceCarrier (parent engine-emitted phase spans
// under the request's engine span), so it can be handed directly to
// sim.Config.Probe / experiment.Spec.Spans.
type requestTrace struct {
	flight *obs.FlightRecorder // nil when the server has no recorder

	mu     sync.Mutex
	parent obs.SpanContext // current parent for engine phase spans
	spans  []obs.Span
	root   *obs.ActiveSpan
}

// beginTrace starts a request trace when r carries a valid traceparent;
// otherwise it returns nil and the request runs untraced. The root span
// is named after the endpoint and parented under the remote caller.
func (s *Server) beginTrace(r *http.Request, endpoint string) *requestTrace {
	remote, err := obs.ParseTraceparent(r.Header.Get("traceparent"))
	if err != nil {
		return nil
	}
	rt := &requestTrace{flight: s.flight}
	rt.root = obs.StartSpan(rt, "easerve", "request:"+endpoint, remote)
	return rt
}

// OnSpan implements obs.SpanSink.
func (rt *requestTrace) OnSpan(sp obs.Span) {
	rt.mu.Lock()
	rt.spans = append(rt.spans, sp)
	rt.mu.Unlock()
	if rt.flight != nil {
		rt.flight.OnSpan(sp)
	}
}

// OnEvent implements obs.Probe. Engine events are high-volume and belong
// to the JSONL stream; a traced request does not retain them.
func (rt *requestTrace) OnEvent(obs.Event) {}

// OnDecision implements obs.Probe: scheduler decision audits of traced
// requests land in the flight recorder alongside the spans.
func (rt *requestTrace) OnDecision(d obs.DecisionRecord) {
	if rt.flight != nil {
		rt.flight.OnDecision(d)
	}
}

// TraceParent implements obs.TraceCarrier: the engine parent set by
// setParent (the request's engine span), or the root span before that.
func (rt *requestTrace) TraceParent() obs.SpanContext {
	if rt == nil {
		return obs.SpanContext{}
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.parent.Valid() {
		return rt.parent
	}
	return rt.root.Context()
}

// setParent re-parents subsequently emitted engine phase spans.
func (rt *requestTrace) setParent(sc obs.SpanContext) {
	if rt == nil {
		return
	}
	rt.mu.Lock()
	rt.parent = sc
	rt.mu.Unlock()
}

// child starts a span under the request's root. Nil-safe: a nil
// *requestTrace yields a nil *ActiveSpan whose methods are no-ops.
func (rt *requestTrace) child(name string) *obs.ActiveSpan {
	if rt == nil {
		return nil
	}
	return obs.StartSpan(rt, "easerve", name, rt.root.Context())
}

// attach ends the root span and writes every collected span into the
// X-Trace-Spans response header. Must run before the first body byte
// (headers are immutable after that); nil-safe.
func (rt *requestTrace) attach(h http.Header) {
	if rt == nil {
		return
	}
	rt.root.End()
	rt.mu.Lock()
	spans := rt.spans
	rt.spans = nil
	rt.mu.Unlock()
	if v := obs.EncodeSpanHeader(spans); v != "" {
		h.Set(obs.SpanHeader, v)
	}
}
