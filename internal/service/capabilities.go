package service

import (
	"encoding/json"
	"errors"
	"net/http"
	"sync"

	"github.com/eadvfs/eadvfs/internal/registry"
)

// capabilitiesDoc is the body of GET /v1/capabilities: the scenario
// registry's self-describing snapshot (policies, sources, predictors,
// task models with their parameter schemas, in registration order) plus
// the sweep kinds this worker's /v1/sweep accepts. eactl and the fabric
// coordinator enumerate it to learn what a worker build supports —
// including out-of-tree registrations — instead of hardcoding names.
type capabilitiesDoc struct {
	registry.Capabilities
	Sweeps []string `json:"sweeps"`
}

// capabilitiesBytes renders the document once: the registry is frozen
// after init, so every response — across requests and across workers of
// the same build — is byte-identical, which lets a coordinator fingerprint
// fleet homogeneity by comparing bodies.
var capabilitiesBytes = sync.OnceValue(func() []byte {
	doc := capabilitiesDoc{
		Capabilities: registry.Snapshot(),
		Sweeps:       []string{"missrate", "remaining"},
	}
	b, err := json.Marshal(doc)
	if err != nil {
		// The document is built from registered literals; a marshal
		// failure is a programming error in a registration.
		panic("service: capabilities document failed to marshal: " + err.Error())
	}
	return append(b, '\n')
})

// handleCapabilities serves GET /v1/capabilities. The endpoint is
// read-only metadata: it stays available while draining (a coordinator
// probing a draining worker should still learn what it was).
func (s *Server) handleCapabilities(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		s.writeError(w, http.StatusMethodNotAllowed, errors.New("GET the capability document"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(capabilitiesBytes())
}
