package service

import "sync"

// entry is one cache slot: a result being computed or already computed.
// ready is closed exactly once, when the leader finishes; result and err
// are immutable afterwards. Waiters select on ready against their own
// request context, so an abandoned client never blocks on someone else's
// computation.
type entry struct {
	ready  chan struct{}
	result []byte // compact JSON payload; nil when err != nil
	err    error
}

// done reports whether the entry has been completed.
func (e *entry) done() bool {
	select {
	case <-e.ready:
		return true
	default:
		return false
	}
}

// cache is the digest-keyed single-flight result cache. The first request
// for a key becomes the leader and computes; concurrent requests for the
// same key wait on the leader's entry instead of enqueueing duplicate
// work, so N identical requests cost one engine run. Completed successful
// entries are retained up to max and evicted FIFO; failed computations are
// never cached (the next request retries). In-flight entries are exempt
// from eviction — evicting one would break the single-flight guarantee.
type cache struct {
	mu      sync.Mutex
	max     int
	entries map[string]*entry
	order   []string // completed entries in completion order, oldest first
}

func newCache(max int) *cache {
	if max < 1 {
		max = 1
	}
	return &cache{max: max, entries: make(map[string]*entry)}
}

// begin returns the entry for key and whether the caller is its leader.
// A leader MUST eventually call complete with the same key and entry,
// whatever happens — a leaked in-flight entry would wedge every future
// request for the key.
func (c *cache) begin(key string) (*entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		return e, false
	}
	e := &entry{ready: make(chan struct{})}
	c.entries[key] = e
	return e, true
}

// complete finishes a leader's computation. Successful results stay cached
// (evicting the oldest completed entry beyond the bound); failures are
// removed so a later request can retry — but current waiters observe the
// error, not a silent retry.
func (c *cache) complete(key string, e *entry, result []byte, err error) {
	c.mu.Lock()
	e.result, e.err = result, err
	if err != nil {
		delete(c.entries, key)
	} else {
		c.order = append(c.order, key)
		for len(c.order) > c.max {
			evict := c.order[0]
			c.order = c.order[1:]
			delete(c.entries, evict)
		}
	}
	c.mu.Unlock()
	close(e.ready)
}

// len reports the number of live entries (completed + in-flight).
func (c *cache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
