package service

import (
	"container/list"
	"sync"
)

// entry is one cache slot: a result being computed or already computed.
// ready is closed exactly once, when the leader finishes; result and err
// are immutable afterwards. Waiters select on ready against their own
// request context, so an abandoned client never blocks on someone else's
// computation. Waiters hold the *entry directly, so evicting a completed
// entry from the cache never invalidates a response in flight.
type entry struct {
	ready  chan struct{}
	result []byte // compact JSON payload; nil when err != nil
	err    error

	// LRU bookkeeping, guarded by the cache mutex. elem is non-nil only
	// while the (completed) entry is resident in the recency list.
	elem *list.Element
	size int64
}

// done reports whether the entry has been completed.
func (e *entry) done() bool {
	select {
	case <-e.ready:
		return true
	default:
		return false
	}
}

// cache is the digest-keyed single-flight result cache. The first request
// for a key becomes the leader and computes; concurrent requests for the
// same key wait on the leader's entry instead of enqueueing duplicate
// work, so N identical requests cost one engine run. Completed successful
// entries are retained under two bounds — an entry count and a total byte
// budget over stored payloads — and evicted least-recently-used (a lookup
// refreshes recency); failed computations are never cached. In-flight
// entries are exempt from eviction — evicting one would break the
// single-flight guarantee — and do not count against the byte budget
// until they complete.
type cache struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64
	bytes      int64
	entries    map[string]*entry
	lru        *list.List // of string keys; front = most recently used

	// onEvict, when set, observes evictions (count per complete call).
	// Called outside the cache mutex.
	onEvict func(evicted int)
}

func newCache(maxEntries int, maxBytes int64) *cache {
	if maxEntries < 1 {
		maxEntries = 1
	}
	if maxBytes < 1 {
		maxBytes = 1
	}
	return &cache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		entries:    make(map[string]*entry),
		lru:        list.New(),
	}
}

// begin returns the entry for key and whether the caller is its leader.
// A completed resident entry is refreshed to most-recently-used. A leader
// MUST eventually call complete with the same key and entry, whatever
// happens — a leaked in-flight entry would wedge every future request for
// the key.
func (c *cache) begin(key string) (*entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		if e.elem != nil {
			c.lru.MoveToFront(e.elem)
		}
		return e, false
	}
	e := &entry{ready: make(chan struct{})}
	c.entries[key] = e
	return e, true
}

// complete finishes a leader's computation. Successful results stay cached
// and count against both bounds, evicting least-recently-used completed
// entries while either bound is exceeded (a result larger than the whole
// byte budget is evicted immediately — its waiters still hold the entry);
// failures are removed so a later request can retry, but current waiters
// observe the error, not a silent retry.
func (c *cache) complete(key string, e *entry, result []byte, err error) {
	evicted := 0
	c.mu.Lock()
	e.result, e.err = result, err
	if err != nil {
		delete(c.entries, key)
	} else {
		e.size = int64(len(result))
		e.elem = c.lru.PushFront(key)
		c.bytes += e.size
		for c.lru.Len() > c.maxEntries || c.bytes > c.maxBytes {
			oldest := c.lru.Back()
			if oldest == nil {
				break
			}
			k := oldest.Value.(string)
			victim := c.entries[k]
			c.lru.Remove(oldest)
			victim.elem = nil
			c.bytes -= victim.size
			delete(c.entries, k)
			evicted++
		}
	}
	c.mu.Unlock()
	close(e.ready)
	if evicted > 0 && c.onEvict != nil {
		c.onEvict(evicted)
	}
}

// len reports the number of live entries (completed + in-flight).
func (c *cache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// bytesUsed reports the byte budget currently consumed by completed
// entries.
func (c *cache) bytesUsed() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}
