package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/eadvfs/eadvfs"
	"github.com/eadvfs/eadvfs/internal/experiment"
	"github.com/eadvfs/eadvfs/internal/obs"
)

// smallConfig is a fast simulation spec used throughout the tests.
func smallConfig() eadvfs.Config {
	return eadvfs.Config{Horizon: 500, Policy: "ea-dvfs", Capacity: 300, Seed: 7}
}

func postJSON(t *testing.T, ts *httptest.Server, path string, body any) *http.Response {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func readBody(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// The service contract in one test: a cached response carries the same
// config digest a run manifest records, and its result payload is
// byte-identical to marshalling the result of running the config directly
// with the library (which is exactly what easim does).
func TestSimMatchesDirectRunAndManifestDigest(t *testing.T) {
	s := New(Options{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cfg := smallConfig()

	resp := postJSON(t, ts, "/v1/sim", cfg)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, readBody(t, resp))
	}
	if got := resp.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("first request X-Cache = %q, want miss", got)
	}
	body1 := readBody(t, resp)

	var env response
	if err := json.Unmarshal(body1, &env); err != nil {
		t.Fatal(err)
	}

	// Digest contract: same key a run manifest for this config records.
	man, err := obs.NewManifest("easim", cfg.Policy, map[string]uint64{"seed": cfg.Seed}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if env.Digest != man.Digest {
		t.Fatalf("service digest %s != manifest digest %s", env.Digest, man.Digest)
	}
	if got := resp.Header.Get("X-Config-Digest"); got != man.Digest {
		t.Fatalf("X-Config-Digest %s != manifest digest %s", got, man.Digest)
	}

	// Payload contract: byte-identical to a direct library run.
	direct, err := eadvfs.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(direct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal([]byte(env.Result), want) {
		t.Fatalf("service result diverges from direct run:\n%s\nvs\n%s", env.Result, want)
	}

	// Cache contract: the repeat response is byte-identical, marked hit.
	resp2 := postJSON(t, ts, "/v1/sim", cfg)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("repeat status %d", resp2.StatusCode)
	}
	if got := resp2.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("repeat X-Cache = %q, want hit", got)
	}
	if body2 := readBody(t, resp2); !bytes.Equal(body1, body2) {
		t.Fatalf("cached response not byte-identical:\n%s\nvs\n%s", body1, body2)
	}
}

// N concurrent identical requests must trigger exactly one engine run and
// N byte-identical responses — the single-flight guarantee. Run under
// -race this also exercises the cache's synchronization.
func TestSingleFlightConcurrentIdenticalRequests(t *testing.T) {
	const n = 24
	var runs, gate = make(chan struct{}, n), make(chan struct{})
	s := New(Options{Workers: 4})
	s.runSim = func(ctx context.Context, cfg eadvfs.Config) (*eadvfs.Result, error) {
		runs <- struct{}{}
		<-gate // hold the computation until every request has arrived
		return eadvfs.RunContext(ctx, cfg)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cfg := smallConfig()
	bodies := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp := postJSON(t, ts, "/v1/sim", cfg)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: status %d", i, resp.StatusCode)
			}
			bodies[i] = readBody(t, resp)
		}(i)
	}
	// Release the leader once it is computing; waiters join its entry.
	<-runs
	time.Sleep(50 * time.Millisecond) // let the other requests reach the cache
	close(gate)
	wg.Wait()

	if extra := len(runs); extra != 0 {
		t.Fatalf("%d extra engine runs beyond the single flight", extra)
	}
	for i := 1; i < n; i++ {
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("response %d differs from response 0:\n%s\nvs\n%s", i, bodies[i], bodies[0])
		}
	}

	var miss, hit, join float64
	for _, line := range strings.Split(metricsText(t, ts), "\n") {
		switch {
		case strings.HasPrefix(line, `easerve_cache_requests_total{outcome="miss"}`):
			fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%g", &miss)
		case strings.HasPrefix(line, `easerve_cache_requests_total{outcome="hit"}`):
			fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%g", &hit)
		case strings.HasPrefix(line, `easerve_cache_requests_total{outcome="join"}`):
			fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%g", &join)
		}
	}
	if miss != 1 {
		t.Fatalf("cache misses = %v, want exactly 1", miss)
	}
	if hit+join != n-1 {
		t.Fatalf("hit(%v) + join(%v) = %v, want %d", hit, join, hit+join, n-1)
	}
}

func metricsText(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	return string(readBody(t, resp))
}

// When the pool and queue are full, further distinct requests are shed
// with 429 and a Retry-After hint instead of queuing unboundedly.
func TestOverloadSheds429(t *testing.T) {
	block := make(chan struct{})
	s := New(Options{Workers: 1, Queue: 1, RetryAfter: 2 * time.Second})
	s.runSim = func(ctx context.Context, cfg eadvfs.Config) (*eadvfs.Result, error) {
		<-block
		return &eadvfs.Result{Policy: cfg.Policy}, nil
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	distinct := func(i int) eadvfs.Config {
		c := smallConfig()
		c.Seed = uint64(100 + i)
		return c
	}

	// Occupy the worker, then the queue slot.
	results := make(chan *http.Response, 2)
	for i := 0; i < 2; i++ {
		go func(i int) { results <- postJSON(t, ts, "/v1/sim", distinct(i)) }(i)
	}
	waitFor(t, func() bool { return len(s.slots) == 1 && len(s.queued) == 1 })

	// A third distinct request finds pool and queue full: shed.
	resp := postJSON(t, ts, "/v1/sim", distinct(2))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429; body %s", resp.StatusCode, readBody(t, resp))
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Fatalf("Retry-After = %q, want \"2\"", ra)
	}
	readBody(t, resp)

	close(block)
	for i := 0; i < 2; i++ {
		r := <-results
		if r.StatusCode != http.StatusOK {
			t.Fatalf("blocked request finished with %d", r.StatusCode)
		}
		readBody(t, r)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(time.Millisecond)
	}
}

// After BeginDrain, compute endpoints refuse with 503 and /healthz goes
// unhealthy, while /metrics and /version stay available.
func TestDrainRefusesNewWork(t *testing.T) {
	s := New(Options{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	s.BeginDrain()

	resp := postJSON(t, ts, "/v1/sim", smallConfig())
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("sim during drain: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("drain refusal missing Retry-After")
	}
	readBody(t, resp)

	h, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if h.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain: %d, want 503", h.StatusCode)
	}
	readBody(t, h)

	m, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if m.StatusCode != http.StatusOK {
		t.Fatalf("metrics during drain: %d, want 200", m.StatusCode)
	}
	readBody(t, m)
}

// Engine failures surface as 400 (deterministic property of the config)
// and are not cached: the digest can be retried.
func TestBadConfigRejectedAndNotCached(t *testing.T) {
	s := New(Options{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cfg := smallConfig()
	cfg.Policy = "no-such-policy"
	for i := 0; i < 2; i++ {
		resp := postJSON(t, ts, "/v1/sim", cfg)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("attempt %d: status %d, want 400", i, resp.StatusCode)
		}
		readBody(t, resp)
	}
	if n := s.cache.len(); n != 0 {
		t.Fatalf("failed computation left %d cache entries", n)
	}
}

// Unknown JSON fields are rejected loudly — a typoed field must not
// silently simulate the default configuration.
func TestUnknownFieldRejected(t *testing.T) {
	s := New(Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/sim", "application/json",
		strings.NewReader(`{"Horizon": 500, "Policyy": "lsa"}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	readBody(t, resp)
}

// A compute budget shorter than the run maps to 504 gateway timeout.
func TestTimeoutMapsTo504(t *testing.T) {
	s := New(Options{Workers: 1, Timeout: time.Nanosecond})
	s.runSim = func(ctx context.Context, cfg eadvfs.Config) (*eadvfs.Result, error) {
		<-ctx.Done()
		return nil, fmt.Errorf("run cancelled: %w", ctx.Err())
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := postJSON(t, ts, "/v1/sim", smallConfig())
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504; body %s", resp.StatusCode, readBody(t, resp))
	}
	readBody(t, resp)
}

// A sweep response equals marshalling the sweep run directly, and repeats
// hit the cache.
func TestSweepMatchesDirectAndCaches(t *testing.T) {
	s := New(Options{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := experiment.DefaultSpec()
	spec.Horizon = 500
	spec.Replications = 2
	spec.Capacities = []float64{300}
	req := SweepRequest{Kind: "missrate", Spec: spec, Policies: []string{"lsa"}}

	resp := postJSON(t, ts, "/v1/sweep", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, readBody(t, resp))
	}
	body1 := readBody(t, resp)

	var env response
	if err := json.Unmarshal(body1, &env); err != nil {
		t.Fatal(err)
	}
	direct, err := experiment.MissRateSweep(spec, []string{"lsa"})
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(direct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal([]byte(env.Result), want) {
		t.Fatalf("sweep result diverges from direct run:\n%s\nvs\n%s", env.Result, want)
	}

	resp2 := postJSON(t, ts, "/v1/sweep", req)
	if got := resp2.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("repeat sweep X-Cache = %q, want hit", got)
	}
	if body2 := readBody(t, resp2); !bytes.Equal(body1, body2) {
		t.Fatal("cached sweep response not byte-identical")
	}
}

// A partial sweep spec is filled from the paper defaults, and spelling a
// default out vs omitting it names the same sweep — same digest, shared
// cache entry.
func TestSweepSpecNormalization(t *testing.T) {
	s := New(Options{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spelled := experiment.DefaultSpec()
	spelled.Horizon = 500
	spelled.Replications = 2
	spelled.Capacities = []float64{300}

	partial := experiment.Spec{Horizon: 500, Replications: 2, Capacities: []float64{300}}

	r1 := postJSON(t, ts, "/v1/sweep", SweepRequest{Kind: "missrate", Spec: spelled, Policies: []string{"lsa"}})
	if r1.StatusCode != http.StatusOK {
		t.Fatalf("spelled-out spec: status %d: %s", r1.StatusCode, readBody(t, r1))
	}
	d1 := r1.Header.Get("X-Config-Digest")
	readBody(t, r1)

	r2 := postJSON(t, ts, "/v1/sweep", SweepRequest{Kind: "missrate", Spec: partial, Policies: []string{"lsa"}})
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("partial spec: status %d: %s", r2.StatusCode, readBody(t, r2))
	}
	if got := r2.Header.Get("X-Config-Digest"); got != d1 {
		t.Fatalf("partial spec digest %s != spelled-out digest %s", got, d1)
	}
	if got := r2.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("normalized repeat X-Cache = %q, want hit", got)
	}
	readBody(t, r2)
}

// Unknown sweep kinds and empty policy lists fail fast with 400.
func TestSweepValidation(t *testing.T) {
	s := New(Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, req := range []SweepRequest{
		{Kind: "nope", Spec: experiment.DefaultSpec(), Policies: []string{"lsa"}},
		{Kind: "missrate", Spec: experiment.DefaultSpec()},
	} {
		resp := postJSON(t, ts, "/v1/sweep", req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("kind=%q policies=%v: status %d, want 400", req.Kind, req.Policies, resp.StatusCode)
		}
		readBody(t, resp)
	}
}

// ?events=1 streams the run's JSONL event log, which must validate
// against schema v1 end to end.
func TestEventStreamIsValidJSONL(t *testing.T) {
	s := New(Options{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cfg := smallConfig()
	raw, _ := json.Marshal(cfg)
	resp, err := http.Post(ts.URL+"/v1/sim?events=1", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	body := readBody(t, resp)
	if len(body) == 0 {
		t.Fatal("empty event stream")
	}
	n, err := obs.CheckJSONL(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("stream violates JSONL schema: %v", err)
	}
	if n == 0 {
		t.Fatal("stream contained no lines")
	}
}

// The cache evicts FIFO beyond its bound but never loses correctness:
// an evicted digest simply recomputes.
func TestCacheEviction(t *testing.T) {
	s := New(Options{Workers: 1, CacheEntries: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for seed := uint64(1); seed <= 3; seed++ {
		cfg := smallConfig()
		cfg.Seed = seed
		resp := postJSON(t, ts, "/v1/sim", cfg)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("seed %d: status %d", seed, resp.StatusCode)
		}
		readBody(t, resp)
	}
	if n := s.cache.len(); n != 2 {
		t.Fatalf("cache holds %d entries, want bound 2", n)
	}

	// Seed 1 was evicted: re-requesting recomputes (miss, not hit).
	cfg := smallConfig()
	cfg.Seed = 1
	resp := postJSON(t, ts, "/v1/sim", cfg)
	if got := resp.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("evicted digest X-Cache = %q, want miss", got)
	}
	readBody(t, resp)
}

// A cancelled sweep surfaces the partial-aggregation error through the
// HTTP error mapping (the leader's context dies with the client).
func TestStatusOfMapping(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{errOverload, http.StatusTooManyRequests},
		{errDraining, http.StatusServiceUnavailable},
		{fmt.Errorf("wrap: %w", context.DeadlineExceeded), http.StatusGatewayTimeout},
		{fmt.Errorf("wrap: %w", context.Canceled), http.StatusServiceUnavailable},
		{&experiment.CancelledError{Total: 4, Done: 1, Skipped: 3, Err: context.Canceled}, http.StatusServiceUnavailable},
		{&experiment.PanicError{}, http.StatusInternalServerError},
		{&experiment.TransientError{Err: errors.New("x")}, http.StatusServiceUnavailable},
		{errors.New("sim: no runnable configuration"), http.StatusBadRequest},
	}
	for _, c := range cases {
		if got := statusOf(c.err); got != c.want {
			t.Errorf("statusOf(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}

// GET on compute endpoints is refused with 405 and an Allow header.
func TestMethodNotAllowed(t *testing.T) {
	s := New(Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	for _, path := range []string{"/v1/sim", "/v1/sweep"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET %s: status %d, want 405", path, resp.StatusCode)
		}
		if resp.Header.Get("Allow") != http.MethodPost {
			t.Fatalf("GET %s: Allow = %q", path, resp.Header.Get("Allow"))
		}
		readBody(t, resp)
	}
}

// /version reports the build identity as JSON.
func TestVersionEndpoint(t *testing.T) {
	s := New(Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/version")
	if err != nil {
		t.Fatal(err)
	}
	var v struct {
		Tool      string `json:"tool"`
		GoVersion string `json:"go_version"`
	}
	if err := json.Unmarshal(readBody(t, resp), &v); err != nil {
		t.Fatal(err)
	}
	if v.Tool != "easerve" || v.GoVersion == "" {
		t.Fatalf("version payload %+v", v)
	}
}

// The cache bounds are LRU over both entry count and byte budget: a
// lookup refreshes recency, so the least-recently-touched digest is the
// one to go, and evictions are counted in the metrics.
func TestCacheEvictionLRUAndBytes(t *testing.T) {
	s := New(Options{Workers: 1, CacheEntries: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(seed uint64) *http.Response {
		cfg := smallConfig()
		cfg.Seed = seed
		resp := postJSON(t, ts, "/v1/sim", cfg)
		readBody(t, resp)
		return resp
	}
	post(1)
	post(2)
	post(1) // refresh seed 1: seed 2 becomes least recently used
	post(3) // evicts seed 2
	if got := post(1).Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("recently-used digest evicted: X-Cache = %q, want hit", got)
	}
	if got := post(2).Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("LRU digest retained: X-Cache = %q, want miss", got)
	}
	if !strings.Contains(metricsText(t, ts), "easerve_cache_evictions_total") {
		t.Fatal("easerve_cache_evictions_total not exported")
	}

	// Byte budget: with a budget smaller than any result, every completion
	// evicts immediately — responses still succeed, nothing is retained.
	sb := New(Options{Workers: 1, CacheBytes: 1})
	tsb := httptest.NewServer(sb.Handler())
	defer tsb.Close()
	for seed := uint64(1); seed <= 2; seed++ {
		cfg := smallConfig()
		cfg.Seed = seed
		resp := postJSON(t, tsb, "/v1/sim", cfg)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("seed %d: status %d", seed, resp.StatusCode)
		}
		readBody(t, resp)
	}
	if n := sb.cache.len(); n != 0 {
		t.Fatalf("1-byte budget retained %d entries", n)
	}
	if b := sb.cache.bytesUsed(); b != 0 {
		t.Fatalf("1-byte budget accounts %d bytes", b)
	}
	var evictions float64
	for _, line := range strings.Split(metricsText(t, tsb), "\n") {
		if strings.HasPrefix(line, "easerve_cache_evictions_total") {
			fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%g", &evictions)
		}
	}
	if evictions != 2 {
		t.Fatalf("evictions = %v, want 2", evictions)
	}
}

// Oversized request bodies are refused with 413 before any decode work —
// a hostile spec cannot balloon a worker's memory.
func TestBodyTooLarge413(t *testing.T) {
	s := New(Options{MaxBodyBytes: 64})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	big := `{"padding_field_that_does_not_exist": "` + strings.Repeat("x", 256) + `"}`
	for _, path := range []string{"/v1/sim", "/v1/sweep"} {
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(big))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("POST %s: status %d, want 413; body %s", path, resp.StatusCode, readBody(t, resp))
		}
		readBody(t, resp)
	}

	// A body within the bound still decodes (and then fails validation,
	// not the size check).
	resp, err := http.Post(ts.URL+"/v1/sim", "application/json", strings.NewReader(`{"Horizon": -1}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode == http.StatusRequestEntityTooLarge {
		t.Fatal("small body refused as too large")
	}
	readBody(t, resp)
}

// Single flight under leader abandonment: when the leading request's
// context is cancelled mid-run, waiting duplicates must observe a clean
// error (or a result) promptly — never a hang on an entry nobody will
// complete. Run under -race.
func TestLeaderCancellationUnblocksWaiters(t *testing.T) {
	computing := make(chan struct{})
	s := New(Options{Workers: 2})
	s.runSim = func(ctx context.Context, cfg eadvfs.Config) (*eadvfs.Result, error) {
		close(computing)
		<-ctx.Done() // the leader's request context: dies when it disconnects
		return nil, ctx.Err()
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	raw, err := json.Marshal(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderDone := make(chan error, 1)
	go func() {
		req, err := http.NewRequestWithContext(leaderCtx, http.MethodPost, ts.URL+"/v1/sim", bytes.NewReader(raw))
		if err != nil {
			leaderDone <- err
			return
		}
		resp, err := http.DefaultClient.Do(req)
		if resp != nil {
			readBody(t, resp)
		}
		leaderDone <- err
	}()
	<-computing // the leader owns the cache entry and is inside the engine

	// Waiters join the leader's entry, then the leader walks away.
	const waiters = 4
	statuses := make(chan int, waiters)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/sim", "application/json", bytes.NewReader(raw))
			if err != nil {
				t.Error(err)
				return
			}
			readBody(t, resp)
			statuses <- resp.StatusCode
		}()
	}
	waitFor(t, func() bool { return s.cacheJoin.Value()+s.cacheHit.Value() >= waiters })
	cancelLeader()
	<-leaderDone

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("waiters hung after leader cancellation")
	}
	close(statuses)
	for code := range statuses {
		if code != http.StatusServiceUnavailable {
			t.Fatalf("waiter got %d, want 503 (clean retryable error)", code)
		}
	}
	// The failed computation is not cached: the digest can be retried.
	if n := s.cache.len(); n != 0 {
		t.Fatalf("abandoned computation left %d cache entries", n)
	}
}

// A sharded sweep request computes exactly the shard's raw cells — the
// payload is byte-identical to running the shard with the library — and
// sharded/unsharded requests name different cache keys.
func TestShardedSweepMatchesRunShard(t *testing.T) {
	s := New(Options{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := experiment.DefaultSpec()
	spec.Horizon = 500
	spec.Replications = 4
	spec.Capacities = []float64{300}
	policies := []string{"lsa"}

	shards, err := experiment.PlanShards("missrate", spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	digests := map[string]bool{}
	for i := range shards {
		req := SweepRequest{Kind: "missrate", Spec: spec, Policies: policies, Shard: &shards[i]}
		resp := postJSON(t, ts, "/v1/sweep", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("shard %d: status %d: %s", i, resp.StatusCode, readBody(t, resp))
		}
		digests[resp.Header.Get("X-Config-Digest")] = true
		var env response
		if err := json.Unmarshal(readBody(t, resp), &env); err != nil {
			t.Fatal(err)
		}
		direct, err := experiment.RunShard("missrate", spec, policies, shards[i])
		if err != nil {
			t.Fatal(err)
		}
		want, err := json.Marshal(direct)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal([]byte(env.Result), want) {
			t.Fatalf("shard %d result diverges from direct run", i)
		}
	}
	whole := postJSON(t, ts, "/v1/sweep", SweepRequest{Kind: "missrate", Spec: spec, Policies: policies})
	digests[whole.Header.Get("X-Config-Digest")] = true
	readBody(t, whole)
	if len(digests) != 3 {
		t.Fatalf("expected 3 distinct digests (2 shards + whole), got %d", len(digests))
	}

	// A shard that does not fit the spec is refused up front.
	bad := experiment.Shard{Index: 0, Count: 1, RepLo: 0, RepHi: 99, CapLo: 0, CapHi: 1}
	resp := postJSON(t, ts, "/v1/sweep", SweepRequest{Kind: "missrate", Spec: spec, Policies: policies, Shard: &bad})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid shard: status %d, want 400", resp.StatusCode)
	}
	readBody(t, resp)
}
