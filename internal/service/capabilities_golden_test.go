package service

import (
	"bytes"
	"flag"
	"os"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata goldens from the current registry")

// TestCapabilitiesGolden pins the rendered GET /v1/capabilities body
// byte-for-byte. The document is a build fingerprint — the fabric
// coordinator compares worker bodies to check fleet homogeneity — so any
// change to it (a new registration, a reworded help string, a schema
// tweak) must be a conscious decision, recorded by regenerating the
// golden with `go test ./internal/service -run Golden -update`. When no
// new registrations are present the document must not move at all.
func TestCapabilitiesGolden(t *testing.T) {
	const golden = "testdata/capabilities.golden"
	got := capabilitiesBytes()
	if *updateGolden {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("capabilities document drifted from golden.\nIf the change is intentional (new registration, help text), regenerate with -update.\ngot:  %s\nwant: %s", got, want)
	}
}
