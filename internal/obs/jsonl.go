package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sync"
)

// JSONLSchemaVersion is the structured-event stream schema version. Every
// line carries it as "v"; CheckJSONL rejects any other value.
//
// Schema v1: one JSON object per line, two line types.
//
//	{"v":1,"type":"event","t":<float>,"kind":<EventKind>,
//	 "task":<int>,"seq":<int>,
//	 "level":<int, dispatch/segment/fault only>,
//	 "start":<float, segment only>,"mode":<string, segment only>,
//	 "detail":<string, fault/invariant only>}
//
//	{"v":1,"type":"decision","t":<float>,"policy":<string>,
//	 "task":<int>,"seq":<int>,"deadline":<float>,"slack":<float>,
//	 "stored":<float>,"predicted":<float>,"available":<float>,
//	 "s1":<float>,"s2":<float>,"level":<int, -1 when idling>,
//	 "speed":<float>,"until":<float, omitted when +Inf>,
//	 "reason":<Reason>}
//
// Numeric fields are finite (an infinite "until" — "until the next event"
// — is omitted rather than encoded). Unknown kinds and reason codes are
// schema violations: the known sets are part of the schema.
//
// Schema v1.1 adds a third line type, the distributed-tracing span
// (DESIGN.md §15). Span lines carry "v":1.1 while event/decision lines
// keep "v":1, so a v1 stream remains valid byte for byte:
//
//	{"v":1.1,"type":"span","span":{"trace":<32 hex>,"id":<16 hex>,
//	 "parent":<16 hex, omitted for roots>,"name":<string>,
//	 "service":<string>,"start_unix_ns":<int>,"dur_ns":<int>,
//	 "attrs":{<string>:<string>, omitted when empty}}}
//
// Hex fields are exact-width lowercase; all-zero trace or span IDs are
// schema violations (they are invalid in W3C trace-context too).
const JSONLSchemaVersion = 1

// JSONLSpanVersion is the schema version carried by span lines.
const JSONLSpanVersion = 1.1

// eventLine is the schema-v1 wire form of an Event.
type eventLine struct {
	V      int       `json:"v"`
	Type   string    `json:"type"`
	T      float64   `json:"t"`
	Kind   EventKind `json:"kind"`
	Task   int       `json:"task"`
	Seq    int       `json:"seq"`
	Level  *int      `json:"level,omitempty"`
	Start  *float64  `json:"start,omitempty"`
	Mode   string    `json:"mode,omitempty"`
	Detail string    `json:"detail,omitempty"`
}

// decisionLine is the schema-v1 wire form of a DecisionRecord.
type decisionLine struct {
	V         int      `json:"v"`
	Type      string   `json:"type"`
	T         float64  `json:"t"`
	Policy    string   `json:"policy"`
	Task      int      `json:"task"`
	Seq       int      `json:"seq"`
	Deadline  float64  `json:"deadline"`
	Slack     float64  `json:"slack"`
	Stored    float64  `json:"stored"`
	Predicted float64  `json:"predicted"`
	Available float64  `json:"available"`
	S1        float64  `json:"s1"`
	S2        float64  `json:"s2"`
	Level     int      `json:"level"`
	Speed     float64  `json:"speed"`
	Until     *float64 `json:"until,omitempty"`
	Reason    Reason   `json:"reason"`
}

// spanLine is the schema-v1.1 wire form of a Span. The span body nests
// under "span" (rather than flattening) so its strict decoder and the
// X-Trace-Spans header share one representation.
type spanLine struct {
	V    float64 `json:"v"`
	Type string  `json:"type"`
	Span Span    `json:"span"`
}

// JSONLWriter is a Probe that streams schema-v1 lines to an io.Writer.
// Lines are written atomically under a mutex, so one writer may be shared
// by the experiment harness's parallel runs (lines from concurrent runs
// interleave, each line stays intact). Call Flush before reading the
// output.
type JSONLWriter struct {
	mu  sync.Mutex
	w   *bufio.Writer
	enc *json.Encoder
	err error
}

// NewJSONLWriter wraps w in a buffered schema-v1 stream.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	bw := bufio.NewWriter(w)
	return &JSONLWriter{w: bw, enc: json.NewEncoder(bw)}
}

// OnEvent implements Probe.
func (jw *JSONLWriter) OnEvent(ev Event) {
	line := eventLine{
		V: JSONLSchemaVersion, Type: "event",
		T: ev.Time, Kind: ev.Kind, Task: ev.TaskID, Seq: ev.Seq,
		Mode: ev.Mode, Detail: ev.Detail,
	}
	switch ev.Kind {
	case KindDispatch, KindSegment, KindFault:
		lv := ev.Level
		line.Level = &lv
	}
	if ev.Kind == KindSegment {
		st := ev.Start
		line.Start = &st
	}
	jw.encode(&line)
}

// decisionWire builds the schema-v1 wire form of d. The infinite Until
// ("run until the next event") is omitted rather than encoded — JSON has
// no Inf — which is why the flight recorder dump reuses this form too.
func decisionWire(d DecisionRecord) decisionLine {
	line := decisionLine{
		V: JSONLSchemaVersion, Type: "decision",
		T: d.Time, Policy: d.Policy, Task: d.TaskID, Seq: d.Seq,
		Deadline: d.Deadline, Slack: d.Slack,
		Stored: d.Stored, Predicted: d.Predicted, Available: d.Available,
		S1: d.S1, S2: d.S2, Level: d.Level, Speed: d.Speed,
		Reason: d.Reason,
	}
	if !math.IsInf(d.Until, 0) {
		u := d.Until
		line.Until = &u
	}
	return line
}

// OnDecision implements Probe.
func (jw *JSONLWriter) OnDecision(d DecisionRecord) {
	line := decisionWire(d)
	jw.encode(&line)
}

// OnSpan implements SpanSink: spans interleave with events and decisions
// in the same stream as v1.1 lines.
func (jw *JSONLWriter) OnSpan(sp Span) {
	jw.encode(&spanLine{V: JSONLSpanVersion, Type: "span", Span: sp})
}

func (jw *JSONLWriter) encode(line any) {
	jw.mu.Lock()
	if jw.err == nil {
		jw.err = jw.enc.Encode(line)
	}
	jw.mu.Unlock()
}

// Flush drains the buffer and returns the first error encountered by any
// write.
func (jw *JSONLWriter) Flush() error {
	jw.mu.Lock()
	defer jw.mu.Unlock()
	if err := jw.w.Flush(); err != nil && jw.err == nil {
		jw.err = err
	}
	return jw.err
}

// CheckJSONL validates a schema-v1/v1.1 stream line by line and returns
// the number of valid lines: event and decision lines must carry "v":1,
// span lines "v":1.1. The first malformed line fails the whole stream
// with its line number. Empty streams are valid (a run can emit nothing).
func CheckJSONL(r io.Reader) (int, error) {
	knownKinds := make(map[EventKind]bool)
	for _, k := range KnownEventKinds() {
		knownKinds[k] = true
	}
	knownReasons := make(map[Reason]bool)
	for _, rs := range KnownReasons() {
		knownReasons[rs] = true
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	n := 0
	lineNo := 0
	for sc.Scan() {
		lineNo++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var head struct {
			V    float64 `json:"v"`
			Type string  `json:"type"`
		}
		if err := json.Unmarshal(raw, &head); err != nil {
			return n, fmt.Errorf("obs: line %d: not a JSON object: %w", lineNo, err)
		}
		wantV := float64(JSONLSchemaVersion)
		if head.Type == "span" {
			wantV = JSONLSpanVersion
		}
		if head.V != wantV {
			return n, fmt.Errorf("obs: line %d: schema version %v, want %v for %q lines", lineNo, head.V, wantV, head.Type)
		}
		switch head.Type {
		case "event":
			var ev eventLine
			if err := strictUnmarshal(raw, &ev); err != nil {
				return n, fmt.Errorf("obs: line %d: bad event: %w", lineNo, err)
			}
			if !knownKinds[ev.Kind] {
				return n, fmt.Errorf("obs: line %d: unknown event kind %q", lineNo, ev.Kind)
			}
			if math.IsNaN(ev.T) || math.IsInf(ev.T, 0) {
				return n, fmt.Errorf("obs: line %d: non-finite time", lineNo)
			}
		case "decision":
			var d decisionLine
			if err := strictUnmarshal(raw, &d); err != nil {
				return n, fmt.Errorf("obs: line %d: bad decision: %w", lineNo, err)
			}
			if !knownReasons[d.Reason] {
				return n, fmt.Errorf("obs: line %d: unknown reason code %q", lineNo, d.Reason)
			}
			if d.Policy == "" {
				return n, fmt.Errorf("obs: line %d: decision without policy", lineNo)
			}
			for _, f := range []float64{d.T, d.Slack, d.Stored, d.Available} {
				if math.IsNaN(f) || math.IsInf(f, 0) {
					return n, fmt.Errorf("obs: line %d: non-finite numeric field", lineNo)
				}
			}
		case "span":
			var sl spanLine
			if err := strictUnmarshal(raw, &sl); err != nil {
				return n, fmt.Errorf("obs: line %d: bad span: %w", lineNo, err)
			}
			if err := sl.Span.Validate(); err != nil {
				return n, fmt.Errorf("obs: line %d: %w", lineNo, err)
			}
		default:
			return n, fmt.Errorf("obs: line %d: unknown line type %q", lineNo, head.Type)
		}
		n++
	}
	if err := sc.Err(); err != nil {
		return n, fmt.Errorf("obs: reading stream: %w", err)
	}
	return n, nil
}

// strictUnmarshal rejects fields outside the schema struct, so a typo'd
// producer fails validation instead of silently passing.
func strictUnmarshal(raw []byte, into any) error {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	return dec.Decode(into)
}
