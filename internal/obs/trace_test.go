package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	sc := SpanContext{Trace: NewTraceID(), Span: NewSpanID(), Sampled: true}
	hdr := sc.Traceparent()
	if len(hdr) != 55 {
		t.Fatalf("traceparent %q: len %d, want 55", hdr, len(hdr))
	}
	got, err := ParseTraceparent(hdr)
	if err != nil {
		t.Fatalf("ParseTraceparent(%q): %v", hdr, err)
	}
	if got != sc {
		t.Fatalf("round trip: got %+v, want %+v", got, sc)
	}
}

func TestParseTraceparentRejectsMalformed(t *testing.T) {
	valid := SpanContext{Trace: NewTraceID(), Span: NewSpanID(), Sampled: true}.Traceparent()
	bad := map[string]string{
		"empty":            "",
		"short":            valid[:54],
		"long":             valid + "0",
		"version 01":       "01" + valid[2:],
		"version ff":       "ff" + valid[2:],
		"uppercase hex":    strings.ToUpper(valid),
		"bad separator":    valid[:2] + "_" + valid[3:],
		"non-hex trace":    valid[:3] + "g" + valid[4:],
		"all-zero trace":   "00-00000000000000000000000000000000-" + valid[36:],
		"all-zero span":    valid[:36] + "0000000000000000-01",
		"missing sections": "00-abc",
	}
	for name, in := range bad {
		if _, err := ParseTraceparent(in); err == nil {
			t.Errorf("%s: ParseTraceparent(%q) accepted malformed input", name, in)
		}
	}
}

func TestSpanJSONRoundTrip(t *testing.T) {
	sp := Span{
		Trace:    NewTraceID(),
		ID:       NewSpanID(),
		Parent:   NewSpanID(),
		Name:     "engine",
		Service:  "easerve",
		Start:    time.Unix(1700000000, 123456789),
		Duration: 42 * time.Millisecond,
		Attrs:    map[string]string{"outcome": "ok"},
	}
	raw, err := json.Marshal(sp)
	if err != nil {
		t.Fatal(err)
	}
	var got Span
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if got.Trace != sp.Trace || got.ID != sp.ID || got.Parent != sp.Parent ||
		got.Name != sp.Name || got.Service != sp.Service ||
		!got.Start.Equal(sp.Start) || got.Duration != sp.Duration ||
		got.Attrs["outcome"] != "ok" {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, sp)
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("round-tripped span invalid: %v", err)
	}
}

func TestStartSpanNilSinkIsNoOp(t *testing.T) {
	sp := StartSpan(nil, "svc", "noop", SpanContext{})
	if sp != nil {
		t.Fatalf("StartSpan(nil sink) = %v, want nil", sp)
	}
	// Every method must be nil-safe: this is the disabled hot path.
	sp.SetAttr("k", "v")
	sp.SetInt("n", 1)
	sp.SetFloat("f", 1.5)
	sp.SetBool("b", true)
	sp.End()
	if sc := sp.Context(); sc.Valid() {
		t.Fatalf("nil span has valid context %+v", sc)
	}
}

func TestStartSpanParentage(t *testing.T) {
	rec := NewRecorder()
	root := StartSpan(rec, "eactl", "sweep", SpanContext{})
	child := StartSpan(rec, "eactl", "shard", root.Context())
	child.End()
	root.End()
	spans := rec.Spans()
	if len(spans) != 2 {
		t.Fatalf("recorded %d spans, want 2", len(spans))
	}
	// Children flush before their parents (child ended first).
	if spans[0].Parent != spans[1].ID {
		t.Fatalf("child parent %s, want root %s", spans[0].Parent, spans[1].ID)
	}
	if spans[0].Trace != spans[1].Trace {
		t.Fatalf("child trace %s != root trace %s", spans[0].Trace, spans[1].Trace)
	}
}

func TestSpanHeaderRoundTrip(t *testing.T) {
	spans := []Span{
		{Trace: NewTraceID(), ID: NewSpanID(), Name: "a", Service: "s", Start: time.Unix(1, 0)},
		{Trace: NewTraceID(), ID: NewSpanID(), Name: "b", Service: "s", Start: time.Unix(2, 0), Duration: time.Second},
	}
	hdr := EncodeSpanHeader(spans)
	got, err := DecodeSpanHeader(hdr)
	if err != nil {
		t.Fatalf("DecodeSpanHeader: %v", err)
	}
	if len(got) != 2 || got[0].Name != "a" || got[1].Duration != time.Second {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if out, err := DecodeSpanHeader(""); err != nil || out != nil {
		t.Fatalf("empty header: (%v, %v), want (nil, nil)", out, err)
	}
	if _, err := DecodeSpanHeader("!!!not base64!!!"); err == nil {
		t.Fatal("garbage header decoded without error")
	}
}
