package obs

import (
	"strings"
	"testing"
	"time"
)

// mkSpan builds a test span with deterministic-ish structure; IDs come
// from the real generator so validity invariants hold.
func mkSpan(trace TraceID, parent SpanID, name, service string, start time.Time, d time.Duration, attrs map[string]string) Span {
	return Span{
		Trace: trace, ID: NewSpanID(), Parent: parent,
		Name: name, Service: service, Start: start, Duration: d, Attrs: attrs,
	}
}

func TestStitchSpansBuildsTree(t *testing.T) {
	trace := NewTraceID()
	base := time.Unix(1000, 0)
	root := mkSpan(trace, SpanID{}, "sweep", "eactl", base, 10*time.Second, nil)
	shard := mkSpan(trace, root.ID, "shard", "eactl", base.Add(time.Second), 8*time.Second, nil)
	attempt := mkSpan(trace, shard.ID, "attempt", "eactl", base.Add(2*time.Second), 6*time.Second, nil)
	// Deliberately shuffled input order: stitching must not depend on it.
	tree := StitchSpans([]Span{attempt, root, shard})
	if tree.Spans != 3 || tree.Traces != 1 || tree.Orphans != 0 {
		t.Fatalf("tree stats: %d spans, %d traces, %d orphans", tree.Spans, tree.Traces, tree.Orphans)
	}
	if len(tree.Roots) != 1 || tree.Roots[0].Span.ID != root.ID {
		t.Fatalf("want single root %s, got %+v", root.ID, tree.Roots)
	}
	n := tree.Roots[0]
	if len(n.Children) != 1 || n.Children[0].Span.ID != shard.ID {
		t.Fatalf("shard not under root")
	}
	if len(n.Children[0].Children) != 1 || n.Children[0].Children[0].Span.ID != attempt.ID {
		t.Fatalf("attempt not under shard")
	}
}

// A span whose parent never arrived (worker SIGKILLed before responding)
// must surface as an orphaned root, not vanish.
func TestStitchSpansOrphans(t *testing.T) {
	trace := NewTraceID()
	base := time.Unix(1000, 0)
	lost := NewSpanID() // parent that never arrived
	orphan := mkSpan(trace, lost, "engine", "easerve", base, time.Second, nil)
	root := mkSpan(trace, SpanID{}, "sweep", "eactl", base, 2*time.Second, nil)
	tree := StitchSpans([]Span{orphan, root})
	if tree.Orphans != 1 {
		t.Fatalf("orphans = %d, want 1", tree.Orphans)
	}
	var found *SpanNode
	for _, r := range tree.Roots {
		if r.Span.ID == orphan.ID {
			found = r
		}
	}
	if found == nil || !found.Orphan {
		t.Fatalf("orphan span not promoted to flagged root: %+v", tree.Roots)
	}
	var out strings.Builder
	tree.Format(&out)
	if !strings.Contains(out.String(), "orphan: parent "+lost.String()+" missing") {
		t.Fatalf("formatted tree does not tag the orphan:\n%s", out.String())
	}
}

// A worker whose wall clock runs behind the coordinator's produces child
// spans that "start before" their parent; the stitcher must keep the
// structure and flag the skew instead of trusting either clock.
func TestStitchSpansClockSkew(t *testing.T) {
	trace := NewTraceID()
	base := time.Unix(1000, 0)
	parent := mkSpan(trace, SpanID{}, "attempt", "eactl", base, 5*time.Second, nil)
	// Worker clock 2s behind: its span starts "before" its parent.
	child := mkSpan(trace, parent.ID, "request:sweep", "easerve", base.Add(-2*time.Second), time.Second, nil)
	tree := StitchSpans([]Span{parent, child})
	if len(tree.Roots) != 1 || len(tree.Roots[0].Children) != 1 {
		t.Fatalf("skewed child detached from parent: %+v", tree.Roots)
	}
	n := tree.Roots[0].Children[0]
	if n.Skew != 2*time.Second {
		t.Fatalf("skew = %s, want 2s", n.Skew)
	}
	var out strings.Builder
	tree.Format(&out)
	if !strings.Contains(out.String(), "clock skew") {
		t.Fatalf("formatted tree does not flag skew:\n%s", out.String())
	}
}

// A hedged loser cancelled mid-flight emits its attempt span from the
// coordinator; if the loser's response still arrived, the worker spans
// can show up twice. Dedup must keep the tree sane, and the cancelled
// attempt must remain visible with its outcome.
func TestStitchSpansHedgedLoser(t *testing.T) {
	trace := NewTraceID()
	base := time.Unix(1000, 0)
	shard := mkSpan(trace, SpanID{}, "shard", "eactl", base, 4*time.Second, nil)
	winner := mkSpan(trace, shard.ID, "attempt", "eactl", base, 3*time.Second,
		map[string]string{"outcome": "ok", "hedge": "false"})
	loser := mkSpan(trace, shard.ID, "attempt", "eactl", base.Add(time.Second), time.Second,
		map[string]string{"outcome": "cancelled", "hedge": "true"})
	workerSpan := mkSpan(trace, winner.ID, "request:sweep", "easerve", base, 2*time.Second, nil)
	// The winner's worker spans arrive once via the winning response and
	// again via a late loser response that duplicated the header.
	tree := StitchSpans([]Span{shard, winner, loser, workerSpan, workerSpan})
	if tree.Spans != 4 {
		t.Fatalf("dedup failed: %d spans, want 4", tree.Spans)
	}
	root := tree.Roots[0]
	if len(root.Children) != 2 {
		t.Fatalf("shard has %d attempts, want 2", len(root.Children))
	}
	var sawCancelled bool
	tree.Walk(func(n *SpanNode, depth int) {
		if n.Span.Attrs["outcome"] == "cancelled" {
			sawCancelled = true
			if len(n.Children) != 0 {
				t.Fatalf("cancelled loser acquired children: %+v", n.Children)
			}
		}
	})
	if !sawCancelled {
		t.Fatal("cancelled hedge attempt missing from tree")
	}
}
