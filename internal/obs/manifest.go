package obs

import (
	"encoding/json"
	"fmt"
	"os"

	"github.com/eadvfs/eadvfs/internal/buildinfo"
	"github.com/eadvfs/eadvfs/internal/digest"
)

// ManifestSchemaVersion is the run-manifest schema version.
const ManifestSchemaVersion = 1

// Manifest records everything needed to reproduce a run: the tool and
// build that produced it (go version, VCS revision, dirty bit), the
// policy and seeds, and the full serialized configuration together with
// its SHA-256 digest. A figure whose artifact carries a manifest can be
// regenerated bit-identically by feeding the embedded config back into the
// same tool (easim -replay); the digest ties result files to the exact
// configuration that produced them.
type Manifest struct {
	Schema      int    `json:"schema"`
	Tool        string `json:"tool"`
	GoVersion   string `json:"go_version"`
	VCSRevision string `json:"vcs_revision,omitempty"`
	VCSTime     string `json:"vcs_time,omitempty"`
	VCSDirty    bool   `json:"vcs_dirty"`

	// Policy names the scheduling policy (or experiment) of the run.
	Policy string `json:"policy,omitempty"`
	// Seeds are the named deterministic seeds of the run (e.g. "seed",
	// "fault-seed").
	Seeds map[string]uint64 `json:"seeds,omitempty"`

	// Config is the run's full serialized configuration; Digest is the
	// lowercase hex SHA-256 of its compact (whitespace-free) form, so the
	// digest survives re-indentation by pretty printers.
	Config json.RawMessage `json:"config"`
	Digest string          `json:"config_digest"`
}

// NewManifest builds a manifest for the named tool around config, which
// must be JSON-marshalable. Build identity comes from
// debug.ReadBuildInfo (via internal/buildinfo).
func NewManifest(tool, policy string, seeds map[string]uint64, config any) (*Manifest, error) {
	raw, err := json.Marshal(config)
	if err != nil {
		return nil, fmt.Errorf("obs: manifest config: %w", err)
	}
	bi := buildinfo.Get()
	return &Manifest{
		Schema:      ManifestSchemaVersion,
		Tool:        tool,
		GoVersion:   bi.GoVersion,
		VCSRevision: bi.Revision,
		VCSTime:     bi.Time,
		VCSDirty:    bi.Dirty,
		Policy:      policy,
		Seeds:       seeds,
		Config:      raw,
		Digest:      digest.Compact(raw),
	}, nil
}

// Validate checks the manifest's schema version and that the digest
// matches the embedded config bytes.
func (m *Manifest) Validate() error {
	if m.Schema != ManifestSchemaVersion {
		return fmt.Errorf("obs: manifest schema %d, want %d", m.Schema, ManifestSchemaVersion)
	}
	if len(m.Config) == 0 {
		return fmt.Errorf("obs: manifest without config")
	}
	if got := digest.Compact(m.Config); got != m.Digest {
		return fmt.Errorf("obs: manifest digest mismatch: config hashes to %s, manifest says %s", got, m.Digest)
	}
	return nil
}

// DecodeConfig unmarshals the embedded configuration into the target,
// rejecting fields the target does not declare (a manifest from a newer
// config schema fails loudly instead of silently dropping settings).
func (m *Manifest) DecodeConfig(into any) error {
	if err := strictUnmarshal(m.Config, into); err != nil {
		return fmt.Errorf("obs: manifest config: %w", err)
	}
	return nil
}

// WriteFile writes the manifest as indented JSON.
func (m *Manifest) WriteFile(path string) error {
	buf, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: manifest: %w", err)
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// ReadManifest loads and validates a manifest file.
func ReadManifest(path string) (*Manifest, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("obs: manifest %s: %w", path, err)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("%w (in %s)", err, path)
	}
	return &m, nil
}
