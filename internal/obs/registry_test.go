package obs

import (
	"math"
	"strings"
	"testing"
)

func TestLabeled(t *testing.T) {
	if got := Labeled("x_total"); got != "x_total" {
		t.Fatalf("unlabeled: got %q", got)
	}
	if got := Labeled("x_total", "kind", "arrival"); got != `x_total{kind="arrival"}` {
		t.Fatalf("one label: got %q", got)
	}
	if got := Labeled("x", "a", "1", "b", "2"); got != `x{a="1",b="2"}` {
		t.Fatalf("two labels: got %q", got)
	}
}

func TestRegistrationIsIdempotent(t *testing.T) {
	reg := NewRegistry()
	c1 := reg.Counter("runs_total", "runs")
	c1.Inc()
	c2 := reg.Counter("runs_total", "runs")
	c2.Add(2)
	if got := c1.Value(); got != 3 {
		t.Fatalf("handles to the same series must share state, got %v", got)
	}
}

func TestTypeConflictPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge must panic")
		}
	}()
	reg.Gauge("x_total", "")
}

func TestCounterDecreasesPanics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("x_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("negative counter increment must panic")
		}
	}()
	c.Add(-1)
}

func TestSummaryStats(t *testing.T) {
	reg := NewRegistry()
	s := reg.Summary("obs", "")
	for _, v := range []float64{1, 2, 3, 4} {
		s.Observe(v)
	}
	if s.Count() != 4 || math.Abs(s.Mean()-2.5) > 1e-12 {
		t.Fatalf("count %d mean %v, want 4 and 2.5", s.Count(), s.Mean())
	}
}

func TestWritePrometheus(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(Labeled("ev_total", "kind", "a"), "events").Add(2)
	reg.Counter(Labeled("ev_total", "kind", "b"), "events") // stays 0
	reg.Gauge("temp", "").Set(-1.5)
	s := reg.Summary("lat", "latency")
	s.Observe(1)
	s.Observe(3)
	h := reg.Histogram("lvl", "levels", 0, 4, 2)
	h.Observe(0.5)
	h.Observe(3.5)
	h.Observe(9) // clamps into the top bucket

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := `# HELP ev_total events
# TYPE ev_total counter
ev_total{kind="a"} 2
ev_total{kind="b"} 0
# TYPE temp gauge
temp -1.5
# HELP lat latency
# TYPE lat summary
lat_sum 4
lat_count 2
# HELP lvl levels
# TYPE lvl histogram
lvl_bucket{le="2"} 1
lvl_bucket{le="4"} 3
lvl_bucket{le="+Inf"} 3
lvl_sum 13
lvl_count 3
`
	if got != want {
		t.Fatalf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestMetricsProbe(t *testing.T) {
	reg := NewRegistry()
	p := NewMetricsProbe(reg)

	p.OnEvent(Event{Kind: KindArrival})
	p.OnEvent(Event{Kind: KindArrival})
	p.OnEvent(Event{Kind: KindMiss})
	p.OnEvent(Event{Kind: EventKind("bogus")}) // ignored, not counted

	p.OnDecision(DecisionRecord{Reason: ReasonIdleRecharge, Level: -1, Slack: 10})
	p.OnDecision(DecisionRecord{Reason: ReasonStretchSlackRich, Level: 2, Speed: 0.6, Slack: 4})

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`eadvfs_events_total{kind="arrival"} 2`,
		`eadvfs_events_total{kind="miss"} 1`,
		`eadvfs_events_total{kind="stall"} 0`, // pre-registered, quiet run
		`eadvfs_decisions_total{reason="idle:recharge"} 1`,
		`eadvfs_decisions_total{reason="stretch:slack-rich"} 1`,
		`eadvfs_decisions_total{reason="full-speed:infeasible"} 0`,
		`eadvfs_decision_slack_count 2`,
		`eadvfs_decision_level_count 1`, // idle decisions stay out of the level histogram
	} {
		if !strings.Contains(out, want+"\n") {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}
