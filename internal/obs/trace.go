package obs

// Distributed tracing primitives for the sweep fabric (DESIGN.md §15).
//
// The model is deliberately tiny and dependency-free: a span is a named
// wall-clock interval with a 128-bit trace ID shared by every span of one
// sweep, a 64-bit span ID, and an optional parent link. Context crosses
// process boundaries as a W3C `traceparent` header (version 00 only), so
// any standards-compliant proxy or collector between eactl and easerve
// keeps the correlation intact.
//
// Spans follow the same philosophy as the Probe interface: producers hold
// a SpanSink and emission is nil-guarded at the call site via StartSpan,
// which returns a nil *ActiveSpan when the sink is nil. Every ActiveSpan
// method is safe on a nil receiver, so the disabled path is a pointer
// test — no allocation, no interface call.

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/base64"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strconv"
	"sync"
	"time"
)

// TraceID is a 128-bit trace identifier shared by every span of one
// logical operation (one sweep, one request). The all-zero value is
// invalid, per W3C trace-context.
type TraceID [16]byte

// SpanID is a 64-bit span identifier, unique within a trace. The all-zero
// value is invalid and doubles as "no parent".
type SpanID [8]byte

// IsZero reports whether the trace ID is the invalid all-zero value.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String returns the 32-char lowercase hex form.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// IsZero reports whether the span ID is the invalid all-zero value.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String returns the 16-char lowercase hex form.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// MarshalText implements encoding.TextMarshaler (lowercase hex).
func (t TraceID) MarshalText() ([]byte, error) {
	b := make([]byte, 32)
	hex.Encode(b, t[:])
	return b, nil
}

// UnmarshalText parses the 32-char lowercase hex form. The all-zero ID is
// accepted here (it round-trips); validity is the caller's concern.
func (t *TraceID) UnmarshalText(b []byte) error {
	return unhex(t[:], b, "trace id")
}

// MarshalText implements encoding.TextMarshaler (lowercase hex).
func (s SpanID) MarshalText() ([]byte, error) {
	b := make([]byte, 16)
	hex.Encode(b, s[:])
	return b, nil
}

// UnmarshalText parses the 16-char lowercase hex form.
func (s *SpanID) UnmarshalText(b []byte) error {
	return unhex(s[:], b, "span id")
}

// unhex decodes exactly len(dst)*2 lowercase hex chars into dst.
func unhex(dst, src []byte, what string) error {
	if len(src) != 2*len(dst) {
		return fmt.Errorf("obs: %s must be %d hex chars, got %d", what, 2*len(dst), len(src))
	}
	for _, c := range src {
		// encoding/hex accepts uppercase; traceparent does not.
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return fmt.Errorf("obs: %s has non-lowercase-hex char %q", what, c)
		}
	}
	_, err := hex.Decode(dst, src)
	return err
}

// idSource hands out random IDs from a buffered crypto/rand block so a
// burst of spans does not mean a syscall per span.
var idSource struct {
	sync.Mutex
	buf [512]byte
	n   int // bytes of buf consumed
}

func randomID(dst []byte) {
	idSource.Lock()
	defer idSource.Unlock()
	for {
		if idSource.n == 0 || idSource.n+len(dst) > len(idSource.buf) {
			if _, err := rand.Read(idSource.buf[:]); err != nil {
				panic("obs: crypto/rand failed: " + err.Error())
			}
			idSource.n = 0
		}
		copy(dst, idSource.buf[idSource.n:idSource.n+len(dst)])
		idSource.n += len(dst)
		// The all-zero ID is reserved as invalid; redraw on the
		// astronomically unlikely hit.
		zero := true
		for _, b := range dst {
			if b != 0 {
				zero = false
				break
			}
		}
		if !zero {
			return
		}
	}
}

// NewTraceID returns a fresh random (non-zero) trace ID.
func NewTraceID() TraceID {
	var t TraceID
	randomID(t[:])
	return t
}

// NewSpanID returns a fresh random (non-zero) span ID.
func NewSpanID() SpanID {
	var s SpanID
	randomID(s[:])
	return s
}

// SpanContext is the propagated part of a span: enough to parent remote
// children and to serialize as a traceparent header.
type SpanContext struct {
	Trace   TraceID
	Span    SpanID
	Sampled bool
}

// Valid reports whether both IDs are non-zero.
func (sc SpanContext) Valid() bool { return !sc.Trace.IsZero() && !sc.Span.IsZero() }

// Traceparent renders the W3C header value:
// "00-<32 hex trace>-<16 hex span>-<2 hex flags>".
func (sc SpanContext) Traceparent() string {
	b := make([]byte, 0, 55)
	b = append(b, "00-"...)
	b = hex.AppendEncode(b, sc.Trace[:])
	b = append(b, '-')
	b = hex.AppendEncode(b, sc.Span[:])
	if sc.Sampled {
		b = append(b, "-01"...)
	} else {
		b = append(b, "-00"...)
	}
	return string(b)
}

// ParseTraceparent parses a W3C traceparent header value strictly:
// version 00, lowercase hex only, exact field widths, non-zero trace and
// span IDs. Anything else is an error — a malformed header means the
// request is served untraced, never half-traced.
func ParseTraceparent(s string) (SpanContext, error) {
	var sc SpanContext
	if len(s) != 55 {
		return sc, fmt.Errorf("obs: traceparent must be 55 chars, got %d", len(s))
	}
	if s[0] != '0' || s[1] != '0' {
		return sc, fmt.Errorf("obs: unsupported traceparent version %q", s[:2])
	}
	if s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return sc, fmt.Errorf("obs: traceparent field separators misplaced")
	}
	if err := unhex(sc.Trace[:], []byte(s[3:35]), "traceparent trace id"); err != nil {
		return SpanContext{}, err
	}
	if err := unhex(sc.Span[:], []byte(s[36:52]), "traceparent span id"); err != nil {
		return SpanContext{}, err
	}
	var flags [1]byte
	if err := unhex(flags[:], []byte(s[53:55]), "traceparent flags"); err != nil {
		return SpanContext{}, err
	}
	if sc.Trace.IsZero() {
		return SpanContext{}, fmt.Errorf("obs: traceparent trace id is all-zero")
	}
	if sc.Span.IsZero() {
		return SpanContext{}, fmt.Errorf("obs: traceparent span id is all-zero")
	}
	sc.Sampled = flags[0]&0x01 != 0
	return sc, nil
}

// Span is one completed wall-clock interval. Start carries the producing
// process's wall clock (workers and coordinator may disagree — the
// stitcher detects and flags skew); Duration is measured on that
// process's monotonic clock. Attrs carry small key/value details such as
// worker URL, retry ordinal, cache outcome, and sim-time phase
// boundaries.
type Span struct {
	Trace    TraceID
	ID       SpanID
	Parent   SpanID // zero = root
	Name     string
	Service  string // emitting component: "eactl", "easerve", "experiment", "sim"
	Start    time.Time
	Duration time.Duration
	Attrs    map[string]string
}

// Context returns the span's propagation context (always sampled: a span
// that exists was sampled by construction).
func (sp Span) Context() SpanContext {
	return SpanContext{Trace: sp.Trace, Span: sp.ID, Sampled: true}
}

// End returns the span's wall-clock end time.
func (sp Span) End() time.Time { return sp.Start.Add(sp.Duration) }

// spanWire is the single JSON representation of a Span, shared by the
// JSONL exporter, the X-Trace-Spans response header and the flight-
// recorder dump. Start is integer unix nanoseconds so byte-identical
// re-encoding never depends on time.Time formatting.
type spanWire struct {
	Trace   TraceID           `json:"trace"`
	ID      SpanID            `json:"id"`
	Parent  string            `json:"parent,omitempty"`
	Name    string            `json:"name"`
	Service string            `json:"service"`
	StartNs int64             `json:"start_unix_ns"`
	DurNs   int64             `json:"dur_ns"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// MarshalJSON implements json.Marshaler using the wire form above.
func (sp Span) MarshalJSON() ([]byte, error) {
	w := spanWire{
		Trace:   sp.Trace,
		ID:      sp.ID,
		Name:    sp.Name,
		Service: sp.Service,
		StartNs: sp.Start.UnixNano(),
		DurNs:   int64(sp.Duration),
		Attrs:   sp.Attrs,
	}
	if !sp.Parent.IsZero() {
		w.Parent = sp.Parent.String()
	}
	return json.Marshal(w)
}

// UnmarshalJSON implements json.Unmarshaler strictly: unknown fields are
// rejected, hex fields must be exact-width lowercase.
func (sp *Span) UnmarshalJSON(b []byte) error {
	var w spanWire
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&w); err != nil {
		return err
	}
	*sp = Span{
		Trace:    w.Trace,
		ID:       w.ID,
		Name:     w.Name,
		Service:  w.Service,
		Start:    time.Unix(0, w.StartNs),
		Duration: time.Duration(w.DurNs),
		Attrs:    w.Attrs,
	}
	if w.Parent != "" {
		if err := sp.Parent.UnmarshalText([]byte(w.Parent)); err != nil {
			return err
		}
	}
	return nil
}

// Validate checks the structural invariants a well-formed span record
// must satisfy; CheckJSONL applies it to every span line.
func (sp Span) Validate() error {
	if sp.Trace.IsZero() {
		return fmt.Errorf("obs: span trace id is all-zero")
	}
	if sp.ID.IsZero() {
		return fmt.Errorf("obs: span id is all-zero")
	}
	if sp.ID == sp.Parent {
		return fmt.Errorf("obs: span %s is its own parent", sp.ID)
	}
	if sp.Name == "" {
		return fmt.Errorf("obs: span %s has empty name", sp.ID)
	}
	if sp.Service == "" {
		return fmt.Errorf("obs: span %s has empty service", sp.ID)
	}
	if sp.Duration < 0 {
		return fmt.Errorf("obs: span %s has negative duration %d", sp.ID, sp.Duration)
	}
	return nil
}

// SpanSink receives completed spans. Implementations must be safe for
// concurrent use; OnSpan must not retain or mutate Attrs after returning
// unless it owns the copy.
type SpanSink interface {
	OnSpan(Span)
}

// TraceCarrier is implemented by probes or sinks that know the span
// context their spans should be parented under. The engine and the
// experiment runner ask their Probe/SpanSink for a parent this way, so
// no new field threads through sim.Config.
type TraceCarrier interface {
	TraceParent() SpanContext
}

// SpanParentOf extracts a parent span context from v if it carries one
// (see TraceCarrier); otherwise it returns the zero (invalid) context.
func SpanParentOf(v any) SpanContext {
	if tc, ok := v.(TraceCarrier); ok {
		return tc.TraceParent()
	}
	return SpanContext{}
}

// ActiveSpan is an in-flight span. Obtain one from StartSpan; call End
// exactly once to emit it. A nil *ActiveSpan (tracing disabled) is valid:
// every method is a no-op, so call sites need no guards.
type ActiveSpan struct {
	sink  SpanSink
	span  Span
	ended bool
}

// StartSpan begins a span under parent (a fresh trace when parent is
// invalid) and returns nil when sink is nil — the entire disabled path is
// this one pointer comparison.
func StartSpan(sink SpanSink, service, name string, parent SpanContext) *ActiveSpan {
	if sink == nil {
		return nil
	}
	a := &ActiveSpan{sink: sink}
	a.span.Name = name
	a.span.Service = service
	if parent.Valid() {
		a.span.Trace = parent.Trace
		a.span.Parent = parent.Span
	} else {
		a.span.Trace = NewTraceID()
	}
	a.span.ID = NewSpanID()
	a.span.Start = time.Now()
	return a
}

// Context returns the propagation context for parenting children or
// injecting a traceparent header. Zero (invalid) on a nil receiver.
func (a *ActiveSpan) Context() SpanContext {
	if a == nil {
		return SpanContext{}
	}
	return SpanContext{Trace: a.span.Trace, Span: a.span.ID, Sampled: true}
}

// SetAttr records a string attribute. No-op on a nil receiver or after End.
func (a *ActiveSpan) SetAttr(k, v string) {
	if a == nil || a.ended {
		return
	}
	if a.span.Attrs == nil {
		a.span.Attrs = make(map[string]string, 4)
	}
	a.span.Attrs[k] = v
}

// SetInt records an integer attribute. The nil/ended check precedes the
// formatting: a disabled span must not pay the strconv allocation.
func (a *ActiveSpan) SetInt(k string, v int64) {
	if a == nil || a.ended {
		return
	}
	a.SetAttr(k, strconv.FormatInt(v, 10))
}

// SetFloat records a float attribute ('g' format, full precision).
func (a *ActiveSpan) SetFloat(k string, v float64) {
	if a == nil || a.ended {
		return
	}
	a.SetAttr(k, strconv.FormatFloat(v, 'g', -1, 64))
}

// SetBool records a boolean attribute.
func (a *ActiveSpan) SetBool(k string, v bool) {
	if a == nil || a.ended {
		return
	}
	a.SetAttr(k, strconv.FormatBool(v))
}

// End completes the span and hands it to the sink. Idempotent; no-op on
// a nil receiver.
func (a *ActiveSpan) End() {
	if a == nil || a.ended {
		return
	}
	a.ended = true
	a.span.Duration = time.Since(a.span.Start)
	a.sink.OnSpan(a.span)
}

// SpanHeader is the HTTP response header a traced easerve worker uses to
// ship its request's spans back to the coordinator. Spans travel in a
// header, never in the body, because cached response bodies are
// byte-identical by contract (DESIGN.md §12) and tracing must not change
// a response's cache identity.
const SpanHeader = "X-Trace-Spans"

// EncodeSpanHeader renders spans as the SpanHeader value:
// base64(JSON array of span wire forms). Returns "" for no spans.
func EncodeSpanHeader(spans []Span) string {
	if len(spans) == 0 {
		return ""
	}
	b, err := json.Marshal(spans)
	if err != nil {
		return "" // spans marshal from plain values; unreachable in practice
	}
	return base64.StdEncoding.EncodeToString(b)
}

// DecodeSpanHeader parses an EncodeSpanHeader value. An empty value
// yields no spans and no error.
func DecodeSpanHeader(v string) ([]Span, error) {
	if v == "" {
		return nil, nil
	}
	b, err := base64.StdEncoding.DecodeString(v)
	if err != nil {
		return nil, fmt.Errorf("obs: span header: %w", err)
	}
	var spans []Span
	if err := json.Unmarshal(b, &spans); err != nil {
		return nil, fmt.Errorf("obs: span header: %w", err)
	}
	return spans, nil
}

// spanCtxKey carries a SpanContext through a context.Context across the
// transport boundary (fabric injects, HTTPTransport reads).
type spanCtxKey struct{}

// ContextWithSpan returns a context carrying sc for downstream
// propagation (e.g. header injection in HTTPTransport.Do).
func ContextWithSpan(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, sc)
}

// SpanFromContext returns the span context stored by ContextWithSpan and
// whether one was present and valid.
func SpanFromContext(ctx context.Context) (SpanContext, bool) {
	sc, ok := ctx.Value(spanCtxKey{}).(SpanContext)
	return sc, ok && sc.Valid()
}
