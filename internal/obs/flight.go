package obs

// Fleet flight recorder: a bounded, always-on ring of the most recent
// spans and decision audits inside a worker. When a sweep goes sideways,
// `GET /debug/flight` (or SIGQUIT on easerve) dumps the last moments of
// the process without having had tracing storage configured in advance —
// the same idea as an aircraft flight recorder (DESIGN.md §15).

import (
	"encoding/json"
	"sync"
)

// DefaultFlightSpans and DefaultFlightDecisions bound the recorder when
// the caller passes non-positive capacities.
const (
	DefaultFlightSpans     = 256
	DefaultFlightDecisions = 256
)

// FlightRecorder keeps the last spanCap spans and decCap decision records
// in fixed-size rings. It implements both Probe (events are counted, not
// stored; decisions are retained) and SpanSink, so one recorder can be
// fanned into any probe or trace path. Safe for concurrent use.
type FlightRecorder struct {
	mu     sync.Mutex
	spans  ring[Span]
	decs   ring[DecisionRecord]
	events uint64 // OnEvent calls observed (not retained)
}

// ring is a fixed-capacity overwrite-oldest buffer.
type ring[T any] struct {
	buf   []T
	next  int    // index of the slot the next write lands in
	total uint64 // lifetime writes
}

func (r *ring[T]) push(v T) {
	if len(r.buf) == 0 {
		return
	}
	r.buf[r.next] = v
	r.next = (r.next + 1) % len(r.buf)
	r.total++
}

// snapshot returns the retained values oldest-first.
func (r *ring[T]) snapshot() []T {
	n := int(r.total)
	if uint64(n) != r.total || n > len(r.buf) {
		n = len(r.buf)
	}
	out := make([]T, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, r.buf[(r.next-n+i+len(r.buf))%len(r.buf)])
	}
	return out
}

// NewFlightRecorder builds a recorder retaining the last spanCap spans
// and decCap decision records (defaults when non-positive).
func NewFlightRecorder(spanCap, decCap int) *FlightRecorder {
	if spanCap <= 0 {
		spanCap = DefaultFlightSpans
	}
	if decCap <= 0 {
		decCap = DefaultFlightDecisions
	}
	return &FlightRecorder{
		spans: ring[Span]{buf: make([]Span, spanCap)},
		decs:  ring[DecisionRecord]{buf: make([]DecisionRecord, decCap)},
	}
}

// OnSpan implements SpanSink.
func (f *FlightRecorder) OnSpan(sp Span) {
	f.mu.Lock()
	f.spans.push(sp)
	f.mu.Unlock()
}

// OnEvent implements Probe; events are high-volume, so only a count is
// kept — the JSONL stream is the right sink for full event logs.
func (f *FlightRecorder) OnEvent(Event) {
	f.mu.Lock()
	f.events++
	f.mu.Unlock()
}

// OnDecision implements Probe.
func (f *FlightRecorder) OnDecision(d DecisionRecord) {
	f.mu.Lock()
	f.decs.push(d)
	f.mu.Unlock()
}

// FlightDecision wraps a retained DecisionRecord so the dump encodes it
// as a schema-v1 decision line — the representation already defined for
// these records, and the one that handles the infinite Until (JSON has
// no Inf; the wire form omits the field).
type FlightDecision struct {
	DecisionRecord
}

// MarshalJSON implements json.Marshaler via the schema-v1 wire form.
func (d FlightDecision) MarshalJSON() ([]byte, error) {
	line := decisionWire(d.DecisionRecord)
	return json.Marshal(&line)
}

// FlightDump is a point-in-time snapshot of the recorder, shaped for
// direct JSON encoding by /debug/flight and the SIGQUIT handler.
type FlightDump struct {
	SpansTotal     uint64           `json:"spans_total"`     // spans ever recorded
	DecisionsTotal uint64           `json:"decisions_total"` // decisions ever recorded
	EventsTotal    uint64           `json:"events_total"`    // events observed (not retained)
	Spans          []Span           `json:"spans"`           // retained spans, oldest first
	Decisions      []FlightDecision `json:"decisions"`       // retained decisions, oldest first
}

// Snapshot copies the retained state oldest-first.
func (f *FlightRecorder) Snapshot() FlightDump {
	f.mu.Lock()
	defer f.mu.Unlock()
	raw := f.decs.snapshot()
	decs := make([]FlightDecision, len(raw))
	for i, d := range raw {
		decs[i] = FlightDecision{d}
	}
	return FlightDump{
		SpansTotal:     f.spans.total,
		DecisionsTotal: f.decs.total,
		EventsTotal:    f.events,
		Spans:          f.spans.snapshot(),
		Decisions:      decs,
	}
}
