package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// A stream containing every event kind and every reason code must
// round-trip through the validator.
func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	jw := NewJSONLWriter(&buf)
	for i, k := range KnownEventKinds() {
		jw.OnEvent(Event{Time: float64(i), Kind: k, TaskID: 1, Seq: i,
			Level: 2, Start: float64(i) - 0.5, Mode: "run", Detail: "d"})
	}
	for i, r := range KnownReasons() {
		jw.OnDecision(DecisionRecord{Time: float64(i), Policy: "ea-dvfs",
			TaskID: 1, Seq: i, Deadline: 16, Slack: 4, Stored: 24,
			Predicted: 8, Available: 32, S1: 4, S2: 12, Level: 0,
			Speed: 0.5, Until: 12, Reason: r})
	}
	if err := jw.Flush(); err != nil {
		t.Fatal(err)
	}
	want := len(KnownEventKinds()) + len(KnownReasons())
	n, err := CheckJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if n != want {
		t.Fatalf("validated %d lines, want %d", n, want)
	}
}

// An infinite "until" (run until the next event) is omitted from the wire
// form rather than encoded — JSON has no Inf.
func TestJSONLInfiniteUntilOmitted(t *testing.T) {
	var buf bytes.Buffer
	jw := NewJSONLWriter(&buf)
	jw.OnDecision(DecisionRecord{Time: 1, Policy: "lsa", TaskID: -1, Seq: -1,
		Level: -1, Until: math.Inf(1), Reason: ReasonIdleNoJob})
	if err := jw.Flush(); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "until") {
		t.Fatalf("infinite until must be omitted: %s", buf.String())
	}
	if _, err := CheckJSONL(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
}

// Conditional event fields only appear on the kinds that define them.
func TestJSONLConditionalFields(t *testing.T) {
	var buf bytes.Buffer
	jw := NewJSONLWriter(&buf)
	jw.OnEvent(Event{Time: 1, Kind: KindArrival, TaskID: 0, Seq: 0, Level: 3})
	jw.OnEvent(Event{Time: 2, Kind: KindSegment, TaskID: 0, Seq: 0, Level: 3, Start: 1.5, Mode: "run"})
	if err := jw.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	var arrival, segment map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &arrival); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(lines[1]), &segment); err != nil {
		t.Fatal(err)
	}
	if _, ok := arrival["level"]; ok {
		t.Fatal("arrival must not carry a level")
	}
	if _, ok := segment["level"]; !ok {
		t.Fatal("segment must carry its level")
	}
	if _, ok := segment["start"]; !ok {
		t.Fatal("segment must carry its start")
	}
}

func TestCheckJSONLRejections(t *testing.T) {
	cases := []struct {
		name string
		line string
	}{
		{"not json", `nope`},
		{"wrong version", `{"v":2,"type":"event","t":1,"kind":"arrival","task":0,"seq":0}`},
		{"unknown type", `{"v":1,"type":"metric","t":1}`},
		{"unknown kind", `{"v":1,"type":"event","t":1,"kind":"teleport","task":0,"seq":0}`},
		{"unknown reason", `{"v":1,"type":"decision","t":1,"policy":"p","task":0,"seq":0,"deadline":1,"slack":1,"stored":1,"predicted":0,"available":1,"s1":0,"s2":0,"level":0,"speed":1,"reason":"vibes"}`},
		{"missing policy", `{"v":1,"type":"decision","t":1,"task":0,"seq":0,"deadline":1,"slack":1,"stored":1,"predicted":0,"available":1,"s1":0,"s2":0,"level":0,"speed":1,"reason":"idle:no-job"}`},
		{"extra field", `{"v":1,"type":"event","t":1,"kind":"arrival","task":0,"seq":0,"surprise":true}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := CheckJSONL(strings.NewReader(tc.line + "\n")); err == nil {
				t.Fatalf("line %s must fail validation", tc.line)
			}
		})
	}
}

func TestCheckJSONLEmptyAndBlankLines(t *testing.T) {
	if n, err := CheckJSONL(strings.NewReader("")); err != nil || n != 0 {
		t.Fatalf("empty stream: n=%d err=%v", n, err)
	}
	stream := "\n" + `{"v":1,"type":"event","t":1,"kind":"arrival","task":0,"seq":0}` + "\n\n"
	if n, err := CheckJSONL(strings.NewReader(stream)); err != nil || n != 1 {
		t.Fatalf("blank lines must be skipped: n=%d err=%v", n, err)
	}
}

// The first bad line reports its position and validation stops there.
func TestCheckJSONLReportsLineNumber(t *testing.T) {
	stream := `{"v":1,"type":"event","t":1,"kind":"arrival","task":0,"seq":0}` + "\n" +
		`{"v":1,"type":"event","t":2,"kind":"warp","task":0,"seq":0}` + "\n"
	n, err := CheckJSONL(strings.NewReader(stream))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("want a line-2 error, got n=%d err=%v", n, err)
	}
	if n != 1 {
		t.Fatalf("one valid line before the failure, got %d", n)
	}
}
