package obs

import (
	"math"
	"testing"
)

func TestMultiNilHandling(t *testing.T) {
	if Multi() != nil {
		t.Fatal("Multi() should be nil")
	}
	if Multi(nil, nil) != nil {
		t.Fatal("Multi(nil, nil) should be nil")
	}
	r := NewRecorder()
	if got := Multi(nil, r, nil); got != Probe(r) {
		t.Fatalf("Multi with one live probe should return it directly, got %T", got)
	}
}

func TestMultiFansOut(t *testing.T) {
	a, b := NewRecorder(), NewRecorder()
	m := Multi(a, nil, b)
	m.OnEvent(Event{Time: 1, Kind: KindArrival, TaskID: 3, Seq: 0})
	m.OnDecision(DecisionRecord{Time: 1, Policy: "lsa", Reason: ReasonIdleNoJob})
	for i, rec := range []*Recorder{a, b} {
		if len(rec.Events()) != 1 || len(rec.Decisions()) != 1 {
			t.Fatalf("probe %d: got %d events, %d decisions, want 1 and 1",
				i, len(rec.Events()), len(rec.Decisions()))
		}
	}
}

func TestRecorderAccessorsCopy(t *testing.T) {
	var rec Recorder // zero value is usable
	rec.OnEvent(Event{Time: 2, Kind: KindMiss, TaskID: 1, Seq: 4})
	rec.OnDecision(DecisionRecord{Time: 2, Policy: "ea-dvfs", Reason: ReasonStretchSlackRich})

	evs := rec.Events()
	evs[0].TaskID = 99
	if rec.Events()[0].TaskID != 1 {
		t.Fatal("Events() must return a copy")
	}
	decs := rec.Decisions()
	decs[0].Policy = "tampered"
	if rec.Decisions()[0].Policy != "ea-dvfs" {
		t.Fatal("Decisions() must return a copy")
	}
}

// The known sets are part of the JSONL schema: every declared constant
// must be in its set, with no duplicates.
func TestKnownSetsAreComplete(t *testing.T) {
	kinds := KnownEventKinds()
	wantKinds := []EventKind{KindArrival, KindDispatch, KindSegment,
		KindCompletion, KindEarlyCompletion, KindMiss, KindStall,
		KindFault, KindInvariant}
	if len(kinds) != len(wantKinds) {
		t.Fatalf("KnownEventKinds has %d entries, want %d", len(kinds), len(wantKinds))
	}
	seenK := make(map[EventKind]bool)
	for _, k := range kinds {
		if seenK[k] {
			t.Fatalf("duplicate event kind %q", k)
		}
		seenK[k] = true
	}
	for _, k := range wantKinds {
		if !seenK[k] {
			t.Fatalf("event kind %q missing from KnownEventKinds", k)
		}
	}

	reasons := KnownReasons()
	wantReasons := []Reason{ReasonFullSpeedEnergyRich, ReasonFullSpeedEnergyPoor,
		ReasonFullSpeedInfeasible, ReasonStretchSlackRich, ReasonIdleRecharge,
		ReasonIdleNoJob, ReasonStretchReclaimed, ReasonFullSpeedReclaimGuard}
	if len(reasons) != len(wantReasons) {
		t.Fatalf("KnownReasons has %d entries, want %d", len(reasons), len(wantReasons))
	}
	seenR := make(map[Reason]bool)
	for _, r := range reasons {
		if seenR[r] {
			t.Fatalf("duplicate reason %q", r)
		}
		seenR[r] = true
	}
	for _, r := range wantReasons {
		if !seenR[r] {
			t.Fatalf("reason %q missing from KnownReasons", r)
		}
	}
}

func TestRecorderConcurrentSafe(t *testing.T) {
	rec := NewRecorder()
	done := make(chan struct{})
	go func() {
		for i := 0; i < 100; i++ {
			rec.OnEvent(Event{Time: float64(i), Kind: KindArrival})
		}
		close(done)
	}()
	for i := 0; i < 100; i++ {
		rec.OnDecision(DecisionRecord{Time: float64(i), Reason: ReasonIdleNoJob, Until: math.Inf(1)})
	}
	<-done
	if len(rec.Events()) != 100 || len(rec.Decisions()) != 100 {
		t.Fatalf("got %d events, %d decisions, want 100 each",
			len(rec.Events()), len(rec.Decisions()))
	}
}
