package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"

	"github.com/eadvfs/eadvfs/internal/metrics"
)

// Registry is an ordered collection of named metric series with Prometheus
// text-format exposition. Series are identified by their full exposition
// name — base name plus optional label set, e.g.
//
//	eadvfs_events_total{kind="arrival"}
//
// Series sharing a base name form one family and must share one metric
// type (HELP/TYPE are emitted per family). Registration is idempotent:
// asking for an existing series returns the same handle. All handles are
// safe for concurrent use; updates serialize on the registry's mutex.
type Registry struct {
	mu       sync.Mutex
	series   []*series
	byName   map[string]*series
	famType  map[string]string
	famHelp  map[string]string
	famOrder []string
}

type series struct {
	reg    *Registry
	base   string // family name
	labels string // label pairs without braces, "" when unlabeled
	typ    string // "counter", "gauge", "summary", "histogram"

	val float64         // counter/gauge value
	w   metrics.Welford // summary state
	sum float64         // summary/histogram running sum
	h   *metrics.Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		byName:  make(map[string]*series),
		famType: make(map[string]string),
		famHelp: make(map[string]string),
	}
}

// Labeled builds a full series name from a base name and key/value label
// pairs: Labeled("x_total", "kind", "arrival") → `x_total{kind="arrival"}`.
func Labeled(base string, kv ...string) string {
	if len(kv) == 0 {
		return base
	}
	if len(kv)%2 != 0 {
		panic("obs: Labeled needs key/value pairs")
	}
	var b strings.Builder
	b.WriteString(base)
	b.WriteByte('{')
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", kv[i], kv[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

func splitName(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], strings.TrimSuffix(name[i+1:], "}")
	}
	return name, ""
}

func (r *Registry) register(name, help, typ string) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.byName[name]; ok {
		if s.typ != typ {
			panic(fmt.Sprintf("obs: series %s re-registered as %s (was %s)", name, typ, s.typ))
		}
		return s
	}
	base, labels := splitName(name)
	if t, ok := r.famType[base]; ok {
		if t != typ {
			panic(fmt.Sprintf("obs: family %s holds %s series, not %s", base, t, typ))
		}
	} else {
		r.famType[base] = typ
		r.famHelp[base] = help
		r.famOrder = append(r.famOrder, base)
	}
	s := &series{reg: r, base: base, labels: labels, typ: typ}
	r.byName[name] = s
	r.series = append(r.series, s)
	return s
}

// Counter registers (or retrieves) a monotonically increasing series.
func (r *Registry) Counter(name, help string) *Counter {
	return &Counter{s: r.register(name, help, "counter")}
}

// Gauge registers (or retrieves) a set-anywhere series.
func (r *Registry) Gauge(name, help string) *Gauge {
	return &Gauge{s: r.register(name, help, "gauge")}
}

// Summary registers (or retrieves) a Welford-backed observation series
// exposed as <name>_sum / <name>_count (mean and stddev are available
// programmatically via Mean/StdDev).
func (r *Registry) Summary(name, help string) *Summary {
	return &Summary{s: r.register(name, help, "summary")}
}

// Histogram registers (or retrieves) a fixed-width bucket histogram over
// [lo, hi) with n buckets (metrics.Histogram semantics: out-of-range
// observations clamp into the edge buckets).
func (r *Registry) Histogram(name, help string, lo, hi float64, n int) *HistogramMetric {
	s := r.register(name, help, "histogram")
	r.mu.Lock()
	if s.h == nil {
		s.h = metrics.NewHistogram(lo, hi, n)
	}
	r.mu.Unlock()
	return &HistogramMetric{s: s}
}

// Counter is a monotonically increasing metric.
type Counter struct{ s *series }

// Add increases the counter by d (d must be >= 0).
func (c *Counter) Add(d float64) {
	if d < 0 {
		panic("obs: counter decrease")
	}
	c.s.reg.mu.Lock()
	c.s.val += d
	c.s.reg.mu.Unlock()
}

// Inc increases the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() float64 {
	c.s.reg.mu.Lock()
	defer c.s.reg.mu.Unlock()
	return c.s.val
}

// Gauge is a metric that can be set to any value.
type Gauge struct{ s *series }

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) {
	g.s.reg.mu.Lock()
	g.s.val = v
	g.s.reg.mu.Unlock()
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	g.s.reg.mu.Lock()
	defer g.s.reg.mu.Unlock()
	return g.s.val
}

// Summary accumulates observations through a metrics.Welford.
type Summary struct{ s *series }

// Observe incorporates one observation.
func (s *Summary) Observe(v float64) {
	s.s.reg.mu.Lock()
	s.s.w.Add(v)
	s.s.sum += v
	s.s.reg.mu.Unlock()
}

// Count returns the number of observations.
func (s *Summary) Count() int {
	s.s.reg.mu.Lock()
	defer s.s.reg.mu.Unlock()
	return s.s.w.N()
}

// Mean returns the running mean.
func (s *Summary) Mean() float64 {
	s.s.reg.mu.Lock()
	defer s.s.reg.mu.Unlock()
	return s.s.w.Mean()
}

// StdDev returns the sample standard deviation.
func (s *Summary) StdDev() float64 {
	s.s.reg.mu.Lock()
	defer s.s.reg.mu.Unlock()
	return s.s.w.StdDev()
}

// HistogramMetric is a registry-attached metrics.Histogram.
type HistogramMetric struct{ s *series }

// Observe records one observation.
func (h *HistogramMetric) Observe(v float64) {
	h.s.reg.mu.Lock()
	h.s.h.Add(v)
	h.s.sum += v
	h.s.reg.mu.Unlock()
}

// Count returns the number of observations.
func (h *HistogramMetric) Count() int {
	h.s.reg.mu.Lock()
	defer h.s.reg.mu.Unlock()
	return h.s.h.Count()
}

// withLabel appends a label pair to an existing (possibly empty) label set.
func withLabel(labels, pair string) string {
	if labels == "" {
		return pair
	}
	return labels + "," + pair
}

func seriesName(base, labels string) string {
	if labels == "" {
		return base
	}
	return base + "{" + labels + "}"
}

// WritePrometheus writes every registered series in Prometheus text
// exposition format (version 0.0.4), families in registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, fam := range r.famOrder {
		if help := r.famHelp[fam]; help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", fam, help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", fam, r.famType[fam]); err != nil {
			return err
		}
		for _, s := range r.series {
			if s.base != fam {
				continue
			}
			if err := s.write(w); err != nil {
				return err
			}
		}
	}
	return nil
}

func (s *series) write(w io.Writer) error {
	switch s.typ {
	case "counter", "gauge":
		_, err := fmt.Fprintf(w, "%s %g\n", seriesName(s.base, s.labels), s.val)
		return err
	case "summary":
		if _, err := fmt.Fprintf(w, "%s %g\n", seriesName(s.base+"_sum", s.labels), s.sum); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s %d\n", seriesName(s.base+"_count", s.labels), s.w.N())
		return err
	case "histogram":
		cum := 0
		n := len(s.h.Buckets)
		width := (s.h.Hi - s.h.Lo) / float64(n)
		for i, c := range s.h.Buckets {
			cum += c
			le := fmt.Sprintf(`le="%g"`, s.h.Lo+float64(i+1)*width)
			if _, err := fmt.Fprintf(w, "%s %d\n",
				seriesName(s.base+"_bucket", withLabel(s.labels, le)), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s %d\n",
			seriesName(s.base+"_bucket", withLabel(s.labels, `le="+Inf"`)), cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %g\n", seriesName(s.base+"_sum", s.labels), s.sum); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s %d\n", seriesName(s.base+"_count", s.labels), s.h.Count())
		return err
	default:
		return fmt.Errorf("obs: unknown series type %q", s.typ)
	}
}

// MetricsProbe is a Probe that tallies engine events and decision audits
// into a Registry under the eadvfs_* namespace: event and decision
// counters by kind/reason, slack and energy summaries, and operating-point
// and speed histograms. Every known kind and reason is pre-registered so
// the exposition is complete (zero-valued) even for quiet runs.
type MetricsProbe struct {
	events    map[EventKind]*Counter
	decisions map[Reason]*Counter
	slack     *Summary
	stored    *Summary
	available *Summary
	level     *HistogramMetric
	speed     *HistogramMetric
}

// NewMetricsProbe registers the probe's series in reg and returns the
// probe. Safe to share across parallel runs.
func NewMetricsProbe(reg *Registry) *MetricsProbe {
	p := &MetricsProbe{
		events:    make(map[EventKind]*Counter, 8),
		decisions: make(map[Reason]*Counter, 8),
	}
	for _, k := range KnownEventKinds() {
		p.events[k] = reg.Counter(Labeled("eadvfs_events_total", "kind", string(k)),
			"engine events by kind")
	}
	for _, r := range KnownReasons() {
		p.decisions[r] = reg.Counter(Labeled("eadvfs_decisions_total", "reason", string(r)),
			"scheduler decision audits by reason code")
	}
	p.slack = reg.Summary("eadvfs_decision_slack", "slack (deadline - now) at decision points")
	p.stored = reg.Summary("eadvfs_decision_stored", "stored energy EC(now) at decision points")
	p.available = reg.Summary("eadvfs_decision_available", "available energy EC + ES at decision points")
	p.level = reg.Histogram("eadvfs_decision_level", "chosen operating point of run decisions", 0, 16, 16)
	p.speed = reg.Histogram("eadvfs_decision_speed", "normalized speed of run decisions", 0, 1.1, 11)
	return p
}

// OnEvent implements Probe.
func (p *MetricsProbe) OnEvent(ev Event) {
	if c, ok := p.events[ev.Kind]; ok {
		c.Inc()
	}
}

// OnDecision implements Probe.
func (p *MetricsProbe) OnDecision(d DecisionRecord) {
	if c, ok := p.decisions[d.Reason]; ok {
		c.Inc()
	}
	p.slack.Observe(d.Slack)
	p.stored.Observe(d.Stored)
	p.available.Observe(d.Available)
	if d.Level >= 0 {
		p.level.Observe(float64(d.Level))
		p.speed.Observe(d.Speed)
	}
}
