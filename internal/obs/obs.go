// Package obs is the unified observability layer of the simulator: a probe
// interface the engine and the schedulers report into, a metrics registry
// with Prometheus text exposition, a versioned JSONL structured-event sink,
// and run manifests that make any result artifact reproducible.
//
// Design constraints (DESIGN.md §10):
//
//   - The disabled path is free. Every emission site nil-checks the probe,
//     records are plain value structs built from already-computed state, and
//     no strings are formatted unless a probe is attached — the eabench
//     figure workloads must not move against BENCH_baseline.json.
//   - Probes may be shared across the experiment harness's parallel
//     workers; the implementations in this package are safe for concurrent
//     use. The nil-check contract means a probe must be attached before a
//     run starts and never swapped mid-run.
//   - Everything a probe sees is also representable in JSONL schema v1
//     (jsonl.go), so any run can be post-processed with jq or replayed into
//     the metrics registry offline.
package obs

import "sync"

// EventKind classifies an engine event.
type EventKind string

// Engine event kinds (JSONL schema v1 `kind` values).
const (
	// KindArrival: a job was released into the ready queue.
	KindArrival EventKind = "arrival"
	// KindDispatch: a job started (or resumed) execution at Level.
	KindDispatch EventKind = "dispatch"
	// KindSegment: a maximal constant-activity interval [Start, Time)
	// closed; Mode names the activity, Level the operating point for runs.
	KindSegment EventKind = "segment"
	// KindCompletion: a job finished all its work.
	KindCompletion EventKind = "completion"
	// KindEarlyCompletion: a completing job left unspent WCET budget —
	// its drawn actual work came in under the declared worst case
	// (stochastic execution, task.ExecSpec / sim.Config.BCWCRatio).
	// Always emitted immediately after the job's KindCompletion.
	KindEarlyCompletion EventKind = "early-completion"
	// KindMiss: a job's deadline passed with work remaining.
	KindMiss EventKind = "miss"
	// KindStall: the store was exhausted with a job selected (§4.2).
	KindStall EventKind = "stall"
	// KindFault: an injected fault bent the run (Detail says how, e.g.
	// "dvfs-clamp").
	KindFault EventKind = "fault"
	// KindInvariant: the runtime invariant checker recorded a violation
	// (Detail carries the violation kind and message).
	KindInvariant EventKind = "invariant"
)

// KnownEventKinds lists every kind the engine emits, in a stable order —
// the authoritative set for the JSONL schema checker.
func KnownEventKinds() []EventKind {
	return []EventKind{
		KindArrival, KindDispatch, KindSegment, KindCompletion,
		KindEarlyCompletion, KindMiss, KindStall, KindFault, KindInvariant,
	}
}

// Event is one engine occurrence. TaskID/Seq are -1 when no job is
// attached. Start is meaningful only for KindSegment (the segment's left
// edge); Level only for KindDispatch, KindSegment and KindFault.
type Event struct {
	Time   float64
	Kind   EventKind
	TaskID int
	Seq    int
	Level  int
	Start  float64
	Mode   string // segment activity: "run", "idle", "stall", "sleep"
	Detail string // fault/invariant specifics
}

// Reason is a scheduler decision-audit reason code. The table is closed:
// the JSONL schema checker rejects unknown codes, so adding a policy
// branch means extending KnownReasons (and the DESIGN.md §10 table).
type Reason string

// Decision reason codes.
const (
	// ReasonFullSpeedEnergyRich: s1 = s2 = now — the available energy
	// sustains full speed through the deadline (Figure 4 line 5; LSA's
	// immediate start).
	ReasonFullSpeedEnergyRich Reason = "full-speed:energy-rich"
	// ReasonFullSpeedEnergyPoor: the s2 instant was reached — the job must
	// run flat-out so it cannot steal time from future tasks (§4.3; LSA's
	// lazy start at s2).
	ReasonFullSpeedEnergyPoor Reason = "full-speed:energy-poor"
	// ReasonFullSpeedInfeasible: even f_max cannot meet the deadline; run
	// flat-out and let the engine account the miss.
	ReasonFullSpeedInfeasible Reason = "full-speed:infeasible"
	// ReasonStretchSlackRich: stretched execution at the minimum feasible
	// frequency on [s1, s2) — slack is traded for energy (Figure 4 line 8).
	ReasonStretchSlackRich Reason = "stretch:slack-rich"
	// ReasonIdleRecharge: the start instant (s1, or s2 for LSA) lies ahead;
	// idle so the store recharges.
	ReasonIdleRecharge Reason = "idle:recharge"
	// ReasonIdleNoJob: the ready queue is empty.
	ReasonIdleNoJob Reason = "idle:no-job"
	// ReasonStretchReclaimed: a slack-reclaiming decorator lowered the
	// inner policy's operating point, speculating on the task's observed
	// early completions (Leung/Tsui-style reclamation). The latest safe
	// full-budget start still guards the deadline.
	ReasonStretchReclaimed Reason = "stretch:reclaimed"
	// ReasonFullSpeedReclaimGuard: the reclaiming decorator wanted to
	// speculate but the latest safe start was reached — the inner
	// decision passes through untouched so the full WCET budget still
	// fits before the deadline.
	ReasonFullSpeedReclaimGuard Reason = "full-speed:reclaim-guard"
)

// KnownReasons lists every reason code policies emit, in a stable order.
func KnownReasons() []Reason {
	return []Reason{
		ReasonFullSpeedEnergyRich, ReasonFullSpeedEnergyPoor,
		ReasonFullSpeedInfeasible, ReasonStretchSlackRich,
		ReasonIdleRecharge, ReasonIdleNoJob,
		ReasonStretchReclaimed, ReasonFullSpeedReclaimGuard,
	}
}

// DecisionRecord is one scheduler decision audit: the state the policy saw
// and what it chose, in the paper's vocabulary (§4 eqs. 5–9). Level is -1
// (and Speed 0) for idle decisions; S1/S2 are zero for policies that do not
// compute them; Until may be +Inf ("until the next event").
type DecisionRecord struct {
	Time      float64
	Policy    string
	TaskID    int
	Seq       int
	Deadline  float64 // absolute deadline of the audited job
	Slack     float64 // Deadline - Time
	Stored    float64 // EC(now)
	Predicted float64 // ÊS(now, Deadline)
	Available float64 // Stored + Predicted
	S1        float64 // eq. (7) latest stretched start
	S2        float64 // eq. (8) latest full-speed start
	Level     int     // chosen operating point, -1 when idling
	Speed     float64 // normalized speed of Level, 0 when idling
	Until     float64 // requested re-evaluation instant
	Reason    Reason
}

// Probe observes a run: engine events and scheduler decision audits.
// Implementations must tolerate concurrent calls when shared across
// parallel runs, and must not retain pointers into the engine (records are
// value copies precisely so retention is safe).
type Probe interface {
	OnEvent(Event)
	OnDecision(DecisionRecord)
}

// Multi fans a run out to several probes in order. Nil members are
// skipped; a Multi of zero non-nil probes behaves like nil.
func Multi(probes ...Probe) Probe {
	var live []Probe
	for _, p := range probes {
		if p != nil {
			live = append(live, p)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return multi(live)
}

type multi []Probe

func (m multi) OnEvent(ev Event) {
	for _, p := range m {
		p.OnEvent(ev)
	}
}

func (m multi) OnDecision(d DecisionRecord) {
	for _, p := range m {
		p.OnDecision(d)
	}
}

// OnSpan implements SpanSink by fanning to the members that are span
// sinks themselves. Note a Multi always satisfies SpanSink even when no
// member does — producers that gate span creation on a type assertion
// should prefer handing the real sink around.
func (m multi) OnSpan(sp Span) {
	for _, p := range m {
		if ss, ok := p.(SpanSink); ok {
			ss.OnSpan(sp)
		}
	}
}

// TraceParent implements TraceCarrier: the first member carrying a valid
// parent span context wins.
func (m multi) TraceParent() SpanContext {
	for _, p := range m {
		if sc := SpanParentOf(p); sc.Valid() {
			return sc
		}
	}
	return SpanContext{}
}

// Recorder is a Probe that retains everything it sees, for tests and for
// eatrace's -audit listing. Safe for concurrent use.
type Recorder struct {
	mu        sync.Mutex
	events    []Event
	decisions []DecisionRecord
	spans     []Span
}

// NewRecorder returns an empty Recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// OnEvent implements Probe.
func (r *Recorder) OnEvent(ev Event) {
	r.mu.Lock()
	r.events = append(r.events, ev)
	r.mu.Unlock()
}

// OnDecision implements Probe.
func (r *Recorder) OnDecision(d DecisionRecord) {
	r.mu.Lock()
	r.decisions = append(r.decisions, d)
	r.mu.Unlock()
}

// Events returns the recorded engine events in emission order.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

// Decisions returns the recorded decision audits in emission order.
func (r *Recorder) Decisions() []DecisionRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]DecisionRecord(nil), r.decisions...)
}

// OnSpan implements SpanSink.
func (r *Recorder) OnSpan(sp Span) {
	r.mu.Lock()
	r.spans = append(r.spans, sp)
	r.mu.Unlock()
}

// Spans returns the recorded spans in completion order.
func (r *Recorder) Spans() []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Span(nil), r.spans...)
}
