package obs

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"
)

// Span lines (schema v1.1) must pass the validator alongside v1 event and
// decision lines — one stream, mixed record types.
func TestCheckJSONLAcceptsSpanLines(t *testing.T) {
	var buf bytes.Buffer
	jw := NewJSONLWriter(&buf)
	jw.OnEvent(Event{Time: 1, Kind: KindArrival, TaskID: 1, Seq: 0,
		Level: 0, Mode: "run"})
	trace := NewTraceID()
	parent := NewSpanID()
	jw.OnSpan(Span{Trace: trace, ID: parent, Name: "sweep", Service: "eactl",
		Start: time.Unix(100, 0), Duration: time.Second})
	jw.OnSpan(Span{Trace: trace, ID: NewSpanID(), Parent: parent,
		Name: "engine", Service: "easerve", Start: time.Unix(100, 0),
		Duration: 200 * time.Millisecond,
		Attrs:    map[string]string{"outcome": "ok"}})
	if err := jw.Flush(); err != nil {
		t.Fatal(err)
	}
	n, err := CheckJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("CheckJSONL rejected mixed v1/v1.1 stream: %v\n%s", err, buf.String())
	}
	if n != 3 {
		t.Fatalf("validated %d lines, want 3", n)
	}
	if !strings.Contains(buf.String(), `"v":1.1`) {
		t.Fatalf("span lines missing v1.1 marker:\n%s", buf.String())
	}
}

// Malformed span records must be rejected line-precisely: wrong version
// tags, structurally invalid spans, and trace/span IDs that are not
// well-formed traceparent material.
func TestCheckJSONLRejectsMalformedSpans(t *testing.T) {
	goodTrace := NewTraceID().String()
	goodSpan := NewSpanID().String()
	cases := map[string]string{
		"span with v1 tag": fmt.Sprintf(
			`{"v":1,"type":"span","span":{"trace":"%s","id":"%s","name":"x","service":"s","start_unix_ns":1,"dur_ns":1}}`,
			goodTrace, goodSpan),
		"event with v1.1 tag": eventLineWithVersion(t, "1.1"),
		"all-zero trace id": fmt.Sprintf(
			`{"v":1.1,"type":"span","span":{"trace":"%s","id":"%s","name":"x","service":"s","start_unix_ns":1,"dur_ns":1}}`,
			strings.Repeat("0", 32), goodSpan),
		"uppercase trace id": fmt.Sprintf(
			`{"v":1.1,"type":"span","span":{"trace":"%s","id":"%s","name":"x","service":"s","start_unix_ns":1,"dur_ns":1}}`,
			strings.ToUpper(goodTrace), goodSpan),
		"truncated span id": fmt.Sprintf(
			`{"v":1.1,"type":"span","span":{"trace":"%s","id":"%s","name":"x","service":"s","start_unix_ns":1,"dur_ns":1}}`,
			goodTrace, goodSpan[:8]),
		"self-parent": fmt.Sprintf(
			`{"v":1.1,"type":"span","span":{"trace":"%s","id":"%s","parent":"%s","name":"x","service":"s","start_unix_ns":1,"dur_ns":1}}`,
			goodTrace, goodSpan, goodSpan),
		"negative duration": fmt.Sprintf(
			`{"v":1.1,"type":"span","span":{"trace":"%s","id":"%s","name":"x","service":"s","start_unix_ns":1,"dur_ns":-5}}`,
			goodTrace, goodSpan),
		"empty name": fmt.Sprintf(
			`{"v":1.1,"type":"span","span":{"trace":"%s","id":"%s","name":"","service":"s","start_unix_ns":1,"dur_ns":1}}`,
			goodTrace, goodSpan),
		"unknown span field": fmt.Sprintf(
			`{"v":1.1,"type":"span","span":{"trace":"%s","id":"%s","name":"x","service":"s","start_unix_ns":1,"dur_ns":1,"bogus":true}}`,
			goodTrace, goodSpan),
	}
	for name, line := range cases {
		if _, err := CheckJSONL(strings.NewReader(line + "\n")); err == nil {
			t.Errorf("%s: CheckJSONL accepted malformed line: %s", name, line)
		}
	}
}

// eventLineWithVersion renders one valid event line and rewrites its
// schema version tag — the rest of the record stays well-formed, so only
// the version mismatch can cause a rejection.
func eventLineWithVersion(t *testing.T, v string) string {
	t.Helper()
	var buf bytes.Buffer
	jw := NewJSONLWriter(&buf)
	jw.OnEvent(Event{Time: 1, Kind: KindArrival, TaskID: 1, Seq: 0,
		Level: 0, Mode: "run"})
	if err := jw.Flush(); err != nil {
		t.Fatal(err)
	}
	line := strings.TrimSpace(buf.String())
	if !strings.Contains(line, `"v":1`) {
		t.Fatalf("unexpected event line: %s", line)
	}
	return strings.Replace(line, `"v":1`, `"v":`+v, 1)
}
