package obs

import (
	"path/filepath"
	"strings"
	"testing"

	"github.com/eadvfs/eadvfs/internal/digest"
)

type testConfig struct {
	Horizon float64 `json:"horizon"`
	Policy  string  `json:"policy"`
	Seed    uint64  `json:"seed"`
}

func TestManifestRoundTrip(t *testing.T) {
	cfg := testConfig{Horizon: 10000, Policy: "ea-dvfs", Seed: 42}
	m, err := NewManifest("easim", cfg.Policy, map[string]uint64{"seed": cfg.Seed}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}

	// WriteFile pretty-prints, which re-indents the embedded config; the
	// digest must survive that (it hashes the compact form).
	path := filepath.Join(t.TempDir(), "man.json")
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Tool != "easim" || back.Policy != "ea-dvfs" || back.Seeds["seed"] != 42 {
		t.Fatalf("round-tripped manifest lost fields: %+v", back)
	}
	if back.Digest != m.Digest {
		t.Fatalf("digest changed across write/read: %s vs %s", back.Digest, m.Digest)
	}

	var got testConfig
	if err := back.DecodeConfig(&got); err != nil {
		t.Fatal(err)
	}
	if got != cfg {
		t.Fatalf("decoded config %+v, want %+v", got, cfg)
	}
}

func TestManifestDetectsTampering(t *testing.T) {
	m, err := NewManifest("easim", "lsa", nil, testConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	m.Config = []byte(`{"horizon":0,"policy":"lsa","seed":2}`)
	if err := m.Validate(); err == nil || !strings.Contains(err.Error(), "digest mismatch") {
		t.Fatalf("tampered config must fail validation, got %v", err)
	}
}

func TestManifestRejectsWrongSchema(t *testing.T) {
	m, err := NewManifest("easim", "", nil, testConfig{})
	if err != nil {
		t.Fatal(err)
	}
	m.Schema = 99
	if err := m.Validate(); err == nil {
		t.Fatal("wrong schema version must fail validation")
	}
}

// A manifest written by a newer tool whose config grew fields must fail
// DecodeConfig loudly instead of silently dropping the extras.
func TestDecodeConfigRejectsUnknownFields(t *testing.T) {
	type newer struct {
		testConfig
		Extra int `json:"extra"`
	}
	m, err := NewManifest("easim", "", nil, newer{Extra: 7})
	if err != nil {
		t.Fatal(err)
	}
	var got testConfig
	if err := m.DecodeConfig(&got); err == nil {
		t.Fatal("unknown config field must be rejected")
	}
}

func TestDigestIsIndentationInvariant(t *testing.T) {
	compact := digest.Compact([]byte(`{"a":1,"b":[1,2]}`))
	indented := digest.Compact([]byte("{\n  \"a\": 1,\n  \"b\": [\n    1,\n    2\n  ]\n}"))
	if compact != indented {
		t.Fatalf("digest must be whitespace-invariant: %s vs %s", compact, indented)
	}
}
