package obs

// Span-tree stitching: reassembling the spans of one distributed sweep —
// coordinator spans plus the worker spans shipped back in X-Trace-Spans
// headers — into printable trees (DESIGN.md §15).

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// SpanNode is one stitched span with its resolved children.
type SpanNode struct {
	Span     Span
	Children []*SpanNode

	// Orphan marks a span whose Parent ID was non-zero but absent from
	// the input (e.g. the parent was lost with a SIGKILLed worker).
	// Orphans are promoted to roots so no data disappears.
	Orphan bool

	// Skew is the wall-clock disagreement detected against the parent:
	// how far this span's recorded start precedes its parent's start.
	// Parent/child causality makes a negative offset impossible on one
	// clock, so a positive Skew means the emitting processes' clocks
	// differ by at least that much. Zero when consistent or for roots.
	Skew time.Duration
}

// SpanTree is the stitched forest for one or more traces.
type SpanTree struct {
	Roots   []*SpanNode
	Spans   int // total spans stitched (after dedup)
	Orphans int // spans promoted to root because their parent is missing
	Traces  int // distinct trace IDs seen
}

// StitchSpans links spans by (trace, parent) into a forest. Duplicate
// (trace, span-ID) pairs keep the first occurrence — a hedged attempt's
// spans can arrive twice when both the winner and the loser responded.
// Children are ordered by start time (then name, then ID), which is
// deterministic even across skewed clocks.
func StitchSpans(spans []Span) *SpanTree {
	type key struct {
		t TraceID
		s SpanID
	}
	nodes := make(map[key]*SpanNode, len(spans))
	order := make([]*SpanNode, 0, len(spans))
	traces := make(map[TraceID]struct{})
	for _, sp := range spans {
		k := key{sp.Trace, sp.ID}
		if _, dup := nodes[k]; dup || sp.ID.IsZero() {
			continue
		}
		n := &SpanNode{Span: sp}
		nodes[k] = n
		order = append(order, n)
		traces[sp.Trace] = struct{}{}
	}

	t := &SpanTree{Spans: len(order), Traces: len(traces)}
	for _, n := range order {
		sp := n.Span
		if sp.Parent.IsZero() {
			t.Roots = append(t.Roots, n)
			continue
		}
		parent, ok := nodes[key{sp.Trace, sp.Parent}]
		if !ok || parent == n {
			n.Orphan = true
			t.Orphans++
			t.Roots = append(t.Roots, n)
			continue
		}
		if d := parent.Span.Start.Sub(sp.Start); d > 0 {
			n.Skew = d
		}
		parent.Children = append(parent.Children, n)
	}

	sortNodes(t.Roots)
	for _, n := range order {
		sortNodes(n.Children)
	}
	return t
}

func sortNodes(ns []*SpanNode) {
	sort.Slice(ns, func(i, j int) bool {
		a, b := ns[i].Span, ns[j].Span
		if !a.Start.Equal(b.Start) {
			return a.Start.Before(b.Start)
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.ID.String() < b.ID.String()
	})
}

// Walk visits every node depth-first, roots in order, passing the nesting
// depth (0 for roots).
func (t *SpanTree) Walk(fn func(n *SpanNode, depth int)) {
	var rec func(n *SpanNode, depth int)
	rec = func(n *SpanNode, depth int) {
		fn(n, depth)
		for _, c := range n.Children {
			rec(c, depth+1)
		}
	}
	for _, r := range t.Roots {
		rec(r, 0)
	}
}

// Format renders the forest as an indented text tree, one span per line:
//
//	easerve request:sweep 240ms [outcome=... worker=...]
//	  easerve cache 1ms [outcome=miss]
//
// Orphans are tagged, as is any detected clock skew.
func (t *SpanTree) Format(w io.Writer) {
	t.Walk(func(n *SpanNode, depth int) {
		sp := n.Span
		var b strings.Builder
		b.WriteString(strings.Repeat("  ", depth))
		fmt.Fprintf(&b, "%s %s %s", sp.Service, sp.Name, sp.Duration.Round(time.Microsecond))
		if len(sp.Attrs) > 0 {
			keys := make([]string, 0, len(sp.Attrs))
			for k := range sp.Attrs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			b.WriteString(" [")
			for i, k := range keys {
				if i > 0 {
					b.WriteByte(' ')
				}
				fmt.Fprintf(&b, "%s=%s", k, sp.Attrs[k])
			}
			b.WriteByte(']')
		}
		if n.Orphan {
			fmt.Fprintf(&b, " (orphan: parent %s missing)", sp.Parent)
		}
		if n.Skew > 0 {
			fmt.Fprintf(&b, " (clock skew ≥ %s)", n.Skew.Round(time.Microsecond))
		}
		fmt.Fprintln(w, b.String())
	})
}
