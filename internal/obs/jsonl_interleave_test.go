package obs

import (
	"bytes"
	"strings"
	"testing"
)

// TestCheckJSONLInterleavedFaultInvariantStream validates a stream that
// interleaves fault activations and invariant violations with ordinary
// engine events and decision audits — the shape a faulty run under
// CheckInvariants actually produces, which none of the single-kind tests
// exercise. Every line must validate, in order, and the count must match.
func TestCheckJSONLInterleavedFaultInvariantStream(t *testing.T) {
	var buf bytes.Buffer
	w := NewJSONLWriter(&buf)

	w.OnEvent(Event{Time: 0, Kind: KindArrival, TaskID: 0, Seq: 0})
	w.OnDecision(DecisionRecord{
		Time: 0, Policy: "ea-dvfs", TaskID: 0, Seq: 0,
		Deadline: 10, Slack: 10, Stored: 5, Available: 5,
		S1: 0, S2: 0, Level: 4, Speed: 1, Until: 10,
		Reason: ReasonFullSpeedEnergyRich,
	})
	w.OnEvent(Event{Time: 0, Kind: KindFault, TaskID: -1, Seq: -1, Level: 2, Detail: "dvfs-clamp"})
	w.OnEvent(Event{Time: 0.5, Kind: KindDispatch, TaskID: 0, Seq: 0, Level: 2})
	w.OnEvent(Event{Time: 1, Kind: KindInvariant, TaskID: -1, Seq: -1, Detail: "store level -1e-9 below zero"})
	w.OnEvent(Event{Time: 1, Kind: KindFault, TaskID: 0, Seq: 0, Level: 0, Detail: "overrun x1.3"})
	w.OnEvent(Event{Time: 2, Kind: KindSegment, TaskID: 0, Seq: 0, Level: 2, Start: 0.5, Mode: "run"})
	w.OnEvent(Event{Time: 2, Kind: KindInvariant, TaskID: -1, Seq: -1, Detail: "conservation drift 2e-7"})
	w.OnEvent(Event{Time: 2, Kind: KindStall, TaskID: 0, Seq: 0})
	w.OnEvent(Event{Time: 10, Kind: KindMiss, TaskID: 0, Seq: 0})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	const wantLines = 10
	n, err := CheckJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("interleaved stream rejected: %v", err)
	}
	if n != wantLines {
		t.Fatalf("validated %d lines, want %d", n, wantLines)
	}

	// Corrupting just the invariant line must fail the stream at exactly
	// that line, proving the checker walks the interleaving rather than
	// stopping at the first decision.
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	lines[4] = strings.Replace(lines[4], `"invariant"`, `"not-a-kind"`, 1)
	corrupted := strings.Join(lines, "\n") + "\n"
	n, err = CheckJSONL(strings.NewReader(corrupted))
	if err == nil {
		t.Fatal("corrupted invariant line passed validation")
	}
	if n != 4 {
		t.Fatalf("checker validated %d lines before the corruption at line 5", n)
	}
	if !strings.Contains(err.Error(), "line 5") {
		t.Fatalf("error does not point at line 5: %v", err)
	}
}
