package des

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestDispatchOrderByTime(t *testing.T) {
	k := NewKernel()
	var got []float64
	times := []float64{5, 1, 3, 2, 4, 0.5, 2.5}
	for _, tm := range times {
		tm := tm
		k.At(tm, 0, "e", func(now float64) { got = append(got, now) })
	}
	k.Run()
	if !sort.Float64sAreSorted(got) {
		t.Fatalf("events fired out of order: %v", got)
	}
	if len(got) != len(times) {
		t.Fatalf("dispatched %d events, want %d", len(got), len(times))
	}
}

func TestTieBreakByPriorityThenSeq(t *testing.T) {
	k := NewKernel()
	var got []string
	k.At(1, 2, "low", func(float64) { got = append(got, "low") })
	k.At(1, 0, "hiA", func(float64) { got = append(got, "hiA") })
	k.At(1, 0, "hiB", func(float64) { got = append(got, "hiB") })
	k.At(1, 1, "mid", func(float64) { got = append(got, "mid") })
	k.Run()
	want := []string{"hiA", "hiB", "mid", "low"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dispatch order = %v, want %v", got, want)
		}
	}
}

func TestClockAdvances(t *testing.T) {
	k := NewKernel()
	k.At(3, 0, "a", func(now float64) {
		if k.Now() != 3 {
			t.Fatalf("Now() = %v inside event at t=3", k.Now())
		}
	})
	k.Run()
	if k.Now() != 3 {
		t.Fatalf("final Now() = %v, want 3", k.Now())
	}
}

func TestScheduleFromHandler(t *testing.T) {
	k := NewKernel()
	fired := 0
	var chain func(now float64)
	chain = func(now float64) {
		fired++
		if fired < 5 {
			k.After(1, 0, "chain", chain)
		}
	}
	k.At(0, 0, "chain", chain)
	k.Run()
	if fired != 5 {
		t.Fatalf("chain fired %d times, want 5", fired)
	}
	if k.Now() != 4 {
		t.Fatalf("Now() = %v, want 4", k.Now())
	}
}

func TestCancel(t *testing.T) {
	k := NewKernel()
	fired := false
	e := k.At(1, 0, "x", func(float64) { fired = true })
	k.Cancel(e)
	// The handle is only valid until the cancellation is collected (the
	// event struct is then recycled), so inspect it before running.
	if !e.Cancelled() {
		t.Fatal("Cancelled() = false after Cancel")
	}
	k.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestCancelNilIsNoop(t *testing.T) {
	k := NewKernel()
	k.Cancel(nil) // must not panic
}

func TestCancelFromEarlierEvent(t *testing.T) {
	k := NewKernel()
	fired := false
	e := k.At(2, 0, "victim", func(float64) { fired = true })
	k.At(1, 0, "canceller", func(float64) { k.Cancel(e) })
	k.Run()
	if fired {
		t.Fatal("event fired despite being cancelled by an earlier event")
	}
}

func TestPastSchedulingPanics(t *testing.T) {
	k := NewKernel()
	k.At(5, 0, "a", nil)
	k.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	k.At(1, 0, "late", nil)
}

func TestNegativeDelayPanics(t *testing.T) {
	k := NewKernel()
	defer func() {
		if recover() == nil {
			t.Fatal("After(-1) did not panic")
		}
	}()
	k.After(-1, 0, "bad", nil)
}

func TestRunUntil(t *testing.T) {
	k := NewKernel()
	var got []float64
	for _, tm := range []float64{1, 2, 3, 4, 5} {
		tm := tm
		k.At(tm, 0, "e", func(now float64) { got = append(got, now) })
	}
	k.RunUntil(3)
	if len(got) != 3 {
		t.Fatalf("RunUntil(3) dispatched %d events, want 3 (inclusive horizon)", len(got))
	}
	if k.Now() != 3 {
		t.Fatalf("Now() = %v after RunUntil(3)", k.Now())
	}
	if k.Pending() != 2 {
		t.Fatalf("Pending() = %d, want 2", k.Pending())
	}
}

func TestRunUntilAdvancesClockPastLastEvent(t *testing.T) {
	k := NewKernel()
	k.At(1, 0, "only", nil)
	k.RunUntil(10)
	if k.Now() != 10 {
		t.Fatalf("Now() = %v, want horizon 10", k.Now())
	}
}

func TestPeekTimeSkipsCancelled(t *testing.T) {
	k := NewKernel()
	e := k.At(1, 0, "c", nil)
	k.At(2, 0, "keep", nil)
	k.Cancel(e)
	tm, ok := k.PeekTime()
	if !ok || tm != 2 {
		t.Fatalf("PeekTime = (%v, %v), want (2, true)", tm, ok)
	}
}

func TestStepsCount(t *testing.T) {
	k := NewKernel()
	for i := 0; i < 7; i++ {
		k.At(float64(i), 0, "e", nil)
	}
	k.Run()
	if k.Steps() != 7 {
		t.Fatalf("Steps() = %d, want 7", k.Steps())
	}
}

// Property: for any set of (time, priority) pairs, the dispatch sequence is
// sorted by (time, priority, insertion order).
func TestDispatchOrderProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) > 200 {
			raw = raw[:200]
		}
		k := NewKernel()
		type rec struct {
			time float64
			prio int
			seq  int
		}
		var got []rec
		for i, v := range raw {
			tm := float64(v % 50)
			prio := int(v/50) % 3
			i := i
			k.At(tm, prio, "p", func(now float64) {
				got = append(got, rec{now, prio, i})
			})
		}
		k.Run()
		for i := 1; i < len(got); i++ {
			a, b := got[i-1], got[i]
			if a.time > b.time {
				return false
			}
			if a.time == b.time && a.prio > b.prio {
				return false
			}
			if a.time == b.time && a.prio == b.prio && a.seq > b.seq {
				return false
			}
		}
		return len(got) == len(raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScheduleDispatch(b *testing.B) {
	k := NewKernel()
	for i := 0; i < b.N; i++ {
		k.At(k.Now()+1, 0, "e", nil)
		k.Step()
	}
}
