// Package des implements the discrete-event simulation kernel: a
// deterministic event queue keyed by simulation time with stable
// tie-breaking, and a clock that dispatches events in order.
//
// The paper's evaluation (§5) is produced by "a discrete-event simulation in
// C/C++"; this package is the Go equivalent of that substrate. Everything
// above it (energy flows, scheduling decisions) is expressed as events.
package des

import (
	"container/heap"
	"fmt"
	"math"
)

// Handler is the callback invoked when an event fires. now is the event's
// timestamp, which equals the kernel clock at dispatch.
type Handler func(now float64)

// Event is a scheduled occurrence. Events are ordered by (Time, Priority,
// insertion sequence); the sequence number makes dispatch order fully
// deterministic even for simultaneous events with equal priority.
type Event struct {
	Time     float64
	Priority int // lower fires first among equal times
	Label    string
	Handler  Handler

	seq       uint64
	index     int // heap index; -1 when not queued
	cancelled bool
}

// Cancelled reports whether the event was cancelled before firing.
func (e *Event) Cancelled() bool { return e.cancelled }

// eventHeap is a min-heap over (Time, Priority, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	a, b := h[i], h[j]
	if a.Time != b.Time {
		return a.Time < b.Time
	}
	if a.Priority != b.Priority {
		return a.Priority < b.Priority
	}
	return a.seq < b.seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Kernel is the simulation clock and event queue. The zero value is not
// usable; construct with NewKernel.
type Kernel struct {
	now     float64
	queue   eventHeap
	nextSeq uint64
	steps   uint64
}

// NewKernel returns a kernel with the clock at 0.
func NewKernel() *Kernel {
	return &Kernel{}
}

// Now returns the current simulation time.
func (k *Kernel) Now() float64 { return k.now }

// Steps returns the number of events dispatched so far.
func (k *Kernel) Steps() uint64 { return k.steps }

// Pending returns the number of queued (non-cancelled) events.
func (k *Kernel) Pending() int {
	n := 0
	for _, e := range k.queue {
		if !e.cancelled {
			n++
		}
	}
	return n
}

// At schedules handler to fire at absolute time t with the given priority.
// Scheduling in the past (t < Now) panics: it would silently corrupt
// causality, which in a simulator is always a bug upstream.
func (k *Kernel) At(t float64, priority int, label string, handler Handler) *Event {
	if math.IsNaN(t) {
		panic("des: scheduling event at NaN time")
	}
	if t < k.now {
		panic(fmt.Sprintf("des: scheduling %q at t=%v before now=%v", label, t, k.now))
	}
	e := &Event{Time: t, Priority: priority, Label: label, Handler: handler, seq: k.nextSeq, index: -1}
	k.nextSeq++
	heap.Push(&k.queue, e)
	return e
}

// After schedules handler to fire delay time units from now.
func (k *Kernel) After(delay float64, priority int, label string, handler Handler) *Event {
	if delay < 0 {
		panic(fmt.Sprintf("des: negative delay %v for %q", delay, label))
	}
	return k.At(k.now+delay, priority, label, handler)
}

// Cancel marks an event so it will be skipped at dispatch. Cancelling an
// already-fired or already-cancelled event is a no-op.
func (k *Kernel) Cancel(e *Event) {
	if e == nil {
		return
	}
	e.cancelled = true
}

// PeekTime returns the timestamp of the next non-cancelled event and true,
// or (0, false) when the queue is drained.
func (k *Kernel) PeekTime() (float64, bool) {
	k.dropCancelled()
	if len(k.queue) == 0 {
		return 0, false
	}
	return k.queue[0].Time, true
}

func (k *Kernel) dropCancelled() {
	for len(k.queue) > 0 && k.queue[0].cancelled {
		heap.Pop(&k.queue)
	}
}

// Step dispatches the next event. It returns false when no events remain.
func (k *Kernel) Step() bool {
	k.dropCancelled()
	if len(k.queue) == 0 {
		return false
	}
	e := heap.Pop(&k.queue).(*Event)
	if e.Time < k.now {
		panic(fmt.Sprintf("des: time went backwards: event %q at %v, now %v", e.Label, e.Time, k.now))
	}
	k.now = e.Time
	k.steps++
	if e.Handler != nil {
		e.Handler(k.now)
	}
	return true
}

// RunUntil dispatches events until the clock would pass horizon or the
// queue drains. Events exactly at the horizon are dispatched. On return the
// clock is advanced to horizon if it had not reached it.
func (k *Kernel) RunUntil(horizon float64) {
	for {
		t, ok := k.PeekTime()
		if !ok || t > horizon {
			break
		}
		k.Step()
	}
	if k.now < horizon {
		k.now = horizon
	}
}

// Run dispatches all remaining events.
func (k *Kernel) Run() {
	for k.Step() {
	}
}
