// Package des implements the discrete-event simulation kernel: a
// deterministic event queue keyed by simulation time with stable
// tie-breaking, and a clock that dispatches events in order.
//
// The paper's evaluation (§5) is produced by "a discrete-event simulation in
// C/C++"; this package is the Go equivalent of that substrate. Everything
// above it (energy flows, scheduling decisions) is expressed as events.
//
// The kernel recycles Event structs through an internal free list, so a
// steady-state simulation allocates nothing per event. The pooling contract
// (DESIGN.md §9): an *Event handle returned by At/AtArg/After is valid only
// until the event fires or its cancellation is collected — holders must drop
// the pointer once the event has been dispatched. Cancel remains safe on
// live handles; retaining a handle past dispatch and cancelling it later
// would cancel an unrelated recycled event.
package des

import (
	"container/heap"
	"fmt"
	"math"
)

// Handler is the callback invoked when an event fires. now is the event's
// timestamp, which equals the kernel clock at dispatch.
type Handler func(now float64)

// ArgHandler is a handler that receives an opaque argument alongside the
// timestamp. Scheduling with AtArg lets callers reuse one long-lived
// function value for many events instead of allocating a closure per event
// (the allocation profile of a 10⁴-unit run is dominated by exactly those
// closures otherwise).
type ArgHandler func(now float64, arg any)

// Event is a scheduled occurrence. Events are ordered by (Time, Priority,
// insertion sequence); the sequence number makes dispatch order fully
// deterministic even for simultaneous events with equal priority.
//
// Events are pooled: see the package comment for the retention contract.
type Event struct {
	Time     float64
	Priority int // lower fires first among equal times
	Label    string
	Handler  Handler

	argFn ArgHandler
	arg   any

	seq       uint64
	index     int // heap index; -1 when not queued
	cancelled bool
}

// Cancelled reports whether the event was cancelled before firing.
func (e *Event) Cancelled() bool { return e.cancelled }

// eventHeap is a min-heap over (Time, Priority, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	a, b := h[i], h[j]
	if a.Time != b.Time {
		return a.Time < b.Time
	}
	if a.Priority != b.Priority {
		return a.Priority < b.Priority
	}
	return a.seq < b.seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Kernel is the simulation clock and event queue. The zero value is not
// usable; construct with NewKernel.
type Kernel struct {
	now     float64
	queue   eventHeap
	nextSeq uint64
	steps   uint64
	free    []*Event // recycled Event structs
}

// NewKernel returns a kernel with the clock at 0.
func NewKernel() *Kernel {
	return &Kernel{}
}

// Now returns the current simulation time.
func (k *Kernel) Now() float64 { return k.now }

// Steps returns the number of events dispatched so far.
func (k *Kernel) Steps() uint64 { return k.steps }

// Pending returns the number of queued (non-cancelled) events.
func (k *Kernel) Pending() int {
	n := 0
	for _, e := range k.queue {
		if !e.cancelled {
			n++
		}
	}
	return n
}

// alloc returns a zeroed event, reusing a recycled one when available.
func (k *Kernel) alloc() *Event {
	n := len(k.free)
	if n == 0 {
		return &Event{}
	}
	e := k.free[n-1]
	k.free[n-1] = nil
	k.free = k.free[:n-1]
	return e
}

// recycle clears an event (dropping its handler, argument and label
// references) and returns it to the free list.
func (k *Kernel) recycle(e *Event) {
	*e = Event{index: -1}
	k.free = append(k.free, e)
}

// Reset returns the kernel to its initial state — clock at 0, step and
// sequence counters cleared, no queued events — while keeping the recycled
// free list warm, so a reused kernel (internal/sim's run arenas) schedules
// its first events without allocating. Still-queued events are recycled;
// any outstanding *Event handles are invalidated exactly as if their
// events had fired (the pooling contract in the package comment).
func (k *Kernel) Reset() {
	for len(k.queue) > 0 {
		k.recycle(heap.Pop(&k.queue).(*Event))
	}
	k.now = 0
	k.steps = 0
	k.nextSeq = 0
}

// At schedules handler to fire at absolute time t with the given priority.
// Scheduling in the past (t < Now) panics: it would silently corrupt
// causality, which in a simulator is always a bug upstream.
func (k *Kernel) At(t float64, priority int, label string, handler Handler) *Event {
	e := k.schedule(t, priority, label)
	e.Handler = handler
	return e
}

// AtArg schedules fn(t, arg) to fire at absolute time t. The function value
// can be shared across many events; arg carries the per-event state (a
// pointer stored in an interface does not allocate).
func (k *Kernel) AtArg(t float64, priority int, label string, fn ArgHandler, arg any) *Event {
	e := k.schedule(t, priority, label)
	e.argFn = fn
	e.arg = arg
	return e
}

func (k *Kernel) schedule(t float64, priority int, label string) *Event {
	if math.IsNaN(t) {
		panic("des: scheduling event at NaN time")
	}
	if t < k.now {
		panic(fmt.Sprintf("des: scheduling %q at t=%v before now=%v", label, t, k.now))
	}
	e := k.alloc()
	e.Time = t
	e.Priority = priority
	e.Label = label
	e.seq = k.nextSeq
	e.index = -1
	k.nextSeq++
	heap.Push(&k.queue, e)
	return e
}

// After schedules handler to fire delay time units from now.
func (k *Kernel) After(delay float64, priority int, label string, handler Handler) *Event {
	if delay < 0 {
		panic(fmt.Sprintf("des: negative delay %v for %q", delay, label))
	}
	return k.At(k.now+delay, priority, label, handler)
}

// Cancel marks an event so it will be skipped at dispatch. Cancelling an
// already-cancelled event is a no-op. Cancelling an event that has already
// fired is undefined under pooling — drop handles at dispatch (see the
// package comment).
func (k *Kernel) Cancel(e *Event) {
	if e == nil {
		return
	}
	e.cancelled = true
}

// PeekTime returns the timestamp of the next non-cancelled event and true,
// or (0, false) when the queue is drained.
func (k *Kernel) PeekTime() (float64, bool) {
	t, _, ok := k.Peek()
	return t, ok
}

// Peek returns the timestamp and priority of the next non-cancelled event.
// Callers merging the kernel queue with externally maintained event streams
// (internal/sim) use the priority to preserve the total dispatch order.
func (k *Kernel) Peek() (t float64, priority int, ok bool) {
	k.dropCancelled()
	if len(k.queue) == 0 {
		return 0, 0, false
	}
	return k.queue[0].Time, k.queue[0].Priority, true
}

func (k *Kernel) dropCancelled() {
	for len(k.queue) > 0 && k.queue[0].cancelled {
		k.recycle(heap.Pop(&k.queue).(*Event))
	}
}

// Step dispatches the next event. It returns false when no events remain.
func (k *Kernel) Step() bool {
	k.dropCancelled()
	if len(k.queue) == 0 {
		return false
	}
	e := heap.Pop(&k.queue).(*Event)
	if e.Time < k.now {
		panic(fmt.Sprintf("des: time went backwards: event %q at %v, now %v", e.Label, e.Time, k.now))
	}
	k.now = e.Time
	k.steps++
	// Copy what the dispatch needs, then recycle before invoking: the
	// handler may schedule new events, and the freshest free-list entry is
	// the most cache-warm one to hand back.
	h, af, a := e.Handler, e.argFn, e.arg
	k.recycle(e)
	if af != nil {
		af(k.now, a)
	} else if h != nil {
		h(k.now)
	}
	return true
}

// RunUntil dispatches events until the clock would pass horizon or the
// queue drains. Events exactly at the horizon are dispatched. On return the
// clock is advanced to horizon if it had not reached it.
func (k *Kernel) RunUntil(horizon float64) {
	for {
		t, ok := k.PeekTime()
		if !ok || t > horizon {
			break
		}
		k.Step()
	}
	if k.now < horizon {
		k.now = horizon
	}
}

// Run dispatches all remaining events.
func (k *Kernel) Run() {
	for k.Step() {
	}
}
