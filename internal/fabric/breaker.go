package fabric

import (
	"sync"
	"time"
)

// breakerState is the classic three-state circuit-breaker automaton.
type breakerState int

const (
	// breakerClosed: requests flow; consecutive failures are counted.
	breakerClosed breakerState = iota
	// breakerOpen: requests are refused until the cooldown elapses.
	breakerOpen
	// breakerHalfOpen: exactly one trial request is admitted; its outcome
	// closes or re-opens the breaker.
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// breaker is a per-worker circuit breaker (DESIGN.md §13). threshold
// consecutive failures open it; after cooldown it half-opens and admits a
// single trial whose outcome decides between closed and open again. It is
// fed from two sides: request outcomes during a sweep, and background
// /healthz probes — a passing probe on an open breaker skips the rest of
// the cooldown (the worker told us it recovered), a failing probe keeps a
// dead worker open without burning sweep attempts on it.
type breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	now       func() time.Time // seam for deterministic tests

	state    breakerState
	failures int       // consecutive, while closed
	openedAt time.Time // when state last became open
	trial    bool      // the half-open trial is in flight
}

func newBreaker(threshold int, cooldown time.Duration, now func() time.Time) *breaker {
	if threshold < 1 {
		threshold = 3
	}
	if cooldown <= 0 {
		cooldown = 5 * time.Second
	}
	if now == nil {
		now = time.Now
	}
	return &breaker{threshold: threshold, cooldown: cooldown, now: now}
}

// allow reports whether a request may be sent to the worker right now and
// claims the half-open trial slot when that is what it grants. Every
// allowed request MUST be followed by success() or failure().
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = breakerHalfOpen
		b.trial = true
		return true
	default: // half-open
		if b.trial {
			return false
		}
		b.trial = true
		return true
	}
}

// success reports a completed request: the worker is healthy, whatever
// state we were in.
func (b *breaker) success() {
	b.mu.Lock()
	b.state = breakerClosed
	b.failures = 0
	b.trial = false
	b.mu.Unlock()
}

// failure reports a failed request: a half-open trial re-opens
// immediately; closed accumulates toward the threshold.
func (b *breaker) failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerHalfOpen:
		b.trip()
	case breakerClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.trip()
		}
	case breakerOpen:
		// A straggler failure from before the trip; nothing to update.
	}
}

// probeOK reports a passing health probe: an open breaker moves straight
// to half-open (the next allow() admits the trial) without waiting out the
// cooldown. A closed breaker's failure streak is NOT reset — /healthz
// passing says the process is up, not that requests succeed.
func (b *breaker) probeOK() {
	b.mu.Lock()
	if b.state == breakerOpen {
		b.state = breakerHalfOpen
		b.trial = false
	}
	b.mu.Unlock()
}

// probeFail reports a failing health probe; it counts like a request
// failure so a dead worker opens without wasting sweep attempts.
func (b *breaker) probeFail() { b.failure() }

func (b *breaker) trip() {
	b.state = breakerOpen
	b.failures = 0
	b.trial = false
	b.openedAt = b.now()
}

func (b *breaker) currentState() breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
