package fabric

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/eadvfs/eadvfs/internal/experiment"
	"github.com/eadvfs/eadvfs/internal/obs"
	"github.com/eadvfs/eadvfs/internal/service"
)

func testSpec() experiment.Spec {
	s := experiment.DefaultSpec()
	s.Horizon = 1500
	s.Replications = 4
	s.Capacities = []float64{200, 1000}
	return s
}

var testPolicies = []string{"lsa", "ea-dvfs"}

// fastOptions returns coordinator options tuned for test time: millisecond
// backoffs and hedges, tight probe cadence.
func fastOptions(workers []string, tr Transport) Options {
	return Options{
		Workers:          workers,
		Transport:        tr,
		ShardsPerWorker:  2,
		MaxAttempts:      6,
		BaseBackoff:      time.Millisecond,
		MaxBackoff:       10 * time.Millisecond,
		HedgeAfter:       25 * time.Millisecond,
		RequestTimeout:   2 * time.Second,
		BreakerThreshold: 3,
		BreakerCooldown:  20 * time.Millisecond,
		ProbeInterval:    5 * time.Millisecond,
	}
}

func singleNodeJSON(t *testing.T, kind string, s experiment.Spec, policies []string) string {
	t.Helper()
	s = service.NormalizeSpec(s)
	var v any
	var err error
	switch kind {
	case "missrate":
		v, err = experiment.MissRateSweep(s, policies)
	case "remaining":
		v, err = experiment.RemainingEnergy(s, policies)
	}
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

func mergedJSON(t *testing.T, res *SweepResult) string {
	t.Helper()
	var v any
	switch res.Kind {
	case "missrate":
		v = res.Merged.MissRate
	case "remaining":
		v = res.Merged.Remaining
	}
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

func TestRingSequenceCoversAllWorkersDeterministically(t *testing.T) {
	workers := []string{"http://a", "http://b", "http://c"}
	r1 := newRing(workers, 64)
	r2 := newRing(workers, 64)
	ownerCount := make([]int, len(workers))
	for _, key := range []string{"k1", "k2", "k3", "k4", "k5", "k6", "k7", "k8", "k9", "k10"} {
		s1, s2 := r1.sequence(key), r2.sequence(key)
		if len(s1) != len(workers) {
			t.Fatalf("sequence(%q) has %d entries, want %d", key, len(s1), len(workers))
		}
		seen := map[int]bool{}
		for _, w := range s1 {
			if seen[w] {
				t.Fatalf("sequence(%q) repeats worker %d", key, w)
			}
			seen[w] = true
		}
		for i := range s1 {
			if s1[i] != s2[i] {
				t.Fatalf("sequence(%q) not deterministic across ring builds", key)
			}
		}
		ownerCount[s1[0]]++
	}
	// With 10 keys and 64 vnodes each worker should own something.
	for i, n := range ownerCount {
		if n == 0 {
			t.Errorf("worker %d owns no keys out of 10 (degenerate ring)", i)
		}
	}
}

func TestBreakerStateMachine(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	b := newBreaker(3, time.Minute, clock)

	if !b.allow() {
		t.Fatal("closed breaker refused")
	}
	b.failure()
	b.failure()
	if b.currentState() != breakerClosed {
		t.Fatal("breaker opened below threshold")
	}
	b.failure() // third consecutive failure trips it
	if b.currentState() != breakerOpen {
		t.Fatal("breaker not open after threshold failures")
	}
	if b.allow() {
		t.Fatal("open breaker admitted during cooldown")
	}

	now = now.Add(time.Minute) // cooldown elapsed: one half-open trial
	if !b.allow() {
		t.Fatal("half-open breaker refused the trial")
	}
	if b.allow() {
		t.Fatal("half-open breaker admitted a second concurrent trial")
	}
	b.failure() // trial failed: open again, fresh cooldown
	if b.currentState() != breakerOpen {
		t.Fatal("failed trial did not re-open")
	}
	if b.allow() {
		t.Fatal("re-opened breaker admitted immediately")
	}

	// A passing health probe skips the rest of the cooldown.
	b.probeOK()
	if b.currentState() != breakerHalfOpen {
		t.Fatal("probeOK did not half-open an open breaker")
	}
	if !b.allow() {
		t.Fatal("probe-recovered breaker refused the trial")
	}
	b.success()
	if b.currentState() != breakerClosed {
		t.Fatal("successful trial did not close")
	}

	// Consecutive-failure counting resets on success.
	b.failure()
	b.failure()
	b.success()
	b.failure()
	b.failure()
	if b.currentState() != breakerClosed {
		t.Fatal("failure streak survived an intervening success")
	}
}

// A healthy pool produces a merged result byte-identical to the
// single-node sweep, for both kinds.
func TestRunSweepHealthyPoolByteIdentical(t *testing.T) {
	spec := testSpec()
	workers := []string{"http://w0", "http://w1"}
	for _, kind := range experiment.SweepKinds() {
		tr := NewFakeTransport(7, map[string]*FakeWorker{
			workers[0]: {}, workers[1]: {},
		})
		c, err := New(fastOptions(workers, tr))
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.RunSweep(context.Background(), kind, spec, testPolicies)
		if err != nil {
			t.Fatalf("RunSweep(%s): %v", kind, err)
		}
		if res.Incomplete != 0 || res.Merged.MissingCells != 0 {
			t.Fatalf("healthy sweep incomplete: %d shards, %d cells", res.Incomplete, res.Merged.MissingCells)
		}
		if got, want := mergedJSON(t, res), singleNodeJSON(t, kind, spec, testPolicies); got != want {
			t.Fatalf("%s: distributed result differs from single-node run", kind)
		}
		for i, sh := range res.Shards {
			if sh.Worker == "" || sh.Err != nil {
				t.Fatalf("shard %d outcome %+v on a healthy pool", i, sh)
			}
		}
	}
}

// The acceptance scenario: three workers, one failing 30% of attempts
// with a drop/delay/5xx mix, another SIGKILLed mid-sweep — the sweep
// completes with zero incomplete shards and the merged result is
// byte-identical to the single-node output. Run under -race.
func TestRunSweepFaultMixAndKillByteIdentical(t *testing.T) {
	spec := testSpec()
	workers := []string{"http://alpha", "http://beta", "http://gamma"}
	flaky := &FakeWorker{
		FailRate: 0.3,
		Faults:   []Fault{FaultDrop, FaultDelay, Fault5xx},
		Delay:    40 * time.Millisecond,
	}
	tr := NewFakeTransport(99, map[string]*FakeWorker{
		workers[0]: flaky, workers[1]: {}, workers[2]: {},
	})
	opts := fastOptions(workers, tr)
	// Drops black-hole until the attempt deadline: keep it short so the
	// retry path, not the test timeout, absorbs them.
	opts.RequestTimeout = 150 * time.Millisecond
	c, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}

	// SIGKILL gamma as soon as the sweep has demonstrably started on it.
	killDone := make(chan struct{})
	go func() {
		defer close(killDone)
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if tr.Calls(workers[2]) >= 1 {
				tr.Kill(workers[2], true)
				return
			}
			time.Sleep(time.Millisecond)
		}
		tr.Kill(workers[2], true) // kill regardless; the sweep may be done
	}()

	res, err := c.RunSweep(context.Background(), "missrate", spec, testPolicies)
	<-killDone
	if err != nil {
		t.Fatalf("RunSweep under faults: %v", err)
	}
	if res.Incomplete != 0 || res.Merged.MissingCells != 0 {
		t.Fatalf("faulty sweep incomplete: %d shards, %d cells", res.Incomplete, res.Merged.MissingCells)
	}
	if got, want := mergedJSON(t, res), singleNodeJSON(t, "missrate", spec, testPolicies); got != want {
		t.Fatal("distributed result under faults differs from single-node run")
	}
}

// Straggler shards hedge onto another worker and the fast response wins.
func TestRunSweepHedgesStragglers(t *testing.T) {
	spec := testSpec()
	workers := []string{"http://slow", "http://fast"}
	tr := NewFakeTransport(3, map[string]*FakeWorker{
		// Nearly every attempt on slow stalls well past the hedge delay.
		workers[0]: {FailRate: 0.999, Faults: []Fault{FaultDelay}, Delay: 400 * time.Millisecond},
		workers[1]: {},
	})
	opts := fastOptions(workers, tr)
	opts.ShardsPerWorker = 4
	opts.HedgeAfter = 20 * time.Millisecond
	c, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	res, err := c.RunSweep(context.Background(), "missrate", spec, testPolicies)
	if err != nil {
		t.Fatal(err)
	}
	if res.Incomplete != 0 {
		t.Fatalf("%d incomplete shards", res.Incomplete)
	}
	hedged := 0
	for _, sh := range res.Shards {
		if sh.Hedged {
			hedged++
		}
	}
	if hedged == 0 {
		t.Fatal("no shard hedged despite a straggling worker")
	}
	if c.hedges.Value() < float64(hedged) {
		t.Fatalf("hedge metric %v < hedged shards %d", c.hedges.Value(), hedged)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("hedging did not rescue stragglers (took %s)", elapsed)
	}
	if got, want := mergedJSON(t, res), singleNodeJSON(t, "missrate", spec, testPolicies); got != want {
		t.Fatal("hedged result differs from single-node run")
	}
}

// A permanent (4xx-class) error fails the shard — and the sweep —
// immediately, without burning retries on a request that cannot succeed.
type permanentTransport struct{ FakeTransport }

func (p *permanentTransport) Do(ctx context.Context, worker string, body []byte) (*Envelope, error) {
	return nil, &PermanentError{Worker: worker, Status: 400, Body: "unknown policy"}
}

func TestRunSweepPermanentErrorFailsFast(t *testing.T) {
	workers := []string{"http://w0", "http://w1"}
	tr := &permanentTransport{}
	tr.workers = map[string]*FakeWorker{workers[0]: {}, workers[1]: {}}
	opts := fastOptions(workers, &tr.FakeTransport)
	opts.Transport = tr
	opts.ProbeInterval = -1
	c, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.RunSweep(context.Background(), "missrate", testSpec(), testPolicies)
	if err == nil || !strings.Contains(err.Error(), "unknown policy") {
		t.Fatalf("want the worker's permanent error, got %v", err)
	}
	if n := c.retries.Value(); n != 0 {
		t.Fatalf("%v retries burned on a permanent error", n)
	}
}

// shardFilterTransport permanently refuses one shard index and delegates
// the rest — a deterministic way to lose exactly one shard.
type shardFilterTransport struct {
	inner  Transport
	reject int
}

func (s *shardFilterTransport) Do(ctx context.Context, worker string, body []byte) (*Envelope, error) {
	var req service.SweepRequest
	if err := json.Unmarshal(body, &req); err == nil && req.Shard != nil && req.Shard.Index == s.reject {
		return nil, &PermanentError{Worker: worker, Status: 400, Body: "shard rejected by test"}
	}
	return s.inner.Do(ctx, worker, body)
}

func (s *shardFilterTransport) Healthy(ctx context.Context, worker string) error {
	return s.inner.Healthy(ctx, worker)
}

// With AllowPartial, a lost shard degrades the sweep to a partial merge
// with explicit Incomplete and MissingCells accounting instead of failing.
func TestRunSweepPartialDegradation(t *testing.T) {
	spec := testSpec()
	workers := []string{"http://w0", "http://w1"}
	fake := NewFakeTransport(5, map[string]*FakeWorker{workers[0]: {}, workers[1]: {}})
	opts := fastOptions(workers, &shardFilterTransport{inner: fake, reject: 1})
	opts.AllowPartial = true
	c, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.RunSweep(context.Background(), "missrate", spec, testPolicies)
	if err != nil {
		t.Fatalf("partial sweep failed outright: %v", err)
	}
	if res.Incomplete != 1 {
		t.Fatalf("Incomplete = %d, want 1", res.Incomplete)
	}
	if res.Merged.MissingCells == 0 {
		t.Fatal("partial merge reports no missing cells")
	}
	if res.Shards[1].Err == nil {
		t.Fatal("rejected shard carries no error")
	}
	// Without AllowPartial the same damage fails the sweep loudly.
	opts.AllowPartial = false
	c2, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c2.RunSweep(context.Background(), "missrate", spec, testPolicies); err == nil {
		t.Fatal("strict sweep succeeded despite a lost shard")
	}
}

// Repeat sweeps route each shard to the same owner, whose single-flight
// cache already holds the digest: the second run is pure cache hits.
func TestConsistentHashingCacheAffinity(t *testing.T) {
	spec := testSpec()
	workers := []string{"http://w0", "http://w1", "http://w2"}
	tr := NewFakeTransport(11, map[string]*FakeWorker{
		workers[0]: {}, workers[1]: {}, workers[2]: {},
	})
	opts := fastOptions(workers, tr)
	opts.HedgeAfter = -1 // hedges would double-serve shards and muddy the count
	c, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	first, err := c.RunSweep(context.Background(), "missrate", spec, testPolicies)
	if err != nil {
		t.Fatal(err)
	}
	if hits := tr.CacheHits(); hits != 0 {
		t.Fatalf("first run saw %d cache hits", hits)
	}
	second, err := c.RunSweep(context.Background(), "missrate", spec, testPolicies)
	if err != nil {
		t.Fatal(err)
	}
	if hits := tr.CacheHits(); hits != len(second.Shards) {
		t.Fatalf("second run: %d cache hits, want %d (one per shard)", hits, len(second.Shards))
	}
	for i := range first.Shards {
		if first.Shards[i].Worker != second.Shards[i].Worker {
			t.Fatalf("shard %d moved from %s to %s across identical runs",
				i, first.Shards[i].Worker, second.Shards[i].Worker)
		}
	}
}

// Retry-After from a shedding worker floors the backoff, and the shard
// still completes elsewhere.
func TestRunSweepHonorsShedding(t *testing.T) {
	spec := testSpec()
	workers := []string{"http://shedding", "http://calm"}
	tr := NewFakeTransport(17, map[string]*FakeWorker{
		workers[0]: {FailRate: 0.9, Faults: []Fault{FaultShed}},
		workers[1]: {},
	})
	c, err := New(fastOptions(workers, tr))
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.RunSweep(context.Background(), "missrate", spec, testPolicies)
	if err != nil {
		t.Fatal(err)
	}
	if res.Incomplete != 0 {
		t.Fatalf("%d incomplete shards", res.Incomplete)
	}
	if got, want := mergedJSON(t, res), singleNodeJSON(t, "missrate", spec, testPolicies); got != want {
		t.Fatal("result under shedding differs from single-node run")
	}
}

// Cancelling the sweep context stops everything promptly.
func TestRunSweepCancellation(t *testing.T) {
	spec := testSpec()
	workers := []string{"http://w0"}
	tr := NewFakeTransport(1, map[string]*FakeWorker{
		workers[0]: {FailRate: 1, Faults: []Fault{FaultDrop}},
	})
	opts := fastOptions(workers, tr)
	opts.RequestTimeout = 30 * time.Second // the drop outlives the test unless cancelled
	c, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, err := c.RunSweep(ctx, "missrate", spec, testPolicies)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("cancelled sweep reported success")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled sweep did not return")
	}
	wg.Wait()
}

// Fabric metrics are exported through the registry.
func TestFabricMetricsExported(t *testing.T) {
	workers := []string{"http://w0"}
	tr := NewFakeTransport(2, map[string]*FakeWorker{workers[0]: {}})
	reg := obs.NewRegistry()
	opts := fastOptions(workers, tr)
	opts.Registry = reg
	c, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunSweep(context.Background(), "missrate", testSpec(), testPolicies); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, name := range []string{
		"fabric_retries_total", "fabric_hedges_total", "fabric_shards_total",
		"fabric_breaker_opens_total", "fabric_shard_seconds", "fabric_attempt_seconds",
		"fabric_breaker_state",
	} {
		if !strings.Contains(text, name) {
			t.Errorf("metric %s not exported", name)
		}
	}
}
