package fabric

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/eadvfs/eadvfs/internal/service"
)

// killableWorker is a real easerve service behind an httptest listener
// with a kill switch: once tripped, the current connection is severed
// mid-request (no status line, no clean close — the TCP-reset view of
// SIGKILL) and every later connection is dropped the same way.
type killableWorker struct {
	ts     *httptest.Server
	dead   atomic.Bool
	sweeps atomic.Int32
}

func newKillableWorker(t *testing.T) *killableWorker {
	t.Helper()
	kw := &killableWorker{}
	svc := service.New(service.Options{Workers: 2})
	inner := svc.Handler()
	kw.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if kw.dead.Load() {
			sever(w)
			return
		}
		if r.URL.Path == "/v1/sweep" {
			kw.sweeps.Add(1)
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(kw.ts.Close)
	return kw
}

// sever drops the client connection without any HTTP response.
func sever(w http.ResponseWriter) {
	hj, ok := w.(http.Hijacker)
	if !ok {
		panic("integration test requires a hijackable connection")
	}
	conn, _, err := hj.Hijack()
	if err != nil {
		return
	}
	conn.Close()
}

// The end-to-end contract over real HTTP: three easerve workers serve a
// coordinated sweep, one is killed mid-sweep (connections severed, no
// goodbye), and the merged result is still byte-identical to a
// single-node run with zero incomplete shards. Run under -race.
func TestIntegrationKillWorkerMidSweep(t *testing.T) {
	spec := testSpec()
	w0, w1, victim := newKillableWorker(t), newKillableWorker(t), newKillableWorker(t)
	workers := []string{w0.ts.URL, w1.ts.URL, victim.ts.URL}

	opts := Options{
		Workers:          workers,
		Transport:        &HTTPTransport{Client: &http.Client{}},
		ShardsPerWorker:  2,
		MaxAttempts:      6,
		BaseBackoff:      2 * time.Millisecond,
		MaxBackoff:       20 * time.Millisecond,
		HedgeAfter:       250 * time.Millisecond,
		RequestTimeout:   10 * time.Second,
		BreakerThreshold: 3,
		BreakerCooldown:  50 * time.Millisecond,
		ProbeInterval:    10 * time.Millisecond,
	}
	c, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}

	// Kill the victim the moment it has work in hand, so in-flight
	// requests die mid-stream and the shards must reroute.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if victim.sweeps.Load() >= 1 {
				break
			}
			time.Sleep(500 * time.Microsecond)
		}
		victim.dead.Store(true)
		victim.ts.CloseClientConnections()
	}()

	res, err := c.RunSweep(context.Background(), "missrate", spec, testPolicies)
	wg.Wait()
	if err != nil {
		t.Fatalf("RunSweep with a killed worker: %v", err)
	}
	if res.Incomplete != 0 || res.Merged.MissingCells != 0 {
		t.Fatalf("sweep incomplete: %d shards, %d cells", res.Incomplete, res.Merged.MissingCells)
	}
	if got, want := mergedJSON(t, res), singleNodeJSON(t, "missrate", spec, testPolicies); got != want {
		t.Fatal("merged result differs from single-node run after mid-sweep kill")
	}
	// Nobody reports the dead worker as their server after the kill —
	// every shard outcome names a live worker or predates the kill with a
	// complete response (which is fine either way); the real assertion is
	// above: complete, byte-identical coverage.
	for i, sh := range res.Shards {
		if sh.Err != nil {
			t.Fatalf("shard %d carries error %v", i, sh.Err)
		}
	}
}

// Distributed remaining-energy sweeps hold the same byte-identity over
// real HTTP (the curve merge path, not just integer tallies).
func TestIntegrationRemainingEnergyByteIdentical(t *testing.T) {
	spec := testSpec()
	w0, w1 := newKillableWorker(t), newKillableWorker(t)
	opts := Options{
		Workers:        []string{w0.ts.URL, w1.ts.URL},
		Transport:      &HTTPTransport{Client: &http.Client{}},
		RequestTimeout: 30 * time.Second,
		HedgeAfter:     -1,
		ProbeInterval:  -1,
	}
	c, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.RunSweep(context.Background(), "remaining", spec, testPolicies)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := mergedJSON(t, res), singleNodeJSON(t, "remaining", spec, testPolicies); got != want {
		t.Fatal("distributed remaining-energy result differs from single-node run")
	}
}
