package fabric

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"github.com/eadvfs/eadvfs/internal/digest"
	"github.com/eadvfs/eadvfs/internal/experiment"
	"github.com/eadvfs/eadvfs/internal/obs"
	"github.com/eadvfs/eadvfs/internal/rng"
	"github.com/eadvfs/eadvfs/internal/service"
)

// Fault is one injectable worker failure mode.
type Fault int

const (
	// FaultDrop loses the request: the attempt hangs until its context
	// expires, like a black-holed TCP connection.
	FaultDrop Fault = iota
	// FaultDelay stalls the response by the worker's Delay before serving
	// it correctly — the straggler that hedging exists for.
	FaultDelay
	// Fault5xx answers 500 without doing any work.
	Fault5xx
	// FaultShed answers 429 with a Retry-After hint, like an overloaded
	// easerve.
	FaultShed
	// FaultMalformed answers 200 with a truncated JSON body.
	FaultMalformed
	// FaultDisconnect breaks the connection mid-stream: the client sees a
	// transport error after partial bytes.
	FaultDisconnect
)

func (f Fault) String() string {
	switch f {
	case FaultDrop:
		return "drop"
	case FaultDelay:
		return "delay"
	case Fault5xx:
		return "5xx"
	case FaultShed:
		return "shed"
	case FaultMalformed:
		return "malformed"
	case FaultDisconnect:
		return "disconnect"
	}
	return "unknown"
}

// FakeWorker is one simulated easerve behind a FakeTransport.
type FakeWorker struct {
	// FailRate in [0, 1) is the probability an attempt draws a fault.
	FailRate float64
	// Faults cycles deterministically over the modes injected on a fault
	// draw (default: 5xx).
	Faults []Fault
	// Delay is FaultDelay's stall (default 50ms).
	Delay time.Duration
	// Dead simulates a killed process: every request and health probe
	// fails with a connection error. Toggle with FakeTransport.Kill.
	Dead bool

	faultCursor int
	calls       int
	served      int
	cache       map[string][]byte // digest → envelope: the single-flight result cache
}

// FakeTransport is a deterministic in-process worker pool: every fault
// draw comes from a seeded stream, so a given seed and request sequence
// replays the identical failure schedule. Shard computation is the real
// experiment.RunShardCtx, and results are cached by request digest like a
// real easerve, so cache-affinity effects (consistent hashing) are
// observable via ServedBy/CacheHits.
type FakeTransport struct {
	mu      sync.Mutex
	workers map[string]*FakeWorker
	draw    *rng.RNG
	hits    int
}

// NewFakeTransport builds a pool over the named workers; seed pins the
// fault schedule.
func NewFakeTransport(seed uint64, workers map[string]*FakeWorker) *FakeTransport {
	for _, w := range workers {
		if len(w.Faults) == 0 {
			w.Faults = []Fault{Fault5xx}
		}
		if w.Delay <= 0 {
			w.Delay = 50 * time.Millisecond
		}
		w.cache = make(map[string][]byte)
	}
	return &FakeTransport{workers: workers, draw: rng.New(seed)}
}

// Kill marks a worker dead (mid-sweep worker loss) — or revives it.
func (t *FakeTransport) Kill(worker string, dead bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if w := t.workers[worker]; w != nil {
		w.Dead = dead
	}
}

// Calls reports how many sweep requests a worker has received.
func (t *FakeTransport) Calls(worker string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if w := t.workers[worker]; w != nil {
		return w.calls
	}
	return 0
}

// Served reports how many requests a worker answered successfully.
func (t *FakeTransport) Served(worker string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if w := t.workers[worker]; w != nil {
		return w.served
	}
	return 0
}

// CacheHits reports pool-wide single-flight cache hits — repeat shards
// landing on a worker that already computed their digest.
func (t *FakeTransport) CacheHits() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.hits
}

var errFakeConnRefused = errors.New("fake: connection refused")

// Do implements Transport with deterministic fault injection in front of
// a real shard computation.
func (t *FakeTransport) Do(ctx context.Context, worker string, body []byte) (*Envelope, error) {
	t.mu.Lock()
	w, ok := t.workers[worker]
	if !ok {
		t.mu.Unlock()
		return nil, fmt.Errorf("fake: unknown worker %q", worker)
	}
	w.calls++
	if w.Dead {
		t.mu.Unlock()
		return nil, errFakeConnRefused
	}
	fault := Fault(-1)
	if w.FailRate > 0 && t.draw.Float64() < w.FailRate {
		fault = w.Faults[w.faultCursor%len(w.Faults)]
		w.faultCursor++
	}
	delay := w.Delay
	t.mu.Unlock()

	switch fault {
	case FaultDrop:
		<-ctx.Done() // black hole: only the caller's deadline ends this
		return nil, ctx.Err()
	case FaultDelay:
		if !sleepCtx(ctx, delay) {
			return nil, ctx.Err()
		}
	case Fault5xx:
		return nil, fmt.Errorf("fake: %s returned %d", worker, http.StatusInternalServerError)
	case FaultShed:
		return nil, &ShedError{Worker: worker, Status: http.StatusTooManyRequests, RetryAfter: time.Millisecond}
	case FaultMalformed:
		return nil, fmt.Errorf("fake: %s sent malformed response: unexpected EOF", worker)
	case FaultDisconnect:
		return nil, fmt.Errorf("fake: %s: %w", worker, errors.New("connection reset mid-stream"))
	}

	env, err := t.serve(ctx, worker, w, body)
	if err != nil {
		return nil, err
	}
	// A mid-serve kill still loses the response.
	t.mu.Lock()
	dead := w.Dead
	if !dead {
		w.served++
	}
	t.mu.Unlock()
	if dead {
		return nil, errFakeConnRefused
	}
	return env, nil
}

// serve computes (or re-serves) the shard like a real worker: validate,
// single-flight cache by request digest, run, store the envelope bytes.
func (t *FakeTransport) serve(ctx context.Context, worker string, w *FakeWorker, body []byte) (*Envelope, error) {
	key := digest.Compact(body)
	t.mu.Lock()
	cached, ok := w.cache[key]
	if ok {
		t.hits++
	}
	t.mu.Unlock()
	if !ok {
		var req service.SweepRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return nil, &PermanentError{Worker: worker, Status: http.StatusBadRequest, Body: err.Error()}
		}
		if req.Shard == nil {
			return nil, &PermanentError{Worker: worker, Status: http.StatusBadRequest, Body: "fake transport serves only sharded requests"}
		}
		res, err := experiment.RunShardCtx(ctx, req.Kind, req.Spec, req.Policies, *req.Shard)
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			return nil, &PermanentError{Worker: worker, Status: http.StatusBadRequest, Body: err.Error()}
		}
		payload, err := json.Marshal(res)
		if err != nil {
			return nil, err
		}
		cached, err = json.Marshal(Envelope{Digest: key, Result: payload})
		if err != nil {
			return nil, err
		}
		t.mu.Lock()
		w.cache[key] = cached
		t.mu.Unlock()
	}
	var env Envelope
	if err := json.Unmarshal(cached, &env); err != nil {
		return nil, err
	}
	// Mirror a traced easerve: when the attempt context carries a span
	// (the coordinator injected a traceparent), synthesize the worker-side
	// request/cache/engine spans so propagation and stitching are testable
	// hermetically. Spans ride transport metadata (Envelope.Spans), never
	// the cached body.
	if sc, traced := obs.SpanFromContext(ctx); traced {
		now := time.Now()
		req := obs.Span{
			Trace: sc.Trace, ID: obs.NewSpanID(), Parent: sc.Span,
			Name: "request:sweep", Service: "easerve", Start: now,
		}
		cacheOutcome := "miss"
		if ok {
			cacheOutcome = "hit"
		}
		cacheSp := obs.Span{
			Trace: sc.Trace, ID: obs.NewSpanID(), Parent: req.ID,
			Name: "cache", Service: "easerve", Start: now,
			Attrs: map[string]string{"outcome": cacheOutcome},
		}
		engine := obs.Span{
			Trace: sc.Trace, ID: obs.NewSpanID(), Parent: req.ID,
			Name: "engine", Service: "easerve", Start: now,
		}
		env.Spans = []obs.Span{cacheSp, engine, req}
	}
	return &env, nil
}

// Healthy implements Transport: dead workers refuse probes.
func (t *FakeTransport) Healthy(ctx context.Context, worker string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	w, ok := t.workers[worker]
	if !ok {
		return fmt.Errorf("fake: unknown worker %q", worker)
	}
	if w.Dead {
		return errFakeConnRefused
	}
	return nil
}
