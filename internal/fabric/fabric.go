// Package fabric distributes evaluation sweeps across a fleet of easerve
// workers and keeps them correct under partial failure (DESIGN.md §13).
// A sweep is planned into disjoint shards (experiment.PlanShards), each
// shard is posted to a worker over the /v1/sweep protocol, and the shard
// results are merged bit-reproducibly: merge placement is fixed by shard
// coordinates, so the merged result is byte-identical to a single-node
// run no matter which workers answered in what order.
//
// The robustness machinery lives in the client:
//
//   - Shards route by consistent hash of their request digest, so a
//     repeated or retried sweep lands each shard on the worker whose
//     single-flight cache owns that digest.
//   - Failed attempts retry with exponential backoff + deterministic
//     jitter on the *next* worker in the shard's ring sequence, honoring
//     Retry-After as a backoff floor when a worker sheds load.
//   - Straggler shards hedge: after HedgeAfter with no answer, a second
//     attempt races on a different worker; the first response wins and
//     the loser is cancelled through its context.
//   - Per-worker circuit breakers (threshold/cooldown/half-open trial)
//     are fed by both request outcomes and background /healthz probes,
//     so a dead worker stops receiving attempts almost immediately.
//   - When a shard exhausts its attempts, the sweep degrades gracefully:
//     with AllowPartial the surviving shards merge into a partial
//     aggregate with explicit Incomplete accounting; otherwise the sweep
//     fails loudly.
package fabric

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/eadvfs/eadvfs/internal/digest"
	"github.com/eadvfs/eadvfs/internal/experiment"
	"github.com/eadvfs/eadvfs/internal/obs"
	"github.com/eadvfs/eadvfs/internal/rng"
	"github.com/eadvfs/eadvfs/internal/service"
)

// Options configures a Coordinator. Zero values take the documented
// defaults.
type Options struct {
	// Workers are the easerve base URLs ("http://host:8080"). Required.
	Workers []string
	// Transport delivers shard requests (default HTTPTransport).
	Transport Transport
	// ShardsPerWorker scales the plan: the sweep splits into
	// len(Workers)*ShardsPerWorker shards (default 2). More shards mean
	// finer rebalancing when a worker dies, at more per-request overhead.
	ShardsPerWorker int
	// MaxAttempts bounds tries per shard, first attempt included
	// (default 4).
	MaxAttempts int
	// BaseBackoff is the first retry delay (default 100ms); it doubles
	// per retry up to MaxBackoff (default 5s), with ±50% deterministic
	// jitter. A worker's Retry-After hint floors the delay.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// HedgeAfter launches a racing attempt on another worker when a shard
	// has been in flight this long (default 2s; negative disables).
	HedgeAfter time.Duration
	// RequestTimeout bounds each attempt (default 120s).
	RequestTimeout time.Duration
	// BreakerThreshold consecutive failures open a worker's breaker
	// (default 3); BreakerCooldown later it half-opens for one trial
	// (default 5s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// ProbeInterval paces background /healthz probes that feed the
	// breakers (default 1s; negative disables).
	ProbeInterval time.Duration
	// AllowPartial degrades to a partial merge with Incomplete accounting
	// when shards exhaust their attempts, instead of failing the sweep.
	AllowPartial bool
	// Seed drives the deterministic backoff jitter (default 1).
	Seed uint64
	// Vnodes per worker on the consistent-hash ring (default 64).
	Vnodes int
	// Registry receives fabric metrics (default: a private registry).
	Registry *obs.Registry
	// Trace, when non-nil, receives the coordinator's spans — one root
	// per sweep, one child per shard, one grandchild per attempt — plus
	// the worker-side spans shipped back in X-Trace-Spans headers, all
	// under one propagated trace ID (DESIGN.md §15). Nil disables
	// tracing: attempts then carry no traceparent and workers serve
	// untraced.
	Trace obs.SpanSink
	// Logf, when set, receives one line per retry/hedge/breaker event.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.Transport == nil {
		o.Transport = &HTTPTransport{}
	}
	if o.ShardsPerWorker <= 0 {
		o.ShardsPerWorker = 2
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 4
	}
	if o.BaseBackoff <= 0 {
		o.BaseBackoff = 100 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 5 * time.Second
	}
	if o.HedgeAfter == 0 {
		o.HedgeAfter = 2 * time.Second
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 120 * time.Second
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = 3
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 5 * time.Second
	}
	if o.ProbeInterval == 0 {
		o.ProbeInterval = time.Second
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Registry == nil {
		o.Registry = obs.NewRegistry()
	}
	return o
}

// Coordinator fans sweeps out to the worker pool. Create with New; safe
// for concurrent RunSweep calls (breaker and metric state is shared, as
// it should be — they describe the workers, not the sweep).
type Coordinator struct {
	opts     Options
	workers  []string
	ring     *ring
	breakers []*breaker

	jmu    sync.Mutex
	jitter *rng.RNG

	retries      *obs.Counter
	hedges       *obs.Counter
	shardsOK     *obs.Counter
	shardsFailed *obs.Counter
	breakerOpens *obs.Counter
	probeFails   *obs.Counter
	shardSecs    *obs.Summary
	attemptSecs  *obs.HistogramMetric
	breakerGauge []*obs.Gauge
}

// New builds a Coordinator over the given worker pool.
func New(opts Options) (*Coordinator, error) {
	if len(opts.Workers) == 0 {
		return nil, errors.New("fabric: no workers configured")
	}
	o := opts.withDefaults()
	c := &Coordinator{
		opts:    o,
		workers: append([]string(nil), o.Workers...),
		ring:    newRing(o.Workers, o.Vnodes),
		jitter:  rng.New(o.Seed),
	}
	reg := o.Registry
	c.retries = reg.Counter("fabric_retries_total", "shard attempts beyond the first (excluding hedges)")
	c.hedges = reg.Counter("fabric_hedges_total", "racing attempts launched for straggler shards")
	const shardsHelp = "shards by final outcome"
	c.shardsOK = reg.Counter(obs.Labeled("fabric_shards_total", "outcome", "ok"), shardsHelp)
	c.shardsFailed = reg.Counter(obs.Labeled("fabric_shards_total", "outcome", "failed"), shardsHelp)
	c.breakerOpens = reg.Counter("fabric_breaker_opens_total", "circuit-breaker trips across all workers")
	c.probeFails = reg.Counter("fabric_probe_failures_total", "failed /healthz probes")
	c.shardSecs = reg.Summary("fabric_shard_seconds", "wall time from first attempt to shard completion")
	c.attemptSecs = reg.Histogram("fabric_attempt_seconds", "per-attempt latency", 0, 30, 15)
	c.breakers = make([]*breaker, len(c.workers))
	c.breakerGauge = make([]*obs.Gauge, len(c.workers))
	for i, w := range c.workers {
		c.breakers[i] = newBreaker(o.BreakerThreshold, o.BreakerCooldown, nil)
		c.breakerGauge[i] = reg.Gauge(obs.Labeled("fabric_breaker_state", "worker", w),
			"breaker state per worker: 0 closed, 1 open, 2 half-open")
	}
	return c, nil
}

// Registry returns the coordinator's metrics registry.
func (c *Coordinator) Registry() *obs.Registry { return c.opts.Registry }

// ShardOutcome records how one shard fared: who finally served it, how
// many attempts (stalls with no admitting worker included) it cost,
// whether a hedge was launched, and the terminal error if it was lost.
type ShardOutcome struct {
	Shard    experiment.Shard
	Key      string // request digest = routing key = worker cache key
	Worker   string // serving worker ("" when the shard failed)
	Attempts int
	Hedged   bool
	Err      error
}

// SweepResult is a distributed sweep's outcome: the merged aggregate plus
// per-shard accounting. Incomplete counts shards that exhausted their
// attempts — zero unless Options.AllowPartial let a damaged sweep
// degrade; Merged.MissingCells then quantifies the lost grid coverage.
type SweepResult struct {
	Kind       string
	Spec       experiment.Spec
	Policies   []string
	Merged     *experiment.MergedSweep
	Shards     []ShardOutcome
	Incomplete int
}

// shardPlan is one shard plus its canonical wire form.
type shardPlan struct {
	shard experiment.Shard
	body  []byte
	key   string
}

// RunSweep distributes one sweep over the pool and merges the shards.
// The spec is normalized exactly as a worker normalizes it
// (service.NormalizeSpec), so every shard request is already canonical
// and its digest is the worker-side cache key.
func (c *Coordinator) RunSweep(ctx context.Context, kind string, spec experiment.Spec, policies []string) (*SweepResult, error) {
	spec = service.NormalizeSpec(spec)
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if len(policies) == 0 {
		return nil, errors.New("fabric: no policies requested")
	}
	shards, err := experiment.PlanShards(kind, spec, len(c.workers)*c.opts.ShardsPerWorker)
	if err != nil {
		return nil, err
	}
	plans := make([]shardPlan, len(shards))
	for i := range shards {
		body, err := json.Marshal(service.SweepRequest{Kind: kind, Spec: spec, Policies: policies, Shard: &shards[i]})
		if err != nil {
			return nil, err
		}
		plans[i] = shardPlan{shard: shards[i], body: body, key: digest.Compact(body)}
	}

	pctx, stopProbes := context.WithCancel(ctx)
	defer stopProbes()
	if c.opts.ProbeInterval > 0 {
		go c.probeLoop(pctx)
	}

	// Root span of the whole distributed sweep; every shard, attempt and
	// worker span below shares its trace ID.
	root := obs.StartSpan(c.opts.Trace, "eactl", "sweep", obs.SpanContext{})
	root.SetAttr("kind", kind)
	root.SetInt("shards", int64(len(plans)))
	root.SetInt("workers", int64(len(c.workers)))
	defer root.End()

	out := &SweepResult{Kind: kind, Spec: spec, Policies: policies, Shards: make([]ShardOutcome, len(plans))}
	results := make([]*experiment.ShardResult, len(plans))
	var wg sync.WaitGroup
	for i := range plans {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], out.Shards[i] = c.runShard(ctx, plans[i], root.Context())
		}(i)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for i := range out.Shards {
		if out.Shards[i].Err != nil {
			out.Incomplete++
		}
	}
	root.SetInt("incomplete", int64(out.Incomplete))
	merged, err := experiment.MergeShards(kind, spec, policies, results, c.opts.AllowPartial)
	if err != nil {
		if out.Incomplete > 0 {
			return nil, fmt.Errorf("fabric: %d/%d shards lost (first error: %w)",
				out.Incomplete, len(plans), firstShardError(out.Shards))
		}
		return nil, err
	}
	out.Merged = merged
	return out, nil
}

func firstShardError(shards []ShardOutcome) error {
	for i := range shards {
		if shards[i].Err != nil {
			return shards[i].Err
		}
	}
	return errors.New("unknown shard failure")
}

// attemptResult is one worker's answer for a shard attempt.
type attemptResult struct {
	worker  int
	res     *experiment.ShardResult
	err     error
	started time.Time
}

// runShard drives one shard to completion through the retry/hedge/breaker
// state machine. Exactly one goroutine runs this per shard; attempt
// goroutines communicate only through the buffered results channel, and
// the shard context cancels every losing attempt the moment one wins.
func (c *Coordinator) runShard(ctx context.Context, p shardPlan, parent obs.SpanContext) (*experiment.ShardResult, ShardOutcome) {
	out := ShardOutcome{Shard: p.shard, Key: p.key}
	start := time.Now()
	defer func() { c.shardSecs.Observe(time.Since(start).Seconds()) }()

	// One span covers the shard from first launch to final outcome; each
	// attempt nests under it with its worker choice, retry ordinal,
	// hedge flag and ring position, and the accumulated backoff lands on
	// the shard span at the end.
	span := obs.StartSpan(c.opts.Trace, "eactl", "shard", parent)
	span.SetInt("shard", int64(p.shard.Index))
	span.SetAttr("key", p.key)
	var backoffTotal time.Duration

	seq := c.ring.sequence(p.key)
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Buffered for every attempt that could ever be launched, so a losing
	// hedge's send never blocks after runShard returns.
	resc := make(chan attemptResult, c.opts.MaxAttempts+1)
	inflight := make(map[int]bool, 2)
	cursor := 0

	finishSpan := func(outcome string) {
		span.SetAttr("outcome", outcome)
		span.SetInt("attempts", int64(out.Attempts))
		span.SetBool("hedged", out.Hedged)
		span.SetInt("backoff_ns", int64(backoffTotal))
		if out.Worker != "" {
			span.SetAttr("worker", out.Worker)
		}
		span.End()
	}

	fail := func(err error) (*experiment.ShardResult, ShardOutcome) {
		out.Err = err
		c.shardsFailed.Inc()
		c.logf("shard %d lost after %d attempts: %v", p.shard.Index, out.Attempts, err)
		finishSpan("failed")
		return nil, out
	}

	// launch starts an attempt on the next ring-sequence worker that is
	// not already serving this shard and whose breaker admits it; false
	// when no worker qualifies right now.
	launch := func(hedge bool) bool {
		for n := 0; n < len(seq); n++ {
			pos := cursor % len(seq)
			w := seq[pos]
			cursor++
			if inflight[w] || !c.breakers[w].allow() {
				continue
			}
			inflight[w] = true
			out.Attempts++
			asp := obs.StartSpan(c.opts.Trace, "eactl", "attempt", span.Context())
			asp.SetAttr("worker", c.workers[w])
			asp.SetInt("try", int64(out.Attempts))
			asp.SetInt("ring_pos", int64(pos))
			asp.SetBool("hedge", hedge)
			go c.attempt(sctx, w, p, asp, resc)
			return true
		}
		return false
	}

	backoff := c.opts.BaseBackoff
	// nextBackoff sleeps the jittered current delay (flooring at min) and
	// doubles it; false on context cancellation.
	nextBackoff := func(min time.Duration) bool {
		d := c.jitterDelay(backoff)
		if d < min {
			d = min
		}
		if backoff *= 2; backoff > c.opts.MaxBackoff {
			backoff = c.opts.MaxBackoff
		}
		backoffTotal += d
		return sleepCtx(ctx, d)
	}
	// ensureLaunched keeps trying to start an attempt, counting stalls
	// (every worker breaker-open or busy) against the attempt budget so a
	// fully dead fleet fails the shard instead of spinning forever.
	ensureLaunched := func() bool {
		for !launch(false) {
			out.Attempts++
			if out.Attempts >= c.opts.MaxAttempts {
				return false
			}
			if !nextBackoff(0) {
				return false
			}
		}
		return true
	}

	var hedgeTimer *time.Timer
	var hedgeC <-chan time.Time
	if c.opts.HedgeAfter > 0 {
		hedgeTimer = time.NewTimer(c.opts.HedgeAfter)
		defer hedgeTimer.Stop()
		hedgeC = hedgeTimer.C
	}
	rearmHedge := func() {
		if hedgeTimer == nil {
			return
		}
		if !hedgeTimer.Stop() {
			select {
			case <-hedgeTimer.C:
			default:
			}
		}
		hedgeTimer.Reset(c.opts.HedgeAfter)
	}

	if !ensureLaunched() {
		return fail(errors.New("fabric: no worker available"))
	}
	var lastErr error
	for {
		select {
		case r := <-resc:
			delete(inflight, r.worker)
			c.attemptSecs.Observe(time.Since(r.started).Seconds())
			if r.err == nil {
				// First response wins; cancel (and ignore) any racer.
				cancel()
				out.Worker = c.workers[r.worker]
				c.shardsOK.Inc()
				finishSpan("ok")
				return r.res, out
			}
			lastErr = r.err
			if IsPermanent(r.err) {
				cancel()
				return fail(r.err)
			}
			c.logf("shard %d attempt on %s failed: %v", p.shard.Index, c.workers[r.worker], r.err)
			if len(inflight) > 0 {
				continue // the hedge racer is still running; let it finish
			}
			if out.Attempts >= c.opts.MaxAttempts {
				return fail(lastErr)
			}
			var shed *ShedError
			var floor time.Duration
			if errors.As(r.err, &shed) {
				floor = shed.RetryAfter
			}
			if !nextBackoff(floor) {
				return fail(ctx.Err())
			}
			c.retries.Inc()
			if !ensureLaunched() {
				return fail(lastErr)
			}
			rearmHedge()
		case <-hedgeC:
			if out.Attempts < c.opts.MaxAttempts && len(inflight) > 0 && launch(true) {
				c.hedges.Inc()
				out.Hedged = true
				c.logf("shard %d hedged after %s", p.shard.Index, c.opts.HedgeAfter)
			}
		case <-ctx.Done():
			return fail(ctx.Err())
		}
	}
}

// attempt posts the shard to one worker, classifies the outcome, feeds
// the worker's breaker, and reports on resc. A loss to a racing sibling
// (shard context cancelled) does not penalize the breaker. The attempt
// span travels into the transport via the context (HTTPTransport turns
// it into a traceparent header) and is ended here with the outcome; the
// worker's own spans from the response envelope are forwarded to the
// trace sink, completing the stitched tree.
func (c *Coordinator) attempt(sctx context.Context, w int, p shardPlan, span *obs.ActiveSpan, resc chan<- attemptResult) {
	started := time.Now()
	actx, cancel := context.WithTimeout(sctx, c.opts.RequestTimeout)
	defer cancel()
	if sc := span.Context(); sc.Valid() {
		actx = obs.ContextWithSpan(actx, sc)
	}
	env, err := c.opts.Transport.Do(actx, c.workers[w], p.body)
	var res *experiment.ShardResult
	if err == nil {
		res, err = decodeShard(env, p)
	}
	switch {
	case err == nil:
		c.breakers[w].success()
	case sctx.Err() != nil:
		// The shard is already decided (a sibling won or the sweep died);
		// this attempt's failure says nothing about the worker.
		err = sctx.Err()
	case IsPermanent(err):
		// The worker correctly refused a bad request; not its fault.
	default:
		c.noteFailure(w)
	}
	switch {
	case err == nil:
		span.SetAttr("outcome", "ok")
	case errors.Is(err, context.Canceled):
		// Typically a hedged loser cancelled mid-flight by the winner.
		span.SetAttr("outcome", "cancelled")
	default:
		span.SetAttr("outcome", "error")
		span.SetAttr("error", err.Error())
	}
	span.End()
	if env != nil && c.opts.Trace != nil {
		for _, sp := range env.Spans {
			c.opts.Trace.OnSpan(sp)
		}
	}
	c.breakerGauge[w].Set(float64(c.breakers[w].currentState()))
	resc <- attemptResult{worker: w, res: res, err: err, started: started}
}

// decodeShard validates a worker envelope against the plan: the digest
// must be the routing key (worker and coordinator agree on the canonical
// request) and the payload must be this very shard's result. Violations
// are retryable — a confused worker should not poison the merge.
func decodeShard(env *Envelope, p shardPlan) (*experiment.ShardResult, error) {
	if env.Digest != p.key {
		return nil, fmt.Errorf("fabric: digest mismatch: worker reported %.12s, want %.12s", env.Digest, p.key)
	}
	var res experiment.ShardResult
	if err := json.Unmarshal(env.Result, &res); err != nil {
		return nil, fmt.Errorf("fabric: malformed shard payload: %w", err)
	}
	if res.Shard != p.shard {
		return nil, fmt.Errorf("fabric: worker answered shard %d, want %d", res.Shard.Index, p.shard.Index)
	}
	return &res, nil
}

// noteFailure feeds a breaker and counts the trip if this failure opened
// it.
func (c *Coordinator) noteFailure(w int) {
	before := c.breakers[w].currentState()
	c.breakers[w].failure()
	if before != breakerOpen && c.breakers[w].currentState() == breakerOpen {
		c.breakerOpens.Inc()
		c.logf("breaker opened for %s", c.workers[w])
	}
}

// probeLoop feeds the breakers from /healthz until its context dies: a
// failing probe counts like a failed request (a dead worker opens without
// burning sweep attempts), a passing probe lets an open breaker skip the
// rest of its cooldown.
func (c *Coordinator) probeLoop(ctx context.Context) {
	t := time.NewTicker(c.opts.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			for i := range c.workers {
				pctx, cancel := context.WithTimeout(ctx, c.opts.ProbeInterval)
				err := c.opts.Transport.Healthy(pctx, c.workers[i])
				cancel()
				if ctx.Err() != nil {
					return
				}
				if err != nil {
					c.probeFails.Inc()
					c.noteFailure(i)
				} else {
					c.breakers[i].probeOK()
				}
				c.breakerGauge[i].Set(float64(c.breakers[i].currentState()))
			}
		}
	}
}

// jitterDelay spreads d to [0.5d, 1.5d) with the coordinator's
// deterministic jitter stream, decorrelating retry storms across shards
// while keeping runs reproducible for a fixed Options.Seed.
func (c *Coordinator) jitterDelay(d time.Duration) time.Duration {
	c.jmu.Lock()
	f := 0.5 + c.jitter.Float64()
	c.jmu.Unlock()
	return time.Duration(float64(d) * f)
}

func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.opts.Logf != nil {
		c.opts.Logf(format, args...)
	}
}
