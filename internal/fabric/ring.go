package fabric

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// ring is a consistent-hash ring over the worker pool. Shards are placed
// by their request digest, so a given shard request always prefers the
// same owning worker: repeat and retried sweeps land on the node whose
// single-flight cache already holds (or is computing) that digest, and
// adding or removing one worker reassigns only the shards on its arcs.
// Each worker contributes vnodes virtual points to smooth the split.
type ring struct {
	points  []ringPoint
	workers int
}

type ringPoint struct {
	hash   uint64
	worker int
}

func newRing(workers []string, vnodes int) *ring {
	if vnodes < 1 {
		vnodes = 64
	}
	r := &ring{
		points:  make([]ringPoint, 0, len(workers)*vnodes),
		workers: len(workers),
	}
	for wi, w := range workers {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: ringHash(fmt.Sprintf("%s\x00%d", w, v)), worker: wi})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r
}

func ringHash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// sequence returns every worker index exactly once, ordered by ring
// position starting at key's owner: sequence(key)[0] owns the key, and
// each later entry is the natural fallback when its predecessors are
// unavailable — the same order a replica placement would use, so retries
// and hedges reroute deterministically.
func (r *ring) sequence(key string) []int {
	if r.workers == 0 {
		return nil
	}
	h := ringHash(key)
	i := sort.Search(len(r.points), func(j int) bool { return r.points[j].hash >= h })
	seen := make([]bool, r.workers)
	seq := make([]int, 0, r.workers)
	for n := 0; n < len(r.points) && len(seq) < r.workers; n++ {
		p := r.points[(i+n)%len(r.points)]
		if !seen[p.worker] {
			seen[p.worker] = true
			seq = append(seq, p.worker)
		}
	}
	return seq
}
