package fabric

import (
	"context"
	"testing"

	"github.com/eadvfs/eadvfs/internal/obs"
)

// A traced sweep over a healthy fake pool must produce one coherent
// trace: a single eactl root, a shard span per planned shard, each
// holding exactly one winning attempt whose worker-side request/cache/
// engine spans share the propagated trace ID.
func TestRunSweepEmitsStitchableTrace(t *testing.T) {
	spec := testSpec()
	workers := []string{"http://w0", "http://w1"}
	tr := NewFakeTransport(7, map[string]*FakeWorker{
		workers[0]: {}, workers[1]: {},
	})
	rec := obs.NewRecorder()
	opts := fastOptions(workers, tr)
	opts.Trace = rec
	c, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.RunSweep(context.Background(), "missrate", spec, testPolicies)
	if err != nil {
		t.Fatal(err)
	}
	if res.Incomplete != 0 {
		t.Fatalf("healthy sweep incomplete: %d", res.Incomplete)
	}

	spans := rec.Spans()
	tree := obs.StitchSpans(spans)
	if tree.Traces != 1 {
		t.Fatalf("sweep produced %d trace IDs, want 1", tree.Traces)
	}
	if tree.Orphans != 0 {
		t.Fatalf("%d orphaned spans on a healthy pool", tree.Orphans)
	}
	if len(tree.Roots) != 1 || tree.Roots[0].Span.Name != "sweep" || tree.Roots[0].Span.Service != "eactl" {
		t.Fatalf("want single eactl sweep root, got %+v", tree.Roots)
	}

	root := tree.Roots[0]
	shards := 0
	for _, sh := range root.Children {
		if sh.Span.Name != "shard" {
			continue
		}
		shards++
		wins := 0
		for _, a := range sh.Children {
			if a.Span.Name != "attempt" {
				continue
			}
			if a.Span.Attrs["outcome"] == "ok" {
				wins++
				// The winning attempt carries the worker's spans:
				// request:sweep with cache and engine children.
				var reqNode *obs.SpanNode
				for _, w := range a.Children {
					if w.Span.Name == "request:sweep" && w.Span.Service == "easerve" {
						reqNode = w
					}
				}
				if reqNode == nil {
					t.Fatalf("winning attempt of shard %s has no worker request span", sh.Span.Attrs["shard"])
				}
				got := map[string]bool{}
				for _, cch := range reqNode.Children {
					got[cch.Span.Name] = true
				}
				if !got["cache"] || !got["engine"] {
					t.Fatalf("worker request span missing cache/engine children: %v", got)
				}
			}
		}
		if wins != 1 {
			t.Fatalf("shard %s has %d winning attempts, want 1", sh.Span.Attrs["shard"], wins)
		}
	}
	if shards != len(res.Shards) {
		t.Fatalf("trace has %d shard spans, plan had %d", shards, len(res.Shards))
	}
}

// With tracing disabled (Options.Trace nil) a sweep emits nothing and
// the transport sees no span context — the fake worker synthesizes spans
// only when a traceparent was propagated.
func TestRunSweepUntracedEmitsNoSpans(t *testing.T) {
	spec := testSpec()
	workers := []string{"http://w0"}
	tr := NewFakeTransport(3, map[string]*FakeWorker{workers[0]: {}})
	c, err := New(fastOptions(workers, tr))
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.RunSweep(context.Background(), "missrate", spec, testPolicies)
	if err != nil {
		t.Fatal(err)
	}
	if res.Incomplete != 0 {
		t.Fatalf("untraced sweep incomplete: %d", res.Incomplete)
	}
}
