package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"github.com/eadvfs/eadvfs/internal/obs"
)

// Envelope is the worker response a Transport returns on success: the
// /v1/sweep JSON envelope (internal/service response) with the worker's
// cache key and the raw result payload.
type Envelope struct {
	Digest string          `json:"config_digest"`
	Result json.RawMessage `json:"result"`

	// Spans carries the worker-side spans of a traced request, decoded
	// from the X-Trace-Spans response header. Transport metadata, not
	// part of the response body (which stays byte-identical under
	// tracing), hence excluded from the JSON form.
	Spans []obs.Span `json:"-"`
}

// Transport delivers one sharded sweep request to a worker. body is the
// canonical service.SweepRequest JSON; its digest.Compact is both the
// shard's routing key and the worker's cache key. Implementations:
// HTTPTransport (production) and FakeTransport (hermetic fault
// injection).
type Transport interface {
	Do(ctx context.Context, worker string, body []byte) (*Envelope, error)
	// Healthy probes the worker's /healthz; nil means routable.
	Healthy(ctx context.Context, worker string) error
}

// PermanentError marks a worker response retrying cannot fix: the request
// itself was refused (client-class 4xx). The coordinator fails the shard
// immediately instead of burning retries, and the worker's breaker is not
// penalized — the worker did its job.
type PermanentError struct {
	Worker string
	Status int
	Body   string
}

func (e *PermanentError) Error() string {
	return fmt.Sprintf("fabric: %s refused request: %d %s", e.Worker, e.Status, e.Body)
}

// IsPermanent reports whether err is terminal for the whole shard.
func IsPermanent(err error) bool {
	var pe *PermanentError
	return errors.As(err, &pe)
}

// ShedError marks a load-shed response (429 overload, 503 draining): the
// worker is alive but refusing work, and RetryAfter carries its backoff
// hint, which the coordinator honors as a floor on its own backoff.
type ShedError struct {
	Worker     string
	Status     int
	RetryAfter time.Duration
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("fabric: %s shed request: %d (retry after %s)", e.Worker, e.Status, e.RetryAfter)
}

// HTTPTransport speaks the easerve protocol: POST /v1/sweep for shards,
// GET /healthz for probes. Worker addresses are base URLs
// ("http://host:8080").
type HTTPTransport struct {
	// Client defaults to a dedicated client with no global timeout —
	// per-attempt budgets come from the coordinator's context.
	Client *http.Client
}

func (t *HTTPTransport) client() *http.Client {
	if t.Client != nil {
		return t.Client
	}
	return http.DefaultClient
}

// maxErrorBody bounds how much of a failed response we read back for the
// error message; a worker returning garbage must not balloon coordinator
// memory.
const maxErrorBody = 4 << 10

func (t *HTTPTransport) Do(ctx context.Context, worker string, body []byte) (*Envelope, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, worker+"/v1/sweep", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	// Propagate trace context: when the attempt's context carries a span
	// (coordinator tracing on), the worker sees a standard traceparent
	// header and returns its own spans in X-Trace-Spans.
	if sc, ok := obs.SpanFromContext(ctx); ok {
		req.Header.Set("traceparent", sc.Traceparent())
	}
	resp, err := t.client().Do(req)
	if err != nil {
		return nil, err // transport failure: retryable
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK:
		var env Envelope
		if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(&env); err != nil {
			// Malformed or truncated body (mid-stream disconnect):
			// retryable — another worker can serve the shard.
			return nil, fmt.Errorf("fabric: %s sent malformed response: %w", worker, err)
		}
		if env.Digest == "" || len(env.Result) == 0 {
			return nil, fmt.Errorf("fabric: %s sent incomplete envelope", worker)
		}
		// Worker spans are best-effort observability: a corrupt header
		// never fails a shard that computed correctly.
		env.Spans, _ = obs.DecodeSpanHeader(resp.Header.Get(obs.SpanHeader))
		return &env, nil
	case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable:
		return nil, &ShedError{Worker: worker, Status: resp.StatusCode, RetryAfter: retryAfterOf(resp)}
	case resp.StatusCode >= 400 && resp.StatusCode < 500:
		excerpt, _ := io.ReadAll(io.LimitReader(resp.Body, maxErrorBody))
		return nil, &PermanentError{Worker: worker, Status: resp.StatusCode, Body: string(bytes.TrimSpace(excerpt))}
	default: // 5xx and anything exotic: the worker is unwell, retryable
		return nil, fmt.Errorf("fabric: %s returned %d", worker, resp.StatusCode)
	}
}

func (t *HTTPTransport) Healthy(ctx context.Context, worker string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, worker+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := t.client().Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, maxErrorBody))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("fabric: %s healthz: %d", worker, resp.StatusCode)
	}
	return nil
}

// retryAfterOf parses a Retry-After header in seconds form; zero when
// absent or unparsable.
func retryAfterOf(resp *http.Response) time.Duration {
	if v := resp.Header.Get("Retry-After"); v != "" {
		if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
			return time.Duration(secs) * time.Second
		}
	}
	return 0
}
