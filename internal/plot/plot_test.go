package plot

import (
	"strings"
	"testing"
)

func TestChartBasics(t *testing.T) {
	l := Line{Name: "lin", X: []float64{0, 1, 2, 3}, Y: []float64{0, 1, 2, 3}}
	out := Chart("title", 40, 10, l)
	if !strings.Contains(out, "title") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "lin") {
		t.Fatal("legend missing")
	}
	if strings.Count(out, "\n") < 12 {
		t.Fatalf("chart too short:\n%s", out)
	}
	// The increasing series must put a marker in the top row region and
	// bottom row region.
	rows := strings.Split(out, "\n")
	if !strings.Contains(rows[1], "*") && !strings.Contains(rows[2], "*") {
		t.Fatalf("no marker near top:\n%s", out)
	}
}

func TestChartMultipleSeriesMarkers(t *testing.T) {
	a := Line{Name: "a", X: []float64{0, 1}, Y: []float64{0, 1}}
	b := Line{Name: "b", X: []float64{0, 1}, Y: []float64{1, 0}}
	out := Chart("", 30, 8, a, b)
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatalf("distinct markers missing:\n%s", out)
	}
}

func TestChartConstantSeries(t *testing.T) {
	l := Line{Name: "c", X: []float64{0, 1, 2}, Y: []float64{5, 5, 5}}
	out := Chart("", 30, 6, l) // must not divide by zero
	if out == "" {
		t.Fatal("empty chart")
	}
}

func TestChartValidation(t *testing.T) {
	good := Line{Name: "g", X: []float64{0}, Y: []float64{0}}
	for i, f := range []func(){
		func() { Chart("", 5, 5, good) },
		func() { Chart("", 30, 2, good) },
		func() { Chart("", 30, 8) },
		func() { Chart("", 30, 8, Line{Name: "bad", X: []float64{1}, Y: nil}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestTableAlignment(t *testing.T) {
	out := Table([]string{"U", "ratio"}, [][]string{{"0.2", "2.5"}, {"0.4", "1.33"}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines:\n%s", len(lines), out)
	}
	if len(lines[0]) != len(lines[1]) || len(lines[1]) != len(lines[2]) {
		t.Fatalf("misaligned table:\n%s", out)
	}
	if !strings.Contains(lines[1], "-") {
		t.Fatal("separator missing")
	}
}

func TestTableValidation(t *testing.T) {
	for i, f := range []func(){
		func() { Table(nil, nil) },
		func() { Table([]string{"a"}, [][]string{{"1", "2"}}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestCSV(t *testing.T) {
	a := Line{Name: "a", X: []float64{0, 1}, Y: []float64{2, 3}}
	b := Line{Name: "b", X: []float64{0, 1}, Y: []float64{4, 5}}
	out := CSV("t", a, b)
	want := "t,a,b\n0,2,4\n1,3,5\n"
	if out != want {
		t.Fatalf("CSV = %q, want %q", out, want)
	}
}

func TestCSVShapeMismatchPanics(t *testing.T) {
	a := Line{Name: "a", X: []float64{0, 1}, Y: []float64{2, 3}}
	b := Line{Name: "b", X: []float64{0}, Y: []float64{4}}
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch did not panic")
		}
	}()
	CSV("t", a, b)
}

func TestDownsampled(t *testing.T) {
	l := Line{Name: "d"}
	for i := 0; i < 100; i++ {
		l.X = append(l.X, float64(i))
		l.Y = append(l.Y, float64(i*i))
	}
	d := Downsampled(l, 10)
	if len(d.X) != 10 {
		t.Fatalf("downsampled to %d points", len(d.X))
	}
	if d.X[0] != 0 || d.X[9] != 99 {
		t.Fatalf("endpoints not preserved: %v, %v", d.X[0], d.X[9])
	}
	// Short series pass through.
	s := Line{Name: "s", X: []float64{1, 2}, Y: []float64{3, 4}}
	if got := Downsampled(s, 10); len(got.X) != 2 {
		t.Fatal("short series resampled")
	}
}
