// Package plot renders experiment results for terminals and CSV files:
// ASCII line charts for the paper's figures and aligned tables for
// Table 1. No graphics dependencies — the output is meant to be diffed,
// logged and pasted into EXPERIMENTS.md.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Line is one named series of (x, y) points.
type Line struct {
	Name string
	X    []float64
	Y    []float64
}

// markers distinguish up to eight overlaid series.
var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Chart renders lines into a width×height ASCII grid with axis labels.
// All series share the axes; ranges are computed from the data (the y
// range includes 0). It panics on malformed series.
func Chart(title string, width, height int, lines ...Line) string {
	if width < 16 || height < 4 {
		panic(fmt.Sprintf("plot: chart too small %dx%d", width, height))
	}
	if len(lines) == 0 {
		panic("plot: no series")
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := 0.0, math.Inf(-1)
	for _, l := range lines {
		if len(l.X) != len(l.Y) || len(l.X) == 0 {
			panic(fmt.Sprintf("plot: series %q has %d xs and %d ys", l.Name, len(l.X), len(l.Y)))
		}
		for i := range l.X {
			minX = math.Min(minX, l.X[i])
			maxX = math.Max(maxX, l.X[i])
			minY = math.Min(minY, l.Y[i])
			maxY = math.Max(maxY, l.Y[i])
		}
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for li, l := range lines {
		m := markers[li%len(markers)]
		for i := range l.X {
			c := int(float64(width-1) * (l.X[i] - minX) / (maxX - minX))
			r := height - 1 - int(float64(height-1)*(l.Y[i]-minY)/(maxY-minY))
			if c >= 0 && c < width && r >= 0 && r < height {
				grid[r][c] = m
			}
		}
	}

	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	for r, row := range grid {
		var label string
		switch r {
		case 0:
			label = fmt.Sprintf("%8.3g", maxY)
		case height - 1:
			label = fmt.Sprintf("%8.3g", minY)
		default:
			label = strings.Repeat(" ", 8)
		}
		fmt.Fprintf(&b, "%s |%s|\n", label, string(row))
	}
	fmt.Fprintf(&b, "%s +%s+\n", strings.Repeat(" ", 8), strings.Repeat("-", width))
	fmt.Fprintf(&b, "%s  %-*.4g%*.4g\n", strings.Repeat(" ", 8), width/2, minX, width-width/2, maxX)
	for li, l := range lines {
		fmt.Fprintf(&b, "%s   %c %s\n", strings.Repeat(" ", 8), markers[li%len(markers)], l.Name)
	}
	return b.String()
}

// Table renders a right-aligned text table. Rows must all have len(header)
// cells.
func Table(header []string, rows [][]string) string {
	if len(header) == 0 {
		panic("plot: empty table header")
	}
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		if len(row) != len(header) {
			panic(fmt.Sprintf("plot: row has %d cells, header %d", len(row), len(header)))
		}
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders series as comma-separated columns with the given x column
// name: x,name1,name2,... All series must share X.
func CSV(xName string, lines ...Line) string {
	if len(lines) == 0 {
		panic("plot: no series")
	}
	n := len(lines[0].X)
	var b strings.Builder
	b.WriteString(xName)
	for _, l := range lines {
		if len(l.X) != n || len(l.Y) != n {
			panic("plot: CSV series shape mismatch")
		}
		b.WriteByte(',')
		b.WriteString(l.Name)
	}
	b.WriteByte('\n')
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "%g", lines[0].X[i])
		for _, l := range lines {
			fmt.Fprintf(&b, ",%g", l.Y[i])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Downsampled returns a Line with at most n evenly spaced points of the
// input — charts get unreadable (and slow) beyond terminal resolution.
func Downsampled(l Line, n int) Line {
	if n <= 0 {
		panic("plot: non-positive downsample size")
	}
	if len(l.X) <= n {
		return l
	}
	out := Line{Name: l.Name}
	step := float64(len(l.X)-1) / float64(n-1)
	for i := 0; i < n; i++ {
		idx := int(math.Round(float64(i) * step))
		out.X = append(out.X, l.X[idx])
		out.Y = append(out.Y, l.Y[idx])
	}
	return out
}
