// Package refimpl contains deliberately naive reference implementations
// of the optimized hot path: O(n) energy integration with no prefix sums
// or caching, a linear-scan event queue and ready list instead of the
// pooled DES kernel and binary heap, literal transcriptions of the
// EA-DVFS (§4, Figure 4) and LSA pseudocode, and an unpooled simulation
// loop that allocates a fresh scheduling context per decision.
//
// Nothing here is meant to be fast. The package exists so that
// internal/verify can run the optimized engine (internal/sim + friends)
// and this slow-but-obviously-correct oracle on identical inputs and
// assert bit-identical decision audits, event streams and Result metrics.
// Every future performance PR must keep that differential green: if a
// rewrite changes behaviour, the harness minimizes the diverging config
// and cmd/eaverify dumps both audit logs side by side.
//
// Bit-identity is achievable — not just epsilon-closeness — because the
// optimized layers were built as accumulation-order-preserving rewrites:
// the prefix-sum tables add unit powers left to right exactly like the
// naive walk (see energy.Cumulative's contract), the pooled kernel orders
// events by the same (time, priority, insertion) key as a linear scan,
// and the reused sched.Context holds the same values a fresh one would.
// DESIGN.md §11 spells out which outputs are bit-identical and which are
// only epsilon-close.
package refimpl

import (
	"math"

	"github.com/eadvfs/eadvfs/internal/energy"
)

// PrefixEnergy integrates src over [0, t] the slow way: walk every unit
// interval from zero, accumulating PowerAt·width left to right. This is
// the paper's ES(0, t) (eq. 2) computed straight from the definition —
// O(t) per call, no memoization.
//
// The left-to-right accumulation order is exactly the order in which the
// optimized prefix-sum tables (energy.SolarModel, energy.Cached) are
// built, so for any t the walk returns the same bits as the cached
// CumulativeEnergy(t).
func PrefixEnergy(src energy.Source, t float64) float64 {
	if t < 0 {
		panic("refimpl: PrefixEnergy before t=0")
	}
	total := 0.0
	u := 0.0
	for u < t {
		end := math.Floor(u) + 1
		if end > t {
			end = t
		}
		total += src.PowerAt(u) * (end - u)
		u = end
	}
	return total
}

// IntervalEnergy returns the energy harvested over [t1, t2] as the
// difference of two prefix walks, PrefixEnergy(t2) − PrefixEnergy(t1).
// This reproduces the optimized O(1) query C(t2) − C(t1) bit for bit
// (same minuend, same subtrahend, same subtraction), which is what lets
// the differential harness demand exact equality: a divergence means a
// caching or pooling bug, not float reassociation.
func IntervalEnergy(src energy.Source, t1, t2 float64) float64 {
	if t2 < t1 {
		panic("refimpl: IntervalEnergy interval inverted")
	}
	return PrefixEnergy(src, t2) - PrefixEnergy(src, t1)
}

// WalkEnergy integrates src over [t1, t2] directly, without going through
// zero — the textbook trapezoid (here: rectangle, sources are piecewise
// constant) integration. It is mathematically equal to IntervalEnergy but
// NOT bit-identical (different association order), so tests that use it
// compare with a tolerance. Keeping both around documents the boundary
// between the exact and the epsilon-close contract.
func WalkEnergy(src energy.Source, t1, t2 float64) float64 {
	if t2 < t1 {
		panic("refimpl: WalkEnergy interval inverted")
	}
	total := 0.0
	u := t1
	for u < t2 {
		end := math.Floor(u) + 1
		if end > t2 {
			end = t2
		}
		total += src.PowerAt(u) * (end - u)
		u = end
	}
	return total
}

// Oracle is the reference perfect predictor: it answers every query with
// the naive IntervalEnergy walk over the true source — O(deadline) per
// decision, the cost the optimized energy.Oracle's cumulative cache
// exists to avoid.
type Oracle struct {
	Src energy.Source
}

// NewOracle returns a naive perfect predictor for src.
func NewOracle(src energy.Source) *Oracle {
	if src == nil {
		panic("refimpl: nil source for oracle")
	}
	return &Oracle{Src: src}
}

// Observe implements energy.Predictor (a perfect predictor learns nothing).
func (o *Oracle) Observe(t, p float64) {}

// PredictEnergy implements energy.Predictor.
func (o *Oracle) PredictEnergy(t1, t2 float64) float64 {
	return IntervalEnergy(o.Src, t1, t2)
}

// Name implements energy.Predictor.
func (o *Oracle) Name() string { return "ref-oracle" }

// EWMA is the reference exponentially-weighted moving-average predictor,
// transcribed from the recurrence avg ← α·p + (1−α)·avg with the first
// observation seeding the average. The float operations match
// energy.EWMA's exactly, in the same order, so predictions are
// bit-identical given the same observation stream.
type EWMA struct {
	Alpha float64
	avg   float64
	seen  bool
}

// NewEWMA returns a reference EWMA predictor.
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 || math.IsNaN(alpha) {
		panic("refimpl: EWMA alpha outside (0,1]")
	}
	return &EWMA{Alpha: alpha}
}

// Observe implements energy.Predictor.
func (e *EWMA) Observe(t, p float64) {
	if !e.seen {
		e.avg = p
		e.seen = true
		return
	}
	e.avg = e.Alpha*p + (1-e.Alpha)*e.avg
}

// PredictEnergy implements energy.Predictor.
func (e *EWMA) PredictEnergy(t1, t2 float64) float64 {
	if t2 < t1 {
		panic("refimpl: prediction interval inverted")
	}
	return e.avg * (t2 - t1)
}

// Name implements energy.Predictor.
func (e *EWMA) Name() string { return "ref-ewma" }

// LastValue is the reference last-observation predictor.
type LastValue struct {
	last float64
}

// NewLastValue returns a reference last-value predictor.
func NewLastValue() *LastValue { return &LastValue{} }

// Observe implements energy.Predictor.
func (l *LastValue) Observe(t, p float64) { l.last = p }

// PredictEnergy implements energy.Predictor.
func (l *LastValue) PredictEnergy(t1, t2 float64) float64 {
	if t2 < t1 {
		panic("refimpl: prediction interval inverted")
	}
	return l.last * (t2 - t1)
}

// Name implements energy.Predictor.
func (l *LastValue) Name() string { return "ref-last-value" }

// Zero is the reference no-future-harvest predictor.
type Zero struct{}

// Observe implements energy.Predictor.
func (Zero) Observe(t, p float64) {}

// PredictEnergy implements energy.Predictor.
func (Zero) PredictEnergy(t1, t2 float64) float64 {
	if t2 < t1 {
		panic("refimpl: prediction interval inverted")
	}
	return 0
}

// Name implements energy.Predictor.
func (Zero) Name() string { return "ref-zero" }
