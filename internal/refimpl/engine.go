package refimpl

import (
	"fmt"
	"math"
	"sort"

	"github.com/eadvfs/eadvfs/internal/fault"
	"github.com/eadvfs/eadvfs/internal/metrics"
	"github.com/eadvfs/eadvfs/internal/obs"
	"github.com/eadvfs/eadvfs/internal/rng"
	"github.com/eadvfs/eadvfs/internal/sched"
	"github.com/eadvfs/eadvfs/internal/sim"
	"github.com/eadvfs/eadvfs/internal/task"
)

// Event priorities at equal timestamps — the same semantic order as the
// optimized engine's (boundary < segment < arrival < deadline < decide).
const (
	prioBoundary = iota
	prioSegment
	prioArrival
	prioDeadline
	prioDecide
)

// workEps and stallEps mirror the optimized engine's tolerances; the
// values are part of the simulation semantics, not of the optimization.
const (
	workEps  = 1e-9
	stallEps = 1e-9
)

// deadlineEvent is one pending deadline check in the linear-scan event
// list. seq preserves insertion order at equal times, which is the order
// the optimized kernel's global sequence number imposes (deadlines are
// the only events it holds).
type deadlineEvent struct {
	time float64
	seq  uint64
	job  *task.Job
}

// eventList is the naive O(n)-per-operation event queue: append to
// schedule, scan for the minimum (time, seq) to pop.
type eventList struct {
	events []deadlineEvent
	seq    uint64
}

func (l *eventList) push(t float64, j *task.Job) {
	l.events = append(l.events, deadlineEvent{time: t, seq: l.seq, job: j})
	l.seq++
}

func (l *eventList) peek() (float64, bool) {
	if len(l.events) == 0 {
		return math.Inf(1), false
	}
	best := 0
	for i := 1; i < len(l.events); i++ {
		e, b := l.events[i], l.events[best]
		if e.time < b.time || (e.time == b.time && e.seq < b.seq) {
			best = i
		}
	}
	return l.events[best].time, true
}

func (l *eventList) pop() deadlineEvent {
	best := 0
	for i := 1; i < len(l.events); i++ {
		e, b := l.events[i], l.events[best]
		if e.time < b.time || (e.time == b.time && e.seq < b.seq) {
			best = i
		}
	}
	ev := l.events[best]
	l.events = append(l.events[:best], l.events[best+1:]...)
	return ev
}

func (l *eventList) len() int { return len(l.events) }

// readyList is the naive EDF ready queue: an unordered slice scanned for
// the EarlierDeadline minimum on every Peek. It implements
// sched.ReadyView, so the reference policies see it through the same
// interface the optimized heap satisfies.
type readyList struct {
	jobs []*task.Job
}

// Len implements sched.ReadyView.
func (q *readyList) Len() int { return len(q.jobs) }

// Peek implements sched.ReadyView: linear scan for the earliest-deadline
// job. EarlierDeadline is a strict total order, so the scan direction
// cannot change the answer.
func (q *readyList) Peek() *task.Job {
	var best *task.Job
	for _, j := range q.jobs {
		if best == nil || task.EarlierDeadline(j, best) {
			best = j
		}
	}
	return best
}

func (q *readyList) push(j *task.Job) { q.jobs = append(q.jobs, j) }

func (q *readyList) remove(j *task.Job) {
	for i, x := range q.jobs {
		if x == j {
			q.jobs = append(q.jobs[:i], q.jobs[i+1:]...)
			return
		}
	}
}

// refTaskStats accumulates one task's counters during a reference run.
// Response times go through the same Welford recurrence the optimized
// taskTable uses, in the same (completion) order, so the derived mean is
// bit-identical.
type refTaskStats struct {
	released, finished, missed int
	respMax                    float64
	resp                       metrics.Welford
}

// engine is the reference per-run state: the same virtual-stream layout
// as the optimized engine (boundary chain, arrival cursor, one pending
// segment end, one pending decision) with the kernel heap replaced by the
// linear-scan eventList and the ready heap by readyList. Keeping the
// stream structure identical is what makes the dispatch order — and hence
// every downstream float accumulation — reproducible bit for bit.
type engine struct {
	cfg       *sim.Config
	deadlines eventList
	ready     readyList

	lastT float64

	mode    sim.Mode
	running *task.Job
	level   int

	segStart  float64
	lastRunLv int

	release       []*task.Job
	nextArrival   int
	nextBoundary  float64
	segTime       float64
	decideAt      float64
	decidePending bool

	// DPM state, mirroring the optimized engine's idle manager.
	sleeping  bool
	sleepIdx  int
	sleepWake float64
	waking    bool
	wakeDone  float64

	simNow     float64
	dispatched uint64

	initialLevel float64
	tasks        map[int]*refTaskStats
	execRNG      *rng.RNG
	faults       *fault.Set
	res          *sim.Result
}

// Run executes the reference simulation of cfg and returns its result.
// It accepts the same *sim.Config as the optimized sim.Run; pair it with
// the reference policies and predictors of this package for a fully
// independent second opinion. Config.CheckInvariants is not supported
// here (the reference loop panics on internal inconsistency instead of
// collecting violations) and is ignored.
func Run(cfg *sim.Config) (*sim.Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}

	var faults *fault.Set
	if cfg.Faults != nil {
		var err error
		if faults, err = fault.New(*cfg.Faults); err != nil {
			return nil, err
		}
		if faults != nil {
			runCfg := *cfg
			runCfg.Source = faults.WrapSource(cfg.Source)
			runCfg.Store = faults.WrapStore(cfg.Store)
			runCfg.Predictor = faults.WrapPredictor(cfg.Predictor)
			cfg = &runCfg
		}
	}

	e := &engine{
		cfg:       cfg,
		lastRunLv: -1,
		tasks:     make(map[int]*refTaskStats),
		faults:    faults,
		res: &sim.Result{
			Policy:    cfg.Policy.Name(),
			LevelTime: make([]float64, cfg.CPU.Levels()),
		},
	}
	e.initialLevel = cfg.Store.Level()
	if cfg.Stochastic() {
		seed := cfg.ExecSeed
		if seed == 0 {
			seed = 1
		}
		e.execRNG = rng.New(seed)
	}

	if cfg.RecordEnergy {
		n := int(math.Floor(cfg.Horizon)) + 1
		e.res.EnergySeries = metrics.NewSeries(0, 1, n)
		e.res.EnergySeries.Values[0] = cfg.Store.Level()
	}

	release := task.ReleaseJobs(cfg.Tasks, cfg.Horizon)
	for _, j := range cfg.Jobs {
		if j.Arrival < cfg.Horizon {
			release = append(release, j)
		}
	}
	sort.SliceStable(release, func(a, b int) bool { return release[a].Arrival < release[b].Arrival })
	e.release = release

	e.nextBoundary = math.Inf(1)
	if cfg.Horizon >= 1 {
		e.nextBoundary = 1
	}
	e.segTime = math.Inf(1)

	e.requestDecide(0)
	if err := e.dispatch(); err != nil {
		return nil, err
	}
	e.syncTo(cfg.Horizon)
	e.closeSegment(cfg.Horizon)

	e.faults.FinishAt(cfg.Horizon)
	e.res.Degradation = e.faults.Counters()
	e.res.PerTask = e.taskTable()
	e.res.Meters = cfg.Store.Meters()
	e.res.FinalLevel = cfg.Store.Level()
	e.res.Events = e.dispatched
	e.res.ConservationErr = cfg.Store.ConservationError(e.initialLevel)
	if err := e.res.Miss.Check(); err != nil {
		return nil, err
	}
	return e.res, nil
}

func (e *engine) dispatch() error {
	for {
		t, prio, ok := e.peekNext()
		if !ok || t > e.cfg.Horizon {
			return nil
		}
		if e.cfg.MaxEvents > 0 && e.dispatched >= e.cfg.MaxEvents {
			return &sim.EventBudgetError{
				Events:  e.dispatched,
				Time:    e.simNow,
				Horizon: e.cfg.Horizon,
				Pending: e.pendingEvents(),
			}
		}
		e.dispatched++
		e.simNow = t
		switch prio {
		case prioBoundary:
			e.nextBoundary = t + 1
			if e.nextBoundary > e.cfg.Horizon {
				e.nextBoundary = math.Inf(1)
			}
			e.onBoundary(t)
		case prioSegment:
			e.segTime = math.Inf(1)
			e.onSegmentEnd(t)
		case prioArrival:
			j := e.release[e.nextArrival]
			e.nextArrival++
			e.onArrival(t, j)
		case prioDeadline:
			ev := e.deadlines.pop()
			e.onDeadline(ev.time, ev.job)
		case prioDecide:
			e.onDecide(t)
		}
	}
}

func (e *engine) peekNext() (float64, int, bool) {
	best, ok := e.deadlines.peek()
	bestPrio := prioDeadline
	if !ok {
		best, bestPrio = math.Inf(1), prioDecide+1
	}
	better := func(t float64, prio int) bool {
		return t < best || (t == best && prio < bestPrio)
	}
	if better(e.nextBoundary, prioBoundary) {
		best, bestPrio = e.nextBoundary, prioBoundary
	}
	if better(e.segTime, prioSegment) {
		best, bestPrio = e.segTime, prioSegment
	}
	if e.nextArrival < len(e.release) {
		if t := e.release[e.nextArrival].Arrival; better(t, prioArrival) {
			best, bestPrio = t, prioArrival
		}
	}
	if e.decidePending && better(e.decideAt, prioDecide) {
		best, bestPrio = e.decideAt, prioDecide
	}
	return best, bestPrio, !math.IsInf(best, 1)
}

func (e *engine) pendingEvents() int {
	n := e.deadlines.len() + (len(e.release) - e.nextArrival)
	if !math.IsInf(e.nextBoundary, 1) {
		n++
	}
	if !math.IsInf(e.segTime, 1) {
		n++
	}
	if e.decidePending {
		n++
	}
	return n
}

func (e *engine) cpuPower() float64 {
	switch e.mode {
	case sim.ModeRun:
		return e.cfg.CPU.Power(e.level)
	case sim.ModeIdle:
		return e.cfg.CPU.IdlePower()
	case sim.ModeSleep:
		return e.cfg.CPU.SleepState(e.level).Power
	default:
		return 0
	}
}

func (e *engine) syncTo(now float64) {
	if now < e.lastT-1e-9 {
		panic(fmt.Sprintf("refimpl: syncTo backwards from %v to %v", e.lastT, now))
	}
	pc := e.cpuPower()
	for e.lastT < now {
		end := math.Min(math.Floor(e.lastT)+1, now)
		dt := end - e.lastT
		ps := e.cfg.Source.PowerAt(e.lastT)
		delivered, _ := e.cfg.Store.Flow(ps, pc, dt)
		switch e.mode {
		case sim.ModeRun:
			e.res.BusyTime += dt
			e.res.LevelTime[e.level] += dt
			e.res.CPUEnergy += delivered
			e.running.Progress(e.cfg.CPU.Speed(e.level) * dt)
		case sim.ModeIdle:
			e.res.IdleTime += dt
			e.res.CPUEnergy += delivered
		case sim.ModeSleep:
			e.res.SleepTime += dt
			e.res.CPUEnergy += delivered
		case sim.ModeStall:
			e.res.StallTime += dt
		}
		e.lastT = end
	}
	e.lastT = now
}

func (e *engine) setActivity(now float64, mode sim.Mode, j *task.Job, level int) {
	if mode == e.mode && j == e.running &&
		(mode != sim.ModeRun && mode != sim.ModeSleep || level == e.level) {
		return
	}
	e.closeSegment(now)
	if mode == sim.ModeRun && e.cfg.Probe != nil {
		e.cfg.Probe.OnEvent(obs.Event{
			Time: now, Kind: obs.KindDispatch,
			TaskID: j.TaskID, Seq: j.Seq, Level: level,
		})
	}
	if mode == sim.ModeRun {
		if e.lastRunLv >= 0 && e.lastRunLv != level {
			e.res.Switches++
			_, se := e.cfg.CPU.SwitchOverhead()
			if se > 0 {
				e.cfg.Store.Draw(se)
			}
		}
		e.lastRunLv = level
	}
	e.mode = mode
	e.running = j
	e.level = level
	e.segStart = now
}

func (e *engine) closeSegment(now float64) {
	if now > e.segStart {
		if e.cfg.Tracer != nil {
			e.cfg.Tracer.OnSegment(e.segStart, now, e.mode, e.running, e.level)
		}
		if e.cfg.Probe != nil {
			ev := obs.Event{
				Time: now, Kind: obs.KindSegment,
				TaskID: -1, Seq: -1,
				Start: e.segStart, Mode: e.mode.String(), Level: e.level,
			}
			if e.running != nil {
				ev.TaskID, ev.Seq = e.running.TaskID, e.running.Seq
			}
			e.cfg.Probe.OnEvent(ev)
		}
	}
	e.segStart = now
}

func (e *engine) emit(t float64, kind string, j *task.Job) {
	if e.cfg.Tracer != nil {
		e.cfg.Tracer.OnEvent(t, kind, j)
	}
	if e.cfg.Probe != nil {
		ev := obs.Event{Time: t, Kind: obs.EventKind(kind), TaskID: -1, Seq: -1}
		if j != nil {
			ev.TaskID, ev.Seq = j.TaskID, j.Seq
		}
		e.cfg.Probe.OnEvent(ev)
	}
}

func (e *engine) task(id int) *refTaskStats {
	s, ok := e.tasks[id]
	if !ok {
		s = &refTaskStats{}
		e.tasks[id] = s
	}
	return s
}

func (e *engine) taskTable() []*sim.TaskStats {
	ids := make([]int, 0, len(e.tasks))
	for id := range e.tasks {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]*sim.TaskStats, 0, len(ids))
	for _, id := range ids {
		s := e.tasks[id]
		out = append(out, &sim.TaskStats{
			TaskID:       id,
			Released:     s.released,
			Finished:     s.finished,
			Missed:       s.missed,
			ResponseMean: s.resp.Mean(),
			ResponseMax:  s.respMax,
		})
	}
	return out
}

func (e *engine) onArrival(now float64, j *task.Job) {
	e.syncTo(now)
	actual := j.WCET
	drawn := false
	if e.execRNG != nil {
		if j.Exec != nil {
			stream := uint64(j.TaskID)<<32 ^ uint64(j.Seq)
			r := e.execRNG.Child(stream)
			actual = j.WCET * j.Exec.Ratio(r, j.Seq)
			drawn = true
		} else if e.cfg.BCWCRatio > 0 && e.cfg.BCWCRatio < 1 {
			stream := uint64(j.TaskID)<<32 ^ uint64(j.Seq)
			r := e.execRNG.Child(stream)
			actual = j.WCET * r.Uniform(e.cfg.BCWCRatio, 1)
			drawn = true
		}
	}
	if drawn {
		e.res.Slack.DrawnJobs++
	}
	if of := e.faults.OverrunFactor(j.TaskID, j.Seq); of > 1 {
		actual *= of
		j.SetOverrunWork(actual)
		e.faults.AddOverrunWork(math.Max(0, actual-j.WCET))
	} else if drawn {
		j.SetActualWork(actual)
	}
	e.res.Miss.Released++
	e.task(j.TaskID).released++
	e.emit(now, "arrival", j)
	if j.ActualRemaining() < workEps {
		if rem := j.ActualRemaining(); rem > 0 {
			j.Progress(rem)
		} else {
			j.Progress(0)
		}
		e.res.Miss.Finished++
		e.finishStats(j, now)
		e.emit(now, "completion", j)
		e.noteReclaimed(now, j)
		return
	}
	e.ready.push(j)
	if j.Abs <= e.cfg.Horizon {
		e.deadlines.push(j.Abs, j)
	}
	e.requestDecide(now)
}

func (e *engine) finishStats(j *task.Job, now float64) {
	s := e.task(j.TaskID)
	s.finished++
	r := now - j.Arrival
	s.resp.Add(r)
	if r > s.respMax {
		s.respMax = r
	}
}

func (e *engine) onDeadline(now float64, j *task.Job) {
	e.syncTo(now)
	if j.Done() || j.Missed() {
		return
	}
	j.MarkMissed()
	e.res.Miss.Missed++
	e.task(j.TaskID).missed++
	e.emit(now, "miss", j)
	if !e.cfg.ContinueAfterDeadline {
		e.ready.remove(j)
		if e.running == j {
			e.setActivity(now, sim.ModeIdle, nil, 0)
		}
	}
	e.requestDecide(now)
}

func (e *engine) onBoundary(now float64) {
	e.syncTo(now)
	e.cfg.Predictor.Observe(now-1, e.cfg.Source.PowerAt(now-1))
	if s := e.res.EnergySeries; s != nil {
		k := int(math.Round(now))
		if k < s.Len() {
			s.Values[k] = e.cfg.Store.Level()
		}
	}
	e.requestDecide(now)
}

func (e *engine) onSegmentEnd(now float64) {
	e.syncTo(now)
	e.finishIfDone(now)
	e.requestDecide(now)
}

func (e *engine) finishIfDone(now float64) {
	j := e.running
	if e.mode != sim.ModeRun || j == nil {
		return
	}
	if rem := j.ActualRemaining(); rem > 0 && rem < workEps {
		j.Progress(rem)
	}
	if j.Done() {
		e.ready.remove(j)
		if !j.Missed() {
			e.res.Miss.Finished++
			e.finishStats(j, now)
		}
		e.emit(now, "completion", j)
		e.noteReclaimed(now, j)
		e.setActivity(now, sim.ModeIdle, nil, 0)
	}
}

// noteReclaimed mirrors the optimized engine's early-completion tally.
func (e *engine) noteReclaimed(now float64, j *task.Job) {
	if rem := j.Remaining(); rem > workEps {
		e.res.Slack.EarlyCompletions++
		e.res.Slack.ReclaimedWork += rem
		e.emit(now, "early-completion", j)
	}
}

func (e *engine) requestDecide(now float64) {
	if e.decidePending {
		return
	}
	e.decidePending = true
	e.decideAt = now
}

func (e *engine) onDecide(now float64) {
	e.decidePending = false
	e.syncTo(now)
	e.finishIfDone(now)

	e.segTime = math.Inf(1)

	// DPM: a wake transition in progress blocks scheduling.
	if e.waking {
		if now < e.wakeDone {
			e.scheduleSegmentEnd(now, math.Inf(1), e.wakeDone)
			return
		}
		e.waking, e.sleeping = false, false
		e.setActivity(now, sim.ModeIdle, nil, 0)
	}

	// Unpooled: a fresh Context per decision, the straightforward way.
	ctx := sched.Context{
		Now:       now,
		Queue:     &e.ready,
		Stored:    e.cfg.Store.Level(),
		Capacity:  e.cfg.Store.Capacity(),
		CPU:       e.cfg.CPU,
		Predictor: e.cfg.Predictor,
		Reclaimed: e.res.Slack.ReclaimedWork,
		Probe:     e.cfg.Probe,
	}
	d := e.cfg.Policy.Decide(&ctx)
	e.res.Decisions++
	if e.mode == sim.ModeRun && e.running != nil && !e.running.Done() &&
		d.Job != nil && d.Job != e.running {
		e.res.Preemptions++
	}

	if d.Job == nil {
		if e.sleeping {
			if now < e.sleepWake {
				e.scheduleSegmentEnd(now, math.Inf(1), e.sleepWake)
				return
			}
			e.initiateWake(now)
			return
		}
		e.setActivity(now, sim.ModeIdle, nil, 0)
		until := d.Until
		if idle := e.cfg.CPU.IdlePower(); idle > 0 {
			sustain := e.cfg.Store.TimeToEmpty(e.cfg.Source.PowerAt(now), idle)
			if sustain < stallEps {
				e.setActivity(now, sim.ModeStall, nil, 0)
				return
			}
			until = math.Min(until, now+sustain)
		}
		if e.cfg.CPU.SleepLevels() > 0 {
			e.maybeSleep(now, until)
			if e.sleeping {
				return
			}
		}
		e.scheduleSegmentEnd(now, math.Inf(1), until)
		return
	}
	if e.sleeping {
		e.initiateWake(now)
		return
	}
	if d.Job.Done() {
		panic(fmt.Sprintf("refimpl: policy %s scheduled a finished job", e.cfg.Policy.Name()))
	}

	level := d.Level
	if e.faults != nil {
		requested := e.cfg.CPU.ClampLevel(level)
		level = e.cfg.CPU.ClampLevel(e.faults.DVFSLevel(now, e.lastRunLv, requested))
		if level != requested && e.cfg.Probe != nil {
			e.cfg.Probe.OnEvent(obs.Event{
				Time: now, Kind: obs.KindFault,
				TaskID: d.Job.TaskID, Seq: d.Job.Seq,
				Level: level, Detail: "dvfs-clamp",
			})
		}
	}

	ps := e.cfg.Source.PowerAt(now)
	pc := e.cfg.CPU.Power(level)
	sustain := e.cfg.Store.TimeToEmpty(ps, pc)
	if sustain < stallEps {
		wasStalled := e.mode == sim.ModeStall && e.running == d.Job
		e.setActivity(now, sim.ModeStall, d.Job, level)
		if !wasStalled {
			e.emit(now, "stall", d.Job)
		}
		return
	}

	e.setActivity(now, sim.ModeRun, d.Job, level)
	completion := now + d.Job.ActualRemaining()/e.cfg.CPU.Speed(level)
	e.scheduleSegmentEnd(now, completion, math.Min(d.Until, now+sustain))
}

// maybeSleep mirrors the optimized engine's DPM idle manager bit for bit.
func (e *engine) maybeSleep(now, until float64) {
	winEnd := math.Min(until, e.cfg.Horizon)
	if e.nextArrival < len(e.release) {
		winEnd = math.Min(winEnd, e.release[e.nextArrival].Arrival)
	}
	idx := e.cfg.CPU.DeepestSleepFor(winEnd - now)
	if idx < 0 {
		return
	}
	st := e.cfg.CPU.SleepState(idx)
	if st.EnterEnergy > 0 {
		e.cfg.Store.Draw(st.EnterEnergy)
	}
	e.res.DPMOverhead += st.EnterEnergy
	e.sleeping = true
	e.sleepIdx = idx
	e.sleepWake = winEnd - st.WakeLatency
	e.setActivity(now, sim.ModeSleep, nil, idx)
	e.scheduleSegmentEnd(now, math.Inf(1), e.sleepWake)
}

// initiateWake mirrors the optimized engine's sleep-exit transition.
func (e *engine) initiateWake(now float64) {
	st := e.cfg.CPU.SleepState(e.sleepIdx)
	if st.ExitEnergy > 0 {
		e.cfg.Store.Draw(st.ExitEnergy)
	}
	e.res.DPMOverhead += st.ExitEnergy
	e.res.Wakeups++
	e.waking = true
	e.wakeDone = now + st.WakeLatency
	e.scheduleSegmentEnd(now, math.Inf(1), e.wakeDone)
}

func (e *engine) scheduleSegmentEnd(now, completion, until float64) {
	end := math.Min(completion, until)
	if math.IsInf(end, 1) {
		return
	}
	if end < now+1e-12 {
		end = now + 1e-12
	}
	if end > e.cfg.Horizon {
		return
	}
	e.segTime = end
}
