package refimpl

import (
	"math"

	"github.com/eadvfs/eadvfs/internal/obs"
	"github.com/eadvfs/eadvfs/internal/sched"
)

// The reference policies below are transcribed line by line from the
// paper's pseudocode and equations, computing everything inline at every
// call: no shared ComputePlan helper, no reused plan struct. They report
// the same Name() as their optimized counterparts (internal/core,
// internal/sched) because the policy name is part of the Result and the
// decision audits the differential harness compares bit for bit.
//
// The only shared pieces are deliberate: the obs audit-record builder
// (sched.Context.AuditJob — record construction, not scheduling logic),
// the job's s2-lock slot (task.Job — the paper's "remember the original
// s2" state must live somewhere per job), and the shared boundary
// tolerance sched.TimeEps, which both sides must tie with identically for
// bit-equality to be achievable at all.

// EDF is the reference energy-oblivious baseline: earliest-deadline job,
// full speed, whenever any job is ready.
type EDF struct{}

// Name implements sched.Policy.
func (EDF) Name() string { return "edf" }

// Decide implements sched.Policy.
func (EDF) Decide(ctx *sched.Context) sched.Decision {
	j := ctx.Queue.Peek()
	if j == nil {
		return sched.Idle(math.Inf(1))
	}
	return sched.Run(j, ctx.CPU.MaxLevel(), math.Inf(1))
}

// availableEnergy is the paper's EA = EC(now) + ÊS(now, deadline) (eq. 4),
// written out literally: clamp the window start, ask the predictor,
// add the stored energy.
func availableEnergy(ctx *sched.Context, deadline float64) float64 {
	until := deadline
	if until < ctx.Now {
		until = ctx.Now
	}
	return ctx.Stored + ctx.Predictor.PredictEnergy(ctx.Now, until)
}

// LSA is the reference lazy scheduling algorithm: full power only, start
// the earliest-deadline task at s2 = max(now, D − EA/Pmax).
type LSA struct{}

// Name implements sched.Policy.
func (LSA) Name() string { return "lsa" }

// Decide implements sched.Policy.
func (LSA) Decide(ctx *sched.Context) sched.Decision {
	j := ctx.Queue.Peek()
	if j == nil {
		ctx.AuditJob("lsa", nil, 0, 0, 0, -1, math.Inf(1), obs.ReasonIdleNoJob)
		return sched.Idle(math.Inf(1))
	}
	available := availableEnergy(ctx, j.Abs)
	srMax := available / ctx.CPU.MaxPower()
	s2 := math.Max(ctx.Now, j.Abs-srMax)
	if !sched.Reached(ctx.Now, s2) {
		ctx.AuditJob("lsa", j, available, s2, s2, -1, s2, obs.ReasonIdleRecharge)
		return sched.Idle(s2)
	}
	if ctx.Auditing() {
		reason := obs.ReasonFullSpeedEnergyPoor
		if srMax >= j.Abs-ctx.Now-sched.TimeEps {
			reason = obs.ReasonFullSpeedEnergyRich
		}
		ctx.AuditJob("lsa", j, available, s2, s2, ctx.CPU.MaxLevel(), math.Inf(1), reason)
	}
	return sched.Run(j, ctx.CPU.MaxLevel(), math.Inf(1))
}

// EADVFS is the reference transcription of the paper's Figure 4. Dynamic
// recomputes s2 at every decision (the ablation variant); the default
// locks s2 on first stretch, like the optimized internal/core policy.
type EADVFS struct {
	Dynamic bool
}

// NewEADVFS returns the reference EA-DVFS policy (locked s2).
func NewEADVFS() *EADVFS { return &EADVFS{} }

// NewDynamicEADVFS returns the reference stateless-recompute variant.
func NewDynamicEADVFS() *EADVFS { return &EADVFS{Dynamic: true} }

// Name implements sched.Policy.
func (p *EADVFS) Name() string {
	if p.Dynamic {
		return "ea-dvfs-dynamic"
	}
	return "ea-dvfs"
}

// Decide implements sched.Policy — Figure 4, straight off the page.
func (p *EADVFS) Decide(ctx *sched.Context) sched.Decision {
	// line 3: pick the earliest-deadline ready job.
	j := ctx.Queue.Peek()
	if j == nil {
		ctx.AuditJob(p.Name(), nil, 0, 0, 0, -1, math.Inf(1), obs.ReasonIdleNoJob)
		return sched.Idle(math.Inf(1))
	}

	// eq. 4: EA = EC(now) + ÊS(now, d).
	available := availableEnergy(ctx, j.Abs)
	if available < 0 {
		available = 0
	}

	// ineq. 6: the lowest operating point n with w/S_n <= d − now,
	// scanned from the slowest point up.
	window := j.Abs - ctx.Now
	work := j.Remaining()
	level, feasible := ctx.CPU.MaxLevel(), false
	switch {
	case work == 0:
		level, feasible = 0, true
	case window <= 0:
		// nothing: even f_max cannot help
	default:
		for n := 0; n < ctx.CPU.Levels(); n++ {
			if work/ctx.CPU.Speed(n) <= window {
				level, feasible = n, true
				break
			}
		}
	}

	srN := available / ctx.CPU.Power(level) // eq. 5
	srMax := available / ctx.CPU.MaxPower() // eq. 9
	s1 := math.Max(ctx.Now, j.Abs-srN)      // eq. 7
	s2 := math.Max(ctx.Now, j.Abs-srMax)    // eq. 8

	if !feasible {
		ctx.AuditJob(p.Name(), j, available, s1, s2,
			ctx.CPU.MaxLevel(), math.Inf(1), obs.ReasonFullSpeedInfeasible)
		return sched.Run(j, ctx.CPU.MaxLevel(), math.Inf(1))
	}
	if sched.Reached(ctx.Now, s1) && sched.Reached(ctx.Now, s2) {
		// Figure 4 line 5: s1 = s2 = now — sufficient energy, maximum
		// frequency; a pending lock is obsolete.
		j.ClearS2Lock()
		ctx.AuditJob(p.Name(), j, available, s1, s2,
			ctx.CPU.MaxLevel(), math.Inf(1), obs.ReasonFullSpeedEnergyRich)
		return sched.Run(j, ctx.CPU.MaxLevel(), math.Inf(1))
	}

	s2eff := s2
	if !p.Dynamic {
		if locked, ok := j.S2Lock(); ok {
			s2eff = locked
		}
	}
	if sched.Reached(ctx.Now, s2eff) {
		// Figure 4 line 10: past s2 the job runs at full speed.
		ctx.AuditJob(p.Name(), j, available, s1, s2eff,
			ctx.CPU.MaxLevel(), math.Inf(1), obs.ReasonFullSpeedEnergyPoor)
		return sched.Run(j, ctx.CPU.MaxLevel(), math.Inf(1))
	}
	if !sched.Reached(ctx.Now, s1) {
		ctx.AuditJob(p.Name(), j, available, s1, s2eff,
			-1, s1, obs.ReasonIdleRecharge)
		return sched.Idle(s1)
	}
	// Figure 4 line 8: stretched execution at the minimum feasible
	// frequency on [s1, s2); lock s2 on first stretch.
	if !p.Dynamic {
		if _, ok := j.S2Lock(); !ok {
			j.LockS2(s2eff)
		}
	}
	ctx.AuditJob(p.Name(), j, available, s1, s2eff,
		level, s2eff, obs.ReasonStretchSlackRich)
	return sched.Run(j, level, s2eff)
}
