package refimpl

import (
	"math"

	"github.com/eadvfs/eadvfs/internal/obs"
	"github.com/eadvfs/eadvfs/internal/sched"
	"github.com/eadvfs/eadvfs/internal/task"
)

// Reclaimer is the reference transcription of the slack-reclaiming
// decorator (internal/workload.Reclaimer), written out naively: the
// per-task estimate table is a plain map updated with the textbook EWMA,
// the minimum-level search is the inline scan the other reference
// policies use, and the guard instant is recomputed from first
// principles at every call. It reports the same Name() as the optimized
// decorator because the policy name rides in the Result the differential
// harness compares.
type Reclaimer struct {
	name  string
	inner sched.Policy

	alpha    float64
	minRatio float64

	est  map[int]float64
	prev *task.Job
}

// NewReclaimer wraps a reference inner policy as the named reclaiming
// policy, with the same parameter clamping as the optimized decorator.
func NewReclaimer(name string, inner sched.Policy, alpha, minRatio float64) *Reclaimer {
	if !(alpha > 0) || alpha > 1 {
		alpha = 0.5
	}
	if !(minRatio >= 0) || minRatio > 1 {
		minRatio = 0.1
	}
	return &Reclaimer{
		name:     name,
		inner:    inner,
		alpha:    alpha,
		minRatio: minRatio,
		est:      make(map[int]float64),
	}
}

// Name implements sched.Policy.
func (p *Reclaimer) Name() string { return p.name }

// Decide implements sched.Policy.
func (p *Reclaimer) Decide(ctx *sched.Context) sched.Decision {
	// Observe the previous head job's completion: fold the spent fraction
	// of its budget into the task's estimate, exactly once.
	if j := p.prev; j != nil && j.Done() && j.WCET > 0 {
		observed := (j.WCET - j.Remaining()) / j.WCET
		e, ok := p.est[j.TaskID]
		if !ok {
			e = 1
		}
		p.est[j.TaskID] = (1-p.alpha)*e + p.alpha*observed
	}
	p.prev = nil

	d := p.inner.Decide(ctx)
	p.prev = d.Job
	if d.Job == nil {
		return d
	}
	j := d.Job

	// Floored speculative ratio; 1 (no history) means pass through.
	ratio, ok := p.est[j.TaskID]
	if !ok {
		ratio = 1
	}
	if ratio < p.minRatio {
		ratio = p.minRatio
	}
	if ratio >= 1 {
		return d
	}

	// Latest instant from which the full remaining budget still fits at
	// maximum speed; at or past it the inner decision stands.
	guard := j.Abs - j.Remaining()/ctx.CPU.Speed(ctx.CPU.MaxLevel())
	if sched.Reached(ctx.Now, guard) {
		if ctx.Auditing() {
			ctx.AuditJob(p.name, j, availableEnergy(ctx, j.Abs), guard, guard,
				d.Level, d.Until, obs.ReasonFullSpeedReclaimGuard)
		}
		return d
	}

	// Inline minimum-level scan for the *estimated* work (cf. EADVFS
	// above): the lowest point n with w·ratio/S_n <= d − now.
	window := j.Abs - ctx.Now
	work := j.Remaining() * ratio
	level, feasible := ctx.CPU.MaxLevel(), false
	switch {
	case work == 0:
		level, feasible = 0, true
	case window <= 0:
		// nothing: even f_max cannot help
	default:
		for n := 0; n < ctx.CPU.Levels(); n++ {
			if work/ctx.CPU.Speed(n) <= window {
				level, feasible = n, true
				break
			}
		}
	}
	if !feasible || level >= d.Level {
		return d
	}
	until := math.Min(d.Until, guard)
	if ctx.Auditing() {
		ctx.AuditJob(p.name, j, availableEnergy(ctx, j.Abs), guard, guard,
			level, until, obs.ReasonStretchReclaimed)
	}
	return sched.Run(j, level, until)
}
