package verify

import (
	"math"

	"github.com/eadvfs/eadvfs/internal/registry"
	"github.com/eadvfs/eadvfs/internal/rng"
	"github.com/eadvfs/eadvfs/internal/task"
)

// RandomSpec draws one differential test case from a seed. The same seed
// always yields the same spec (the generator is a pure function of the
// deterministic internal/rng stream), so a failing seed printed by the
// differential test is a complete reproduction recipe.
//
// The distribution is deliberately adversarial rather than realistic:
// zero-capacity stores, empty task windows, fault injection, execution
// jitter and deadline-drop policy all appear with material probability,
// because divergence bugs live at boundaries, not in the comfortable
// interior.
func RandomSpec(seed uint64) *Spec {
	r := rng.New(seed)
	s := &Spec{Seed: seed}

	s.Policy = pick(r, "ea-dvfs", "ea-dvfs-dynamic", "lsa", "edf")
	s.Predictor = pick(r, "oracle", "ewma", "last-value", "zero")
	if s.Predictor == "ewma" {
		s.Alpha = r.Uniform(0.05, 0.9)
	}

	s.Horizon = float64(40 + r.Intn(200))
	if r.Intn(10) < 3 {
		s.Horizon += r.Float64() // fractional horizons exercise final partial units
	}

	s.Source = randomSource(r)
	meanPower := sourceMean(s.Source)

	s.CPU = pick(r, "xscale", "xscale", "two-speed", "pxa270", "sensor-mcu")
	s.Tasks = randomTasks(r, meanPower, cpuFor(s).MaxPower())

	switch r.Intn(5) {
	case 0:
		s.Capacity = 0 // hand-to-mouth: every decision is energy-critical
	case 1:
		s.Capacity = r.Uniform(1, 10)
	case 2:
		s.Capacity = r.Uniform(10, 100)
	default:
		s.Capacity = r.Uniform(100, 1000)
	}
	s.InitialFrac = r.Float64()

	// Execution jitter, two flavors: the legacy global best-case ratio, or
	// a drawn per-task distribution (task.ExecSpec) shared by the set —
	// the stochastic-workload subsystem's engine path.
	switch r.Intn(10) {
	case 0, 1, 2:
		s.BCWCRatio = r.Uniform(0.2, 0.9)
		s.ExecSeed = r.Uint64()
	case 3, 4:
		s.ExecSeed = r.Uint64()
		spec := randomExecSpec(r)
		for i := range s.Tasks {
			s.Tasks[i].Exec = &spec
		}
	}
	// DPM: a quarter of specs sleep, so break-even gating, transition
	// draws and wake latency are all under differential coverage.
	if r.Intn(4) == 0 {
		s.Sleep = "default"
	}
	if r.Intn(4) == 0 {
		s.FaultIntensity = r.Uniform(0.05, 0.6)
		s.FaultSeed = r.Uint64()
	}
	s.ContinueAfterDeadline = r.Intn(5) == 0

	// Watchdog: a differential pair that loops forever should fail with a
	// matching pair of EventBudgetErrors, not hang CI.
	s.MaxEvents = 2_000_000
	return s
}

// RandomSpecForPolicy draws the deterministic spec for (seed, policy):
// RandomSpec's distribution with the policy pinned, plus schema-derived
// parameters for registrations that declare any (static-dvfs gets a
// utilization drawn from a seed-derived stream, so the parameter space
// is swept too, deterministically). This is how the auto-differential
// sweep covers every registered policy — including ones RandomSpec's
// own menu predates — with one spec recipe.
func RandomSpecForPolicy(seed uint64, policy string) *Spec {
	s := RandomSpec(seed)
	s.Policy = policy
	s.PolicyParams = nil
	def, err := registry.Policy(policy)
	if err != nil {
		return s
	}
	// A distinct stream: perturbing parameters must not reshuffle the
	// rest of the spec away from RandomSpec(seed)'s draw.
	pr := rng.New(seed ^ 0x9e3779b97f4a7c15)
	if def.HasParam("utilization") {
		s.PolicyParams = map[string]any{"utilization": pr.Uniform(0.1, 0.9)}
	}
	if def.HasParam("reclaim_alpha") {
		s.PolicyParams = map[string]any{
			"reclaim_alpha": pr.Uniform(0.1, 1),
			"min_ratio":     pr.Uniform(0, 0.5),
		}
		// A reclaiming policy only departs from its inner policy when jobs
		// complete early; guarantee jitter so the sweep exercises the
		// decorator's speculative branch, not just its pass-through.
		if s.BCWCRatio == 0 && (len(s.Tasks) == 0 || s.Tasks[0].Exec == nil) {
			s.BCWCRatio = pr.Uniform(0.2, 0.9)
			s.ExecSeed = pr.Uint64()
		}
	}
	return s
}

func pick(r *rng.RNG, choices ...string) string {
	return choices[r.Intn(len(choices))]
}

// randomExecSpec draws one execution-time distribution, covering all four
// kinds with boundary-friendly parameters (BCRatio 0 and ratio-0 trace
// slots both appear).
func randomExecSpec(r *rng.RNG) task.ExecSpec {
	bc := r.Uniform(0, 0.6)
	switch r.Intn(4) {
	case 0:
		return task.ExecSpec{Dist: task.DistUniform, BCRatio: bc}
	case 1:
		return task.ExecSpec{
			Dist: task.DistNormal, BCRatio: bc,
			Mean: r.Uniform(bc, 1), StdDev: r.Uniform(0, 0.3),
		}
	case 2:
		return task.ExecSpec{
			Dist: task.DistBimodal, BCRatio: bc,
			FastProb: r.Float64(), FastRatio: r.Uniform(bc, 1),
		}
	default:
		slots := make([]float64, 1+r.Intn(8))
		for i := range slots {
			slots[i] = r.Float64()
		}
		return task.ExecSpec{Dist: task.DistTrace, BCRatio: bc, Slots: slots}
	}
}

func randomSource(r *rng.RNG) SourceSpec {
	switch r.Intn(4) {
	case 0:
		return SourceSpec{Kind: "constant", Power: r.Uniform(0.5, 6)}
	case 1:
		period := float64(10 + r.Intn(40))
		return SourceSpec{
			Kind:   "two-mode",
			Day:    r.Uniform(2, 8),
			Night:  r.Uniform(0, 1),
			Period: period,
			DayLen: period * r.Uniform(0.2, 0.8),
		}
	case 2:
		return SourceSpec{Kind: "solar", Seed: r.Uint64(), Amplitude: r.Uniform(4, 12)}
	default:
		n := 5 + r.Intn(20)
		samples := make([]float64, n)
		for i := range samples {
			samples[i] = r.Uniform(0, 8)
		}
		return SourceSpec{Kind: "trace", Samples: samples}
	}
}

// sourceMean estimates the spec's mean power for sizing the task set —
// precision is irrelevant, it only biases utilization toward schedulable.
func sourceMean(s SourceSpec) float64 {
	switch s.Kind {
	case "constant":
		return s.Power
	case "two-mode":
		frac := s.DayLen / s.Period
		return s.Day*frac + s.Night*(1-frac)
	case "solar":
		return s.Amplitude / math.Pi // half-sine day, dark night
	case "trace":
		sum := 0.0
		for _, v := range s.Samples {
			sum += v
		}
		return sum / float64(len(s.Samples))
	default:
		return 1
	}
}

func randomTasks(r *rng.RNG, meanPower, pmax float64) []task.Task {
	cfg := task.GeneratorConfig{
		NumTasks:         1 + r.Intn(6),
		Periods:          task.PaperPeriods(),
		MeanHarvestPower: math.Max(meanPower, 0.1),
		PMax:             pmax,
		TargetU:          r.Uniform(0.1, 0.9),
	}
	tasks, err := task.Generate(cfg, r.Child(0x7a5c))
	if err == nil && len(tasks) > 0 {
		// Shake some offsets loose so not every first job arrives at 0.
		for i := range tasks {
			if r.Intn(3) == 0 {
				tasks[i].Offset = float64(r.Intn(int(tasks[i].Period)))
			}
		}
		return tasks
	}
	// Fallback: one hand-built task, always valid.
	return []task.Task{{ID: 0, Period: 20, Deadline: 20, WCET: 4}}
}
