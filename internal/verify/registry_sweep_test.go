package verify

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"github.com/eadvfs/eadvfs/internal/registry"
)

// registryRunCounter mirrors runCounter for the registry sweep: repeated
// -count=K runs scan disjoint seed windows per policy.
var registryRunCounter uint64

// TestRegistryDifferential auto-enumerates the scenario registry and
// differentially sweeps EVERY registered policy against the reference
// engine — the enforcement half of the registry contract: registering a
// policy buys its cross-check, and a registration that diverges from
// refimpl (or, lacking a refimpl counterpart, from the reference engine
// running the shared implementation) fails this test with a minimized
// counterexample spec.
//
// Unlike TestDifferential, which lets RandomSpec draw the policy from
// its own menu, every policy here gets the same per-seed scenario
// material (source, tasks, capacity, faults), so a fresh registration
// cannot dodge coverage by being rare in the random draw.
func TestRegistryDifferential(t *testing.T) {
	perPolicy := *verifyN / 4
	if *quick {
		perPolicy = 50
	}
	if perPolicy < 1 {
		perPolicy = 1
	}
	window := atomic.AddUint64(&registryRunCounter, 1) - 1
	base := *verifySeed + window*uint64(perPolicy)
	policies := registry.PolicyNames()
	if len(policies) == 0 {
		t.Fatal("registry has no policies — the built-in registrations are gone")
	}
	t.Logf("registry sweep: %d policies × %d specs from seed %d", len(policies), perPolicy, base)
	for _, policy := range policies {
		policy := policy
		t.Run(policy, func(t *testing.T) {
			for i := 0; i < perPolicy; i++ {
				seed := base + uint64(i)
				t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
					t.Parallel()
					spec := RandomSpecForPolicy(seed, policy)
					d, err := Check(spec)
					if err != nil {
						t.Fatalf("spec from seed %d failed to build: %v", seed, err)
					}
					if !d.Diverged() {
						return
					}
					// Shrink before reporting: the minimized spec is the
					// counterexample a human debugs from.
					min, md, merr := Minimize(spec)
					report := spec
					diffs := d.Diffs
					if merr == nil && md.Diverged() {
						report, diffs = min, md.Diffs
					}
					js, _ := json.MarshalIndent(report, "", "  ")
					t.Fatalf("policy %q diverged from the reference engine on seed %d:\n  %s\n"+
						"minimized counterexample spec:\n%s\n"+
						"reproduce: write the spec to a file and run: go run ./cmd/eaverify -spec <file>",
						policy, seed, strings.Join(diffs, "\n  "), js)
				})
			}
		})
	}
}

// TestRegistrySweepCoversEveryPolicy pins the coverage claim itself: the
// sweep above iterates registry.PolicyNames(), so this asserts that the
// enumeration includes every built-in (and would include out-of-tree
// registrations linked into the test binary).
func TestRegistrySweepCoversEveryPolicy(t *testing.T) {
	got := registry.PolicyNames()
	for _, want := range []string{"ea-dvfs", "ea-dvfs-dynamic", "lsa", "edf", "static-dvfs", "greedy-stretch"} {
		found := false
		for _, name := range got {
			if name == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("registry enumeration %v is missing built-in policy %q", got, want)
		}
	}
	for _, name := range got {
		if _, err := registry.Policy(name); err != nil {
			t.Errorf("enumerated policy %q fails to resolve: %v", name, err)
		}
	}
}
