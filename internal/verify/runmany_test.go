package verify

import (
	"bytes"
	"flag"
	"fmt"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"github.com/eadvfs/eadvfs/internal/obs"
	"github.com/eadvfs/eadvfs/internal/sim"
)

var runManyBatch = flag.Int("verify.batch", 8,
	"configs per sim.RunMany batch in the batched-vs-single differential")

// runManyCounter windows the seed space per invocation, like runCounter for
// TestDifferential: `-count=K` scans K disjoint windows.
var runManyCounter uint64

// runManySide is one side's observation of a run: everything the batched
// engine could plausibly corrupt through arena reuse — the Result, the
// error, the decision audits and event records, and the serialized JSONL
// stream (which additionally pins field-by-field encoding of the records).
type runManySide struct {
	res   *sim.Result
	err   error
	rec   *obs.Recorder
	jw    *obs.JSONLWriter
	jsonl bytes.Buffer
}

// instrument attaches this side's probes to cfg.
func (s *runManySide) instrument(cfg *sim.Config) *sim.Config {
	s.rec = obs.NewRecorder()
	s.jw = obs.NewJSONLWriter(&s.jsonl)
	cfg.Probe = obs.Multi(s.rec, s.jw)
	return cfg
}

// flush drains the buffered JSONL writer.
func (s *runManySide) flush(t *testing.T) {
	t.Helper()
	if err := s.jw.Flush(); err != nil {
		t.Fatalf("jsonl flush: %v", err)
	}
}

// TestRunManyMatchesRunOne is the batched-execution differential: for every
// random spec, one run through the batched sim.RunMany (many configs
// sharing one arena back to back) must be bit-identical to an independent
// sim.Run of an identically-built config — same Result fields, same error,
// same decision audits and event records, and byte-identical JSONL streams.
// Any state leaking across a reused arena (job prototypes, kernel free
// list, ready queue, stats table) diverges here.
func TestRunManyMatchesRunOne(t *testing.T) {
	n := *verifyN
	if *quick {
		n = 200
	}
	batch := *runManyBatch
	if batch < 1 {
		batch = 1
	}
	window := atomic.AddUint64(&runManyCounter, 1) - 1
	base := *verifySeed + window*uint64(n)
	t.Logf("batched differential: %d specs from seed %d, batches of %d", n, base, batch)

	for start := 0; start < n; start += batch {
		size := batch
		if start+size > n {
			size = n - start
		}
		first := base + uint64(start)
		t.Run(fmt.Sprintf("seeds=%d+%d", first, size), func(t *testing.T) {
			t.Parallel()
			specs := make([]*Spec, size)
			singles := make([]runManySide, size)
			batched := make([]runManySide, size)
			cfgs := make([]*sim.Config, size)
			for i := range specs {
				specs[i] = RandomSpec(first + uint64(i))
				// Two independent materializations of the same spec: the
				// single-run side consumes one, the batch the other.
				one, _, err := specs[i].Pair()
				if err != nil {
					t.Fatalf("seed %d: %v", first+uint64(i), err)
				}
				many, _, err := specs[i].Pair()
				if err != nil {
					t.Fatalf("seed %d: %v", first+uint64(i), err)
				}
				singles[i].instrument(one)
				singles[i].res, singles[i].err = sim.Run(one)
				singles[i].flush(t)
				cfgs[i] = batched[i].instrument(many)
			}
			for i, out := range sim.RunMany(cfgs) {
				batched[i].res, batched[i].err = out.Result, out.Err
				batched[i].flush(t)
			}
			for i := range specs {
				compareRunManySides(t, specs[i], &batched[i], &singles[i])
			}
		})
	}
}

func compareRunManySides(t *testing.T, spec *Spec, got, want *runManySide) {
	t.Helper()
	var diffs []string
	switch {
	case (got.err == nil) != (want.err == nil):
		diffs = append(diffs, fmt.Sprintf("error: %v != %v", got.err, want.err))
	case got.err != nil && got.err.Error() != want.err.Error():
		diffs = append(diffs, fmt.Sprintf("error: %q != %q", got.err, want.err))
	}
	if (got.res == nil) != (want.res == nil) {
		diffs = append(diffs, fmt.Sprintf("result presence: %v != %v", got.res != nil, want.res != nil))
	} else if got.res != nil {
		bitDiff("Result", reflect.ValueOf(*got.res), reflect.ValueOf(*want.res), &diffs)
	}
	bitDiff("Decisions", reflect.ValueOf(got.rec.Decisions()), reflect.ValueOf(want.rec.Decisions()), &diffs)
	bitDiff("Events", reflect.ValueOf(got.rec.Events()), reflect.ValueOf(want.rec.Events()), &diffs)
	if !bytes.Equal(got.jsonl.Bytes(), want.jsonl.Bytes()) {
		diffs = append(diffs, fmt.Sprintf("jsonl: %d-byte stream != %d-byte stream",
			got.jsonl.Len(), want.jsonl.Len()))
	}
	if len(diffs) > 0 {
		t.Fatalf("RunMany diverged from RunOne on seed %d (policy=%s predictor=%s source=%s):\n  %s",
			spec.Seed, spec.Policy, spec.Predictor, spec.Source.Kind,
			strings.Join(diffs, "\n  "))
	}
}
