// Package verify is the differential-verification harness: it runs the
// optimized engine (internal/sim with the pooled kernel, prefix-sum
// energy caches and reused contexts) and the deliberately naive reference
// engine (internal/refimpl) on identical inputs and demands bit-identical
// outputs — decision audits, engine event streams, and every exported
// Result metric.
//
// The comparison is exact (math.Float64bits, not a tolerance) because the
// optimized layers were written as accumulation-order-preserving rewrites
// of the naive formulations; DESIGN.md §11 states that contract and its
// boundary. A divergence therefore always means a real bug in one of the
// engines, never float reassociation noise — which is what makes the
// harness usable as a CI gate (`go test ./internal/verify -quick`) and as
// the backing store of cmd/eaverify's minimizing reproducer.
package verify

import (
	"fmt"
	"math"
	"reflect"

	"github.com/eadvfs/eadvfs/internal/cpu"
	"github.com/eadvfs/eadvfs/internal/energy"
	"github.com/eadvfs/eadvfs/internal/fault"
	"github.com/eadvfs/eadvfs/internal/obs"
	"github.com/eadvfs/eadvfs/internal/refimpl"
	"github.com/eadvfs/eadvfs/internal/registry"
	"github.com/eadvfs/eadvfs/internal/sched"
	"github.com/eadvfs/eadvfs/internal/sim"
	"github.com/eadvfs/eadvfs/internal/storage"
	"github.com/eadvfs/eadvfs/internal/task"
)

// SourceSpec describes an energy source in plain JSON-serializable data,
// so a diverging configuration can be written to disk and replayed by
// cmd/eaverify. Build constructs a fresh source instance per call: the
// optimized and reference engines each get their own (memoizing sources
// such as SolarModel are deterministic in their seed, so two instances
// built from the same spec produce bit-identical traces).
type SourceSpec struct {
	Kind string `json:"kind"` // "constant", "two-mode", "solar", "trace"

	// Constant.
	Power float64 `json:"power,omitempty"`

	// TwoMode.
	Day    float64 `json:"day,omitempty"`
	Night  float64 `json:"night,omitempty"`
	Period float64 `json:"period,omitempty"`
	DayLen float64 `json:"day_len,omitempty"`

	// Solar.
	Seed      uint64  `json:"seed,omitempty"`
	Amplitude float64 `json:"amplitude,omitempty"`

	// Trace.
	Samples []float64 `json:"samples,omitempty"`
}

// Build constructs a fresh source from the spec, resolving the kind
// through the scenario registry. Every parameter is passed explicitly —
// including zero values — so the constructed source is a pure function
// of the spec, never of a registry default that might move.
func (s SourceSpec) Build() (energy.Source, error) {
	def, err := registry.Source(s.Kind)
	if err != nil {
		return nil, err
	}
	var p registry.Params
	switch s.Kind {
	case "constant":
		p = registry.Params{"power": s.Power}
	case "two-mode":
		p = registry.Params{"day": s.Day, "night": s.Night, "period": s.Period, "day_len": s.DayLen}
	case "solar":
		p = registry.Params{"seed": s.Seed, "amplitude": s.Amplitude}
	case "trace":
		p = registry.Params{"samples": s.Samples, "label": "verify-trace"}
	default:
		return nil, fmt.Errorf("verify: source kind %q is registered but has no parameter mapping here", s.Kind)
	}
	return def.Build(p)
}

// Spec is one differential test case: everything both engines need to run,
// as plain serializable data. RandomSpec draws these from a seed;
// cmd/eaverify reads and writes them as JSON.
type Spec struct {
	// Seed is the generator seed this spec was drawn from (bookkeeping
	// only — the spec is self-contained).
	Seed uint64 `json:"seed"`

	// Policy names a registered policy — the harness enumerates the
	// registry, so every registration is a legal (and swept) value.
	// PolicyParams carries its schema-declared parameters (e.g.
	// static-dvfs's "utilization").
	Policy       string         `json:"policy"`
	PolicyParams map[string]any `json:"policy_params,omitempty"`

	Predictor string  `json:"predictor"` // a registered predictor name
	Alpha     float64 `json:"alpha,omitempty"`

	Horizon float64     `json:"horizon"`
	Tasks   []task.Task `json:"tasks"`
	Source  SourceSpec  `json:"source"`

	// Capacity is the storage capacity (finite; 0 is legal and means the
	// system lives hand-to-mouth on harvest). InitialFrac·Capacity is the
	// initial charge.
	Capacity    float64 `json:"capacity"`
	InitialFrac float64 `json:"initial_frac"`

	BCWCRatio float64 `json:"bcwc_ratio,omitempty"`
	ExecSeed  uint64  `json:"exec_seed,omitempty"`

	FaultIntensity float64 `json:"fault_intensity,omitempty"`
	FaultSeed      uint64  `json:"fault_seed,omitempty"`

	ContinueAfterDeadline bool `json:"continue_after_deadline,omitempty"`

	// CPU selects the processor preset; empty means "xscale".
	CPU string `json:"cpu,omitempty"` // "xscale", "two-speed", "pxa270", "sensor-mcu"

	// Sleep names a DPM configuration (cpu.SleepPreset) attached to the
	// CPU preset on both sides: "" / "none" for the paper's model,
	// "default" for the nap/deep ladder over a 5%·Pmax idle draw.
	Sleep string `json:"sleep,omitempty"`

	// MaxEvents is the runaway-watchdog budget applied to both engines
	// (0 = unlimited).
	MaxEvents uint64 `json:"max_events,omitempty"`

	// InjectBias, when non-zero, adds a constant bias to every energy
	// prediction the *optimized* side makes for query windows starting at
	// or after InjectAfter. It exists to fault-inject an artificial
	// divergence so the harness and minimizer can be tested end to end —
	// a spec with a bias is divergent by construction.
	InjectBias  float64 `json:"inject_bias,omitempty"`
	InjectAfter float64 `json:"inject_after,omitempty"`
}

// biasPredictor perturbs an inner predictor — the divergence fault
// injection behind Spec.InjectBias.
type biasPredictor struct {
	inner energy.Predictor
	bias  float64
	after float64
}

func (b *biasPredictor) Observe(t, p float64) { b.inner.Observe(t, p) }

func (b *biasPredictor) PredictEnergy(t1, t2 float64) float64 {
	e := b.inner.PredictEnergy(t1, t2)
	if t1 >= b.after {
		e += b.bias
	}
	return e
}

func (b *biasPredictor) Name() string { return b.inner.Name() }

// policyParams materializes the spec's policy parameters for validation.
func (s *Spec) policyParams() registry.Params { return registry.Params(s.PolicyParams) }

// optPolicy builds the optimized-engine policy through the registry.
func (s *Spec) optPolicy() (sched.Policy, error) {
	def, err := registry.Policy(s.Policy)
	if err != nil {
		return nil, err
	}
	f, err := def.Factory(s.policyParams())
	if err != nil {
		return nil, err
	}
	return f(), nil
}

// refPolicy builds the reference-engine policy: the registration's Ref
// (a hand-written naive counterpart in internal/refimpl) when present,
// the optimized constructor otherwise — the fallback still cross-checks
// the two engines on a shared policy implementation, so every
// registered policy gets differential coverage the moment it registers.
func (s *Spec) refPolicy() (sched.Policy, error) {
	def, err := registry.Policy(s.Policy)
	if err != nil {
		return nil, err
	}
	f, err := def.RefFactory(s.policyParams())
	if err != nil {
		return nil, err
	}
	return f(), nil
}

// predictorParams maps the spec's Alpha shorthand onto the registry
// schema: passed only when set, so alpha-less predictors validate and
// an unset alpha takes the registered default.
func (s *Spec) predictorParams() registry.Params {
	if s.Alpha != 0 {
		return registry.Params{"alpha": s.Alpha}
	}
	return nil
}

func (s *Spec) optPredictor(src energy.Source) (energy.Predictor, error) {
	def, err := registry.Predictor(s.Predictor)
	if err != nil {
		return nil, err
	}
	f, err := def.Factory(s.predictorParams())
	if err != nil {
		return nil, err
	}
	return f(src), nil
}

func (s *Spec) refPredictor(src energy.Source) (energy.Predictor, error) {
	def, err := registry.Predictor(s.Predictor)
	if err != nil {
		return nil, err
	}
	f, err := def.RefFactory(s.predictorParams())
	if err != nil {
		return nil, err
	}
	return f(src), nil
}

// cpuFor resolves the spec's processor preset. The processor is immutable
// after construction, so — unlike sources and predictors — one instance
// could be shared; fresh instances per side keep the isolation rule simple.
func cpuFor(s *Spec) *cpu.Processor {
	var p *cpu.Processor
	switch s.CPU {
	case "", "xscale":
		p = cpu.XScale()
	case "two-speed":
		p = cpu.TwoSpeed(4)
	case "pxa270":
		p = cpu.PXA270()
	case "sensor-mcu":
		p = cpu.SensorNodeMCU()
	default:
		panic(fmt.Sprintf("verify: unknown cpu preset %q", s.CPU))
	}
	idle, states, err := cpu.SleepPreset(s.Sleep, p.MaxPower())
	if err != nil {
		panic(fmt.Sprintf("verify: %v", err))
	}
	if idle > 0 || len(states) > 0 {
		p = p.WithDPM(idle, states)
	}
	return p
}

func (s *Spec) faults() *fault.Spec {
	if s.FaultIntensity <= 0 {
		return nil
	}
	f := fault.AtIntensity(s.FaultSeed, s.FaultIntensity)
	return &f
}

// Pair materializes the two configurations — optimized and reference —
// from the spec. Every stateful component (source, predictor, store,
// policy) is constructed fresh per side so neither run can contaminate
// the other; determinism in the spec guarantees the pairs start bit-equal.
func (s *Spec) Pair() (opt, ref *sim.Config, err error) {
	if s.InitialFrac < 0 || s.InitialFrac > 1 || math.IsNaN(s.InitialFrac) {
		return nil, nil, fmt.Errorf("verify: initial_frac %v outside [0,1]", s.InitialFrac)
	}
	build := func(isRef bool) (*sim.Config, error) {
		src, err := s.Source.Build()
		if err != nil {
			return nil, err
		}
		var pred energy.Predictor
		if isRef {
			pred, err = s.refPredictor(src)
		} else {
			pred, err = s.optPredictor(src)
		}
		if err != nil {
			return nil, err
		}
		if !isRef && s.InjectBias != 0 {
			pred = &biasPredictor{inner: pred, bias: s.InjectBias, after: s.InjectAfter}
		}
		var pol sched.Policy
		if isRef {
			pol, err = s.refPolicy()
		} else {
			pol, err = s.optPolicy()
		}
		if err != nil {
			return nil, err
		}
		tasks := make([]task.Task, len(s.Tasks))
		copy(tasks, s.Tasks)
		return &sim.Config{
			Horizon:               s.Horizon,
			Tasks:                 tasks,
			Source:                src,
			Predictor:             pred,
			Store:                 storage.New(s.Capacity, s.InitialFrac*s.Capacity),
			CPU:                   cpuFor(s),
			Policy:                pol,
			ContinueAfterDeadline: s.ContinueAfterDeadline,
			BCWCRatio:             s.BCWCRatio,
			ExecSeed:              s.ExecSeed,
			RecordEnergy:          true,
			Faults:                s.faults(),
			MaxEvents:             s.MaxEvents,
		}, nil
	}
	if opt, err = build(false); err != nil {
		return nil, nil, err
	}
	if ref, err = build(true); err != nil {
		return nil, nil, err
	}
	return opt, ref, nil
}

// Divergence describes a differential failure: the first (up to maxDiffs)
// field paths whose bits differ, plus both sides' full observability
// records for side-by-side dumping.
type Divergence struct {
	Spec  *Spec
	Diffs []string // "Result.BusyTime: 3.5 != 3.4999999999999996" style

	OptErr, RefErr error
	Opt, Ref       *sim.Result
	OptRec, RefRec *obs.Recorder
}

// Diverged reports whether the pair disagreed anywhere.
func (d *Divergence) Diverged() bool {
	return d != nil && len(d.Diffs) > 0
}

const maxDiffs = 24

// Check runs both engines on the spec and bit-compares everything:
// run errors (by message), decision audits, engine event streams, and the
// exported Result fields. It returns nil when the runs are bit-identical,
// and a populated Divergence otherwise. A setup error (invalid spec)
// is returned as err.
func Check(s *Spec) (*Divergence, error) {
	opt, ref, err := s.Pair()
	if err != nil {
		return nil, err
	}
	optRec, refRec := obs.NewRecorder(), obs.NewRecorder()
	opt.Probe, ref.Probe = optRec, refRec

	optRes, optErr := sim.Run(opt)
	refRes, refErr := refimpl.Run(ref)

	d := &Divergence{
		Spec:   s,
		OptErr: optErr, RefErr: refErr,
		Opt: optRes, Ref: refRes,
		OptRec: optRec, RefRec: refRec,
	}
	if (optErr == nil) != (refErr == nil) {
		d.Diffs = append(d.Diffs, fmt.Sprintf("error: %v != %v", optErr, refErr))
		return d, nil
	}
	if optErr != nil && optErr.Error() != refErr.Error() {
		d.Diffs = append(d.Diffs, fmt.Sprintf("error: %q != %q", optErr, refErr))
		return d, nil
	}
	if (optRes == nil) != (refRes == nil) {
		d.Diffs = append(d.Diffs, fmt.Sprintf("result presence: %v != %v", optRes != nil, refRes != nil))
		return d, nil
	}
	if optRes != nil {
		bitDiff("Result", reflect.ValueOf(*optRes), reflect.ValueOf(*refRes), &d.Diffs)
	}
	bitDiff("Decisions", reflect.ValueOf(optRec.Decisions()), reflect.ValueOf(refRec.Decisions()), &d.Diffs)
	bitDiff("Events", reflect.ValueOf(optRec.Events()), reflect.ValueOf(refRec.Events()), &d.Diffs)
	if !d.Diverged() {
		return nil, nil
	}
	return d, nil
}

// bitDiff walks two values of identical type and records every path where
// they differ — floats compared by math.Float64bits (so +Inf, -0 and NaN
// payloads all count), everything else by language equality. Unexported
// fields are skipped: they are implementation detail the reference engine
// legitimately does not reproduce (e.g. the Welford accumulator inside
// sim.TaskStats, whose exported projections ResponseMean/ResponseMax are
// compared instead).
func bitDiff(path string, a, b reflect.Value, out *[]string) {
	if len(*out) >= maxDiffs {
		return
	}
	if a.Type() != b.Type() {
		*out = append(*out, fmt.Sprintf("%s: type %v != %v", path, a.Type(), b.Type()))
		return
	}
	switch a.Kind() {
	case reflect.Float64, reflect.Float32:
		af, bf := a.Float(), b.Float()
		if math.Float64bits(af) != math.Float64bits(bf) {
			*out = append(*out, fmt.Sprintf("%s: %v != %v (bits %016x != %016x)",
				path, af, bf, math.Float64bits(af), math.Float64bits(bf)))
		}
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		if a.Int() != b.Int() {
			*out = append(*out, fmt.Sprintf("%s: %d != %d", path, a.Int(), b.Int()))
		}
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		if a.Uint() != b.Uint() {
			*out = append(*out, fmt.Sprintf("%s: %d != %d", path, a.Uint(), b.Uint()))
		}
	case reflect.Bool:
		if a.Bool() != b.Bool() {
			*out = append(*out, fmt.Sprintf("%s: %v != %v", path, a.Bool(), b.Bool()))
		}
	case reflect.String:
		if a.String() != b.String() {
			*out = append(*out, fmt.Sprintf("%s: %q != %q", path, a.String(), b.String()))
		}
	case reflect.Ptr:
		if a.IsNil() != b.IsNil() {
			*out = append(*out, fmt.Sprintf("%s: nil-ness %v != %v", path, a.IsNil(), b.IsNil()))
			return
		}
		if !a.IsNil() {
			bitDiff(path, a.Elem(), b.Elem(), out)
		}
	case reflect.Slice:
		if a.Len() != b.Len() {
			*out = append(*out, fmt.Sprintf("%s: len %d != %d", path, a.Len(), b.Len()))
			return
		}
		for i := 0; i < a.Len() && len(*out) < maxDiffs; i++ {
			bitDiff(fmt.Sprintf("%s[%d]", path, i), a.Index(i), b.Index(i), out)
		}
	case reflect.Struct:
		t := a.Type()
		for i := 0; i < t.NumField() && len(*out) < maxDiffs; i++ {
			f := t.Field(i)
			if f.PkgPath != "" { // unexported
				continue
			}
			bitDiff(path+"."+f.Name, a.Field(i), b.Field(i), out)
		}
	case reflect.Interface:
		if a.IsNil() != b.IsNil() {
			*out = append(*out, fmt.Sprintf("%s: nil-ness %v != %v", path, a.IsNil(), b.IsNil()))
			return
		}
		if !a.IsNil() {
			bitDiff(path, a.Elem(), b.Elem(), out)
		}
	default:
		// Maps, chans, funcs do not occur in compared types; flag loudly
		// if a future Result field introduces one.
		*out = append(*out, fmt.Sprintf("%s: uncomparable kind %v", path, a.Kind()))
	}
}
