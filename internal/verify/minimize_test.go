package verify

import (
	"bytes"
	"strings"
	"testing"
)

// TestMinimizeInjectedDivergence injects an artificial divergence (a
// biased optimized-side predictor) into a deliberately bloated spec and
// checks that Minimize shrinks it while keeping the divergence alive —
// the workflow cmd/eaverify automates.
func TestMinimizeInjectedDivergence(t *testing.T) {
	spec := RandomSpec(42)
	spec.Policy = "ea-dvfs" // a policy that audits Available
	spec.InjectBias = 1e-6
	spec.InjectAfter = 0

	min, d, err := Minimize(spec)
	if err != nil {
		t.Fatalf("Minimize: %v", err)
	}
	if !d.Diverged() {
		t.Fatal("minimized spec no longer diverges")
	}
	if len(min.Tasks) > len(spec.Tasks) || min.Horizon > spec.Horizon {
		t.Fatalf("minimize grew the spec: %d tasks horizon %v -> %d tasks horizon %v",
			len(spec.Tasks), spec.Horizon, len(min.Tasks), min.Horizon)
	}
	// The passes must have found at least one simplification: the bias
	// fires on the very first prediction, so a single task over a short
	// horizon keeps diverging.
	if len(min.Tasks) == len(spec.Tasks) && min.Horizon == spec.Horizon &&
		min.Source.Kind == spec.Source.Kind && min.Predictor == spec.Predictor {
		t.Fatalf("minimize made no progress on a trivially shrinkable divergence: %+v", min)
	}
	if min.InjectBias != spec.InjectBias {
		t.Fatal("minimize must not touch the injected fault itself")
	}

	var buf bytes.Buffer
	SideBySide(&buf, d)
	dump := buf.String()
	if !strings.Contains(dump, ">>>") {
		t.Fatalf("side-by-side dump does not mark the first divergence:\n%s", dump)
	}
	if !strings.Contains(dump, "opt:") || !strings.Contains(dump, "ref:") {
		t.Fatalf("side-by-side dump missing one side:\n%s", dump)
	}
}

// TestMinimizeCleanSpec: a non-diverging spec comes back unchanged with a
// nil divergence.
func TestMinimizeCleanSpec(t *testing.T) {
	spec := RandomSpec(7)
	min, d, err := Minimize(spec)
	if err != nil {
		t.Fatal(err)
	}
	if d != nil {
		t.Fatalf("clean spec reported divergent: %v", d.Diffs)
	}
	if min != spec {
		t.Fatal("clean spec should be returned unchanged")
	}
}
