package verify

import (
	"flag"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"github.com/eadvfs/eadvfs/internal/task"
)

var (
	quick = flag.Bool("quick", false,
		"run the CI-sized differential sweep (forces -verify.n=200)")
	verifyN = flag.Int("verify.n", 200,
		"number of random configurations per differential sweep")
	verifySeed = flag.Uint64("verify.seed", 1,
		"first generator seed of the differential sweep")
)

// runCounter advances once per TestDifferential invocation, so a nightly
// `go test ./internal/verify -count=K` scans K disjoint seed windows
// instead of re-running the same one — deterministic scaling without any
// wall-clock dependence.
var runCounter uint64

func TestDifferential(t *testing.T) {
	n := *verifyN
	if *quick {
		n = 200
	}
	window := atomic.AddUint64(&runCounter, 1) - 1
	base := *verifySeed + window*uint64(n)
	t.Logf("differential sweep: %d specs from seed %d", n, base)
	for i := 0; i < n; i++ {
		seed := base + uint64(i)
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			spec := RandomSpec(seed)
			d, err := Check(spec)
			if err != nil {
				t.Fatalf("spec from seed %d failed to build: %v", seed, err)
			}
			if d.Diverged() {
				t.Fatalf("optimized and reference engines diverged on seed %d "+
					"(policy=%s predictor=%s source=%s):\n  %s\n"+
					"reproduce: go run ./cmd/eaverify -seed %d -n 1",
					seed, spec.Policy, spec.Predictor, spec.Source.Kind,
					strings.Join(d.Diffs, "\n  "), seed)
			}
		})
	}
}

// TestInjectedDivergence proves the harness can actually see a divergence:
// a biased predictor on the optimized side must surface in the decision
// audits. Without this test, a comparator bug that compares nothing would
// make the sweep vacuously green.
func TestInjectedDivergence(t *testing.T) {
	spec := &Spec{
		Policy:    "ea-dvfs",
		Predictor: "zero",
		Horizon:   60,
		Tasks:     []task.Task{{ID: 0, Period: 20, Deadline: 20, WCET: 4}},
		Source:    SourceSpec{Kind: "constant", Power: 2},
		Capacity:  50, InitialFrac: 0.5,
		InjectBias: 1e-6, InjectAfter: 0,
	}
	d, err := Check(spec)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if !d.Diverged() {
		t.Fatal("injected predictor bias produced no divergence — the comparator is blind")
	}
}
