package verify

import (
	"bufio"
	"bytes"
	"encoding/json"
	"math"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/eadvfs/eadvfs/internal/obs"
	"github.com/eadvfs/eadvfs/internal/sim"
	"github.com/eadvfs/eadvfs/internal/task"
)

// Metamorphic properties: relations that must hold between *different*
// runs, complementing the differential sweep's same-input comparison.
// All seeds are pinned, so every property is a deterministic regression
// test rather than a flaky statistical one.

// TestSeedDeterminism: the optimized engine run twice on the same spec is
// bit-identical — Result, audits and events. Pool reuse, map iteration or
// time-dependent state anywhere in the hot path would break this first.
func TestSeedDeterminism(t *testing.T) {
	for _, seed := range []uint64{3, 17, 41, 97, malformedSeed} {
		spec := RandomSpec(seed)
		run := func() (*sim.Result, *obs.Recorder, error) {
			cfg, _, err := spec.Pair()
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			rec := obs.NewRecorder()
			cfg.Probe = rec
			res, err := sim.Run(cfg)
			return res, rec, err
		}
		res1, rec1, err1 := run()
		res2, rec2, err2 := run()
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("seed %d: error nondeterminism: %v vs %v", seed, err1, err2)
		}
		var diffs []string
		if res1 != nil && res2 != nil {
			bitDiff("Result", reflect.ValueOf(*res1), reflect.ValueOf(*res2), &diffs)
		}
		bitDiff("Decisions", reflect.ValueOf(rec1.Decisions()), reflect.ValueOf(rec2.Decisions()), &diffs)
		bitDiff("Events", reflect.ValueOf(rec1.Events()), reflect.ValueOf(rec2.Events()), &diffs)
		if len(diffs) > 0 {
			t.Fatalf("seed %d: two identical runs diverged:\n  %v", seed, diffs)
		}
	}
}

// malformedSeed is an arbitrary pinned seed that historically drew a
// fault-injected, jittered spec — kept in the determinism set so the
// property covers the wrapped (fault.Set) paths too.
const malformedSeed = 123456789

// TestTimeShiftInvariance: under a constant source, a full ideal store and
// a history-free predictor, shifting every task offset and the horizon by
// the same integer Δ cannot change what happens to any job — the system
// state a job observes at release is Δ-translated but otherwise equal. Job
// counters must match exactly; accumulated times shift by exactly the
// added idle prefix (compared with a tolerance, since the shifted-window
// arithmetic reassociates float sums).
func TestTimeShiftInvariance(t *testing.T) {
	const delta = 7.0
	base := &Spec{
		Policy:    "ea-dvfs",
		Predictor: "zero",
		Horizon:   80,
		Tasks: []task.Task{
			{ID: 0, Period: 20, Deadline: 20, WCET: 5},
			{ID: 1, Period: 30, Deadline: 30, WCET: 6, Offset: 4},
		},
		Source:   SourceSpec{Kind: "constant", Power: 3},
		Capacity: 200, InitialFrac: 1,
	}
	shifted := *base
	shifted.Horizon += delta
	shifted.Tasks = make([]task.Task, len(base.Tasks))
	copy(shifted.Tasks, base.Tasks)
	for i := range shifted.Tasks {
		shifted.Tasks[i].Offset += delta
	}

	runCounters := func(s *Spec) (*sim.Result, error) {
		cfg, _, err := s.Pair()
		if err != nil {
			return nil, err
		}
		return sim.Run(cfg)
	}
	a, err := runCounters(base)
	if err != nil {
		t.Fatal(err)
	}
	b, err := runCounters(&shifted)
	if err != nil {
		t.Fatal(err)
	}
	if a.Miss != b.Miss {
		t.Fatalf("miss stats changed under time shift: %+v vs %+v", a.Miss, b.Miss)
	}
	if a.Switches != b.Switches || a.Preemptions != b.Preemptions {
		t.Fatalf("switch/preemption counts changed under time shift: %d/%d vs %d/%d",
			a.Switches, a.Preemptions, b.Switches, b.Preemptions)
	}
	if math.Abs(a.BusyTime-b.BusyTime) > 1e-6 {
		t.Fatalf("busy time changed under time shift: %v vs %v", a.BusyTime, b.BusyTime)
	}
	if math.Abs((b.IdleTime+b.StallTime)-(a.IdleTime+a.StallTime)-delta) > 1e-6 {
		t.Fatalf("idle time should grow by exactly the shift %v: %v vs %v",
			delta, a.IdleTime, b.IdleTime)
	}
}

// TestCapacityMonotonicity: with a full store at release and everything
// else fixed, a strictly larger capacity can only give the scheduler more
// energy at every instant — under EDF (whose decisions ignore the energy
// state, so the schedule is capacity-independent and only stalls differ)
// the miss count must be non-increasing in capacity.
func TestCapacityMonotonicity(t *testing.T) {
	capacities := []float64{0, 2, 8, 32, 128, 512}
	for _, seed := range []uint64{5, 29, 71} {
		spec := RandomSpec(seed)
		spec.Policy = "edf"
		spec.InitialFrac = 1
		spec.BCWCRatio = 0 // keep actual work identical across runs
		spec.FaultIntensity = 0
		prevMissed := -1
		prevCap := 0.0
		for i, c := range capacities {
			spec.Capacity = c
			cfg, _, err := spec.Pair()
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			res, err := sim.Run(cfg)
			if err != nil {
				t.Fatalf("seed %d cap %v: %v", seed, c, err)
			}
			if i > 0 && res.Miss.Missed > prevMissed {
				t.Fatalf("seed %d: misses increased with capacity: %d at C=%v -> %d at C=%v",
					seed, prevMissed, prevCap, res.Miss.Missed, c)
			}
			prevMissed, prevCap = res.Miss.Missed, c
		}
	}
}

// TestManifestReplay: a run streamed to JSONL alongside a manifest that
// embeds its verify.Spec must be fully reproducible — re-running the
// decoded spec yields a byte-identical JSONL stream, the stream passes the
// strict schema checker, and the stream's own accounting (segment tiling,
// arrival/miss tallies) agrees with the Result. This is the
// "energy-conservation replay of recorded runs" property: nothing about a
// run exists only in memory.
func TestManifestReplay(t *testing.T) {
	spec := RandomSpec(1234)
	spec.FaultIntensity = 0.4 // exercise fault events in the stream
	spec.FaultSeed = 99

	runJSONL := func(s *Spec) ([]byte, *sim.Result) {
		cfg, _, err := s.Pair()
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		jw := obs.NewJSONLWriter(&buf)
		cfg.Probe = jw
		res, err := sim.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := jw.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), res
	}

	stream1, res1 := runJSONL(spec)

	// Manifest round-trip through disk.
	man, err := obs.NewManifest("verify-test", spec.Policy,
		map[string]uint64{"spec": spec.Seed}, spec)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "manifest.json")
	if err := man.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	man2, err := obs.ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	var replay Spec
	if err := man2.DecodeConfig(&replay); err != nil {
		t.Fatal(err)
	}

	stream2, res2 := runJSONL(&replay)
	if !bytes.Equal(stream1, stream2) {
		t.Fatal("replayed JSONL stream differs from the original byte stream")
	}
	var diffs []string
	bitDiff("Result", reflect.ValueOf(*res1), reflect.ValueOf(*res2), &diffs)
	if len(diffs) > 0 {
		t.Fatalf("replayed Result diverged:\n  %v", diffs)
	}

	// The stream must satisfy the strict schema.
	n, err := obs.CheckJSONL(bytes.NewReader(stream1))
	if err != nil {
		t.Fatalf("CheckJSONL rejected the stream: %v", err)
	}
	if n == 0 {
		t.Fatal("CheckJSONL validated zero lines — stream empty?")
	}

	// Stream-level conservation: segments tile [0, horizon] contiguously
	// and the stream's tallies agree with the Result's counters.
	checkStreamConservation(t, stream1, spec.Horizon, res1)
}

// streamEvent is the subset of the schema-v1 event line the conservation
// check reads back.
type streamEvent struct {
	Type  string   `json:"type"`
	T     float64  `json:"t"`
	Kind  string   `json:"kind"`
	Start *float64 `json:"start"`
	Mode  string   `json:"mode"`
}

func decodeEvents(t *testing.T, stream []byte) []streamEvent {
	t.Helper()
	var events []streamEvent
	sc := bufio.NewScanner(bytes.NewReader(stream))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var ev streamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("undecodable stream line: %v", err)
		}
		if ev.Type == "event" {
			events = append(events, ev)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return events
}

func checkStreamConservation(t *testing.T, stream []byte, horizon float64, res *sim.Result) {
	t.Helper()
	events := decodeEvents(t, stream)
	cursor := 0.0
	arrivals, misses := 0, 0
	busy := 0.0
	for _, ev := range events {
		switch ev.Kind {
		case "segment":
			if ev.Start == nil {
				t.Fatalf("segment line at t=%v without a start field", ev.T)
			}
			if math.Abs(*ev.Start-cursor) > 1e-9 {
				t.Fatalf("segment gap: previous segment ended at %v, next starts at %v", cursor, *ev.Start)
			}
			if ev.Mode == "run" {
				busy += ev.T - *ev.Start
			}
			cursor = ev.T
		case "arrival":
			arrivals++
		case "miss":
			misses++
		}
	}
	if math.Abs(cursor-horizon) > 1e-9 {
		t.Fatalf("segments do not reach the horizon: last end %v, horizon %v", cursor, horizon)
	}
	if arrivals != res.Miss.Released {
		t.Fatalf("stream arrivals %d != Result released %d", arrivals, res.Miss.Released)
	}
	if misses != res.Miss.Missed {
		t.Fatalf("stream misses %d != Result missed %d", misses, res.Miss.Missed)
	}
	if math.Abs(busy-res.BusyTime) > 1e-6 {
		t.Fatalf("stream busy time %v != Result busy time %v", busy, res.BusyTime)
	}
}
