package verify

import (
	"fmt"
	"io"
	"math"
	"reflect"

	"github.com/eadvfs/eadvfs/internal/obs"
	"github.com/eadvfs/eadvfs/internal/task"
)

// Minimize greedily shrinks a diverging spec while preserving the
// divergence, and returns the smallest spec found together with its
// Divergence. The reduction passes are applied to a fixpoint in a
// deterministic order, so the same input always minimizes to the same
// repro. A spec that does not diverge is returned unchanged with a nil
// Divergence.
//
// The passes only ever simplify — drop a task, shorten the horizon, turn
// off jitter/faults, flatten the source, enlarge the store toward the
// trivial regime — so the minimized spec is a strict sub-problem of the
// original, never a different bug.
func Minimize(s *Spec) (*Spec, *Divergence, error) {
	d, err := Check(s)
	if err != nil {
		return s, nil, err
	}
	if !d.Diverged() {
		return s, nil, nil
	}
	cur := cloneSpec(s)
	best := d
	for {
		improved := false
		for _, cand := range shrinkCandidates(cur) {
			cd, err := Check(cand)
			if err != nil {
				continue // an invalid shrink is simply not taken
			}
			if cd.Diverged() {
				cur, best = cand, cd
				improved = true
				break // restart the pass list from the smaller spec
			}
		}
		if !improved {
			return cur, best, nil
		}
	}
}

func cloneSpec(s *Spec) *Spec {
	c := *s
	c.Tasks = append([]task.Task(nil), s.Tasks...)
	c.Source.Samples = append([]float64(nil), s.Source.Samples...)
	return &c
}

// shrinkCandidates enumerates the one-step reductions of s, most
// aggressive first. Each candidate is an independent clone.
func shrinkCandidates(s *Spec) []*Spec {
	var out []*Spec
	add := func(mutate func(*Spec) bool) {
		c := cloneSpec(s)
		if mutate(c) {
			out = append(out, c)
		}
	}
	// Drop one task at a time (keep at least one).
	for i := range s.Tasks {
		i := i
		add(func(c *Spec) bool {
			if len(c.Tasks) <= 1 {
				return false
			}
			c.Tasks = append(c.Tasks[:i], c.Tasks[i+1:]...)
			return true
		})
	}
	add(func(c *Spec) bool { // halve the horizon
		if c.Horizon <= 10 {
			return false
		}
		c.Horizon = math.Ceil(c.Horizon / 2)
		return true
	})
	add(func(c *Spec) bool { // kill execution-time jitter
		if c.BCWCRatio == 0 {
			return false
		}
		c.BCWCRatio = 0
		return true
	})
	add(func(c *Spec) bool { // kill fault injection
		if c.FaultIntensity == 0 {
			return false
		}
		c.FaultIntensity = 0
		return true
	})
	add(func(c *Spec) bool {
		if !c.ContinueAfterDeadline {
			return false
		}
		c.ContinueAfterDeadline = false
		return true
	})
	add(func(c *Spec) bool { // flatten the source to its mean
		if c.Source.Kind == "constant" {
			return false
		}
		mean := sourceMean(c.Source)
		if mean <= 0 {
			mean = 1
		}
		c.Source = SourceSpec{Kind: "constant", Power: mean}
		return true
	})
	add(func(c *Spec) bool { // simplest predictor
		if c.Predictor == "zero" {
			return false
		}
		c.Predictor = "zero"
		c.Alpha = 0
		return true
	})
	add(func(c *Spec) bool { // halve the capacity
		if c.Capacity < 1 {
			return false
		}
		c.Capacity = math.Floor(c.Capacity / 2)
		return true
	})
	add(func(c *Spec) bool { // full initial charge is the simplest state
		if c.InitialFrac == 1 {
			return false
		}
		c.InitialFrac = 1
		return true
	})
	return out
}

// SideBySide writes the two decision-audit logs next to each other,
// marking the first diverging record with ">>>". Matching prefixes are
// elided down to a few lines of context, so the dump stays readable even
// for long runs.
func SideBySide(w io.Writer, d *Divergence) {
	if d == nil {
		fmt.Fprintln(w, "no divergence")
		return
	}
	opt, ref := d.OptRec.Decisions(), d.RefRec.Decisions()
	first := firstDecisionDiff(opt, ref)
	fmt.Fprintf(w, "decision audits: optimized=%d reference=%d, first divergence at #%d\n",
		len(opt), len(ref), first)
	const context = 3
	lo := first - context
	if lo < 0 {
		lo = 0
	}
	hi := first + context + 1
	n := len(opt)
	if len(ref) > n {
		n = len(ref)
	}
	if hi > n {
		hi = n
	}
	if lo > 0 {
		fmt.Fprintf(w, "  … %d matching records elided …\n", lo)
	}
	for i := lo; i < hi; i++ {
		mark := "   "
		if i == first {
			mark = ">>>"
		}
		fmt.Fprintf(w, "%s #%d\n", mark, i)
		fmt.Fprintf(w, "    opt: %s\n", fmtDecision(opt, i))
		fmt.Fprintf(w, "    ref: %s\n", fmtDecision(ref, i))
	}
	if hi < n {
		fmt.Fprintf(w, "  … %d more records …\n", n-hi)
	}
	fmt.Fprintln(w, "field diffs:")
	for _, diff := range d.Diffs {
		fmt.Fprintf(w, "  %s\n", diff)
	}
}

// firstDecisionDiff returns the index of the first differing decision
// record, or the shorter length when one log is a prefix of the other, or
// len when the logs are identical (the divergence is elsewhere — events or
// Result).
func firstDecisionDiff(a, b []obs.DecisionRecord) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		var diffs []string
		bitDiff("d", reflect.ValueOf(a[i]), reflect.ValueOf(b[i]), &diffs)
		if len(diffs) > 0 {
			return i
		}
	}
	return n
}

func fmtDecision(recs []obs.DecisionRecord, i int) string {
	if i >= len(recs) {
		return "(missing)"
	}
	r := recs[i]
	return fmt.Sprintf("t=%.9g %s task=%d seq=%d stored=%.17g avail=%.17g s1=%.17g s2=%.17g level=%d until=%.9g reason=%s",
		r.Time, r.Policy, r.TaskID, r.Seq, r.Stored, r.Available, r.S1, r.S2, r.Level, r.Until, r.Reason)
}
