package core_test

import (
	"fmt"

	"github.com/eadvfs/eadvfs/internal/core"
	"github.com/eadvfs/eadvfs/internal/cpu"
)

// The paper's §4.3 worked example: 32 units of available energy, τ1 =
// (0, 16, 4) on the two-point processor with f_n = 0.25·f_max, P_n = 1,
// P_max = 8. The plan reproduces the paper's sr_n = 32, sr_max = 4,
// s1 = 0, s2 = 12.
func ExampleComputePlan() {
	plan := core.ComputePlan(cpu.Fig3(), 32, 0, 16, 4)
	fmt.Printf("level %d feasible %v\n", plan.Level, plan.Feasible)
	fmt.Printf("sr_n %.0f sr_max %.0f\n", plan.SRn, plan.SRmax)
	fmt.Printf("s1 %.0f s2 %.0f sufficient %v\n", plan.S1, plan.S2, plan.SufficientEnergy(0))
	// Output:
	// level 0 feasible true
	// sr_n 32 sr_max 4
	// s1 0 s2 12 sufficient false
}
