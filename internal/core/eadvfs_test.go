package core

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/eadvfs/eadvfs/internal/cpu"
	"github.com/eadvfs/eadvfs/internal/energy"
	"github.com/eadvfs/eadvfs/internal/sched"
	"github.com/eadvfs/eadvfs/internal/task"
)

func ctxWith(now, stored, harvestPower float64, proc *cpu.Processor, jobs ...*task.Job) *sched.Context {
	q := task.NewReadyQueue()
	for _, j := range jobs {
		q.Push(j)
	}
	return &sched.Context{
		Now:       now,
		Queue:     q,
		Stored:    stored,
		Capacity:  math.Inf(1),
		CPU:       proc,
		Predictor: energy.NewOracle(energy.NewConstant(harvestPower)),
	}
}

// The §4.3 worked example: EA = 32, Pmax = 8, τ1 = (0, 16, 4), fn = 0.25
// with Pn = 1. The paper computes sr_n = 32, sr_max = 4, s1 = 0, s2 = 12.
func TestComputePlanFig3Numbers(t *testing.T) {
	p := ComputePlan(cpu.Fig3(), 32, 0, 16, 4)
	if !p.Feasible || p.Level != 0 {
		t.Fatalf("plan level/feasible = %d/%v, want 0/true", p.Level, p.Feasible)
	}
	if p.SRn != 32 {
		t.Fatalf("sr_n = %v, want 32 (eq. 5)", p.SRn)
	}
	if p.SRmax != 4 {
		t.Fatalf("sr_max = %v, want 4 (eq. 9)", p.SRmax)
	}
	if p.S1 != 0 {
		t.Fatalf("s1 = %v, want 0 (eq. 7)", p.S1)
	}
	if p.S2 != 12 {
		t.Fatalf("s2 = %v, want 12 (eq. 8)", p.S2)
	}
	if p.SufficientEnergy(0) {
		t.Fatal("s1 != s2 must read as insufficient energy")
	}
}

// The §2 motivational example as EA-DVFS sees τ1: EC(0) = 24, Ps = 0.5,
// two-speed CPU with Pmax = 8. Available = 32; slow level (S = 1/2,
// P = 8/3) gives sr_n = 12, s1 = 4; sr_max = 4, s2 = 12.
func TestComputePlanMotivationalExample(t *testing.T) {
	p := ComputePlan(cpu.TwoSpeed(8), 32, 0, 16, 4)
	if p.Level != 0 || !p.Feasible {
		t.Fatalf("level = %d, want low speed", p.Level)
	}
	if math.Abs(p.SRn-12) > 1e-9 {
		t.Fatalf("sr_n = %v, want 12", p.SRn)
	}
	if math.Abs(p.S1-4) > 1e-9 {
		t.Fatalf("s1 = %v, want 4", p.S1)
	}
	if math.Abs(p.S2-12) > 1e-9 {
		t.Fatalf("s2 = %v, want 12", p.S2)
	}
}

func TestComputePlanSufficientEnergy(t *testing.T) {
	// Huge available energy: sr_max >= deadline-now → s1 = s2 = now.
	p := ComputePlan(cpu.XScale(), 1e9, 5, 25, 3)
	if !p.SufficientEnergy(5) {
		t.Fatal("ample energy not detected as sufficient")
	}
	if p.S1 != 5 || p.S2 != 5 {
		t.Fatalf("s1/s2 = %v/%v, want both clamped to now", p.S1, p.S2)
	}
}

// Infinite storage ⇒ sr_n = sr_max = ∞ ⇒ s1 = s2 = now: the paper's §4.3
// special case under which EA-DVFS is plain EDF.
func TestComputePlanInfiniteEnergy(t *testing.T) {
	p := ComputePlan(cpu.XScale(), math.Inf(1), 7, 30, 2)
	if !p.SufficientEnergy(7) {
		t.Fatal("infinite energy not sufficient")
	}
	if !math.IsInf(p.SRn, 1) || !math.IsInf(p.SRmax, 1) {
		t.Fatalf("sr_n/sr_max = %v/%v, want +Inf", p.SRn, p.SRmax)
	}
}

func TestComputePlanInfeasibleWindow(t *testing.T) {
	p := ComputePlan(cpu.XScale(), 100, 0, 3, 4)
	if p.Feasible {
		t.Fatal("w=4 in window 3 claimed feasible")
	}
	if p.Level != cpu.XScale().MaxLevel() {
		t.Fatal("infeasible plan must fall back to max level")
	}
}

func TestComputePlanNegativeAvailableClamped(t *testing.T) {
	p := ComputePlan(cpu.XScale(), -5, 0, 10, 1)
	if p.SRn != 0 || p.SRmax != 0 {
		t.Fatalf("negative available not clamped: %v/%v", p.SRn, p.SRmax)
	}
	if p.S1 != 10 || p.S2 != 10 {
		t.Fatalf("s1/s2 = %v/%v, want deadline", p.S1, p.S2)
	}
}

func TestComputePlanNegativeRemainingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative remaining did not panic")
		}
	}()
	ComputePlan(cpu.XScale(), 10, 0, 10, -1)
}

// Invariant from DESIGN.md §2.1: P_n <= P_max ⇒ sr_n >= sr_max ⇒ s1 <= s2,
// for any input state.
func TestS1NeverAfterS2Property(t *testing.T) {
	procs := []*cpu.Processor{cpu.XScale(), cpu.TwoSpeed(8), cpu.Fig3(), cpu.Cubic("c", 7, 1000, 3.2, 0.05)}
	f := func(availRaw, nowRaw, winRaw, remRaw uint16, procIdx uint8) bool {
		proc := procs[int(procIdx)%len(procs)]
		available := float64(availRaw) / 3
		now := float64(nowRaw%1000) / 7
		deadline := now + float64(winRaw%800)/7
		remaining := float64(remRaw%400) / 11
		p := ComputePlan(proc, available, now, deadline, remaining)
		if p.S1 > p.S2+1e-9 {
			return false
		}
		// Both start times are never before now and never after deadline
		// unless clamped to now.
		if p.S1 < now || p.S2 < now {
			return false
		}
		// Chosen level satisfies ineq. (6) whenever feasible.
		if p.Feasible && remaining > 0 && remaining/proc.Speed(p.Level) > deadline-now+1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestDecideSufficientEnergyRunsFullSpeed(t *testing.T) {
	j := task.NewJob(0, 0, 0, 16, 4)
	ctx := ctxWith(0, 1e6, 0, cpu.TwoSpeed(8), j)
	d := NewEADVFS().Decide(ctx)
	if d.Job != j || d.Level != ctx.CPU.MaxLevel() {
		t.Fatalf("decision = %+v, want full speed", d)
	}
}

// Figure 4 walkthrough on the §4.3 example at t=0: s1=0 < s2=12 → run at
// the slow level with a re-decision scheduled at s2.
func TestDecideStretchPhase(t *testing.T) {
	j := task.NewJob(0, 0, 0, 16, 4)
	ctx := ctxWith(0, 32, 0, cpu.Fig3(), j)
	d := NewEADVFS().Decide(ctx)
	if d.Job != j || d.Level != 0 {
		t.Fatalf("decision = %+v, want slow level", d)
	}
	if math.Abs(d.Until-12) > 1e-9 {
		t.Fatalf("re-decision at %v, want s2 = 12", d.Until)
	}
}

// Past s2 the job must run at full speed (Figure 4 line 10).
func TestDecideFullSpeedAfterS2(t *testing.T) {
	j := task.NewJob(0, 0, 0, 16, 4)
	j.Progress(3) // 12 units of time at the slow level already spent
	// At t=12 with 13 units available: sr_max = 13/8 > 16-12? No:
	// 1.625 < 4, so s2 = max(12, 16-1.625) = 14.375 > 12 → still stretch?
	// Use a state where now >= s2: available 32 → sr_max 4 → s2 = 12.
	ctx := ctxWith(12, 32, 0, cpu.Fig3(), j)
	d := NewEADVFS().Decide(ctx)
	if d.Job != j || d.Level != ctx.CPU.MaxLevel() {
		t.Fatalf("decision at s2 = %+v, want full speed", d)
	}
}

// Motivational example: at t=0 EA-DVFS idles until s1 = 4 (the slow level
// cannot sustain execution before that), then stretches.
func TestDecideWaitsForS1(t *testing.T) {
	j := task.NewJob(0, 0, 0, 16, 4)
	ctx := ctxWith(0, 24, 0.5, cpu.TwoSpeed(8), j)
	d := NewEADVFS().Decide(ctx)
	if d.Job != nil {
		t.Fatal("EA-DVFS ran before s1")
	}
	if math.Abs(d.Until-4) > 1e-9 {
		t.Fatalf("idle until %v, want s1 = 4", d.Until)
	}
}

func TestDecideInfeasibleRunsFlatOut(t *testing.T) {
	j := task.NewJob(0, 0, 0, 2, 4)
	ctx := ctxWith(0, 100, 0, cpu.XScale(), j)
	d := NewEADVFS().Decide(ctx)
	if d.Job != j || d.Level != ctx.CPU.MaxLevel() {
		t.Fatalf("infeasible decision = %+v", d)
	}
}

func TestDecideEmptyQueueIdles(t *testing.T) {
	ctx := ctxWith(0, 10, 1, cpu.XScale())
	d := NewEADVFS().Decide(ctx)
	if d.Job != nil || !math.IsInf(d.Until, 1) {
		t.Fatalf("empty-queue decision = %+v", d)
	}
}

// With infinite stored energy EA-DVFS must make exactly the same decision
// as plain EDF for any job state (§4.3) — checked pointwise here; the
// engine-level trace equivalence is asserted in internal/sim tests.
func TestInfiniteStorageEquivalentToEDFProperty(t *testing.T) {
	f := func(dRaw, wRaw, nowRaw uint16) bool {
		now := float64(nowRaw%500) / 7
		d := 1 + float64(dRaw%300)/7
		w := math.Min(float64(wRaw%200)/13, d)
		j := task.NewJob(0, 0, 0, now+d, w) // arrival 0, deadline beyond now
		ctxA := ctxWith(now, math.Inf(1), 0, cpu.XScale(), j)
		ctxB := ctxWith(now, math.Inf(1), 0, cpu.XScale(), j)
		da := NewEADVFS().Decide(ctxA)
		db := sched.EDF{}.Decide(ctxB)
		return da.Job == db.Job && da.Level == db.Level
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestName(t *testing.T) {
	if NewEADVFS().Name() != "ea-dvfs" {
		t.Fatal("policy name changed — reports reference it")
	}
}

// The s2 lock: once stretching starts, the switch-to-full-speed instant
// stays at the originally computed s2 even though the energy state keeps
// looking comfortable — this is what makes the paper's Figure 3 arithmetic
// ("finishes τ1 at 13") come out.
func TestS2LockedAcrossReevaluations(t *testing.T) {
	p := NewEADVFS()
	j := task.NewJob(0, 0, 0, 16, 4)

	// t=0: EA=32 → stretch at level 0, s2 locked at 12.
	d := p.Decide(ctxWith(0, 32, 0, cpu.Fig3(), j))
	if d.Level != 0 || math.Abs(d.Until-12) > 1e-9 {
		t.Fatalf("initial decision = %+v", d)
	}

	// t=12 after 12 units of slow progress: 20 stored, 1 work left. A
	// fresh plan would say s2 = 13.5 and keep stretching; the locked plan
	// must switch to full speed now.
	j.Progress(3)
	d = p.Decide(ctxWith(12, 20, 0, cpu.Fig3(), j))
	if d.Job != j || d.Level != cpu.Fig3().MaxLevel() {
		t.Fatalf("locked-s2 decision at 12 = %+v, want full speed", d)
	}
}

// The dynamic ablation variant keeps recomputing s2 and therefore keeps
// stretching in the same state — the drift the lock prevents.
func TestDynamicVariantKeepsStretching(t *testing.T) {
	p := NewDynamicEADVFS()
	j := task.NewJob(0, 0, 0, 16, 4)
	d := p.Decide(ctxWith(0, 32, 0, cpu.Fig3(), j))
	if d.Level != 0 {
		t.Fatalf("initial dynamic decision = %+v", d)
	}
	j.Progress(3)
	d = p.Decide(ctxWith(12, 20, 0, cpu.Fig3(), j))
	if d.Level != 0 {
		t.Fatalf("dynamic decision at 12 = %+v, want still stretching (s2 drifted to 13.5)", d)
	}
	if math.Abs(d.Until-13.5) > 1e-9 {
		t.Fatalf("dynamic Until = %v, want recomputed s2 = 13.5", d.Until)
	}
}

func TestDynamicName(t *testing.T) {
	if NewDynamicEADVFS().Name() != "ea-dvfs-dynamic" {
		t.Fatal("dynamic variant name changed")
	}
}

// An energy windfall while stretching releases the lock: with plentiful
// energy the paper's rule is full speed, whatever was promised.
func TestWindfallUnlocksToFullSpeed(t *testing.T) {
	p := NewEADVFS()
	j := task.NewJob(0, 0, 0, 16, 4)
	if d := p.Decide(ctxWith(0, 32, 0, cpu.Fig3(), j)); d.Level != 0 {
		t.Fatalf("setup decision = %+v", d)
	}
	j.Progress(1)
	d := p.Decide(ctxWith(4, 1e9, 0, cpu.Fig3(), j))
	if d.Level != cpu.Fig3().MaxLevel() {
		t.Fatalf("windfall decision = %+v, want full speed", d)
	}
}
