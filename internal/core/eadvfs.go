// Package core implements the paper's contribution: the energy aware
// dynamic voltage and frequency selection (EA-DVFS) algorithm of §4.
//
// At every scheduling decision the algorithm examines the earliest-deadline
// ready job and asks how long the system could keep running on the energy
// available in the job's window — at the chosen slow frequency (sr_n,
// eq. 5) and at full speed (sr_max, eq. 9). Those run times induce the
// latest feasible start times s1 (eq. 7) and s2 (eq. 8). When both collapse
// to "now", energy is plentiful and the job runs at full speed; otherwise
// the job is stretched at the minimum feasible frequency until s2 and only
// then forced to full speed, so that it cannot steal time from future jobs
// (§4.3, Figure 3).
package core

import (
	"math"

	"github.com/eadvfs/eadvfs/internal/cpu"
	"github.com/eadvfs/eadvfs/internal/obs"
	"github.com/eadvfs/eadvfs/internal/sched"
)

// Plan is the result of the EA-DVFS §4 computation for one job at one
// instant — eqs. (5)–(9) evaluated on the current state.
type Plan struct {
	// Available is EA = EC(now) + ÊS(now, deadline) — the energy the
	// system expects to dispose of inside the job's window.
	Available float64
	// Level is the minimum operating point satisfying ineq. (6):
	// remaining/S_n <= deadline - now.
	Level int
	// Feasible is false when even full speed cannot finish the remaining
	// work by the deadline; Level is then the maximum level.
	Feasible bool
	// SRn is sr_n = Available / P_n (eq. 5).
	SRn float64
	// SRmax is sr_max = Available / P_max (eq. 9).
	SRmax float64
	// S1 = max(now, deadline - sr_n) (eq. 7).
	S1 float64
	// S2 = max(now, deadline - sr_max) (eq. 8).
	S2 float64
}

// ComputePlan evaluates eqs. (5)–(9) for a job with the given remaining
// work (at f_max) and absolute deadline, using the energy available.
// The paper states them in terms of the release instant a_m; evaluating at
// the current instant with remaining work coincides at release and is the
// consistent generalization under preemption (DESIGN.md §2.1).
func ComputePlan(p *cpu.Processor, available, now, deadline, remaining float64) Plan {
	if remaining < 0 {
		panic("core: negative remaining work")
	}
	if available < 0 {
		// Predictors never return negative energy and stored energy is
		// non-negative, but guard the algebra anyway.
		available = 0
	}
	level, feasible := p.MinLevelFor(remaining, deadline-now)
	plan := Plan{
		Available: available,
		Level:     level,
		Feasible:  feasible,
		SRn:       available / p.Power(level),
		SRmax:     available / p.MaxPower(),
	}
	plan.S1 = math.Max(now, deadline-plan.SRn)
	plan.S2 = math.Max(now, deadline-plan.SRmax)
	return plan
}

// SufficientEnergy reports the paper's s1 = s2 test (§4.3 step 4a): both
// start times collapse to the evaluation instant, meaning the system can
// run flat-out from now to the deadline without exhausting the available
// energy — so no slow-down is warranted. The boundary tolerance is the
// shared sched.TimeEps, so every policy in the repository ties exactly the
// same way.
func (pl Plan) SufficientEnergy(now float64) bool {
	return sched.Reached(now, pl.S1) && sched.Reached(now, pl.S2)
}

// EADVFS is the paper's algorithm as a scheduling policy (Figure 4).
//
// The s2 instant of a job is *locked* the first time the job starts
// stretched execution. The paper computes s1/s2 from the release instant
// (eqs. 7–8 use a_m) and its §4.3 walkthrough depends on the switch
// happening at that original s2: recomputing s2 from the current energy
// state while already stretching pushes s2 later every time (stretching
// preserves energy, so "run flat-out until the deadline" keeps looking
// affordable), and the job ends up stretched to completion — exactly the
// greedy pathology Figure 3 exists to rule out. Locking reproduces the
// paper's "finishes τ1 at 13" arithmetic; the Dynamic variant below keeps
// the fully stateless recomputation as an ablation.
type EADVFS struct {
	// Dynamic recomputes s2 at every decision instead of locking it at
	// stretch start. Only for the ablation study; see above.
	Dynamic bool
}

// The lock itself lives on the job (task.Job.LockS2 and friends): a job
// belongs to exactly one run, so a job-resident slot replaces the former
// map[*task.Job]float64 and keeps the decision path allocation-free.

// NewEADVFS returns the paper's EA-DVFS policy (locked s2).
func NewEADVFS() *EADVFS {
	return &EADVFS{}
}

// NewDynamicEADVFS returns the stateless-recompute ablation variant.
func NewDynamicEADVFS() *EADVFS {
	return &EADVFS{Dynamic: true}
}

// Name implements sched.Policy.
func (p *EADVFS) Name() string {
	if p.Dynamic {
		return "ea-dvfs-dynamic"
	}
	return "ea-dvfs"
}

// Decide implements sched.Policy, following Figure 4:
//
//	line 3:  pick the earliest-deadline ready job
//	line 4:  compute s1 and s2
//	line 5:  s1 = s2        → run at maximum frequency
//	line 8:  s1 < s2        → run at f_n (power P_n) ...
//	line 10: ... and at maximum frequency from s2 onward
//
// plus the implicit "do not start before s1": starting earlier than s1
// would begin draining the store before the last feasible moment; delaying
// to s1 lets the store recharge, which is what makes both LSA and EA-DVFS
// "lazy". Before s1 the processor idles.
func (p *EADVFS) Decide(ctx *sched.Context) sched.Decision {
	j := ctx.Queue.Peek()
	if j == nil {
		ctx.AuditJob(p.Name(), nil, 0, 0, 0, -1, math.Inf(1), obs.ReasonIdleNoJob)
		return sched.Idle(math.Inf(1))
	}
	plan := ComputePlan(ctx.CPU, ctx.AvailableEnergy(j.Abs), ctx.Now, j.Abs, j.Remaining())

	if !plan.Feasible {
		// Even f_max cannot meet the deadline; run flat-out and let the
		// engine account the miss — the paper's model never drops work
		// before its deadline passes.
		ctx.AuditJob(p.Name(), j, plan.Available, plan.S1, plan.S2,
			ctx.CPU.MaxLevel(), math.Inf(1), obs.ReasonFullSpeedInfeasible)
		return sched.Run(j, ctx.CPU.MaxLevel(), math.Inf(1))
	}
	if plan.SufficientEnergy(ctx.Now) {
		// Figure 4 line 5: sufficient energy → maximum frequency. A
		// pending lock is obsolete: running at full speed can only help
		// future tasks.
		j.ClearS2Lock()
		ctx.AuditJob(p.Name(), j, plan.Available, plan.S1, plan.S2,
			ctx.CPU.MaxLevel(), math.Inf(1), obs.ReasonFullSpeedEnergyRich)
		return sched.Run(j, ctx.CPU.MaxLevel(), math.Inf(1))
	}

	s2 := plan.S2
	if !p.Dynamic {
		if locked, ok := j.S2Lock(); ok {
			s2 = locked
		}
	}
	if sched.Reached(ctx.Now, s2) {
		// Figure 4 line 10: past s2 the job must run at full speed so it
		// does not steal time from future tasks (§4.3).
		ctx.AuditJob(p.Name(), j, plan.Available, plan.S1, s2,
			ctx.CPU.MaxLevel(), math.Inf(1), obs.ReasonFullSpeedEnergyPoor)
		return sched.Run(j, ctx.CPU.MaxLevel(), math.Inf(1))
	}
	if !sched.Reached(ctx.Now, plan.S1) {
		// Energy-infeasible to start yet even at the slow level: idle and
		// recharge until s1 (re-evaluated on every event in between).
		ctx.AuditJob(p.Name(), j, plan.Available, plan.S1, s2,
			-1, plan.S1, obs.ReasonIdleRecharge)
		return sched.Idle(plan.S1)
	}
	// Figure 4 line 8: stretched execution at the minimum feasible
	// frequency on [s1, s2). Lock s2 on first stretch (see type comment).
	if !p.Dynamic {
		if _, ok := j.S2Lock(); !ok {
			j.LockS2(s2)
		}
	}
	ctx.AuditJob(p.Name(), j, plan.Available, plan.S1, s2,
		plan.Level, s2, obs.ReasonStretchSlackRich)
	return sched.Run(j, plan.Level, s2)
}
