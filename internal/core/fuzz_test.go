package core

import (
	"math"
	"testing"

	"github.com/eadvfs/eadvfs/internal/cpu"
)

// FuzzComputePlan checks the EA-DVFS planning invariants (s1 <= s2, both
// within [now, deadline], ineq. 6 on the chosen level) over fuzzer-chosen
// states and processors. Runs its seed corpus under `go test`.
func FuzzComputePlan(f *testing.F) {
	f.Add(uint16(32), uint16(0), uint16(160), uint16(40), byte(2))
	f.Add(uint16(0), uint16(100), uint16(1), uint16(1), byte(0))
	f.Add(uint16(65535), uint16(7), uint16(50), uint16(400), byte(1))
	procs := []*cpu.Processor{
		cpu.XScale(), cpu.TwoSpeed(8), cpu.Fig3(), cpu.Cubic("c", 9, 1000, 12, 0.1),
	}
	f.Fuzz(func(t *testing.T, availRaw, nowRaw, winRaw, remRaw uint16, procIdx byte) {
		proc := procs[int(procIdx)%len(procs)]
		available := float64(availRaw) / 10
		now := float64(nowRaw) / 10
		deadline := now + float64(winRaw)/10
		remaining := float64(remRaw) / 10

		plan := ComputePlan(proc, available, now, deadline, remaining)

		if plan.S1 > plan.S2+1e-9 {
			t.Fatalf("s1 %v > s2 %v", plan.S1, plan.S2)
		}
		if plan.S1 < now-1e-9 || plan.S2 < now-1e-9 {
			t.Fatalf("start before now: s1 %v s2 %v now %v", plan.S1, plan.S2, now)
		}
		if plan.Feasible && remaining > 0 {
			if remaining/proc.Speed(plan.Level) > deadline-now+1e-9 {
				t.Fatalf("chosen level %d violates ineq. 6", plan.Level)
			}
			if plan.Level > 0 && remaining/proc.Speed(plan.Level-1) <= deadline-now {
				t.Fatalf("level %d not minimal", plan.Level)
			}
		}
		if math.IsNaN(plan.SRn) || math.IsNaN(plan.SRmax) {
			t.Fatal("NaN run times")
		}
		// Sufficiency is monotone in energy: adding energy to a
		// sufficient state must stay sufficient.
		if plan.SufficientEnergy(now) {
			richer := ComputePlan(proc, available*2+1, now, deadline, remaining)
			if !richer.SufficientEnergy(now) {
				t.Fatal("sufficiency not monotone in available energy")
			}
		}
	})
}
