package offline_test

import (
	"fmt"
	"math"

	"github.com/eadvfs/eadvfs/internal/cpu"
	"github.com/eadvfs/eadvfs/internal/offline"
)

// Plan one 100-unit frame of three tasks on the XScale processor with a
// constant 1.2-power recharge: the planner stretches everything onto the
// two slowest operating points, exactly filling the frame.
func ExampleSolve() {
	plan, err := offline.Solve(cpu.XScaleScaled(10), offline.FrameSpec{
		Frame:         100,
		WCETs:         []float64{6, 10, 14},
		RechargePower: 1.2,
		InitialEnergy: 60,
		Capacity:      math.Inf(1),
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("levels %d->%d busy %.0f energy %.0f\n",
		plan.SlowLevel, plan.FastLevel, plan.BusyTime(), plan.Energy)
	// Output: levels 0->1 busy 100 energy 85
}
