package offline

import (
	"math"
	"strings"
	"testing"

	"github.com/eadvfs/eadvfs/internal/cpu"
)

// TestSolveInfeasibleTable pins every failure path of Solve — and the
// feasible boundary cases right next to them — in one table. Each entry
// states which error text (if any) the caller may rely on; these strings
// are load-bearing for CLI users, so changing them should fail here.
func TestSolveInfeasibleTable(t *testing.T) {
	two := cpu.TwoSpeed(4) // speeds {0.5, 1}, powers {0.5·4^(1/3)... }: only the speeds matter below
	cases := []struct {
		name    string
		proc    *cpu.Processor
		spec    FrameSpec
		wantErr string // "" means the plan must succeed
	}{
		{
			name: "time infeasible: work exceeds frame at f_max",
			proc: two,
			spec: FrameSpec{
				Frame: 10, WCETs: []float64{6, 5},
				RechargePower: 100, InitialEnergy: 100, Capacity: math.Inf(1),
			},
			wantErr: "cannot fit a frame",
		},
		{
			name: "time feasible exactly at the boundary: work == frame at f_max",
			proc: two,
			spec: FrameSpec{
				Frame: 10, WCETs: []float64{6, 4},
				RechargePower: 100, InitialEnergy: 100, Capacity: math.Inf(1),
			},
		},
		{
			name: "energy infeasible: battery runs dry mid-frame",
			proc: two,
			spec: FrameSpec{
				Frame: 10, WCETs: []float64{9},
				RechargePower: 0, InitialEnergy: 0.01, Capacity: math.Inf(1),
			},
			wantErr: "no energy-feasible plan",
		},
		{
			name: "energy infeasible: zero recharge and zero stored",
			proc: cpu.XScale(),
			spec: FrameSpec{
				Frame: 100, WCETs: []float64{1},
				RechargePower: 0, InitialEnergy: 0, Capacity: 10,
			},
			wantErr: "no energy-feasible plan",
		},
		{
			name: "energy feasible on stored charge alone",
			proc: two,
			spec: FrameSpec{
				Frame: 10, WCETs: []float64{2},
				RechargePower: 0, InitialEnergy: 50, Capacity: 50,
			},
		},
		{
			name: "validation: empty task set",
			proc: two,
			spec: FrameSpec{
				Frame: 10, RechargePower: 1, InitialEnergy: 1, Capacity: 10,
			},
			wantErr: "no tasks",
		},
		{
			name: "validation: non-positive frame",
			proc: two,
			spec: FrameSpec{
				Frame: 0, WCETs: []float64{1},
				RechargePower: 1, InitialEnergy: 1, Capacity: 10,
			},
			wantErr: "invalid frame",
		},
		{
			name: "validation: negative recharge power",
			proc: two,
			spec: FrameSpec{
				Frame: 10, WCETs: []float64{1},
				RechargePower: -1, InitialEnergy: 1, Capacity: 10,
			},
			wantErr: "invalid recharge power",
		},
		{
			name: "validation: capacity below initial charge",
			proc: two,
			spec: FrameSpec{
				Frame: 10, WCETs: []float64{1},
				RechargePower: 1, InitialEnergy: 20, Capacity: 10,
			},
			wantErr: "capacity",
		},
		{
			name: "validation: zero wcet",
			proc: two,
			spec: FrameSpec{
				Frame: 10, WCETs: []float64{1, 0},
				RechargePower: 1, InitialEnergy: 1, Capacity: 10,
			},
			wantErr: "invalid wcet",
		},
		{
			name: "nil processor",
			spec: FrameSpec{
				Frame: 10, WCETs: []float64{1},
				RechargePower: 1, InitialEnergy: 1, Capacity: 10,
			},
			wantErr: "nil processor",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			plan, err := Solve(tc.proc, tc.spec)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("want feasible plan, got error: %v", err)
				}
				// A returned plan must actually fit the frame and leave a
				// non-negative battery — the two things Solve promises.
				if plan.BusyTime() > tc.spec.Frame+1e-9 {
					t.Fatalf("plan busy time %v exceeds frame %v", plan.BusyTime(), tc.spec.Frame)
				}
				if plan.EndEnergy < -1e-9 {
					t.Fatalf("plan ends with negative energy %v", plan.EndEnergy)
				}
				return
			}
			if err == nil {
				t.Fatalf("want error containing %q, got plan %+v", tc.wantErr, plan)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}
