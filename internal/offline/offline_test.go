package offline

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/eadvfs/eadvfs/internal/cpu"
)

func spec(frame float64, wcets []float64, pr, e0, cap float64) FrameSpec {
	return FrameSpec{Frame: frame, WCETs: wcets, RechargePower: pr, InitialEnergy: e0, Capacity: cap}
}

func TestValidate(t *testing.T) {
	good := spec(100, []float64{5, 10}, 1, 50, 200)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bads := []FrameSpec{
		spec(0, []float64{5}, 1, 0, 10),
		spec(100, nil, 1, 0, 10),
		spec(100, []float64{0}, 1, 0, 10),
		spec(100, []float64{5}, -1, 0, 10),
		spec(100, []float64{5}, 1, -1, 10),
		spec(100, []float64{5}, 1, 50, 10), // capacity < initial
	}
	for i, b := range bads {
		if b.Validate() == nil {
			t.Fatalf("bad spec %d accepted", i)
		}
	}
}

func TestSolveSingleLevelFits(t *testing.T) {
	// Work 10 in frame 100 on XScale: slowest level (S=0.15) takes 66.7
	// and fits; plenty of recharge.
	p, err := Solve(cpu.XScale(), spec(100, []float64{4, 6}, 1, 100, math.Inf(1)))
	if err != nil {
		t.Fatal(err)
	}
	if p.SlowLevel != 0 || p.FastLevel != 0 {
		t.Fatalf("plan uses levels %d/%d, want the slowest", p.SlowLevel, p.FastLevel)
	}
	if math.Abs(p.BusyTime()-10/0.15) > 1e-9 {
		t.Fatalf("busy = %v", p.BusyTime())
	}
	if math.Abs(p.Start-(100-10/0.15)) > 1e-9 {
		t.Fatalf("lazy start = %v", p.Start)
	}
	if math.Abs(p.Energy-0.08*10/0.15) > 1e-9 {
		t.Fatalf("energy = %v", p.Energy)
	}
}

func TestSolveTwoPointSplitExactlyFillsFrame(t *testing.T) {
	// Work 30 in frame 100: slowest (S=0.15) needs 200 — too slow; a
	// split between levels 0 and 1 (S=0.4) can exactly fill 100.
	p, err := Solve(cpu.XScale(), spec(100, []float64{30}, 5, 100, math.Inf(1)))
	if err != nil {
		t.Fatal(err)
	}
	if p.SlowLevel != 0 || p.FastLevel != 1 {
		t.Fatalf("levels %d/%d, want 0/1", p.SlowLevel, p.FastLevel)
	}
	if math.Abs(p.BusyTime()-100) > 1e-9 {
		t.Fatalf("split does not fill the frame: busy %v", p.BusyTime())
	}
	// Work conservation.
	wBack := p.SlowTime*0.15 + p.FastTime*0.4
	if math.Abs(wBack-30) > 1e-9 {
		t.Fatalf("work conservation broken: %v", wBack)
	}
	if p.Start > 1e-9 {
		t.Fatalf("full-frame plan must start at 0, got %v", p.Start)
	}
}

func TestSolveEnergyInfeasible(t *testing.T) {
	// No recharge, no stored energy: nothing can run.
	if _, err := Solve(cpu.XScale(), spec(100, []float64{10}, 0, 0, 0)); err == nil {
		t.Fatal("energy-infeasible spec produced a plan")
	}
}

func TestSolveTimeInfeasible(t *testing.T) {
	if _, err := Solve(cpu.XScale(), spec(10, []float64{20}, 100, 1000, math.Inf(1))); err == nil {
		t.Fatal("time-infeasible spec produced a plan")
	}
}

func TestSolvePicksFasterLevelWhenEnergyRequires(t *testing.T) {
	// Tight energy with small battery: laziness + capacity clamp can make
	// slower-but-longer plans fail while a faster level that drains for a
	// shorter window succeeds. Construct: recharge 0.5, battery 4,
	// initial 4, frame 40, work 4 on XScale.
	// Level 0: busy 26.7, draw (0.08-0.5)<0 → always charges: feasible!
	// So use a hungrier processor to force escalation: TwoSpeed(8).
	// Low speed: busy 8, power 8/3, draw (8/3-0.5)*8 = 17.3 > available
	// 4 + 0.5*32(clamped to 4)=4 → infeasible at low; high speed: busy 4,
	// draw (8-0.5)*4 = 30 > 4 → also infeasible.
	_, err := Solve(cpu.TwoSpeed(8), spec(40, []float64{4}, 0.5, 4, 4))
	if err == nil {
		t.Fatal("expected infeasible under tiny battery")
	}
	// With a large enough battery the slow level works.
	p, err := Solve(cpu.TwoSpeed(8), spec(40, []float64{4}, 0.5, 18, 18))
	if err != nil {
		t.Fatal(err)
	}
	if p.SlowLevel != 0 {
		t.Fatalf("level %d, want 0", p.SlowLevel)
	}
}

func TestEndEnergyAccounting(t *testing.T) {
	// Closed-form check: frame 100, work 10 at level 0 (busy 66.7,
	// P=0.08), recharge 0.2, initial 10, infinite capacity.
	p, err := Solve(cpu.XScale(), spec(100, []float64{10}, 0.2, 10, math.Inf(1)))
	if err != nil {
		t.Fatal(err)
	}
	want := 10 + 0.2*100 - p.Energy
	if math.Abs(p.EndEnergy-want) > 1e-9 {
		t.Fatalf("end energy = %v, want %v", p.EndEnergy, want)
	}
	if p.PeakDraw < 0 {
		t.Fatalf("peak draw = %v", p.PeakDraw)
	}
}

func TestCapacityClampLosesOverflow(t *testing.T) {
	// Tiny capacity: energy harvested while waiting overflows, so the
	// end energy is below the unbounded-capacity value.
	unbounded, err := Solve(cpu.XScale(), spec(100, []float64{10}, 1, 5, math.Inf(1)))
	if err != nil {
		t.Fatal(err)
	}
	clamped, err := Solve(cpu.XScale(), spec(100, []float64{10}, 1, 5, 6))
	if err != nil {
		t.Fatal(err)
	}
	if clamped.EndEnergy >= unbounded.EndEnergy {
		t.Fatalf("capacity clamp lost nothing: %v vs %v", clamped.EndEnergy, unbounded.EndEnergy)
	}
}

// Property: any returned plan conserves work, fits the frame, never uses
// more energy than a one-level-faster plan would, and its battery
// trajectory stays non-negative.
func TestSolveInvariantsProperty(t *testing.T) {
	proc := cpu.XScale()
	f := func(wRaw, prRaw, e0Raw uint16, nTasks uint8) bool {
		n := 1 + int(nTasks%5)
		var wcets []float64
		total := 0.0
		for i := 0; i < n; i++ {
			w := 0.5 + float64((int(wRaw)+i*37)%100)/10
			wcets = append(wcets, w)
			total += w
		}
		frame := total + 1 + float64(wRaw%200)
		pr := float64(prRaw%80) / 10
		e0 := float64(e0Raw % 500)
		sp := spec(frame, wcets, pr, e0, math.Inf(1))
		p, err := Solve(proc, sp)
		if err != nil {
			return true // infeasibility is a legal outcome
		}
		// Work conservation.
		w := p.SlowTime*proc.Speed(p.SlowLevel) + p.FastTime*proc.Speed(p.FastLevel)
		if math.Abs(w-total) > 1e-6 {
			return false
		}
		// Frame fit.
		if p.BusyTime() > frame+1e-6 || p.Start < -1e-9 {
			return false
		}
		// Energy accounting closes.
		if math.Abs(p.EndEnergy-(e0+pr*frame-p.Energy)) > 1e-6 {
			return false
		}
		return p.EndEnergy >= -1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestContinuousLowerBound(t *testing.T) {
	proc := cpu.XScale()
	sp := spec(100, []float64{30}, 5, 100, math.Inf(1))
	lb, err := ContinuousLowerBound(proc, sp)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Solve(proc, sp)
	if err != nil {
		t.Fatal(err)
	}
	// The two-point split is exactly the discrete-optimal energy; the
	// interpolated bound equals it when the split fills the frame.
	if p.Energy < lb-1e-6 {
		t.Fatalf("plan energy %v beats the lower bound %v", p.Energy, lb)
	}
	if math.Abs(p.Energy-lb) > 1e-6 {
		t.Fatalf("exact-fill split should meet the bound: %v vs %v", p.Energy, lb)
	}
	// Below the slowest speed the bound is the slowest point.
	slow := spec(1000, []float64{10}, 5, 100, math.Inf(1))
	lb, err = ContinuousLowerBound(proc, slow)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lb-proc.ExecEnergy(10, 0)) > 1e-9 {
		t.Fatalf("sub-slowest bound = %v", lb)
	}
	// Infeasible.
	if _, err := ContinuousLowerBound(proc, spec(5, []float64{10}, 1, 1, math.Inf(1))); err == nil {
		t.Fatal("infeasible bound accepted")
	}
}

func TestSolveNilProcessor(t *testing.T) {
	if _, err := Solve(nil, spec(10, []float64{1}, 1, 1, 10)); err == nil {
		t.Fatal("nil processor accepted")
	}
}
