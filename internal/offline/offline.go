// Package offline implements a frame-based offline DVFS scheduler in the
// spirit of Allavena & Mossé [4] — the prior art the paper contrasts
// EA-DVFS against. A set of independent tasks must each run once per
// frame; the harvested power is assumed *constant* (the very assumption
// the paper calls "unpractical", §1); the planner picks slowdowns offline
// so that the frame is met and the battery never runs dry.
//
// The planner uses the classic two-speed result for discrete DVFS
// (Ishihara & Yasuura): the minimum-energy discrete schedule that exactly
// fills the available time uses at most the two operating points adjacent
// to the ideal continuous speed. Execution is placed as late as possible
// in the frame (run the slow portion first, then the fast portion), so
// the battery charges before it drains — the same laziness that LSA and
// EA-DVFS apply online.
package offline

import (
	"errors"
	"fmt"
	"math"

	"github.com/eadvfs/eadvfs/internal/cpu"
)

// FrameSpec describes one planning problem.
type FrameSpec struct {
	// Frame is the common period/deadline F shared by all tasks.
	Frame float64
	// WCETs are the tasks' worst-case execution times at f_max; each
	// task runs once per frame.
	WCETs []float64
	// RechargePower is the constant harvested power P_r.
	RechargePower float64
	// InitialEnergy is the battery level at the frame start.
	InitialEnergy float64
	// Capacity is the battery capacity (math.Inf(1) for unbounded).
	Capacity float64
}

// Validate checks the spec.
func (s FrameSpec) Validate() error {
	switch {
	case s.Frame <= 0 || math.IsNaN(s.Frame) || math.IsInf(s.Frame, 0):
		return fmt.Errorf("offline: invalid frame %v", s.Frame)
	case len(s.WCETs) == 0:
		return errors.New("offline: no tasks")
	case s.RechargePower < 0 || math.IsNaN(s.RechargePower):
		return fmt.Errorf("offline: invalid recharge power %v", s.RechargePower)
	case s.InitialEnergy < 0 || math.IsNaN(s.InitialEnergy):
		return fmt.Errorf("offline: invalid initial energy %v", s.InitialEnergy)
	case s.Capacity < s.InitialEnergy:
		return fmt.Errorf("offline: capacity %v below initial energy %v", s.Capacity, s.InitialEnergy)
	}
	for i, w := range s.WCETs {
		if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return fmt.Errorf("offline: invalid wcet %v for task %d", w, i)
		}
	}
	return nil
}

// TotalWork returns Σ w_i.
func (s FrameSpec) TotalWork() float64 {
	sum := 0.0
	for _, w := range s.WCETs {
		sum += w
	}
	return sum
}

// Plan is an offline schedule for one frame: run SlowTime at SlowLevel,
// then FastTime at FastLevel, starting at Start and ending exactly at the
// frame boundary. SlowLevel == FastLevel when a single point suffices.
type Plan struct {
	SlowLevel int
	FastLevel int
	SlowTime  float64 // wall-clock time at SlowLevel
	FastTime  float64 // wall-clock time at FastLevel

	Start     float64 // latest feasible start of execution in the frame
	Energy    float64 // processor energy consumed over the frame
	EndEnergy float64 // battery level at the frame end
	PeakDraw  float64 // largest battery drawdown during execution
}

// BusyTime returns the total execution wall-clock time.
func (p Plan) BusyTime() float64 { return p.SlowTime + p.FastTime }

// Solve computes the minimum-energy feasible plan for the spec on the
// given processor, or an error when no discrete plan is time- and
// energy-feasible.
func Solve(proc *cpu.Processor, spec FrameSpec) (Plan, error) {
	if proc == nil {
		return Plan{}, errors.New("offline: nil processor")
	}
	if err := spec.Validate(); err != nil {
		return Plan{}, err
	}
	work := spec.TotalWork()

	// Time feasibility at full speed is the outer bound.
	if work/proc.Speed(proc.MaxLevel()) > spec.Frame+1e-12 {
		return Plan{}, fmt.Errorf("offline: %v work cannot fit a frame of %v even at f_max", work, spec.Frame)
	}

	// Candidate plans, slowest (and therefore cheapest) first: for each
	// level n, either all work at n (if it fits the frame), or the
	// two-point split between n and n+1 that exactly fills the frame.
	for n := 0; n < proc.Levels(); n++ {
		tAll := work / proc.Speed(n)
		var cand Plan
		switch {
		case tAll <= spec.Frame+1e-12:
			cand = Plan{SlowLevel: n, FastLevel: n, SlowTime: tAll}
		case n+1 < proc.Levels():
			// Split work between n (slow) and n+1 (fast) to exactly
			// fill the frame: solve
			//   wS/S_n + wF/S_{n+1} = F,  wS + wF = work.
			sn, sf := proc.Speed(n), proc.Speed(n+1)
			wFast := (work/sn - spec.Frame) * sf * sn / (sf - sn)
			wSlow := work - wFast
			if wFast < -1e-9 || wSlow < -1e-9 {
				continue
			}
			if wFast/sf > spec.Frame {
				continue // even the fast portion alone overflows: try higher n
			}
			cand = Plan{
				SlowLevel: n, FastLevel: n + 1,
				SlowTime: wSlow / sn, FastTime: wFast / sf,
			}
		default:
			continue
		}
		finished := finalize(proc, spec, &cand)
		if finished {
			return cand, nil
		}
		// Energy-infeasible at this slowdown. A *higher* level finishes
		// faster but burns strictly more energy per work unit, so it
		// cannot become feasible either — unless laziness interacts with
		// the capacity clamp; keep scanning for robustness.
	}
	return Plan{}, errors.New("offline: no energy-feasible plan — the recharge power cannot sustain the frame")
}

// finalize computes the lazy start, the energy accounting and the battery
// trajectory of a candidate; it reports energy feasibility.
func finalize(proc *cpu.Processor, spec FrameSpec, p *Plan) bool {
	busy := p.BusyTime()
	p.Start = spec.Frame - busy

	pSlow := proc.Power(p.SlowLevel)
	pFast := proc.Power(p.FastLevel)
	p.Energy = pSlow*p.SlowTime + pFast*p.FastTime

	// Battery trajectory with the slow phase first (slow draw before
	// fast draw keeps the minimum level as high as possible).
	level := math.Min(spec.Capacity, spec.InitialEnergy+spec.RechargePower*p.Start)
	startLevel := level
	// Slow phase.
	level += (spec.RechargePower - pSlow) * p.SlowTime
	if level > spec.Capacity {
		level = spec.Capacity
	}
	minLevel := math.Min(startLevel, level)
	// Fast phase.
	level += (spec.RechargePower - pFast) * p.FastTime
	if level > spec.Capacity {
		level = spec.Capacity
	}
	minLevel = math.Min(minLevel, level)

	p.EndEnergy = level
	p.PeakDraw = startLevel - minLevel
	// Within each phase the level is monotone, so phase-boundary minima
	// are the trajectory minima.
	return minLevel >= -1e-9
}

// ContinuousLowerBound returns the energy of the ideal continuous-speed
// schedule (speed = work/F exactly, power interpolated cubically between
// the bracketing discrete points' energy efficiency). It lower-bounds any
// discrete plan and is used by the benches to report how close the
// two-point plan gets.
func ContinuousLowerBound(proc *cpu.Processor, spec FrameSpec) (float64, error) {
	if err := spec.Validate(); err != nil {
		return 0, err
	}
	work := spec.TotalWork()
	sIdeal := work / spec.Frame
	if sIdeal > proc.Speed(proc.MaxLevel()) {
		return 0, errors.New("offline: infeasible even continuously")
	}
	// Below the slowest point the bound is the slowest point stretched.
	if sIdeal <= proc.Speed(0) {
		return proc.ExecEnergy(work, 0), nil
	}
	for n := 0; n+1 < proc.Levels(); n++ {
		lo, hi := proc.Speed(n), proc.Speed(n+1)
		if sIdeal > hi {
			continue
		}
		// The exact-fill two-point schedule spends time fraction x at
		// the faster point, where the time-average speed equals sIdeal:
		// (1-x)·S_n + x·S_{n+1} = sIdeal. Its energy is the same
		// time-weighted average of the powers over the whole frame —
		// the tight bound for discrete DVFS (Ishihara–Yasuura).
		x := (sIdeal - lo) / (hi - lo)
		power := (1-x)*proc.Power(n) + x*proc.Power(n+1)
		return power * spec.Frame, nil
	}
	return proc.ExecEnergy(work, proc.MaxLevel()), nil
}
