package spec

import (
	"bytes"
	"testing"
)

// FuzzMigrateSpec drives arbitrary bytes through the version/migrate
// pipeline. Invariants, regardless of input:
//
//   - nothing panics;
//   - Version and Migrate agree on acceptance (both succeed or both
//     fail);
//   - a successful Migrate yields a document that (a) declares the
//     current version, (b) is idempotent under a second Migrate, and
//     (c) keeps the digest form byte-identical to the input's —
//     migration must NEVER silently change what a cache key hashes.
//
// The committed seed corpus (testdata/fuzz/FuzzMigrateSpec/) covers
// malformed versions, unknown fields, duplicate keys and mixed v1/v2
// member sets so `go test` exercises the interesting branches even
// without -fuzz.
func FuzzMigrateSpec(f *testing.F) {
	seeds := []string{
		`{}`,
		`{"Policy":"ea-dvfs","Capacity":500}`,
		`{"schema":1,"Policy":"edf"}`,
		`{"schema":2,"policy_params":{"utilization":0.5}}`,
		`{"schema":2,"task_model":"periodic","task_params":{"periods":[10,20]}}`,
		`{"policy_params":{}}`,                    // v2 key without declaration
		`{"schema":1,"task_model":"periodic"}`,    // v2 key in explicit v1
		`{"schema":3}`,                            // future version
		`{"schema":0}`,                            // below range
		`{"schema":-9}`,                           // negative
		`{"schema":1.5}`,                          // fractional
		`{"schema":"2"}`,                          // string version
		`{"schema":null}`,                         // null version
		`{"schema":2,"schema":2}`,                 // duplicate declaration
		`{"Policy":"x","Policy":"y"}`,             // duplicate ordinary key
		`{"UnknownField":{"deep":[1,{"k":2}]}}`,   // unknown nested structure
		`[{"schema":2}]`,                          // array, not object
		`"schema"`,                                // bare string
		`{"Policy":`,                              // truncated
		`{"schema":2}{"schema":2}`,                // trailing document
		"{\"schema\":\n 2 ,\n \"Horizon\": 1200}", // whitespace layout
		`{"schema":9223372036854775807}`,          // int64 max
		`{"schema":18446744073709551615}`,         // uint64 max (overflows int64)
		`{"Utilization":0.6,"HarvestTrace":[1e308,-0,0.1]}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, raw []byte) {
		vErr := func() error { _, err := Version(raw); return err }()
		migrated, mErr := Migrate(raw)
		if (vErr == nil) != (mErr == nil) {
			t.Fatalf("Version err %v but Migrate err %v for %q", vErr, mErr, raw)
		}
		if mErr != nil {
			return
		}
		v, err := Version(migrated)
		if err != nil {
			t.Fatalf("migrated document rejected: %v (from %q to %q)", err, raw, migrated)
		}
		if v != Current {
			t.Fatalf("migrated version = %d, want %d", v, Current)
		}
		again, err := Migrate(migrated)
		if err != nil {
			t.Fatalf("re-migration failed: %v", err)
		}
		if !bytes.Equal(again, migrated) {
			t.Fatalf("Migrate not idempotent: %q then %q", migrated, again)
		}
		d1, err := Digest(raw)
		if err != nil {
			t.Fatalf("Digest(original) failed after successful Migrate: %v", err)
		}
		d2, err := Digest(migrated)
		if err != nil {
			t.Fatalf("Digest(migrated) failed: %v", err)
		}
		if d1 != d2 {
			t.Fatalf("migration changed the digest of %q: %s != %s", raw, d1, d2)
		}
	})
}
