package spec

import (
	"strings"
	"testing"
)

func TestVersion(t *testing.T) {
	cases := []struct {
		name    string
		doc     string
		want    int
		errPart string // substring expected in the error, "" for success
	}{
		{"unversioned is v1", `{"Policy":"edf"}`, 1, ""},
		{"explicit v1", `{"schema":1,"Policy":"edf"}`, 1, ""},
		{"explicit v2", `{"schema":2,"policy_params":{"utilization":0.5}}`, 2, ""},
		{"empty object", `{}`, 1, ""},
		{"whitespace tolerated", " {\n\t\"schema\": 2 } ", 2, ""},
		{"not an object", `[1,2]`, 0, "not a JSON object"},
		{"scalar document", `42`, 0, "not a JSON object"},
		{"malformed", `{"Policy":`, 0, "invalid JSON"},
		{"trailing data", `{"schema":2}{"x":1}`, 0, "trailing data"},
		{"duplicate schema", `{"schema":2,"schema":2}`, 0, "duplicate"},
		{"string version", `{"schema":"2"}`, 0, "not a number"},
		{"fractional version", `{"schema":1.5}`, 0, "not an integer"},
		{"version zero", `{"schema":0}`, 0, "< 1"},
		{"negative version", `{"schema":-1}`, 0, "< 1"},
		{"future version", `{"schema":3}`, 0, "newer than this build"},
		{"v2 key in unversioned doc", `{"policy_params":{"utilization":0.5}}`, 0, `requires "schema": 2`},
		{"v2 key in explicit v1 doc", `{"schema":1,"task_model":"periodic"}`, 0, `requires "schema": 2`},
		{"v2 key with declaration ok", `{"schema":2,"task_params":{"periods":[10]}}`, 2, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			v, err := Version([]byte(tc.doc))
			if tc.errPart == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				if v != tc.want {
					t.Fatalf("Version = %d, want %d", v, tc.want)
				}
				return
			}
			if err == nil {
				t.Fatalf("want error containing %q, got version %d", tc.errPart, v)
			}
			if !strings.Contains(err.Error(), tc.errPart) {
				t.Fatalf("error %q does not contain %q", err, tc.errPart)
			}
		})
	}
}

func TestMigrate(t *testing.T) {
	v1 := []byte(`{"Policy":"static-dvfs","Utilization":0.6,"Horizon":1200}`)
	migrated, err := Migrate(v1)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := Version(migrated); err != nil || v != Current {
		t.Fatalf("migrated version = %d, %v; want %d", v, err, Current)
	}
	// "schema" lands last so every pre-existing member keeps its offset.
	want := `{"Policy":"static-dvfs","Utilization":0.6,"Horizon":1200,"schema":2}`
	if string(migrated) != want {
		t.Errorf("Migrate = %s, want %s", migrated, want)
	}

	// Idempotence: migrating the output returns identical bytes.
	again, err := Migrate(migrated)
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != string(migrated) {
		t.Errorf("Migrate not idempotent: %s then %s", migrated, again)
	}

	// An interior "schema" member is lifted to the end, not duplicated.
	interior := []byte(`{"schema":1,"Policy":"edf"}`)
	m2, err := Migrate(interior)
	if err != nil {
		t.Fatal(err)
	}
	if want := `{"Policy":"edf","schema":2}`; string(m2) != want {
		t.Errorf("Migrate = %s, want %s", m2, want)
	}

	// Migrate refuses what Version refuses.
	for _, bad := range []string{`[1]`, `{"schema":3}`, `{"policy_params":{}}`, `{"x":`} {
		if _, err := Migrate([]byte(bad)); err == nil {
			t.Errorf("Migrate(%s) succeeded, want error", bad)
		}
	}
}

// TestDigestStability is the cache-warmth contract in miniature: the
// digest form excludes "schema", so migration never changes a digest.
func TestDigestStability(t *testing.T) {
	docs := [][]byte{
		[]byte(`{"Policy":"ea-dvfs","Capacity":500,"NumTasks":4,"Seed":7}`),
		[]byte(`{"Policy":"lsa","HarvestTrace":[1,2,3],"Faults":{"MTBF":100}}`),
		[]byte(`{}`),
	}
	for _, doc := range docs {
		migrated, err := Migrate(doc)
		if err != nil {
			t.Fatal(err)
		}
		s1, err := Strip(doc)
		if err != nil {
			t.Fatal(err)
		}
		s2, err := Strip(migrated)
		if err != nil {
			t.Fatal(err)
		}
		if string(s1) != string(s2) {
			t.Errorf("Strip changed across migration:\n  v1: %s\n  v2: %s", s1, s2)
		}
		d1, err := Digest(doc)
		if err != nil {
			t.Fatal(err)
		}
		d2, err := Digest(migrated)
		if err != nil {
			t.Fatal(err)
		}
		if d1 != d2 {
			t.Errorf("digest changed across migration of %s: %s != %s", doc, d1, d2)
		}
	}
}

func TestStripPreservesOtherMembers(t *testing.T) {
	doc := []byte(`{"B":2,"schema":2,"A":1,"C":{"nested":true}}`)
	got, err := Strip(doc)
	if err != nil {
		t.Fatal(err)
	}
	if want := `{"B":2,"A":1,"C":{"nested":true}}`; string(got) != want {
		t.Errorf("Strip = %s, want %s", got, want)
	}
}

func TestCheckWireNested(t *testing.T) {
	// A sweep request nests the simulation spec under "spec": v2-only
	// members inside it need the top-level declaration too.
	bad := []byte(`{"spec":{"task_model":"periodic"},"replications":2}`)
	if _, err := CheckWire(bad, "spec"); err == nil {
		t.Fatal("nested v2 key in unversioned request accepted")
	}
	good := []byte(`{"schema":2,"spec":{"task_model":"periodic"},"replications":2}`)
	if v, err := CheckWire(good, "spec"); err != nil || v != 2 {
		t.Fatalf("CheckWire = %d, %v; want 2, nil", v, err)
	}
	// Without the nested hint the same document passes — the caller opts
	// into deep checking per member name.
	if _, err := CheckWire(bad); err != nil {
		t.Fatalf("top-level-only check rejected clean top level: %v", err)
	}
	// A non-object "spec" member is ignored by the nested walk.
	if _, err := CheckWire([]byte(`{"spec":"inline"}`), "spec"); err != nil {
		t.Fatalf("scalar nested member rejected: %v", err)
	}
}
