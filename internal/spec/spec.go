// Package spec versions the wire JSON the CLIs and the HTTP service
// accept, and migrates old documents forward.
//
// Version history:
//
//   - v1 (implicit): the original unversioned eadvfs.Config /
//     experiment.Spec JSON — capitalized Go field names, no "schema"
//     member.
//   - v2: adds the explicit "schema": 2 marker plus the registry-era
//     members "policy_params", "task_model" and "task_params"
//     (self-describing parameter payloads resolved through
//     internal/registry) and the DPM preset "sleep". A document using
//     any v2-only member without declaring "schema": 2 is an error,
//     never a silent reinterpretation.
//
// The contract that makes upgrades free: the "schema" member is
// excluded from the document's digest identity (Strip), and a v1→v2
// migration changes nothing else, so digest.Compact keys — and with
// them the service LRU cache, fabric worker caches and the fleet
// affinity ring — stay byte-stable across the upgrade. Migrate
// preserves member order byte-for-byte precisely so this is provable:
// Strip(Migrate(doc)) == Strip(doc) for every valid v1 document
// (golden-tested against the corpus under testdata/specs/ and fuzzed
// by FuzzMigrateSpec).
package spec

import (
	"bytes"
	"encoding/json"
	"fmt"

	"github.com/eadvfs/eadvfs/internal/digest"
)

// Current is the schema version this build writes and the highest it
// accepts.
const Current = 2

// V2Keys are the members only a "schema": 2 document may use. Their
// presence in an unversioned (v1) document is an explicit error: an old
// server must reject what it would misread, not quietly drop it.
// A root-level test cross-checks this list against the eadvfs.Config
// JSON tags so the two can't drift apart.
var V2Keys = []string{"policy_params", "task_model", "task_params", "sleep"}

// member is one top-level object member with its original order
// preserved and its value compacted but otherwise untouched.
type member struct {
	key string
	val json.RawMessage
}

// parse splits a top-level JSON object into its ordered members. It
// rejects non-objects, malformed JSON, trailing data and duplicate
// "schema" members (a duplicate would make the version ambiguous;
// other duplicate keys are passed through — encoding/json's
// last-wins decoding handles them downstream exactly as before).
func parse(raw []byte) ([]member, error) {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	tok, err := dec.Token()
	if err != nil {
		return nil, fmt.Errorf("spec: invalid JSON: %w", err)
	}
	if d, ok := tok.(json.Delim); !ok || d != '{' {
		return nil, fmt.Errorf("spec: document is not a JSON object")
	}
	var members []member
	sawSchema := false
	for dec.More() {
		keyTok, err := dec.Token()
		if err != nil {
			return nil, fmt.Errorf("spec: invalid JSON: %w", err)
		}
		key, ok := keyTok.(string)
		if !ok {
			return nil, fmt.Errorf("spec: invalid JSON: non-string object key")
		}
		if key == "schema" {
			if sawSchema {
				return nil, fmt.Errorf("spec: duplicate %q member", "schema")
			}
			sawSchema = true
		}
		var val json.RawMessage
		if err := dec.Decode(&val); err != nil {
			return nil, fmt.Errorf("spec: invalid JSON: %w", err)
		}
		compact := &bytes.Buffer{}
		if err := json.Compact(compact, val); err != nil {
			return nil, fmt.Errorf("spec: invalid JSON: %w", err)
		}
		members = append(members, member{key: key, val: append(json.RawMessage(nil), compact.Bytes()...)})
	}
	if _, err := dec.Token(); err != nil {
		return nil, fmt.Errorf("spec: invalid JSON: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("spec: trailing data after document")
	}
	return members, nil
}

// versionOf extracts the schema version from parsed members: absent
// means v1; present, it must be a JSON integer in [1, Current].
func versionOf(members []member) (int, error) {
	for _, m := range members {
		if m.key != "schema" {
			continue
		}
		// json.Number would happily decode a quoted "2"; require a bare
		// JSON number literal.
		var n json.Number
		if len(m.val) == 0 || m.val[0] == '"' || json.Unmarshal(m.val, &n) != nil {
			return 0, fmt.Errorf("spec: %q member is not a number", "schema")
		}
		v, err := n.Int64()
		if err != nil {
			return 0, fmt.Errorf("spec: %q member %s is not an integer", "schema", n)
		}
		switch {
		case v < 1:
			return 0, fmt.Errorf("spec: schema version %d < 1", v)
		case v > Current:
			return 0, fmt.Errorf("spec: schema version %d is newer than this build supports (max %d)", v, Current)
		}
		return int(v), nil
	}
	return 1, nil
}

// checkV2Keys rejects v2-only members in a document declaring an older
// (or no) version.
func checkV2Keys(members []member, version int) error {
	if version >= 2 {
		return nil
	}
	for _, m := range members {
		for _, k := range V2Keys {
			if m.key == k {
				return fmt.Errorf("spec: member %q requires %q: 2 (document is schema %d)", k, "schema", version)
			}
		}
	}
	return nil
}

// CheckWire validates the version declaration of a wire document: the
// top-level "schema" member (absent → 1) must be an integer this build
// speaks, and v2-only members — at top level or inside any of the named
// nested object members (e.g. "spec" for sweep requests, which nest the
// simulation spec one level down) — require the declaration. It returns
// the declared version.
func CheckWire(raw []byte, nested ...string) (int, error) {
	members, err := parse(raw)
	if err != nil {
		return 0, err
	}
	v, err := versionOf(members)
	if err != nil {
		return 0, err
	}
	if err := checkV2Keys(members, v); err != nil {
		return 0, err
	}
	for _, name := range nested {
		for _, m := range members {
			if m.key != name || len(m.val) == 0 || m.val[0] != '{' {
				continue
			}
			inner, err := parse(m.val)
			if err != nil {
				return 0, err
			}
			if err := checkV2Keys(inner, v); err != nil {
				return 0, fmt.Errorf("spec: member %q: %w", name, err)
			}
		}
	}
	return v, nil
}

// Version reports the schema version a raw document declares (absent
// "schema" member → 1). It validates the declaration — an unparsable
// document, a non-integer version, a version this build doesn't know,
// or v2-only members in a v1 document are errors.
func Version(raw []byte) (int, error) {
	members, err := parse(raw)
	if err != nil {
		return 0, err
	}
	v, err := versionOf(members)
	if err != nil {
		return 0, err
	}
	if err := checkV2Keys(members, v); err != nil {
		return 0, err
	}
	return v, nil
}

// render serializes members back to one compact JSON object in order.
func render(members []member) []byte {
	buf := &bytes.Buffer{}
	buf.WriteByte('{')
	for i, m := range members {
		if i > 0 {
			buf.WriteByte(',')
		}
		k, _ := json.Marshal(m.key)
		buf.Write(k)
		buf.WriteByte(':')
		buf.Write(m.val)
	}
	buf.WriteByte('}')
	return buf.Bytes()
}

// Migrate rewrites a valid document to the current schema version. All
// members except "schema" are preserved byte-for-byte in their original
// order (values in compact form), and "schema": 2 is appended last —
// so Strip(Migrate(doc)) == Strip(doc), the digest-stability invariant
// every cache layer depends on. Migrating an already-current document
// is idempotent: it returns the same canonical bytes.
func Migrate(raw []byte) ([]byte, error) {
	members, err := parse(raw)
	if err != nil {
		return nil, err
	}
	v, err := versionOf(members)
	if err != nil {
		return nil, err
	}
	if err := checkV2Keys(members, v); err != nil {
		return nil, err
	}
	out := make([]member, 0, len(members)+1)
	for _, m := range members {
		if m.key == "schema" {
			continue
		}
		out = append(out, m)
	}
	out = append(out, member{key: "schema", val: json.RawMessage(fmt.Sprintf("%d", Current))})
	return render(out), nil
}

// Strip returns the document's digest form: compact JSON with the
// "schema" member removed and every other member untouched in order.
// This is what the schema-version contract hashes — two documents that
// differ only in schema declaration share a digest, and with it every
// cached result.
func Strip(raw []byte) ([]byte, error) {
	members, err := parse(raw)
	if err != nil {
		return nil, err
	}
	out := make([]member, 0, len(members))
	for _, m := range members {
		if m.key == "schema" {
			continue
		}
		out = append(out, m)
	}
	return render(out), nil
}

// Digest returns the digest.Compact key of the document's digest form.
// It errors on documents Strip rejects.
func Digest(raw []byte) (string, error) {
	stripped, err := Strip(raw)
	if err != nil {
		return "", err
	}
	return digest.Compact(stripped), nil
}
