package storage

import (
	"math"
	"testing"
)

// FuzzFlow drives a store through fuzzer-chosen flow sequences (split at
// the empty crossing like the engine does) and checks the level bounds
// and energy conservation — the two invariants every experiment depends
// on. Runs its seed corpus under `go test`; fuzz with `go test -fuzz
// FuzzFlow ./internal/storage`.
func FuzzFlow(f *testing.F) {
	f.Add(uint16(100), byte(128), []byte{1, 2, 3, 4, 5, 6})
	f.Add(uint16(5), byte(0), []byte{255, 255, 0, 0, 9})
	f.Add(uint16(5000), byte(255), []byte{7})
	f.Fuzz(func(t *testing.T, capRaw uint16, initFrac byte, ops []byte) {
		capacity := 1 + float64(capRaw)
		initial := capacity * float64(initFrac) / 255
		s := New(capacity, initial,
			WithChargeEfficiency(0.9), WithDischargeEfficiency(0.85), WithLeakage(0.01))
		if len(ops) > 600 {
			ops = ops[:600]
		}
		for i := 0; i+2 < len(ops); i += 3 {
			ps := float64(ops[i]) / 8
			pc := float64(ops[i+1]) / 8
			dt := float64(ops[i+2]) / 32
			if tte := s.TimeToEmpty(ps, pc); dt >= tte {
				s.Flow(ps, pc, tte)
				s.Flow(ps, 0, dt-tte)
			} else {
				s.Flow(ps, pc, dt)
			}
			if s.Level() < -1e-6 || s.Level() > capacity+1e-6 {
				t.Fatalf("level %v outside [0, %v]", s.Level(), capacity)
			}
		}
		if err := s.ConservationError(initial); math.Abs(err) > 1e-5*(1+s.Meters().Harvested) {
			t.Fatalf("conservation error %v", err)
		}
	})
}

// FuzzHybridFlow is the same invariant check for the two-tier reservoir.
func FuzzHybridFlow(f *testing.F) {
	f.Add([]byte{10, 3, 8, 200, 0, 16})
	f.Add([]byte{0, 255, 1, 1, 1, 1, 90, 2, 60})
	f.Fuzz(func(t *testing.T, ops []byte) {
		h := NewHybrid(25, 10, 300, 150, 0.8)
		initial := h.Level()
		if len(ops) > 600 {
			ops = ops[:600]
		}
		for i := 0; i+2 < len(ops); i += 3 {
			ps := float64(ops[i]) / 8
			pc := float64(ops[i+1]) / 8
			dt := float64(ops[i+2]) / 32
			if tte := h.TimeToEmpty(ps, pc); dt >= tte {
				h.Flow(ps, pc, tte)
				h.Flow(ps, 0, dt-tte)
			} else {
				h.Flow(ps, pc, dt)
			}
			if h.Level() < -1e-6 || h.Level() > h.Capacity()+1e-6 {
				t.Fatalf("level %v outside bounds", h.Level())
			}
			if h.CapLevel() < -1e-6 || h.BattLevel() < -1e-6 {
				t.Fatalf("tier level negative: %v / %v", h.CapLevel(), h.BattLevel())
			}
		}
		if err := h.ConservationError(initial); math.Abs(err) > 1e-5*(1+h.Meters().Harvested) {
			t.Fatalf("conservation error %v", err)
		}
	})
}
