package storage

import (
	"fmt"
	"math"
)

// netRate returns the store-level derivative under simultaneous constant
// harvest power ps and load power pc, including charge/discharge
// efficiency and leakage.
func (s *Store) netRate(ps, pc float64) float64 {
	return ps*s.chargeEff - pc/s.dischargeEff - s.leakRate
}

// TimeToEmpty returns how long the store can keep the load served under
// constant harvest ps and load pc, or +Inf when the load never becomes
// unservable: either the level is non-decreasing, or the harvest inflow
// alone covers the load (then only leakage drains the store, and an empty
// store simply stops leaking — the load is unaffected). A store already
// empty with an uncoverable load returns 0.
func (s *Store) TimeToEmpty(ps, pc float64) float64 {
	checkPower(ps, pc)
	if ps*s.chargeEff >= pc/s.dischargeEff {
		return math.Inf(1)
	}
	net := s.netRate(ps, pc)
	if net >= 0 {
		return math.Inf(1)
	}
	return s.level / -net
}

// TimeToFull returns how long until the store pins at capacity under
// constant harvest ps and load pc, or +Inf when the level is
// non-increasing or the capacity infinite.
func (s *Store) TimeToFull(ps, pc float64) float64 {
	checkPower(ps, pc)
	net := s.netRate(ps, pc)
	if net <= 0 || math.IsInf(s.capacity, 1) {
		return math.Inf(1)
	}
	return (s.capacity - s.level) / net
}

// Flow applies simultaneous constant harvest power ps and load power pc
// over an interval of length dt, with exact continuous semantics:
// the level follows dE/dt = ps·ηc − pc/ηd − leak, pinned at the capacity
// (surplus overflows and is discarded) and the load is fully served.
//
// Precondition: the store must not empty strictly inside the interval —
// the simulation engine schedules that crossing as an event and splits
// there (it ends exactly at empty at worst). Violations panic, because a
// silently unserved load would corrupt every downstream experiment.
//
// It returns the energy delivered to the load (= pc·dt) and the harvest
// energy discarded as overflow.
func (s *Store) Flow(ps, pc, dt float64) (delivered, overflow float64) {
	checkPower(ps, pc)
	if dt < 0 || math.IsNaN(dt) {
		panic(fmt.Sprintf("storage: Flow over invalid interval %v", dt))
	}
	if dt == 0 {
		return 0, 0
	}
	net := s.netRate(ps, pc)
	end := s.level + net*dt

	const tol = 1e-7
	if end < -tol*math.Max(1, pc*dt) {
		inflow := ps * s.chargeEff
		loadRate := pc / s.dischargeEff
		if loadRate > inflow+tol {
			// The load itself over-draws an emptying store: the caller
			// (engine) must have split at TimeToEmpty — this is a bug.
			panic(fmt.Sprintf("storage: Flow empties the store mid-interval (level %v, net %v, dt %v)", s.level, net, dt))
		}
		// Only leakage drives the level below zero while the harvest
		// covers the load; physically the store pins at empty and stops
		// leaking. Account the two phases exactly.
		tc := dt
		if net < 0 {
			tc = math.Min(dt, s.level/-net)
		}
		s.totalHarvested += ps * dt
		delivered = pc * dt
		s.totalDrawn += delivered
		// Phase 1 (level > 0): full leak. Phase 2 (pinned at 0): the
		// effective leak is the inflow surplus, inflow − loadRate < leak.
		leaked := s.leakRate*tc + (inflow-loadRate)*(dt-tc)
		s.totalLeaked += leaked
		s.totalStored += inflow * dt
		s.level = 0
		return delivered, 0
	}

	s.totalHarvested += ps * dt
	delivered = pc * dt
	s.totalDrawn += delivered

	if end > s.capacity {
		// The level path hits the capacity at some point inside the
		// interval and stays pinned; everything above the cap is
		// discarded harvest. (With net > 0 the pin time is
		// (cap-level)/net; the overflowed energy is net*(dt - pinTime)
		// = end - cap exactly, by linearity.)
		overflow = end - s.capacity
		end = s.capacity
	}
	stored := end - s.level + pc/s.dischargeEff*dt + s.leakRate*dt
	// stored is the harvest energy accepted (ps·ηc·dt − overflow); meter
	// the components consistently with Harvest/Draw/Leak.
	s.totalStored += stored
	s.totalOverflow += overflow
	s.totalLeaked += s.leakRate * dt
	if end < 0 {
		end = 0
	}
	s.level = end
	return delivered, overflow
}

func checkPower(ps, pc float64) {
	if ps < 0 || pc < 0 || math.IsNaN(ps) || math.IsNaN(pc) {
		panic(fmt.Sprintf("storage: invalid powers ps=%v pc=%v", ps, pc))
	}
}
