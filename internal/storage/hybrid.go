package storage

import (
	"fmt"
	"math"
)

// Reservoir is the energy-store abstraction the simulation engine drives.
// *Store (the paper's ideal single store) and *Hybrid (a Prometheus-style
// supercapacitor + battery tier, paper reference [3]) both implement it.
type Reservoir interface {
	// Capacity returns the total capacity C (possibly +Inf).
	Capacity() float64
	// Level returns the stored energy EC(t).
	Level() float64
	// Flow applies simultaneous constant harvest power ps and load power
	// pc over dt; see Store.Flow for the exact semantics and the
	// no-mid-interval-empty precondition.
	Flow(ps, pc, dt float64) (delivered, overflow float64)
	// TimeToEmpty returns how long the reservoir can serve load pc under
	// harvest ps before the load becomes unservable.
	TimeToEmpty(ps, pc float64) float64
	// Draw removes up to e units instantaneously (DVFS switch overhead).
	Draw(e float64) float64
	// Meters returns the cumulative energy accounting.
	Meters() Meters
	// ConservationError returns the energy-balance discrepancy given the
	// initial level; ~0 for a correct implementation.
	ConservationError(initial float64) float64
}

// Hybrid is a two-tier reservoir: a small, lossless supercapacitor in
// front of a large battery with charge/discharge losses — the Prometheus
// architecture [3]. Harvest fills the supercap first and spills into the
// battery; load drains the supercap first and falls back to the battery.
// The tiering keeps the frequent small charge/discharge cycles on the
// lossless tier and reserves the battery for ride-through.
type Hybrid struct {
	cap  *Store // tier 1: lossless
	batt *Store // tier 2: lossy

	capInitial  float64
	battInitial float64

	totalHarvested float64
	totalDrawn     float64
}

// NewHybrid builds a hybrid reservoir. Both tiers start at the given
// levels; battEff is the battery's symmetric charge/discharge efficiency
// in (0, 1].
func NewHybrid(capSize, capLevel, battSize, battLevel, battEff float64) *Hybrid {
	if battEff <= 0 || battEff > 1 {
		panic(fmt.Sprintf("storage: battery efficiency %v outside (0,1]", battEff))
	}
	return &Hybrid{
		cap:         New(capSize, capLevel),
		batt:        New(battSize, battLevel, WithChargeEfficiency(battEff), WithDischargeEfficiency(battEff)),
		capInitial:  capLevel,
		battInitial: battLevel,
	}
}

// Capacity implements Reservoir.
func (h *Hybrid) Capacity() float64 { return h.cap.Capacity() + h.batt.Capacity() }

// Level implements Reservoir: the sum of the tier levels. (Discharge
// losses mean the *deliverable* energy is lower; schedulers budgeting
// with Level are optimistic by the battery's inefficiency, exactly as a
// fuel-gauge reading would be.)
func (h *Hybrid) Level() float64 { return h.cap.Level() + h.batt.Level() }

// CapLevel returns the supercapacitor tier's level.
func (h *Hybrid) CapLevel() float64 { return h.cap.Level() }

// BattLevel returns the battery tier's level.
func (h *Hybrid) BattLevel() float64 { return h.batt.Level() }

// TimeToEmpty implements Reservoir: time until the load becomes
// unservable — the supercap drains first, then the battery.
func (h *Hybrid) TimeToEmpty(ps, pc float64) float64 {
	checkPower(ps, pc)
	if ps >= pc {
		return math.Inf(1)
	}
	deficit := pc - ps
	t := h.cap.Level() / deficit
	// Battery delivers level·eff usable energy at drain rate deficit.
	t += h.batt.Level() * h.batt.dischargeEff / deficit
	return t
}

// Flow implements Reservoir with exact piecewise integration across the
// internal tier transitions (supercap empties / fills mid-interval).
func (h *Hybrid) Flow(ps, pc, dt float64) (delivered, overflow float64) {
	checkPower(ps, pc)
	if dt < 0 || math.IsNaN(dt) {
		panic(fmt.Sprintf("storage: Flow over invalid interval %v", dt))
	}
	const tol = 1e-9
	if dt > h.TimeToEmpty(ps, pc)+tol*math.Max(1, dt) {
		panic(fmt.Sprintf("storage: hybrid Flow empties mid-interval (dt %v, tte %v)", dt, h.TimeToEmpty(ps, pc)))
	}
	h.totalHarvested += ps * dt
	h.totalDrawn += pc * dt
	delivered = pc * dt

	remaining := dt
	for remaining > tol {
		var step float64
		switch {
		case ps >= pc:
			// Surplus charges the supercap until it pins, then the
			// battery until it pins, then overflows.
			surplus := ps - pc
			if surplus == 0 {
				remaining = 0
				continue
			}
			switch {
			case !h.cap.Full():
				step = math.Min(remaining, h.cap.FillFor(surplus))
				h.cap.Harvest(surplus * step)
			case !h.batt.Full():
				// Battery stores surplus·ηc per unit time.
				tFill := h.batt.FillFor(surplus * h.batt.chargeEff)
				step = math.Min(remaining, tFill)
				overflow += h.batt.Harvest(surplus * step)
			default:
				step = remaining
				overflow += surplus * step
			}
		default:
			// Deficit drains the supercap, then the battery.
			deficit := pc - ps
			if h.cap.Level() > tol {
				step = math.Min(remaining, h.cap.RunFor(deficit))
				h.cap.Draw(deficit * step)
			} else {
				step = remaining
				h.batt.Draw(deficit * step)
			}
		}
		if step <= 0 {
			step = remaining // numerical guard: never stall the loop
		}
		remaining -= step
	}
	return delivered, overflow
}

// Draw implements Reservoir: supercap first, battery second.
func (h *Hybrid) Draw(e float64) float64 {
	got := h.cap.Draw(e)
	if got < e {
		got += h.batt.Draw(e - got)
	}
	h.totalDrawn += got
	return got
}

// Meters implements Reservoir with tier-combined accounting.
func (h *Hybrid) Meters() Meters {
	cm, bm := h.cap.Meters(), h.batt.Meters()
	return Meters{
		Harvested: h.totalHarvested,
		Stored:    cm.Stored + bm.Stored,
		Overflow:  cm.Overflow + bm.Overflow,
		Drawn:     h.totalDrawn,
		Leaked:    cm.Leaked + bm.Leaked,
	}
}

// ConservationError implements Reservoir: the sum of the per-tier balance
// errors (each ~0 for a correct hybrid). Battery efficiency losses are
// accounted inside the battery tier's own balance; harvest delivered
// straight to the load never touches either balance. The initial argument
// is accepted for interface parity and cross-checked against the recorded
// tier initials.
func (h *Hybrid) ConservationError(initial float64) float64 {
	mismatch := initial - (h.capInitial + h.battInitial)
	return h.cap.ConservationError(h.capInitial) + h.batt.ConservationError(h.battInitial) + mismatch
}
