package storage

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFlowNetCharge(t *testing.T) {
	s := New(100, 10)
	delivered, overflow := s.Flow(5, 2, 4) // net +3 for 4 units
	if delivered != 8 || overflow != 0 {
		t.Fatalf("delivered=%v overflow=%v", delivered, overflow)
	}
	if math.Abs(s.Level()-22) > 1e-12 {
		t.Fatalf("level = %v, want 22", s.Level())
	}
}

func TestFlowNetDrainToExactEmpty(t *testing.T) {
	s := New(100, 12)
	tte := s.TimeToEmpty(1, 4) // net -3 → 4 units
	if tte != 4 {
		t.Fatalf("TimeToEmpty = %v, want 4", tte)
	}
	delivered, _ := s.Flow(1, 4, tte)
	if delivered != 16 {
		t.Fatalf("delivered = %v, want 16", delivered)
	}
	if math.Abs(s.Level()) > 1e-9 {
		t.Fatalf("level = %v, want 0", s.Level())
	}
}

func TestFlowPanicsOnMidIntervalEmpty(t *testing.T) {
	s := New(100, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("Flow past empty did not panic")
		}
	}()
	s.Flow(0, 4, 1) // needs 4, has 2
}

func TestFlowOverflowExact(t *testing.T) {
	s := New(10, 8)
	// net +3/unit for 2 units → path hits cap at t=2/3, overflow 6-2=4.
	_, overflow := s.Flow(3, 0, 2)
	if math.Abs(overflow-4) > 1e-12 {
		t.Fatalf("overflow = %v, want 4", overflow)
	}
	if s.Level() != 10 {
		t.Fatalf("level = %v, want pinned at 10", s.Level())
	}
}

func TestFlowPinnedAtCapWithLoad(t *testing.T) {
	s := NewIdeal(10)
	// ps 5, pc 2: store pinned, net 3/unit overflows.
	delivered, overflow := s.Flow(5, 2, 4)
	if delivered != 8 {
		t.Fatalf("delivered = %v", delivered)
	}
	if math.Abs(overflow-12) > 1e-12 {
		t.Fatalf("overflow = %v, want 12", overflow)
	}
	if s.Level() != 10 {
		t.Fatalf("level = %v", s.Level())
	}
}

func TestFlowZeroDt(t *testing.T) {
	s := New(10, 5)
	d, o := s.Flow(3, 2, 0)
	if d != 0 || o != 0 || s.Level() != 5 {
		t.Fatal("zero-dt flow changed state")
	}
}

func TestFlowWithEfficiencyAndLeak(t *testing.T) {
	s := New(100, 50, WithChargeEfficiency(0.5), WithDischargeEfficiency(0.8), WithLeakage(0.1))
	// net = 4*0.5 - 2/0.8 - 0.1 = 2 - 2.5 - 0.1 = -0.6 per unit.
	delivered, _ := s.Flow(4, 2, 10)
	if delivered != 20 {
		t.Fatalf("delivered = %v", delivered)
	}
	if math.Abs(s.Level()-44) > 1e-9 {
		t.Fatalf("level = %v, want 44", s.Level())
	}
}

func TestTimeToEmptyFull(t *testing.T) {
	s := New(100, 30)
	if got := s.TimeToEmpty(5, 2); !math.IsInf(got, 1) {
		t.Fatalf("TimeToEmpty charging = %v, want +Inf", got)
	}
	if got := s.TimeToFull(5, 2); math.Abs(got-70.0/3) > 1e-12 {
		t.Fatalf("TimeToFull = %v, want 70/3", got)
	}
	if got := s.TimeToFull(1, 2); !math.IsInf(got, 1) {
		t.Fatalf("TimeToFull draining = %v, want +Inf", got)
	}
	inf := New(math.Inf(1), 5)
	if got := inf.TimeToFull(5, 0); !math.IsInf(got, 1) {
		t.Fatalf("TimeToFull infinite cap = %v", got)
	}
	empty := New(10, 0)
	if got := empty.TimeToEmpty(0, 1); got != 0 {
		t.Fatalf("TimeToEmpty already empty = %v, want 0", got)
	}
}

func TestFlowValidation(t *testing.T) {
	s := New(10, 5)
	for i, f := range []func(){
		func() { s.Flow(-1, 0, 1) },
		func() { s.Flow(0, -1, 1) },
		func() { s.Flow(0, 0, -1) },
		func() { s.Flow(math.NaN(), 0, 1) },
		func() { s.TimeToEmpty(-1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

// Property: Flow conserves energy and respects bounds for arbitrary safe
// sequences of flows.
func TestFlowConservationProperty(t *testing.T) {
	f := func(capRaw uint16, ops []struct{ Ps, Pc, Dt uint8 }) bool {
		capacity := 10 + float64(capRaw%1000)
		s := New(capacity, capacity/2)
		if len(ops) > 100 {
			ops = ops[:100]
		}
		for _, o := range ops {
			ps := float64(o.Ps) / 16
			pc := float64(o.Pc) / 16
			dt := float64(o.Dt) / 64
			// Split at the empty crossing like the engine does.
			tte := s.TimeToEmpty(ps, pc)
			if dt >= tte {
				s.Flow(ps, pc, tte)
				// stalled: load off for the remainder
				s.Flow(ps, 0, dt-tte)
			} else {
				s.Flow(ps, pc, dt)
			}
			if s.Level() < -1e-9 || s.Level() > capacity+1e-9 {
				return false
			}
		}
		return math.Abs(s.ConservationError(capacity/2)) < 1e-6*(1+s.Meters().Harvested)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Flow in one call equals Flow split at any midpoint (linearity),
// absent cap/empty crossings.
func TestFlowSplitEquivalenceProperty(t *testing.T) {
	f := func(psRaw, pcRaw, dtRaw, splitRaw uint8) bool {
		ps := float64(psRaw) / 32
		pc := float64(pcRaw) / 32
		dt := 0.1 + float64(dtRaw)/64
		split := dt * float64(splitRaw) / 256

		mk := func() *Store { return New(1e6, 1000) } // huge: no crossings
		a := mk()
		a.Flow(ps, pc, dt)
		b := mk()
		b.Flow(ps, pc, split)
		b.Flow(ps, pc, dt-split)
		return math.Abs(a.Level()-b.Level()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
