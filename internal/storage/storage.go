// Package storage models the energy reservoir of the harvesting system
// (paper §3.2): a capacity-limited store that satisfies the paper's
// constraints (1)–(4). The paper assumes an ideal store — fully chargeable
// to C, fully dischargeable to 0, harvest overflowing a full store is
// discarded. Non-idealities (round-trip efficiency, leakage) are supported
// as extensions for the ablation benches; with the defaults they vanish and
// the store is exactly the paper's.
package storage

import (
	"fmt"
	"math"
)

// Store is an energy reservoir. The zero value is invalid; construct with
// New or NewIdeal.
type Store struct {
	capacity float64
	level    float64

	// Non-ideal extensions; 1, 1, 0 reproduce the paper's ideal store.
	chargeEff    float64 // fraction of harvested energy actually stored
	dischargeEff float64 // stored energy per unit delivered = 1/dischargeEff
	leakRate     float64 // energy lost per time unit while stored

	// Cumulative meters.
	totalHarvested float64 // energy offered by the source
	totalStored    float64 // energy that entered the store after losses
	totalOverflow  float64 // energy discarded because the store was full
	totalDrawn     float64 // energy delivered to the load
	totalLeaked    float64 // energy lost to leakage
}

// Option configures a Store.
type Option func(*Store)

// WithChargeEfficiency sets the fraction of offered harvest energy that is
// actually stored (0 < eff <= 1).
func WithChargeEfficiency(eff float64) Option {
	if eff <= 0 || eff > 1 {
		panic(fmt.Sprintf("storage: charge efficiency %v outside (0,1]", eff))
	}
	return func(s *Store) { s.chargeEff = eff }
}

// WithDischargeEfficiency sets the fraction of drawn stored energy that
// reaches the load (0 < eff <= 1): delivering e to the load removes
// e/eff from the store.
func WithDischargeEfficiency(eff float64) Option {
	if eff <= 0 || eff > 1 {
		panic(fmt.Sprintf("storage: discharge efficiency %v outside (0,1]", eff))
	}
	return func(s *Store) { s.dischargeEff = eff }
}

// WithLeakage sets a constant self-discharge rate in energy per time unit.
func WithLeakage(rate float64) Option {
	if rate < 0 {
		panic(fmt.Sprintf("storage: negative leakage rate %v", rate))
	}
	return func(s *Store) { s.leakRate = rate }
}

// New returns a store with the given capacity and initial level. Capacity
// may be math.Inf(1) — the paper's §4.3 special case under which EA-DVFS
// degenerates to EDF. initial must be within [0, capacity].
func New(capacity, initial float64, opts ...Option) *Store {
	if capacity < 0 || math.IsNaN(capacity) {
		panic(fmt.Sprintf("storage: invalid capacity %v", capacity))
	}
	if initial < 0 || initial > capacity || math.IsNaN(initial) {
		panic(fmt.Sprintf("storage: initial level %v outside [0, %v]", initial, capacity))
	}
	s := &Store{capacity: capacity, level: initial, chargeEff: 1, dischargeEff: 1}
	for _, o := range opts {
		o(s)
	}
	return s
}

// NewIdeal returns the paper's ideal store, initially full ("In the
// beginning of the simulation, the energy storage is full", §5.1).
func NewIdeal(capacity float64) *Store {
	return New(capacity, capacity)
}

// Capacity returns C.
func (s *Store) Capacity() float64 { return s.capacity }

// Level returns the stored energy EC(t).
func (s *Store) Level() float64 { return s.level }

// Fraction returns Level/Capacity in [0,1]; it returns 1 for an infinite
// store holding infinite energy and 0 for an infinite store holding finite
// energy (the normalization is only meaningful for finite capacities).
func (s *Store) Fraction() float64 {
	if math.IsInf(s.capacity, 1) {
		if math.IsInf(s.level, 1) {
			return 1
		}
		return 0
	}
	if s.capacity == 0 {
		return 0
	}
	return s.level / s.capacity
}

// Full reports whether the store is at capacity.
func (s *Store) Full() bool { return s.level >= s.capacity }

// Empty reports whether the store is exhausted.
func (s *Store) Empty() bool { return s.level <= 0 }

// Harvest offers e >= 0 units of harvested energy. It stores what fits
// (after charge efficiency) and returns the overflow discarded, per §3.2:
// "If the stored energy reaches the capacity, the incoming harvested energy
// overflows the storage and is discarded."
func (s *Store) Harvest(e float64) (overflow float64) {
	if e < 0 || math.IsNaN(e) {
		panic(fmt.Sprintf("storage: harvesting invalid energy %v", e))
	}
	s.totalHarvested += e
	usable := e * s.chargeEff
	space := s.capacity - s.level
	if math.IsInf(space, 1) {
		space = math.Inf(1)
	}
	stored := math.Min(usable, space)
	s.level += stored
	s.totalStored += stored
	overflow = usable - stored
	s.totalOverflow += overflow
	return overflow
}

// Draw requests e >= 0 units of energy for the load and returns the energy
// actually delivered, at most e. With an ideal store, delivery is
// min(e, level); discharge efficiency makes the store deplete faster than
// the delivered amount.
func (s *Store) Draw(e float64) (delivered float64) {
	if e < 0 || math.IsNaN(e) {
		panic(fmt.Sprintf("storage: drawing invalid energy %v", e))
	}
	need := e / s.dischargeEff // stored energy required
	taken := math.Min(need, s.level)
	s.level -= taken
	delivered = taken * s.dischargeEff
	s.totalDrawn += delivered
	return delivered
}

// RunFor answers how long the store can sustain a constant net drain of
// rate > 0 (stored-energy units per time) before emptying. It does not
// mutate the store.
func (s *Store) RunFor(rate float64) float64 {
	if rate <= 0 {
		panic(fmt.Sprintf("storage: RunFor with non-positive rate %v", rate))
	}
	return s.level / rate
}

// FillFor answers how long a constant net inflow of rate > 0 takes to fill
// the store. It returns +Inf for an infinite store. It does not mutate.
func (s *Store) FillFor(rate float64) float64 {
	if rate <= 0 {
		panic(fmt.Sprintf("storage: FillFor with non-positive rate %v", rate))
	}
	if math.IsInf(s.capacity, 1) {
		return math.Inf(1)
	}
	return (s.capacity - s.level) / rate
}

// Leak applies self-discharge over dt time units.
func (s *Store) Leak(dt float64) {
	if dt < 0 {
		panic(fmt.Sprintf("storage: negative leak interval %v", dt))
	}
	if s.leakRate == 0 {
		return
	}
	lost := math.Min(s.leakRate*dt, s.level)
	s.level -= lost
	s.totalLeaked += lost
}

// Meters is the cumulative energy accounting of a store.
type Meters struct {
	Harvested float64 // offered by the source
	Stored    float64 // accepted into the store
	Overflow  float64 // discarded, store full
	Drawn     float64 // delivered to the load
	Leaked    float64 // lost to self-discharge
}

// Meters returns a snapshot of the cumulative accounting.
func (s *Store) Meters() Meters {
	return Meters{
		Harvested: s.totalHarvested,
		Stored:    s.totalStored,
		Overflow:  s.totalOverflow,
		Drawn:     s.totalDrawn,
		Leaked:    s.totalLeaked,
	}
}

// ConservationError returns the discrepancy in the store's energy balance:
// initial + stored − drawnFromStore − leaked − level. For a correct store it
// is ~0 up to floating-point error; the engine asserts this each run.
func (s *Store) ConservationError(initial float64) float64 {
	if math.IsInf(s.capacity, 1) {
		return 0 // balance not meaningful with infinite terms
	}
	drawnFromStore := s.totalDrawn / s.dischargeEff
	return initial + s.totalStored - drawnFromStore - s.totalLeaked - s.level
}
