package storage

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHybridImplementsReservoir(t *testing.T) {
	var _ Reservoir = NewHybrid(10, 10, 100, 50, 0.8)
	var _ Reservoir = New(10, 5)
}

func TestHybridLevelAndCapacity(t *testing.T) {
	h := NewHybrid(10, 4, 100, 60, 0.9)
	if h.Level() != 64 || h.Capacity() != 110 {
		t.Fatalf("level/cap = %v/%v", h.Level(), h.Capacity())
	}
	if h.CapLevel() != 4 || h.BattLevel() != 60 {
		t.Fatalf("tier levels = %v/%v", h.CapLevel(), h.BattLevel())
	}
}

func TestHybridValidation(t *testing.T) {
	for i, f := range []func(){
		func() { NewHybrid(10, 4, 100, 60, 0) },
		func() { NewHybrid(10, 4, 100, 60, 1.5) },
		func() { NewHybrid(10, 12, 100, 60, 0.9) }, // cap level > size
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestHybridChargePriority(t *testing.T) {
	// Surplus fills the supercap first.
	h := NewHybrid(10, 0, 100, 0, 0.8)
	h.Flow(5, 0, 1) // 5 energy surplus
	if math.Abs(h.CapLevel()-5) > 1e-9 || h.BattLevel() != 0 {
		t.Fatalf("tiers after partial charge = %v/%v", h.CapLevel(), h.BattLevel())
	}
	// Next 2 units fill the cap (10) and spill 5 into the battery at 0.8.
	h.Flow(5, 0, 2)
	if math.Abs(h.CapLevel()-10) > 1e-9 {
		t.Fatalf("cap = %v, want full", h.CapLevel())
	}
	if math.Abs(h.BattLevel()-4) > 1e-9 {
		t.Fatalf("battery = %v, want 5*0.8 = 4", h.BattLevel())
	}
}

func TestHybridOverflowWhenBothFull(t *testing.T) {
	h := NewHybrid(10, 10, 20, 20, 0.8)
	_, overflow := h.Flow(3, 1, 2) // surplus 2/unit for 2 units
	if math.Abs(overflow-4) > 1e-9 {
		t.Fatalf("overflow = %v, want 4", overflow)
	}
}

func TestHybridDrainPriority(t *testing.T) {
	h := NewHybrid(10, 6, 100, 50, 0.8)
	// Deficit 3/unit for 2 units: 6 from the supercap exactly.
	h.Flow(1, 4, 2)
	if math.Abs(h.CapLevel()) > 1e-9 {
		t.Fatalf("cap = %v, want drained", h.CapLevel())
	}
	if math.Abs(h.BattLevel()-50) > 1e-9 {
		t.Fatalf("battery touched early: %v", h.BattLevel())
	}
	// Two more units: 6 delivered from the battery costs 6/0.8 = 7.5.
	h.Flow(1, 4, 2)
	if math.Abs(h.BattLevel()-42.5) > 1e-9 {
		t.Fatalf("battery = %v, want 42.5", h.BattLevel())
	}
}

func TestHybridTimeToEmpty(t *testing.T) {
	h := NewHybrid(10, 6, 100, 40, 0.8)
	// Deficit 2: 6/2 = 3 from cap, 40*0.8/2 = 16 from battery → 19.
	if got := h.TimeToEmpty(1, 3); math.Abs(got-19) > 1e-9 {
		t.Fatalf("TTE = %v, want 19", got)
	}
	if got := h.TimeToEmpty(3, 3); !math.IsInf(got, 1) {
		t.Fatalf("TTE balanced = %v, want +Inf", got)
	}
}

func TestHybridFlowPanicsPastEmpty(t *testing.T) {
	h := NewHybrid(10, 1, 100, 0, 0.8)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic past empty")
		}
	}()
	h.Flow(0, 2, 1)
}

func TestHybridDraw(t *testing.T) {
	h := NewHybrid(10, 3, 100, 10, 0.5)
	got := h.Draw(5) // 3 from cap, 2 delivered from battery costs 4
	if math.Abs(got-5) > 1e-9 {
		t.Fatalf("draw = %v", got)
	}
	if math.Abs(h.BattLevel()-6) > 1e-9 {
		t.Fatalf("battery = %v, want 6", h.BattLevel())
	}
}

func TestHybridConservation(t *testing.T) {
	h := NewHybrid(10, 5, 100, 30, 0.8)
	initial := h.Level()
	// A mixed sequence with crossings, respecting TTE.
	flows := [][3]float64{{5, 1, 4}, {0, 2, 3}, {8, 1, 5}, {0, 3, 2}, {2, 2, 6}}
	for _, f := range flows {
		ps, pc, dt := f[0], f[1], f[2]
		tte := h.TimeToEmpty(ps, pc)
		if dt > tte {
			dt = tte
		}
		h.Flow(ps, pc, dt)
	}
	if err := h.ConservationError(initial); math.Abs(err) > 1e-6 {
		t.Fatalf("conservation error = %v", err)
	}
}

// Property: level bounds and conservation hold for arbitrary flow
// sequences split at TTE like the engine does.
func TestHybridInvariantsProperty(t *testing.T) {
	f := func(ops []struct{ Ps, Pc, Dt uint8 }) bool {
		h := NewHybrid(20, 10, 200, 100, 0.85)
		initial := h.Level()
		if len(ops) > 60 {
			ops = ops[:60]
		}
		for _, o := range ops {
			ps := float64(o.Ps) / 16
			pc := float64(o.Pc) / 16
			dt := float64(o.Dt) / 64
			tte := h.TimeToEmpty(ps, pc)
			if dt >= tte {
				h.Flow(ps, pc, tte)
				h.Flow(ps, 0, dt-tte)
			} else {
				h.Flow(ps, pc, dt)
			}
			if h.Level() < -1e-9 || h.Level() > h.Capacity()+1e-9 {
				return false
			}
			if h.CapLevel() > 20+1e-9 || h.BattLevel() > 200+1e-9 {
				return false
			}
		}
		return math.Abs(h.ConservationError(initial)) < 1e-6*(1+h.Meters().Harvested)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestHybridMeters(t *testing.T) {
	h := NewHybrid(10, 0, 100, 0, 0.8)
	h.Flow(4, 1, 10) // 40 harvested, 10 delivered
	m := h.Meters()
	if math.Abs(m.Harvested-40) > 1e-9 {
		t.Fatalf("harvested = %v", m.Harvested)
	}
	if math.Abs(m.Drawn-10) > 1e-9 {
		t.Fatalf("drawn = %v", m.Drawn)
	}
}
