package storage

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewIdealStartsFull(t *testing.T) {
	s := NewIdeal(100)
	if s.Level() != 100 || s.Capacity() != 100 || !s.Full() {
		t.Fatalf("ideal store: level=%v cap=%v full=%v", s.Level(), s.Capacity(), s.Full())
	}
}

func TestHarvestOverflow(t *testing.T) {
	s := New(10, 8)
	over := s.Harvest(5)
	if s.Level() != 10 {
		t.Fatalf("level = %v, want 10", s.Level())
	}
	if over != 3 {
		t.Fatalf("overflow = %v, want 3", over)
	}
	m := s.Meters()
	if m.Harvested != 5 || m.Stored != 2 || m.Overflow != 3 {
		t.Fatalf("meters = %+v", m)
	}
}

func TestHarvestIntoFullStoreDiscardsAll(t *testing.T) {
	s := NewIdeal(10)
	if over := s.Harvest(4); over != 4 {
		t.Fatalf("overflow = %v, want 4", over)
	}
}

func TestDrawPartialWhenEmptying(t *testing.T) {
	s := New(10, 3)
	got := s.Draw(5)
	if got != 3 {
		t.Fatalf("delivered = %v, want 3", got)
	}
	if !s.Empty() {
		t.Fatalf("store not empty after over-draw, level %v", s.Level())
	}
}

func TestDrawZero(t *testing.T) {
	s := New(10, 5)
	if got := s.Draw(0); got != 0 {
		t.Fatalf("Draw(0) = %v", got)
	}
	if s.Level() != 5 {
		t.Fatalf("Draw(0) changed level to %v", s.Level())
	}
}

func TestInfiniteCapacity(t *testing.T) {
	s := New(math.Inf(1), 50)
	if over := s.Harvest(1e12); over != 0 {
		t.Fatalf("infinite store overflowed %v", over)
	}
	if s.Full() {
		t.Fatal("infinite store reports full")
	}
	if got := s.Draw(1e6); got != 1e6 {
		t.Fatalf("infinite store delivered %v", got)
	}
	if got := s.FillFor(1); !math.IsInf(got, 1) {
		t.Fatalf("FillFor on infinite store = %v", got)
	}
}

func TestRunForFillFor(t *testing.T) {
	s := New(100, 40)
	if got := s.RunFor(8); got != 5 {
		t.Fatalf("RunFor = %v, want 5", got)
	}
	if got := s.FillFor(12); got != 5 {
		t.Fatalf("FillFor = %v, want 5", got)
	}
}

func TestChargeEfficiency(t *testing.T) {
	s := New(100, 0, WithChargeEfficiency(0.5))
	over := s.Harvest(10)
	if s.Level() != 5 || over != 0 {
		t.Fatalf("level = %v over = %v, want 5, 0", s.Level(), over)
	}
}

func TestDischargeEfficiency(t *testing.T) {
	s := New(100, 10, WithDischargeEfficiency(0.5))
	got := s.Draw(4) // needs 8 stored
	if got != 4 {
		t.Fatalf("delivered = %v, want 4", got)
	}
	if s.Level() != 2 {
		t.Fatalf("level = %v, want 2", s.Level())
	}
	// Draining the rest delivers only level*eff.
	got = s.Draw(100)
	if math.Abs(got-1) > 1e-12 {
		t.Fatalf("final draw delivered = %v, want 1", got)
	}
}

func TestLeakage(t *testing.T) {
	s := New(100, 10, WithLeakage(2))
	s.Leak(3)
	if s.Level() != 4 {
		t.Fatalf("level after leak = %v, want 4", s.Level())
	}
	s.Leak(10)
	if s.Level() != 0 {
		t.Fatalf("level = %v, want clamped 0", s.Level())
	}
	if m := s.Meters(); m.Leaked != 10 {
		t.Fatalf("leaked meter = %v, want 10", m.Leaked)
	}
}

func TestLeakZeroRateNoop(t *testing.T) {
	s := New(100, 10)
	s.Leak(50)
	if s.Level() != 10 {
		t.Fatalf("ideal store leaked: level %v", s.Level())
	}
}

func TestFraction(t *testing.T) {
	s := New(200, 50)
	if s.Fraction() != 0.25 {
		t.Fatalf("Fraction = %v, want 0.25", s.Fraction())
	}
	if f := New(math.Inf(1), 10).Fraction(); f != 0 {
		t.Fatalf("infinite-store fraction = %v, want 0", f)
	}
}

func TestValidation(t *testing.T) {
	cases := []func(){
		func() { New(-1, 0) },
		func() { New(10, -1) },
		func() { New(10, 11) },
		func() { New(10, math.NaN()) },
		func() { New(10, 5, WithChargeEfficiency(0)) },
		func() { New(10, 5, WithDischargeEfficiency(1.5)) },
		func() { New(10, 5, WithLeakage(-1)) },
		func() { New(10, 5).Harvest(-1) },
		func() { New(10, 5).Draw(math.NaN()) },
		func() { New(10, 5).RunFor(0) },
		func() { New(10, 5).FillFor(-1) },
		func() { New(10, 5).Leak(-1) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("validation case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

// Property: under any interleaving of harvest/draw/leak operations the
// level stays within [0, C] and energy is conserved.
func TestInvariantsProperty(t *testing.T) {
	type op struct {
		Kind uint8
		Amt  uint16
	}
	f := func(capRaw uint16, initFrac uint8, ops []op) bool {
		capacity := 1 + float64(capRaw%5000)
		initial := capacity * float64(initFrac) / 255
		s := New(capacity, initial, WithChargeEfficiency(0.9), WithDischargeEfficiency(0.8), WithLeakage(0.01))
		if len(ops) > 300 {
			ops = ops[:300]
		}
		for _, o := range ops {
			amt := float64(o.Amt) / 16
			switch o.Kind % 3 {
			case 0:
				s.Harvest(amt)
			case 1:
				s.Draw(amt)
			case 2:
				s.Leak(amt / 100)
			}
			if s.Level() < -1e-9 || s.Level() > capacity+1e-9 {
				return false
			}
		}
		return math.Abs(s.ConservationError(initial)) < 1e-6*(1+initial+s.Meters().Harvested)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: overflow + stored*(1/eff adjustments) equals offered harvest.
func TestHarvestPartitionProperty(t *testing.T) {
	f := func(capRaw, lvlRaw, amtRaw uint16) bool {
		capacity := 1 + float64(capRaw%1000)
		level := math.Min(float64(lvlRaw%1000), capacity)
		s := New(capacity, level)
		amt := float64(amtRaw) / 8
		over := s.Harvest(amt)
		m := s.Meters()
		return math.Abs(m.Stored+over-amt) < 1e-9 && over >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestConservationIdeal(t *testing.T) {
	s := New(100, 60)
	s.Harvest(30)
	s.Draw(45)
	s.Harvest(80) // overflows
	s.Draw(10)
	if err := s.ConservationError(60); math.Abs(err) > 1e-9 {
		t.Fatalf("conservation error = %v", err)
	}
}
