package metrics

import (
	"math"
	"testing"
)

// TestWelfordMerge covers every structural branch of the parallel
// combination: empty+empty, empty+many, many+empty, single+many, and the
// general case checked against a single sequential accumulator over the
// concatenated observations.
func TestWelfordMerge(t *testing.T) {
	t.Run("empty+empty", func(t *testing.T) {
		var a, b Welford
		a.Merge(b)
		if a.N() != 0 || a.Mean() != 0 || a.Variance() != 0 {
			t.Fatalf("merging two empty accumulators must stay empty: %+v", a)
		}
	})
	t.Run("empty+many", func(t *testing.T) {
		var a, b Welford
		for _, x := range []float64{1, 2, 3, 4} {
			b.Add(x)
		}
		a.Merge(b)
		if a.N() != 4 || a.Mean() != b.Mean() || a.Variance() != b.Variance() {
			t.Fatalf("merge into empty must copy: %+v vs %+v", a, b)
		}
	})
	t.Run("many+empty", func(t *testing.T) {
		var a, b Welford
		for _, x := range []float64{5, 7} {
			a.Add(x)
		}
		before := a
		a.Merge(b)
		if a != before {
			t.Fatalf("merging an empty accumulator must be a no-op: %+v vs %+v", a, before)
		}
	})
	t.Run("single+many", func(t *testing.T) {
		var single, many, seq Welford
		single.Add(10)
		for _, x := range []float64{1, 2, 3, 4, 5} {
			many.Add(x)
			seq.Add(x)
		}
		seq.Add(10)
		single.Merge(many)
		if single.N() != 6 {
			t.Fatalf("n = %d, want 6", single.N())
		}
		if math.Abs(single.Mean()-seq.Mean()) > 1e-12 {
			t.Fatalf("mean %v != sequential %v", single.Mean(), seq.Mean())
		}
		if math.Abs(single.Variance()-seq.Variance()) > 1e-12 {
			t.Fatalf("variance %v != sequential %v", single.Variance(), seq.Variance())
		}
	})
	t.Run("general split equals sequential", func(t *testing.T) {
		xs := []float64{0.5, -3, 2.25, 100, 1e-9, 42, 42, 7.5, -0.125, 9}
		for split := 0; split <= len(xs); split++ {
			var left, right, seq Welford
			for i, x := range xs {
				if i < split {
					left.Add(x)
				} else {
					right.Add(x)
				}
				seq.Add(x)
			}
			left.Merge(right)
			if left.N() != seq.N() {
				t.Fatalf("split %d: n %d != %d", split, left.N(), seq.N())
			}
			if math.Abs(left.Mean()-seq.Mean()) > 1e-9 {
				t.Fatalf("split %d: mean %v != %v", split, left.Mean(), seq.Mean())
			}
			if math.Abs(left.Variance()-seq.Variance()) > 1e-9 {
				t.Fatalf("split %d: variance %v != %v", split, left.Variance(), seq.Variance())
			}
		}
	})
}
