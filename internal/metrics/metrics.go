// Package metrics provides the statistics machinery behind the paper's
// evaluation: sampled time series (the remaining-energy curves of Figures
// 6–7), online mean/variance accumulators for replicated experiments, and
// deadline-miss accounting (Figures 8–9).
package metrics

import (
	"fmt"
	"math"
)

// Welford is a numerically stable online mean/variance accumulator.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// Merge folds another accumulator into w as if every observation behind o
// had been Added to w (Chan et al.'s parallel combination). Merging an
// empty accumulator is a no-op; merging into an empty one copies. The
// result is order-independent in the usual parallel-reduction sense but,
// like Add, not bit-identical to any particular Add order.
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	nw, no := float64(w.n), float64(o.n)
	n := nw + no
	d := o.mean - w.mean
	w.mean += d * no / n
	w.m2 += o.m2 + d*d*nw*no/n
	w.n += o.n
}

// N returns the number of observations.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (0 for no observations).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance (0 for n < 2).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// StdErr returns the standard error of the mean.
func (w *Welford) StdErr() float64 {
	if w.n == 0 {
		return 0
	}
	return w.StdDev() / math.Sqrt(float64(w.n))
}

// Series is a uniformly sampled time series: value[i] applies at time
// Start + i*Step. Figures 6–7 are Series sampled once per time unit.
type Series struct {
	Start  float64
	Step   float64
	Values []float64
}

// NewSeries allocates a series of n samples.
func NewSeries(start, step float64, n int) *Series {
	if step <= 0 || n < 0 {
		panic(fmt.Sprintf("metrics: invalid series spec step=%v n=%d", step, n))
	}
	return &Series{Start: start, Step: step, Values: make([]float64, n)}
}

// Len returns the sample count.
func (s *Series) Len() int { return len(s.Values) }

// TimeAt returns the timestamp of sample i.
func (s *Series) TimeAt(i int) float64 { return s.Start + float64(i)*s.Step }

// Mean returns the average of all samples (0 when empty).
func (s *Series) Mean() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.Values {
		sum += v
	}
	return sum / float64(len(s.Values))
}

// MeanSeries averages several equally shaped series pointwise — the
// paper's "weighted average of normalized remaining energy for each
// capacity … each normalized remaining energy having the same weight"
// (§5.2). Shapes must match.
func MeanSeries(series []*Series) *Series {
	if len(series) == 0 {
		panic("metrics: MeanSeries of nothing")
	}
	first := series[0]
	out := NewSeries(first.Start, first.Step, first.Len())
	for _, s := range series {
		if s.Len() != first.Len() || s.Start != first.Start || s.Step != first.Step {
			panic("metrics: MeanSeries shape mismatch")
		}
		for i, v := range s.Values {
			out.Values[i] += v
		}
	}
	for i := range out.Values {
		out.Values[i] /= float64(len(series))
	}
	return out
}

// Downsample returns every k-th sample (k >= 1), for compact reporting.
func (s *Series) Downsample(k int) *Series {
	if k < 1 {
		panic("metrics: downsample factor < 1")
	}
	out := &Series{Start: s.Start, Step: s.Step * float64(k)}
	for i := 0; i < len(s.Values); i += k {
		out.Values = append(out.Values, s.Values[i])
	}
	return out
}

// MissStats tallies deadline outcomes.
type MissStats struct {
	Released int
	Finished int
	Missed   int
}

// Rate returns Missed/Released, the paper's deadline miss rate; 0 when
// nothing was released.
func (m MissStats) Rate() float64 {
	if m.Released == 0 {
		return 0
	}
	return float64(m.Missed) / float64(m.Released)
}

// Add accumulates another tally.
func (m *MissStats) Add(o MissStats) {
	m.Released += o.Released
	m.Finished += o.Finished
	m.Missed += o.Missed
}

// Check verifies internal consistency: outcomes partition releases for a
// completed run (every released job either finished or missed).
func (m MissStats) Check() error {
	if m.Released < 0 || m.Finished < 0 || m.Missed < 0 {
		return fmt.Errorf("metrics: negative tally %+v", m)
	}
	if m.Finished+m.Missed > m.Released {
		return fmt.Errorf("metrics: outcomes exceed releases %+v", m)
	}
	return nil
}

// Degradation tallies graceful-degradation events: how often and how hard
// injected faults (internal/fault) bent a run away from its nominal
// behaviour. The engine records these instead of failing, so experiments
// can quantify robustness ("how does the miss rate respond to harvester
// dropouts?") rather than crash. The zero value means a clean run.
type Degradation struct {
	SourceFaultTime float64 // time the harvester was in dropout/brown-out
	LeakSpikeTime   float64 // time the store leaked at the spiked rate
	DVFSStuckTime   float64 // time DVFS transitions were inhibited
	BlackoutTime    float64 // time the predictor was blind

	FadeEnergy      float64 // energy lost to storage capacity fade
	LeakSpikeEnergy float64 // energy lost to leakage spikes
	OverrunWork     float64 // actual work executed beyond declared WCETs

	DVFSClamps     int // decisions whose requested level was overridden
	StaleForecasts int // predictor observations dropped
	Overruns       int // jobs whose actual work exceeded their WCET
}

// Any reports whether any degradation was recorded.
func (d Degradation) Any() bool {
	return d != Degradation{}
}

// Add accumulates another tally.
func (d *Degradation) Add(o Degradation) {
	d.SourceFaultTime += o.SourceFaultTime
	d.LeakSpikeTime += o.LeakSpikeTime
	d.DVFSStuckTime += o.DVFSStuckTime
	d.BlackoutTime += o.BlackoutTime
	d.FadeEnergy += o.FadeEnergy
	d.LeakSpikeEnergy += o.LeakSpikeEnergy
	d.OverrunWork += o.OverrunWork
	d.DVFSClamps += o.DVFSClamps
	d.StaleForecasts += o.StaleForecasts
	d.Overruns += o.Overruns
}

// Histogram is a fixed-width bucket histogram over [Lo, Hi); out-of-range
// observations clamp into the edge buckets.
type Histogram struct {
	Lo, Hi  float64
	Buckets []int
	count   int
}

// NewHistogram allocates n buckets over [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if hi <= lo || n <= 0 {
		panic(fmt.Sprintf("metrics: invalid histogram [%v,%v)x%d", lo, hi, n))
	}
	return &Histogram{Lo: lo, Hi: hi, Buckets: make([]int, n)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	n := len(h.Buckets)
	i := int(float64(n) * (x - h.Lo) / (h.Hi - h.Lo))
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	h.Buckets[i]++
	h.count++
}

// Count returns total observations.
func (h *Histogram) Count() int { return h.count }

// Quantile returns the q-quantile (0 <= q <= 1) as the midpoint of the
// bucket containing it; 0 when empty.
func (h *Histogram) Quantile(q float64) float64 {
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("metrics: quantile %v outside [0,1]", q))
	}
	if h.count == 0 {
		return 0
	}
	target := q * float64(h.count)
	cum := 0.0
	width := (h.Hi - h.Lo) / float64(len(h.Buckets))
	for i, c := range h.Buckets {
		cum += float64(c)
		if cum >= target {
			return h.Lo + (float64(i)+0.5)*width
		}
	}
	return h.Hi - width/2
}
