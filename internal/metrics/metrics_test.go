package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWelfordAgainstDirect(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	if w.N() != len(xs) {
		t.Fatalf("N = %d", w.N())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Fatalf("mean = %v, want 5", w.Mean())
	}
	// Direct unbiased variance: sum((x-5)^2)/(n-1) = 32/7.
	if math.Abs(w.Variance()-32.0/7) > 1e-12 {
		t.Fatalf("variance = %v, want %v", w.Variance(), 32.0/7)
	}
	if math.Abs(w.StdDev()-math.Sqrt(32.0/7)) > 1e-12 {
		t.Fatalf("stddev = %v", w.StdDev())
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.StdErr() != 0 {
		t.Fatal("empty accumulator not zero")
	}
	w.Add(3)
	if w.Mean() != 3 || w.Variance() != 0 {
		t.Fatal("single observation stats wrong")
	}
}

func TestWelfordMatchesNaiveProperty(t *testing.T) {
	f := func(raw []int8) bool {
		if len(raw) < 2 {
			return true
		}
		var w Welford
		sum := 0.0
		for _, v := range raw {
			w.Add(float64(v))
			sum += float64(v)
		}
		mean := sum / float64(len(raw))
		var ss float64
		for _, v := range raw {
			ss += (float64(v) - mean) * (float64(v) - mean)
		}
		naiveVar := ss / float64(len(raw)-1)
		return math.Abs(w.Mean()-mean) < 1e-9 && math.Abs(w.Variance()-naiveVar) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSeriesBasics(t *testing.T) {
	s := NewSeries(0, 2, 5)
	if s.Len() != 5 || s.TimeAt(3) != 6 {
		t.Fatalf("series shape wrong: len %d t3 %v", s.Len(), s.TimeAt(3))
	}
	for i := range s.Values {
		s.Values[i] = float64(i)
	}
	if s.Mean() != 2 {
		t.Fatalf("series mean = %v, want 2", s.Mean())
	}
}

func TestSeriesValidation(t *testing.T) {
	for i, f := range []func(){
		func() { NewSeries(0, 0, 3) },
		func() { NewSeries(0, 1, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestMeanSeries(t *testing.T) {
	a := NewSeries(0, 1, 3)
	b := NewSeries(0, 1, 3)
	copy(a.Values, []float64{1, 2, 3})
	copy(b.Values, []float64{3, 4, 5})
	m := MeanSeries([]*Series{a, b})
	want := []float64{2, 3, 4}
	for i := range want {
		if m.Values[i] != want[i] {
			t.Fatalf("mean series = %v", m.Values)
		}
	}
}

func TestMeanSeriesShapeMismatchPanics(t *testing.T) {
	a := NewSeries(0, 1, 3)
	b := NewSeries(0, 1, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch did not panic")
		}
	}()
	MeanSeries([]*Series{a, b})
}

func TestDownsample(t *testing.T) {
	s := NewSeries(0, 1, 10)
	for i := range s.Values {
		s.Values[i] = float64(i)
	}
	d := s.Downsample(3)
	if d.Step != 3 {
		t.Fatalf("downsampled step = %v", d.Step)
	}
	want := []float64{0, 3, 6, 9}
	if len(d.Values) != len(want) {
		t.Fatalf("downsampled to %d values", len(d.Values))
	}
	for i := range want {
		if d.Values[i] != want[i] {
			t.Fatalf("downsample = %v", d.Values)
		}
	}
}

func TestMissStats(t *testing.T) {
	m := MissStats{Released: 10, Finished: 7, Missed: 3}
	if m.Rate() != 0.3 {
		t.Fatalf("rate = %v", m.Rate())
	}
	if err := m.Check(); err != nil {
		t.Fatal(err)
	}
	var zero MissStats
	if zero.Rate() != 0 {
		t.Fatal("empty rate not 0")
	}
	m.Add(MissStats{Released: 10, Finished: 10})
	if m.Released != 20 || m.Missed != 3 || m.Rate() != 0.15 {
		t.Fatalf("after Add: %+v", m)
	}
	bad := MissStats{Released: 2, Finished: 2, Missed: 1}
	if bad.Check() == nil {
		t.Fatal("inconsistent tally accepted")
	}
	neg := MissStats{Released: -1}
	if neg.Check() == nil {
		t.Fatal("negative tally accepted")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 100; i++ {
		h.Add(float64(i) / 10) // 0..9.9
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	med := h.Quantile(0.5)
	if med < 4 || med > 6 {
		t.Fatalf("median = %v, want ~5", med)
	}
	// Clamping.
	h.Add(-5)
	h.Add(50)
	if h.Buckets[0] < 1 || h.Buckets[9] < 1 {
		t.Fatal("out-of-range samples not clamped to edge buckets")
	}
}

func TestHistogramEmptyQuantile(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile not 0")
	}
}

func TestHistogramValidation(t *testing.T) {
	for i, f := range []func(){
		func() { NewHistogram(1, 1, 4) },
		func() { NewHistogram(0, 1, 0) },
		func() { NewHistogram(0, 1, 4).Quantile(1.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}
