package cpu

import (
	"math"
	"testing"
	"testing/quick"
)

func TestXScaleShape(t *testing.T) {
	c := XScale()
	if c.Levels() != 5 {
		t.Fatalf("levels = %d, want 5", c.Levels())
	}
	wantSpeeds := []float64{0.15, 0.4, 0.6, 0.8, 1.0}
	wantPowers := []float64{0.08, 0.4, 1.0, 2.0, 3.2}
	for n := 0; n < 5; n++ {
		if math.Abs(c.Speed(n)-wantSpeeds[n]) > 1e-12 {
			t.Fatalf("speed[%d] = %v, want %v", n, c.Speed(n), wantSpeeds[n])
		}
		if c.Power(n) != wantPowers[n] {
			t.Fatalf("power[%d] = %v, want %v", n, c.Power(n), wantPowers[n])
		}
	}
	if c.MaxPower() != 3.2 || c.MaxLevel() != 4 {
		t.Fatalf("max power/level = %v/%d", c.MaxPower(), c.MaxLevel())
	}
}

func TestXScaleMilliwattsMatchesPaper(t *testing.T) {
	c := XScaleMilliwatts()
	want := []float64{80, 400, 1000, 2000, 3200}
	for n, w := range want {
		if c.Power(n) != w {
			t.Fatalf("power[%d] = %v, want %v mW", n, c.Power(n), w)
		}
	}
}

func TestSortingOnConstruction(t *testing.T) {
	c := New("p", []OperatingPoint{
		{FreqMHz: 1000, Power: 10},
		{FreqMHz: 250, Power: 1},
		{FreqMHz: 500, Power: 3},
	})
	if c.Speed(0) != 0.25 || c.Speed(1) != 0.5 || c.Speed(2) != 1 {
		t.Fatalf("points not sorted: speeds %v %v %v", c.Speed(0), c.Speed(1), c.Speed(2))
	}
}

func TestValidation(t *testing.T) {
	cases := []func(){
		func() { New("x", nil) },
		func() { New("x", []OperatingPoint{{FreqMHz: 0, Power: 1}}) },
		func() { New("x", []OperatingPoint{{FreqMHz: 100, Power: 0}}) },
		func() { New("x", []OperatingPoint{{FreqMHz: 100, Power: 1}, {FreqMHz: 100, Power: 2}}) },
		// dominated point: faster but cheaper would make slow point useless
		func() { New("x", []OperatingPoint{{FreqMHz: 100, Power: 5}, {FreqMHz: 200, Power: 3}}) },
		func() { New("x", []OperatingPoint{{FreqMHz: 100, Power: 1}}, WithIdlePower(-1)) },
		func() { New("x", []OperatingPoint{{FreqMHz: 100, Power: 1}}, WithSwitchOverhead(-1, 0)) },
		func() { TwoSpeed(0) },
		func() { Cubic("c", 0, 1000, 3, 0) },
		func() { Cubic("c", 4, 1000, 1, 2) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("validation case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestExecTimeEnergy(t *testing.T) {
	c := XScale()
	// 4 units of work at level 1 (speed 0.4): time 10, energy 0.4*10 = 4.
	if got := c.ExecTime(4, 1); math.Abs(got-10) > 1e-12 {
		t.Fatalf("ExecTime = %v, want 10", got)
	}
	if got := c.ExecEnergy(4, 1); math.Abs(got-4) > 1e-12 {
		t.Fatalf("ExecEnergy = %v, want 4", got)
	}
}

func TestMinLevelFor(t *testing.T) {
	c := XScale()
	// work 4, window 30: 4/0.15=26.7 <= 30 → level 0.
	if n, ok := c.MinLevelFor(4, 30); !ok || n != 0 {
		t.Fatalf("MinLevelFor(4,30) = %d,%v", n, ok)
	}
	// window 8: need speed >= 0.5 → level 2 (0.6).
	if n, ok := c.MinLevelFor(4, 8); !ok || n != 2 {
		t.Fatalf("MinLevelFor(4,8) = %d,%v", n, ok)
	}
	// window 4: speed 1 → max level.
	if n, ok := c.MinLevelFor(4, 4); !ok || n != 4 {
		t.Fatalf("MinLevelFor(4,4) = %d,%v", n, ok)
	}
	// infeasible window.
	if n, ok := c.MinLevelFor(4, 3.9); ok || n != c.MaxLevel() {
		t.Fatalf("MinLevelFor(4,3.9) = %d,%v, want maxlevel,false", n, ok)
	}
	// zero work.
	if n, ok := c.MinLevelFor(0, 0); !ok || n != 0 {
		t.Fatalf("MinLevelFor(0,0) = %d,%v", n, ok)
	}
	// zero window, positive work.
	if _, ok := c.MinLevelFor(1, 0); ok {
		t.Fatal("MinLevelFor(1,0) claimed feasible")
	}
}

// Property: the chosen level always satisfies ineq. (6) when feasible, and
// no lower level does.
func TestMinLevelForMinimalityProperty(t *testing.T) {
	c := XScale()
	f := func(workRaw, winRaw uint16) bool {
		work := float64(workRaw%200) / 10
		window := float64(winRaw%400) / 10
		n, ok := c.MinLevelFor(work, window)
		if !ok {
			// even fmax must fail
			return work/c.Speed(c.MaxLevel()) > window
		}
		if work > 0 && work/c.Speed(n) > window+1e-12 {
			return false
		}
		if n > 0 && work > 0 && work/c.Speed(n-1) <= window {
			return false // a lower level was feasible
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Energy per work must strictly increase with level for XScale — the
// premise that makes slowing down worthwhile.
func TestEnergyPerWorkMonotone(t *testing.T) {
	c := XScale()
	for n := 1; n < c.Levels(); n++ {
		if c.EnergyPerWork(n) <= c.EnergyPerWork(n-1) {
			t.Fatalf("energy/work not increasing at level %d: %v <= %v",
				n, c.EnergyPerWork(n), c.EnergyPerWork(n-1))
		}
	}
}

func TestTwoSpeedMatchesMotivationalExample(t *testing.T) {
	c := TwoSpeed(8)
	if c.Levels() != 2 {
		t.Fatalf("levels = %d", c.Levels())
	}
	if c.Speed(0) != 0.5 || c.Speed(1) != 1 {
		t.Fatalf("speeds %v, %v", c.Speed(0), c.Speed(1))
	}
	if math.Abs(c.Power(0)-8.0/3) > 1e-12 || c.Power(1) != 8 {
		t.Fatalf("powers %v, %v", c.Power(0), c.Power(1))
	}
	// §2 arithmetic: running w=4 at low speed takes 8 time and consumes
	// 4/(1/2) * 8/3 = 64/3 ≈ 21.33 energy; paper computes 24+8-this = 32/3.
	e := c.ExecEnergy(4, 0)
	if math.Abs(e-64.0/3) > 1e-9 {
		t.Fatalf("low-speed energy = %v, want 64/3", e)
	}
	if math.Abs((32-e)-32.0/3) > 1e-9 {
		t.Fatalf("remaining energy = %v, want 32/3", 32-e)
	}
}

func TestFig3Processor(t *testing.T) {
	c := Fig3()
	if c.Speed(0) != 0.25 || c.Power(0) != 1 || c.MaxPower() != 8 {
		t.Fatalf("fig3 = S0 %v P0 %v Pmax %v", c.Speed(0), c.Power(0), c.MaxPower())
	}
}

func TestCubicModel(t *testing.T) {
	c := Cubic("c", 4, 1000, 3.2, 0.1)
	if c.Levels() != 4 {
		t.Fatalf("levels = %d", c.Levels())
	}
	if math.Abs(c.MaxPower()-3.2) > 1e-12 {
		t.Fatalf("pmax = %v", c.MaxPower())
	}
	// P(f) - static must scale as f^3.
	p1 := c.Power(0) - 0.1
	p4 := c.Power(3) - 0.1
	if math.Abs(p4/p1-64) > 1e-9 {
		t.Fatalf("cubic scaling: ratio = %v, want 64", p4/p1)
	}
}

func TestOptions(t *testing.T) {
	c := New("o", []OperatingPoint{{FreqMHz: 100, Power: 1}},
		WithIdlePower(0.05), WithSwitchOverhead(0.001, 0.002))
	if c.IdlePower() != 0.05 {
		t.Fatalf("idle = %v", c.IdlePower())
	}
	st, se := c.SwitchOverhead()
	if st != 0.001 || se != 0.002 {
		t.Fatalf("switch overhead = %v, %v", st, se)
	}
}

func TestLevelBoundsPanic(t *testing.T) {
	c := XScale()
	for _, n := range []int{-1, 5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("level %d did not panic", n)
				}
			}()
			c.Speed(n)
		}()
	}
}

func TestPXA270Preset(t *testing.T) {
	c := PXA270()
	if c.Levels() != 6 {
		t.Fatalf("levels = %d", c.Levels())
	}
	if c.Speed(c.MaxLevel()) != 1 {
		t.Fatal("max speed not normalized to 1")
	}
	// Energy per work must still be increasing — the premise of DVFS.
	for n := 1; n < c.Levels(); n++ {
		if c.EnergyPerWork(n) <= c.EnergyPerWork(n-1) {
			t.Fatalf("energy/work not increasing at level %d", n)
		}
	}
}

func TestSensorNodeMCUPreset(t *testing.T) {
	c := SensorNodeMCU()
	if c.Levels() != 2 || c.Speed(0) != 0.5 {
		t.Fatalf("mcu profile: levels %d speed0 %v", c.Levels(), c.Speed(0))
	}
}

func TestXScaleScaled(t *testing.T) {
	c := XScaleScaled(10)
	if c.MaxPower() != 10 {
		t.Fatalf("pmax = %v", c.MaxPower())
	}
	// Relative powers preserved: level 0 is 80/3200 of max.
	if math.Abs(c.Power(0)-10*80.0/3200) > 1e-12 {
		t.Fatalf("power[0] = %v", c.Power(0))
	}
	// Speeds identical to the unscaled table.
	base := XScale()
	for n := 0; n < c.Levels(); n++ {
		if c.Speed(n) != base.Speed(n) {
			t.Fatalf("speed[%d] changed under scaling", n)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("XScaleScaled(0) did not panic")
		}
	}()
	XScaleScaled(0)
}
