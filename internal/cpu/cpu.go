// Package cpu models the DVFS-enabled processor of the paper (§3.3, §5.1):
// N discrete operating points with increasing clock frequency and power.
// Speeds are normalized to the maximum frequency (S_n = f_n / f_max), so a
// job's worst-case execution time w (quoted at f_max) takes w/S_n at point
// n, and executing it there consumes P_n · w/S_n energy.
package cpu

import (
	"fmt"
	"math"
	"sort"
)

// OperatingPoint is one DVFS level.
type OperatingPoint struct {
	FreqMHz float64 // clock frequency, informational
	Power   float64 // power drawn while executing at this point
}

// Processor is an immutable DVFS processor description. Construct with New
// or a preset.
type Processor struct {
	name   string
	points []OperatingPoint // ascending frequency
	speeds []float64        // points[i].FreqMHz / fmax

	// IdlePower is drawn whenever the processor is powered but not
	// executing. The paper treats idle power as zero (the storage
	// recharges while the system idles); non-zero values are supported
	// for ablations.
	idlePower float64

	// SwitchOverhead models the cost of a DVFS transition. The paper
	// assumes it "negligible" (§5.1); non-zero values are an extension.
	switchTime   float64
	switchEnergy float64

	// sleepStates are the optional DPM states (WithSleepStates); empty in
	// the paper's model. Each state's power must not exceed idlePower, so
	// an idle window a sleep state fits into is never cut short by
	// storage depletion the idle-power sustain check did not already see.
	sleepStates []SleepState
}

// SleepState is one DPM low-power state: the processor draws Power while
// asleep (less than the idle draw), pays EnterEnergy/ExitEnergy on the
// transitions, and needs WakeLatency of wall-clock time to become
// available again after a wake is initiated. The classic break-even rule
// gates entry: sleeping only pays off when the idle window is long enough
// to amortize the transition energy (SNIPPETS.md snippet 1's DPM angle).
type SleepState struct {
	Name        string
	Power       float64 // draw while asleep, <= the processor's idle power
	EnterEnergy float64 // energy to enter the state
	ExitEnergy  float64 // energy to leave the state
	WakeLatency float64 // time from wake initiation to availability
}

// WithSleepStates declares the processor's DPM sleep states, ordered
// shallow to deep. Validation against the idle power happens in New,
// after every option has been applied.
func WithSleepStates(states ...SleepState) Option {
	return func(c *Processor) { c.sleepStates = append([]SleepState(nil), states...) }
}

// Option configures optional processor features.
type Option func(*Processor)

// WithIdlePower sets a non-zero idle power draw.
func WithIdlePower(p float64) Option {
	if p < 0 {
		panic(fmt.Sprintf("cpu: negative idle power %v", p))
	}
	return func(c *Processor) { c.idlePower = p }
}

// WithSwitchOverhead sets the time and energy cost of one frequency change.
func WithSwitchOverhead(time, energy float64) Option {
	if time < 0 || energy < 0 {
		panic(fmt.Sprintf("cpu: negative switch overhead (%v, %v)", time, energy))
	}
	return func(c *Processor) {
		c.switchTime = time
		c.switchEnergy = energy
	}
}

// New builds a processor from operating points. Points are sorted by
// frequency; frequencies must be positive and distinct, powers positive and
// strictly increasing with frequency (a dominated point — slower *and*
// hungrier — would never be selected and indicates a spec error).
func New(name string, points []OperatingPoint, opts ...Option) *Processor {
	if len(points) == 0 {
		panic("cpu: no operating points")
	}
	pts := append([]OperatingPoint(nil), points...)
	sort.Slice(pts, func(i, j int) bool { return pts[i].FreqMHz < pts[j].FreqMHz })
	for i, p := range pts {
		if p.FreqMHz <= 0 || math.IsNaN(p.FreqMHz) {
			panic(fmt.Sprintf("cpu: invalid frequency %v", p.FreqMHz))
		}
		if p.Power <= 0 || math.IsNaN(p.Power) {
			panic(fmt.Sprintf("cpu: invalid power %v", p.Power))
		}
		if i > 0 {
			if p.FreqMHz == pts[i-1].FreqMHz {
				panic(fmt.Sprintf("cpu: duplicate frequency %v", p.FreqMHz))
			}
			if p.Power <= pts[i-1].Power {
				panic(fmt.Sprintf("cpu: power not increasing at %v MHz", p.FreqMHz))
			}
		}
	}
	fmax := pts[len(pts)-1].FreqMHz
	speeds := make([]float64, len(pts))
	for i, p := range pts {
		speeds[i] = p.FreqMHz / fmax
	}
	c := &Processor{name: name, points: pts, speeds: speeds}
	for _, o := range opts {
		o(c)
	}
	for i, s := range c.sleepStates {
		switch {
		case s.Name == "":
			panic(fmt.Sprintf("cpu: sleep state %d without a name", i))
		case s.Power < 0 || math.IsNaN(s.Power):
			panic(fmt.Sprintf("cpu: sleep state %q: invalid power %v", s.Name, s.Power))
		case s.Power > c.idlePower:
			panic(fmt.Sprintf("cpu: sleep state %q: power %v exceeds idle power %v", s.Name, s.Power, c.idlePower))
		case s.EnterEnergy < 0 || math.IsNaN(s.EnterEnergy) || s.ExitEnergy < 0 || math.IsNaN(s.ExitEnergy):
			panic(fmt.Sprintf("cpu: sleep state %q: negative transition energy", s.Name))
		case s.WakeLatency < 0 || math.IsNaN(s.WakeLatency) || math.IsInf(s.WakeLatency, 0):
			panic(fmt.Sprintf("cpu: sleep state %q: invalid wake latency %v", s.Name, s.WakeLatency))
		}
		for _, prev := range c.sleepStates[:i] {
			if prev.Name == s.Name {
				panic(fmt.Sprintf("cpu: duplicate sleep state %q", s.Name))
			}
		}
	}
	return c
}

// XScale returns the paper's five-point processor "similar to Intel's
// XScale" (§5.1): 150/400/600/800/1000 MHz. Powers follow the paper's
// 80/400/1000/2000/3200 mW profile expressed in the repository's canonical
// power unit (DESIGN.md §5.3), i.e. divided by 1000 so that the eq. (13)
// source (mean ≈ 4.0) can sustain the processor (P_max = 3.2).
func XScale() *Processor {
	return New("xscale", []OperatingPoint{
		{FreqMHz: 150, Power: 0.08},
		{FreqMHz: 400, Power: 0.4},
		{FreqMHz: 600, Power: 1.0},
		{FreqMHz: 800, Power: 2.0},
		{FreqMHz: 1000, Power: 3.2},
	})
}

// XScaleScaled returns the XScale frequency/power profile with all powers
// scaled so the maximum power equals pmax. The paper quotes the XScale
// table in mW but runs harvest, storage and energy in unnamed units; the
// relative powers are physical, the absolute scale is the experiment's
// calibration knob (DESIGN.md §5.3).
func XScaleScaled(pmax float64) *Processor {
	if pmax <= 0 {
		panic("cpu: non-positive pmax")
	}
	base := []float64{80, 400, 1000, 2000, 3200}
	freqs := []float64{150, 400, 600, 800, 1000}
	pts := make([]OperatingPoint, len(base))
	for i := range base {
		pts[i] = OperatingPoint{FreqMHz: freqs[i], Power: base[i] / 3200 * pmax}
	}
	return New("xscale", pts)
}

// XScaleMilliwatts returns the same processor with powers in the paper's
// literal milliwatt figures, for users who work in mW/mJ units throughout.
func XScaleMilliwatts() *Processor {
	return New("xscale-mw", []OperatingPoint{
		{FreqMHz: 150, Power: 80},
		{FreqMHz: 400, Power: 400},
		{FreqMHz: 600, Power: 1000},
		{FreqMHz: 800, Power: 2000},
		{FreqMHz: 1000, Power: 3200},
	})
}

// TwoSpeed returns the two-point processor of the paper's motivational
// example (§2): a high speed and a low speed, "the former twice as fast as
// the latter. The power at high speed is 3 times as much as that in low
// speed", with P_max = pmax.
func TwoSpeed(pmax float64) *Processor {
	if pmax <= 0 {
		panic("cpu: non-positive pmax")
	}
	return New("two-speed", []OperatingPoint{
		{FreqMHz: 500, Power: pmax / 3},
		{FreqMHz: 1000, Power: pmax},
	})
}

// Fig3 returns the processor of the paper's §4.3 example: f_n = 0.25·f_max
// with P_n = 1 and P_max = 8 (intermediate points filled per a cubic-ish
// spec are unnecessary — the example only exercises these two points).
func Fig3() *Processor {
	return New("fig3", []OperatingPoint{
		{FreqMHz: 250, Power: 1},
		{FreqMHz: 1000, Power: 8},
	})
}

// PXA270 returns a six-point profile with the PXA270's frequency ladder
// (104–624 MHz) and a convex active-power envelope representative of the
// part, in watts. Useful for checking that results do not hinge on the
// XScale table's particular shape.
func PXA270() *Processor {
	return New("pxa270", []OperatingPoint{
		{FreqMHz: 104, Power: 0.116},
		{FreqMHz: 208, Power: 0.250},
		{FreqMHz: 312, Power: 0.420},
		{FreqMHz: 416, Power: 0.640},
		{FreqMHz: 520, Power: 0.900},
		{FreqMHz: 624, Power: 1.200},
	})
}

// SensorNodeMCU returns a two-point profile representative of a
// sensor-node microcontroller with a run mode and a throttled mode — the
// platform class of the paper's motivating deployments (Heliomote,
// Prometheus). Powers in milliwatts.
func SensorNodeMCU() *Processor {
	return New("sensor-mcu", []OperatingPoint{
		{FreqMHz: 4, Power: 3},
		{FreqMHz: 8, Power: 8},
	})
}

// Cubic generates an n-point processor whose power follows the classic
// CMOS model P = k·f³ + staticPower, evenly spaced from fmax/n to fmax.
// Useful for sensitivity studies on the number of DVFS levels.
func Cubic(name string, n int, fmaxMHz, pmax, static float64) *Processor {
	if n <= 0 {
		panic("cpu: non-positive point count")
	}
	if fmaxMHz <= 0 || pmax <= static || static < 0 {
		panic("cpu: invalid cubic spec")
	}
	k := (pmax - static) / math.Pow(fmaxMHz, 3)
	pts := make([]OperatingPoint, n)
	for i := 0; i < n; i++ {
		f := fmaxMHz * float64(i+1) / float64(n)
		pts[i] = OperatingPoint{FreqMHz: f, Power: static + k*math.Pow(f, 3)}
	}
	return New(name, pts)
}

// Name returns the processor's identifier.
func (c *Processor) Name() string { return c.name }

// Levels returns the number of operating points N.
func (c *Processor) Levels() int { return len(c.points) }

// Point returns operating point n (0-based, ascending frequency).
func (c *Processor) Point(n int) OperatingPoint {
	c.checkLevel(n)
	return c.points[n]
}

// Speed returns S_n = f_n / f_max in (0, 1].
func (c *Processor) Speed(n int) float64 {
	c.checkLevel(n)
	return c.speeds[n]
}

// Power returns P_n.
func (c *Processor) Power(n int) float64 {
	c.checkLevel(n)
	return c.points[n].Power
}

// MaxLevel returns the index of the fastest point (N-1).
func (c *Processor) MaxLevel() int { return len(c.points) - 1 }

// ClampLevel returns n clamped into the valid operating-point range
// [0, N). Unlike the accessors, it never panics: fault injection and
// other adversarial layers use it to keep a perturbed level selection
// inside the hardware's table.
func (c *Processor) ClampLevel(n int) int {
	if n < 0 {
		return 0
	}
	if n >= len(c.points) {
		return len(c.points) - 1
	}
	return n
}

// MaxPower returns P_max.
func (c *Processor) MaxPower() float64 { return c.points[len(c.points)-1].Power }

// IdlePower returns the idle draw (0 in the paper's model).
func (c *Processor) IdlePower() float64 { return c.idlePower }

// SwitchOverhead returns the per-transition (time, energy) cost.
func (c *Processor) SwitchOverhead() (time, energy float64) {
	return c.switchTime, c.switchEnergy
}

// ExecTime returns how long work units of f_max-time take at level n.
func (c *Processor) ExecTime(work float64, n int) float64 {
	if work < 0 {
		panic(fmt.Sprintf("cpu: negative work %v", work))
	}
	return work / c.Speed(n)
}

// ExecEnergy returns the energy to execute work units of f_max-time at
// level n: P_n · work / S_n.
func (c *Processor) ExecEnergy(work float64, n int) float64 {
	return c.Power(n) * c.ExecTime(work, n)
}

// MinLevelFor returns the lowest operating point n that satisfies the
// paper's inequality (6): work/S_n <= window, i.e. the job still meets its
// deadline. The boolean is false when even f_max cannot fit the work in the
// window (the caller then runs flat-out and the deadline will be missed).
// A non-positive window with positive work is infeasible; zero work is
// feasible at the lowest point.
func (c *Processor) MinLevelFor(work, window float64) (int, bool) {
	if work < 0 {
		panic(fmt.Sprintf("cpu: negative work %v", work))
	}
	if work == 0 {
		return 0, true
	}
	if window <= 0 {
		return c.MaxLevel(), false
	}
	for n := 0; n < len(c.points); n++ {
		if work/c.speeds[n] <= window {
			return n, true
		}
	}
	return c.MaxLevel(), false
}

// EnergyPerWork returns P_n / S_n — the energy cost of one unit of work at
// level n. For any sensible DVFS table this is increasing in n, which is
// exactly why stretching saves energy; exposed for tests and analysis.
func (c *Processor) EnergyPerWork(n int) float64 {
	return c.Power(n) / c.Speed(n)
}

func (c *Processor) checkLevel(n int) {
	if n < 0 || n >= len(c.points) {
		panic(fmt.Sprintf("cpu: level %d outside [0, %d)", n, len(c.points)))
	}
}

// SleepLevels returns the number of declared DPM sleep states (0 in the
// paper's model).
func (c *Processor) SleepLevels() int { return len(c.sleepStates) }

// SleepState returns sleep state i.
func (c *Processor) SleepState(i int) SleepState {
	if i < 0 || i >= len(c.sleepStates) {
		panic(fmt.Sprintf("cpu: sleep state %d outside [0, %d)", i, len(c.sleepStates)))
	}
	return c.sleepStates[i]
}

// BreakEven returns the minimal time asleep in state i for the transition
// energy to pay off against plain idling:
//
//	(idle − sleep) · T >= Enter + Exit  ⇒  T_be = (Enter+Exit)/(idle−sleep).
//
// +Inf when the state saves no power over idling (it is then never
// eligible).
func (c *Processor) BreakEven(i int) float64 {
	s := c.SleepState(i)
	saving := c.idlePower - s.Power
	if saving <= 0 {
		return math.Inf(1)
	}
	return (s.EnterEnergy + s.ExitEnergy) / saving
}

// DeepestSleepFor returns the index of the lowest-power sleep state whose
// break-even time plus wake latency fits the guaranteed idle window, or
// -1 when none does (ties keep the first declared). This is the gate of
// the engine's idle manager: a state that does not fit is a net loss, so
// the processor stays in plain idle.
func (c *Processor) DeepestSleepFor(window float64) int {
	best := -1
	for i := range c.sleepStates {
		s := c.sleepStates[i]
		if window < c.BreakEven(i)+s.WakeLatency || window <= s.WakeLatency {
			continue
		}
		if best < 0 || s.Power < c.sleepStates[best].Power {
			best = i
		}
	}
	return best
}

// DefaultSleepStates returns a two-state nap/deep DPM ladder scaled to an
// idle power draw: a shallow state with a short break-even and a deep
// state that nearly powers down but costs real transition energy and a
// long wake latency. Representative of sensor-node MCU sleep modes.
func DefaultSleepStates(idle float64) []SleepState {
	if idle < 0 {
		panic(fmt.Sprintf("cpu: negative idle power %v", idle))
	}
	return []SleepState{
		{Name: "nap", Power: 0.3 * idle, EnterEnergy: 0.1 * idle, ExitEnergy: 0.1 * idle, WakeLatency: 0.05},
		{Name: "deep", Power: 0.02 * idle, EnterEnergy: 0.5 * idle, ExitEnergy: 0.5 * idle, WakeLatency: 0.5},
	}
}

// SleepPreset resolves a named DPM configuration for wire-level specs:
// "" and "none" mean no DPM (zero idle power, no states); "default" is
// the DefaultSleepStates ladder over an idle draw of 5% of pmax. The
// returned idle power and states are applied together (WithIdlePower +
// WithSleepStates) — DPM is only meaningful against a non-zero idle draw.
func SleepPreset(name string, pmax float64) (idle float64, states []SleepState, err error) {
	switch name {
	case "", "none":
		return 0, nil, nil
	case "default":
		idle = 0.05 * pmax
		return idle, DefaultSleepStates(idle), nil
	default:
		return 0, nil, fmt.Errorf("cpu: unknown sleep preset %q", name)
	}
}

// SleepPresetNames enumerates the named DPM configurations SleepPreset
// resolves, in stable order ("none" first — the paper's DPM-free model).
// The capabilities document serves the list so a coordinator can plan
// sleep ablations against a worker build without guessing names.
func SleepPresetNames() []string { return []string{"none", "default"} }

// WithDPM returns a copy of the processor with the given idle power and
// sleep states attached, revalidated through New. The preset constructors
// (XScale, TwoSpeed, …) build their operating-point tables without
// options; this is how the wire layers (verify.Spec.Sleep,
// eadvfs.Config.Sleep) bolt a SleepPreset configuration onto one of them
// after the fact. Switch overheads carry over unchanged.
func (c *Processor) WithDPM(idle float64, states []SleepState) *Processor {
	return New(c.name, c.points,
		WithIdlePower(idle),
		WithSwitchOverhead(c.switchTime, c.switchEnergy),
		WithSleepStates(states...))
}
