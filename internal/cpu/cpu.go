// Package cpu models the DVFS-enabled processor of the paper (§3.3, §5.1):
// N discrete operating points with increasing clock frequency and power.
// Speeds are normalized to the maximum frequency (S_n = f_n / f_max), so a
// job's worst-case execution time w (quoted at f_max) takes w/S_n at point
// n, and executing it there consumes P_n · w/S_n energy.
package cpu

import (
	"fmt"
	"math"
	"sort"
)

// OperatingPoint is one DVFS level.
type OperatingPoint struct {
	FreqMHz float64 // clock frequency, informational
	Power   float64 // power drawn while executing at this point
}

// Processor is an immutable DVFS processor description. Construct with New
// or a preset.
type Processor struct {
	name   string
	points []OperatingPoint // ascending frequency
	speeds []float64        // points[i].FreqMHz / fmax

	// IdlePower is drawn whenever the processor is powered but not
	// executing. The paper treats idle power as zero (the storage
	// recharges while the system idles); non-zero values are supported
	// for ablations.
	idlePower float64

	// SwitchOverhead models the cost of a DVFS transition. The paper
	// assumes it "negligible" (§5.1); non-zero values are an extension.
	switchTime   float64
	switchEnergy float64
}

// Option configures optional processor features.
type Option func(*Processor)

// WithIdlePower sets a non-zero idle power draw.
func WithIdlePower(p float64) Option {
	if p < 0 {
		panic(fmt.Sprintf("cpu: negative idle power %v", p))
	}
	return func(c *Processor) { c.idlePower = p }
}

// WithSwitchOverhead sets the time and energy cost of one frequency change.
func WithSwitchOverhead(time, energy float64) Option {
	if time < 0 || energy < 0 {
		panic(fmt.Sprintf("cpu: negative switch overhead (%v, %v)", time, energy))
	}
	return func(c *Processor) {
		c.switchTime = time
		c.switchEnergy = energy
	}
}

// New builds a processor from operating points. Points are sorted by
// frequency; frequencies must be positive and distinct, powers positive and
// strictly increasing with frequency (a dominated point — slower *and*
// hungrier — would never be selected and indicates a spec error).
func New(name string, points []OperatingPoint, opts ...Option) *Processor {
	if len(points) == 0 {
		panic("cpu: no operating points")
	}
	pts := append([]OperatingPoint(nil), points...)
	sort.Slice(pts, func(i, j int) bool { return pts[i].FreqMHz < pts[j].FreqMHz })
	for i, p := range pts {
		if p.FreqMHz <= 0 || math.IsNaN(p.FreqMHz) {
			panic(fmt.Sprintf("cpu: invalid frequency %v", p.FreqMHz))
		}
		if p.Power <= 0 || math.IsNaN(p.Power) {
			panic(fmt.Sprintf("cpu: invalid power %v", p.Power))
		}
		if i > 0 {
			if p.FreqMHz == pts[i-1].FreqMHz {
				panic(fmt.Sprintf("cpu: duplicate frequency %v", p.FreqMHz))
			}
			if p.Power <= pts[i-1].Power {
				panic(fmt.Sprintf("cpu: power not increasing at %v MHz", p.FreqMHz))
			}
		}
	}
	fmax := pts[len(pts)-1].FreqMHz
	speeds := make([]float64, len(pts))
	for i, p := range pts {
		speeds[i] = p.FreqMHz / fmax
	}
	c := &Processor{name: name, points: pts, speeds: speeds}
	for _, o := range opts {
		o(c)
	}
	return c
}

// XScale returns the paper's five-point processor "similar to Intel's
// XScale" (§5.1): 150/400/600/800/1000 MHz. Powers follow the paper's
// 80/400/1000/2000/3200 mW profile expressed in the repository's canonical
// power unit (DESIGN.md §5.3), i.e. divided by 1000 so that the eq. (13)
// source (mean ≈ 4.0) can sustain the processor (P_max = 3.2).
func XScale() *Processor {
	return New("xscale", []OperatingPoint{
		{FreqMHz: 150, Power: 0.08},
		{FreqMHz: 400, Power: 0.4},
		{FreqMHz: 600, Power: 1.0},
		{FreqMHz: 800, Power: 2.0},
		{FreqMHz: 1000, Power: 3.2},
	})
}

// XScaleScaled returns the XScale frequency/power profile with all powers
// scaled so the maximum power equals pmax. The paper quotes the XScale
// table in mW but runs harvest, storage and energy in unnamed units; the
// relative powers are physical, the absolute scale is the experiment's
// calibration knob (DESIGN.md §5.3).
func XScaleScaled(pmax float64) *Processor {
	if pmax <= 0 {
		panic("cpu: non-positive pmax")
	}
	base := []float64{80, 400, 1000, 2000, 3200}
	freqs := []float64{150, 400, 600, 800, 1000}
	pts := make([]OperatingPoint, len(base))
	for i := range base {
		pts[i] = OperatingPoint{FreqMHz: freqs[i], Power: base[i] / 3200 * pmax}
	}
	return New("xscale", pts)
}

// XScaleMilliwatts returns the same processor with powers in the paper's
// literal milliwatt figures, for users who work in mW/mJ units throughout.
func XScaleMilliwatts() *Processor {
	return New("xscale-mw", []OperatingPoint{
		{FreqMHz: 150, Power: 80},
		{FreqMHz: 400, Power: 400},
		{FreqMHz: 600, Power: 1000},
		{FreqMHz: 800, Power: 2000},
		{FreqMHz: 1000, Power: 3200},
	})
}

// TwoSpeed returns the two-point processor of the paper's motivational
// example (§2): a high speed and a low speed, "the former twice as fast as
// the latter. The power at high speed is 3 times as much as that in low
// speed", with P_max = pmax.
func TwoSpeed(pmax float64) *Processor {
	if pmax <= 0 {
		panic("cpu: non-positive pmax")
	}
	return New("two-speed", []OperatingPoint{
		{FreqMHz: 500, Power: pmax / 3},
		{FreqMHz: 1000, Power: pmax},
	})
}

// Fig3 returns the processor of the paper's §4.3 example: f_n = 0.25·f_max
// with P_n = 1 and P_max = 8 (intermediate points filled per a cubic-ish
// spec are unnecessary — the example only exercises these two points).
func Fig3() *Processor {
	return New("fig3", []OperatingPoint{
		{FreqMHz: 250, Power: 1},
		{FreqMHz: 1000, Power: 8},
	})
}

// PXA270 returns a six-point profile with the PXA270's frequency ladder
// (104–624 MHz) and a convex active-power envelope representative of the
// part, in watts. Useful for checking that results do not hinge on the
// XScale table's particular shape.
func PXA270() *Processor {
	return New("pxa270", []OperatingPoint{
		{FreqMHz: 104, Power: 0.116},
		{FreqMHz: 208, Power: 0.250},
		{FreqMHz: 312, Power: 0.420},
		{FreqMHz: 416, Power: 0.640},
		{FreqMHz: 520, Power: 0.900},
		{FreqMHz: 624, Power: 1.200},
	})
}

// SensorNodeMCU returns a two-point profile representative of a
// sensor-node microcontroller with a run mode and a throttled mode — the
// platform class of the paper's motivating deployments (Heliomote,
// Prometheus). Powers in milliwatts.
func SensorNodeMCU() *Processor {
	return New("sensor-mcu", []OperatingPoint{
		{FreqMHz: 4, Power: 3},
		{FreqMHz: 8, Power: 8},
	})
}

// Cubic generates an n-point processor whose power follows the classic
// CMOS model P = k·f³ + staticPower, evenly spaced from fmax/n to fmax.
// Useful for sensitivity studies on the number of DVFS levels.
func Cubic(name string, n int, fmaxMHz, pmax, static float64) *Processor {
	if n <= 0 {
		panic("cpu: non-positive point count")
	}
	if fmaxMHz <= 0 || pmax <= static || static < 0 {
		panic("cpu: invalid cubic spec")
	}
	k := (pmax - static) / math.Pow(fmaxMHz, 3)
	pts := make([]OperatingPoint, n)
	for i := 0; i < n; i++ {
		f := fmaxMHz * float64(i+1) / float64(n)
		pts[i] = OperatingPoint{FreqMHz: f, Power: static + k*math.Pow(f, 3)}
	}
	return New(name, pts)
}

// Name returns the processor's identifier.
func (c *Processor) Name() string { return c.name }

// Levels returns the number of operating points N.
func (c *Processor) Levels() int { return len(c.points) }

// Point returns operating point n (0-based, ascending frequency).
func (c *Processor) Point(n int) OperatingPoint {
	c.checkLevel(n)
	return c.points[n]
}

// Speed returns S_n = f_n / f_max in (0, 1].
func (c *Processor) Speed(n int) float64 {
	c.checkLevel(n)
	return c.speeds[n]
}

// Power returns P_n.
func (c *Processor) Power(n int) float64 {
	c.checkLevel(n)
	return c.points[n].Power
}

// MaxLevel returns the index of the fastest point (N-1).
func (c *Processor) MaxLevel() int { return len(c.points) - 1 }

// ClampLevel returns n clamped into the valid operating-point range
// [0, N). Unlike the accessors, it never panics: fault injection and
// other adversarial layers use it to keep a perturbed level selection
// inside the hardware's table.
func (c *Processor) ClampLevel(n int) int {
	if n < 0 {
		return 0
	}
	if n >= len(c.points) {
		return len(c.points) - 1
	}
	return n
}

// MaxPower returns P_max.
func (c *Processor) MaxPower() float64 { return c.points[len(c.points)-1].Power }

// IdlePower returns the idle draw (0 in the paper's model).
func (c *Processor) IdlePower() float64 { return c.idlePower }

// SwitchOverhead returns the per-transition (time, energy) cost.
func (c *Processor) SwitchOverhead() (time, energy float64) {
	return c.switchTime, c.switchEnergy
}

// ExecTime returns how long work units of f_max-time take at level n.
func (c *Processor) ExecTime(work float64, n int) float64 {
	if work < 0 {
		panic(fmt.Sprintf("cpu: negative work %v", work))
	}
	return work / c.Speed(n)
}

// ExecEnergy returns the energy to execute work units of f_max-time at
// level n: P_n · work / S_n.
func (c *Processor) ExecEnergy(work float64, n int) float64 {
	return c.Power(n) * c.ExecTime(work, n)
}

// MinLevelFor returns the lowest operating point n that satisfies the
// paper's inequality (6): work/S_n <= window, i.e. the job still meets its
// deadline. The boolean is false when even f_max cannot fit the work in the
// window (the caller then runs flat-out and the deadline will be missed).
// A non-positive window with positive work is infeasible; zero work is
// feasible at the lowest point.
func (c *Processor) MinLevelFor(work, window float64) (int, bool) {
	if work < 0 {
		panic(fmt.Sprintf("cpu: negative work %v", work))
	}
	if work == 0 {
		return 0, true
	}
	if window <= 0 {
		return c.MaxLevel(), false
	}
	for n := 0; n < len(c.points); n++ {
		if work/c.speeds[n] <= window {
			return n, true
		}
	}
	return c.MaxLevel(), false
}

// EnergyPerWork returns P_n / S_n — the energy cost of one unit of work at
// level n. For any sensible DVFS table this is increasing in n, which is
// exactly why stretching saves energy; exposed for tests and analysis.
func (c *Processor) EnergyPerWork(n int) float64 {
	return c.Power(n) / c.Speed(n)
}

func (c *Processor) checkLevel(n int) {
	if n < 0 || n >= len(c.points) {
		panic(fmt.Sprintf("cpu: level %d outside [0, %d)", n, len(c.points)))
	}
}
