package registry

import (
	"github.com/eadvfs/eadvfs/internal/core"
	"github.com/eadvfs/eadvfs/internal/refimpl"
	"github.com/eadvfs/eadvfs/internal/rng"
	"github.com/eadvfs/eadvfs/internal/sched"
	"github.com/eadvfs/eadvfs/internal/task"
	"github.com/eadvfs/eadvfs/internal/workload"
)

// Stochastic-execution scenario registrations (internal/workload): the
// slack-reclaiming policy decorators and the stochastic-periodic task
// model. They live in their own file rather than builtin.go because the
// enumeration order is public API — Go runs package init functions in
// file-name order, so builtin.go's registrations keep their positions
// and these append after them. internal/workload must not import this
// package (the import runs the other way), which is why the parameter
// unpacking happens here, in the registration closures.

// reclaimParams is the shared parameter schema of the reclaiming
// decorators.
func reclaimParams() []Param {
	return []Param{
		{
			Name: "reclaim_alpha", Type: TypeFloat, Default: 0.5,
			Help: "EWMA weight of a fresh actual/WCET observation, in (0, 1]",
			Min:  floatPtr(0), Max: floatPtr(1),
		},
		{
			Name: "min_ratio", Type: TypeFloat, Default: 0.1,
			Help: "floor on the speculative execution-time ratio, in [0, 1]",
			Min:  floatPtr(0), Max: floatPtr(1),
		},
	}
}

func init() {
	registerWorkloadPolicies()
	registerWorkloadTaskModels()
}

func registerWorkloadPolicies() {
	RegisterPolicy(PolicyDef{
		Name:   "ea-dvfs-reclaim",
		Help:   "EA-DVFS under a Leung/Tsui-style online slack reclaimer: speculates on observed early completions, guarded by the latest safe full-budget start",
		Params: reclaimParams(),
		New: func(p Params) (sched.Policy, error) {
			return workload.NewReclaimer("ea-dvfs-reclaim", core.NewEADVFS(),
				p.Float("reclaim_alpha", 0.5), p.Float("min_ratio", 0.1)), nil
		},
		Ref: func(p Params) (sched.Policy, error) {
			return refimpl.NewReclaimer("ea-dvfs-reclaim", refimpl.NewEADVFS(),
				p.Float("reclaim_alpha", 0.5), p.Float("min_ratio", 0.1)), nil
		},
	})
	RegisterPolicy(PolicyDef{
		Name:   "lsa-reclaim",
		Help:   "lazy scheduling under the same online slack reclaimer (gives LSA the DVFS lever it natively lacks)",
		Params: reclaimParams(),
		New: func(p Params) (sched.Policy, error) {
			return workload.NewReclaimer("lsa-reclaim", sched.LSA{},
				p.Float("reclaim_alpha", 0.5), p.Float("min_ratio", 0.1)), nil
		},
		Ref: func(p Params) (sched.Policy, error) {
			return refimpl.NewReclaimer("lsa-reclaim", refimpl.LSA{},
				p.Float("reclaim_alpha", 0.5), p.Float("min_ratio", 0.1)), nil
		},
	})
}

func registerWorkloadTaskModels() {
	RegisterTaskModel(TaskModelDef{
		Name: "stochastic-periodic",
		Help: "the §5.1 periodic workload with per-job actual execution drawn from a distribution bounded by WCET (uniform, truncated normal, bimodal, or a replayed utilization trace)",
		Params: []Param{
			{
				Name: "periods", Type: TypeFloats,
				Help: "period menu; defaults to the paper's {10, 20, …, 100}",
			},
			{
				Name: "dist", Type: TypeString, Default: task.DistUniform,
				Help: "execution-time distribution: uniform, normal, bimodal or trace",
			},
			{
				Name: "bc_ratio", Type: TypeFloat, Default: 0.25,
				Help: "best-case/worst-case execution ratio (lower bound of every draw)",
				Min:  floatPtr(0), Max: floatPtr(1),
			},
			{
				Name: "mean", Type: TypeFloat, Default: 0.6,
				Help: "normal: mean actual/WCET ratio",
				Min:  floatPtr(0), Max: floatPtr(1),
			},
			{
				Name: "stddev", Type: TypeFloat, Default: 0.15,
				Help: "normal: ratio standard deviation",
				Min:  floatPtr(0),
			},
			{
				Name: "fast_prob", Type: TypeFloat, Default: 0.7,
				Help: "bimodal: probability of the fast (cache-hit) lobe",
				Min:  floatPtr(0), Max: floatPtr(1),
			},
			{
				Name: "fast_ratio", Type: TypeFloat, Default: 0.5,
				Help: "bimodal: ratio boundary between the fast and slow lobes",
				Min:  floatPtr(0), Max: floatPtr(1),
			},
			{
				Name: "slots", Type: TypeFloats,
				Help: "trace: per-slot actual/WCET ratios, wrapped by job sequence (see workload.ReadSlotCSV)",
			},
		},
		Generate: func(g TaskGen, p Params, r *rng.RNG) ([]task.Task, error) {
			periods := p.Floats("periods")
			if len(periods) == 0 {
				periods = task.PaperPeriods()
			}
			// Only the chosen distribution's knobs land on the spec, so the
			// serialized task set (manifests, wire documents) carries no
			// irrelevant members; an unknown dist falls through to the
			// spec's own validation.
			exec := task.ExecSpec{
				Dist:    p.Str("dist", task.DistUniform),
				BCRatio: p.Float("bc_ratio", 0.25),
			}
			switch exec.Dist {
			case task.DistNormal:
				exec.Mean = p.Float("mean", 0.6)
				exec.StdDev = p.Float("stddev", 0.15)
			case task.DistBimodal:
				exec.FastProb = p.Float("fast_prob", 0.7)
				exec.FastRatio = p.Float("fast_ratio", 0.5)
			case task.DistTrace:
				exec.Slots = p.Floats("slots")
			}
			return workload.StochasticPeriodic(task.GeneratorConfig{
				NumTasks:         g.NumTasks,
				Periods:          periods,
				MeanHarvestPower: g.MeanHarvestPower,
				PMax:             g.PMax,
				TargetU:          g.TargetU,
			}, exec, r)
		},
	})
}
