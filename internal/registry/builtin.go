package registry

import (
	"fmt"

	"github.com/eadvfs/eadvfs/internal/core"
	"github.com/eadvfs/eadvfs/internal/energy"
	"github.com/eadvfs/eadvfs/internal/refimpl"
	"github.com/eadvfs/eadvfs/internal/rng"
	"github.com/eadvfs/eadvfs/internal/sched"
	"github.com/eadvfs/eadvfs/internal/task"
)

// Built-in registrations. Order matters: enumeration is registration
// order, and eadvfs.Policies()/Predictors() pin today's order as public
// API (example output is golden-tested).

func floatPtr(f float64) *float64 { return &f }

func init() {
	registerBuiltinPolicies()
	registerBuiltinSources()
	registerBuiltinPredictors()
	registerBuiltinTaskModels()
}

func registerBuiltinPolicies() {
	RegisterPolicy(PolicyDef{
		Name: "ea-dvfs",
		Help: "the paper's EA-DVFS (§4): stretch to the deadline when stored energy suffices, lock s2 otherwise",
		New:  func(Params) (sched.Policy, error) { return core.NewEADVFS(), nil },
		Ref:  func(Params) (sched.Policy, error) { return refimpl.NewEADVFS(), nil },
	})
	RegisterPolicy(PolicyDef{
		Name: "ea-dvfs-dynamic",
		Help: "ablation: EA-DVFS with s2 recomputed at every decision instead of locked per job",
		New:  func(Params) (sched.Policy, error) { return core.NewDynamicEADVFS(), nil },
		Ref:  func(Params) (sched.Policy, error) { return refimpl.NewDynamicEADVFS(), nil },
	})
	RegisterPolicy(PolicyDef{
		Name: "lsa",
		Help: "lazy scheduling (Moser et al.), the paper's baseline",
		New:  func(Params) (sched.Policy, error) { return sched.LSA{}, nil },
		Ref:  func(Params) (sched.Policy, error) { return refimpl.LSA{}, nil },
	})
	RegisterPolicy(PolicyDef{
		Name: "edf",
		Help: "energy-oblivious earliest deadline first",
		New:  func(Params) (sched.Policy, error) { return sched.EDF{}, nil },
		Ref:  func(Params) (sched.Policy, error) { return refimpl.EDF{}, nil },
	})
	RegisterPolicy(PolicyDef{
		Name: "static-dvfs",
		Help: "fixed operating point sized to the task-set utilization; never adapts",
		Params: []Param{{
			Name: "utilization", Type: TypeFloat, Default: 0.4,
			Help: "target utilization the fixed operating point is sized for",
			Min:  floatPtr(0), Max: floatPtr(1),
		}},
		New: func(p Params) (sched.Policy, error) {
			return sched.StaticDVFS{Utilization: p.Float("utilization", 0.4)}, nil
		},
	})
	RegisterPolicy(PolicyDef{
		Name: "greedy-stretch",
		Help: "ablation: stretches every job to its deadline without the §4.3 energy guard",
		New:  func(Params) (sched.Policy, error) { return sched.GreedyStretch{}, nil },
	})
}

func registerBuiltinSources() {
	RegisterSource(SourceDef{
		Name: "solar",
		Help: "the paper's eq. (13) stochastic solar model",
		Params: []Param{
			{Name: "seed", Type: TypeUint, Default: 0, Help: "sample-path seed (the seed is the trace's identity)"},
			{Name: "amplitude", Type: TypeFloat, Default: 10.0, Min: floatPtr(0),
				Help: "envelope amplitude; 10 is the calibrated default"},
		},
		New: func(p Params) (energy.Source, error) {
			return energy.NewSolarModelAmpChecked(p.Uint64("seed", 0), p.Float("amplitude", 10))
		},
	})
	RegisterSource(SourceDef{
		Name: "constant",
		Help: "constant-power source",
		Params: []Param{{
			Name: "power", Type: TypeFloat, Required: true, Min: floatPtr(0),
			Help: "harvested power, in the experiment's energy units per time unit",
		}},
		New: func(p Params) (energy.Source, error) {
			return energy.NewConstantChecked(p.Float("power", 0))
		},
	})
	RegisterSource(SourceDef{
		Name: "two-mode",
		Help: "square-wave day/night source",
		Params: []Param{
			{Name: "day", Type: TypeFloat, Required: true, Help: "daytime power"},
			{Name: "night", Type: TypeFloat, Required: true, Help: "nighttime power"},
			{Name: "period", Type: TypeFloat, Required: true, Help: "full day length"},
			{Name: "day_len", Type: TypeFloat, Required: true, Help: "daytime length within each period"},
		},
		New: func(p Params) (energy.Source, error) {
			return energy.NewTwoModeChecked(
				p.Float("day", 0), p.Float("night", 0), p.Float("period", 0), p.Float("day_len", 0))
		},
	})
	RegisterSource(SourceDef{
		Name: "trace",
		Help: "replayed power trace, one sample per time unit, wrapping",
		Params: []Param{
			{Name: "samples", Type: TypeFloats, Required: true, Help: "power samples"},
			{Name: "label", Type: TypeString, Default: "trace", Help: "source name reported in manifests"},
		},
		New: func(p Params) (energy.Source, error) {
			return energy.NewTraceChecked(p.Str("label", "trace"), p.Floats("samples"))
		},
	})
}

func registerBuiltinPredictors() {
	RegisterPredictor(PredictorDef{
		Name: "ewma",
		Help: "exponentially weighted moving average of observed power (the default)",
		Params: []Param{{
			Name: "alpha", Type: TypeFloat, Default: 0.2, Help: "smoothing factor in (0, 1]",
		}},
		New: func(p Params) (PredictorFactory, error) {
			alpha := p.Float("alpha", 0.2)
			if _, err := energy.NewEWMAChecked(alpha); err != nil {
				return nil, err
			}
			return func(energy.Source) energy.Predictor { return energy.NewEWMA(alpha) }, nil
		},
		Ref: func(p Params) (PredictorFactory, error) {
			alpha := p.Float("alpha", 0.2)
			if _, err := energy.NewEWMAChecked(alpha); err != nil {
				return nil, err
			}
			return func(energy.Source) energy.Predictor { return refimpl.NewEWMA(alpha) }, nil
		},
	})
	RegisterPredictor(PredictorDef{
		Name: "oracle",
		Help: "perfect foresight: integrates the source itself",
		New: func(Params) (PredictorFactory, error) {
			return func(src energy.Source) energy.Predictor { return energy.NewOracle(src) }, nil
		},
		Ref: func(Params) (PredictorFactory, error) {
			return func(src energy.Source) energy.Predictor { return refimpl.NewOracle(src) }, nil
		},
	})
	RegisterPredictor(PredictorDef{
		Name: "slot-ewma",
		Help: "per-slot EWMA over a periodic envelope (diurnal profile learner)",
		Params: []Param{
			{Name: "period", Type: TypeFloat, Default: energy.EnvelopePeriod, Help: "envelope period"},
			{Name: "slots", Type: TypeInt, Default: 64, Min: floatPtr(1), Help: "slots per period"},
			{Name: "alpha", Type: TypeFloat, Default: 0.3, Help: "per-slot smoothing factor in (0, 1]"},
		},
		New: func(p Params) (PredictorFactory, error) {
			period := p.Float("period", energy.EnvelopePeriod)
			slots := p.Int("slots", 64)
			alpha := p.Float("alpha", 0.3)
			if _, err := energy.NewSlotEWMAChecked(period, slots, alpha); err != nil {
				return nil, err
			}
			return func(energy.Source) energy.Predictor {
				return energy.NewSlotEWMA(period, slots, alpha)
			}, nil
		},
	})
	RegisterPredictor(PredictorDef{
		Name: "wcma",
		Help: "weather-conditioned moving average over recent days",
		Params: []Param{
			{Name: "period", Type: TypeFloat, Default: energy.EnvelopePeriod, Help: "day length"},
			{Name: "slots", Type: TypeInt, Default: 48, Min: floatPtr(1), Help: "slots per day"},
			{Name: "days", Type: TypeInt, Default: 4, Min: floatPtr(1), Help: "days of history"},
			{Name: "k", Type: TypeInt, Default: 8, Min: floatPtr(1), Help: "conditioning window, in slots"},
		},
		New: func(p Params) (PredictorFactory, error) {
			period := p.Float("period", energy.EnvelopePeriod)
			slots := p.Int("slots", 48)
			days := p.Int("days", 4)
			k := p.Int("k", 8)
			if period <= 0 {
				return nil, fmt.Errorf("energy: wcma period %v <= 0", period)
			}
			return func(energy.Source) energy.Predictor {
				return energy.NewWCMA(period, slots, days, k)
			}, nil
		},
	})
	RegisterPredictor(PredictorDef{
		Name: "moving-average",
		Help: "uniform moving average of the last window observations",
		Params: []Param{{
			Name: "window", Type: TypeInt, Default: 30, Min: floatPtr(1), Help: "observation window",
		}},
		New: func(p Params) (PredictorFactory, error) {
			window := p.Int("window", 30)
			if _, err := energy.NewMovingAverageChecked(window); err != nil {
				return nil, err
			}
			return func(energy.Source) energy.Predictor {
				return energy.NewMovingAverage(window)
			}, nil
		},
	})
	RegisterPredictor(PredictorDef{
		Name: "last-value",
		Help: "persistence forecast: the last observed power holds",
		New: func(Params) (PredictorFactory, error) {
			return func(energy.Source) energy.Predictor { return energy.NewLastValue() }, nil
		},
		Ref: func(Params) (PredictorFactory, error) {
			return func(energy.Source) energy.Predictor { return refimpl.NewLastValue() }, nil
		},
	})
	RegisterPredictor(PredictorDef{
		Name: "zero",
		Help: "predicts no future harvest (maximally conservative)",
		New: func(Params) (PredictorFactory, error) {
			return func(energy.Source) energy.Predictor { return energy.Zero{} }, nil
		},
		Ref: func(Params) (PredictorFactory, error) {
			return func(energy.Source) energy.Predictor { return refimpl.Zero{} }, nil
		},
	})
}

func registerBuiltinTaskModels() {
	RegisterTaskModel(TaskModelDef{
		Name: "periodic",
		Help: "the paper's §5.1 periodic workload: periods from a menu, energies U[0, P̄s·T], WCETs scaled to the target utilization",
		Params: []Param{{
			Name: "periods", Type: TypeFloats,
			Help: "period menu; defaults to the paper's {10, 20, …, 100}",
		}},
		Generate: func(g TaskGen, p Params, r *rng.RNG) ([]task.Task, error) {
			periods := p.Floats("periods")
			if len(periods) == 0 {
				periods = task.PaperPeriods()
			}
			return task.Generate(task.GeneratorConfig{
				NumTasks:         g.NumTasks,
				Periods:          periods,
				MeanHarvestPower: g.MeanHarvestPower,
				PMax:             g.PMax,
				TargetU:          g.TargetU,
			}, r)
		},
	})
}
