package registry

import (
	"github.com/eadvfs/eadvfs/internal/cpu"
	"github.com/eadvfs/eadvfs/internal/spec"
)

// Capability is the wire form of one registration: its name, help text
// and parameter schema, exactly as registered. GET /v1/capabilities
// serves a Capabilities document so a fleet coordinator (eactl, fabric)
// can enumerate what a worker build supports without guessing.
type Capability struct {
	Name   string  `json:"name"`
	Help   string  `json:"help,omitempty"`
	Params []Param `json:"params,omitempty"`
}

// Capabilities is the registry's wire snapshot. Ordering is registration
// order, so two identical builds serve byte-identical documents.
type Capabilities struct {
	Schema     int          `json:"schema"` // spec schema version this build speaks
	Policies   []Capability `json:"policies"`
	Sources    []Capability `json:"sources"`
	Predictors []Capability `json:"predictors"`
	TaskModels []Capability `json:"task_models"`

	// SleepPresets names the DPM configurations the v2 "sleep" spec
	// member accepts (cpu.SleepPresetNames) — not a registry axis, but
	// part of what a coordinator must know to plan sleep ablations.
	SleepPresets []string `json:"sleep_presets"`
}

func capOf(name, help string, params []Param) Capability {
	return Capability{Name: name, Help: help, Params: params}
}

// Snapshot captures the current registry as a Capabilities document.
func Snapshot() Capabilities {
	reg.mu.RLock()
	defer reg.mu.RUnlock()
	out := Capabilities{
		Schema:       spec.Current,
		Policies:     make([]Capability, 0, len(reg.policies)),
		Sources:      make([]Capability, 0, len(reg.sources)),
		Predictors:   make([]Capability, 0, len(reg.predictors)),
		TaskModels:   make([]Capability, 0, len(reg.taskModels)),
		SleepPresets: cpu.SleepPresetNames(),
	}
	for _, d := range reg.policies {
		out.Policies = append(out.Policies, capOf(d.Name, d.Help, d.Params))
	}
	for _, d := range reg.sources {
		out.Sources = append(out.Sources, capOf(d.Name, d.Help, d.Params))
	}
	for _, d := range reg.predictors {
		out.Predictors = append(out.Predictors, capOf(d.Name, d.Help, d.Params))
	}
	for _, d := range reg.taskModels {
		out.TaskModels = append(out.TaskModels, capOf(d.Name, d.Help, d.Params))
	}
	return out
}
