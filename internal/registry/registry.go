// Package registry is the pluggable scenario registry: the single place
// where scheduling policies, energy sources, harvest predictors and task
// models are known by name. Every layer that used to switch on name
// strings — the eadvfs facade, the experiment harness, the CLIs, the
// HTTP service and the differential-verification harness — resolves
// through it instead, so a new scenario lands as one registration, not
// engine surgery (ROADMAP item 5, DESIGN.md §16).
//
// A registration is self-describing: a name, help text, and a parameter
// schema (name, type, default, range, required) that the registry
// validates before any constructor runs. The schemas are serialized
// verbatim by GET /v1/capabilities (internal/service), so a fleet
// coordinator can enumerate what a worker supports without guessing.
//
// Registrations carry an optional reference-implementation hook (Ref):
// the differential harness (internal/verify) auto-enumerates the registry
// and sweeps EVERY registered policy against the reference engine, using
// Ref when a hand-written naive counterpart exists (internal/refimpl) and
// falling back to the optimized constructor otherwise — the fallback
// still cross-checks the two engines on a shared policy implementation.
// Registering a policy therefore buys its differential coverage for free,
// and a registration that diverges from the reference engine fails
// `go test ./internal/verify` with a minimized counterexample.
//
// Duplicate registrations panic (they are init-time programming errors);
// unknown-name lookups return a typed *UnknownError listing the
// registered names, which the service surfaces as HTTP 400.
package registry

import (
	"fmt"
	"math"
	"reflect"
	"sort"
	"strings"
	"sync"

	"github.com/eadvfs/eadvfs/internal/energy"
	"github.com/eadvfs/eadvfs/internal/rng"
	"github.com/eadvfs/eadvfs/internal/sched"
	"github.com/eadvfs/eadvfs/internal/task"
)

// Kind names a registry namespace.
type Kind string

// The registry's namespaces.
const (
	KindPolicy    Kind = "policy"
	KindSource    Kind = "source"
	KindPredictor Kind = "predictor"
	KindTaskModel Kind = "task model"
)

// ParamType is the wire type of a parameter value.
type ParamType string

// Parameter value types. JSON numbers arrive as float64; Int and Uint
// additionally demand integral (and for Uint non-negative) values.
const (
	TypeFloat  ParamType = "float"
	TypeInt    ParamType = "int"
	TypeUint   ParamType = "uint"
	TypeBool   ParamType = "bool"
	TypeString ParamType = "string"
	TypeFloats ParamType = "[]float"
)

// Param is one entry of a registration's parameter schema. Min/Max bound
// numeric parameters inclusively when non-nil.
type Param struct {
	Name     string    `json:"name"`
	Type     ParamType `json:"type"`
	Help     string    `json:"help,omitempty"`
	Default  any       `json:"default,omitempty"`
	Required bool      `json:"required,omitempty"`
	Min      *float64  `json:"min,omitempty"`
	Max      *float64  `json:"max,omitempty"`
}

// Params carries the caller-supplied parameter values of one resolution,
// keyed by parameter name. Values may come from JSON (float64, bool,
// string, []any) or from Go callers (any numeric type, []float64); the
// typed getters coerce both.
type Params map[string]any

// toFloat coerces the numeric types a Params value can legally hold.
func toFloat(v any) (float64, bool) {
	switch n := v.(type) {
	case float64:
		return n, true
	case float32:
		return float64(n), true
	case int:
		return float64(n), true
	case int64:
		return float64(n), true
	case uint64:
		return float64(n), true
	case uint:
		return float64(n), true
	}
	return 0, false
}

// Float returns the named parameter as a float64, or def when absent.
func (p Params) Float(name string, def float64) float64 {
	if v, ok := p[name]; ok {
		if f, ok := toFloat(v); ok {
			return f
		}
	}
	return def
}

// Int returns the named parameter as an int, or def when absent.
func (p Params) Int(name string, def int) int {
	if v, ok := p[name]; ok {
		switch n := v.(type) {
		case int:
			return n
		case int64:
			return int(n)
		}
		if f, ok := toFloat(v); ok {
			return int(f)
		}
	}
	return def
}

// Uint64 returns the named parameter as a uint64, or def when absent.
// Integer-typed values pass through exactly — a 64-bit seed must not
// round-trip through float64 (bits above 2⁵³ would be lost, and the
// seed is the trace's identity).
func (p Params) Uint64(name string, def uint64) uint64 {
	if v, ok := p[name]; ok {
		switch n := v.(type) {
		case uint64:
			return n
		case uint:
			return uint64(n)
		case int64:
			if n >= 0 {
				return uint64(n)
			}
			return def
		case int:
			if n >= 0 {
				return uint64(n)
			}
			return def
		}
		if f, ok := toFloat(v); ok && f >= 0 {
			return uint64(f)
		}
	}
	return def
}

// Str returns the named parameter as a string, or def when absent.
func (p Params) Str(name, def string) string {
	if v, ok := p[name]; ok {
		if s, ok := v.(string); ok {
			return s
		}
	}
	return def
}

// Bool returns the named parameter as a bool, or def when absent.
func (p Params) Bool(name string, def bool) bool {
	if v, ok := p[name]; ok {
		if b, ok := v.(bool); ok {
			return b
		}
	}
	return def
}

// Floats returns the named parameter as a []float64, or nil when absent.
// JSON arrays arrive as []any and are converted.
func (p Params) Floats(name string) []float64 {
	v, ok := p[name]
	if !ok {
		return nil
	}
	switch a := v.(type) {
	case []float64:
		return a
	case []any:
		out := make([]float64, len(a))
		for i, e := range a {
			f, ok := toFloat(e)
			if !ok {
				return nil
			}
			out[i] = f
		}
		return out
	}
	return nil
}

// UnknownError reports a lookup of a name nobody registered. Its message
// lists the registered names, so the HTTP 400 a bad spec earns tells the
// client exactly what this build supports.
type UnknownError struct {
	Kind  Kind
	Name  string
	Known []string
}

func (e *UnknownError) Error() string {
	return fmt.Sprintf("registry: unknown %s %q (registered: %s)",
		e.Kind, e.Name, strings.Join(e.Known, ", "))
}

// ParamError reports a parameter value the schema rejects.
type ParamError struct {
	Kind   Kind
	Owner  string // the registration the parameters were meant for
	Param  string
	Reason string
}

func (e *ParamError) Error() string {
	return fmt.Sprintf("registry: %s %q: parameter %q: %s", e.Kind, e.Owner, e.Param, e.Reason)
}

// checkValue type- and range-checks one supplied value against its schema
// entry.
func checkValue(kind Kind, owner string, sp Param, v any) error {
	bad := func(reason string) error {
		return &ParamError{Kind: kind, Owner: owner, Param: sp.Name, Reason: reason}
	}
	switch sp.Type {
	case TypeFloat, TypeInt, TypeUint:
		f, ok := toFloat(v)
		if !ok {
			return bad(fmt.Sprintf("want %s, got %T", sp.Type, v))
		}
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return bad(fmt.Sprintf("non-finite value %v", f))
		}
		if sp.Type != TypeFloat && f != math.Trunc(f) {
			return bad(fmt.Sprintf("want an integer, got %v", f))
		}
		if sp.Type == TypeUint && f < 0 {
			return bad(fmt.Sprintf("want a non-negative integer, got %v", f))
		}
		if sp.Min != nil && f < *sp.Min {
			return bad(fmt.Sprintf("%v below minimum %v", f, *sp.Min))
		}
		if sp.Max != nil && f > *sp.Max {
			return bad(fmt.Sprintf("%v above maximum %v", f, *sp.Max))
		}
	case TypeBool:
		if _, ok := v.(bool); !ok {
			return bad(fmt.Sprintf("want bool, got %T", v))
		}
	case TypeString:
		if _, ok := v.(string); !ok {
			return bad(fmt.Sprintf("want string, got %T", v))
		}
	case TypeFloats:
		switch a := v.(type) {
		case []float64:
		case []any:
			for _, e := range a {
				if _, ok := toFloat(e); !ok {
					return bad(fmt.Sprintf("want []float, element is %T", e))
				}
			}
		default:
			return bad(fmt.Sprintf("want []float, got %T", v))
		}
	default:
		return bad(fmt.Sprintf("schema declares unknown type %q", sp.Type))
	}
	return nil
}

// ValidateParams checks supplied parameter values against a schema:
// every supplied name must exist in the schema with a value of the
// declared type inside the declared range, and every required parameter
// must be supplied. Errors are typed *ParamError values.
func ValidateParams(kind Kind, owner string, schema []Param, p Params) error {
	byName := make(map[string]Param, len(schema))
	names := make([]string, 0, len(schema))
	for _, sp := range schema {
		byName[sp.Name] = sp
		names = append(names, sp.Name)
	}
	// Deterministic error selection: report the alphabetically first
	// offending supplied parameter, not map-iteration roulette.
	supplied := make([]string, 0, len(p))
	for name := range p {
		supplied = append(supplied, name)
	}
	sort.Strings(supplied)
	for _, name := range supplied {
		sp, ok := byName[name]
		if !ok {
			reason := "unknown parameter (schema has none)"
			if len(names) > 0 {
				reason = fmt.Sprintf("unknown parameter (schema: %s)", strings.Join(names, ", "))
			}
			return &ParamError{Kind: kind, Owner: owner, Param: name, Reason: reason}
		}
		if err := checkValue(kind, owner, sp, p[name]); err != nil {
			return err
		}
	}
	for _, sp := range schema {
		if sp.Required {
			if _, ok := p[sp.Name]; !ok {
				return &ParamError{Kind: kind, Owner: owner, Param: sp.Name, Reason: "required parameter missing"}
			}
		}
	}
	return nil
}

// PredictorFactory builds a fresh predictor per run, given the run's
// energy source (only the oracle uses it).
type PredictorFactory func(src energy.Source) energy.Predictor

// PolicyDef registers a scheduling policy. New builds a fresh instance
// per run (EA-DVFS carries per-job state, so instances must never be
// shared across runs). Ref, when non-nil, builds the naive
// reference-engine counterpart (internal/refimpl) the differential
// harness compares against; nil falls back to New, which still
// cross-checks the optimized engine against the reference engine on a
// shared policy implementation.
type PolicyDef struct {
	Name   string
	Help   string
	Params []Param
	New    func(Params) (sched.Policy, error)
	Ref    func(Params) (sched.Policy, error)
}

// HasParam reports whether the def's schema declares the named parameter.
func (d PolicyDef) HasParam(name string) bool { return hasParam(d.Params, name) }

// Factory validates params against the schema, probes the constructor
// once (so a bad combination fails at resolution, not mid-sweep), and
// returns a per-run factory.
func (d PolicyDef) Factory(p Params) (func() sched.Policy, error) {
	if err := ValidateParams(KindPolicy, d.Name, d.Params, p); err != nil {
		return nil, err
	}
	if _, err := d.New(p); err != nil {
		return nil, err
	}
	return func() sched.Policy {
		pol, err := d.New(p)
		if err != nil {
			panic(fmt.Sprintf("registry: policy %q constructor failed after validation: %v", d.Name, err))
		}
		return pol
	}, nil
}

// RefFactory is Factory for the reference-engine side: Ref when present,
// the optimized constructor otherwise.
func (d PolicyDef) RefFactory(p Params) (func() sched.Policy, error) {
	if d.Ref == nil {
		return d.Factory(p)
	}
	if err := ValidateParams(KindPolicy, d.Name, d.Params, p); err != nil {
		return nil, err
	}
	if _, err := d.Ref(p); err != nil {
		return nil, err
	}
	return func() sched.Policy {
		pol, err := d.Ref(p)
		if err != nil {
			panic(fmt.Sprintf("registry: policy %q reference constructor failed after validation: %v", d.Name, err))
		}
		return pol
	}, nil
}

// SourceDef registers an energy source kind. New builds a fresh instance
// per call: memoizing sources (SolarModel) are deterministic in their
// seed, so two instances built from the same params realize bit-identical
// traces — the isolation rule the differential harness depends on.
type SourceDef struct {
	Name   string
	Help   string
	Params []Param
	New    func(Params) (energy.Source, error)
}

// HasParam reports whether the def's schema declares the named parameter.
func (d SourceDef) HasParam(name string) bool { return hasParam(d.Params, name) }

// Build validates params and constructs the source.
func (d SourceDef) Build(p Params) (energy.Source, error) {
	if err := ValidateParams(KindSource, d.Name, d.Params, p); err != nil {
		return nil, err
	}
	return d.New(p)
}

// PredictorDef registers a harvest predictor. Ref mirrors PolicyDef.Ref.
type PredictorDef struct {
	Name   string
	Help   string
	Params []Param
	New    func(Params) (PredictorFactory, error)
	Ref    func(Params) (PredictorFactory, error)
}

// HasParam reports whether the def's schema declares the named parameter.
func (d PredictorDef) HasParam(name string) bool { return hasParam(d.Params, name) }

// Factory validates params and returns the per-run predictor factory.
func (d PredictorDef) Factory(p Params) (PredictorFactory, error) {
	if err := ValidateParams(KindPredictor, d.Name, d.Params, p); err != nil {
		return nil, err
	}
	return d.New(p)
}

// RefFactory is Factory for the reference-engine side: Ref when present,
// the optimized constructor otherwise.
func (d PredictorDef) RefFactory(p Params) (PredictorFactory, error) {
	if d.Ref == nil {
		return d.Factory(p)
	}
	if err := ValidateParams(KindPredictor, d.Name, d.Params, p); err != nil {
		return nil, err
	}
	return d.Ref(p)
}

// TaskGen is the contextual material a task model derives a workload
// from: the knobs every generator shares, bound by the caller (spec
// utilization, processor power, source mean) rather than spelled per
// registration.
type TaskGen struct {
	NumTasks         int
	TargetU          float64
	MeanHarvestPower float64
	PMax             float64
}

// TaskModelDef registers a workload generator.
type TaskModelDef struct {
	Name     string
	Help     string
	Params   []Param
	Generate func(g TaskGen, p Params, r *rng.RNG) ([]task.Task, error)
}

// HasParam reports whether the def's schema declares the named parameter.
func (d TaskModelDef) HasParam(name string) bool { return hasParam(d.Params, name) }

// Build validates params and generates the task set.
func (d TaskModelDef) Build(g TaskGen, p Params, r *rng.RNG) ([]task.Task, error) {
	if err := ValidateParams(KindTaskModel, d.Name, d.Params, p); err != nil {
		return nil, err
	}
	return d.Generate(g, p, r)
}

func hasParam(schema []Param, name string) bool {
	for _, sp := range schema {
		if sp.Name == name {
			return true
		}
	}
	return false
}

// The registry proper. Registrations happen at init time (builtin.go and
// any future scenario packages); lookups happen on every resolution, so
// reads take the shared lock. Enumeration order is registration order —
// deterministic because init order is — and is the order capabilities
// documents and CLI help lists present.
var reg = struct {
	mu         sync.RWMutex
	policies   []PolicyDef
	sources    []SourceDef
	predictors []PredictorDef
	taskModels []TaskModelDef
}{}

// checkDef panics on malformed registrations: they are programming
// errors, caught at init in any test run.
func checkDef(kind Kind, name string, ctor any, schema []Param, taken func(string) bool) {
	if name == "" {
		panic(fmt.Sprintf("registry: Register%s with empty name", kindTitle(kind)))
	}
	// ctor arrives as an interface wrapping a typed func value, so a nil
	// function is a non-nil interface — unwrap with reflect.
	if ctor == nil || reflect.ValueOf(ctor).IsNil() {
		panic(fmt.Sprintf("registry: %s %q registered with nil constructor", kind, name))
	}
	if taken(name) {
		panic(fmt.Sprintf("registry: duplicate %s registration %q", kind, name))
	}
	seen := make(map[string]bool, len(schema))
	for _, sp := range schema {
		if sp.Name == "" {
			panic(fmt.Sprintf("registry: %s %q declares a parameter with no name", kind, name))
		}
		if seen[sp.Name] {
			panic(fmt.Sprintf("registry: %s %q declares parameter %q twice", kind, name, sp.Name))
		}
		seen[sp.Name] = true
		switch sp.Type {
		case TypeFloat, TypeInt, TypeUint, TypeBool, TypeString, TypeFloats:
		default:
			panic(fmt.Sprintf("registry: %s %q parameter %q has unknown type %q", kind, name, sp.Name, sp.Type))
		}
		if sp.Default != nil {
			if err := checkValue(kind, name, sp, sp.Default); err != nil {
				panic(fmt.Sprintf("registry: %s %q parameter %q default rejected by its own schema: %v",
					kind, name, sp.Name, err))
			}
		}
	}
}

func kindTitle(k Kind) string {
	switch k {
	case KindPolicy:
		return "Policy"
	case KindSource:
		return "Source"
	case KindPredictor:
		return "Predictor"
	case KindTaskModel:
		return "TaskModel"
	}
	return string(k)
}

// RegisterPolicy adds a scheduling policy to the registry. It panics on a
// duplicate or malformed registration.
func RegisterPolicy(def PolicyDef) {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	checkDef(KindPolicy, def.Name, def.New, def.Params, func(n string) bool {
		_, ok := findPolicy(n)
		return ok
	})
	reg.policies = append(reg.policies, def)
}

// RegisterSource adds an energy-source kind to the registry. It panics on
// a duplicate or malformed registration.
func RegisterSource(def SourceDef) {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	checkDef(KindSource, def.Name, def.New, def.Params, func(n string) bool {
		_, ok := findSource(n)
		return ok
	})
	reg.sources = append(reg.sources, def)
}

// RegisterPredictor adds a harvest predictor to the registry. It panics
// on a duplicate or malformed registration.
func RegisterPredictor(def PredictorDef) {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	checkDef(KindPredictor, def.Name, def.New, def.Params, func(n string) bool {
		_, ok := findPredictor(n)
		return ok
	})
	reg.predictors = append(reg.predictors, def)
}

// RegisterTaskModel adds a workload generator to the registry. It panics
// on a duplicate or malformed registration.
func RegisterTaskModel(def TaskModelDef) {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	checkDef(KindTaskModel, def.Name, def.Generate, def.Params, func(n string) bool {
		_, ok := findTaskModel(n)
		return ok
	})
	reg.taskModels = append(reg.taskModels, def)
}

func findPolicy(name string) (PolicyDef, bool) {
	for _, d := range reg.policies {
		if d.Name == name {
			return d, true
		}
	}
	return PolicyDef{}, false
}

func findSource(name string) (SourceDef, bool) {
	for _, d := range reg.sources {
		if d.Name == name {
			return d, true
		}
	}
	return SourceDef{}, false
}

func findPredictor(name string) (PredictorDef, bool) {
	for _, d := range reg.predictors {
		if d.Name == name {
			return d, true
		}
	}
	return PredictorDef{}, false
}

func findTaskModel(name string) (TaskModelDef, bool) {
	for _, d := range reg.taskModels {
		if d.Name == name {
			return d, true
		}
	}
	return TaskModelDef{}, false
}

// Policy resolves a registered policy by name; the error is a typed
// *UnknownError listing the registered names.
func Policy(name string) (PolicyDef, error) {
	reg.mu.RLock()
	defer reg.mu.RUnlock()
	if d, ok := findPolicy(name); ok {
		return d, nil
	}
	return PolicyDef{}, &UnknownError{Kind: KindPolicy, Name: name, Known: policyNamesLocked()}
}

// Source resolves a registered energy-source kind by name.
func Source(name string) (SourceDef, error) {
	reg.mu.RLock()
	defer reg.mu.RUnlock()
	if d, ok := findSource(name); ok {
		return d, nil
	}
	return SourceDef{}, &UnknownError{Kind: KindSource, Name: name, Known: sourceNamesLocked()}
}

// Predictor resolves a registered predictor by name. The empty name is an
// alias for "ewma", the paper's default, preserving the leniency every
// pre-registry resolution path had.
func Predictor(name string) (PredictorDef, error) {
	if name == "" {
		name = "ewma"
	}
	reg.mu.RLock()
	defer reg.mu.RUnlock()
	if d, ok := findPredictor(name); ok {
		return d, nil
	}
	return PredictorDef{}, &UnknownError{Kind: KindPredictor, Name: name, Known: predictorNamesLocked()}
}

// TaskModel resolves a registered workload generator by name. The empty
// name is an alias for "periodic", the paper's workload.
func TaskModel(name string) (TaskModelDef, error) {
	if name == "" {
		name = "periodic"
	}
	reg.mu.RLock()
	defer reg.mu.RUnlock()
	if d, ok := findTaskModel(name); ok {
		return d, nil
	}
	return TaskModelDef{}, &UnknownError{Kind: KindTaskModel, Name: name, Known: taskModelNamesLocked()}
}

func policyNamesLocked() []string {
	out := make([]string, len(reg.policies))
	for i, d := range reg.policies {
		out[i] = d.Name
	}
	return out
}

func sourceNamesLocked() []string {
	out := make([]string, len(reg.sources))
	for i, d := range reg.sources {
		out[i] = d.Name
	}
	return out
}

func predictorNamesLocked() []string {
	out := make([]string, len(reg.predictors))
	for i, d := range reg.predictors {
		out[i] = d.Name
	}
	return out
}

func taskModelNamesLocked() []string {
	out := make([]string, len(reg.taskModels))
	for i, d := range reg.taskModels {
		out[i] = d.Name
	}
	return out
}

// Policies returns every registered policy in registration order.
func Policies() []PolicyDef {
	reg.mu.RLock()
	defer reg.mu.RUnlock()
	out := make([]PolicyDef, len(reg.policies))
	copy(out, reg.policies)
	return out
}

// Sources returns every registered source kind in registration order.
func Sources() []SourceDef {
	reg.mu.RLock()
	defer reg.mu.RUnlock()
	out := make([]SourceDef, len(reg.sources))
	copy(out, reg.sources)
	return out
}

// Predictors returns every registered predictor in registration order.
func Predictors() []PredictorDef {
	reg.mu.RLock()
	defer reg.mu.RUnlock()
	out := make([]PredictorDef, len(reg.predictors))
	copy(out, reg.predictors)
	return out
}

// TaskModels returns every registered task model in registration order.
func TaskModels() []TaskModelDef {
	reg.mu.RLock()
	defer reg.mu.RUnlock()
	out := make([]TaskModelDef, len(reg.taskModels))
	copy(out, reg.taskModels)
	return out
}

// PolicyNames returns the registered policy names in registration order.
func PolicyNames() []string {
	reg.mu.RLock()
	defer reg.mu.RUnlock()
	return policyNamesLocked()
}

// SourceNames returns the registered source kinds in registration order.
func SourceNames() []string {
	reg.mu.RLock()
	defer reg.mu.RUnlock()
	return sourceNamesLocked()
}

// PredictorNames returns the registered predictor names in registration
// order.
func PredictorNames() []string {
	reg.mu.RLock()
	defer reg.mu.RUnlock()
	return predictorNamesLocked()
}

// TaskModelNames returns the registered task-model names in registration
// order.
func TaskModelNames() []string {
	reg.mu.RLock()
	defer reg.mu.RUnlock()
	return taskModelNamesLocked()
}
