package registry

import (
	"errors"
	"strings"
	"testing"

	"github.com/eadvfs/eadvfs/internal/sched"
)

// TestBuiltinEnumerationOrder pins registration order as API: the facade's
// Policies()/Predictors() lists (and the capabilities document) present
// this order, and example output is golden-tested against it.
func TestBuiltinEnumerationOrder(t *testing.T) {
	wantPolicies := []string{"ea-dvfs", "ea-dvfs-dynamic", "lsa", "edf", "static-dvfs", "greedy-stretch"}
	if got := PolicyNames(); !equalPrefix(got, wantPolicies) {
		t.Errorf("PolicyNames() = %v, want prefix %v", got, wantPolicies)
	}
	wantPredictors := []string{"ewma", "oracle", "slot-ewma", "wcma", "moving-average", "last-value", "zero"}
	if got := PredictorNames(); !equalPrefix(got, wantPredictors) {
		t.Errorf("PredictorNames() = %v, want prefix %v", got, wantPredictors)
	}
	wantSources := []string{"solar", "constant", "two-mode", "trace"}
	if got := SourceNames(); !equalPrefix(got, wantSources) {
		t.Errorf("SourceNames() = %v, want prefix %v", got, wantSources)
	}
	if got := TaskModelNames(); len(got) == 0 || got[0] != "periodic" {
		t.Errorf("TaskModelNames() = %v, want periodic first", got)
	}
}

// equalPrefix reports whether got begins with want — other test binaries
// (and future scenario packages) may register more entries after the
// built-ins, but the built-in prefix must hold.
func equalPrefix(got, want []string) bool {
	if len(got) < len(want) {
		return false
	}
	for i, w := range want {
		if got[i] != w {
			return false
		}
	}
	return true
}

// TestDuplicateRegistrationPanics: a duplicate name is an init-time
// programming error, every kind.
func TestDuplicateRegistrationPanics(t *testing.T) {
	cases := []struct {
		name     string
		register func()
	}{
		{"policy", func() {
			RegisterPolicy(PolicyDef{Name: "ea-dvfs",
				New: func(Params) (sched.Policy, error) { return sched.EDF{}, nil }})
		}},
		{"source", func() {
			RegisterSource(SourceDef{Name: "solar", New: Sources()[0].New})
		}},
		{"predictor", func() {
			RegisterPredictor(PredictorDef{Name: "ewma", New: Predictors()[0].New})
		}},
		{"task model", func() {
			RegisterTaskModel(TaskModelDef{Name: "periodic", Generate: TaskModels()[0].Generate})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("duplicate %s registration did not panic", tc.name)
				}
				if msg, ok := r.(string); !ok || !strings.Contains(msg, "duplicate") {
					t.Fatalf("panic message %v does not mention the duplicate", r)
				}
			}()
			tc.register()
		})
	}
}

// TestMalformedRegistrationPanics: empty names, nil constructors and
// self-rejecting parameter schemas fail at registration, not at first use.
func TestMalformedRegistrationPanics(t *testing.T) {
	newPolicy := func(Params) (sched.Policy, error) { return sched.EDF{}, nil }
	cases := []struct {
		name     string
		register func()
	}{
		{"empty name", func() { RegisterPolicy(PolicyDef{New: newPolicy}) }},
		{"nil constructor", func() { RegisterPolicy(PolicyDef{Name: "t-nil-ctor"}) }},
		{"unnamed param", func() {
			RegisterPolicy(PolicyDef{Name: "t-unnamed-param", New: newPolicy,
				Params: []Param{{Type: TypeFloat}}})
		}},
		{"duplicate param", func() {
			RegisterPolicy(PolicyDef{Name: "t-dup-param", New: newPolicy,
				Params: []Param{{Name: "x", Type: TypeFloat}, {Name: "x", Type: TypeFloat}}})
		}},
		{"unknown param type", func() {
			RegisterPolicy(PolicyDef{Name: "t-bad-type", New: newPolicy,
				Params: []Param{{Name: "x", Type: "complex128"}}})
		}},
		{"default violates own schema", func() {
			min := 1.0
			RegisterPolicy(PolicyDef{Name: "t-bad-default", New: newPolicy,
				Params: []Param{{Name: "x", Type: TypeFloat, Default: 0.0, Min: &min}}})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s registration did not panic", tc.name)
				}
			}()
			tc.register()
		})
	}
}

// TestUnknownLookupError: unknown names yield the typed *UnknownError
// whose message lists every registered name — the text a client sees in
// an HTTP 400 body.
func TestUnknownLookupError(t *testing.T) {
	_, err := Policy("no-such-policy")
	var ue *UnknownError
	if !errors.As(err, &ue) {
		t.Fatalf("Policy lookup error is %T, want *UnknownError", err)
	}
	if ue.Kind != KindPolicy || ue.Name != "no-such-policy" {
		t.Errorf("UnknownError fields = %+v", ue)
	}
	for _, name := range PolicyNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list registered policy %q", err, name)
		}
	}
	if _, err := Source("no-such-source"); !errors.As(err, &ue) {
		t.Errorf("Source lookup error is %T, want *UnknownError", err)
	}
	if _, err := Predictor("no-such-predictor"); !errors.As(err, &ue) {
		t.Errorf("Predictor lookup error is %T, want *UnknownError", err)
	}
	if _, err := TaskModel("no-such-model"); !errors.As(err, &ue) {
		t.Errorf("TaskModel lookup error is %T, want *UnknownError", err)
	}
}

// TestLookupAliases: the empty predictor and task-model names alias the
// paper defaults, preserving pre-registry leniency.
func TestLookupAliases(t *testing.T) {
	if d, err := Predictor(""); err != nil || d.Name != "ewma" {
		t.Errorf("Predictor(\"\") = %v, %v; want ewma", d.Name, err)
	}
	if d, err := TaskModel(""); err != nil || d.Name != "periodic" {
		t.Errorf("TaskModel(\"\") = %v, %v; want periodic", d.Name, err)
	}
}

// TestValidateParams is the schema validator's error-path table: unknown
// names, type mismatches, range violations, non-finite numbers, missing
// required parameters — each rejected with a typed *ParamError naming
// the offending parameter.
func TestValidateParams(t *testing.T) {
	min, max := 0.0, 1.0
	schema := []Param{
		{Name: "u", Type: TypeFloat, Min: &min, Max: &max},
		{Name: "n", Type: TypeInt},
		{Name: "seed", Type: TypeUint},
		{Name: "on", Type: TypeBool},
		{Name: "label", Type: TypeString},
		{Name: "samples", Type: TypeFloats, Required: true},
	}
	ok := Params{"samples": []float64{1, 2}}
	cases := []struct {
		name    string
		params  Params
		param   string // expected offending parameter
		wantErr bool
	}{
		{"valid full", Params{"u": 0.5, "n": 3, "seed": uint64(7), "on": true, "label": "x", "samples": []any{1.0, 2.0}}, "", false},
		{"valid minimal", ok, "", false},
		{"unknown param", Params{"samples": []float64{1}, "bogus": 1.0}, "bogus", true},
		{"wrong type string for float", Params{"samples": []float64{1}, "u": "high"}, "u", true},
		{"float for int", Params{"samples": []float64{1}, "n": 2.5}, "n", true},
		{"negative for uint", Params{"samples": []float64{1}, "seed": -1}, "seed", true},
		{"below min", Params{"samples": []float64{1}, "u": -0.1}, "u", true},
		{"above max", Params{"samples": []float64{1}, "u": 1.5}, "u", true},
		{"NaN", Params{"samples": []float64{1}, "u": nan()}, "u", true},
		{"bool as int", Params{"samples": []float64{1}, "n": true}, "n", true},
		{"non-numeric slice element", Params{"samples": []any{1.0, "x"}}, "samples", true},
		{"missing required", Params{"u": 0.5}, "samples", true},
		{"nil params missing required", nil, "samples", true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := ValidateParams(KindPolicy, "test-owner", schema, tc.params)
			if !tc.wantErr {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			var pe *ParamError
			if !errors.As(err, &pe) {
				t.Fatalf("error is %T (%v), want *ParamError", err, err)
			}
			if pe.Param != tc.param {
				t.Errorf("offending param = %q, want %q (err: %v)", pe.Param, tc.param, err)
			}
		})
	}
}

func nan() float64 {
	var zero float64
	return zero / zero
}

// TestPolicyFactoryValidates: Factory surfaces schema violations at
// resolve time, and a valid resolution probes the constructor once so a
// bad combination cannot panic mid-sweep.
func TestPolicyFactoryValidates(t *testing.T) {
	def, err := Policy("static-dvfs")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := def.Factory(Params{"utilization": 2.0}); err == nil {
		t.Error("utilization 2.0 accepted despite max 1")
	}
	if _, err := def.Factory(Params{"bogus": 1.0}); err == nil {
		t.Error("unknown parameter accepted")
	}
	f, err := def.Factory(Params{"utilization": 0.6})
	if err != nil {
		t.Fatal(err)
	}
	pol := f()
	if pol.Name() != "static-dvfs" {
		t.Errorf("built policy %q", pol.Name())
	}
	// RefFactory of a Ref-less def falls back to the optimized
	// constructor — differential coverage via the shared implementation.
	rf, err := def.RefFactory(Params{"utilization": 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if rf().Name() != "static-dvfs" {
		t.Error("RefFactory fallback built a different policy")
	}
}

// TestPredictorParamValidation: predictor constructors run their checked
// validation under Factory, so a bad alpha errors instead of panicking.
func TestPredictorParamValidation(t *testing.T) {
	def, err := Predictor("ewma")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := def.Factory(Params{"alpha": 7.0}); err == nil {
		t.Error("alpha 7.0 accepted")
	}
	f, err := def.Factory(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := f(nil).Name(); got != "ewma" {
		t.Errorf("default-built predictor %q", got)
	}
}
