// Package profiling wires the conventional -cpuprofile / -memprofile
// flags into the repo's binaries (eaexp, easim, eabench) so any
// experiment invocation can be profiled with `go tool pprof` without a
// bespoke harness.
package profiling

import (
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPU begins a CPU profile written to path and returns the stop
// function. With path == "" it is a no-op (stop is still non-nil).
func StartCPU(path string) (stop func(), err error) {
	if path == "" {
		return func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, err
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// WriteHeap forces a GC (so the allocation profile reflects live data and
// cumulative allocs up to now) and writes the heap profile to path. With
// path == "" it is a no-op.
func WriteHeap(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC()
	return pprof.WriteHeapProfile(f)
}
