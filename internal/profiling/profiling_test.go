package profiling

import (
	"os"
	"path/filepath"
	"testing"
)

func TestEmptyPathsAreNoOps(t *testing.T) {
	stop, err := StartCPU("")
	if err != nil {
		t.Fatal(err)
	}
	if stop == nil {
		t.Fatal("StartCPU(\"\") must still return a stop function")
	}
	stop() // must not panic
	if err := WriteHeap(""); err != nil {
		t.Fatal(err)
	}
}

func TestStartCPUWritesProfile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cpu.out")
	stop, err := StartCPU(path)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to sample; even an
	// empty profile carries the pprof header, which is what we check.
	sum := 0.0
	for i := 0; i < 1_000_000; i++ {
		sum += float64(i % 7)
	}
	_ = sum
	stop()
	assertPprofFile(t, path)
}

func TestWriteHeapWritesProfile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mem.out")
	if err := WriteHeap(path); err != nil {
		t.Fatal(err)
	}
	assertPprofFile(t, path)
}

func TestStartCPUBadPath(t *testing.T) {
	if _, err := StartCPU(filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.out")); err == nil {
		t.Fatal("uncreatable profile path must error")
	}
	if err := WriteHeap(filepath.Join(t.TempDir(), "no", "such", "dir", "mem.out")); err == nil {
		t.Fatal("uncreatable heap path must error")
	}
}

// assertPprofFile checks the profile exists, is non-empty and starts with
// the gzip magic — runtime/pprof emits gzipped protobuf, which is what
// `go tool pprof` parses. A header check catches truncated or plain-text
// garbage without depending on the profile package.
func assertPprofFile(t *testing.T, path string) {
	t.Helper()
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) == 0 {
		t.Fatalf("%s: empty profile", path)
	}
	if len(buf) < 2 || buf[0] != 0x1f || buf[1] != 0x8b {
		t.Fatalf("%s: not gzip-compressed (got % x…), not a pprof profile", path, buf[:min(4, len(buf))])
	}
}
