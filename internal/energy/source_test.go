package energy

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSolarModelDeterministic(t *testing.T) {
	a := NewSolarModel(42)
	b := NewSolarModel(42)
	for k := 0; k < 1000; k++ {
		if a.PowerAt(float64(k)) != b.PowerAt(float64(k)) {
			t.Fatalf("same-seed solar traces diverge at t=%d", k)
		}
	}
}

func TestSolarModelMemoized(t *testing.T) {
	s := NewSolarModel(7)
	// Query out of order; the trace must be a pure function of t.
	late := s.PowerAt(500.3)
	early := s.PowerAt(3.7)
	if s.PowerAt(500.9) != late {
		t.Fatal("PowerAt not constant within unit interval")
	}
	if s.PowerAt(3.1) != early {
		t.Fatal("re-query of earlier interval changed value")
	}
}

func TestSolarModelNonNegativeBounded(t *testing.T) {
	s := NewSolarModel(1)
	for k := 0; k < 5000; k++ {
		p := s.PowerAt(float64(k))
		if p < 0 {
			t.Fatalf("solar power %v < 0 at t=%d", p, k)
		}
		// |N| beyond 6 sigma is essentially impossible in 5000 draws.
		if p > 10*6 {
			t.Fatalf("solar power %v implausibly large at t=%d", p, k)
		}
	}
}

func TestSolarModelMeanPower(t *testing.T) {
	s := NewSolarModel(99)
	const horizon = 200000
	sum := 0.0
	for k := 0; k < horizon; k++ {
		sum += s.PowerAt(float64(k))
	}
	mean := sum / horizon
	want := s.MeanPower()
	if math.Abs(mean-want) > 0.05*want {
		t.Fatalf("empirical mean %v deviates >5%% from analytic %v", mean, want)
	}
}

func TestSolarEnvelopePeriodicity(t *testing.T) {
	// cos² envelope must repeat with period 70π².
	for _, tt := range []float64{0, 17.3, 123.4, 400} {
		a := Envelope(tt)
		b := Envelope(tt + EnvelopePeriod)
		if math.Abs(a-b) > 1e-9 {
			t.Fatalf("envelope not periodic: E(%v)=%v, E(+T)=%v", tt, a, b)
		}
	}
	// And it must actually dip to ~0 and rise to ~1 within one period.
	lo, hi := math.Inf(1), math.Inf(-1)
	for x := 0.0; x < EnvelopePeriod; x += 0.5 {
		e := Envelope(x)
		lo = math.Min(lo, e)
		hi = math.Max(hi, e)
	}
	if lo > 0.01 || hi < 0.99 {
		t.Fatalf("envelope range [%v, %v], want ~[0, 1]", lo, hi)
	}
}

func TestEnergyIntegratesExactly(t *testing.T) {
	// Against a constant source, Energy must be p*(t2-t1) exactly.
	c := NewConstant(3.5)
	got := Energy(c, 1.25, 7.75)
	want := 3.5 * 6.5
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("Energy = %v, want %v", got, want)
	}
}

func TestEnergyPiecewiseConstant(t *testing.T) {
	tr := NewTrace("t", []float64{1, 2, 3, 4})
	// [0.5, 2.5]: 0.5 of sample 1 + 1.0 of sample 2 + 0.5 of sample 3.
	got := Energy(tr, 0.5, 2.5)
	want := 0.5*1 + 1.0*2 + 0.5*3
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("Energy = %v, want %v", got, want)
	}
}

func TestEnergyZeroWidth(t *testing.T) {
	if e := Energy(NewConstant(5), 3, 3); e != 0 {
		t.Fatalf("zero-width Energy = %v", e)
	}
}

func TestEnergyPanicsOnInvertedInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("inverted interval did not panic")
		}
	}()
	Energy(NewConstant(1), 2, 1)
}

func TestEnergyAdditivityProperty(t *testing.T) {
	s := NewSolarModel(31)
	f := func(a, b, c uint16) bool {
		t1 := float64(a%1000) / 3
		mid := t1 + float64(b%500)/7
		t2 := mid + float64(c%500)/11
		whole := Energy(s, t1, t2)
		split := Energy(s, t1, mid) + Energy(s, mid, t2)
		return math.Abs(whole-split) <= 1e-9*(1+math.Abs(whole))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestTwoMode(t *testing.T) {
	m := NewTwoMode(10, 1, 24, 12)
	if got := m.PowerAt(3); got != 10 {
		t.Fatalf("day power = %v, want 10", got)
	}
	if got := m.PowerAt(13); got != 1 {
		t.Fatalf("night power = %v, want 1", got)
	}
	if got := m.PowerAt(24 + 3); got != 10 {
		t.Fatalf("second-day power = %v, want 10", got)
	}
	if got, want := m.MeanPower(), (10.0*12+1*12)/24; got != want {
		t.Fatalf("mean = %v, want %v", got, want)
	}
}

func TestTwoModeValidation(t *testing.T) {
	cases := []func(){
		func() { NewTwoMode(-1, 0, 10, 5) },
		func() { NewTwoMode(1, 1, 0, 0) },
		func() { NewTwoMode(1, 1, 10, 11) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestTraceWraps(t *testing.T) {
	tr := NewTrace("x", []float64{5, 6})
	if tr.PowerAt(0.5) != 5 || tr.PowerAt(1.5) != 6 || tr.PowerAt(2.5) != 5 {
		t.Fatal("trace does not wrap around")
	}
	if tr.MeanPower() != 5.5 {
		t.Fatalf("trace mean = %v", tr.MeanPower())
	}
}

func TestTraceValidation(t *testing.T) {
	for i, samples := range [][]float64{nil, {1, -2}, {math.NaN()}, {math.Inf(1)}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("trace case %d did not panic", i)
				}
			}()
			NewTrace("bad", samples)
		}()
	}
}

func TestScaledAndSum(t *testing.T) {
	c := NewConstant(2)
	s := NewScaled(c, 3)
	if s.PowerAt(0) != 6 || s.MeanPower() != 6 {
		t.Fatal("scaled source wrong")
	}
	sum := NewSum(c, s)
	if sum.PowerAt(1) != 8 || sum.MeanPower() != 8 {
		t.Fatal("sum source wrong")
	}
}

func TestSolarAmplitudeScaling(t *testing.T) {
	a := NewSolarModelAmp(5, 10)
	b := NewSolarModelAmp(5, 20)
	for k := 0; k < 100; k++ {
		pa, pb := a.PowerAt(float64(k)), b.PowerAt(float64(k))
		if math.Abs(pb-2*pa) > 1e-12 {
			t.Fatalf("amplitude not linear at t=%d: %v vs %v", k, pa, pb)
		}
	}
}
