package energy

import (
	"math"
	"testing"
	"testing/quick"
)

func TestOracleMatchesEnergy(t *testing.T) {
	s := NewSolarModel(3)
	o := NewOracle(s)
	for _, iv := range [][2]float64{{0, 10}, {5.5, 97.25}, {100, 100}} {
		if got, want := o.PredictEnergy(iv[0], iv[1]), Energy(s, iv[0], iv[1]); got != want {
			t.Fatalf("oracle(%v,%v) = %v, want %v", iv[0], iv[1], got, want)
		}
	}
}

func TestEWMAConvergesToConstant(t *testing.T) {
	e := NewEWMA(0.3)
	for k := 0; k < 200; k++ {
		e.Observe(float64(k), 4.0)
	}
	if got := e.PredictEnergy(200, 210); math.Abs(got-40) > 1e-9 {
		t.Fatalf("EWMA prediction = %v, want 40", got)
	}
}

func TestEWMAFirstObservationSeeds(t *testing.T) {
	e := NewEWMA(0.1)
	e.Observe(0, 8)
	if got := e.PredictEnergy(1, 2); math.Abs(got-8) > 1e-12 {
		t.Fatalf("after one observation prediction = %v, want 8", got)
	}
}

func TestEWMARecencyWeighting(t *testing.T) {
	e := NewEWMA(0.5)
	for k := 0; k < 50; k++ {
		e.Observe(float64(k), 1)
	}
	for k := 50; k < 60; k++ {
		e.Observe(float64(k), 10)
	}
	// After 10 steps at alpha=0.5, estimate must be within 1% of 10.
	got := e.PredictEnergy(60, 61)
	if got < 9.9 || got > 10 {
		t.Fatalf("EWMA after regime change = %v, want ~10", got)
	}
}

func TestEWMAValidation(t *testing.T) {
	for _, a := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("alpha %v did not panic", a)
				}
			}()
			NewEWMA(a)
		}()
	}
}

func TestSlotEWMALearnsProfile(t *testing.T) {
	// Square-wave source with period 10: power 8 on [0,5), 2 on [5,10).
	m := NewTwoMode(8, 2, 10, 5)
	p := NewSlotEWMA(10, 10, 0.5)
	for k := 0; k < 300; k++ {
		p.Observe(float64(k), m.PowerAt(float64(k)))
	}
	// Predict across one full future period: 8*5 + 2*5 = 50.
	got := p.PredictEnergy(300, 310)
	if math.Abs(got-50) > 0.5 {
		t.Fatalf("slot prediction over a period = %v, want ~50", got)
	}
	// Day-only window.
	got = p.PredictEnergy(300, 305)
	if math.Abs(got-40) > 0.5 {
		t.Fatalf("slot prediction over day half = %v, want ~40", got)
	}
}

func TestSlotEWMAUnseenSlotsFallBack(t *testing.T) {
	p := NewSlotEWMA(10, 10, 0.5)
	// Observe only the first two slots.
	p.Observe(0, 6)
	p.Observe(1, 6)
	// Unseen slot must use the mean of seen slots (6), not zero.
	got := p.PredictEnergy(7, 8)
	if math.Abs(got-6) > 1e-9 {
		t.Fatalf("unseen-slot prediction = %v, want 6", got)
	}
}

func TestSlotEWMAEmptyPredictsZero(t *testing.T) {
	p := NewSlotEWMA(10, 5, 0.5)
	if got := p.PredictEnergy(0, 10); got != 0 {
		t.Fatalf("empty slot predictor returned %v", got)
	}
}

func TestMovingAverageWindow(t *testing.T) {
	m := NewMovingAverage(3)
	m.Observe(0, 3)
	m.Observe(1, 6)
	if got := m.PredictEnergy(2, 3); math.Abs(got-4.5) > 1e-12 {
		t.Fatalf("partial-window mean prediction = %v, want 4.5", got)
	}
	m.Observe(2, 9)
	m.Observe(3, 12) // evicts the 3
	if got := m.PredictEnergy(4, 5); math.Abs(got-9) > 1e-12 {
		t.Fatalf("full-window mean prediction = %v, want 9", got)
	}
}

func TestMovingAverageEmpty(t *testing.T) {
	m := NewMovingAverage(4)
	if got := m.PredictEnergy(0, 5); got != 0 {
		t.Fatalf("empty moving average predicted %v", got)
	}
}

func TestLastValue(t *testing.T) {
	l := NewLastValue()
	if got := l.PredictEnergy(0, 4); got != 0 {
		t.Fatalf("unseeded last-value predicted %v", got)
	}
	l.Observe(0, 2)
	l.Observe(1, 7)
	if got := l.PredictEnergy(2, 4); math.Abs(got-14) > 1e-12 {
		t.Fatalf("last-value prediction = %v, want 14", got)
	}
}

func TestZeroPredictor(t *testing.T) {
	var z Zero
	z.Observe(0, 100)
	if got := z.PredictEnergy(0, 1000); got != 0 {
		t.Fatalf("zero predictor returned %v", got)
	}
}

func TestPredictorsNonNegativeProperty(t *testing.T) {
	src := NewSolarModel(17)
	preds := []Predictor{
		NewOracle(src), NewEWMA(0.2), NewSlotEWMA(EnvelopePeriod, 64, 0.3),
		NewMovingAverage(20), NewLastValue(), Zero{},
	}
	for k := 0; k < 500; k++ {
		p := src.PowerAt(float64(k))
		for _, pr := range preds {
			pr.Observe(float64(k), p)
		}
	}
	f := func(a, b uint16) bool {
		t1 := 500 + float64(a%1000)/4
		t2 := t1 + float64(b%400)/4
		for _, pr := range preds {
			if pr.PredictEnergy(t1, t2) < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPredictEnergyPanicsOnInvertedInterval(t *testing.T) {
	preds := []Predictor{NewEWMA(0.5), NewSlotEWMA(10, 4, 0.5), NewMovingAverage(2), NewLastValue(), Zero{}}
	for _, pr := range preds {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic on inverted interval", pr.Name())
				}
			}()
			pr.PredictEnergy(5, 1)
		}()
	}
}

// Predictor accuracy on the paper's source: oracle is exact; EWMA tracks
// within a factor that beats Zero; this guards against regressions that
// would silently distort the scheduling experiments.
func TestPredictorAccuracyOrdering(t *testing.T) {
	src := NewSolarModel(77)
	oracle := NewOracle(src)
	ewma := NewEWMA(0.2)
	var zero Zero

	const warmup = 2000
	for k := 0; k < warmup; k++ {
		p := src.PowerAt(float64(k))
		ewma.Observe(float64(k), p)
	}
	var errEWMA, errZero float64
	for k := warmup; k < warmup+2000; k++ {
		tt := float64(k)
		truth := Energy(src, tt, tt+50)
		errEWMA += math.Abs(ewma.PredictEnergy(tt, tt+50) - truth)
		errZero += math.Abs(zero.PredictEnergy(tt, tt+50) - truth)
		ewma.Observe(tt, src.PowerAt(tt))
		if o := oracle.PredictEnergy(tt, tt+50); o != truth {
			t.Fatalf("oracle not exact at t=%v", tt)
		}
	}
	if errEWMA >= errZero {
		t.Fatalf("EWMA error %v not better than Zero error %v", errEWMA, errZero)
	}
}
