package energy

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// ReadTraceCSV parses a measured harvest profile from CSV into a Trace
// source. The file must contain a power column named column (header row
// required; other columns are ignored); one row per time unit in order.
// Deployments record solar panel output this way, and the paper's whole
// premise is that such profiles are what real predictors must track.
func ReadTraceCSV(r io.Reader, name, column string) (*Trace, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("energy: reading trace header: %w", err)
	}
	col := -1
	for i, h := range header {
		if strings.EqualFold(strings.TrimSpace(h), column) {
			col = i
			break
		}
	}
	if col == -1 {
		return nil, fmt.Errorf("energy: column %q not in header %v", column, header)
	}
	var samples []float64
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("energy: reading trace line %d: %w", line, err)
		}
		if col >= len(rec) {
			return nil, fmt.Errorf("energy: line %d has %d columns, need %d", line, len(rec), col+1)
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rec[col]), 64)
		if err != nil {
			return nil, fmt.Errorf("energy: line %d: %w", line, err)
		}
		// ParseFloat accepts "NaN" and "Inf" spellings; both (and negatives)
		// violate the Source contract, and must surface as parse errors here
		// rather than as a NewTrace panic below.
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("energy: line %d: invalid power %v", line, v)
		}
		samples = append(samples, v)
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("energy: trace %q has no samples", name)
	}
	return NewTrace(name, samples), nil
}

// WriteTraceCSV writes a source's per-unit samples over [0, horizon) as a
// two-column CSV (t, power) — the inverse of ReadTraceCSV, used to export
// synthetic profiles for external tools.
func WriteTraceCSV(w io.Writer, src Source, horizon int) error {
	if horizon <= 0 {
		return fmt.Errorf("energy: non-positive horizon %d", horizon)
	}
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"t", "power"}); err != nil {
		return err
	}
	for k := 0; k < horizon; k++ {
		row := []string{
			strconv.Itoa(k),
			strconv.FormatFloat(src.PowerAt(float64(k)), 'g', -1, 64),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
