package energy

import (
	"math"
	"testing"

	"github.com/eadvfs/eadvfs/internal/rng"
)

func TestWCMAValidation(t *testing.T) {
	for i, f := range []func(){
		func() { NewWCMA(0, 10, 3, 4) },
		func() { NewWCMA(10, 0, 3, 4) },
		func() { NewWCMA(10, 5, 0, 4) },
		func() { NewWCMA(10, 5, 3, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestWCMAFirstDayFallsBackToLastValue(t *testing.T) {
	w := NewWCMA(100, 10, 3, 4)
	if got := w.PredictEnergy(0, 10); got != 0 {
		t.Fatalf("unseeded prediction = %v", got)
	}
	w.Observe(0, 6)
	if got := w.PredictEnergy(1, 3); math.Abs(got-12) > 1e-9 {
		t.Fatalf("first-day prediction = %v, want 12 (last value)", got)
	}
}

func TestWCMALearnsPeriodicProfile(t *testing.T) {
	// Square day: 8 during the first half, 2 during the second.
	day := 100.0
	src := NewTwoMode(8, 2, day, day/2)
	w := NewWCMA(day, 20, 4, 5)
	for k := 0; k < 5*int(day); k++ {
		w.Observe(float64(k), src.PowerAt(float64(k)))
	}
	// Next day's first half.
	got := w.PredictEnergy(500, 550)
	if math.Abs(got-400) > 40 {
		t.Fatalf("day-half prediction = %v, want ~400", got)
	}
	// Whole next day: 8*50 + 2*50 = 500.
	got = w.PredictEnergy(500, 600)
	if math.Abs(got-500) > 50 {
		t.Fatalf("full-day prediction = %v, want ~500", got)
	}
}

func TestWCMAConditionsOnCloudyDay(t *testing.T) {
	// Three clear days at power 10, then a 30%-power day: after observing
	// a cloudy morning, the afternoon forecast must scale down.
	day := 100.0
	w := NewWCMA(day, 10, 3, 5)
	for k := 0; k < 3*int(day); k++ {
		w.Observe(float64(k), 10)
	}
	clear := w.PredictEnergy(350, 400)
	for k := 3 * int(day); k < 3*int(day)+50; k++ {
		w.Observe(float64(k), 3)
	}
	cloudy := w.PredictEnergy(350, 400)
	if cloudy >= clear*0.7 {
		t.Fatalf("conditioning failed: clear %v, cloudy %v", clear, cloudy)
	}
	// And the ratio is bounded by GapMin.
	if cloudy < clear*w.GapMin-1e-9 {
		t.Fatalf("gap fell below GapMin: %v vs %v", cloudy, clear*w.GapMin)
	}
}

func TestWCMANonNegativeAndStable(t *testing.T) {
	w := NewWCMA(EnvelopePeriod, 48, 4, 8)
	src := NewSolarModel(5)
	for k := 0; k < 4000; k++ {
		w.Observe(float64(k), src.PowerAt(float64(k)))
	}
	r := rng.New(3)
	for i := 0; i < 500; i++ {
		t1 := 4000 + r.Uniform(0, 500)
		t2 := t1 + r.Uniform(0, 200)
		p := w.PredictEnergy(t1, t2)
		if p < 0 || math.IsNaN(p) || math.IsInf(p, 0) {
			t.Fatalf("prediction %v for [%v, %v]", p, t1, t2)
		}
		// Bounded by GapMax times a generous profile ceiling.
		if p > 3*20*(t2-t1)+1 {
			t.Fatalf("prediction %v implausibly large", p)
		}
	}
}

func TestWCMABeatsSlotEWMAOnConditionedDays(t *testing.T) {
	// Alternating clear (x1.0) and dim (x0.4) days over a square profile:
	// conditioning should track the day type where the plain slot profile
	// averages across both.
	day := 200.0
	base := NewTwoMode(10, 1, day, day/2)
	factor := func(d int) float64 {
		if d%2 == 0 {
			return 1.0
		}
		return 0.4
	}
	wcma := NewWCMA(day, 20, 6, 6)
	slot := NewSlotEWMA(day, 20, 0.3)
	power := func(t float64) float64 {
		return base.PowerAt(t) * factor(int(t/day))
	}
	var errW, errS float64
	for k := 0; k < 12*int(day); k++ {
		tt := float64(k)
		if k > 6*int(day) && k%7 == 0 { // measure during later days
			horizon := 30.0
			truth := 0.0
			for u := 0; u < int(horizon); u++ {
				truth += power(tt + float64(u))
			}
			errW += math.Abs(wcma.PredictEnergy(tt, tt+horizon) - truth)
			errS += math.Abs(slot.PredictEnergy(tt, tt+horizon) - truth)
		}
		p := power(tt)
		wcma.Observe(tt, p)
		slot.Observe(tt, p)
	}
	if errW >= errS {
		t.Fatalf("WCMA error %v not better than SlotEWMA %v on conditioned days", errW, errS)
	}
}

func TestWCMAName(t *testing.T) {
	if NewWCMA(10, 5, 3, 4).Name() != "wcma" {
		t.Fatal("name changed")
	}
}

func TestWCMAInvertedIntervalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewWCMA(10, 5, 3, 4).PredictEnergy(5, 1)
}
