// Property tests pinning the prefix-sum energy caches to the naive
// unit-walk reference. External test package so the faulted sources from
// internal/fault (which imports energy) can be exercised too.
package energy_test

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/eadvfs/eadvfs/internal/energy"
	"github.com/eadvfs/eadvfs/internal/fault"
)

// opaque hides any Cumulative implementation of the wrapped source (only
// Source's method set is promoted), forcing energy.Energy down the naive
// unit-walk path. It is the reference implementation in these tests.
type opaque struct{ energy.Source }

func naive(src energy.Source, t1, t2 float64) float64 {
	return energy.Energy(opaque{src}, t1, t2)
}

// propSources returns one instance of every source shape the repo ships:
// solar (native Cumulative), constant, two-mode, trace, scaled, summed,
// Markov weather, and a fault-injected dropout wrapper.
func propSources(t *testing.T) map[string]energy.Source {
	t.Helper()
	solar := energy.NewSolarModel(7)
	trace := energy.NewTrace("tr", []float64{0, 1.5, 3, 0.25, 2, 0, 0, 4})
	set, err := fault.New(fault.Spec{
		Seed:       11,
		Dropout:    fault.WindowSpec{MeanGap: 13, MeanLen: 5},
		DropFactor: 0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	return map[string]energy.Source{
		"solar":    solar,
		"constant": energy.NewConstant(2.5),
		"two-mode": energy.NewTwoMode(5, 0.5, 24, 10),
		"trace":    trace,
		"scaled":   energy.NewScaled(energy.NewSolarModel(9), 0.6),
		"summed":   energy.NewSum(energy.NewConstant(1), energy.NewTwoMode(3, 0, 10, 4)),
		"markov":   energy.NewMarkovWeather(energy.NewSolarModel(3), 21, 40, 15, 0.3),
		"faulted":  set.WrapSource(energy.NewSolarModel(5)),
	}
}

// TestCumulativeBitEqualFromZero: for every source, the cached prefix sum
// at integer instants is bit-identical (==, no tolerance) to the naive
// left-to-right walk from 0 — the caches accumulate in exactly that order.
func TestCumulativeBitEqualFromZero(t *testing.T) {
	for name, src := range propSources(t) {
		cum := energy.AsCumulative(src)
		for k := 0; k <= 300; k++ {
			tt := float64(k)
			got := cum.CumulativeEnergy(tt)
			want := naive(src, 0, tt)
			if got != want {
				t.Fatalf("%s: CumulativeEnergy(%v) = %v, naive = %v (diff %g)",
					name, tt, got, want, got-want)
			}
		}
	}
}

// TestCumulativeIntervalProperty: arbitrary (possibly fractional)
// intervals through the Energy fast path agree with the naive walk from
// t1 within floating-point cancellation tolerance, and are never negative.
func TestCumulativeIntervalProperty(t *testing.T) {
	for name, src := range propSources(t) {
		cum := energy.AsCumulative(src)
		f := func(a, b uint16, fa, fb uint8) bool {
			t1 := float64(a%400) + float64(fa)/256
			t2 := float64(b%400) + float64(fb)/256
			if t2 < t1 {
				t1, t2 = t2, t1
			}
			got := energy.Energy(cum, t1, t2)
			want := naive(src, t1, t2)
			// Scale-aware tolerance: the prefix difference cancels two
			// sums of up to ~400 terms of O(10) magnitude.
			tol := 1e-9 * (1 + math.Abs(want) + cum.CumulativeEnergy(t2))
			return got >= 0 && math.Abs(got-want) <= tol
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

// TestCumulativeLazyExtensionBoundary queries an interval that straddles
// the cache's current high-water mark, in both fresh and pre-warmed
// orders: values must not depend on the order tables were extended in.
func TestCumulativeLazyExtensionBoundary(t *testing.T) {
	for name, src := range propSources(t) {
		// Reference: a cache warmed monotonically to 200.
		ref := energy.AsCumulative(src)
		refVal := ref.CumulativeEnergy(200)

		// Fresh cache: first query lands mid-unit just past a partial
		// warm-up, so ensure() extends across its own high-water mark.
		for _, warm := range []float64{0, 17, 99.5, 150} {
			c := energy.AsCumulative(opaque{src}) // force a fresh Cached even for solar
			if warm > 0 {
				c.PowerAt(warm)
			}
			if got := c.CumulativeEnergy(200); got != refVal {
				t.Fatalf("%s: warm-to-%v cache: CumulativeEnergy(200) = %v, want %v",
					name, warm, got, refVal)
			}
			lo, hi := warm-0.5, warm+42.25
			if lo < 0 {
				lo = 0
			}
			got := energy.Energy(c, lo, hi)
			want := naive(src, lo, hi)
			if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
				t.Fatalf("%s: straddling interval [%v, %v] = %v, naive %v",
					name, lo, hi, got, want)
			}
		}
	}
}

// TestSolarForkBitEqual: a fork taken at any warm-up depth realizes the
// same trace, power table and prefix sums as a fresh model with the same
// seed — extension happens on the fork, never on the master.
func TestSolarForkBitEqual(t *testing.T) {
	for _, warm := range []float64{0, 1, 100, 500} {
		master := energy.NewSolarModel(42)
		if warm > 0 {
			master.PowerAt(warm)
		}
		fork := master.Fork()
		fresh := energy.NewSolarModel(42)
		for k := 0; k <= 700; k++ {
			tt := float64(k) + 0.5
			if a, b := fork.PowerAt(tt), fresh.PowerAt(tt); a != b {
				t.Fatalf("warm %v: fork power at %v = %v, fresh = %v", warm, tt, a, b)
			}
		}
		if a, b := fork.CumulativeEnergy(700), fresh.CumulativeEnergy(700); a != b {
			t.Fatalf("warm %v: fork cum(700) = %v, fresh = %v", warm, a, b)
		}
		// The fork's extension beyond the master's high-water mark must
		// not have leaked back: a second fork sees the same tail again.
		if a, b := master.Fork().CumulativeEnergy(700), fresh.CumulativeEnergy(700); a != b {
			t.Fatalf("warm %v: second fork cum(700) = %v, fresh = %v", warm, a, b)
		}
	}
}
