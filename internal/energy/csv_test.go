package energy

import (
	"os"
	"strings"
	"testing"
)

func TestReadTraceCSV(t *testing.T) {
	in := "time,power,temp\n0, 3.5, 21\n1, 0, 20\n2, 12.25, 19\n"
	tr, err := ReadTraceCSV(strings.NewReader(in), "panel", "power")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name() != "panel" {
		t.Fatalf("name = %q", tr.Name())
	}
	want := []float64{3.5, 0, 12.25}
	for i, w := range want {
		if tr.PowerAt(float64(i)) != w {
			t.Fatalf("sample %d = %v, want %v", i, tr.PowerAt(float64(i)), w)
		}
	}
}

func TestReadTraceCSVCaseInsensitiveHeader(t *testing.T) {
	in := "T,Power\n0,1\n"
	if _, err := ReadTraceCSV(strings.NewReader(in), "x", "POWER"); err != nil {
		t.Fatal(err)
	}
}

func TestReadTraceCSVErrors(t *testing.T) {
	cases := []string{
		"",                  // no header
		"time,watts\n0,1\n", // missing column
		"power\nnope\n",     // non-numeric
		"power\n-1\n",       // negative
		"power\n",           // no samples
		"a,power\n1\n",      // short row
	}
	for i, in := range cases {
		if _, err := ReadTraceCSV(strings.NewReader(in), "x", "power"); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	src := NewSolarModel(9)
	var b strings.Builder
	if err := WriteTraceCSV(&b, src, 50); err != nil {
		t.Fatal(err)
	}
	tr, err := ReadTraceCSV(strings.NewReader(b.String()), "rt", "power")
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 50; k++ {
		if tr.PowerAt(float64(k)) != src.PowerAt(float64(k)) {
			t.Fatalf("round trip diverged at %d", k)
		}
	}
}

func TestWriteTraceCSVBadHorizon(t *testing.T) {
	var b strings.Builder
	if err := WriteTraceCSV(&b, NewConstant(1), 0); err == nil {
		t.Fatal("zero horizon accepted")
	}
}

// The shipped three-day profile loads from disk, drives predictors, and
// has the expected diurnal structure (overcast second day).
func TestShippedHarvestTrace(t *testing.T) {
	f, err := os.Open("testdata/harvest_3day.csv")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := ReadTraceCSV(f, "harvest-3day", "power")
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Samples) != 1440 {
		t.Fatalf("samples = %d, want 1440 (3 x 480)", len(tr.Samples))
	}
	dayEnergy := func(d int) float64 {
		return Energy(tr, float64(d*480), float64((d+1)*480))
	}
	clear1, overcast, clear2 := dayEnergy(0), dayEnergy(1), dayEnergy(2)
	if overcast > 0.5*clear1 {
		t.Fatalf("second day not overcast: %v vs %v", overcast, clear1)
	}
	if clear1 <= 0 || clear2 <= 0 {
		t.Fatal("clear days harvested nothing")
	}
	// A WCMA predictor learns the profile across the three days.
	w := NewWCMA(480, 24, 3, 6)
	for k := 0; k < 1440; k++ {
		w.Observe(float64(k), tr.PowerAt(float64(k)))
	}
	noonNextDay := 1440 + 240.0
	if p := w.PredictEnergy(noonNextDay, noonNextDay+20); p <= 0 {
		t.Fatalf("WCMA predicts no noon harvest: %v", p)
	}
	nightNextDay := 1440 + 10.0
	if p := w.PredictEnergy(nightNextDay, nightNextDay+20); p > 5 {
		t.Fatalf("WCMA predicts night harvest: %v", p)
	}
}
