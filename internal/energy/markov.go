package energy

import (
	"fmt"

	"github.com/eadvfs/eadvfs/internal/rng"
)

// MarkovWeather modulates a base source with a two-state weather chain
// (clear/overcast) — the standard next step up from i.i.d. noise in the
// harvesting-prediction literature: cloud cover is strongly
// autocorrelated, which is precisely what makes recency-based predictors
// (EWMA, WCMA's GAP term) work. State dwell times are geometric with the
// configured mean lengths; the overcast state scales the base power by
// OvercastFactor.
type MarkovWeather struct {
	Base           Source
	MeanClear      float64 // mean clear-spell length, time units
	MeanOvercast   float64 // mean overcast-spell length
	OvercastFactor float64 // power multiplier while overcast, in [0, 1]

	r      *rng.RNG
	states []bool // per unit interval: true = overcast; lazily extended
}

// NewMarkovWeather wraps base with a weather chain.
func NewMarkovWeather(base Source, seed uint64, meanClear, meanOvercast, overcastFactor float64) *MarkovWeather {
	switch {
	case base == nil:
		panic("energy: nil base source")
	case meanClear < 1 || meanOvercast < 1:
		panic(fmt.Sprintf("energy: mean spell lengths (%v, %v) must be >= 1 unit", meanClear, meanOvercast))
	case overcastFactor < 0 || overcastFactor > 1:
		panic(fmt.Sprintf("energy: overcast factor %v outside [0,1]", overcastFactor))
	}
	return &MarkovWeather{
		Base:           base,
		MeanClear:      meanClear,
		MeanOvercast:   meanOvercast,
		OvercastFactor: overcastFactor,
		r:              rng.New(seed),
	}
}

// overcastAt reports the chain state for unit interval k, memoized so the
// sample path is a pure function of the seed.
func (m *MarkovWeather) overcastAt(k int) bool {
	for len(m.states) <= k {
		var next bool
		if n := len(m.states); n == 0 {
			next = false // start clear
		} else if m.states[n-1] {
			// Leave overcast with probability 1/MeanOvercast per unit.
			next = m.r.Float64() >= 1/m.MeanOvercast
		} else {
			next = m.r.Float64() < 1/m.MeanClear
		}
		m.states = append(m.states, next)
	}
	return m.states[k]
}

// PowerAt implements Source.
func (m *MarkovWeather) PowerAt(t float64) float64 {
	if t < 0 {
		panic("energy: PowerAt before t=0")
	}
	p := m.Base.PowerAt(t)
	if m.overcastAt(int(t)) {
		return p * m.OvercastFactor
	}
	return p
}

// MeanPower implements Source: the stationary mix of the two states.
func (m *MarkovWeather) MeanPower() float64 {
	// Stationary probability of overcast for the two-state chain.
	pOver := m.MeanOvercast / (m.MeanClear + m.MeanOvercast)
	return m.Base.MeanPower() * (1 - pOver + pOver*m.OvercastFactor)
}

// Name implements Source.
func (m *MarkovWeather) Name() string { return "markov(" + m.Base.Name() + ")" }
