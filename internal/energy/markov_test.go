package energy

import (
	"math"
	"testing"
)

func TestMarkovWeatherValidation(t *testing.T) {
	base := NewConstant(10)
	for i, f := range []func(){
		func() { NewMarkovWeather(nil, 1, 10, 10, 0.3) },
		func() { NewMarkovWeather(base, 1, 0.5, 10, 0.3) },
		func() { NewMarkovWeather(base, 1, 10, 0, 0.3) },
		func() { NewMarkovWeather(base, 1, 10, 10, -0.1) },
		func() { NewMarkovWeather(base, 1, 10, 10, 1.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestMarkovWeatherDeterministicAndMemoized(t *testing.T) {
	a := NewMarkovWeather(NewConstant(10), 7, 20, 10, 0.2)
	b := NewMarkovWeather(NewConstant(10), 7, 20, 10, 0.2)
	// Query out of order on a; in order on b.
	late := a.PowerAt(500.5)
	for k := 0; k <= 500; k++ {
		b.PowerAt(float64(k))
	}
	if b.PowerAt(500.5) != late {
		t.Fatal("sample path depends on query order or seed handling")
	}
	if a.PowerAt(500.9) != late {
		t.Fatal("power not constant within unit interval")
	}
}

func TestMarkovWeatherTwoLevels(t *testing.T) {
	m := NewMarkovWeather(NewConstant(10), 3, 15, 5, 0.25)
	seen := map[float64]bool{}
	for k := 0; k < 2000; k++ {
		seen[m.PowerAt(float64(k))] = true
	}
	if !seen[10] || !seen[2.5] {
		t.Fatalf("expected both clear (10) and overcast (2.5) powers, saw %v", seen)
	}
	if len(seen) != 2 {
		t.Fatalf("constant base must yield exactly two power levels, got %d", len(seen))
	}
}

func TestMarkovWeatherMeanPower(t *testing.T) {
	m := NewMarkovWeather(NewConstant(10), 11, 30, 10, 0.1)
	// Stationary overcast share 10/40 = 0.25 → mean 10·(0.75 + 0.25·0.1).
	want := 10 * (0.75 + 0.025)
	if math.Abs(m.MeanPower()-want) > 1e-12 {
		t.Fatalf("analytic mean = %v, want %v", m.MeanPower(), want)
	}
	// Empirical agreement within a few percent over a long run.
	sum := 0.0
	const n = 300000
	for k := 0; k < n; k++ {
		sum += m.PowerAt(float64(k))
	}
	if emp := sum / n; math.Abs(emp-want) > 0.05*want {
		t.Fatalf("empirical mean %v deviates from %v", emp, want)
	}
}

func TestMarkovWeatherSpellLengths(t *testing.T) {
	m := NewMarkovWeather(NewConstant(1), 13, 40, 8, 0)
	// Measure mean overcast spell length: count maximal runs of power 0.
	var spells []int
	run := 0
	for k := 0; k < 100000; k++ {
		if m.PowerAt(float64(k)) == 0 {
			run++
		} else if run > 0 {
			spells = append(spells, run)
			run = 0
		}
	}
	if len(spells) < 100 {
		t.Fatalf("only %d overcast spells", len(spells))
	}
	sum := 0
	for _, s := range spells {
		sum += s
	}
	mean := float64(sum) / float64(len(spells))
	if math.Abs(mean-8) > 1.0 {
		t.Fatalf("mean overcast spell %v, want ~8", mean)
	}
}

func TestMarkovWeatherOverSolar(t *testing.T) {
	m := NewMarkovWeather(NewSolarModel(5), 21, 50, 20, 0.3)
	for k := 0; k < 1000; k++ {
		if m.PowerAt(float64(k)) < 0 {
			t.Fatal("negative power")
		}
	}
	if m.Name() != "markov(solar-eq13)" {
		t.Fatalf("name = %q", m.Name())
	}
}
