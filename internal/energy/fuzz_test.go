package energy

import (
	"bytes"
	"math"
	"testing"
)

// FuzzReadTraceCSV feeds arbitrary bytes to the trace parser and checks
// that it either fails cleanly or yields a Trace satisfying the Source
// contract (finite non-negative samples) that round-trips through
// WriteTraceCSV bit for bit. The checked-in corpus under testdata/fuzz
// pins the interesting shapes: header case variants, quoted fields, NaN
// and Inf spellings ParseFloat accepts, negative powers, ragged rows.
// Runs its seed corpus under `go test`; fuzz with
// `go test -fuzz FuzzReadTraceCSV ./internal/energy`.
func FuzzReadTraceCSV(f *testing.F) {
	f.Add([]byte("t,power\n0,1.5\n1,2\n"))
	f.Add([]byte("POWER\n0\n"))
	f.Add([]byte("t,power\n0,NaN\n"))
	f.Add([]byte("t,power\n0,-1\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadTraceCSV(bytes.NewReader(data), "fuzz", "power")
		if err != nil {
			return // rejection is always legal; panics are the bug class
		}
		if len(tr.Samples) == 0 {
			t.Fatal("accepted trace with no samples")
		}
		for i, s := range tr.Samples {
			if s < 0 || math.IsNaN(s) || math.IsInf(s, 0) {
				t.Fatalf("accepted invalid sample %v at %d", s, i)
			}
		}
		// The Source contract must hold on the parsed trace.
		if p := tr.PowerAt(0); p != tr.Samples[0] {
			t.Fatalf("PowerAt(0) = %v, sample 0 = %v", p, tr.Samples[0])
		}
		if m := tr.MeanPower(); math.IsNaN(m) || m < 0 {
			t.Fatalf("invalid mean power %v", m)
		}
		// Round trip: export and re-parse reproduces the samples exactly
		// (WriteTraceCSV formats with 'g'/-1, which is lossless).
		var buf bytes.Buffer
		if err := WriteTraceCSV(&buf, tr, len(tr.Samples)); err != nil {
			t.Fatalf("WriteTraceCSV: %v", err)
		}
		rt, err := ReadTraceCSV(&buf, "roundtrip", "power")
		if err != nil {
			t.Fatalf("re-parsing exported trace: %v", err)
		}
		if len(rt.Samples) != len(tr.Samples) {
			t.Fatalf("round trip changed length: %d -> %d", len(tr.Samples), len(rt.Samples))
		}
		for i := range tr.Samples {
			if math.Float64bits(rt.Samples[i]) != math.Float64bits(tr.Samples[i]) {
				t.Fatalf("round trip changed sample %d: %v -> %v", i, tr.Samples[i], rt.Samples[i])
			}
		}
	})
}
