package energy

import (
	"fmt"
	"math"
)

// Predictor estimates the energy Ês(t1, t2) the source will deliver over a
// future interval. Both LSA and EA-DVFS take scheduling decisions from this
// estimate (eqs. 5 and 9 use ES(am, am+dm), which at decision time is a
// prediction). Predictors learn online: the engine calls Observe once per
// completed unit interval with the power that actually materialised.
type Predictor interface {
	// Observe records that the source output power p over [t, t+1).
	// Observations arrive in non-decreasing time order.
	Observe(t, p float64)
	// PredictEnergy estimates the harvested energy over [t1, t2], t1 <= t2.
	PredictEnergy(t1, t2 float64) float64
	// Name identifies the predictor in reports.
	Name() string
}

// Oracle predicts with perfect knowledge of the source — the upper bound on
// predictor quality, used to separate algorithmic gains from prediction
// error in the ablation benches.
type Oracle struct {
	Src Source

	// cum is Src upgraded to O(1) prefix queries — the oracle integrates
	// the true source on every decision, which without the cache costs
	// O(deadline) per query.
	cum Cumulative
}

// NewOracle returns a perfect predictor for src.
func NewOracle(src Source) *Oracle {
	if src == nil {
		panic("energy: nil source for oracle")
	}
	return &Oracle{Src: src, cum: AsCumulative(src)}
}

func (o *Oracle) Observe(t, p float64) {}

func (o *Oracle) PredictEnergy(t1, t2 float64) float64 {
	if o.cum == nil { // literal construction without NewOracle
		o.cum = AsCumulative(o.Src)
	}
	return Energy(o.cum, t1, t2)
}

func (o *Oracle) Name() string { return "oracle" }

// EWMA is a recency-weighted predictor: it tracks an exponentially weighted
// moving average of the observed power and extrapolates it as constant over
// the queried window. With task deadlines (≤ 100) much shorter than the
// envelope period (≈ 691), recent output is the dominant signal — this is
// the repository's default predictor (DESIGN.md §5.4).
type EWMA struct {
	Alpha float64 // weight of the newest observation, in (0, 1]
	avg   float64
	seen  bool
}

// NewEWMA returns an EWMA predictor. Alpha outside (0, 1] panics;
// NewEWMAChecked returns an error instead, for alphas taken from flags.
func NewEWMA(alpha float64) *EWMA {
	e, err := NewEWMAChecked(alpha)
	if err != nil {
		panic(err.Error())
	}
	return e
}

// NewEWMAChecked is the error-returning variant of NewEWMA.
func NewEWMAChecked(alpha float64) (*EWMA, error) {
	if alpha <= 0 || alpha > 1 || math.IsNaN(alpha) {
		return nil, fmt.Errorf("energy: EWMA alpha %v outside (0,1]", alpha)
	}
	return &EWMA{Alpha: alpha}, nil
}

func (e *EWMA) Observe(t, p float64) {
	if !e.seen {
		e.avg = p
		e.seen = true
		return
	}
	e.avg = e.Alpha*p + (1-e.Alpha)*e.avg
}

func (e *EWMA) PredictEnergy(t1, t2 float64) float64 {
	checkInterval(t1, t2)
	return e.avg * (t2 - t1)
}

func (e *EWMA) Name() string { return "ewma" }

// SlotEWMA is the Kansal-style profile predictor [6,9]: the source period
// is divided into equal slots and an independent EWMA is maintained per
// slot, learning the deterministic envelope across periods. Prediction
// integrates the per-slot estimates across the queried window.
type SlotEWMA struct {
	Period  float64
	Slots   int
	Alpha   float64
	avg     []float64
	seenAny bool

	// Lazily rebuilt prediction tables (dirty after every Observe):
	// est[i] is the resolved per-slot power (avg or fallback), prefix[i]
	// the energy of slots [0, i) within one period, periodTotal the whole
	// period's energy. With them a PredictEnergy query is O(1) instead of
	// O(span/slotLen).
	dirty       bool
	est         []float64
	prefix      []float64
	periodTotal float64
}

// NewSlotEWMA returns a profile predictor with the given source period,
// slot count and smoothing factor, panicking on invalid input;
// NewSlotEWMAChecked returns an error instead.
func NewSlotEWMA(period float64, slots int, alpha float64) *SlotEWMA {
	s, err := NewSlotEWMAChecked(period, slots, alpha)
	if err != nil {
		panic(err.Error())
	}
	return s
}

// NewSlotEWMAChecked is the error-returning variant of NewSlotEWMA.
func NewSlotEWMAChecked(period float64, slots int, alpha float64) (*SlotEWMA, error) {
	switch {
	case period <= 0 || math.IsNaN(period) || math.IsInf(period, 0):
		return nil, fmt.Errorf("energy: invalid slot period %v", period)
	case slots <= 0:
		return nil, fmt.Errorf("energy: non-positive slot count %d", slots)
	case alpha <= 0 || alpha > 1 || math.IsNaN(alpha):
		return nil, fmt.Errorf("energy: slot alpha %v outside (0,1]", alpha)
	}
	avg := make([]float64, slots)
	for i := range avg {
		avg[i] = math.NaN() // unseen
	}
	return &SlotEWMA{Period: period, Slots: slots, Alpha: alpha, avg: avg}, nil
}

func (s *SlotEWMA) slotOf(t float64) int {
	phase := math.Mod(t, s.Period)
	idx := int(phase / s.Period * float64(s.Slots))
	if idx >= s.Slots {
		idx = s.Slots - 1
	}
	return idx
}

func (s *SlotEWMA) Observe(t, p float64) {
	i := s.slotOf(t)
	if math.IsNaN(s.avg[i]) {
		s.avg[i] = p
	} else {
		s.avg[i] = s.Alpha*p + (1-s.Alpha)*s.avg[i]
	}
	s.seenAny = true
	s.dirty = true
}

// slotEstimate returns the learned power for slot i, falling back to the
// mean of seen slots (or 0) for slots never observed.
func (s *SlotEWMA) slotEstimate(i int) float64 {
	if !math.IsNaN(s.avg[i]) {
		return s.avg[i]
	}
	if !s.seenAny {
		return 0
	}
	sum, n := 0.0, 0
	for _, v := range s.avg {
		if !math.IsNaN(v) {
			sum += v
			n++
		}
	}
	return sum / float64(n)
}

// rebuild refreshes the prediction tables from the per-slot averages.
// O(Slots), amortized over the (typically many) queries between
// observations.
func (s *SlotEWMA) rebuild() {
	slotLen := s.Period / float64(s.Slots)
	if s.est == nil {
		s.est = make([]float64, s.Slots)
		s.prefix = make([]float64, s.Slots+1)
	}
	for i := range s.est {
		s.est[i] = s.slotEstimate(i)
		s.prefix[i+1] = s.prefix[i] + s.est[i]*slotLen
	}
	s.periodTotal = s.prefix[s.Slots]
	s.dirty = false
}

// cumulative returns the predicted energy over [0, t] from the tables.
func (s *SlotEWMA) cumulative(t float64) float64 {
	full := math.Floor(t / s.Period)
	phase := t - full*s.Period
	slotLen := s.Period / float64(s.Slots)
	i := int(phase / slotLen)
	if i >= s.Slots {
		i = s.Slots - 1
	}
	return full*s.periodTotal + s.prefix[i] + s.est[i]*(phase-float64(i)*slotLen)
}

func (s *SlotEWMA) PredictEnergy(t1, t2 float64) float64 {
	checkInterval(t1, t2)
	if s.dirty || s.est == nil {
		s.rebuild()
	}
	total := s.cumulative(t2) - s.cumulative(t1)
	if total < 0 {
		// Estimates are non-negative (powers are), so a negative
		// difference can only be float jitter at period/slot boundaries.
		total = 0
	}
	return total
}

func (s *SlotEWMA) Name() string { return "slot-ewma" }

// MovingAverage predicts with the arithmetic mean of the last Window
// observations, extrapolated as constant.
type MovingAverage struct {
	Window int
	buf    []float64
	next   int
	filled int
	sum    float64
}

// NewMovingAverage returns a moving-average predictor over the given
// window, panicking on invalid input; NewMovingAverageChecked returns an
// error instead.
func NewMovingAverage(window int) *MovingAverage {
	m, err := NewMovingAverageChecked(window)
	if err != nil {
		panic(err.Error())
	}
	return m
}

// NewMovingAverageChecked is the error-returning variant of
// NewMovingAverage.
func NewMovingAverageChecked(window int) (*MovingAverage, error) {
	if window <= 0 {
		return nil, fmt.Errorf("energy: non-positive moving-average window %d", window)
	}
	return &MovingAverage{Window: window, buf: make([]float64, window)}, nil
}

func (m *MovingAverage) Observe(t, p float64) {
	if m.filled == m.Window {
		m.sum -= m.buf[m.next]
	} else {
		m.filled++
	}
	m.buf[m.next] = p
	m.sum += p
	m.next = (m.next + 1) % m.Window
}

func (m *MovingAverage) PredictEnergy(t1, t2 float64) float64 {
	checkInterval(t1, t2)
	if m.filled == 0 {
		return 0
	}
	return m.sum / float64(m.filled) * (t2 - t1)
}

func (m *MovingAverage) Name() string { return "moving-average" }

// LastValue extrapolates the most recent observation — the cheapest
// possible tracer of the profile.
type LastValue struct {
	last float64
}

// NewLastValue returns a last-value predictor.
func NewLastValue() *LastValue { return &LastValue{} }

func (l *LastValue) Observe(t, p float64) { l.last = p }

func (l *LastValue) PredictEnergy(t1, t2 float64) float64 {
	checkInterval(t1, t2)
	return l.last * (t2 - t1)
}

func (l *LastValue) Name() string { return "last-value" }

// Zero predicts no future harvest — the maximally pessimistic estimator.
// Under Zero, LSA and EA-DVFS budget only the stored energy.
type Zero struct{}

func (Zero) Observe(t, p float64) {}

func (Zero) PredictEnergy(t1, t2 float64) float64 {
	checkInterval(t1, t2)
	return 0
}

func (Zero) Name() string { return "zero" }

func checkInterval(t1, t2 float64) {
	if t2 < t1 || math.IsNaN(t1) || math.IsNaN(t2) {
		panic(fmt.Sprintf("energy: prediction interval inverted [%v, %v]", t1, t2))
	}
}
