package energy

import (
	"fmt"
	"math"
)

// WCMA is a weather-conditioned moving average predictor (Bergonzini,
// Brunelli & Benini; Recas Piorno et al.) — the solar-harvesting
// predictor family that improved on Kansal's per-slot EWMA by scaling the
// historical per-slot profile with how today's conditions compare to that
// profile ("today is this cloudy").
//
// The source period (a day) is divided into Slots; the predictor keeps
// the mean observed power of each slot over the last Days periods. A
// prediction for a future slot s is
//
//	P̂(s) = GAP · M(s)
//
// where M(s) is the historical mean of slot s and GAP is the weighted
// mean of obs/M over the last K observed slots (more recent slots weigh
// more), clamped to [GapMin, GapMax]. With no history yet it falls back
// to extrapolating the last observation.
type WCMA struct {
	Period float64
	Slots  int
	Days   int
	K      int

	// GapMin and GapMax bound the conditioning ratio so a single
	// outlier slot cannot blow up the forecast.
	GapMin, GapMax float64

	slotLen float64
	// hist[d][s] accumulates day-d slot-s observations.
	hist  [][]slotAcc
	ring  int // index of the day currently being filled
	day   int // absolute day index of ring slot
	ready bool

	// recent obs/mean ratios for GAP, newest last.
	recent []float64

	lastObs  float64
	seenAny  bool
	lastSlot int
	lastDay  int
	haveSlot bool

	// Lazily rebuilt prediction tables (dirty after every Observe):
	// val[s] is the effective forecast power of slot s (GAP·mean or the
	// last-observation fallback), prefix[s] the energy of slots [0, s)
	// within one period. They make PredictEnergy O(1) instead of
	// O(span/slotLen · Days).
	dirty       bool
	val         []float64
	prefix      []float64
	periodTotal float64
}

type slotAcc struct {
	sum float64
	n   int
}

// NewWCMA returns a WCMA predictor over the given period with the given
// slot count, history depth in days and conditioning window.
func NewWCMA(period float64, slots, days, k int) *WCMA {
	switch {
	case period <= 0:
		panic("energy: non-positive WCMA period")
	case slots <= 0 || days <= 0 || k <= 0:
		panic(fmt.Sprintf("energy: invalid WCMA shape slots=%d days=%d k=%d", slots, days, k))
	}
	hist := make([][]slotAcc, days)
	for i := range hist {
		hist[i] = make([]slotAcc, slots)
	}
	return &WCMA{
		Period: period, Slots: slots, Days: days, K: k,
		GapMin: 0.1, GapMax: 3,
		slotLen: period / float64(slots),
		hist:    hist,
	}
}

func (w *WCMA) slotOf(t float64) (day, slot int) {
	day = int(math.Floor(t / w.Period))
	phase := math.Mod(t, w.Period)
	slot = int(phase / w.Period * float64(w.Slots))
	if slot >= w.Slots {
		slot = w.Slots - 1
	}
	return day, slot
}

// mean returns the historical mean of slot s over completed days,
// excluding the day currently being filled; ok is false with no history.
func (w *WCMA) mean(s int) (float64, bool) {
	sum, n := 0.0, 0
	for d := range w.hist {
		if d == w.ring {
			continue
		}
		if w.hist[d][s].n > 0 {
			sum += w.hist[d][s].sum / float64(w.hist[d][s].n)
			n++
		}
	}
	if n == 0 {
		return 0, false
	}
	return sum / float64(n), true
}

// Observe implements Predictor.
func (w *WCMA) Observe(t, p float64) {
	day, slot := w.slotOf(t)
	// Rotate the ring on day changes (handles skipped days too).
	for w.seenAny && day > w.day {
		w.day++
		w.ring = (w.ring + 1) % w.Days
		w.hist[w.ring] = make([]slotAcc, w.Slots)
		w.ready = true
	}
	if !w.seenAny {
		w.day = day
	}
	w.seenAny = true
	w.lastObs = p

	// On leaving a slot, record its conditioning ratio.
	if w.haveSlot && (slot != w.lastSlot || day != w.lastDay) {
		prev := w.hist[w.ring][w.lastSlot]
		if m, ok := w.mean(w.lastSlot); ok && m > 1e-12 && prev.n > 0 {
			ratio := (prev.sum / float64(prev.n)) / m
			w.recent = append(w.recent, ratio)
			if len(w.recent) > w.K {
				w.recent = w.recent[len(w.recent)-w.K:]
			}
		}
	}
	w.hist[w.ring][slot].sum += p
	w.hist[w.ring][slot].n++
	w.lastSlot, w.lastDay, w.haveSlot = slot, day, true
	w.dirty = true
}

// gap returns the current weather-conditioning factor.
func (w *WCMA) gap() float64 {
	if len(w.recent) == 0 {
		return 1
	}
	// Newer ratios weigh more: weight i+1 for the i-th oldest.
	num, den := 0.0, 0.0
	for i, r := range w.recent {
		wt := float64(i + 1)
		num += wt * r
		den += wt
	}
	g := num / den
	if g < w.GapMin {
		g = w.GapMin
	}
	if g > w.GapMax {
		g = w.GapMax
	}
	return g
}

// rebuild refreshes the per-slot forecast tables — O(Slots·Days), paid
// once per observation instead of per query.
func (w *WCMA) rebuild() {
	if w.val == nil {
		w.val = make([]float64, w.Slots)
		w.prefix = make([]float64, w.Slots+1)
	}
	g := w.gap()
	for s := range w.val {
		m, ok := w.mean(s)
		if !ok {
			m = w.lastObs
		} else {
			m *= g
		}
		w.val[s] = m
		w.prefix[s+1] = w.prefix[s] + m*w.slotLen
	}
	w.periodTotal = w.prefix[w.Slots]
	w.dirty = false
}

// cumulative returns the forecast energy over [0, t] from the tables.
func (w *WCMA) cumulative(t float64) float64 {
	full := math.Floor(t / w.Period)
	phase := t - full*w.Period
	s := int(phase / w.slotLen)
	if s >= w.Slots {
		s = w.Slots - 1
	}
	return full*w.periodTotal + w.prefix[s] + w.val[s]*(phase-float64(s)*w.slotLen)
}

// PredictEnergy implements Predictor.
func (w *WCMA) PredictEnergy(t1, t2 float64) float64 {
	checkInterval(t1, t2)
	if !w.ready {
		// First day: no profile yet — extrapolate the last observation.
		return w.lastObs * (t2 - t1)
	}
	if w.dirty || w.val == nil {
		w.rebuild()
	}
	total := w.cumulative(t2) - w.cumulative(t1)
	if total < 0 {
		// Forecast powers are non-negative, so a negative difference can
		// only be float jitter at period/slot boundaries.
		total = 0
	}
	return total
}

// Name implements Predictor.
func (w *WCMA) Name() string { return "wcma" }
