// Package energy models the environmental energy supply of the system:
// harvesting sources (§3.1 of the paper) and harvested-energy predictors
// ("we trace PS(t) profile to predict the harvested energy from a future
// period", §3.1/§5.1).
//
// All sources are piecewise-constant over unit intervals [k, k+1): the
// paper's simulator samples eq. (13) per time unit, and a piecewise-constant
// supply is what makes the within-interval storage dynamics linear (see
// internal/sim). Powers are in the repository's canonical power unit
// (DESIGN.md §5.3) and times in simulation time units.
package energy

import (
	"fmt"
	"math"
	"sync/atomic"

	"github.com/eadvfs/eadvfs/internal/rng"
)

// Source is a harvesting power supply. PowerAt reports the (non-negative)
// output power over the unit interval containing t; the value is constant
// within each interval [k, k+1).
type Source interface {
	// PowerAt returns the harvested power at time t >= 0.
	PowerAt(t float64) float64
	// MeanPower returns the long-run average output power. The task-set
	// generator (§5.1) sizes worst-case energies from this value.
	MeanPower() float64
	// Name identifies the source in reports.
	Name() string
}

// Energy integrates src over [t1, t2] exactly, exploiting the
// piecewise-constant-per-unit-interval contract. It is the simulator's
// ES(t1, t2) (eq. 2).
//
// Sources that implement Cumulative answer in O(1) via prefix-sum
// difference C(t2) − C(t1); everything else falls back to the O(t2−t1)
// unit walk. Wrap hot sources with AsCumulative to get the fast path.
func Energy(src Source, t1, t2 float64) float64 {
	if t2 < t1 {
		panic(fmt.Sprintf("energy: Energy interval inverted [%v, %v]", t1, t2))
	}
	if t1 < 0 {
		panic(fmt.Sprintf("energy: Energy interval starts before 0: %v", t1))
	}
	if c, ok := src.(Cumulative); ok {
		return c.CumulativeEnergy(t2) - c.CumulativeEnergy(t1)
	}
	return naiveEnergy(src, t1, t2)
}

// naiveEnergy is the reference unit-interval integration: walk [t1, t2]
// one unit boundary at a time, accumulating PowerAt·width left to right.
// The prefix-sum caches reproduce this addition order exactly for
// intervals starting at 0 (see cumulative.go), which is what the
// bit-equivalence property test pins down.
func naiveEnergy(src Source, t1, t2 float64) float64 {
	total := 0.0
	t := t1
	for t < t2 {
		boundary := math.Floor(t) + 1
		end := math.Min(boundary, t2)
		total += src.PowerAt(t) * (end - t)
		t = end
	}
	return total
}

// SolarModel is the paper's stochastic solar source (eq. 13):
//
//	PS(t) = 10 · |N(t)| · cos²(t / 70π)
//
// N(t) is resampled once per time unit. The paper writes N(t) ~ N(0,1), but
// Figure 5 shows a non-negative trace, so the half-normal |N(t)| is used
// (DESIGN.md §5.2). The cos² envelope gives the "periodic and deterministic
// aspect" with period 70π² ≈ 691 time units.
//
// Samples are generated lazily and memoized so that PowerAt is a pure
// function of t for a given seed — predictors and the engine may query any
// interval in any order and always observe the same trace.
//
// Retention policy: the memoized tables (sample, per-unit power, energy
// prefix sum — 24 bytes per simulated time unit) live as long as the model
// and grow to the furthest instant ever queried; they are never evicted,
// because the realized trace *is* the identity of a seeded source and
// dropping a prefix would break deterministic replay. A 10⁴-unit horizon
// costs ~240 KB; multi-day sweeps should share one model per replication
// via Fork instead of instantiating one per policy. Growth beyond
// maxSolarSamples panics — that many units (~1.5 GiB of tables) always
// indicates a runaway horizon, not a real experiment.
type SolarModel struct {
	Amplitude float64 // peak envelope scale; the paper uses 10
	r         *rng.RNG
	samples   []float64 // memoized |N(k)| deviates
	power     []float64 // power[k] = Amplitude·samples[k]·Envelope(k)
	cum       []float64 // cum[k] = ∫₀ᵏ P; len(cum) == len(power)+1
}

// maxSolarSamples caps lazy table growth (see the retention policy above).
const maxSolarSamples = 1 << 26

// EnvelopePeriod is the period of the cos² envelope of eq. (13) in time
// units: cos²(t/70π) repeats every 70π².
const EnvelopePeriod = 70 * math.Pi * math.Pi

// NewSolarModel returns the paper's eq. (13) source with Amplitude 10,
// seeded deterministically.
func NewSolarModel(seed uint64) *SolarModel {
	return NewSolarModelAmp(seed, 10)
}

// NewSolarModelAmp returns an eq. (13) source with a custom amplitude.
// It panics on invalid input; NewSolarModelAmpChecked returns an error
// instead, for amplitudes coming from flags or config files.
func NewSolarModelAmp(seed uint64, amplitude float64) *SolarModel {
	s, err := NewSolarModelAmpChecked(seed, amplitude)
	if err != nil {
		panic(err.Error())
	}
	return s
}

// NewSolarModelAmpChecked is the error-returning variant of
// NewSolarModelAmp.
func NewSolarModelAmpChecked(seed uint64, amplitude float64) (*SolarModel, error) {
	if amplitude < 0 || math.IsNaN(amplitude) || math.IsInf(amplitude, 0) {
		return nil, fmt.Errorf("energy: invalid solar amplitude %v", amplitude)
	}
	return &SolarModel{Amplitude: amplitude, r: rng.New(seed), cum: []float64{0}}, nil
}

// Fork returns a model that shares this one's memoized trace so far and
// extends it identically on demand: the fork clones the RNG state and
// cap-clamps the shared slices, so later growth in either model reallocates
// instead of clobbering the other, and both realize bit-identical samples
// for every index. The experiment runner forks one master source per
// replication across the paired policies instead of regenerating the trace
// per policy.
func (s *SolarModel) Fork() *SolarModel {
	return &SolarModel{
		Amplitude: s.Amplitude,
		r:         s.r.Clone(),
		samples:   s.samples[:len(s.samples):len(s.samples)],
		power:     s.power[:len(s.power):len(s.power)],
		cum:       s.cum[:len(s.cum):len(s.cum)],
	}
}

// Envelope returns the deterministic cos² factor of eq. (13) at time t.
func Envelope(t float64) float64 {
	c := math.Cos(t / (70 * math.Pi))
	return c * c
}

// solarRealized counts solar unit intervals realized (memoized for the
// first time in some model) across the process — one tick per unit of
// trace a model generates rather than inherits from a Fork. Tests use the
// counter to pin down that sweeps realize each replication's trace once,
// not once per (capacity, policy) cell; it is diagnostic state, never an
// input to any computation.
var solarRealized atomic.Uint64

// SolarRealizations returns the process-wide count of solar trace units
// realized so far (see solarRealized).
func SolarRealizations() uint64 { return solarRealized.Load() }

// ensure extends the memoized tables through unit interval k. All three
// slices are pre-grown with one reservation each (the former one-append-
// per-element growth was quadratic from a cold start at large t).
func (s *SolarModel) ensure(k int) {
	if k < len(s.power) {
		return
	}
	solarRealized.Add(uint64(k + 1 - len(s.power)))
	if k >= maxSolarSamples {
		panic(fmt.Sprintf("energy: solar trace would exceed %d units at t=%d — runaway horizon? (see SolarModel retention policy)", maxSolarSamples, k))
	}
	need := k + 1 - len(s.power)
	s.samples = grow(s.samples, need)
	s.power = grow(s.power, need)
	s.cum = grow(s.cum, need)
	if len(s.cum) == 0 {
		s.cum = append(s.cum, 0)
	}
	for len(s.power) <= k {
		i := len(s.power)
		for len(s.samples) <= i {
			s.samples = append(s.samples, s.r.HalfNormal())
		}
		p := s.Amplitude * s.samples[i] * Envelope(float64(i))
		s.power = append(s.power, p)
		s.cum = append(s.cum, s.cum[i]+p)
	}
}

// grow reserves room for at least n more elements with at most one
// allocation, doubling capacity so that the unit-by-unit extension of the
// engine's boundary chain stays amortized O(1) (reserving exactly n would
// reallocate the whole table on every one-element tail extension).
func grow(s []float64, n int) []float64 {
	if cap(s)-len(s) >= n {
		return s
	}
	newCap := len(s) + n
	if d := 2 * cap(s); newCap < d {
		newCap = d
	}
	t := make([]float64, len(s), newCap)
	copy(t, s)
	return t
}

// PowerAt implements Source.
func (s *SolarModel) PowerAt(t float64) float64 {
	if t < 0 {
		panic("energy: PowerAt before t=0")
	}
	k := int(math.Floor(t))
	s.ensure(k)
	return s.power[k]
}

// CumulativeEnergy implements Cumulative: ∫₀ᵗ P in O(1) amortized from the
// lazily extended prefix-sum table.
func (s *SolarModel) CumulativeEnergy(t float64) float64 {
	if t < 0 {
		panic("energy: CumulativeEnergy before t=0")
	}
	k := int(math.Floor(t))
	s.ensure(k)
	e := s.cum[k]
	if frac := t - float64(k); frac > 0 {
		e += s.power[k] * frac
	}
	return e
}

// MeanPower implements Source: E[|N|]·E[cos²]·Amplitude = A·sqrt(2/π)/2.
func (s *SolarModel) MeanPower() float64 {
	return s.Amplitude * math.Sqrt(2/math.Pi) / 2
}

// Name implements Source.
func (s *SolarModel) Name() string { return "solar-eq13" }

// Constant is the constant-power source assumed by Allavena & Mossé [4] —
// the assumption the paper calls "unpractical" but that remains useful for
// unit tests and sanity baselines.
type Constant struct {
	P float64
}

// NewConstant returns a constant source. Negative power panics;
// NewConstantChecked returns an error instead.
func NewConstant(p float64) Constant {
	c, err := NewConstantChecked(p)
	if err != nil {
		panic(err.Error())
	}
	return c
}

// NewConstantChecked is the error-returning variant of NewConstant.
func NewConstantChecked(p float64) (Constant, error) {
	if p < 0 || math.IsNaN(p) || math.IsInf(p, 0) {
		return Constant{}, fmt.Errorf("energy: invalid constant power %v", p)
	}
	return Constant{P: p}, nil
}

func (c Constant) PowerAt(t float64) float64 { return c.P }
func (c Constant) MeanPower() float64        { return c.P }
func (c Constant) Name() string              { return "constant" }

// TwoMode is the coarse day/night solar model of Rusu et al. [5]: DayPower
// during the first DayLen units of every Period, NightPower for the rest.
type TwoMode struct {
	DayPower   float64
	NightPower float64
	Period     float64
	DayLen     float64
}

// NewTwoMode validates and returns a day/night source, panicking on
// invalid input; NewTwoModeChecked returns an error instead.
func NewTwoMode(day, night, period, dayLen float64) TwoMode {
	m, err := NewTwoModeChecked(day, night, period, dayLen)
	if err != nil {
		panic(err.Error())
	}
	return m
}

// NewTwoModeChecked is the error-returning variant of NewTwoMode.
func NewTwoModeChecked(day, night, period, dayLen float64) (TwoMode, error) {
	switch {
	case day < 0 || night < 0 || math.IsNaN(day) || math.IsNaN(night):
		return TwoMode{}, fmt.Errorf("energy: invalid two-mode powers day=%v night=%v", day, night)
	case period <= 0 || math.IsNaN(period) || math.IsInf(period, 0):
		return TwoMode{}, fmt.Errorf("energy: invalid two-mode period %v", period)
	case dayLen < 0 || dayLen > period || math.IsNaN(dayLen):
		return TwoMode{}, fmt.Errorf("energy: day length %v outside [0, %v]", dayLen, period)
	}
	return TwoMode{DayPower: day, NightPower: night, Period: period, DayLen: dayLen}, nil
}

func (m TwoMode) PowerAt(t float64) float64 {
	phase := math.Mod(t, m.Period)
	if phase < m.DayLen {
		return m.DayPower
	}
	return m.NightPower
}

func (m TwoMode) MeanPower() float64 {
	return (m.DayPower*m.DayLen + m.NightPower*(m.Period-m.DayLen)) / m.Period
}

func (m TwoMode) Name() string { return "two-mode" }

// Trace replays a recorded power profile: sample k applies on [k, k+1).
// Beyond the last sample the trace wraps around, modelling a repeating
// measured day. An empty trace is invalid.
type Trace struct {
	Samples []float64
	name    string
}

// NewTrace validates and returns a trace source, panicking on invalid
// input; NewTraceChecked returns an error instead (traces usually come
// from files, so prefer the checked variant in CLI paths).
func NewTrace(name string, samples []float64) *Trace {
	tr, err := NewTraceChecked(name, samples)
	if err != nil {
		panic(err.Error())
	}
	return tr
}

// NewTraceChecked is the error-returning variant of NewTrace.
func NewTraceChecked(name string, samples []float64) (*Trace, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("energy: empty trace")
	}
	for i, s := range samples {
		if s < 0 || math.IsNaN(s) || math.IsInf(s, 0) {
			return nil, fmt.Errorf("energy: invalid trace sample %v at %d", s, i)
		}
	}
	return &Trace{Samples: samples, name: name}, nil
}

func (tr *Trace) PowerAt(t float64) float64 {
	if t < 0 {
		panic("energy: PowerAt before t=0")
	}
	k := int(math.Floor(t)) % len(tr.Samples)
	return tr.Samples[k]
}

func (tr *Trace) MeanPower() float64 {
	sum := 0.0
	for _, s := range tr.Samples {
		sum += s
	}
	return sum / float64(len(tr.Samples))
}

func (tr *Trace) Name() string {
	if tr.name == "" {
		return "trace"
	}
	return tr.name
}

// Scaled multiplies another source's output by a constant gain — used to
// re-scale a measured profile to a deployment's panel size.
type Scaled struct {
	Src  Source
	Gain float64
}

// NewScaled validates and returns a scaled source.
func NewScaled(src Source, gain float64) Scaled {
	if gain < 0 {
		panic("energy: negative gain")
	}
	if src == nil {
		panic("energy: nil source")
	}
	return Scaled{Src: src, Gain: gain}
}

func (s Scaled) PowerAt(t float64) float64 { return s.Gain * s.Src.PowerAt(t) }
func (s Scaled) MeanPower() float64        { return s.Gain * s.Src.MeanPower() }
func (s Scaled) Name() string              { return "scaled(" + s.Src.Name() + ")" }

// Sum combines multiple harvesting transducers feeding the same storage
// (e.g. solar plus vibrational, §1).
type Sum struct {
	Srcs []Source
}

// NewSum validates and returns a summed source.
func NewSum(srcs ...Source) Sum {
	if len(srcs) == 0 {
		panic("energy: empty sum")
	}
	for _, s := range srcs {
		if s == nil {
			panic("energy: nil source in sum")
		}
	}
	return Sum{Srcs: srcs}
}

func (s Sum) PowerAt(t float64) float64 {
	total := 0.0
	for _, src := range s.Srcs {
		total += src.PowerAt(t)
	}
	return total
}

func (s Sum) MeanPower() float64 {
	total := 0.0
	for _, src := range s.Srcs {
		total += src.MeanPower()
	}
	return total
}

func (s Sum) Name() string { return "sum" }
