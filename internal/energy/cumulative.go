package energy

import (
	"fmt"
	"math"
)

// Cumulative is a Source that can report its energy integral from time 0
// in O(1). Energy() uses it to answer interval queries as a prefix-sum
// difference C(t2) − C(t1) instead of walking unit intervals — the
// difference between O(1) and O(deadline) per scheduling decision.
//
// Contract: CumulativeEnergy(t) = ∫₀ᵗ PowerAt, it is non-decreasing in t
// (guaranteed when PowerAt is non-negative, because the prefix table only
// ever adds non-negative terms to a running float sum), and for integer t
// it is bit-identical to the naive left-to-right unit walk from 0
// (naiveEnergy(src, 0, t)) — the caches accumulate in exactly that order.
type Cumulative interface {
	Source
	// CumulativeEnergy returns the energy harvested over [0, t], t >= 0.
	CumulativeEnergy(t float64) float64
}

// AsCumulative returns src itself when it already answers prefix queries,
// and otherwise wraps it in a lazily filled Cached table. Use it wherever
// a source will receive many Energy/PredictEnergy interval queries.
func AsCumulative(src Source) Cumulative {
	if c, ok := src.(Cumulative); ok {
		return c
	}
	return NewCached(src)
}

// Cached memoizes an arbitrary source into per-unit power and energy
// prefix-sum tables, turning interval integration O(1) amortized. The
// wrapped source must honor the package contract — piecewise-constant on
// unit intervals and pure (PowerAt(t) depends only on ⌊t⌋ for a fixed
// source state), which every source in this repository satisfies,
// including the fault-injection wrappers (internal/fault derives each
// unit's perturbation from seeds, not from call order).
//
// The tables extend lazily to the furthest queried instant and are never
// evicted (same retention policy as SolarModel: ~16 bytes per simulated
// unit, capped at maxSolarSamples units).
type Cached struct {
	Src   Source
	power []float64 // power[k] = Src.PowerAt(k)
	cum   []float64 // cum[k] = ∫₀ᵏ P; len(cum) == len(power)+1
}

// NewCached wraps src in a fresh prefix-sum cache. Prefer AsCumulative,
// which avoids double-wrapping sources that already implement Cumulative.
func NewCached(src Source) *Cached {
	if src == nil {
		panic("energy: caching nil source")
	}
	return &Cached{Src: src, cum: []float64{0}}
}

func (c *Cached) ensure(k int) {
	if k < len(c.power) {
		return
	}
	if k >= maxSolarSamples {
		panic(fmt.Sprintf("energy: cached trace would exceed %d units at t=%d — runaway horizon?", maxSolarSamples, k))
	}
	need := k + 1 - len(c.power)
	c.power = grow(c.power, need)
	c.cum = grow(c.cum, need)
	if len(c.cum) == 0 {
		c.cum = append(c.cum, 0)
	}
	for len(c.power) <= k {
		i := len(c.power)
		// Sample at the unit's left edge — the same argument the naive
		// walk from 0 passes, so the table is bit-identical to it.
		p := c.Src.PowerAt(float64(i))
		if p < 0 || math.IsNaN(p) {
			panic(fmt.Sprintf("energy: source %q returned invalid power %v at t=%d", c.Src.Name(), p, i))
		}
		c.power = append(c.power, p)
		c.cum = append(c.cum, c.cum[i]+p)
	}
}

// PowerAt implements Source from the memoized table.
func (c *Cached) PowerAt(t float64) float64 {
	if t < 0 {
		panic("energy: PowerAt before t=0")
	}
	k := int(math.Floor(t))
	c.ensure(k)
	return c.power[k]
}

// CumulativeEnergy implements Cumulative.
func (c *Cached) CumulativeEnergy(t float64) float64 {
	if t < 0 {
		panic("energy: CumulativeEnergy before t=0")
	}
	k := int(math.Floor(t))
	c.ensure(k)
	e := c.cum[k]
	if frac := t - float64(k); frac > 0 {
		e += c.power[k] * frac
	}
	return e
}

// MeanPower implements Source by delegation.
func (c *Cached) MeanPower() float64 { return c.Src.MeanPower() }

// Name implements Source; the cache is transparent in reports.
func (c *Cached) Name() string { return c.Src.Name() }
