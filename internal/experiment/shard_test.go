package experiment

import (
	"encoding/json"
	"testing"
)

func shardSpec(t *testing.T) Spec {
	t.Helper()
	s := DefaultSpec()
	s.Horizon = 2000
	s.Replications = 5
	s.Capacities = []float64{200, 600, 1000}
	if err := s.Validate(); err != nil {
		t.Fatalf("spec: %v", err)
	}
	return s
}

func TestPlanShardsCoversGridExactlyOnce(t *testing.T) {
	s := shardSpec(t)
	for _, kind := range SweepKinds() {
		for _, n := range []int{1, 2, 3, 5, 7, 100} {
			shards, err := PlanShards(kind, s, n)
			if err != nil {
				t.Fatalf("PlanShards(%s, %d): %v", kind, n, err)
			}
			if len(shards) < 1 || len(shards) > n {
				t.Fatalf("PlanShards(%s, %d) returned %d shards", kind, n, len(shards))
			}
			covered := make(map[[2]int]int)
			for i, sh := range shards {
				if sh.Index != i || sh.Count != len(shards) {
					t.Fatalf("shard %d has Index=%d Count=%d (plan size %d)", i, sh.Index, sh.Count, len(shards))
				}
				if err := sh.Validate(s, kind); err != nil {
					t.Fatalf("shard %d invalid: %v", i, err)
				}
				for r := sh.RepLo; r < sh.RepHi; r++ {
					for c := sh.CapLo; c < sh.CapHi; c++ {
						covered[[2]int{r, c}]++
					}
				}
			}
			for r := 0; r < s.Replications; r++ {
				for c := range s.Capacities {
					if covered[[2]int{r, c}] != 1 {
						t.Fatalf("PlanShards(%s, %d): cell (%d,%d) covered %d times",
							kind, n, r, c, covered[[2]int{r, c}])
					}
				}
			}
		}
	}
}

func TestPlanShardsSplitsCapacitiesForMissRate(t *testing.T) {
	s := shardSpec(t)
	// More shards than replications: missrate splits capacities too.
	shards, err := PlanShards("missrate", s, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) <= s.Replications {
		t.Fatalf("want capacity-split plan > %d shards, got %d", s.Replications, len(shards))
	}
	// remaining cannot split capacities; plan caps at Replications.
	shards, err = PlanShards("remaining", s, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != s.Replications {
		t.Fatalf("remaining plan: want %d shards, got %d", s.Replications, len(shards))
	}
}

func TestShardValidate(t *testing.T) {
	s := shardSpec(t)
	nc := len(s.Capacities)
	ok := Shard{Index: 0, Count: 1, RepLo: 0, RepHi: s.Replications, CapLo: 0, CapHi: nc}
	if err := ok.Validate(s, "missrate"); err != nil {
		t.Fatalf("valid shard rejected: %v", err)
	}
	bad := []Shard{
		{Index: 0, Count: 0, RepHi: 1, CapHi: nc},                  // count < 1
		{Index: 2, Count: 2, RepHi: 1, CapHi: nc},                  // index out of range
		{Index: 0, Count: 1, RepLo: 3, RepHi: 3, CapHi: nc},        // empty rep window
		{Index: 0, Count: 1, RepHi: s.Replications + 1, CapHi: nc}, // reps out of range
		{Index: 0, Count: 1, RepHi: 1, CapLo: 2, CapHi: 2},         // empty cap window
		{Index: 0, Count: 1, RepHi: 1, CapHi: nc + 1},              // caps out of range
	}
	for i, sh := range bad {
		if err := sh.Validate(s, "missrate"); err == nil {
			t.Errorf("bad shard %d accepted: %+v", i, sh)
		}
	}
	// remaining must span all capacities.
	part := Shard{Index: 0, Count: 1, RepHi: 1, CapLo: 0, CapHi: 1}
	if err := part.Validate(s, "remaining"); err == nil {
		t.Error("remaining shard with partial capacity window accepted")
	}
	if err := part.Validate(s, "missrate"); err != nil {
		t.Errorf("missrate shard with partial capacity window rejected: %v", err)
	}
	if err := ok.Validate(s, "nope"); err == nil {
		t.Error("unknown kind accepted")
	}
}

// TestMergeShardsByteIdentical is the core contract: run each sweep kind
// whole and sharded (out of order, several plan sizes), and require the
// merged JSON to be byte-identical to the single-node JSON.
func TestMergeShardsByteIdentical(t *testing.T) {
	s := shardSpec(t)
	policies := []string{"edf", "lsa"}

	wholeMiss, err := MissRateSweep(s, policies)
	if err != nil {
		t.Fatal(err)
	}
	wantMiss := mustJSON(t, wholeMiss)
	wholeRem, err := RemainingEnergy(s, policies)
	if err != nil {
		t.Fatal(err)
	}
	wantRem := mustJSON(t, wholeRem)

	for _, n := range []int{1, 2, 3, 8} {
		for _, kind := range SweepKinds() {
			shards, err := PlanShards(kind, s, n)
			if err != nil {
				t.Fatal(err)
			}
			results := make([]*ShardResult, len(shards))
			for i, sh := range shards {
				res, err := RunShard(kind, s, policies, sh)
				if err != nil {
					t.Fatalf("RunShard(%s, %+v): %v", kind, sh, err)
				}
				// JSON round-trip each result to prove the wire hop
				// preserves bits (encoding/json float64 is exact).
				raw, err := json.Marshal(res)
				if err != nil {
					t.Fatal(err)
				}
				var back ShardResult
				if err := json.Unmarshal(raw, &back); err != nil {
					t.Fatal(err)
				}
				results[i] = &back
			}
			// Merge in reversed arrival order: placement is by shard
			// coordinates, so order must not matter.
			for i, j := 0, len(results)-1; i < j; i, j = i+1, j-1 {
				results[i], results[j] = results[j], results[i]
			}
			merged, err := MergeShards(kind, s, policies, results, false)
			if err != nil {
				t.Fatalf("MergeShards(%s, n=%d): %v", kind, n, err)
			}
			if merged.MissingCells != 0 {
				t.Fatalf("complete merge reports %d missing cells", merged.MissingCells)
			}
			switch kind {
			case "missrate":
				if got := mustJSON(t, merged.MissRate); got != wantMiss {
					t.Fatalf("missrate merge (n=%d) differs from single-node result", n)
				}
			case "remaining":
				if got := mustJSON(t, merged.Remaining); got != wantRem {
					t.Fatalf("remaining merge (n=%d) differs from single-node result", n)
				}
			}
		}
	}
}

func TestMergeShardsValidation(t *testing.T) {
	s := shardSpec(t)
	policies := []string{"edf"}
	shards, err := PlanShards("missrate", s, 2)
	if err != nil {
		t.Fatal(err)
	}
	results := make([]*ShardResult, len(shards))
	for i, sh := range shards {
		if results[i], err = RunShard("missrate", s, policies, sh); err != nil {
			t.Fatal(err)
		}
	}

	// Overlap: same shard twice.
	if _, err := MergeShards("missrate", s, policies, []*ShardResult{results[0], results[0]}, true); err == nil {
		t.Error("overlapping shards accepted")
	}
	// Missing coverage without allowPartial.
	if _, err := MergeShards("missrate", s, policies, results[:1], false); err == nil {
		t.Error("incomplete strict merge accepted")
	}
	// Wrong kind.
	if _, err := MergeShards("remaining", s, policies, results, false); err == nil {
		t.Error("kind mismatch accepted")
	}
	// Truncated payload.
	bad := *results[0]
	bad.Tallies = bad.Tallies[:1]
	if _, err := MergeShards("missrate", s, policies, []*ShardResult{&bad, results[1]}, false); err == nil {
		t.Error("truncated tallies accepted")
	}
}

// TestMergeShardsPartial checks graceful degradation: with a shard
// missing, the partial merge reports the loss and still pools only
// covered cells (pooled counts shrink accordingly).
func TestMergeShardsPartial(t *testing.T) {
	s := shardSpec(t)
	policies := []string{"edf"}
	shards, err := PlanShards("missrate", s, 3)
	if err != nil {
		t.Fatal(err)
	}
	results := make([]*ShardResult, 0, len(shards))
	lost := 0
	for i, sh := range shards {
		if i == 1 {
			lost = sh.Reps() * sh.Caps()
			results = append(results, nil) // failed shard slot
			continue
		}
		res, err := RunShard("missrate", s, policies, sh)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res)
	}
	merged, err := MergeShards("missrate", s, policies, results, true)
	if err != nil {
		t.Fatal(err)
	}
	if merged.MissingCells != lost {
		t.Fatalf("MissingCells = %d, want %d", merged.MissingCells, lost)
	}
	whole, err := MissRateSweep(s, policies)
	if err != nil {
		t.Fatal(err)
	}
	var wholeRel, partRel int
	for ci := range s.Capacities {
		wholeRel += whole.Stats["edf"][ci].Released
		partRel += merged.MissRate.Stats["edf"][ci].Released
	}
	if partRel >= wholeRel || partRel == 0 {
		t.Fatalf("partial pooled releases = %d, whole = %d; want 0 < partial < whole", partRel, wholeRel)
	}

	// Partial remaining merge: lose one replication.
	remShards, err := PlanShards("remaining", s, s.Replications)
	if err != nil {
		t.Fatal(err)
	}
	remResults := make([]*ShardResult, 0, len(remShards))
	for i, sh := range remShards {
		if i == 2 {
			continue
		}
		res, err := RunShard("remaining", s, policies, sh)
		if err != nil {
			t.Fatal(err)
		}
		remResults = append(remResults, res)
	}
	m2, err := MergeShards("remaining", s, policies, remResults, true)
	if err != nil {
		t.Fatal(err)
	}
	if m2.MissingCells != 1 {
		t.Fatalf("remaining MissingCells = %d, want 1", m2.MissingCells)
	}
	curve := m2.Remaining.Curves["edf"]
	if curve == nil || len(curve.Values) != int(s.Horizon)+1 {
		t.Fatal("partial remaining merge missing curve")
	}
	for k, v := range curve.Values {
		if v < 0 || v > 1.5 {
			t.Fatalf("partial remaining curve out of range at %d: %v", k, v)
		}
	}
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}
