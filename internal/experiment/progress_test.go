package experiment

import (
	"errors"
	"testing"

	"github.com/eadvfs/eadvfs/internal/obs"
)

// The Progress hook sees every finished job exactly once, with done
// counting monotonically from 1 to the batch total.
func TestProgressHookCountsEveryJob(t *testing.T) {
	const n = 25
	var calls []int
	Progress = func(done, total int) {
		if total != n {
			t.Errorf("total = %d, want %d", total, n)
		}
		calls = append(calls, done) // serialized by contract, no locking
	}
	defer func() { Progress = nil }()

	var jobs []job
	for i := 0; i < n; i++ {
		jobs = append(jobs, job{slot: i, run: func() error { return nil }})
	}
	if err := runParallel(jobs); err != nil {
		t.Fatal(err)
	}
	if len(calls) != n {
		t.Fatalf("progress called %d times, want %d", len(calls), n)
	}
	for i, done := range calls {
		if done != i+1 {
			t.Fatalf("call %d reported done=%d, want %d (monotonic)", i, done, i+1)
		}
	}
}

// A failing batch still reports progress for the jobs that ran: the
// reporter reflects work done, not work succeeded.
func TestProgressHookRunsOnFailures(t *testing.T) {
	old := Parallelism
	Parallelism = 1 // serial path: deterministic pickup-time cancellation
	defer func() { Parallelism = old }()

	var last int
	Progress = func(done, total int) { last = done }
	defer func() { Progress = nil }()

	errBoom := errors.New("boom")
	jobs := []job{
		{slot: 0, run: func() error { return errBoom }},
		{slot: 1, run: func() error { return nil }}, // cancelled at pickup
	}
	if err := runParallel(jobs); err == nil {
		t.Fatal("want the job error back")
	}
	if last != 1 {
		t.Fatalf("progress saw %d finished jobs, want 1 (the failing one)", last)
	}
}

// A Spec with a registry attached tallies per-run aggregates; without one
// (or without a result) recordRun is a no-op, not a panic.
func TestSpecRecordsRunMetrics(t *testing.T) {
	spec := DefaultSpec()
	spec.Horizon = 300
	spec.Metrics = obs.NewRegistry()

	rep, err := Replicate(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	pf, err := spec.PolicyFor("ea-dvfs")
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunOne(spec, rep, spec.Capacities[0], pf, false)
	if err != nil {
		t.Fatal(err)
	}
	runs := spec.Metrics.Counter("eadvfs_runs_total", "")
	if got := runs.Value(); got != 1 {
		t.Fatalf("eadvfs_runs_total = %v after one run, want 1", got)
	}
	released := spec.Metrics.Counter(obs.Labeled("eadvfs_run_jobs_total", "outcome", "released"), "")
	if got := released.Value(); got != float64(res.Miss.Released) {
		t.Fatalf("released counter = %v, result says %d", got, res.Miss.Released)
	}

	spec.Metrics = nil
	spec.recordRun(nil) // must not panic
}
