package experiment

import (
	"testing"
)

func TestOverheadCounters(t *testing.T) {
	s := testSpec()
	s.Capacities = []float64{300}
	res, err := Overhead(s, []string{"edf", "lsa", "ea-dvfs"})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range res.Policies {
		if res.Decisions[name] <= 0 || res.Events[name] <= 0 {
			t.Fatalf("%s: empty counters %+v", name, res)
		}
		if res.MissRate[name] < 0 || res.MissRate[name] > 1 {
			t.Fatalf("%s: miss rate %v", name, res.MissRate[name])
		}
		if res.ResponseMean[name] < 0 {
			t.Fatalf("%s: response %v", name, res.ResponseMean[name])
		}
	}
	// EDF never changes level (always max): zero DVFS switches.
	if res.Switches["edf"] != 0 {
		t.Fatalf("EDF switched levels %v times", res.Switches["edf"])
	}
	// EA-DVFS uses multiple levels: it must switch sometimes.
	if res.Switches["ea-dvfs"] == 0 {
		t.Fatal("EA-DVFS never switched operating points")
	}
	// Full-speed policies finish jobs sooner: their mean response must
	// not exceed the stretching policy's.
	if res.ResponseMean["edf"] > res.ResponseMean["ea-dvfs"]+1e-9 {
		t.Fatalf("EDF response %v exceeds EA-DVFS %v",
			res.ResponseMean["edf"], res.ResponseMean["ea-dvfs"])
	}
}

func TestOverheadErrors(t *testing.T) {
	s := testSpec()
	if _, err := Overhead(s, []string{"bogus"}); err == nil {
		t.Fatal("unknown policy accepted")
	}
	s.Horizon = 0
	if _, err := Overhead(s, []string{"edf"}); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

func TestConvergenceTightens(t *testing.T) {
	s := testSpec()
	s.Capacities = []float64{200}
	res, err := Convergence(s, "lsa", []int{2, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rate) != 2 || len(res.StdErr) != 2 {
		t.Fatalf("shape: %+v", res)
	}
	// More replications: the standard error must not grow substantially.
	if res.StdErr[1] > res.StdErr[0]*1.5+1e-9 {
		t.Fatalf("stderr grew with replications: %v -> %v", res.StdErr[0], res.StdErr[1])
	}
	for _, r := range res.Rate {
		if r < 0 || r > 1 {
			t.Fatalf("rate %v", r)
		}
	}
}

func TestConvergencePrefixConsistency(t *testing.T) {
	// The n-replication estimate must be identical whether computed
	// directly or as a prefix of a longer stream.
	s := testSpec()
	s.Capacities = []float64{200}
	long, err := Convergence(s, "ea-dvfs", []int{3, 6})
	if err != nil {
		t.Fatal(err)
	}
	short, err := Convergence(s, "ea-dvfs", []int{3})
	if err != nil {
		t.Fatal(err)
	}
	if long.Rate[0] != short.Rate[0] {
		t.Fatalf("prefix inconsistency: %v vs %v", long.Rate[0], short.Rate[0])
	}
}

func TestConvergenceErrors(t *testing.T) {
	s := testSpec()
	if _, err := Convergence(s, "lsa", nil); err == nil {
		t.Fatal("empty counts accepted")
	}
	if _, err := Convergence(s, "lsa", []int{0}); err == nil {
		t.Fatal("zero count accepted")
	}
	if _, err := Convergence(s, "bogus", []int{2}); err == nil {
		t.Fatal("unknown policy accepted")
	}
}
