package experiment

import (
	"context"

	"github.com/eadvfs/eadvfs/internal/cpu"
	"github.com/eadvfs/eadvfs/internal/energy"
	"github.com/eadvfs/eadvfs/internal/sim"
	"github.com/eadvfs/eadvfs/internal/storage"
)

// Runner amortizes per-(spec, replication) run setup across many runs of
// the same replication: the predictor name is resolved once, the (immutable)
// processor is built once, the solar trace is realized once and a single
// fork of it is reused run to run, and every run executes on one dedicated
// sim.Arena, so the release schedule is expanded exactly once. RunOne
// re-derives all of that per run; over a capacity bisection or a batch of
// sweep columns the difference is most of the non-engine cost.
//
// Each run is bit-identical to the corresponding RunOne: a prepared
// SolarModel fork is a pure function of time (queries within the realized
// prefix never mutate it, and sequential extension realizes the same
// samples a fresh fork would), and the arena path is pinned bit-identical
// by the internal/verify differential.
//
// A Runner is single-goroutine: runs execute sequentially on its arena.
// Fan replication-level parallelism out with one Runner per worker.
type Runner struct {
	spec  Spec
	rep   Replication
	predF PredictorFactory
	proc  *cpu.Processor
	src   *energy.SolarModel
	arena *sim.Arena
}

// NewRunner prepares an amortized runner for one replication of the spec.
// The replication's solar master is prepared through the horizon (a no-op
// when the caller already did) and forked once.
func NewRunner(s Spec, rep Replication) (*Runner, error) {
	predF, err := s.PredictorFor(s.Predictor)
	if err != nil {
		return nil, err
	}
	rep.PrepareSource(s.Horizon)
	return &Runner{
		spec:  s,
		rep:   rep,
		predF: predF,
		proc:  s.Processor(),
		src:   rep.Source(),
		arena: sim.NewArena(),
	}, nil
}

// RunCtx executes one run of the runner's replication at the given
// capacity under a fresh policy from pf. record enables the per-unit
// energy series; stopAtFirstMiss enables the feasibility-probe early exit
// (sim.Config.StopAtFirstMiss — the Result is then a prefix ending at the
// first miss, and the spec's run metrics record that prefix).
func (r *Runner) RunCtx(ctx context.Context, capacity float64, pf PolicyFactory, record, stopAtFirstMiss bool) (*sim.Result, error) {
	cfg := &sim.Config{
		Horizon:         r.spec.Horizon,
		Tasks:           r.rep.Tasks,
		Source:          r.src,
		Predictor:       r.predF(r.src),
		Store:           storage.NewIdeal(capacity),
		CPU:             r.proc,
		Policy:          pf(),
		RecordEnergy:    record,
		StopAtFirstMiss: stopAtFirstMiss,
		MaxEvents:       defaultEventBudget(r.spec.Horizon),
		Probe:           r.spec.Probe,
	}
	if ctx != nil && ctx != context.Background() {
		cfg.Context = ctx
	}
	res, err := r.arena.Run(cfg)
	r.spec.recordRun(res)
	return res, err
}

// RunBatch executes one replication's full (capacity × policy) grid on a
// single amortized Runner and returns results indexed [capacity][policy].
// It is the batched equivalent of calling RunOneCtx per cell — each cell
// is bit-identical — with the scheduler plan, task-set expansion and solar
// realization computed once for the whole grid instead of once per cell.
func RunBatch(ctx context.Context, s Spec, rep Replication, capacities []float64, pfs []PolicyFactory, record bool) ([][]*sim.Result, error) {
	r, err := NewRunner(s, rep)
	if err != nil {
		return nil, err
	}
	out := make([][]*sim.Result, len(capacities))
	for ci, c := range capacities {
		out[ci] = make([]*sim.Result, len(pfs))
		for pi, pf := range pfs {
			res, err := r.RunCtx(ctx, c, pf, record, false)
			if err != nil {
				return nil, err
			}
			out[ci][pi] = res
		}
	}
	return out, nil
}
