package experiment

import (
	"errors"

	"github.com/eadvfs/eadvfs/internal/metrics"
)

// OverheadResult reports the runtime cost side of each policy — the
// paper assumes DVFS switching is free (§5.1) and never counts
// preemptions or scheduler invocations; this experiment makes those
// visible so the assumption can be judged.
type OverheadResult struct {
	Spec     Spec
	Policies []string
	// Per policy, mean per-run counters over the replications.
	Switches    map[string]float64
	Preemptions map[string]float64
	Decisions   map[string]float64
	Events      map[string]float64
	// MissRate carries the effectiveness alongside the cost.
	MissRate map[string]float64
	// ResponseMean is the mean on-time job response time, averaged over
	// tasks and replications.
	ResponseMean map[string]float64
}

// Overhead measures scheduling overhead counters for the named policies
// at one storage capacity (the first in the spec's sweep).
func Overhead(s Spec, policyNames []string) (*OverheadResult, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	factories, err := policyFactories(s, policyNames)
	if err != nil {
		return nil, err
	}
	reps, err := replicateAll(s)
	if err != nil {
		return nil, err
	}
	capacity := s.Capacities[0]

	type counters struct {
		switches, preempts, decisions, events float64
		miss                                  metrics.MissStats
		resp                                  metrics.Welford
	}
	np := len(policyNames)
	slots := make([]counters, s.Replications*np)
	var jobs []job
	for r := 0; r < s.Replications; r++ {
		for pi := range policyNames {
			slot := r*np + pi
			r, pi := r, pi
			jobs = append(jobs, job{slot: slot, run: func() error {
				res, err := RunOne(s, reps[r], capacity, factories[pi], false)
				if err != nil {
					return err
				}
				c := &slots[slot]
				c.switches = float64(res.Switches)
				c.preempts = float64(res.Preemptions)
				c.decisions = float64(res.Decisions)
				c.events = float64(res.Events)
				c.miss = res.Miss
				for _, ts := range res.PerTask {
					if ts.Finished > 0 {
						c.resp.Add(ts.ResponseMean)
					}
				}
				return nil
			}})
		}
	}
	if err := runParallel(jobs); err != nil {
		return nil, err
	}

	out := &OverheadResult{
		Spec:         s,
		Policies:     append([]string(nil), policyNames...),
		Switches:     map[string]float64{},
		Preemptions:  map[string]float64{},
		Decisions:    map[string]float64{},
		Events:       map[string]float64{},
		MissRate:     map[string]float64{},
		ResponseMean: map[string]float64{},
	}
	for pi, name := range policyNames {
		var sw, pr, de, ev, rsp metrics.Welford
		var miss metrics.MissStats
		for r := 0; r < s.Replications; r++ {
			c := slots[r*np+pi]
			sw.Add(c.switches)
			pr.Add(c.preempts)
			de.Add(c.decisions)
			ev.Add(c.events)
			if c.resp.N() > 0 {
				rsp.Add(c.resp.Mean())
			}
			miss.Add(c.miss)
		}
		out.Switches[name] = sw.Mean()
		out.Preemptions[name] = pr.Mean()
		out.Decisions[name] = de.Mean()
		out.Events[name] = ev.Mean()
		out.MissRate[name] = miss.Rate()
		out.ResponseMean[name] = rsp.Mean()
	}
	return out, nil
}

// ConvergenceResult reports how the pooled miss-rate estimate tightens as
// replications accumulate — the tool for choosing a replication count
// (the paper used 5 000; the harness defaults are chosen from this).
type ConvergenceResult struct {
	Policy string
	// Counts are the replication counts evaluated.
	Counts []int
	// Rate[i] and StdErr[i] are the pooled estimate and its standard
	// error using the first Counts[i] replications.
	Rate   []float64
	StdErr []float64
}

// Convergence evaluates the miss-rate estimate at increasing replication
// counts (each a prefix of the same replication stream, so the sequence
// is consistent).
func Convergence(s Spec, policy string, counts []int) (*ConvergenceResult, error) {
	if len(counts) == 0 {
		return nil, errEmptyCounts
	}
	maxN := 0
	for _, n := range counts {
		if n <= 0 {
			return nil, errEmptyCounts
		}
		if n > maxN {
			maxN = n
		}
	}
	spec := s
	spec.Replications = maxN
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	pf, err := spec.PolicyFor(policy)
	if err != nil {
		return nil, err
	}
	capacity := spec.Capacities[0]

	rates := make([]float64, maxN)
	tallies := make([]metrics.MissStats, maxN)
	var jobs []job
	for r := 0; r < maxN; r++ {
		rep, err := Replicate(spec, r)
		if err != nil {
			return nil, err
		}
		rep.PrepareSource(spec.Horizon)
		r, rep := r, rep
		jobs = append(jobs, job{slot: r, run: func() error {
			res, err := RunOne(spec, rep, capacity, pf, false)
			if err != nil {
				return err
			}
			rates[r] = res.Miss.Rate()
			tallies[r] = res.Miss
			return nil
		}})
	}
	if err := runParallel(jobs); err != nil {
		return nil, err
	}

	out := &ConvergenceResult{Policy: policy, Counts: append([]int(nil), counts...)}
	for _, n := range counts {
		var w metrics.Welford
		var pooled metrics.MissStats
		for r := 0; r < n; r++ {
			w.Add(rates[r])
			pooled.Add(tallies[r])
		}
		out.Rate = append(out.Rate, pooled.Rate())
		out.StdErr = append(out.StdErr, w.StdErr())
	}
	return out, nil
}

var errEmptyCounts = errors.New("experiment: convergence counts must be positive and non-empty")
