package experiment

import (
	"math"
	"testing"
)

// testSpec is a fast spec for unit tests: shorter horizon, few reps.
func testSpec() Spec {
	s := DefaultSpec()
	s.Horizon = 2000
	s.Replications = 3
	s.Capacities = []float64{200, 1000}
	return s
}

func TestSpecValidate(t *testing.T) {
	if err := DefaultSpec().Validate(); err != nil {
		t.Fatalf("default spec invalid: %v", err)
	}
	bad := []func(*Spec){
		func(s *Spec) { s.Horizon = 0 },
		func(s *Spec) { s.NumTasks = 0 },
		func(s *Spec) { s.Utilization = 0 },
		func(s *Spec) { s.Utilization = 1.5 },
		func(s *Spec) { s.Capacities = nil },
		func(s *Spec) { s.Capacities = []float64{0} },
		func(s *Spec) { s.Replications = 0 },
		func(s *Spec) { s.Predictor = "nope" },
		func(s *Spec) { s.PMax = 0 },
	}
	for i, mutate := range bad {
		s := DefaultSpec()
		mutate(&s)
		if s.Validate() == nil {
			t.Fatalf("bad spec %d accepted", i)
		}
	}
}

func TestPolicyFactories(t *testing.T) {
	for _, name := range []string{"edf", "lsa", "ea-dvfs", "ea-dvfs-dynamic", "greedy-stretch"} {
		f, err := Policy(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := f().Name(); got != name {
			t.Fatalf("factory %q built policy %q", name, got)
		}
	}
	if _, err := Policy("bogus"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestPredictorFactories(t *testing.T) {
	for _, name := range []string{"", "ewma", "oracle", "slot-ewma", "moving-average", "last-value", "zero"} {
		f, err := Predictor(name)
		if err != nil {
			t.Fatalf("%q: %v", name, err)
		}
		if f == nil {
			t.Fatalf("%q: nil factory", name)
		}
	}
	if _, err := Predictor("bogus"); err == nil {
		t.Fatal("unknown predictor accepted")
	}
}

func TestReplicatePairing(t *testing.T) {
	s := testSpec()
	a, err := Replicate(s, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Replicate(s, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a.SourceSeed != b.SourceSeed || len(a.Tasks) != len(b.Tasks) {
		t.Fatal("replication not deterministic")
	}
	for i := range a.Tasks {
		if a.Tasks[i] != b.Tasks[i] {
			t.Fatal("task sets differ across identical Replicate calls")
		}
	}
	c, err := Replicate(s, 4)
	if err != nil {
		t.Fatal(err)
	}
	if c.SourceSeed == a.SourceSeed {
		t.Fatal("different replications share a source seed")
	}
}

func TestRunOnePairedComparability(t *testing.T) {
	// The same replication must expose identical workload+source to both
	// policies: released counts must match exactly.
	s := testSpec()
	rep, err := Replicate(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	lsa, _ := Policy("lsa")
	ea, _ := Policy("ea-dvfs")
	ra, err := RunOne(s, rep, 500, lsa, false)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := RunOne(s, rep, 500, ea, false)
	if err != nil {
		t.Fatal(err)
	}
	if ra.Miss.Released != rb.Miss.Released {
		t.Fatalf("released differ: %d vs %d", ra.Miss.Released, rb.Miss.Released)
	}
	// The offered harvest is the same sample path; the meters differ only
	// by float summation order (different event splits).
	if math.Abs(ra.Meters.Harvested-rb.Meters.Harvested) > 1e-6 {
		t.Fatalf("harvest differs: %v vs %v", ra.Meters.Harvested, rb.Meters.Harvested)
	}
}

func TestSourceTraceShape(t *testing.T) {
	s := SourceTrace(7, 1000)
	if s.Len() != 1000 {
		t.Fatalf("trace length %d", s.Len())
	}
	maxV := 0.0
	for _, v := range s.Values {
		if v < 0 {
			t.Fatalf("negative source sample %v", v)
		}
		maxV = math.Max(maxV, v)
	}
	// Figure 5 shows peaks up to ~20 with amplitude 10.
	if maxV < 5 || maxV > 60 {
		t.Fatalf("trace max %v outside plausible Figure 5 range", maxV)
	}
	// Determinism.
	s2 := SourceTrace(7, 1000)
	for i := range s.Values {
		if s.Values[i] != s2.Values[i] {
			t.Fatal("source trace not deterministic")
		}
	}
}

func TestRemainingEnergyCurves(t *testing.T) {
	s := testSpec()
	res, err := RemainingEnergy(s, []string{"lsa", "ea-dvfs"})
	if err != nil {
		t.Fatal(err)
	}
	for name, curve := range res.Curves {
		if curve.Len() != int(s.Horizon)+1 {
			t.Fatalf("%s: curve length %d", name, curve.Len())
		}
		if math.Abs(curve.Values[0]-1) > 1e-9 {
			t.Fatalf("%s: storage starts full, normalized %v != 1", name, curve.Values[0])
		}
		for i, v := range curve.Values {
			if v < -1e-9 || v > 1+1e-9 {
				t.Fatalf("%s: normalized energy %v at %d outside [0,1]", name, v, i)
			}
		}
	}
	// §5.2: at low utilization EA-DVFS stores more energy on average.
	if ea, lsa := res.Curves["ea-dvfs"].Mean(), res.Curves["lsa"].Mean(); ea < lsa {
		t.Fatalf("EA-DVFS mean remaining energy %v < LSA %v at U=0.4", ea, lsa)
	}
}

func TestMissRateSweepShape(t *testing.T) {
	s := testSpec()
	s.Capacities = []float64{100, 500, 2000}
	res, err := MissRateSweep(s, []string{"lsa", "ea-dvfs"})
	if err != nil {
		t.Fatal(err)
	}
	for name, rates := range res.Rates {
		for i, r := range rates {
			if r < 0 || r > 1 {
				t.Fatalf("%s: rate %v at capacity %v", name, r, res.Capacities[i])
			}
		}
	}
	// Larger storage must not hurt (monotone envelope).
	lsa := res.Rates["lsa"]
	if lsa[0] < lsa[len(lsa)-1]-0.02 {
		t.Fatalf("LSA miss rate increased with capacity: %v", lsa)
	}
	// §5.3: EA-DVFS at U=0.4 beats LSA clearly at every capacity where
	// LSA misses at all.
	for i := range res.Capacities {
		if res.Rates["lsa"][i] > 0.05 && res.Rates["ea-dvfs"][i] > res.Rates["lsa"][i] {
			t.Fatalf("EA-DVFS worse than LSA at capacity %v: %v vs %v",
				res.Capacities[i], res.Rates["ea-dvfs"][i], res.Rates["lsa"][i])
		}
	}
	if res.NormalizedCapacity(len(res.Capacities)-1) != 1 {
		t.Fatal("last capacity must normalize to 1")
	}
}

func TestMissRateSweepErrors(t *testing.T) {
	s := testSpec()
	if _, err := MissRateSweep(s, nil); err == nil {
		t.Fatal("empty policy list accepted")
	}
	if _, err := MissRateSweep(s, []string{"bogus"}); err == nil {
		t.Fatal("unknown policy accepted")
	}
	s.Horizon = -1
	if _, err := MissRateSweep(s, []string{"lsa"}); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

func TestMinCapacitySearch(t *testing.T) {
	s := testSpec()
	rep, err := Replicate(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	ea, _ := Policy("ea-dvfs")
	cmin, ok, err := MinCapacitySearch(s, rep, ea, 1, 1<<20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("no zero-miss capacity found for a U=0.4 workload")
	}
	// Zero misses at cmin.
	res, err := RunOne(s, rep, cmin, ea, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Miss.Missed != 0 {
		t.Fatalf("misses at reported Cmin %v: %d", cmin, res.Miss.Missed)
	}
	// Misses strictly below (half) unless cmin hit the lower bound.
	if cmin > 4 {
		res, err = RunOne(s, rep, cmin/2, ea, false)
		if err != nil {
			t.Fatal(err)
		}
		if res.Miss.Missed == 0 {
			t.Fatalf("zero misses well below Cmin (%v): search not tight", cmin/2)
		}
	}
}

func TestMinCapacitySearchBadBounds(t *testing.T) {
	s := testSpec()
	rep, _ := Replicate(s, 0)
	ea, _ := Policy("ea-dvfs")
	for i, args := range [][3]float64{{0, 10, 1}, {10, 5, 1}, {1, 10, 0}} {
		if _, _, err := MinCapacitySearch(s, rep, ea, args[0], args[1], args[2]); err == nil {
			t.Fatalf("bad bounds case %d accepted", i)
		}
	}
}

func TestMinCapacityTableShape(t *testing.T) {
	s := testSpec()
	s.Replications = 2
	res, err := MinCapacity(s, []float64{0.3, 0.7}, []string{"lsa", "ea-dvfs"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Skipped != 0 {
		t.Fatalf("skipped %d replications", res.Skipped)
	}
	// Table 1 shape: the LSA/EA-DVFS ratio is >= ~1 everywhere and larger
	// at low utilization.
	if res.Ratio[0] < 1 || res.Ratio[1] < 0.98 {
		t.Fatalf("ratios = %v, want >= 1", res.Ratio)
	}
	if res.Ratio[0] < res.Ratio[1] {
		t.Fatalf("ratio did not shrink with utilization: %v", res.Ratio)
	}
	// Means populated.
	if res.Mean["lsa"][0] <= 0 || res.Mean["ea-dvfs"][0] <= 0 {
		t.Fatalf("means = %+v", res.Mean)
	}
}

func TestMinCapacityErrors(t *testing.T) {
	s := testSpec()
	if _, err := MinCapacity(s, []float64{0.4}, []string{"lsa"}); err == nil {
		t.Fatal("single-policy Table 1 accepted")
	}
	if _, err := MinCapacity(s, nil, []string{"lsa", "ea-dvfs"}); err == nil {
		t.Fatal("empty utilizations accepted")
	}
	if _, err := MinCapacity(s, []float64{2}, []string{"lsa", "ea-dvfs"}); err == nil {
		t.Fatal("utilization > 1 accepted")
	}
}
