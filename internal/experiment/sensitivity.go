package experiment

import (
	"fmt"

	"github.com/eadvfs/eadvfs/internal/cpu"
	"github.com/eadvfs/eadvfs/internal/metrics"
	"github.com/eadvfs/eadvfs/internal/sim"
	"github.com/eadvfs/eadvfs/internal/storage"
)

// SensitivityResult holds one parameter sweep: the miss rate of each
// policy at each sweep point, pooled over replications.
type SensitivityResult struct {
	Param  string
	Points []float64
	// Labels names the points when they are categorical (predictor
	// sweeps); nil for numeric sweeps.
	Labels   []string
	Policies []string
	// Rates[policy][i] is the pooled miss rate at Points[i].
	Rates map[string][]float64
}

// PointLabel returns the display label of point i.
func (r *SensitivityResult) PointLabel(i int) string {
	if r.Labels != nil {
		return r.Labels[i]
	}
	return fmt.Sprintf("%g", r.Points[i])
}

// sweepRunner builds the per-point sim config; the capacity, workload and
// predictor come from the spec unless the sweep overrides them.
type sweepRunner func(s Spec, rep Replication, point float64, pf PolicyFactory) (*sim.Result, error)

// runSweep executes a generic (point × replication × policy) sweep in
// parallel with deterministic pooling.
func runSweep(s Spec, param string, points []float64, policyNames []string, run sweepRunner) (*SensitivityResult, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if len(points) == 0 {
		return nil, fmt.Errorf("experiment: empty %s sweep", param)
	}
	factories, err := policyFactories(s, policyNames)
	if err != nil {
		return nil, err
	}
	reps, err := replicateAll(s)
	if err != nil {
		return nil, err
	}
	np, nc := len(policyNames), len(points)
	tallies := make([]metrics.MissStats, s.Replications*nc*np)
	var jobs []job
	for r := 0; r < s.Replications; r++ {
		for ci := range points {
			for pi := range policyNames {
				slot := (r*nc+ci)*np + pi
				r, ci, pi := r, ci, pi
				jobs = append(jobs, job{slot: slot, run: func() error {
					res, err := run(s, reps[r], points[ci], factories[pi])
					if err != nil {
						return err
					}
					tallies[slot] = res.Miss
					return nil
				}})
			}
		}
	}
	if err := runParallel(jobs); err != nil {
		return nil, err
	}
	out := &SensitivityResult{
		Param:    param,
		Points:   append([]float64(nil), points...),
		Policies: append([]string(nil), policyNames...),
		Rates:    make(map[string][]float64, np),
	}
	for _, name := range policyNames {
		out.Rates[name] = make([]float64, nc)
	}
	pooled := make(map[string][]metrics.MissStats, np)
	for _, name := range policyNames {
		pooled[name] = make([]metrics.MissStats, nc)
	}
	for r := 0; r < s.Replications; r++ {
		for ci := range points {
			for pi, name := range policyNames {
				pooled[name][ci].Add(tallies[(r*nc+ci)*np+pi])
			}
		}
	}
	for _, name := range policyNames {
		for ci := range points {
			out.Rates[name][ci] = pooled[name][ci].Rate()
		}
	}
	return out, nil
}

// defaultSweepCapacity is the storage size sensitivity sweeps run at: the
// steep region of Figure 8 where policy differences are visible.
const defaultSweepCapacity = 300

// LevelCountSweep measures the miss rate as the number of DVFS operating
// points grows (cubic power model at the spec's PMax). One point would be
// no DVFS at all; the XScale table has five. The sweep answers "how many
// levels does EA-DVFS actually need?".
func LevelCountSweep(s Spec, counts []float64, policyNames []string) (*SensitivityResult, error) {
	return runSweep(s, "dvfs-levels", counts, policyNames,
		func(s Spec, rep Replication, point float64, pf PolicyFactory) (*sim.Result, error) {
			n := int(point)
			if n < 1 {
				return nil, fmt.Errorf("experiment: level count %v < 1", point)
			}
			proc := cpu.Cubic("cubic", n, 1000, s.PMax, s.PMax*0.02)
			return runWith(s, rep, defaultSweepCapacity, pf, proc, s.Predictor)
		})
}

// PMaxSweep measures the miss rate as the processor power scale varies —
// the calibration study behind DESIGN.md §5.3, runnable.
func PMaxSweep(s Spec, pmaxes []float64, policyNames []string) (*SensitivityResult, error) {
	return runSweep(s, "pmax", pmaxes, policyNames,
		func(s Spec, rep Replication, point float64, pf PolicyFactory) (*sim.Result, error) {
			if point <= 0 {
				return nil, fmt.Errorf("experiment: pmax %v <= 0", point)
			}
			sp := s
			sp.PMax = point
			// Re-derive the workload: WCETs depend on PMax (§5.1). The
			// source seed does not, so adopt the original replication's
			// prepared solar master instead of re-realizing the trace
			// once per (point, policy) cell.
			rep2, err := Replicate(sp, repIndexOf(rep))
			if err != nil {
				return nil, err
			}
			rep2.AdoptSource(rep)
			return runWith(sp, rep2, defaultSweepCapacity, pf, sp.Processor(), sp.Predictor)
		})
}

// TaskCountSweep measures the miss rate as the number of periodic tasks
// sharing the utilization varies (the paper: "the number of periodic
// tasks in a task set is arbitrary").
func TaskCountSweep(s Spec, counts []float64, policyNames []string) (*SensitivityResult, error) {
	return runSweep(s, "tasks", counts, policyNames,
		func(s Spec, rep Replication, point float64, pf PolicyFactory) (*sim.Result, error) {
			n := int(point)
			if n < 1 {
				return nil, fmt.Errorf("experiment: task count %v < 1", point)
			}
			sp := s
			sp.NumTasks = n
			rep2, err := Replicate(sp, repIndexOf(rep))
			if err != nil {
				return nil, err
			}
			// Same source seed as rep — share its realized trace.
			rep2.AdoptSource(rep)
			return runWith(sp, rep2, defaultSweepCapacity, pf, sp.Processor(), sp.Predictor)
		})
}

// PredictorSweep measures the miss rate of each named predictor (sweep
// "points" are indices into the names slice).
func PredictorSweep(s Spec, predictors []string, policyNames []string) (*SensitivityResult, error) {
	points := make([]float64, len(predictors))
	for i := range predictors {
		points[i] = float64(i)
	}
	res, err := runSweep(s, "predictor", points, policyNames,
		func(s Spec, rep Replication, point float64, pf PolicyFactory) (*sim.Result, error) {
			name := predictors[int(point)]
			if _, err := Predictor(name); err != nil {
				return nil, err
			}
			return runWith(s, rep, defaultSweepCapacity, pf, s.Processor(), name)
		})
	if err != nil {
		return nil, err
	}
	res.Param = "predictor"
	res.Labels = append([]string(nil), predictors...)
	return res, nil
}

// SlackFactorSweep measures the miss rate as the workload's best-case /
// worst-case execution ratio varies under the "stochastic-periodic" task
// model: lower points mean jobs usually finish well before their WCET
// budget, handing reclaiming policies (ea-dvfs-reclaim, lsa-reclaim)
// dynamic slack to stretch into. The spec's own TaskParams ride along —
// only "bc_ratio" is overridden per point — so the distribution shape
// ("dist", "mean", …) is still the caller's choice.
func SlackFactorSweep(s Spec, factors []float64, policyNames []string) (*SensitivityResult, error) {
	return runSweep(s, "bc-ratio", factors, policyNames,
		func(s Spec, rep Replication, point float64, pf PolicyFactory) (*sim.Result, error) {
			if point <= 0 || point > 1 {
				return nil, fmt.Errorf("experiment: best-case ratio %v outside (0,1]", point)
			}
			sp := s
			sp.TaskModel = "stochastic-periodic"
			params := make(map[string]any, len(s.TaskParams)+1)
			for k, v := range s.TaskParams {
				params[k] = v
			}
			params["bc_ratio"] = point
			sp.TaskParams = params
			// Re-derive the workload: the execution spec is part of the
			// task set. The source seed is not, so adopt the original
			// replication's prepared solar master.
			rep2, err := Replicate(sp, repIndexOf(rep))
			if err != nil {
				return nil, err
			}
			rep2.AdoptSource(rep)
			return runWith(sp, rep2, defaultSweepCapacity, pf, sp.Processor(), sp.Predictor)
		})
}

// SleepStateSweep measures the miss rate under each named DPM sleep
// preset (sweep "points" are indices into the names slice) — the
// sleep-state ablation. "none" is the DPM-free baseline; "default"
// attaches cpu.DefaultSleepStates. An unknown preset name is an error,
// not a silent baseline run.
func SleepStateSweep(s Spec, presets []string, policyNames []string) (*SensitivityResult, error) {
	points := make([]float64, len(presets))
	for i := range presets {
		points[i] = float64(i)
	}
	res, err := runSweep(s, "sleep", points, policyNames,
		func(s Spec, rep Replication, point float64, pf PolicyFactory) (*sim.Result, error) {
			proc := cpu.XScaleScaled(s.PMax)
			idle, states, err := cpu.SleepPreset(presets[int(point)], proc.MaxPower())
			if err != nil {
				return nil, err
			}
			if idle > 0 || len(states) > 0 {
				proc = proc.WithDPM(idle, states)
			}
			return runWith(s, rep, defaultSweepCapacity, pf, proc, s.Predictor)
		})
	if err != nil {
		return nil, err
	}
	res.Labels = append([]string(nil), presets...)
	return res, nil
}

// runWith is RunOne with an explicit processor and predictor name.
func runWith(s Spec, rep Replication, capacity float64, pf PolicyFactory, proc *cpu.Processor, predictor string) (*sim.Result, error) {
	predF, err := Predictor(predictor)
	if err != nil {
		return nil, err
	}
	src := rep.Source()
	res, err := sim.Run(&sim.Config{
		Horizon:   s.Horizon,
		Tasks:     rep.Tasks,
		Source:    src,
		Predictor: predF(src),
		Store:     storage.NewIdeal(capacity),
		CPU:       proc,
		Policy:    pf(),
		ExecSeed:  execSeedOf(rep),
		Probe:     s.Probe,
	})
	s.recordRun(res)
	return res, err
}

// repIndexOf recovers a replication's index so sweeps that re-derive the
// workload stay paired. Replications memoize their index.
func repIndexOf(rep Replication) int { return rep.Index }
