// Package experiment regenerates the paper's evaluation (§5): the energy
// source trace (Figure 5), the remaining-energy curves (Figures 6–7), the
// deadline-miss-rate sweeps (Figures 8–9) and the minimum-storage-capacity
// ratios (Table 1).
//
// Every experiment is driven by a Spec and a deterministic master seed;
// replication r of an experiment always sees the same task set and solar
// sample path regardless of which policies or capacities are being
// compared — the paper's "for the fair comparison of LSA and EA-DVFS, all
// simulations are performed under the same condition" (§5.2), and a
// paired-comparison variance reduction.
package experiment

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"github.com/eadvfs/eadvfs/internal/cpu"
	"github.com/eadvfs/eadvfs/internal/energy"
	"github.com/eadvfs/eadvfs/internal/obs"
	"github.com/eadvfs/eadvfs/internal/registry"
	"github.com/eadvfs/eadvfs/internal/rng"
	"github.com/eadvfs/eadvfs/internal/sched"
	"github.com/eadvfs/eadvfs/internal/sim"
	"github.com/eadvfs/eadvfs/internal/storage"
	"github.com/eadvfs/eadvfs/internal/task"
)

// DegradedRuns counts completed runs whose Result.Degradation recorded any
// fault-induced bending, across all sweeps in the process. The eaexp
// progress reporter samples it live; it is monitoring state, not a result
// (results carry their own Degradation tallies).
var DegradedRuns atomic.Int64

// tallyDegraded feeds the live degradation counter from one finished run.
func tallyDegraded(res *sim.Result) {
	if res != nil && res.Degradation.Any() {
		DegradedRuns.Add(1)
	}
}

// recordRun is the per-run observability tail every experiment runner
// calls: the live degradation tally, plus the spec's aggregate metrics
// registry when one is attached.
func (s Spec) recordRun(res *sim.Result) {
	tallyDegraded(res)
	if s.Metrics != nil && res != nil {
		RecordRunMetrics(s.Metrics, res)
	}
}

// RecordRunMetrics tallies one run's outcome into the registry under the
// eadvfs_run_* namespace: job outcomes, the busy/idle/stall time split,
// delivered CPU energy, and a per-run miss-rate summary. Counters
// accumulate across runs, so after a sweep the registry holds the sweep
// totals.
func RecordRunMetrics(reg *obs.Registry, res *sim.Result) {
	reg.Counter("eadvfs_runs_total", "completed simulation runs").Inc()
	const jobsHelp = "jobs by outcome across runs"
	reg.Counter(obs.Labeled("eadvfs_run_jobs_total", "outcome", "released"), jobsHelp).Add(float64(res.Miss.Released))
	reg.Counter(obs.Labeled("eadvfs_run_jobs_total", "outcome", "finished"), jobsHelp).Add(float64(res.Miss.Finished))
	reg.Counter(obs.Labeled("eadvfs_run_jobs_total", "outcome", "missed"), jobsHelp).Add(float64(res.Miss.Missed))
	const timeHelp = "simulated time by processor mode across runs"
	reg.Counter(obs.Labeled("eadvfs_run_time_total", "mode", "busy"), timeHelp).Add(res.BusyTime)
	reg.Counter(obs.Labeled("eadvfs_run_time_total", "mode", "idle"), timeHelp).Add(res.IdleTime)
	reg.Counter(obs.Labeled("eadvfs_run_time_total", "mode", "stall"), timeHelp).Add(res.StallTime)
	reg.Counter("eadvfs_run_cpu_energy_total", "energy delivered to the processor across runs").Add(res.CPUEnergy)
	reg.Summary("eadvfs_run_miss_rate", "per-run deadline miss rate").Observe(res.Miss.Rate())
	if res.Degradation.Any() {
		reg.Counter("eadvfs_run_degraded_total", "runs with any fault-induced degradation").Inc()
	}
}

// PolicyFactory builds a fresh policy instance per run (EA-DVFS carries
// per-job state, so instances must not be shared across runs).
type PolicyFactory func() sched.Policy

// PredictorFactory builds a fresh predictor per run, given the run's
// energy source (only the oracle uses it).
type PredictorFactory func(src energy.Source) energy.Predictor

// Policy returns the factory for a registered policy name with default
// parameters; see internal/registry for the catalog. Policies whose
// schema binds to spec context (static-dvfs derives its operating point
// from the utilization) should resolve through Spec.PolicyFor instead.
func Policy(name string) (PolicyFactory, error) {
	return PolicyParams(name, nil, Spec{})
}

// PolicyParams resolves a registered policy with explicit parameters,
// validated against the registration's schema. When the schema declares
// a "utilization" parameter and the caller didn't set it, the spec's
// utilization is bound in — the context static-dvfs sizes its fixed
// operating point from.
func PolicyParams(name string, params map[string]any, s Spec) (PolicyFactory, error) {
	def, err := registry.Policy(name)
	if err != nil {
		return nil, err
	}
	p := registry.Params(params)
	if def.HasParam("utilization") && s.Utilization != 0 {
		if _, ok := p["utilization"]; !ok {
			bound := make(registry.Params, len(p)+1)
			for k, v := range p {
				bound[k] = v
			}
			bound["utilization"] = s.Utilization
			p = bound
		}
	}
	f, err := def.Factory(p)
	if err != nil {
		return nil, err
	}
	return PolicyFactory(f), nil
}

// PolicyNames lists the registered policy names in registration order.
func PolicyNames() []string { return registry.PolicyNames() }

// PredictorNames lists the registered predictor names in registration
// order.
func PredictorNames() []string { return registry.PredictorNames() }

// Policies resolves a list of policy names via PolicyFor — the plural form
// callers of RunBatch and NewMinCapacitySearcher need.
func (s Spec) Policies(names []string) ([]PolicyFactory, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("experiment: no policies requested")
	}
	fs := make([]PolicyFactory, len(names))
	for i, n := range names {
		f, err := s.PolicyFor(n)
		if err != nil {
			return nil, err
		}
		fs[i] = f
	}
	return fs, nil
}

// PolicyFor resolves a policy name in the context of a spec with default
// parameters; schema-declared context parameters (static-dvfs's
// "utilization") bind from the spec.
func (s Spec) PolicyFor(name string) (PolicyFactory, error) {
	return PolicyParams(name, nil, s)
}

// Predictor returns the factory for a registered predictor name with
// default parameters ("" aliases "ewma"); see internal/registry for the
// catalog.
func Predictor(name string) (PredictorFactory, error) {
	return PredictorParams(name, nil)
}

// PredictorParams resolves a registered predictor with explicit
// parameters, validated against the registration's schema.
func PredictorParams(name string, params map[string]any) (PredictorFactory, error) {
	def, err := registry.Predictor(name)
	if err != nil {
		return nil, err
	}
	f, err := def.Factory(registry.Params(params))
	if err != nil {
		return nil, err
	}
	return PredictorFactory(f), nil
}

// Spec holds the §5.1 simulation parameters.
type Spec struct {
	Horizon      float64   // simulation length; paper: 10 000
	NumTasks     int       // periodic tasks per set; paper figures use 5
	Utilization  float64   // target U
	Capacities   []float64 // storage sweep; paper: 200…5000
	Replications int       // task sets per point; paper: 5 000
	Seed         uint64    // master seed
	Predictor    string    // predictor name (see Predictor)

	// TaskModel names the registered workload generator ("" means
	// "periodic", the paper's §5.1 recipe) and TaskParams carries its
	// schema-validated parameters. Schema v2 members: serialized under
	// explicit lowercase keys, omitted when unset so v1 documents and
	// their digests are unchanged.
	TaskModel  string         `json:"task_model,omitempty"`
	TaskParams map[string]any `json:"task_params,omitempty"`

	// Sleep names the processor's DPM sleep preset ("" or "none" runs
	// without DPM, "default" attaches the standard nap/deep pair — see
	// cpu.SleepPreset). Schema v2 member, omitted when unset so v1
	// documents and their digests are unchanged.
	Sleep string `json:"sleep,omitempty"`

	// PredictorAlpha overrides the smoothing factor of the "ewma" and
	// "slot-ewma" predictors; 0 keeps each predictor's built-in default.
	// Flag-sourced values are validated through the energy package's
	// checked constructors, so a bad alpha is an error, not a panic
	// mid-sweep.
	PredictorAlpha float64

	// PMax sets the processor's maximum power in the experiment's energy
	// units (relative XScale powers are preserved). The paper leaves the
	// absolute scale implicit; DefaultSpec calibrates it so the miss-rate
	// dynamic range matches Figures 8–9 (DESIGN.md §5.3).
	PMax float64

	// Probe, when non-nil, observes every run of the experiment
	// (sim.Config.Probe). Shared across the parallel workers, so it must be
	// safe for concurrent use (obs.JSONLWriter and obs.MetricsProbe are).
	// Excluded from serialization: a manifest identifies the experiment,
	// not its observers.
	Probe obs.Probe `json:"-"`

	// Metrics, when non-nil, additionally receives per-run aggregate
	// series (RecordRunMetrics) from every finished run. Registry handles
	// are concurrency-safe, so one registry serves all workers. Excluded
	// from serialization for the same reason as Probe.
	Metrics *obs.Registry `json:"-"`

	// Spans, when non-nil, receives wall-clock phase spans from the shard
	// runner (plan / realize-solar / simulate / aggregate — DESIGN.md §15),
	// parented under the span context the sink carries (obs.TraceCarrier),
	// e.g. the service's per-request engine span. Shared across parallel
	// workers, so it must be safe for concurrent use. Excluded from
	// serialization and therefore from the config digest: tracing a sweep
	// must not change its cache identity.
	Spans obs.SpanSink `json:"-"`
}

// Processor returns the spec's calibrated XScale processor, with the
// spec's DPM sleep preset attached when one names any sleep machinery.
// Validate rejects unknown preset names before any run, so resolution
// here cannot fail.
func (s Spec) Processor() *cpu.Processor {
	p := cpu.XScaleScaled(s.PMax)
	idle, states, err := cpu.SleepPreset(s.Sleep, p.MaxPower())
	if err != nil {
		panic(err)
	}
	if idle > 0 || len(states) > 0 {
		p = p.WithDPM(idle, states)
	}
	return p
}

// DefaultSpec returns the paper's setup with a CI-friendly replication
// count (the paper's 5 000 is available by overriding Replications).
func DefaultSpec() Spec {
	return Spec{
		Horizon:      10000,
		NumTasks:     5,
		Utilization:  0.4,
		Capacities:   PaperCapacities(),
		Replications: 40,
		Seed:         1,
		Predictor:    "ewma",
		PMax:         10,
	}
}

// PaperCapacities returns the §5.2 storage sweep {200, 300, 500, 1000,
// 2000, 3000, 5000}.
func PaperCapacities() []float64 {
	return []float64{200, 300, 500, 1000, 2000, 3000, 5000}
}

// Validate checks a Spec.
func (s Spec) Validate() error {
	switch {
	case s.Horizon <= 0:
		return fmt.Errorf("experiment: horizon %v <= 0", s.Horizon)
	case s.NumTasks <= 0:
		return fmt.Errorf("experiment: %d tasks", s.NumTasks)
	case s.Utilization <= 0 || s.Utilization > 1:
		return fmt.Errorf("experiment: utilization %v outside (0,1]", s.Utilization)
	case len(s.Capacities) == 0:
		return fmt.Errorf("experiment: no capacities")
	case s.Replications <= 0:
		return fmt.Errorf("experiment: %d replications", s.Replications)
	case s.PMax <= 0:
		return fmt.Errorf("experiment: PMax %v <= 0", s.PMax)
	}
	for _, c := range s.Capacities {
		if c <= 0 || math.IsInf(c, 0) || math.IsNaN(c) {
			return fmt.Errorf("experiment: invalid capacity %v", c)
		}
	}
	if _, err := s.PredictorFor(s.Predictor); err != nil {
		return err
	}
	if _, _, err := cpu.SleepPreset(s.Sleep, 1); err != nil {
		return err
	}
	model, err := registry.TaskModel(s.TaskModel)
	if err != nil {
		return err
	}
	if err := registry.ValidateParams(registry.KindTaskModel, model.Name, model.Params, registry.Params(s.TaskParams)); err != nil {
		return err
	}
	return nil
}

// PredictorFor resolves a predictor name with the spec's smoothing factor
// applied. With PredictorAlpha zero it is exactly Predictor; otherwise
// the override must name a predictor whose schema declares an "alpha"
// parameter.
func (s Spec) PredictorFor(name string) (PredictorFactory, error) {
	if s.PredictorAlpha == 0 {
		return Predictor(name)
	}
	def, err := registry.Predictor(name)
	if err != nil {
		return nil, err
	}
	if !def.HasParam("alpha") {
		return nil, fmt.Errorf("experiment: predictor %q has no smoothing factor to override", def.Name)
	}
	f, err := def.Factory(registry.Params{"alpha": s.PredictorAlpha})
	if err != nil {
		return nil, err
	}
	return PredictorFactory(f), nil
}

// defaultEventBudget is the runaway watchdog for experiment runs: a
// healthy run dispatches a handful of events per time unit, so three
// orders of magnitude above that can only be a decision loop stuck at one
// instant.
func defaultEventBudget(horizon float64) uint64 {
	return uint64((horizon + 10) * 1000)
}

// Replication is the deterministic per-replication material: the task set
// and the seed of the solar sample path. Policies and capacities compared
// within a replication share both.
type Replication struct {
	Index      int
	Tasks      []task.Task
	SourceSeed uint64

	// master is the replication's memoized solar trace. When prepared,
	// Source() forks it, so every paired policy/capacity run shares one
	// realized sample path instead of regenerating ~horizon half-normal
	// draws per run. nil is always valid — Source() then seeds a fresh
	// model, which realizes the bit-identical trace (the seed is the
	// trace's identity).
	master *energy.SolarModel
}

// PrepareSource memoizes the replication's solar model and warms it
// through time upTo. Call it once before fanning a replication out to
// parallel runs: the forks then share the realized trace and never mutate
// the master, so concurrent runs stay race-free.
func (r *Replication) PrepareSource(upTo float64) {
	if r.master == nil {
		r.master = energy.NewSolarModel(r.SourceSeed)
	}
	if upTo >= 0 {
		r.master.PowerAt(upTo)
	}
}

// Source returns the solar source for one run of this replication: a fork
// of the prepared master (sharing its memoized samples) or, unprepared, a
// fresh seeded model. Both realize the same trace bit for bit.
func (r *Replication) Source() *energy.SolarModel {
	if r.master != nil {
		return r.master.Fork()
	}
	return energy.NewSolarModel(r.SourceSeed)
}

// AdoptSource shares another replication's memoized solar master when the
// source seeds match. Sensitivity sweeps that re-derive the task set for a
// shifted parameter (PMaxSweep, TaskCountSweep) produce replications with
// the same source seed as the originals; adopting the prepared master lets
// their runs fork the already-realized trace instead of regenerating
// ~horizon half-normal draws per cell. A seed mismatch adopts nothing —
// correctness never depends on adoption (the seed is the trace identity).
func (r *Replication) AdoptSource(from Replication) {
	if r.SourceSeed == from.SourceSeed {
		r.master = from.master
	}
}

// solarMeanPower memoizes the generator's harvest-power scale: the eq. (13)
// mean is closed-form and seed-independent, so deriving thousands of
// replications should not rebuild a model per call.
var solarMeanPower = sync.OnceValue(func() float64 {
	return energy.NewSolarModel(0).MeanPower()
})

// Replicate derives replication r of the spec through its registered
// task model (default "periodic", the paper's recipe).
func Replicate(s Spec, r int) (Replication, error) {
	model, err := registry.TaskModel(s.TaskModel)
	if err != nil {
		return Replication{}, err
	}
	master := rng.New(s.Seed)
	taskRng := master.Child(uint64(2 * r))
	srcSeed := master.Child(uint64(2*r + 1)).Uint64()
	gen := registry.TaskGen{
		NumTasks:         s.NumTasks,
		TargetU:          s.Utilization,
		MeanHarvestPower: solarMeanPower(),
		PMax:             s.Processor().MaxPower(),
	}
	tasks, err := model.Build(gen, registry.Params(s.TaskParams), taskRng)
	if err != nil {
		return Replication{}, err
	}
	return Replication{Index: r, Tasks: tasks, SourceSeed: srcSeed}, nil
}

// execSeedOf derives a replication's execution-draw seed: a pure
// function of the replication identity (so paired policy/capacity runs
// share the same per-job draws), decorrelated from the solar seed so
// the two stochastic streams never accidentally alias. Consulted by the
// engine only when the workload is stochastic — WCET-exact runs never
// observe it.
func execSeedOf(rep Replication) uint64 {
	return rep.SourceSeed ^ 0xbf58476d1ce4e5b9
}

// RunOne executes a single simulation of replication rep at the given
// capacity under the given policy, with the spec's predictor. The store
// starts full (§5.1).
func RunOne(s Spec, rep Replication, capacity float64, pf PolicyFactory, record bool) (*sim.Result, error) {
	return RunOneCtx(context.Background(), s, rep, capacity, pf, record)
}

// RunOneCtx is RunOne under a cancellation context: the context is handed
// to the engine (sim.Config.Context), so an abandoned or timed-out request
// aborts the run mid-flight instead of finishing a result nobody wants.
// context.Background() reproduces RunOne exactly.
func RunOneCtx(ctx context.Context, s Spec, rep Replication, capacity float64, pf PolicyFactory, record bool) (*sim.Result, error) {
	predF, err := s.PredictorFor(s.Predictor)
	if err != nil {
		return nil, err
	}
	src := rep.Source()
	cfg := &sim.Config{
		Horizon:      s.Horizon,
		Tasks:        rep.Tasks,
		Source:       src,
		Predictor:    predF(src),
		Store:        storage.NewIdeal(capacity),
		CPU:          s.Processor(),
		Policy:       pf(),
		RecordEnergy: record,
		ExecSeed:     execSeedOf(rep),
		MaxEvents:    defaultEventBudget(s.Horizon),
		Probe:        s.Probe,
	}
	if ctx != context.Background() && ctx != nil {
		cfg.Context = ctx
	}
	res, err := sim.Run(cfg)
	s.recordRun(res)
	return res, err
}
