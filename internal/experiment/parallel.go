package experiment

import (
	"runtime"
	"sync"
)

// Parallelism is the number of worker goroutines experiment runners use
// for independent simulations. Each simulation is single-threaded and
// fully self-contained (per-run store, predictor and policy state), so
// replications parallelize embarrassingly; results are merged in a
// deterministic order regardless of completion order.
var Parallelism = runtime.GOMAXPROCS(0)

// job is one unit of parallel work, identified by its slot in the output.
type job struct {
	slot int
	run  func() error
}

// runParallel executes jobs across min(Parallelism, len(jobs)) workers and
// returns the first error (by slot order) if any failed. Each job writes
// its result into caller-owned, slot-indexed storage, which keeps merging
// deterministic.
func runParallel(jobs []job) error {
	workers := Parallelism
	if workers < 1 {
		workers = 1
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		errs = make(map[int]error)
		next int
	)
	if workers == 1 {
		// Serial path: same all-jobs, lowest-slot-error semantics.
		for _, j := range jobs {
			if err := j.run(); err != nil {
				errs[j.slot] = err
			}
		}
		return lowestSlotError(errs)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if next >= len(jobs) {
					mu.Unlock()
					return
				}
				j := jobs[next]
				next++
				mu.Unlock()
				if err := j.run(); err != nil {
					mu.Lock()
					errs[j.slot] = err
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return lowestSlotError(errs)
}

// lowestSlotError returns the recorded error with the smallest slot, for
// deterministic reporting, or nil.
func lowestSlotError(errs map[int]error) error {
	best := -1
	for slot := range errs {
		if best == -1 || slot < best {
			best = slot
		}
	}
	if best == -1 {
		return nil
	}
	return errs[best]
}
