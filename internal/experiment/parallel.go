package experiment

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Parallelism is the number of worker goroutines experiment runners use
// for independent simulations. Each simulation is single-threaded and
// fully self-contained (per-run store, predictor and policy state), so
// replications parallelize embarrassingly; results are merged in a
// deterministic order regardless of completion order.
var Parallelism = runtime.GOMAXPROCS(0)

// maxJobAttempts bounds how many times a job failing with a
// TransientError is re-executed before its error sticks.
const maxJobAttempts = 3

// Progress, when non-nil, is invoked after every finished parallel job with
// the number of jobs done so far and the batch total. Calls are serialized
// (one at a time), so the reporter needs no locking of its own; it must be
// fast — it runs on the worker's critical path. The eaexp live progress
// line is the intended consumer.
var Progress func(done, total int)

// job is one unit of parallel work, identified by its slot in the output.
type job struct {
	slot int
	run  func() error
}

// TransientError marks a job failure as retryable: runParallel re-executes
// the job (up to maxJobAttempts total) before recording the error.
// Simulations are deterministic, so genuine model errors are NOT
// transient; this classifies environmental failures (e.g. a temp-file
// write during CSV export) that a retry can clear.
type TransientError struct{ Err error }

// Error implements error.
func (e *TransientError) Error() string { return "transient: " + e.Err.Error() }

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *TransientError) Unwrap() error { return e.Err }

// PanicError is a worker panic converted into a slot-attributed error, so
// one exploding replication surfaces as a diagnosable failure instead of
// crashing (or, worse, hanging) the whole sweep.
type PanicError struct {
	Slot  int
	Value any
	Stack string
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("experiment: job %d panicked: %v", e.Slot, e.Value)
}

// CancelledError reports a batch stopped early by context cancellation: a
// partial-aggregation error carrying how far the sweep got. Already-running
// jobs finished (their results are in the caller's slot storage), but
// Skipped queued jobs were never started, so any aggregate over the batch
// would silently mix completed and missing slots — callers must treat the
// sweep as partial. errors.Is(err, context.Canceled) (or DeadlineExceeded)
// sees through it via Unwrap.
type CancelledError struct {
	Done    int   // jobs that ran to completion (or failed) before the stop
	Skipped int   // queued jobs cancelled at pickup
	Total   int   // jobs in the batch
	Err     error // the context's error (Canceled or DeadlineExceeded)
}

// Error implements error.
func (e *CancelledError) Error() string {
	return fmt.Sprintf("experiment: sweep cancelled after %d/%d jobs (%d skipped at pickup): %v",
		e.Done, e.Total, e.Skipped, e.Err)
}

// Unwrap exposes the context error to errors.Is/As.
func (e *CancelledError) Unwrap() error { return e.Err }

// RunHardened executes fn with the parallel runner's robustness wrapper —
// panic recovery into a *PanicError and bounded retry of TransientError
// failures — without a batch around it. The simulation service uses it so
// a single network-submitted run gets the same hardening a sweep
// replication does: one exploding request surfaces as a diagnosable 5xx,
// never a dead worker.
func RunHardened(fn func() error) error {
	return runJob(job{slot: 0, run: fn})
}

// runParallel executes jobs across min(Parallelism, len(jobs)) workers and
// returns the first error (by slot order) if any failed. Each job writes
// its result into caller-owned, slot-indexed storage, which keeps merging
// deterministic.
//
// Robustness guarantees: a panicking job is recovered into a *PanicError
// (the sweep never hangs on a dead worker), TransientError failures are
// retried a bounded number of times, and after the first recorded error
// the remaining queued jobs are cancelled at pickup — already-running jobs
// finish, and their errors still participate in lowest-slot selection.
func runParallel(jobs []job) error {
	return runParallelCtx(context.Background(), jobs)
}

// runParallelCtx is runParallel with cooperative cancellation: when ctx is
// cancelled, queued jobs are dropped at pickup (already-running jobs
// finish) and the batch returns a *CancelledError describing the partial
// aggregation, taking precedence over per-job errors — a cancelled sweep's
// job errors are usually just the engine reporting the same cancellation.
func runParallelCtx(ctx context.Context, jobs []job) error {
	errs, skipped := runParallelPartialCtx(ctx, jobs, false)
	if err := ctx.Err(); err != nil && skipped > 0 {
		return &CancelledError{
			Done:    len(jobs) - skipped,
			Skipped: skipped,
			Total:   len(jobs),
			Err:     err,
		}
	}
	return lowestSlotError(errs)
}

// runParallelPartial is runParallelPartialCtx without a cancellation
// context (robustness sweeps want every slot attempted regardless).
func runParallelPartial(jobs []job, keepGoing bool) (map[int]error, int) {
	return runParallelPartialCtx(context.Background(), jobs, keepGoing)
}

// runParallelPartialCtx is the engine behind the batch runners. With
// keepGoing set, a failing job does not cancel the rest: every job runs,
// the per-slot errors are returned, and the caller aggregates the
// surviving slots — one bad replication no longer discards a whole sweep.
// A cancelled ctx stops the batch at job pickup either way (keepGoing
// tolerates job failures, not an abandoned request). It returns the
// recorded errors by slot and the number of jobs skipped by cancellation.
func runParallelPartialCtx(ctx context.Context, jobs []job, keepGoing bool) (map[int]error, int) {
	workers := Parallelism
	if workers < 1 {
		workers = 1
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	var (
		mu        sync.Mutex
		errs      = make(map[int]error)
		cancelled atomic.Bool
		skipped   int
		done      int
	)
	record := func(slot int, err error) {
		mu.Lock()
		errs[slot] = err
		mu.Unlock()
		if !keepGoing {
			cancelled.Store(true)
		}
	}
	// Snapshot the hook once: reporters are installed before the batch
	// starts, and a stable local avoids racing a reassignment mid-batch.
	progress := Progress
	finished := func() {
		if progress == nil {
			return
		}
		mu.Lock()
		done++
		progress(done, len(jobs))
		mu.Unlock()
	}
	if workers <= 1 {
		// Serial path: same pickup-time cancellation semantics.
		for _, j := range jobs {
			if cancelled.Load() || ctx.Err() != nil {
				skipped++
				continue
			}
			if err := runJob(j); err != nil {
				record(j.slot, err)
			}
			finished()
		}
		return errs, skipped
	}

	var (
		wg   sync.WaitGroup
		next int
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if next >= len(jobs) {
					mu.Unlock()
					return
				}
				if cancelled.Load() || ctx.Err() != nil {
					skipped += len(jobs) - next
					next = len(jobs)
					mu.Unlock()
					return
				}
				j := jobs[next]
				next++
				mu.Unlock()
				if err := runJob(j); err != nil {
					record(j.slot, err)
				}
				finished()
			}
		}()
	}
	wg.Wait()
	return errs, skipped
}

// runJob executes one job with panic recovery and bounded retry of
// transient failures.
func runJob(j job) error {
	var err error
	for attempt := 0; attempt < maxJobAttempts; attempt++ {
		err = runJobOnce(j)
		var te *TransientError
		if err == nil || !errors.As(err, &te) {
			return err
		}
	}
	return err
}

// runJobOnce executes the job's function, converting a panic into a
// slot-attributed *PanicError.
func runJobOnce(j job) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Slot: j.slot, Value: r, Stack: string(debug.Stack())}
		}
	}()
	return j.run()
}

// lowestSlotError returns the recorded error with the smallest slot, for
// deterministic reporting, or nil.
func lowestSlotError(errs map[int]error) error {
	best := -1
	for slot := range errs {
		if best == -1 || slot < best {
			best = slot
		}
	}
	if best == -1 {
		return nil
	}
	return errs[best]
}
