package experiment

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestRunParallelExecutesAll(t *testing.T) {
	const n = 100
	var count int64
	var jobs []job
	for i := 0; i < n; i++ {
		jobs = append(jobs, job{slot: i, run: func() error {
			atomic.AddInt64(&count, 1)
			return nil
		}})
	}
	if err := runParallel(jobs); err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("executed %d of %d jobs", count, n)
	}
}

func TestRunParallelReportsLowestSlotError(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	jobs := []job{
		{slot: 5, run: func() error { return errB }},
		{slot: 2, run: func() error { return errA }},
		{slot: 9, run: func() error { return nil }},
	}
	if err := runParallel(jobs); err != errA {
		t.Fatalf("got %v, want the slot-2 error", err)
	}
}

func TestRunParallelEmptyAndSerial(t *testing.T) {
	if err := runParallel(nil); err != nil {
		t.Fatal(err)
	}
	old := Parallelism
	defer func() { Parallelism = old }()
	Parallelism = 1
	ran := false
	if err := runParallel([]job{{slot: 0, run: func() error { ran = true; return nil }}}); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("serial path did not run the job")
	}
	Parallelism = 0 // degenerate setting must still work
	if err := runParallel([]job{{slot: 0, run: func() error { return nil }}}); err != nil {
		t.Fatal(err)
	}
}

// Parallel and serial execution of a sweep must produce identical results
// — the merge is slot-ordered, not completion-ordered.
func TestParallelDeterminism(t *testing.T) {
	s := testSpec()
	s.Capacities = []float64{150, 600}

	old := Parallelism
	defer func() { Parallelism = old }()

	Parallelism = 8
	par, err := MissRateSweep(s, []string{"lsa", "ea-dvfs"})
	if err != nil {
		t.Fatal(err)
	}
	Parallelism = 1
	ser, err := MissRateSweep(s, []string{"lsa", "ea-dvfs"})
	if err != nil {
		t.Fatal(err)
	}
	for name := range par.Rates {
		for i := range par.Rates[name] {
			if par.Rates[name][i] != ser.Rates[name][i] {
				t.Fatalf("%s[%d]: parallel %v != serial %v", name, i, par.Rates[name][i], ser.Rates[name][i])
			}
		}
	}
}
