package experiment

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestRunParallelExecutesAll(t *testing.T) {
	const n = 100
	var count int64
	var jobs []job
	for i := 0; i < n; i++ {
		jobs = append(jobs, job{slot: i, run: func() error {
			atomic.AddInt64(&count, 1)
			return nil
		}})
	}
	if err := runParallel(jobs); err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("executed %d of %d jobs", count, n)
	}
}

// When several in-flight jobs fail, the reported error is the one with the
// lowest slot, regardless of completion order. A barrier holds all jobs
// in-flight so cancellation cannot skip any of them.
func TestRunParallelReportsLowestSlotError(t *testing.T) {
	old := Parallelism
	defer func() { Parallelism = old }()
	Parallelism = 3

	errA := errors.New("a")
	errB := errors.New("b")
	var barrier sync.WaitGroup
	barrier.Add(3)
	gate := func(err error) error {
		barrier.Done()
		barrier.Wait() // all three jobs are running before any error records
		return err
	}
	jobs := []job{
		{slot: 5, run: func() error { return gate(errB) }},
		{slot: 2, run: func() error { return gate(errA) }},
		{slot: 9, run: func() error { return gate(nil) }},
	}
	if err := runParallel(jobs); err != errA {
		t.Fatalf("got %v, want the slot-2 error", err)
	}
}

func TestRunParallelEmptyAndSerial(t *testing.T) {
	if err := runParallel(nil); err != nil {
		t.Fatal(err)
	}
	old := Parallelism
	defer func() { Parallelism = old }()
	Parallelism = 1
	ran := false
	if err := runParallel([]job{{slot: 0, run: func() error { ran = true; return nil }}}); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("serial path did not run the job")
	}
	Parallelism = 0 // degenerate setting must still work
	if err := runParallel([]job{{slot: 0, run: func() error { return nil }}}); err != nil {
		t.Fatal(err)
	}
}

// A panicking job must surface as a slot-attributed error — before panic
// recovery, the panic killed its worker goroutine and wg.Wait() hung the
// whole sweep once every worker had died.
func TestRunParallelPanicSurfacesAsError(t *testing.T) {
	old := Parallelism
	defer func() { Parallelism = old }()
	Parallelism = 2

	var jobs []job
	for i := 0; i < 8; i++ {
		i := i
		jobs = append(jobs, job{slot: i, run: func() error {
			if i == 3 {
				panic("boom")
			}
			return nil
		}})
	}
	err := runParallel(jobs)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("got %v, want *PanicError", err)
	}
	if pe.Slot != 3 || pe.Value != "boom" {
		t.Fatalf("panic attributed to slot %d value %v", pe.Slot, pe.Value)
	}
	if !strings.Contains(pe.Stack, "goroutine") {
		t.Fatal("panic error carries no stack trace")
	}
	if !strings.Contains(pe.Error(), "job 3 panicked") {
		t.Fatalf("unhelpful message %q", pe.Error())
	}
}

// Every worker panicking at once must still return, not deadlock.
func TestRunParallelAllPanicNoHang(t *testing.T) {
	old := Parallelism
	defer func() { Parallelism = old }()
	Parallelism = 4

	var jobs []job
	for i := 0; i < 4; i++ {
		jobs = append(jobs, job{slot: i, run: func() error { panic("everyone") }})
	}
	var pe *PanicError
	if err := runParallel(jobs); !errors.As(err, &pe) {
		t.Fatalf("got %v, want *PanicError", err)
	}
}

// After the first error, queued jobs are cancelled at pickup instead of
// being executed uselessly.
func TestRunParallelCancelsQueuedAfterError(t *testing.T) {
	old := Parallelism
	defer func() { Parallelism = old }()
	Parallelism = 1 // serial pickup order makes the cancellation point exact

	boom := errors.New("boom")
	var ran int64
	jobs := []job{
		{slot: 0, run: func() error { atomic.AddInt64(&ran, 1); return nil }},
		{slot: 1, run: func() error { return boom }},
		{slot: 2, run: func() error { atomic.AddInt64(&ran, 1); return nil }},
		{slot: 3, run: func() error { atomic.AddInt64(&ran, 1); return nil }},
	}
	errs, skipped := runParallelPartial(jobs, false)
	if err := lowestSlotError(errs); err != boom {
		t.Fatalf("got %v, want boom", err)
	}
	if ran != 1 {
		t.Fatalf("%d clean jobs ran, want only the pre-error one", ran)
	}
	if skipped != 2 {
		t.Fatalf("skipped %d jobs, want 2", skipped)
	}
}

// With keepGoing, errors are collected without cancelling the rest —
// partial-result aggregation runs every slot.
func TestRunParallelPartialKeepsGoing(t *testing.T) {
	old := Parallelism
	defer func() { Parallelism = old }()
	Parallelism = 4

	boom := errors.New("boom")
	var ran int64
	var jobs []job
	for i := 0; i < 12; i++ {
		i := i
		jobs = append(jobs, job{slot: i, run: func() error {
			atomic.AddInt64(&ran, 1)
			if i%4 == 0 {
				return boom
			}
			return nil
		}})
	}
	errs, skipped := runParallelPartial(jobs, true)
	if ran != 12 || skipped != 0 {
		t.Fatalf("ran %d skipped %d, want 12/0", ran, skipped)
	}
	if len(errs) != 3 {
		t.Fatalf("recorded %d errors, want 3: %v", len(errs), errs)
	}
	for _, slot := range []int{0, 4, 8} {
		if errs[slot] != boom {
			t.Fatalf("slot %d error %v, want boom", slot, errs[slot])
		}
	}
}

// TransientError failures are retried up to maxJobAttempts; persistent
// failures and plain errors are not retried.
func TestRunParallelTransientRetry(t *testing.T) {
	old := Parallelism
	defer func() { Parallelism = old }()
	Parallelism = 1

	flaky := errors.New("flaky io")
	var attempts int64
	recovers := job{slot: 0, run: func() error {
		if atomic.AddInt64(&attempts, 1) < 3 {
			return &TransientError{Err: flaky}
		}
		return nil
	}}
	if err := runParallel([]job{recovers}); err != nil {
		t.Fatalf("job recovered on retry but sweep failed: %v", err)
	}
	if attempts != 3 {
		t.Fatalf("%d attempts, want 3", attempts)
	}

	attempts = 0
	hopeless := job{slot: 0, run: func() error {
		atomic.AddInt64(&attempts, 1)
		return &TransientError{Err: flaky}
	}}
	err := runParallel([]job{hopeless})
	if !errors.Is(err, flaky) {
		t.Fatalf("got %v, want wrapped flaky error", err)
	}
	if attempts != maxJobAttempts {
		t.Fatalf("%d attempts, want %d", attempts, maxJobAttempts)
	}

	attempts = 0
	plain := job{slot: 0, run: func() error {
		atomic.AddInt64(&attempts, 1)
		return flaky
	}}
	if err := runParallel([]job{plain}); err != flaky {
		t.Fatalf("got %v, want flaky", err)
	}
	if attempts != 1 {
		t.Fatalf("plain error retried: %d attempts", attempts)
	}
}

// Parallel and serial execution of a sweep must produce identical results
// — the merge is slot-ordered, not completion-ordered.
func TestParallelDeterminism(t *testing.T) {
	s := testSpec()
	s.Capacities = []float64{150, 600}

	old := Parallelism
	defer func() { Parallelism = old }()

	Parallelism = 8
	par, err := MissRateSweep(s, []string{"lsa", "ea-dvfs"})
	if err != nil {
		t.Fatal(err)
	}
	Parallelism = 1
	ser, err := MissRateSweep(s, []string{"lsa", "ea-dvfs"})
	if err != nil {
		t.Fatal(err)
	}
	for name := range par.Rates {
		for i := range par.Rates[name] {
			if par.Rates[name][i] != ser.Rates[name][i] {
				t.Fatalf("%s[%d]: parallel %v != serial %v", name, i, par.Rates[name][i], ser.Rates[name][i])
			}
		}
	}
}
