package experiment

import (
	"testing"
)

func sensSpec() Spec {
	s := DefaultSpec()
	s.Horizon = 1500
	s.Replications = 3
	s.Capacities = []float64{300}
	return s
}

func TestLevelCountSweep(t *testing.T) {
	s := sensSpec()
	res, err := LevelCountSweep(s, []float64{1, 2, 5}, []string{"ea-dvfs"})
	if err != nil {
		t.Fatal(err)
	}
	rates := res.Rates["ea-dvfs"]
	if len(rates) != 3 {
		t.Fatalf("points = %d", len(rates))
	}
	for i, r := range rates {
		if r < 0 || r > 1 {
			t.Fatalf("rate[%d] = %v", i, r)
		}
	}
	// One level = no DVFS: EA-DVFS degenerates to LSA-like behaviour and
	// must not beat its own 5-level version.
	if rates[2] > rates[0]+0.02 {
		t.Fatalf("more DVFS levels made things worse: 1-level %v vs 5-level %v", rates[0], rates[2])
	}
}

func TestPMaxSweepMonotoneStarvation(t *testing.T) {
	s := sensSpec()
	res, err := PMaxSweep(s, []float64{4, 10, 20}, []string{"lsa"})
	if err != nil {
		t.Fatal(err)
	}
	rates := res.Rates["lsa"]
	// A hungrier processor starves more.
	if !(rates[0] <= rates[1]+0.02 && rates[1] <= rates[2]+0.02) {
		t.Fatalf("miss rate not increasing with PMax: %v", rates)
	}
}

func TestTaskCountSweep(t *testing.T) {
	s := sensSpec()
	res, err := TaskCountSweep(s, []float64{2, 8}, []string{"ea-dvfs", "lsa"})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range res.Policies {
		for i, r := range res.Rates[name] {
			if r < 0 || r > 1 {
				t.Fatalf("%s rate[%d] = %v", name, i, r)
			}
		}
	}
}

func TestPredictorSweep(t *testing.T) {
	s := sensSpec()
	res, err := PredictorSweep(s, []string{"oracle", "ewma", "zero"}, []string{"ea-dvfs"})
	if err != nil {
		t.Fatal(err)
	}
	rates := res.Rates["ea-dvfs"]
	if len(rates) != 3 {
		t.Fatalf("points = %d", len(rates))
	}
	// The pessimist must not beat the oracle by a margin.
	if rates[2] < rates[0]-0.02 {
		t.Fatalf("zero predictor (%v) beat oracle (%v)", rates[2], rates[0])
	}
}

func TestSweepErrors(t *testing.T) {
	s := sensSpec()
	if _, err := LevelCountSweep(s, nil, []string{"ea-dvfs"}); err == nil {
		t.Fatal("empty sweep accepted")
	}
	if _, err := LevelCountSweep(s, []float64{0}, []string{"ea-dvfs"}); err == nil {
		t.Fatal("zero level count accepted")
	}
	if _, err := PMaxSweep(s, []float64{-1}, []string{"lsa"}); err == nil {
		t.Fatal("negative pmax accepted")
	}
	if _, err := TaskCountSweep(s, []float64{0}, []string{"lsa"}); err == nil {
		t.Fatal("zero task count accepted")
	}
	if _, err := PredictorSweep(s, []string{"bogus"}, []string{"lsa"}); err == nil {
		t.Fatal("unknown predictor accepted")
	}
	if _, err := LevelCountSweep(s, []float64{2}, []string{"bogus"}); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

// Static (energy-oblivious) DVFS versus EA-DVFS: at low utilization,
// running everything at the utilization speed is already energy-optimal
// and timing-feasible, so static DVFS wins — EA-DVFS pays for running at
// full speed whenever the store looks healthy. At high utilization the
// static speed approaches f_max, the pure-DVFS gain evaporates, and
// energy awareness (lazy starts, selective stretching) takes over. The
// crossover is the interesting measurement (EXPERIMENTS.md ablations).
func TestStaticDVFSCrossover(t *testing.T) {
	rates := func(u float64) (float64, float64) {
		s := sensSpec()
		s.Utilization = u
		res, err := MissRateSweep(s, []string{"static-dvfs", "ea-dvfs"})
		if err != nil {
			t.Fatal(err)
		}
		return res.Rates["static-dvfs"][0], res.Rates["ea-dvfs"][0]
	}
	staticLow, eaLow := rates(0.4)
	if staticLow > eaLow+0.02 {
		t.Fatalf("U=0.4: static %v should not lose to ea %v (pure DVFS suffices)", staticLow, eaLow)
	}
	staticHigh, eaHigh := rates(0.9)
	if eaHigh > staticHigh+0.02 {
		t.Fatalf("U=0.9: ea %v should beat static %v (energy awareness matters)", eaHigh, staticHigh)
	}
}
