package experiment

import (
	"testing"

	"github.com/eadvfs/eadvfs/internal/energy"
)

// TestWarmBisectionMatchesCold pins the MinCapacitySearcher contract: over
// the Table 1 utilization grid, the warm-start search (shared runner, probe
// memo, first-miss early exit) returns exactly the capacities and ok flags
// of the cold MinCapacitySearch it replaces.
func TestWarmBisectionMatchesCold(t *testing.T) {
	s := DefaultSpec()
	s.Horizon = 1500
	s.Replications = 2
	policies := []string{"lsa", "ea-dvfs"}
	factories, err := policyFactories(s, policies)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range []float64{0.2, 0.4, 0.6, 0.8} {
		spec := s
		spec.Utilization = u
		if err := spec.Validate(); err != nil {
			t.Fatal(err)
		}
		for r := 0; r < spec.Replications; r++ {
			rep, err := Replicate(spec, r)
			if err != nil {
				t.Fatal(err)
			}
			rep.PrepareSource(spec.Horizon)
			warm, err := NewMinCapacitySearcher(spec, rep, factories)
			if err != nil {
				t.Fatal(err)
			}
			for pi, name := range policies {
				coldC, coldOK, err := MinCapacitySearch(spec, rep, factories[pi], MinCapLo, MinCapMaxHi, MinCapTol)
				if err != nil {
					t.Fatal(err)
				}
				warmC, warmOK, err := warm.Search(pi, MinCapLo, MinCapMaxHi, MinCapTol)
				if err != nil {
					t.Fatal(err)
				}
				if warmC != coldC || warmOK != coldOK {
					t.Fatalf("u=%g rep=%d %s: warm search (%v, %v) != cold search (%v, %v)",
						u, r, name, warmC, warmOK, coldC, coldOK)
				}
			}
		}
	}
}

// TestSweepRealizesSolarOncePerReplication guards the AdoptSource fix: a
// task-count sweep must realize each replication's solar trace roughly once
// (master preparation plus short beyond-horizon tails from predictor
// lookahead), not once per (point, policy) cell. Before the fix the
// re-derived replications carried no master and every cell regenerated the
// full trace, making the realization count scale with the cell count.
func TestSweepRealizesSolarOncePerReplication(t *testing.T) {
	s := DefaultSpec()
	s.Horizon = 800
	s.Replications = 2
	s.Capacities = []float64{300}
	points := []float64{2, 4, 6}
	policies := []string{"lsa", "ea-dvfs"}

	before := energy.SolarRealizations()
	if _, err := TaskCountSweep(s, points, policies); err != nil {
		t.Fatal(err)
	}
	delta := energy.SolarRealizations() - before

	cells := uint64(len(points) * len(policies) * s.Replications)
	perRep := uint64(s.Horizon) + 10
	// Per-replication realization plus a one-cell allowance for lookahead
	// tails; the pre-fix behaviour realizes ~cells*perRep units and lands
	// far above this.
	limit := uint64(s.Replications)*perRep + cells*64
	t.Logf("realized %d units over %d cells (limit %d, regression ~%d)",
		delta, cells, limit, cells*perRep)
	if delta > limit {
		t.Fatalf("sweep realized %d solar units over %d cells — per-cell re-realization regressed (limit %d)",
			delta, cells, limit)
	}
}
