package experiment

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"github.com/eadvfs/eadvfs/internal/fault"
	"github.com/eadvfs/eadvfs/internal/metrics"
	"github.com/eadvfs/eadvfs/internal/rng"
	"github.com/eadvfs/eadvfs/internal/sim"
	"github.com/eadvfs/eadvfs/internal/storage"
)

// RobustnessSpec drives a fault-intensity sweep: each policy is simulated
// at every intensity of the canonical mixed-fault model
// (fault.AtIntensity), at a single storage capacity. Within a replication
// every policy and every intensity sees the same task set, solar sample
// path and fault seed — the paired-comparison discipline of §5.2 extended
// to the fault dimension, so miss-rate differences are attributable to the
// policies, not to fault-schedule luck.
type RobustnessSpec struct {
	Base        Spec      // workload parameters; Capacities is ignored
	Policies    []string  // policies to compare (see Policy)
	Intensities []float64 // fault intensities in [0, 1], e.g. 0, 0.25, …, 1
	FaultSeed   uint64    // master fault seed (default 1)
	Capacity    float64   // storage capacity for every run
}

// DefaultRobustnessSpec returns a CI-friendly sweep: the default workload,
// the paper's three headline policies, five intensity steps at a mid-range
// capacity.
func DefaultRobustnessSpec() RobustnessSpec {
	base := DefaultSpec()
	base.Replications = 20
	return RobustnessSpec{
		Base:        base,
		Policies:    []string{"edf", "lsa", "ea-dvfs"},
		Intensities: []float64{0, 0.25, 0.5, 0.75, 1},
		FaultSeed:   1,
		Capacity:    1000,
	}
}

// Validate checks the sweep parameters.
func (rs RobustnessSpec) Validate() error {
	base := rs.Base
	base.Capacities = []float64{rs.Capacity} // Capacity stands in for the sweep
	if err := base.Validate(); err != nil {
		return err
	}
	if len(rs.Policies) == 0 {
		return fmt.Errorf("experiment: robustness sweep with no policies")
	}
	if len(rs.Intensities) == 0 {
		return fmt.Errorf("experiment: robustness sweep with no intensities")
	}
	for _, x := range rs.Intensities {
		if x < 0 || x > 1 || math.IsNaN(x) {
			return fmt.Errorf("experiment: fault intensity %v outside [0, 1]", x)
		}
	}
	return nil
}

// faultSeed derives the fault seed of replication r from the master
// FaultSeed, independent of the workload seeds.
func (rs RobustnessSpec) faultSeed(r int) uint64 {
	seed := rs.FaultSeed
	if seed == 0 {
		seed = 1
	}
	return rng.New(seed).Child(uint64(r)).Uint64()
}

// RobustnessResult holds the sweep outcome per (policy, intensity) point:
// the pooled deadline-miss rate over the replications that completed, the
// aggregated degradation counters, and how many replications were lost to
// run errors (the sweep aggregates partial results instead of discarding
// everything on the first failure).
type RobustnessResult struct {
	Spec        RobustnessSpec
	Intensities []float64
	// MissRates[policy][i] is the pooled miss rate at Intensities[i].
	MissRates map[string][]float64
	// Stats carries the pooled miss tallies behind MissRates.
	Stats map[string][]metrics.MissStats
	// Degradation[policy][i] sums the degradation counters over completed
	// replications.
	Degradation map[string][]metrics.Degradation
	// Failed[policy][i] counts replications that errored at this point.
	Failed map[string][]int

	errs []string // stable descriptions of the per-run errors
}

// Errs returns the per-point run errors of the sweep, keyed
// "policy@intensity", in deterministic key order. Empty for a clean sweep.
func (r *RobustnessResult) Errs() []string { return r.errs }

// RobustnessSweep runs the fault-intensity sweep. One failing replication
// does not abort the sweep: its point aggregates the surviving
// replications and the failure is reported in Failed (and Errs). An error
// is returned only for invalid specs or when every run of the sweep
// failed.
func RobustnessSweep(rs RobustnessSpec) (*RobustnessResult, error) {
	if err := rs.Validate(); err != nil {
		return nil, err
	}
	base := rs.Base
	base.Capacities = []float64{rs.Capacity}
	factories, err := policyFactories(base, rs.Policies)
	if err != nil {
		return nil, err
	}
	reps, err := replicateAll(base)
	if err != nil {
		return nil, err
	}

	ni, np := len(rs.Intensities), len(rs.Policies)
	type cell struct {
		miss metrics.MissStats
		deg  metrics.Degradation
	}
	cells := make([]cell, base.Replications*ni*np)
	var jobs []job
	for r := 0; r < base.Replications; r++ {
		fseed := rs.faultSeed(r)
		for ii := range rs.Intensities {
			fspec := fault.AtIntensity(fseed, rs.Intensities[ii])
			for pi := range rs.Policies {
				slot := (r*ni+ii)*np + pi
				r, pi, fspec := r, pi, fspec
				jobs = append(jobs, job{slot: slot, run: func() error {
					res, err := runFaulted(base, reps[r], rs.Capacity, factories[pi], fspec)
					if err != nil {
						return err
					}
					cells[slot] = cell{miss: res.Miss, deg: res.Degradation}
					return nil
				}})
			}
		}
	}
	errs, _ := runParallelPartial(jobs, true)

	out := &RobustnessResult{
		Spec:        rs,
		Intensities: append([]float64(nil), rs.Intensities...),
		MissRates:   make(map[string][]float64, np),
		Stats:       make(map[string][]metrics.MissStats, np),
		Degradation: make(map[string][]metrics.Degradation, np),
		Failed:      make(map[string][]int, np),
	}
	for _, name := range rs.Policies {
		out.MissRates[name] = make([]float64, ni)
		out.Stats[name] = make([]metrics.MissStats, ni)
		out.Degradation[name] = make([]metrics.Degradation, ni)
		out.Failed[name] = make([]int, ni)
	}
	for r := 0; r < base.Replications; r++ {
		for ii := range rs.Intensities {
			for pi, name := range rs.Policies {
				slot := (r*ni+ii)*np + pi
				if errs[slot] != nil {
					out.Failed[name][ii]++
					continue
				}
				out.Stats[name][ii].Add(cells[slot].miss)
				out.Degradation[name][ii].Add(cells[slot].deg)
			}
		}
	}
	for _, name := range rs.Policies {
		for ii := range rs.Intensities {
			out.MissRates[name][ii] = out.Stats[name][ii].Rate()
		}
	}
	if len(errs) == len(jobs) && len(jobs) > 0 {
		return nil, fmt.Errorf("experiment: every robustness run failed; first: %w", lowestSlotError(errs))
	}
	out.errs = describeErrs(errs, rs, np, ni)
	return out, nil
}

func describeErrs(errs map[int]error, rs RobustnessSpec, np, ni int) []string {
	if len(errs) == 0 {
		return nil
	}
	slots := make([]int, 0, len(errs))
	for s := range errs {
		slots = append(slots, s)
	}
	sort.Ints(slots)
	out := make([]string, 0, len(slots))
	for _, s := range slots {
		pi := s % np
		ii := (s / np) % ni
		r := s / (np * ni)
		out = append(out, fmt.Sprintf("%s@%g rep %d: %v", rs.Policies[pi], rs.Intensities[ii], r, errs[s]))
	}
	return out
}

// Summary renders the sweep as a stable plain-text table: the same spec
// and seeds produce a byte-identical summary on every invocation and at
// any Parallelism, which is what the reproducibility tests (and bug
// reports) diff.
func (r *RobustnessResult) Summary() string {
	var b strings.Builder
	rs := r.Spec
	fmt.Fprintf(&b, "robustness sweep: U=%g capacity=%g reps=%d seed=%d faultseed=%d predictor=%s\n",
		rs.Base.Utilization, rs.Capacity, rs.Base.Replications, rs.Base.Seed, rs.FaultSeed, predictorName(rs.Base.Predictor))
	fmt.Fprintf(&b, "%-16s %9s %9s %9s %8s %8s %7s %7s %6s %6s\n",
		"policy", "intensity", "missrate", "overruns", "clamps", "stale", "fadeE", "spikeE", "downT", "failed")
	for _, name := range rs.Policies {
		for ii, x := range r.Intensities {
			d := r.Degradation[name][ii]
			fmt.Fprintf(&b, "%-16s %9.3g %9.6f %9d %8d %8d %7.4g %7.4g %6.4g %6d\n",
				name, x, r.MissRates[name][ii],
				d.Overruns, d.DVFSClamps, d.StaleForecasts,
				d.FadeEnergy, d.LeakSpikeEnergy, d.SourceFaultTime,
				r.Failed[name][ii])
		}
	}
	for _, e := range r.errs {
		fmt.Fprintf(&b, "error: %s\n", e)
	}
	return b.String()
}

func predictorName(name string) string {
	if name == "" {
		return "ewma"
	}
	return name
}

// runFaulted is RunOne with a fault spec applied (and no energy series —
// robustness sweeps only need tallies).
func runFaulted(s Spec, rep Replication, capacity float64, pf PolicyFactory, fspec fault.Spec) (*sim.Result, error) {
	predF, err := s.PredictorFor(s.Predictor)
	if err != nil {
		return nil, err
	}
	src := rep.Source()
	cfg := &sim.Config{
		Horizon:   s.Horizon,
		Tasks:     rep.Tasks,
		Source:    src,
		Predictor: predF(src),
		Store:     storage.NewIdeal(capacity),
		CPU:       s.Processor(),
		Policy:    pf(),
		MaxEvents: defaultEventBudget(s.Horizon),
		Probe:     s.Probe,
	}
	if fspec.Enabled() {
		cfg.Faults = &fspec
	}
	res, err := sim.Run(cfg)
	s.recordRun(res)
	return res, err
}
